package tcodm_test

import (
	"fmt"

	"tcodm"
)

// ExampleDB_Molecule shows dynamic complex-object derivation: the molecule
// is computed from links at query time and can be sliced at any instant.
func ExampleDB_Molecule() {
	db, _ := tcodm.Open(tcodm.Options{})
	defer db.Close()
	_ = db.DefineAtomType(tcodm.AtomType{
		Name:  "Dept",
		Attrs: []tcodm.Attribute{{Name: "name", Kind: tcodm.KindString, Required: true}},
	})
	_ = db.DefineAtomType(tcodm.AtomType{
		Name: "Emp",
		Attrs: []tcodm.Attribute{
			{Name: "name", Kind: tcodm.KindString, Required: true},
			{Name: "dept", Kind: tcodm.KindID, Target: "Dept", Card: tcodm.One, Temporal: true},
		},
	})
	_ = db.DefineMoleculeType(tcodm.MoleculeType{
		Name:  "DeptStaff",
		Root:  "Dept",
		Edges: []tcodm.MoleculeEdge{{From: "Dept", Attr: "dept", To: "Emp", Reverse: true}},
	})

	tx, _ := db.Begin()
	dept, _ := tx.Insert("Dept", tcodm.Attrs{"name": tcodm.String("storage")}, 0)
	_, _ = tx.Insert("Emp", tcodm.Attrs{"name": tcodm.String("wk"), "dept": tcodm.Ref(dept)}, 0)
	late, _ := tx.Insert("Emp", tcodm.Attrs{"name": tcodm.String("hs")}, 0)
	_ = tx.Set(late, "dept", tcodm.Ref(dept), 100) // hs joins at t=100
	_ = tx.Commit()

	before, _ := db.Molecule("DeptStaff", dept, 50, tcodm.Now)
	after, _ := db.Molecule("DeptStaff", dept, 150, tcodm.Now)
	fmt.Println(before.Size(), after.Size())
	// Output: 2 3
}

// ExampleTxn_Update demonstrates a retroactive correction and the
// bitemporal record it leaves: the old belief stays queryable ASOF an
// earlier transaction time.
func ExampleTxn_Update() {
	db, _ := tcodm.Open(tcodm.Options{})
	defer db.Close()
	_ = db.DefineAtomType(tcodm.AtomType{
		Name: "Emp",
		Attrs: []tcodm.Attribute{
			{Name: "name", Kind: tcodm.KindString, Required: true},
			{Name: "salary", Kind: tcodm.KindInt, Temporal: true},
		},
	})
	tx, _ := db.Begin()
	id, _ := tx.Insert("Emp", tcodm.Attrs{"name": tcodm.String("w"), "salary": tcodm.Int(1000)}, 0)
	_ = tx.Commit()

	tx, _ = db.Begin()
	beforeCorrection := tx.TT() - 1 // the belief as of the previous commit
	// Payroll discovers the salary was 1500 during [10, 20).
	_ = tx.Update(id, "salary", tcodm.Int(1500), tcodm.NewInterval(10, 20))
	_ = tx.Commit()

	now, _ := db.StateAt(id, 15, tcodm.Now)
	then, _ := db.StateAt(id, 15, beforeCorrection)
	fmt.Println(now.Vals["salary"], then.Vals["salary"])
	// Output: 1500 1000
}

// ExampleDB_Query runs TMQL with a temporal selection.
func ExampleDB_Query() {
	db, _ := tcodm.Open(tcodm.Options{})
	defer db.Close()
	_ = db.DefineAtomType(tcodm.AtomType{
		Name: "Emp",
		Attrs: []tcodm.Attribute{
			{Name: "name", Kind: tcodm.KindString, Required: true},
			{Name: "salary", Kind: tcodm.KindInt, Temporal: true},
		},
	})
	tx, _ := db.Begin()
	a, _ := tx.Insert("Emp", tcodm.Attrs{"name": tcodm.String("early"), "salary": tcodm.Int(1)}, 0)
	_, _ = tx.Insert("Emp", tcodm.Attrs{"name": tcodm.String("late"), "salary": tcodm.Int(2)}, 50)
	_ = tx.Set(a, "salary", tcodm.Int(9), 30)
	_ = tx.Commit()

	// Whose salary history has a version lying entirely inside [0, 40)?
	res, _ := db.Query(`SELECT (name) FROM Emp WHEN VALID(salary) DURING PERIOD [0, 40)`)
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	// Output: "early"
}
