// Package tcodm is a temporal complex-object database engine: a Go
// realization of the temporal complex-object data model (Käfer & Schöning,
// SIGMOD 1992). Atoms — typed records with system surrogates — carry
// bitemporal version histories on every attribute; molecules — complex
// objects — are derived dynamically as connected atom networks and can be
// materialized as of any past valid or transaction time.
//
// The engine realizes the model on a from-scratch record storage substrate
// (slotted pages, buffer pool, write-ahead log, B+-trees) under three
// alternative physical mappings whose trade-offs the accompanying
// benchmarks reproduce: embedded histories, separated current/history
// records, and classic tuple versioning.
//
// Quick start:
//
//	db, err := tcodm.Open(tcodm.Options{}) // in-memory
//	...
//	db.DefineAtomType(tcodm.AtomType{
//		Name: "Emp",
//		Attrs: []tcodm.Attribute{
//			{Name: "name", Kind: tcodm.KindString, Required: true},
//			{Name: "salary", Kind: tcodm.KindInt, Temporal: true},
//		},
//	})
//	tx, _ := db.Begin()
//	id, _ := tx.Insert("Emp", tcodm.Attrs{"name": tcodm.String("kaefer"),
//		"salary": tcodm.Int(4200)}, 0)
//	tx.Set(id, "salary", tcodm.Int(5000), 100)
//	tx.Commit()
//	st, _ := db.StateAt(id, 50, tcodm.Now) // time slice: salary = 4200
package tcodm

import (
	"tcodm/internal/atom"
	"tcodm/internal/core"
	"tcodm/internal/molecule"
	"tcodm/internal/query"
	"tcodm/internal/schema"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// DB is an open temporal complex-object database.
type DB = core.Engine

// Txn is a write transaction.
type Txn = core.Txn

// Options configure Open.
type Options = core.Options

// Stats aggregates engine statistics.
type Stats = core.Stats

// Open opens (creating if needed) a database. An empty Path yields an
// ephemeral in-memory database.
func Open(opts Options) (*DB, error) { return core.Open(opts) }

// --- Time ----------------------------------------------------------------

// Instant is a point on the discrete time axis (a chronon number).
type Instant = temporal.Instant

// Interval is a half-open interval [From, To) of instants.
type Interval = temporal.Interval

// Element is a temporal element: a canonical set of disjoint intervals.
type Element = temporal.Element

// Forever is the open-ended upper time sentinel.
const Forever = temporal.Forever

// Now, passed as a transaction-time argument, selects the latest recorded
// state.
const Now = atom.Now

// NewInterval returns [from, to); it panics when from > to.
func NewInterval(from, to Instant) Interval { return temporal.NewInterval(from, to) }

// Open_ returns the open-ended interval [from, Forever). (Named with a
// trailing underscore because Open is the database constructor.)
func Open_(from Instant) Interval { return temporal.Open(from) }

// --- Values ----------------------------------------------------------------

// V is a typed attribute value.
type V = value.V

// ID is an atom surrogate.
type ID = value.ID

// Kind identifies a value domain.
type Kind = value.Kind

// Value kinds for attribute declarations.
const (
	KindBool    = value.KindBool
	KindInt     = value.KindInt
	KindFloat   = value.KindFloat
	KindString  = value.KindString
	KindInstant = value.KindInstant
	KindID      = value.KindID
)

// Null is the absent value.
var Null = value.Null

// Bool builds a boolean value.
func Bool(b bool) V { return value.Bool(b) }

// Int builds an integer value.
func Int(i int64) V { return value.Int(i) }

// Float builds a floating-point value.
func Float(f float64) V { return value.Float(f) }

// String builds a string value.
func String(s string) V { return value.String_(s) }

// InstantV builds a time-point value.
func InstantV(t Instant) V { return value.Instant(t) }

// Ref builds a reference value.
func Ref(id ID) V { return value.Ref(id) }

// Attrs is the attribute-value map passed to Txn.Insert.
type Attrs = map[string]V

// --- Schema ----------------------------------------------------------------

// AtomType declares a record type.
type AtomType = schema.AtomType

// Attribute declares one attribute of an atom type.
type Attribute = schema.Attribute

// MoleculeType declares a complex-object type.
type MoleculeType = schema.MoleculeType

// MoleculeEdge is one traversal edge of a molecule type.
type MoleculeEdge = schema.MoleculeEdge

// Cardinality constrains reference attributes.
type Cardinality = schema.Cardinality

// Reference cardinalities.
const (
	One  = schema.One
	Many = schema.Many
)

// --- Storage strategies -------------------------------------------------------

// Strategy selects the physical mapping of temporal atoms onto records.
type Strategy = atom.Strategy

// The three physical mappings the engine implements.
const (
	StrategyEmbedded  = atom.StrategyEmbedded
	StrategySeparated = atom.StrategySeparated
	StrategyTuple     = atom.StrategyTuple
)

// --- Results ----------------------------------------------------------------

// State is an atom's materialized state at one time point.
type State = atom.State

// Version is one bitemporally stamped attribute value.
type Version = atom.Version

// Molecule is one materialized complex object.
type Molecule = molecule.Molecule

// MoleculeStep is one interval of constancy in a molecule's history.
type MoleculeStep = molecule.HistoryStep

// Result is a TMQL query answer.
type Result = query.Result
