// Benchmarks, one per reconstructed table/figure (see DESIGN.md §4 and
// EXPERIMENTS.md). cmd/tcobench prints the full sweeps; these testing.B
// entry points expose the same code paths for `go test -bench`.
package tcodm_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/baseline"
	"tcodm/internal/core"
	"tcodm/internal/experiments"
	"tcodm/internal/index"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
	"tcodm/internal/wal"
	"tcodm/internal/workload"
)

var benchStrategies = []atom.Strategy{atom.StrategyEmbedded, atom.StrategySeparated, atom.StrategyTuple}

func benchPersonnel(b *testing.B, strat atom.Strategy, p workload.PersonnelParams, timeIndex bool) (*core.Engine, []value.ID) {
	b.Helper()
	db, emps, err := experiments.BuildPersonnelDB(strat, p, timeIndex)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db, emps
}

// --- R-T1: storage consumption by strategy ---------------------------------

func BenchmarkStorageCost(b *testing.B) {
	p := workload.PersonnelParams{Depts: 4, Emps: 100, UpdatesPerEmp: 8, MovesPerEmp: 0,
		UpdateFraction: 0.25, TimeStep: 10, Seed: 42}
	for _, s := range benchStrategies {
		b.Run(s.String(), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				db, _, err := experiments.BuildPersonnelDB(s, p, false)
				if err != nil {
					b.Fatal(err)
				}
				if err := db.Checkpoint(); err != nil {
					b.Fatal(err)
				}
				bytes = int64(db.Stats().DevicePags) * storage.PageSize
				db.Close()
			}
			b.ReportMetric(float64(bytes)/(1<<20), "MiB")
		})
	}
	b.Run("snapshot-copy", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			sch, _ := workload.PersonnelSchema()
			ar, err := baseline.NewArchive(sch, 1024)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := workload.Apply(workload.Personnel(p), &workload.ArchiveApplier{Archive: ar}); err != nil {
				b.Fatal(err)
			}
			bytes, err = ar.DeviceBytes()
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(bytes)/(1<<20), "MiB")
	})
}

// --- R-F1: current-state scans vs. history length ---------------------------

func BenchmarkCurrentQuery(b *testing.B) {
	for _, updates := range []int{4, 32} {
		p := workload.PersonnelParams{Depts: 4, Emps: 100, UpdatesPerEmp: updates, TimeStep: 10, Seed: 42}
		nowVT := temporal.Instant(int64(updates+2) * 10)
		for _, s := range benchStrategies {
			b.Run(fmt.Sprintf("%s/updates=%d", s, updates), func(b *testing.B) {
				db, emps := benchPersonnel(b, s, p, false)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, id := range emps {
						if _, err := db.StateAt(id, nowVT, atom.Now); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// --- R-F2: time-slice scans by slice age -------------------------------------

func BenchmarkTimeSlice(b *testing.B) {
	const updates = 32
	p := workload.PersonnelParams{Depts: 4, Emps: 100, UpdatesPerEmp: updates, TimeStep: 10, Seed: 42}
	horizon := int64(updates+1) * 10
	for _, s := range benchStrategies {
		db, emps := benchPersonnel(b, s, p, false)
		for _, frac := range []float64{0.0, 0.5, 1.0} {
			vt := temporal.Instant(horizon - int64(frac*float64(horizon)))
			b.Run(fmt.Sprintf("%s/age=%.0f%%", s, frac*100), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, id := range emps {
						if _, err := db.StateAt(id, vt, atom.Now); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// --- R-F3: update cost vs. history length -------------------------------------

func BenchmarkUpdate(b *testing.B) {
	for _, hist := range []int{1, 64} {
		for _, s := range benchStrategies {
			b.Run(fmt.Sprintf("%s/history=%d", s, hist), func(b *testing.B) {
				db, err := core.Open(core.Options{Strategy: s, PoolPages: 2048})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				sch, _ := workload.PersonnelSchema()
				for _, name := range sch.AtomTypeNames() {
					at, _ := sch.AtomType(name)
					if err := db.DefineAtomType(*at); err != nil {
						b.Fatal(err)
					}
				}
				tx, _ := db.Begin()
				id, err := tx.Insert("Emp", map[string]value.V{
					"name": value.String_("u"), "salary": value.Int(0),
				}, 0)
				if err != nil {
					b.Fatal(err)
				}
				for i := 1; i <= hist; i++ {
					if err := tx.Set(id, "salary", value.Int(int64(i)), temporal.Instant(i)); err != nil {
						b.Fatal(err)
					}
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
				// Recreate the atom periodically so the measured history
				// length stays near the sweep parameter instead of growing
				// with b.N.
				next := hist + 1
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if next > hist+256 {
						b.StopTimer()
						tx, err := db.Begin()
						if err != nil {
							b.Fatal(err)
						}
						id, err = tx.Insert("Emp", map[string]value.V{
							"name": value.String_("u"), "salary": value.Int(0),
						}, 0)
						if err != nil {
							b.Fatal(err)
						}
						for j := 1; j <= hist; j++ {
							if err := tx.Set(id, "salary", value.Int(int64(j)), temporal.Instant(j)); err != nil {
								b.Fatal(err)
							}
						}
						if err := tx.Commit(); err != nil {
							b.Fatal(err)
						}
						next = hist + 1
						b.StartTimer()
					}
					tx, err := db.Begin()
					if err != nil {
						b.Fatal(err)
					}
					if err := tx.Set(id, "salary", value.Int(int64(i)), temporal.Instant(next)); err != nil {
						b.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
					next++
				}
			})
		}
	}
}

// --- R-T2: molecule materialization vs. the non-temporal baseline -----------

func BenchmarkMolecule(b *testing.B) {
	p := workload.CADParams{Assemblies: 2, Fanout: 4, Depth: 3, Revisions: 3, TimeStep: 10, Seed: 7}
	vt := temporal.Instant(int64(p.Revisions+1) * 10)
	b.Run("temporal", func(b *testing.B) {
		db, asms, err := experiments.BuildCADDB(atom.StrategySeparated, p)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Molecule("Design", asms[0], vt, atom.Now); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline", func(b *testing.B) {
		sch, _ := workload.CADSchema()
		st, err := baseline.NewStore(sch, 2048)
		if err != nil {
			b.Fatal(err)
		}
		ids, err := workload.Apply(workload.CAD(p), &workload.StoreApplier{Store: st})
		if err != nil {
			b.Fatal(err)
		}
		mt, _ := sch.MoleculeType("Design")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Molecule(mt, ids[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- R-F4: WHEN selection with and without the time index -------------------

func BenchmarkWhenSelection(b *testing.B) {
	p := workload.PersonnelParams{Depts: 4, Emps: 200, UpdatesPerEmp: 1, MovesPerEmp: 0,
		HireStagger: 1, TimeStep: 5, Seed: 42}
	const query = `SELECT (name) FROM Emp WHEN VALID(salary) DURING PERIOD [0, 20)`
	b.Run("time-index", func(b *testing.B) {
		db, _ := benchPersonnel(b, atom.StrategySeparated, p, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		db, _ := benchPersonnel(b, atom.StrategySeparated, p, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(query); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- R-F5: history retrieval ---------------------------------------------------

func BenchmarkHistoryQuery(b *testing.B) {
	p := workload.PersonnelParams{Depts: 2, Emps: 20, UpdatesPerEmp: 64, TimeStep: 10, Seed: 42}
	for _, s := range benchStrategies {
		b.Run(s.String(), func(b *testing.B) {
			db, emps := benchPersonnel(b, s, p, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.History(emps[0], "salary", atom.Now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- R-T3: transaction throughput and recovery --------------------------------

func BenchmarkTxn(b *testing.B) {
	configs := []struct {
		name  string
		opts  core.Options
		batch int
	}{
		{"memory", core.Options{}, 1},
		{"logged-nosync", core.Options{Path: "PATH"}, 1},
		{"logged-fsync", core.Options{Path: "PATH", SyncOnCommit: true}, 1},
		{"logged-fsync-batch64", core.Options{Path: "PATH", SyncOnCommit: true}, 64},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			opts := c.opts
			if opts.Path == "PATH" {
				opts.Path = b.TempDir() + "/t.tdb"
				opts.PoolPages = 2048
			}
			db, err := core.Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			sch, _ := workload.PersonnelSchema()
			for _, name := range sch.AtomTypeNames() {
				at, _ := sch.AtomType(name)
				if err := db.DefineAtomType(*at); err != nil {
					b.Fatal(err)
				}
			}
			app := workload.NewEngineApplier(db, c.batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := app.Insert("Emp", map[string]value.V{
					"name": value.String_("b"), "salary": value.Int(int64(i)),
				}, 0); err != nil {
					b.Fatal(err)
				}
			}
			if err := app.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkRecovery(b *testing.B) {
	// Replay rate of a log with 1000 committed inserts.
	dir := b.TempDir()
	path := dir + "/r.tdb"
	db, err := core.Open(core.Options{Path: path, PoolPages: 2048})
	if err != nil {
		b.Fatal(err)
	}
	sch, _ := workload.PersonnelSchema()
	for _, name := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(name)
		if err := db.DefineAtomType(*at); err != nil {
			b.Fatal(err)
		}
	}
	app := workload.NewEngineApplier(db, 1)
	for i := 0; i < 1000; i++ {
		if _, err := app.Insert("Emp", map[string]value.V{
			"name": value.String_("r"), "salary": value.Int(int64(i)),
		}, 0); err != nil {
			b.Fatal(err)
		}
	}
	if err := app.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := db.Crash(); err != nil { // crash without checkpoint
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db2, err := core.Open(core.Options{Path: path})
		if err != nil {
			b.Fatal(err)
		}
		if !db2.Recovered {
			b.Fatal("no recovery happened")
		}
		b.StopTimer()
		if n := db2.Stats().Atoms; n != 1000 {
			b.Fatalf("recovered %d atoms", n)
		}
		if err := db2.Crash(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// --- R-F6: buffer pool sensitivity ---------------------------------------------

func BenchmarkBufferPool(b *testing.B) {
	dir := b.TempDir()
	path := dir + "/pool.tdb"
	p := workload.PersonnelParams{Depts: 8, Emps: 400, UpdatesPerEmp: 8, TimeStep: 10, Seed: 42}
	db, err := core.Open(core.Options{Path: path, PoolPages: 4096})
	if err != nil {
		b.Fatal(err)
	}
	sch, _ := workload.PersonnelSchema()
	for _, name := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(name)
		if err := db.DefineAtomType(*at); err != nil {
			b.Fatal(err)
		}
	}
	app := workload.NewEngineApplier(db, 256)
	ids, err := workload.Apply(workload.Personnel(p), app)
	if err != nil {
		b.Fatal(err)
	}
	if err := app.Flush(); err != nil {
		b.Fatal(err)
	}
	emps := ids[p.Depts:]
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	for _, pages := range []int{16, 256} {
		b.Run(fmt.Sprintf("pool=%d", pages), func(b *testing.B) {
			db, err := core.Open(core.Options{Path: path, PoolPages: pages})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, id := range emps {
					if _, err := db.StateAt(id, 90, atom.Now); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(db.Stats().Pool.HitRatio(), "hit-ratio")
		})
	}
}

// --- R-T4: B+-tree microcosts ---------------------------------------------------

func BenchmarkBPTree(b *testing.B) {
	newTree := func(b *testing.B, n int) *index.BPTree {
		dev := storage.NewMemDevice()
		pool := storage.NewBufferPool(dev, 1024)
		if err := storage.InitMeta(pool); err != nil {
			b.Fatal(err)
		}
		tr, err := index.New(pool)
		if err != nil {
			b.Fatal(err)
		}
		perm := rand.New(rand.NewSource(1)).Perm(n)
		for _, i := range perm {
			var k [8]byte
			k[0], k[1], k[2], k[3] = byte(i>>24), byte(i>>16), byte(i>>8), byte(i)
			if err := tr.Insert(k[:], uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
		return tr
	}
	const n = 100_000
	b.Run("insert", func(b *testing.B) {
		dev := storage.NewMemDevice()
		pool := storage.NewBufferPool(dev, 4096)
		if err := storage.InitMeta(pool); err != nil {
			b.Fatal(err)
		}
		tr, err := index.New(pool)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var k [8]byte
			k[0], k[1], k[2], k[3] = byte(i>>24), byte(i>>16), byte(i>>8), byte(i)
			if err := tr.Insert(k[:], uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lookup", func(b *testing.B) {
		tr := newTree(b, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x := i % n
			var k [8]byte
			k[0], k[1], k[2], k[3] = byte(x>>24), byte(x>>16), byte(x>>8), byte(x)
			if _, ok, err := tr.Get(k[:]); err != nil || !ok {
				b.Fatal(err, ok)
			}
		}
	})
	b.Run("range100", func(b *testing.B) {
		tr := newTree(b, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			count := 0
			err := tr.Scan(nil, func(k []byte, v uint64) (bool, error) {
				count++
				return count < 100, nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- R-F7: temporal-element algebra ----------------------------------------------

func BenchmarkTemporalElement(b *testing.B) {
	mkElement := func(n int, seed int64) temporal.Element {
		rng := rand.New(rand.NewSource(seed))
		ivs := make([]temporal.Interval, n)
		at := temporal.Instant(0)
		for i := range ivs {
			at += temporal.Instant(1 + rng.Intn(10))
			ivs[i] = temporal.NewInterval(at, at+temporal.Instant(1+rng.Intn(5)))
			at = ivs[i].To
		}
		return temporal.NewElement(ivs...)
	}
	for _, n := range []int{16, 256} {
		a := mkElement(n, 1)
		c := mkElement(n, 2)
		b.Run(fmt.Sprintf("union/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = a.Union(c)
			}
		})
		b.Run(fmt.Sprintf("intersect/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = a.Intersect(c)
			}
		})
		b.Run(fmt.Sprintf("subtract/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = a.Subtract(c)
			}
		})
	}
}

// --- WAL append micro ----------------------------------------------------------

func BenchmarkWALCommit(b *testing.B) {
	w, err := wal.Open(b.TempDir()+"/bench.wal", wal.Options{SyncOnCommit: false})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.BeginTxn(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
		w.LogHeapInsert(storage.RID{Page: 1, Slot: uint16(i)}, payload)
		if err := w.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
