package client

import (
	"fmt"
	"strings"
)

// Table renders the rows as an aligned text table, matching the format
// of the in-process query.Result.Table.
func (r *Result) Table() string {
	if len(r.Columns) == 0 {
		return fmt.Sprintf("%d molecule(s)\n", r.Molecules)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	sb.WriteByte('\n')
	for i := range r.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for i, c := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
