package client

import (
	"errors"
	"sync"
	"time"

	"tcodm/internal/obs"
)

// ErrBreakerOpen fails a call fast: the circuit breaker has seen too many
// consecutive transport failures and its cooldown has not elapsed. The
// caller should back off (or surface the outage) instead of dialing a
// server that is demonstrably unreachable.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// Breaker states, exported through the client.breaker_state gauge.
const (
	breakerClosed   = 0
	breakerOpen     = 1
	breakerHalfOpen = 2
)

// breaker is a circuit breaker over transport-level failures. Server-
// reported errors never trip it — an Error frame proves the transport and
// the server both work — only dial failures, resets, and corrupt frames
// count. After threshold consecutive failures the circuit opens: calls
// fail fast with ErrBreakerOpen until the cooldown elapses, then exactly
// one probe is allowed through (half-open); its outcome closes or
// re-opens the circuit.
type breaker struct {
	threshold int // <= 0 disables the breaker
	cooldown  time.Duration

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time

	stateG    *obs.Gauge   // client.breaker_state
	opens     *obs.Counter // client.breaker_open
	fastFails *obs.Counter // client.breaker_fastfail
}

func newBreaker(threshold int, cooldown time.Duration, reg *obs.Registry) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		stateG:    reg.Gauge("client.breaker_state"),
		opens:     reg.Counter("client.breaker_open"),
		fastFails: reg.Counter("client.breaker_fastfail"),
	}
}

// allow reports whether a call may proceed.
func (b *breaker) allow() error {
	if b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			b.fastFails.Inc()
			return ErrBreakerOpen
		}
		b.setState(breakerHalfOpen)
		return nil // this caller is the probe
	case breakerHalfOpen:
		b.fastFails.Inc() // one probe at a time
		return ErrBreakerOpen
	default:
		return nil
	}
}

// success records a working transport: the circuit closes.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state != breakerClosed {
		b.setState(breakerClosed)
	}
}

// failure records a transport failure, opening the circuit at the
// threshold and re-opening it when a half-open probe fails. Reports
// whether this failure opened (or re-opened) the circuit.
func (b *breaker) failure() bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.failures >= b.threshold) {
		b.openedAt = time.Now()
		if b.state != breakerOpen {
			b.opens.Inc()
		}
		b.setState(breakerOpen)
		return true
	}
	return false
}

// setState transitions with the gauge in lockstep; callers hold b.mu.
func (b *breaker) setState(s int) {
	b.state = s
	b.stateG.Set(int64(s))
}

// snapshot returns the current state for tests and debugging.
func (b *breaker) snapshot() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
