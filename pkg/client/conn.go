package client

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"tcodm/internal/value"
	"tcodm/internal/wire"
)

// conn is one handshaken wire connection.
type conn struct {
	cfg       Config
	c         net.Conn
	r         *bufio.Reader
	sessionID uint64
	epoch     uint64 // leadership epoch the server reported at handshake
	writable  bool   // whether the server accepted writes at handshake
}

func (cn *conn) close() { cn.c.Close() }

func (cn *conn) write(typ byte, payload []byte) error {
	cn.c.SetWriteDeadline(time.Now().Add(cn.cfg.WriteTimeout))
	return wire.WriteFrame(cn.c, typ, payload)
}

// read reads one frame. timeout 0 falls back to cfg.ReadTimeout; that
// too being 0 means wait indefinitely (the server enforces query caps).
func (cn *conn) read(timeout time.Duration) (wire.Frame, error) {
	if timeout == 0 {
		timeout = cn.cfg.ReadTimeout
	}
	if timeout > 0 {
		cn.c.SetReadDeadline(time.Now().Add(timeout))
	} else {
		cn.c.SetReadDeadline(time.Time{})
	}
	return wire.ReadFrame(cn.r)
}

// query sends one query-class frame and consumes the result stream.
func (cn *conn) query(typ byte, payload []byte) (*Result, error) {
	if err := cn.write(typ, payload); err != nil {
		return nil, err
	}
	f, err := cn.read(0)
	if err != nil {
		return nil, err
	}
	if f.Type == wire.FrameError {
		return nil, decodeServerError(f.Payload)
	}
	if f.Type != wire.FrameResultHeader {
		return nil, fmt.Errorf("client: expected ResultHeader, got frame 0x%02x", f.Type)
	}
	cols, err := wire.DecodeResultHeader(f.Payload)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols}
	for {
		f, err := cn.read(0)
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case wire.FrameResultRows:
			batch, err := wire.DecodeResultRows(f.Payload)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, batch...)
		case wire.FrameResultDone:
			done, err := wire.DecodeResultDone(f.Payload)
			if err != nil {
				return nil, err
			}
			res.Plan = done.Plan
			res.Molecules = done.Molecules
			res.Elapsed = done.Elapsed
			res.Trace = done.Trace
			res.Res = done.Res
			res.Watermark = done.Watermark
			res.Epoch = done.Epoch
			if done.Rows != uint64(len(res.Rows)) {
				return nil, fmt.Errorf("client: result stream lost rows: got %d, server sent %d", len(res.Rows), done.Rows)
			}
			return res, nil
		case wire.FrameError:
			return nil, decodeServerError(f.Payload)
		default:
			return nil, fmt.Errorf("client: unexpected frame 0x%02x mid-result", f.Type)
		}
	}
}

func (cn *conn) ping() error {
	if err := cn.write(wire.FramePing, []byte("ping")); err != nil {
		return err
	}
	f, err := cn.read(cn.cfg.DialTimeout)
	if err != nil {
		return err
	}
	if f.Type != wire.FramePong {
		return fmt.Errorf("client: expected Pong, got frame 0x%02x", f.Type)
	}
	return nil
}

func (cn *conn) option(key, val string) (string, error) {
	if err := cn.write(wire.FrameOption, wire.EncodeOption(key, val)); err != nil {
		return "", err
	}
	f, err := cn.read(cn.cfg.DialTimeout)
	if err != nil {
		return "", err
	}
	switch f.Type {
	case wire.FrameAck:
		return wire.DecodeAck(f.Payload)
	case wire.FrameError:
		return "", decodeServerError(f.Payload)
	default:
		return "", fmt.Errorf("client: expected Ack, got frame 0x%02x", f.Type)
	}
}

// Session is a dedicated stateful connection. Not safe for concurrent
// use; a Session serializes its statements like any database session.
type Session struct {
	cn     *conn
	c      *Client // trace-id source; nil = statements run untraced
	closed bool
}

// ID returns the server-assigned session id.
func (s *Session) ID() uint64 { return s.cn.sessionID }

// nextTrace allocates a trace id from the owning client (0 when detached).
func (s *Session) nextTrace() uint64 {
	if s.c == nil {
		return 0
	}
	return s.c.nextTrace()
}

// Query runs a TMQL statement under the session's defaults.
func (s *Session) Query(text string) (*Result, error) {
	return s.cn.query(wire.FrameQuery, wire.EncodeQueryTrace(text, s.nextTrace()))
}

// Exec runs parameterized TMQL under the session's defaults.
func (s *Session) Exec(text string, params ...value.V) (*Result, error) {
	return s.cn.query(wire.FrameExec, wire.EncodeExecTrace(text, params, s.nextTrace()))
}

// Option sets one session option and returns the server's effective value.
// Keys: "vt", "tt"/"asof" (instant or "default"), "timeout", "slow"
// (durations), "batch" (rows per frame), "begin", "end".
func (s *Session) Option(key, val string) (string, error) {
	return s.cn.option(key, val)
}

// Begin pins the session's read view at the server's current transaction
// time and returns that instant: statements repeat exactly until End.
func (s *Session) Begin() (string, error) { return s.cn.option("begin", "") }

// End releases a pinned read view.
func (s *Session) End() error {
	_, err := s.cn.option("end", "")
	return err
}

// Ping round-trips a liveness probe.
func (s *Session) Ping() error { return s.cn.ping() }

// Close sends an orderly Close frame and closes the connection. The
// connection is never pooled: session state must not leak.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.cn.write(wire.FrameClose, nil)
	s.cn.close()
	return nil
}
