// Package client is the Go client for the tcodm query service. It speaks
// the wire protocol, pools connections for stateless queries, and retries
// transient dial failures (refused, timed out, or server-busy) with
// exponential backoff.
//
// Stateless queries go through Client.Query/Exec, which borrow a pooled
// connection per call. TMQL over the wire is read-only, so a failed
// Query/Exec/Ping is automatically retried on transport failures and
// server sheds (CodeBusy/CodeDraining) with jittered exponential backoff
// that honors the server's retry-after hint, bounded by a per-client
// retry budget and a circuit breaker over transport failures.
//
// Stateful workflows — time-slice defaults, pinned read views
// ("begin"/"end") — need a dedicated connection: use Client.Session,
// whose connection never returns to the pool. Session statements are
// NEVER auto-retried: they depend on session state the server may have
// lost with the connection, so the caller must decide.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tcodm/internal/obs"
	"tcodm/internal/value"
	"tcodm/internal/wire"
)

// Config parameterizes a Client. Addr is required.
type Config struct {
	Addr string // leader address: writes, sessions, and fallback reads

	// Replicas are read-only follower addresses. When non-empty, Query and
	// Exec round-robin across them and fall back to the leader when a
	// replica is unreachable or refuses with CodeStale. Sessions and Pings
	// always use the leader. Each address must be distinct from Addr and
	// from each other.
	Replicas []string

	// MaxStaleness bounds how far behind a replica may serve reads: it is
	// set as the "max_staleness" session option on every replica
	// connection, and a replica that cannot honor it answers CodeStale,
	// which routes the query to the leader. 0 = any staleness is fine.
	MaxStaleness time.Duration

	Banner       string        // sent in the Hello frame
	DialTimeout  time.Duration // per-attempt dial timeout (default 5s)
	DialRetries  int           // extra attempts after a transient failure (default 3, -1 disables)
	RetryBackoff time.Duration // first backoff, doubling per retry (default 50ms)
	PoolSize     int           // max idle pooled connections (default 4)
	ReadTimeout  time.Duration // per-response deadline; 0 = wait indefinitely
	WriteTimeout time.Duration // per-request deadline (default 30s)

	// Automatic retry of read-only calls (Query/Exec/Ping only; never
	// Session statements). A retry fires on transport failures and on
	// server sheds, waits a jittered exponential backoff of at least the
	// server's RetryAfter hint, and spends one token of the budget.
	QueryRetries int           // extra attempts per call (default 3, -1 disables)
	MaxBackoff   time.Duration // backoff ceiling per attempt (default 2s)
	RetryBudget  int           // lifetime cap on automatic retries (default 1024, -1 unlimited)

	// Circuit breaker over transport-level failures. Server-reported
	// errors do not count: an Error frame proves the server is alive.
	BreakerFailures int           // consecutive failures to open (default 8, -1 disables)
	BreakerCooldown time.Duration // open period before the half-open probe (default 500ms)

	JitterSeed int64         // seeds backoff jitter; 0 derives from the clock
	Metrics    *obs.Registry // optional metrics sink (nil = no metrics)

	// Logf, when set, receives one line per retry and breaker decision.
	// Every line carries the call's trace id, so a retried query's
	// attempts correlate with the server-side span trees. Nil disables.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Banner == "" {
		c.Banner = "tcodm-client/1"
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.DialRetries < 0 {
		c.DialRetries = 0
	} else if c.DialRetries == 0 {
		c.DialRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.QueryRetries < 0 {
		c.QueryRetries = 0
	} else if c.QueryRetries == 0 {
		c.QueryRetries = 3
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 1024
	}
	if c.BreakerFailures < 0 {
		c.BreakerFailures = 0 // disabled
	} else if c.BreakerFailures == 0 {
		c.BreakerFailures = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	return c
}

// ServerError is a failure reported by the server in an Error frame.
type ServerError struct {
	Code   uint16
	Msg    string
	Detail string
	// RetryAfterMs is the server's backoff hint on sheds and refusals
	// (0 = none): retry no sooner than this many milliseconds.
	RetryAfterMs uint32
}

func (e *ServerError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("server error %d: %s (%s)", e.Code, e.Msg, e.Detail)
	}
	return fmt.Sprintf("server error %d: %s", e.Code, e.Msg)
}

// Result is one query's outcome.
type Result struct {
	Columns   []string
	Rows      [][]value.V
	Plan      string
	Molecules uint64        // molecules summarized (SELECT ALL)
	Elapsed   time.Duration // server-side execution + streaming time
	Trace     uint64        // trace id the query ran under (0 = untraced)
	Res       obs.Resources // exact server-side resource totals
	// Watermark is the highest WAL LSN the answering server's store
	// reflected when the query ran: on a replica it tells the caller
	// exactly how fresh the read was; on a leader it is the commit horizon.
	Watermark uint64
	// Epoch is the leadership epoch the answering server believed in. It
	// increases by at least one at every promotion; a caller that sees it
	// jump knows a failover happened between two of its reads.
	Epoch uint64
}

// errClosed reports a call on a closed client; never retried.
var errClosed = errors.New("client: closed")

// ConfigError reports an invalid Config field, caught at New rather than
// surfacing later as a confusing dial failure.
type ConfigError struct {
	Field  string // "Addr" or "Replicas[i]"
	Value  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("client: config %s = %q: %s", e.Field, e.Value, e.Reason)
}

// validateAddrs checks the address set: the leader address is required and
// well-formed, every replica address is well-formed, and no address —
// leader included — appears twice (a duplicate silently doubles that
// server's read share and usually means a copy-paste slip).
func validateAddrs(cfg Config) error {
	check := func(field, addr string) error {
		if addr == "" {
			return &ConfigError{Field: field, Value: addr, Reason: "address is empty"}
		}
		if _, _, err := net.SplitHostPort(addr); err != nil {
			return &ConfigError{Field: field, Value: addr, Reason: "want host:port: " + err.Error()}
		}
		return nil
	}
	if err := check("Addr", cfg.Addr); err != nil {
		return err
	}
	seen := map[string]string{cfg.Addr: "Addr"}
	for i, r := range cfg.Replicas {
		field := fmt.Sprintf("Replicas[%d]", i)
		if err := check(field, r); err != nil {
			return err
		}
		if prev, dup := seen[r]; dup {
			return &ConfigError{Field: field, Value: r, Reason: "duplicates " + prev}
		}
		seen[r] = field
	}
	return nil
}

// endpoint is one server address with its own idle-connection pool.
type endpoint struct {
	addr    string
	replica bool
	mu      sync.Mutex
	idle    []*conn
}

// Client is a pooled client over one leader and any number of read
// replicas.
type Client struct {
	cfg    Config
	ctx    context.Context // done at Close: interrupts every backoff sleep
	cancel context.CancelFunc
	brk    *breaker
	budget atomic.Int64 // remaining automatic retries; negative = exhausted

	// leader is the endpoint leader-targeted traffic (Exec fallback,
	// Sessions, Pings) goes to. It starts as cfg.Addr and is re-pointed by
	// failover() when a probe finds a higher-epoch writable node.
	leader   atomic.Pointer[endpoint]
	replicas []*endpoint
	rr       atomic.Uint32 // read round-robin position

	// epoch is the highest leadership epoch observed on any handshake or
	// result; failMu serializes failover probes so a burst of failures
	// re-points the leader once, not once per caller.
	epoch  atomic.Uint64
	failMu sync.Mutex

	rngMu sync.Mutex
	rng   *rand.Rand // jitter source; seeded for reproducible chaos runs

	mu     sync.Mutex
	closed bool

	retries      *obs.Counter // client.retry
	retryGiveups *obs.Counter // client.retry_budget_exhausted
	fallbacks    *obs.Counter // client.replica_fallback
	failovers    *obs.Counter // client.failovers
}

// New creates a client for cfg.Addr. No connection is made until first use.
func New(cfg Config) (*Client, error) {
	if err := validateAddrs(cfg); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		cfg:          cfg,
		ctx:          ctx,
		cancel:       cancel,
		brk:          newBreaker(cfg.BreakerFailures, cfg.BreakerCooldown, cfg.Metrics),
		rng:          rand.New(rand.NewSource(seed)),
		retries:      cfg.Metrics.Counter("client.retry"),
		retryGiveups: cfg.Metrics.Counter("client.retry_budget_exhausted"),
		fallbacks:    cfg.Metrics.Counter("client.replica_fallback"),
		failovers:    cfg.Metrics.Counter("client.failovers"),
	}
	c.leader.Store(&endpoint{addr: cfg.Addr})
	for _, r := range cfg.Replicas {
		c.replicas = append(c.replicas, &endpoint{addr: r, replica: true})
	}
	if cfg.RetryBudget < 0 {
		c.budget.Store(1 << 62) // effectively unlimited
	} else {
		c.budget.Store(int64(cfg.RetryBudget))
	}
	return c, nil
}

// Dial creates a client and verifies the server is reachable with a Ping.
func Dial(addr string) (*Client, error) {
	c, err := New(Config{Addr: addr})
	if err != nil {
		return nil, err
	}
	if err := c.Ping(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes every pooled connection and interrupts any in-flight
// backoff sleep. In-flight calls finish on their borrowed connections,
// which are then discarded.
func (c *Client) Close() error {
	c.cancel()
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	for _, ep := range append([]*endpoint{c.leader.Load()}, c.replicas...) {
		ep.mu.Lock()
		idle := ep.idle
		ep.idle = nil
		ep.mu.Unlock()
		for _, cn := range idle {
			cn.close()
		}
	}
	return nil
}

// Query runs a TMQL statement on a pooled connection, retrying
// transparently on transport failures and server sheds (TMQL over the
// wire is read-only, so re-running is always safe). The call is stamped
// with a client-allocated trace id, reused across every retry, so all of
// a logical call's attempts share one server-side trace.
func (c *Client) Query(text string) (*Result, error) {
	trace := c.nextTrace()
	return c.doRetry(trace, func(cn *conn) (*Result, error) {
		return cn.query(wire.FrameQuery, wire.EncodeQueryTrace(text, trace))
	})
}

// Exec runs parameterized TMQL: $1..$n placeholders in text bind to
// params server-side. Retries and traces like Query.
func (c *Client) Exec(text string, params ...value.V) (*Result, error) {
	trace := c.nextTrace()
	return c.doRetry(trace, func(cn *conn) (*Result, error) {
		return cn.query(wire.FrameExec, wire.EncodeExecTrace(text, params, trace))
	})
}

// Ping round-trips a liveness probe on a pooled connection.
func (c *Client) Ping() error {
	_, err := c.doRetry(0, func(cn *conn) (*Result, error) {
		return nil, cn.ping()
	})
	return err
}

// nextTrace allocates a client-side trace id from the seeded jitter rng:
// reproducible under a fixed JitterSeed (chaos runs), nonzero so servers
// never mistake a stamped call for an untraced one.
func (c *Client) nextTrace() uint64 {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	for {
		if t := c.rng.Uint64(); t != 0 {
			return t
		}
	}
}

// logf emits one optional client log line (retry/breaker decisions).
func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// nextReplica picks the next read endpoint round-robin.
func (c *Client) nextReplica() *endpoint {
	n := c.rr.Add(1)
	return c.replicas[int(n-1)%len(c.replicas)]
}

// fallbackToLeader reports whether a failed replica attempt should be
// redirected to the leader: the replica refused for staleness or read-only
// reasons, or the transport to it failed. Query-level errors are the
// query's own fault and would fail identically on the leader.
func fallbackToLeader(err error) bool {
	var se *ServerError
	if errors.As(err, &se) {
		return se.Code == wire.CodeStale || se.Code == wire.CodeReadOnly
	}
	return !errors.Is(err, errClosed) && !errors.Is(err, ErrBreakerOpen)
}

// leaderFailure reports whether an error from the leader endpoint means
// the leadership itself may have moved: the node is fenced (a higher
// epoch exists somewhere), refusing writes, or the transport died. Query
// errors and sheds are not leadership signals.
func leaderFailure(err error) bool {
	var se *ServerError
	if errors.As(err, &se) {
		return se.Code == wire.CodeFenced || se.Code == wire.CodeReadOnly
	}
	return !errors.Is(err, errClosed) && !errors.Is(err, ErrBreakerOpen)
}

// Epoch returns the highest leadership epoch this client has observed on
// any handshake or result (0 = none yet).
func (c *Client) Epoch() uint64 { return c.epoch.Load() }

// Leader returns the address leader-targeted traffic currently goes to.
// It starts as cfg.Addr and moves when failover finds a promoted node.
func (c *Client) Leader() string { return c.leader.Load().addr }

// noteEpoch records an observed epoch, logging when leadership moved.
func (c *Client) noteEpoch(e uint64) {
	for {
		cur := c.epoch.Load()
		if e <= cur {
			return
		}
		if c.epoch.CompareAndSwap(cur, e) {
			if cur != 0 {
				c.logf("client: observed epoch change %d -> %d", cur, e)
			}
			return
		}
	}
}

// probe dials addr just far enough to read its Welcome — epoch and
// writability — then closes. It never touches the pools.
func (c *Client) probe(addr string) (wire.WelcomeInfo, error) {
	raw, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	if err != nil {
		return wire.WelcomeInfo{}, err
	}
	defer raw.Close()
	raw.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	if err := wire.WriteFrame(raw, wire.FrameHello, wire.EncodeHello(c.cfg.Banner)); err != nil {
		return wire.WelcomeInfo{}, err
	}
	f, err := wire.ReadFrame(bufio.NewReader(raw))
	if err != nil {
		return wire.WelcomeInfo{}, err
	}
	switch f.Type {
	case wire.FrameWelcome:
		info, err := wire.DecodeWelcomeInfo(f.Payload)
		if err != nil {
			return wire.WelcomeInfo{}, err
		}
		wire.WriteFrame(raw, wire.FrameClose, nil)
		return info, nil
	case wire.FrameError:
		return wire.WelcomeInfo{}, decodeServerError(f.Payload)
	default:
		return wire.WelcomeInfo{}, fmt.Errorf("client: unexpected handshake frame 0x%02x", f.Type)
	}
}

// failover probes every configured address for the highest-epoch writable
// node and re-points the leader endpoint at it. Ties go to the earliest
// address in probe order (Addr first, then Replicas), so every client
// with the same config picks the same winner during a double promotion.
// It reports whether a writable node was found. Probes are serialized:
// concurrent failures share one sweep's outcome.
func (c *Client) failover(trace uint64) bool {
	if len(c.cfg.Replicas) == 0 {
		return false // nowhere to fail over to; plain retry covers Addr
	}
	c.failMu.Lock()
	defer c.failMu.Unlock()
	cur := c.leader.Load()
	var bestAddr string
	var bestEpoch uint64
	found := false
	for _, addr := range append([]string{c.cfg.Addr}, c.cfg.Replicas...) {
		info, err := c.probe(addr)
		if err != nil {
			c.logf("client: trace=%d failover probe %s: %v", trace, addr, err)
			continue
		}
		c.noteEpoch(info.Epoch)
		if !info.Writable {
			continue
		}
		// Strictly-greater keeps the earliest address on epoch ties.
		if !found || info.Epoch > bestEpoch {
			found, bestAddr, bestEpoch = true, addr, info.Epoch
		}
	}
	if !found {
		c.logf("client: trace=%d failover probe found no writable node", trace)
		return false
	}
	if bestAddr == cur.addr {
		c.logf("client: trace=%d failover probe: leader %s is writable at epoch %d, keeping it", trace, cur.addr, bestEpoch)
		return true
	}
	// A fresh endpoint (not the replica's) so leader traffic gets its own
	// pool without the replica handshake's max_staleness option.
	c.leader.Store(&endpoint{addr: bestAddr})
	c.failovers.Inc()
	c.logf("client: trace=%d FAILOVER: leader %s -> %s (epoch %d)", trace, cur.addr, bestAddr, bestEpoch)
	cur.mu.Lock()
	idle := cur.idle
	cur.idle = nil
	cur.mu.Unlock()
	for _, cn := range idle {
		cn.close()
	}
	return true
}

// doRetry runs one read-only call with the automatic retry loop, the
// retry budget, and the circuit breaker. trace is the call's trace id
// (0 for pings), carried into every log line for correlation. With
// replicas configured the first attempt goes to the next read replica;
// a stale or unreachable replica redirects the call to the leader for
// the remaining attempts.
func (c *Client) doRetry(trace uint64, fn func(*conn) (*Result, error)) (*Result, error) {
	backoff := c.cfg.RetryBackoff
	useLeader := len(c.replicas) == 0
	for attempt := 0; ; attempt++ {
		if err := c.brk.allow(); err != nil {
			c.logf("client: trace=%d rejected: %v", trace, err)
			return nil, err
		}
		ep := c.leader.Load()
		if !useLeader {
			ep = c.nextReplica()
		}
		res, err := c.withConn(ep, fn)
		if err == nil {
			c.brk.success()
			if res != nil {
				c.noteEpoch(res.Epoch)
			}
			return res, nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			c.brk.success() // the server answered: the transport works
		} else if !errors.Is(err, errClosed) && !ep.replica {
			// Replica transport failures do not trip the breaker: the
			// leader may be fine, and fallback is about to try it.
			if c.brk.failure() {
				c.logf("client: trace=%d breaker opened after %v", trace, err)
			}
		}
		canRetry := retryable(err)
		fellBack := false
		if !useLeader && fallbackToLeader(err) {
			useLeader = true
			canRetry = true
			fellBack = true
			c.fallbacks.Inc()
			c.logf("client: trace=%d replica %s failed (%v); falling back to leader", trace, ep.addr, err)
		}
		failedOver := false
		if !ep.replica && leaderFailure(err) {
			// The leader is unreachable, fenced, or refusing writes: probe
			// the full replica set for the highest-epoch writable node and
			// re-route leader traffic there.
			if c.failover(trace) {
				useLeader = true
				canRetry = true
				failedOver = true
			}
		}
		if attempt >= c.cfg.QueryRetries || !canRetry {
			return nil, err
		}
		if c.budget.Add(-1) < 0 {
			c.retryGiveups.Inc()
			c.logf("client: trace=%d retry budget exhausted after %v", trace, err)
			return nil, err
		}
		delay := c.retryDelay(backoff, err)
		if fellBack && se != nil {
			// A staleness refusal says nothing about the leader's health;
			// redirect immediately instead of backing off.
			delay = 0
		}
		if failedOver {
			// The probe already spent wall clock finding a live leader.
			delay = 0
		}
		c.logf("client: trace=%d attempt %d failed (%v); retrying in %s", trace, attempt+1, err, delay)
		if !c.sleep(delay) {
			return nil, errClosed
		}
		c.retries.Inc()
		if backoff *= 2; backoff > c.cfg.MaxBackoff {
			backoff = c.cfg.MaxBackoff
		}
	}
}

// retryable reports whether running the call again could succeed. Only
// read-only calls reach here, so the question is purely "is this failure
// transient": server sheds and drains are, query errors and timeouts are
// the query's own fault, and everything non-ServerError is a transport
// failure where re-running cannot double-apply anything.
func retryable(err error) bool {
	var se *ServerError
	if errors.As(err, &se) {
		return se.Code == wire.CodeBusy || se.Code == wire.CodeDraining
	}
	return !errors.Is(err, errClosed) && !errors.Is(err, ErrBreakerOpen)
}

// retryDelay computes the jittered backoff for the next attempt: at
// least max(backoff, server hint), plus up to half that again of seeded
// jitter so synchronized clients do not retry in lockstep.
func (c *Client) retryDelay(backoff time.Duration, err error) time.Duration {
	base := backoff
	var se *ServerError
	if errors.As(err, &se) && se.RetryAfterMs > 0 {
		if hint := time.Duration(se.RetryAfterMs) * time.Millisecond; hint > base {
			base = hint
		}
	}
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(base/2) + 1))
	c.rngMu.Unlock()
	return base + j
}

// sleep blocks for d unless the client closes first; it reports whether
// the full duration elapsed.
func (c *Client) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.ctx.Done():
		return false
	}
}

// Session returns a dedicated connection for stateful use, always on the
// leader (session state — pins, time defaults — must see every commit the
// moment it lands). Its Close closes the underlying connection rather
// than pooling it, because session options would leak into unrelated
// queries.
func (c *Client) Session() (*Session, error) {
	cn, err := c.dialRetry(c.leader.Load())
	if err != nil && leaderFailure(err) && c.failover(0) {
		// The leader moved: one more dial at the probe's winner.
		cn, err = c.dialRetry(c.leader.Load())
	}
	if err != nil {
		return nil, err
	}
	return &Session{cn: cn, c: c}, nil
}

func (c *Client) withConn(ep *endpoint, fn func(*conn) (*Result, error)) (*Result, error) {
	cn, err := c.get(ep)
	if err != nil {
		return nil, err
	}
	res, err := fn(cn)
	if err != nil && !isSessionUsable(err) {
		cn.close()
		return res, err
	}
	c.put(ep, cn)
	return res, err
}

// isSessionUsable reports whether the connection survives the error: the
// server keeps a session open across query-level failures and admission
// sheds (a shed says "later", not "goodbye").
func isSessionUsable(err error) bool {
	var se *ServerError
	if errors.As(err, &se) {
		return se.Code == wire.CodeQuery || se.Code == wire.CodeTimeout || se.Code == wire.CodeBusy
	}
	return false
}

func (c *Client) get(ep *endpoint) (*conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClosed
	}
	c.mu.Unlock()
	ep.mu.Lock()
	if n := len(ep.idle); n > 0 {
		cn := ep.idle[n-1]
		ep.idle = ep.idle[:n-1]
		ep.mu.Unlock()
		return cn, nil
	}
	ep.mu.Unlock()
	return c.dialRetry(ep)
}

func (c *Client) put(ep *endpoint, cn *conn) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	ep.mu.Lock()
	if !closed && len(ep.idle) < c.cfg.PoolSize {
		ep.idle = append(ep.idle, cn)
		ep.mu.Unlock()
		return
	}
	ep.mu.Unlock()
	cn.close()
}

// dialRetry dials with the handshake, retrying transient failures. The
// backoff sleep aborts as soon as the client closes — a Close must never
// wait out a retry schedule.
func (c *Client) dialRetry(ep *endpoint) (*conn, error) {
	backoff := c.cfg.RetryBackoff
	var last error
	for attempt := 0; attempt <= c.cfg.DialRetries; attempt++ {
		if attempt > 0 {
			if !c.sleep(backoff) {
				return nil, errClosed
			}
			backoff *= 2
		}
		cn, err := c.dial(ep)
		if err == nil {
			return cn, nil
		}
		last = err
		if !isTransientDial(err) {
			break
		}
	}
	return nil, fmt.Errorf("client: dial %s: %w", ep.addr, last)
}

// isTransientDial reports whether retrying the dial could help: the
// server not yet listening, a timeout, or an at-capacity/draining server.
func isTransientDial(err error) bool {
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var se *ServerError
	if errors.As(err, &se) {
		return se.Code == wire.CodeBusy
	}
	return false
}

// dial makes one connection attempt including the Hello/Welcome handshake.
// Replica connections additionally set the "max_staleness" session option
// when the config bounds staleness, so the server sheds too-stale reads
// with CodeStale before running them.
func (c *Client) dial(ep *endpoint) (*conn, error) {
	raw, err := net.DialTimeout("tcp", ep.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	cn := &conn{cfg: c.cfg, c: raw, r: bufio.NewReader(raw)}
	if err := cn.write(wire.FrameHello, wire.EncodeHello(c.cfg.Banner)); err != nil {
		cn.close()
		return nil, err
	}
	f, err := cn.read(c.cfg.DialTimeout)
	if err != nil {
		cn.close()
		return nil, err
	}
	switch f.Type {
	case wire.FrameWelcome:
		info, err := wire.DecodeWelcomeInfo(f.Payload)
		if err != nil {
			cn.close()
			return nil, err
		}
		cn.sessionID = info.Session
		cn.epoch = info.Epoch
		cn.writable = info.Writable
		c.noteEpoch(info.Epoch)
		if ep.replica && c.cfg.MaxStaleness > 0 {
			if _, err := cn.option("max_staleness", c.cfg.MaxStaleness.String()); err != nil {
				cn.close()
				return nil, fmt.Errorf("client: setting max_staleness on %s: %w", ep.addr, err)
			}
		}
		return cn, nil
	case wire.FrameError:
		cn.close()
		return nil, decodeServerError(f.Payload)
	default:
		cn.close()
		return nil, fmt.Errorf("client: unexpected handshake frame 0x%02x", f.Type)
	}
}

func decodeServerError(payload []byte) error {
	code, msg, detail, retryAfter, err := wire.DecodeErrorRetry(payload)
	if err != nil {
		return fmt.Errorf("client: malformed error frame: %w", err)
	}
	return &ServerError{Code: code, Msg: msg, Detail: detail, RetryAfterMs: retryAfter}
}
