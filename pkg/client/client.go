// Package client is the Go client for the tcodm query service. It speaks
// the wire protocol, pools connections for stateless queries, and retries
// transient dial failures (refused, timed out, or server-busy) with
// exponential backoff.
//
// Stateless queries go through Client.Query/Exec, which borrow a pooled
// connection per call. Stateful workflows — time-slice defaults, pinned
// read views ("begin"/"end") — need a dedicated connection: use
// Client.Session, whose connection never returns to the pool.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"

	"tcodm/internal/value"
	"tcodm/internal/wire"
)

// Config parameterizes a Client. Addr is required.
type Config struct {
	Addr         string
	Banner       string        // sent in the Hello frame
	DialTimeout  time.Duration // per-attempt dial timeout (default 5s)
	DialRetries  int           // extra attempts after a transient failure (default 3)
	RetryBackoff time.Duration // first backoff, doubling per retry (default 50ms)
	PoolSize     int           // max idle pooled connections (default 4)
	ReadTimeout  time.Duration // per-response deadline; 0 = wait indefinitely
	WriteTimeout time.Duration // per-request deadline (default 30s)
}

func (c Config) withDefaults() Config {
	if c.Banner == "" {
		c.Banner = "tcodm-client/1"
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.DialRetries < 0 {
		c.DialRetries = 0
	} else if c.DialRetries == 0 {
		c.DialRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// ServerError is a failure reported by the server in an Error frame.
type ServerError struct {
	Code   uint16
	Msg    string
	Detail string
}

func (e *ServerError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("server error %d: %s (%s)", e.Code, e.Msg, e.Detail)
	}
	return fmt.Sprintf("server error %d: %s", e.Code, e.Msg)
}

// Result is one query's outcome.
type Result struct {
	Columns   []string
	Rows      [][]value.V
	Plan      string
	Molecules uint64        // molecules summarized (SELECT ALL)
	Elapsed   time.Duration // server-side execution + streaming time
}

// Client is a pooled connection to one server.
type Client struct {
	cfg    Config
	mu     sync.Mutex
	idle   []*conn
	closed bool
}

// New creates a client for cfg.Addr. No connection is made until first use.
func New(cfg Config) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("client: Config.Addr is required")
	}
	return &Client{cfg: cfg.withDefaults()}, nil
}

// Dial creates a client and verifies the server is reachable with a Ping.
func Dial(addr string) (*Client, error) {
	c, err := New(Config{Addr: addr})
	if err != nil {
		return nil, err
	}
	if err := c.Ping(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes every pooled connection. In-flight calls finish on their
// borrowed connections, which are then discarded.
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, cn := range idle {
		cn.close()
	}
	return nil
}

// Query runs a TMQL statement on a pooled connection.
func (c *Client) Query(text string) (*Result, error) {
	return c.withConn(func(cn *conn) (*Result, error) {
		return cn.query(wire.FrameQuery, wire.EncodeQuery(text))
	})
}

// Exec runs parameterized TMQL: $1..$n placeholders in text bind to
// params server-side.
func (c *Client) Exec(text string, params ...value.V) (*Result, error) {
	return c.withConn(func(cn *conn) (*Result, error) {
		return cn.query(wire.FrameExec, wire.EncodeExec(text, params))
	})
}

// Ping round-trips a liveness probe on a pooled connection.
func (c *Client) Ping() error {
	_, err := c.withConn(func(cn *conn) (*Result, error) {
		return nil, cn.ping()
	})
	return err
}

// Session returns a dedicated connection for stateful use. Its Close
// closes the underlying connection rather than pooling it, because
// session options would leak into unrelated queries.
func (c *Client) Session() (*Session, error) {
	cn, err := c.dialRetry()
	if err != nil {
		return nil, err
	}
	return &Session{cn: cn}, nil
}

func (c *Client) withConn(fn func(*conn) (*Result, error)) (*Result, error) {
	cn, err := c.get()
	if err != nil {
		return nil, err
	}
	res, err := fn(cn)
	if err != nil && !isSessionUsable(err) {
		cn.close()
		return res, err
	}
	c.put(cn)
	return res, err
}

// isSessionUsable reports whether the connection survives the error: the
// server keeps a session open across query-level failures.
func isSessionUsable(err error) bool {
	var se *ServerError
	if errors.As(err, &se) {
		return se.Code == wire.CodeQuery || se.Code == wire.CodeTimeout
	}
	return false
}

func (c *Client) get() (*conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("client: closed")
	}
	if n := len(c.idle); n > 0 {
		cn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()
	return c.dialRetry()
}

func (c *Client) put(cn *conn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.cfg.PoolSize {
		c.idle = append(c.idle, cn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	cn.close()
}

// dialRetry dials with the handshake, retrying transient failures.
func (c *Client) dialRetry() (*conn, error) {
	backoff := c.cfg.RetryBackoff
	var last error
	for attempt := 0; attempt <= c.cfg.DialRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		cn, err := c.dial()
		if err == nil {
			return cn, nil
		}
		last = err
		if !isTransientDial(err) {
			break
		}
	}
	return nil, fmt.Errorf("client: dial %s: %w", c.cfg.Addr, last)
}

// isTransientDial reports whether retrying the dial could help: the
// server not yet listening, a timeout, or an at-capacity/draining server.
func isTransientDial(err error) bool {
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var se *ServerError
	if errors.As(err, &se) {
		return se.Code == wire.CodeBusy
	}
	return false
}

// dial makes one connection attempt including the Hello/Welcome handshake.
func (c *Client) dial() (*conn, error) {
	raw, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	cn := &conn{cfg: c.cfg, c: raw, r: bufio.NewReader(raw)}
	if err := cn.write(wire.FrameHello, wire.EncodeHello(c.cfg.Banner)); err != nil {
		cn.close()
		return nil, err
	}
	f, err := cn.read(c.cfg.DialTimeout)
	if err != nil {
		cn.close()
		return nil, err
	}
	switch f.Type {
	case wire.FrameWelcome:
		_, sid, err := wire.DecodeWelcome(f.Payload)
		if err != nil {
			cn.close()
			return nil, err
		}
		cn.sessionID = sid
		return cn, nil
	case wire.FrameError:
		cn.close()
		return nil, decodeServerError(f.Payload)
	default:
		cn.close()
		return nil, fmt.Errorf("client: unexpected handshake frame 0x%02x", f.Type)
	}
}

func decodeServerError(payload []byte) error {
	code, msg, detail, err := wire.DecodeError(payload)
	if err != nil {
		return fmt.Errorf("client: malformed error frame: %w", err)
	}
	return &ServerError{Code: code, Msg: msg, Detail: detail}
}
