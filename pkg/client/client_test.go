package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/netfault"
	"tcodm/internal/obs"
	"tcodm/internal/server"
	"tcodm/internal/value"
	"tcodm/internal/wire"
	"tcodm/internal/workload"
)

// fakeServer speaks just enough wire protocol for retry tests: it
// handshakes every connection and answers each query via respond, which
// receives the global 1-based query sequence number. Ping always pongs.
func fakeServer(t *testing.T, respond func(c net.Conn, n int)) (addr string, queries *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var count atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				f, err := wire.ReadFrame(c)
				if err != nil || f.Type != wire.FrameHello {
					return
				}
				if err := wire.WriteFrame(c, wire.FrameWelcome, wire.EncodeWelcome("fake", 1)); err != nil {
					return
				}
				for {
					f, err := wire.ReadFrame(c)
					if err != nil {
						return
					}
					switch f.Type {
					case wire.FramePing:
						wire.WriteFrame(c, wire.FramePong, f.Payload)
					case wire.FrameQuery, wire.FrameExec:
						respond(c, int(count.Add(1)))
					case wire.FrameClose:
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), &count
}

// writeOKResult streams a one-row result.
func writeOKResult(c net.Conn) {
	wire.WriteFrame(c, wire.FrameResultHeader, wire.EncodeResultHeader([]string{"n"}))
	wire.WriteFrame(c, wire.FrameResultRows, wire.EncodeResultRows([][]value.V{{value.Int(1)}}))
	wire.WriteFrame(c, wire.FrameResultDone, wire.EncodeResultDone(wire.ResultDone{Rows: 1}))
}

// TestDialBackoffInterruptedByClose is the regression test for the
// context-blind backoff sleep: Close must interrupt a dial retry
// schedule promptly instead of waiting it out.
func TestDialBackoffInterruptedByClose(t *testing.T) {
	// A port with nothing listening: dials fail instantly with refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cl, err := New(Config{
		Addr:            addr,
		DialRetries:     5,
		RetryBackoff:    400 * time.Millisecond,
		QueryRetries:    -1,
		BreakerFailures: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- cl.Ping() }()
	time.Sleep(30 * time.Millisecond) // let the first dial fail and the backoff start
	cl.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Ping succeeded against a dead address")
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("Close took %v to interrupt the dial backoff", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close never interrupted the dial backoff")
	}
}

func TestQueryRetryHonorsRetryAfterHint(t *testing.T) {
	addr, queries := fakeServer(t, func(c net.Conn, n int) {
		if n == 1 {
			wire.WriteFrame(c, wire.FrameError, wire.EncodeErrorRetry(wire.CodeBusy, "overloaded", "", 200))
			return
		}
		writeOKResult(c)
	})
	reg := obs.New()
	cl, err := New(Config{
		Addr:         addr,
		RetryBackoff: time.Millisecond, // the server hint must dominate
		JitterSeed:   1,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	res, err := cl.Query(`SELECT (n) FROM T`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("retried query: %v", err)
	}
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Fatalf("retry fired after %v, before the 200ms server hint", d)
	}
	if got := queries.Load(); got != 2 {
		t.Fatalf("server saw %d queries, want 2 (shed + retry)", got)
	}
	if got := reg.Counters()["client.retry"]; got != 1 {
		t.Fatalf("client.retry = %d, want 1", got)
	}
}

func TestSessionNeverAutoRetries(t *testing.T) {
	addr, queries := fakeServer(t, func(c net.Conn, n int) {
		wire.WriteFrame(c, wire.FrameError, wire.EncodeErrorRetry(wire.CodeBusy, "overloaded", "", 50))
	})
	cl, err := New(Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sess, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	_, err = sess.Query(`SELECT (n) FROM T`)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeBusy {
		t.Fatalf("expected the shed to surface unretried, got %v", err)
	}
	if se.RetryAfterMs != 50 {
		t.Fatalf("RetryAfterMs = %d, want 50", se.RetryAfterMs)
	}
	if got := queries.Load(); got != 1 {
		t.Fatalf("server saw %d queries from a session call, want exactly 1", got)
	}
}

// TestPoolHygieneMidResultError is the satellite check: a connection that
// errors mid-result must be discarded, never returned to the idle pool.
func TestPoolHygieneMidResultError(t *testing.T) {
	addr, queries := fakeServer(t, func(c net.Conn, n int) {
		if n == 1 {
			// Header and one batch, then the connection dies mid-stream.
			wire.WriteFrame(c, wire.FrameResultHeader, wire.EncodeResultHeader([]string{"n"}))
			wire.WriteFrame(c, wire.FrameResultRows, wire.EncodeResultRows([][]value.V{{value.Int(1)}}))
			c.Close()
			return
		}
		writeOKResult(c)
	})
	cl, err := New(Config{Addr: addr, QueryRetries: -1, BreakerFailures: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Query(`SELECT (n) FROM T`); err == nil {
		t.Fatal("expected a transport error from the cut result stream")
	}
	leader := cl.leader.Load()
	leader.mu.Lock()
	pooled := len(leader.idle)
	leader.mu.Unlock()
	if pooled != 0 {
		t.Fatalf("%d connections pooled after a mid-result transport error", pooled)
	}
	// The next query dials fresh and succeeds.
	if res, err := cl.Query(`SELECT (n) FROM T`); err != nil || len(res.Rows) != 1 {
		t.Fatalf("query after discard: %v", err)
	}
	if got := queries.Load(); got != 2 {
		t.Fatalf("server saw %d queries, want 2", got)
	}
}

// startRealServer serves an engine for breaker/leak tests.
func startRealServer(t *testing.T, eng *core.Engine) string {
	t.Helper()
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-served
	})
	return ln.Addr().String()
}

func emptyEngine(t *testing.T) *core.Engine {
	t.Helper()
	eng, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// TestBreakerOpensHalfOpensRecovers drives the breaker through its full
// state machine with scripted accept-time refusals: two failures open it,
// a failed half-open probe re-opens it, a successful probe closes it.
func TestBreakerOpensHalfOpensRecovers(t *testing.T) {
	addr := startRealServer(t, emptyEngine(t))
	proxy, err := netfault.NewProxy(addr, 1, func(i int) netfault.Script {
		return netfault.Script{RefuseAccept: i < 3} // first three dials die
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	reg := obs.New()
	cl, err := New(Config{
		Addr:            proxy.Addr(),
		DialRetries:     -1, // one dial per call: failures are countable
		QueryRetries:    -1,
		BreakerFailures: 2,
		BreakerCooldown: 50 * time.Millisecond,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("first refused dial: got %v", err)
	}
	if err := cl.Ping(); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second refused dial: got %v", err)
	}
	// Two consecutive transport failures: open. Calls fail fast now.
	if err := cl.Ping(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("expected ErrBreakerOpen, got %v", err)
	}
	if got := proxy.Accepted(); got != 2 {
		t.Fatalf("fast-fail still dialed: %d accepts, want 2", got)
	}

	// After the cooldown one probe goes through — and is refused: re-open.
	time.Sleep(70 * time.Millisecond)
	if err := cl.Ping(); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("half-open probe: got %v", err)
	}
	if err := cl.Ping(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("expected re-opened breaker, got %v", err)
	}

	// Next probe reaches the healthy server: the circuit closes for good.
	time.Sleep(70 * time.Millisecond)
	if err := cl.Ping(); err != nil {
		t.Fatalf("recovery probe: %v", err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("closed breaker: %v", err)
	}
	if got := reg.Counters()["client.breaker_open"]; got != 2 {
		t.Fatalf("client.breaker_open = %d, want 2", got)
	}
	if got := cl.brk.snapshot(); got != breakerClosed {
		t.Fatalf("breaker state = %d, want closed", got)
	}
}

func personnelEngine(t *testing.T) *core.Engine {
	t.Helper()
	eng := emptyEngine(t)
	sch, err := workload.PersonnelSchema()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(n)
		if err := eng.DefineAtomType(*at); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range sch.MoleculeTypeNames() {
		mt, _ := sch.MoleculeType(n)
		if err := eng.DefineMoleculeType(*mt); err != nil {
			t.Fatal(err)
		}
	}
	app := workload.NewEngineApplier(eng, 256)
	ops := workload.Personnel(workload.PersonnelParams{
		Depts: 2, Emps: 20, UpdatesPerEmp: 2, MovesPerEmp: 1, TimeStep: 10, Seed: 42,
	})
	if _, err := workload.Apply(ops, app); err != nil {
		t.Fatal(err)
	}
	if err := app.Flush(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func openFDs(t *testing.T) int {
	t.Helper()
	entries, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd on this platform: %v", err)
	}
	return len(entries)
}

// TestChaosQueriesNoLeaks runs 1k queries through a fault-injecting proxy
// that corrupts a slice of the connections; every successful result must
// be correct, and afterwards no goroutines or file descriptors may leak.
func TestChaosQueriesNoLeaks(t *testing.T) {
	const total = 1000
	eng := personnelEngine(t)
	addr := startRealServer(t, eng)

	const q = `SELECT (name) FROM Emp WHERE salary > 2000`
	golden, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	startGoroutines := runtime.NumGoroutine()
	startFDs := openFDs(t)

	proxy, err := netfault.NewProxy(addr, 7, func(i int) netfault.Script {
		switch {
		case i%7 == 3:
			// Corrupt the client-to-server stream inside the first query
			// frame (past the ~25-byte handshake): the server's CRC check
			// rejects it and kills the session.
			return netfault.Script{Read: netfault.PipeScript{CorruptAt: 40}}
		case i%11 == 5:
			// Corrupt the server-to-client result stream past the Welcome.
			return netfault.Script{Write: netfault.PipeScript{CorruptAt: 100}}
		default:
			return netfault.Script{}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	cl, err := New(Config{
		Addr:            proxy.Addr(),
		QueryRetries:    5,
		RetryBackoff:    time.Millisecond,
		MaxBackoff:      5 * time.Millisecond,
		RetryBudget:     -1,
		BreakerFailures: -1, // fault density here would flap the breaker
		JitterSeed:      7,
		PoolSize:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		res, err := cl.Query(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(res.Rows) != len(golden.Rows) {
			t.Fatalf("query %d: %d rows, want %d — corruption produced a wrong answer", i, len(res.Rows), len(golden.Rows))
		}
	}
	cl.Close()
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	if got := proxy.Conns(); got != 0 {
		t.Fatalf("%d proxied connections leaked", got)
	}

	// Goroutines and fds must settle back to the baseline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= startGoroutines+5 && openFDs(t) <= startFDs+5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak: goroutines %d->%d, fds %d->%d",
				startGoroutines, runtime.NumGoroutine(), startFDs, openFDs(t))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRetryLogCarriesTraceID: one logical call keeps one trace id across
// retries, the id lands in every Logf line, and the server-reported trace
// and resource totals surface on the Result.
func TestRetryLogCarriesTraceID(t *testing.T) {
	var tracesMu sync.Mutex
	var traces []uint64 // trace id decoded from each received Query frame

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var count atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				f, err := wire.ReadFrame(c)
				if err != nil || f.Type != wire.FrameHello {
					return
				}
				wire.WriteFrame(c, wire.FrameWelcome, wire.EncodeWelcome("fake", 1))
				for {
					f, err := wire.ReadFrame(c)
					if err != nil {
						return
					}
					if f.Type != wire.FrameQuery {
						continue
					}
					_, trace, err := wire.DecodeQueryTrace(f.Payload)
					if err != nil {
						t.Errorf("decoding traced query: %v", err)
						return
					}
					tracesMu.Lock()
					traces = append(traces, trace)
					tracesMu.Unlock()
					if count.Add(1) == 1 {
						// First attempt sheds: the client must retry with the
						// SAME trace id (one logical call, one trace).
						wire.WriteFrame(c, wire.FrameError, wire.EncodeErrorRetry(wire.CodeBusy, "overloaded", "", 5))
						continue
					}
					wire.WriteFrame(c, wire.FrameResultHeader, wire.EncodeResultHeader([]string{"n"}))
					wire.WriteFrame(c, wire.FrameResultRows, wire.EncodeResultRows([][]value.V{{value.Int(1)}}))
					wire.WriteFrame(c, wire.FrameResultDone, wire.EncodeResultDone(wire.ResultDone{
						Rows: 1, Trace: trace, Res: obs.Resources{Atoms: 1, Pages: 2},
					}))
				}
			}()
		}
	}()

	var logMu sync.Mutex
	var logLines []string
	cl, err := New(Config{
		Addr:         ln.Addr().String(),
		RetryBackoff: time.Millisecond,
		JitterSeed:   3,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logLines = append(logLines, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.Query(`SELECT (n) FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == 0 {
		t.Fatal("Result.Trace is 0; the client must stamp every query")
	}
	if res.Res.Atoms != 1 || res.Res.Pages != 2 {
		t.Fatalf("Result.Res = %s, want the server-reported totals", res.Res)
	}

	tracesMu.Lock()
	defer tracesMu.Unlock()
	if len(traces) != 2 {
		t.Fatalf("server saw %d queries, want 2", len(traces))
	}
	if traces[0] == 0 || traces[0] != traces[1] {
		t.Fatalf("retry changed the trace id: %d then %d", traces[0], traces[1])
	}
	if traces[0] != res.Trace {
		t.Fatalf("wire trace %d != Result.Trace %d", traces[0], res.Trace)
	}

	logMu.Lock()
	defer logMu.Unlock()
	if len(logLines) == 0 {
		t.Fatal("no Logf lines for a retried query")
	}
	want := fmt.Sprintf("trace=%d", res.Trace)
	for i, line := range logLines {
		if !strings.Contains(line, want) {
			t.Errorf("log line %d %q missing %q", i, line, want)
		}
	}
}
