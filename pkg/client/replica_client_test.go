package client

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcodm/internal/obs"
	"tcodm/internal/value"
	"tcodm/internal/wire"
)

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"empty leader", Config{}, "Addr"},
		{"malformed leader", Config{Addr: "no-port"}, "Addr"},
		{"empty replica", Config{Addr: "a:1", Replicas: []string{""}}, "Replicas[0]"},
		{"malformed replica", Config{Addr: "a:1", Replicas: []string{"b:1", "nope"}}, "Replicas[1]"},
		{"replica duplicates leader", Config{Addr: "a:1", Replicas: []string{"a:1"}}, "Replicas[0]"},
		{"replica duplicates replica", Config{Addr: "a:1", Replicas: []string{"b:1", "b:1"}}, "Replicas[1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("New(%+v) err = %v, want *ConfigError", tc.cfg, err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
		})
	}

	// A well-formed spread constructs fine.
	cl, err := New(Config{Addr: "a:1", Replicas: []string{"b:1", "c:1"}})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
}

// replicaEndpoint fakes one server that also answers Option frames,
// recording every option it receives.
func replicaEndpoint(t *testing.T, respond func(c net.Conn)) (addr string, queries *atomic.Int64, options *sync.Map) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var count atomic.Int64
	var opts sync.Map
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				f, err := wire.ReadFrame(c)
				if err != nil || f.Type != wire.FrameHello {
					return
				}
				if err := wire.WriteFrame(c, wire.FrameWelcome, wire.EncodeWelcome("fake", 1)); err != nil {
					return
				}
				for {
					f, err := wire.ReadFrame(c)
					if err != nil {
						return
					}
					switch f.Type {
					case wire.FramePing:
						wire.WriteFrame(c, wire.FramePong, f.Payload)
					case wire.FrameOption:
						key, val, err := wire.DecodeOption(f.Payload)
						if err != nil {
							return
						}
						opts.Store(key, val)
						wire.WriteFrame(c, wire.FrameAck, wire.EncodeAck(val))
					case wire.FrameQuery, wire.FrameExec:
						count.Add(1)
						respond(c)
					case wire.FrameClose:
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), &count, &opts
}

func TestReadsRoundRobinAcrossReplicas(t *testing.T) {
	leader, leaderQ, _ := replicaEndpoint(t, writeOKResult)
	r1, q1, _ := replicaEndpoint(t, writeOKResult)
	r2, q2, _ := replicaEndpoint(t, writeOKResult)

	cl, err := New(Config{Addr: leader, Replicas: []string{r1, r2}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 6; i++ {
		if _, err := cl.Query(`SELECT (n) FROM T`); err != nil {
			t.Fatal(err)
		}
	}
	if got := leaderQ.Load(); got != 0 {
		t.Errorf("leader served %d reads; replicas should take them all", got)
	}
	if q1.Load() != 3 || q2.Load() != 3 {
		t.Errorf("replica split = %d/%d, want 3/3", q1.Load(), q2.Load())
	}
}

func TestStaleReplicaFallsBackToLeader(t *testing.T) {
	leader, leaderQ, _ := replicaEndpoint(t, writeOKResult)
	stale, staleQ, staleOpts := replicaEndpoint(t, func(c net.Conn) {
		wire.WriteFrame(c, wire.FrameError, wire.EncodeErrorRetry(wire.CodeStale, "replica lagging", "", 0))
	})

	reg := obs.New()
	cl, err := New(Config{
		Addr: leader, Replicas: []string{stale},
		MaxStaleness: 250 * time.Millisecond,
		RetryBackoff: time.Hour, // the redirect must NOT wait out a backoff
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	res, err := cl.Query(`SELECT (n) FROM T`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("query with stale replica: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("staleness redirect took %v; should skip the backoff sleep", d)
	}
	if staleQ.Load() != 1 || leaderQ.Load() != 1 {
		t.Errorf("queries: replica=%d leader=%d, want 1/1", staleQ.Load(), leaderQ.Load())
	}
	if got := reg.Counters()["client.replica_fallback"]; got != 1 {
		t.Errorf("client.replica_fallback = %d, want 1", got)
	}
	// The bound travelled to the replica as a session option at dial time.
	if v, ok := staleOpts.Load("max_staleness"); !ok || v != "250ms" {
		t.Errorf("replica saw max_staleness = %v, want 250ms", v)
	}
}

func TestDeadReplicaFallsBackToLeader(t *testing.T) {
	leader, leaderQ, _ := replicaEndpoint(t, writeOKResult)
	// A port with nothing behind it: replica dials fail outright.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	cl, err := New(Config{
		Addr: leader, Replicas: []string{dead},
		DialRetries:  -1,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.Query(`SELECT (n) FROM T`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("query with dead replica: %v", err)
	}
	if got := leaderQ.Load(); got != 1 {
		t.Errorf("leader served %d queries, want the fallback", got)
	}
	// Replica transport failures must not have opened the client breaker.
	if err := cl.brk.allow(); err != nil {
		t.Errorf("breaker tripped by replica-only failures: %v", err)
	}
}

func TestSessionsAlwaysUseLeader(t *testing.T) {
	leader, leaderQ, _ := replicaEndpoint(t, writeOKResult)
	r1, q1, _ := replicaEndpoint(t, writeOKResult)

	cl, err := New(Config{Addr: leader, Replicas: []string{r1}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sess, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Query(`SELECT (n) FROM T`); err != nil {
		t.Fatal(err)
	}
	if leaderQ.Load() != 1 || q1.Load() != 0 {
		t.Errorf("session query went to replica (leader=%d replica=%d)", leaderQ.Load(), q1.Load())
	}
}

// TestWatermarkSurfacesOnResult pins the wire plumbing: a server that
// stamps its ResultDone with a watermark sees it surface on the client
// Result.
func TestWatermarkSurfacesOnResult(t *testing.T) {
	addr, _, _ := replicaEndpoint(t, func(c net.Conn) {
		wire.WriteFrame(c, wire.FrameResultHeader, wire.EncodeResultHeader([]string{"n"}))
		wire.WriteFrame(c, wire.FrameResultRows, wire.EncodeResultRows([][]value.V{{value.Int(1)}}))
		wire.WriteFrame(c, wire.FrameResultDone, wire.EncodeResultDone(wire.ResultDone{Rows: 1, Watermark: 42}))
	})
	cl, err := New(Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Query(`SELECT (n) FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Watermark != 42 {
		t.Errorf("Result.Watermark = %d, want 42", res.Watermark)
	}
}
