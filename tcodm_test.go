package tcodm_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"tcodm"
)

func defineEmp(t *testing.T, db *tcodm.DB) {
	t.Helper()
	err := db.DefineAtomType(tcodm.AtomType{
		Name: "Emp",
		Attrs: []tcodm.Attribute{
			{Name: "name", Kind: tcodm.KindString, Required: true},
			{Name: "salary", Kind: tcodm.KindInt, Temporal: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	db, err := tcodm.Open(tcodm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defineEmp(t, db)

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	id, err := tx.Insert("Emp", tcodm.Attrs{
		"name":   tcodm.String("kaefer"),
		"salary": tcodm.Int(4200),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Set(id, "salary", tcodm.Int(5000), 100); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	st, err := db.StateAt(id, 50, tcodm.Now)
	if err != nil {
		t.Fatal(err)
	}
	if st.Vals["salary"].AsInt() != 4200 {
		t.Errorf("salary at 50 = %v", st.Vals["salary"])
	}
	st, _ = db.StateAt(id, 150, tcodm.Now)
	if st.Vals["salary"].AsInt() != 5000 {
		t.Errorf("salary at 150 = %v", st.Vals["salary"])
	}

	hist, err := db.History(id, "salary", tcodm.Now)
	if err != nil || len(hist) != 2 {
		t.Fatalf("history = %v (%v)", hist, err)
	}

	res, err := db.Query(`SELECT HISTORY(salary) FROM Emp DURING [0, 200)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("history query rows = %v", res.Rows)
	}
}

func TestPublicAPIStrategies(t *testing.T) {
	for _, strat := range []tcodm.Strategy{tcodm.StrategyEmbedded, tcodm.StrategySeparated, tcodm.StrategyTuple} {
		t.Run(fmt.Sprint(strat), func(t *testing.T) {
			db, err := tcodm.Open(tcodm.Options{Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			defineEmp(t, db)
			tx, _ := db.Begin()
			id, err := tx.Insert("Emp", tcodm.Attrs{"name": tcodm.String("s"), "salary": tcodm.Int(1)}, 0)
			if err != nil {
				t.Fatal(err)
			}
			_ = tx.Commit()
			st, err := db.StateAt(id, 5, tcodm.Now)
			if err != nil || st.Vals["salary"].AsInt() != 1 {
				t.Fatalf("state = %v, %v", st, err)
			}
		})
	}
}

func TestPublicAPIPersistent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "api.tdb")
	db, err := tcodm.Open(tcodm.Options{Path: path, SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defineEmp(t, db)
	tx, _ := db.Begin()
	id, _ := tx.Insert("Emp", tcodm.Attrs{"name": tcodm.String("p"), "salary": tcodm.Int(2)}, 0)
	_ = tx.Commit()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := tcodm.Open(tcodm.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st, err := db2.StateAt(id, 5, tcodm.Now)
	if err != nil || st.Vals["name"].AsString() != "p" {
		t.Fatalf("reopened state = %v, %v", st, err)
	}
}

// Example demonstrates the package-level quick start.
func Example() {
	db, err := tcodm.Open(tcodm.Options{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	_ = db.DefineAtomType(tcodm.AtomType{
		Name: "Emp",
		Attrs: []tcodm.Attribute{
			{Name: "name", Kind: tcodm.KindString, Required: true},
			{Name: "salary", Kind: tcodm.KindInt, Temporal: true},
		},
	})
	tx, _ := db.Begin()
	id, _ := tx.Insert("Emp", tcodm.Attrs{"name": tcodm.String("kaefer"), "salary": tcodm.Int(4200)}, 0)
	_ = tx.Set(id, "salary", tcodm.Int(5000), 100)
	_ = tx.Commit()

	before, _ := db.StateAt(id, 50, tcodm.Now)
	after, _ := db.StateAt(id, 150, tcodm.Now)
	fmt.Println(before.Vals["salary"], after.Vals["salary"])
	// Output: 4200 5000
}
