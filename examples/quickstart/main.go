// Command quickstart demonstrates the minimal workflow: define a schema,
// insert and update temporal atoms inside transactions, time-slice the
// database, and read full histories — the basic operations of the temporal
// complex-object data model.
package main

import (
	"fmt"
	"log"

	"tcodm"
)

func main() {
	// An in-memory database; pass Path for a durable one.
	db, err := tcodm.Open(tcodm.Options{Strategy: tcodm.StrategySeparated})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// DDL: one atom type with a temporal salary attribute.
	must(db.DefineAtomType(tcodm.AtomType{
		Name: "Emp",
		Attrs: []tcodm.Attribute{
			{Name: "name", Kind: tcodm.KindString, Required: true},
			{Name: "salary", Kind: tcodm.KindInt, Temporal: true},
		},
	}))

	// A transaction: hire kaefer at valid time 0, give raises at 100 and
	// 200. Valid time is the application's chronon axis (days, say).
	tx, err := db.Begin()
	must(err)
	id, err := tx.Insert("Emp", tcodm.Attrs{
		"name":   tcodm.String("kaefer"),
		"salary": tcodm.Int(4200),
	}, 0)
	must(err)
	must(tx.Set(id, "salary", tcodm.Int(5000), 100))
	must(tx.Set(id, "salary", tcodm.Int(6000), 200))
	must(tx.Commit())

	// Time slices: the database answers "what was true at t?" for any t.
	for _, t := range []tcodm.Instant{50, 150, 250} {
		st, err := db.StateAt(id, t, tcodm.Now)
		must(err)
		fmt.Printf("salary at t=%-3v : %v\n", t, st.Vals["salary"])
	}

	// The full history of the attribute.
	hist, err := db.History(id, "salary", tcodm.Now)
	must(err)
	fmt.Println("salary history:")
	for _, v := range hist {
		fmt.Printf("  %v during %v\n", v.Val, v.Valid)
	}

	// The same through TMQL.
	res, err := db.Query(`SELECT HISTORY(salary) FROM Emp DURING [0, 300)`)
	must(err)
	fmt.Print(res.Table())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
