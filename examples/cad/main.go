// Command cad demonstrates temporal complex objects on the classic design
// database: assemblies of parts with revision histories. It shows dynamic
// molecule derivation (the complex object is computed from links at query
// time), time-sliced materialization ("the engine as designed on day 25"),
// and molecule histories (every configuration the design went through).
package main

import (
	"fmt"
	"log"

	"tcodm"
)

func main() {
	db, err := tcodm.Open(tcodm.Options{Strategy: tcodm.StrategySeparated})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.DefineAtomType(tcodm.AtomType{
		Name: "Assembly",
		Attrs: []tcodm.Attribute{
			{Name: "name", Kind: tcodm.KindString, Required: true},
			{Name: "rev", Kind: tcodm.KindInt, Temporal: true},
		},
	}))
	must(db.DefineAtomType(tcodm.AtomType{
		Name: "Part",
		Attrs: []tcodm.Attribute{
			{Name: "name", Kind: tcodm.KindString, Required: true},
			{Name: "weight", Kind: tcodm.KindInt, Temporal: true},
			{Name: "assembly", Kind: tcodm.KindID, Target: "Assembly", Card: tcodm.One, Temporal: true},
			{Name: "uses", Kind: tcodm.KindID, Target: "Part", Card: tcodm.Many, Temporal: true},
		},
	}))
	// The molecule type: an assembly, its parts (reverse edge over the
	// parts' assembly reference), and the parts they use transitively.
	must(db.DefineMoleculeType(tcodm.MoleculeType{
		Name: "Design",
		Root: "Assembly",
		Edges: []tcodm.MoleculeEdge{
			{From: "Assembly", Attr: "assembly", To: "Part", Reverse: true},
			{From: "Part", Attr: "uses", To: "Part"},
		},
	}))

	// Day 0: the engine assembly with a piston.
	tx, err := db.Begin()
	must(err)
	engine, err := tx.Insert("Assembly", tcodm.Attrs{"name": tcodm.String("engine"), "rev": tcodm.Int(1)}, 0)
	must(err)
	piston, err := tx.Insert("Part", tcodm.Attrs{
		"name": tcodm.String("piston"), "weight": tcodm.Int(300), "assembly": tcodm.Ref(engine),
	}, 0)
	must(err)
	must(tx.Commit())

	// Day 20: a ring is added, used by the piston.
	tx, _ = db.Begin()
	ring, err := tx.Insert("Part", tcodm.Attrs{"name": tcodm.String("ring"), "weight": tcodm.Int(20)}, 20)
	must(err)
	must(tx.AddRef(piston, "uses", ring, tcodm.Open_(20)))
	must(tx.Commit())

	// Day 40: the piston is lightened (weight revision) and the assembly
	// revision bumps.
	tx, _ = db.Begin()
	must(tx.Set(piston, "weight", tcodm.Int(250), 40))
	must(tx.Set(engine, "rev", tcodm.Int(2), 40))
	must(tx.Commit())

	// Day 60: the ring is replaced by a coated ring.
	tx, _ = db.Begin()
	coated, err := tx.Insert("Part", tcodm.Attrs{"name": tcodm.String("coated-ring"), "weight": tcodm.Int(22)}, 60)
	must(err)
	must(tx.RemoveRef(piston, "uses", ring, tcodm.Open_(60)))
	must(tx.AddRef(piston, "uses", coated, tcodm.Open_(60)))
	must(tx.Delete(ring, 60))
	must(tx.Commit())

	// Materialize the design as of several days.
	for _, day := range []tcodm.Instant{10, 30, 70} {
		mol, err := db.Molecule("Design", engine, day, tcodm.Now)
		must(err)
		fmt.Printf("design as of day %-3v: %d atoms:", day, mol.Size())
		for _, p := range mol.AtomsOfType("Part") {
			fmt.Printf(" %v(w=%v)", p.Vals["name"], p.Vals["weight"])
		}
		fmt.Println()
	}

	// The complete configuration history over the first 100 days.
	steps, err := db.MoleculeHistory("Design", engine, tcodm.NewInterval(0, 100), tcodm.Now)
	must(err)
	fmt.Println("\nconfiguration history:")
	for _, s := range steps {
		fmt.Printf("  %v: %d atoms, assembly rev %v\n",
			s.During, s.Mol.Size(), s.Mol.Atoms[engine].Vals["rev"])
	}

	// TMQL over the design database.
	res, err := db.Query(`SELECT (Assembly.name, COUNT(Part)) FROM Design AT 70`)
	must(err)
	fmt.Println("\nparts per assembly at day 70:")
	fmt.Print(res.Table())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
