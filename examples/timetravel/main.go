// Command timetravel demonstrates the bitemporal dimension: retroactive
// corrections (valid-time splices into the past) and transaction-time
// travel (ASOF queries reconstructing what the database believed at an
// earlier point) — including their combination, "what did we think on
// day X the salary had been on day Y?".
package main

import (
	"fmt"
	"log"

	"tcodm"
)

func main() {
	db, err := tcodm.Open(tcodm.Options{Strategy: tcodm.StrategyEmbedded})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.DefineAtomType(tcodm.AtomType{
		Name: "Emp",
		Attrs: []tcodm.Attribute{
			{Name: "name", Kind: tcodm.KindString, Required: true},
			{Name: "salary", Kind: tcodm.KindInt, Temporal: true},
		},
	}))

	// Transaction 1: hire at valid time 0 with salary 1000.
	tx, err := db.Begin()
	must(err)
	tt1 := tx.TT()
	id, err := tx.Insert("Emp", tcodm.Attrs{"name": tcodm.String("w"), "salary": tcodm.Int(1000)}, 0)
	must(err)
	must(tx.Commit())

	// Transaction 2: a raise to 2000 from valid time 100.
	tx, _ = db.Begin()
	tt2 := tx.TT()
	must(tx.Set(id, "salary", tcodm.Int(2000), 100))
	must(tx.Commit())

	// Transaction 3: payroll discovers the raise was actually effective
	// from valid time 80 — a retroactive correction of the past.
	tx, _ = db.Begin()
	tt3 := tx.TT()
	must(tx.Update(id, "salary", tcodm.Int(2000), tcodm.NewInterval(80, 100)))
	must(tx.Commit())

	fmt.Printf("transaction times: hire=%v raise=%v correction=%v\n\n", tt1, tt2, tt3)

	// Valid-time history as currently believed.
	fmt.Println("history as of now:")
	hist, err := db.History(id, "salary", tcodm.Now)
	must(err)
	for _, v := range hist {
		fmt.Printf("  %v during %v\n", v.Val, v.Valid)
	}

	// Valid-time history as believed before the correction.
	fmt.Printf("\nhistory as recorded at tt=%v (before the correction):\n", tt2)
	hist, err = db.History(id, "salary", tt2)
	must(err)
	for _, v := range hist {
		fmt.Printf("  %v during %v\n", v.Val, v.Valid)
	}

	// The bitemporal matrix: value at valid time 90, as recorded at each
	// transaction time.
	fmt.Println("\nsalary at valid time 90, as recorded at:")
	for _, tt := range []tcodm.Instant{tt1, tt2, tt3} {
		st, err := db.StateAt(id, 90, tt)
		must(err)
		fmt.Printf("  tt=%v -> %v\n", tt, st.Vals["salary"])
	}

	// The same questions through TMQL.
	res, err := db.Query(fmt.Sprintf(`SELECT (salary) FROM Emp AT 90 ASOF %d`, tt2))
	must(err)
	fmt.Printf("\nTMQL: SELECT (salary) ... AT 90 ASOF %d ->\n%s", tt2, res.Table())
	res, err = db.Query(`SELECT (salary) FROM Emp AT 90`)
	must(err)
	fmt.Printf("TMQL: SELECT (salary) ... AT 90 (current belief) ->\n%s", res.Table())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
