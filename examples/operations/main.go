// Command operations demonstrates the engine's operational features: live
// schema evolution (adding attributes to populated types), lifespan
// management with revival (multi-interval temporal elements), temporal
// aggregates in TMQL, and transaction-time vacuuming.
package main

import (
	"fmt"
	"log"

	"tcodm"
)

func main() {
	db, err := tcodm.Open(tcodm.Options{Strategy: tcodm.StrategySeparated, ValueIndex: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must(db.DefineAtomType(tcodm.AtomType{
		Name: "Machine",
		Attrs: []tcodm.Attribute{
			{Name: "serial", Kind: tcodm.KindString, Required: true},
			{Name: "load", Kind: tcodm.KindInt, Temporal: true},
		},
	}))

	// A machine with a fluctuating load history.
	tx, err := db.Begin()
	must(err)
	m1, err := tx.Insert("Machine", tcodm.Attrs{"serial": tcodm.String("m-001"), "load": tcodm.Int(10)}, 0)
	must(err)
	for day, load := range map[tcodm.Instant]int64{10: 80, 20: 35, 30: 95, 40: 20} {
		must(tx.Set(m1, "load", tcodm.Int(load), day))
	}
	must(tx.Commit())

	// 1. Temporal aggregates through TMQL.
	res, err := db.Query(`SELECT (serial, TAVG(load), TMAX(load), CHANGES(load))
	                      FROM Machine DURING [0, 50) AT 45`)
	must(err)
	fmt.Println("load analytics over the first 50 days:")
	fmt.Print(res.Table())

	// 2. Schema evolution: a location attribute arrives later.
	must(db.DefineAttribute("Machine", tcodm.Attribute{
		Name: "location", Kind: tcodm.KindString, Temporal: true,
	}))
	tx, _ = db.Begin()
	must(tx.Set(m1, "location", tcodm.String("hall-7"), 50))
	must(tx.Commit())
	st, err := db.StateAt(m1, 45, tcodm.Now)
	must(err)
	fmt.Printf("\nlocation before first assignment (day 45): %v\n", st.Vals["location"])
	st, _ = db.StateAt(m1, 55, tcodm.Now)
	fmt.Printf("location after (day 55): %v\n", st.Vals["location"])

	// 3. Decommission and revival: the lifespan becomes two intervals.
	tx, _ = db.Begin()
	must(tx.Delete(m1, 60))
	must(tx.Commit())
	tx, _ = db.Begin()
	must(tx.Revive(m1, 80))
	must(tx.Commit())
	fmt.Println("\nexistence over days 55..85:")
	for _, day := range []tcodm.Instant{55, 70, 85} {
		st, err := db.StateAt(m1, day, tcodm.Now)
		must(err)
		fmt.Printf("  day %-3v alive=%v\n", day, st.Alive)
	}

	// 4. A retroactive correction, then vacuuming the superseded belief.
	tx, _ = db.Begin()
	correctionTT := tx.TT()
	must(tx.Update(m1, "load", tcodm.Int(85), tcodm.NewInterval(10, 20)))
	must(tx.Commit())
	before, err := db.History(m1, "load", correctionTT-1)
	must(err)
	removed, err := db.Vacuum(db.Now())
	must(err)
	after, err := db.History(m1, "load", tcodm.Now)
	must(err)
	fmt.Printf("\nvacuum removed %d superseded versions "+
		"(history had %d versions at the old belief, %d now)\n",
		removed, len(before), len(after))
	fmt.Println("current load history:")
	for _, v := range after {
		fmt.Printf("  %v during %v\n", v.Val, v.Valid)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
