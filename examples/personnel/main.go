// Command personnel loads the synthetic personnel workload and runs the
// query repertoire over it: time slices, temporal selections (WHEN),
// history retrieval, molecule queries, and step-function analytics
// (duration-weighted averages) over attribute histories.
package main

import (
	"fmt"
	"log"

	"tcodm"
	"tcodm/internal/history"
	"tcodm/internal/temporal"
	"tcodm/internal/workload"
)

func main() {
	db, err := tcodm.Open(tcodm.Options{Strategy: tcodm.StrategySeparated, TimeIndex: true})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Install the personnel schema and load a deterministic workload.
	sch, err := workload.PersonnelSchema()
	must(err)
	for _, name := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(name)
		must(db.DefineAtomType(*at))
	}
	for _, name := range sch.MoleculeTypeNames() {
		mt, _ := sch.MoleculeType(name)
		must(db.DefineMoleculeType(*mt))
	}
	params := workload.PersonnelParams{
		Depts: 4, Emps: 40, UpdatesPerEmp: 6, MovesPerEmp: 2, TimeStep: 10, Seed: 42,
	}
	app := workload.NewEngineApplier(db, 64)
	ids, err := workload.Apply(workload.Personnel(params), app)
	must(err)
	must(app.Flush())
	fmt.Printf("loaded %d atoms\n\n", len(ids))

	// 1. A current-state query (defaults to the engine clock's now; we
	// slice explicitly at the end of the history instead).
	res, err := db.Query(`SELECT (Emp.name, Emp.salary) FROM Emp WHERE Emp.salary > 8500 AT 100`)
	must(err)
	fmt.Println("top earners at t=100:")
	fmt.Print(res.Table())

	// 2. A temporal selection: who had a salary version entirely inside
	// the probation window [0, 20)? (The time index drives this one.)
	res, err = db.Query(`SELECT (Emp.name) FROM Emp WHEN VALID(Emp.salary) DURING PERIOD [0, 20)`)
	must(err)
	fmt.Printf("\nemployees whose first salary ended within [0, 20): %d (plan: %s)\n",
		len(res.Rows), res.Plan)

	// 3. Departments and staffing over time, through the molecule type.
	for _, t := range []tcodm.Instant{5, 55, 105} {
		res, err = db.Query(fmt.Sprintf(`SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT %d`, t))
		must(err)
		fmt.Printf("\nstaffing at t=%d:\n%s", t, res.Table())
	}

	// 4. Step-function analytics: the duration-weighted average salary of
	// one employee over the whole observation window.
	emp := ids[params.Depts] // the first employee
	versions, err := db.History(emp, "salary", tcodm.Now)
	must(err)
	sf := history.FromVersions(versions)
	if avg, ok := sf.WeightedAvg(temporal.NewInterval(0, 80)); ok {
		fmt.Printf("\nduration-weighted average salary of %v over [0, 80): %.1f\n", emp, avg)
	}
	high := sf.When(func(v tcodm.V) bool { return !v.IsNull() && v.AsInt() > 5000 })
	fmt.Printf("periods with salary > 5000: %v\n", high)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
