package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"tcodm/internal/atom"
	"tcodm/internal/core"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
	"tcodm/internal/workload"
)

// RT6Overhead measures the cost of the observability layer itself: the
// R-T3 insert workload and a time-slice scan workload run twice, once with
// the metrics registry wired through every layer and once with
// DisableMetrics severing all instrumentation. The claim under test is the
// overhead budget in DESIGN.md §8: under 5% on either workload. Each
// configuration runs several times and keeps the fastest pass, which
// filters scheduler noise out of a single-digit-percent comparison.
func RT6Overhead(scale Scale, dir string) (*Table, error) {
	t := &Table{
		ID:      "R-T6",
		Title:   "Instrumentation overhead: metrics on vs. off",
		Claim:   "hot paths carry one counter increment and no clock reads; total overhead stays under 5% on the R-T3 workload",
		Columns: []string{"workload", "metrics off", "metrics on", "overhead"},
	}
	n := 500 * int(scale)
	const passes = 9

	// Insert workload: n one-insert transactions against an in-memory
	// database — the R-T3 "in-memory (no log)" configuration. This is the
	// worst case for instrumentation: with no I/O stalls to hide behind,
	// every counter increment lands directly on the critical path. (The
	// logged configurations bury the same increments under file-system
	// latency — and under its run-to-run noise, which here dwarfs a
	// single-digit-percent effect.)
	insertPass := func(disabled bool) (time.Duration, error) {
		db, err := core.Open(core.Options{PoolPages: 2048, DisableMetrics: disabled})
		if err != nil {
			return 0, err
		}
		if err := installSchema(db, workload.PersonnelSchema); err != nil {
			db.Close()
			return 0, err
		}
		app := workload.NewEngineApplier(db, 1)
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := app.Insert("Emp", map[string]value.V{
				"name": value.String_(fmt.Sprintf("e%d", i)), "salary": value.Int(int64(i)),
			}, 0); err != nil {
				db.Close()
				return 0, err
			}
		}
		if err := app.Flush(); err != nil {
			db.Close()
			return 0, err
		}
		elapsed := time.Since(start)
		db.Close()
		return elapsed, nil
	}

	// Scan setup: a versioned in-memory database per configuration — the
	// read path (pool hit + atom fast load) is where a hot-path counter
	// would hurt most if it cost anything.
	scanDB := func(disabled bool) (*core.Engine, []value.ID, error) {
		db, err := core.Open(core.Options{Strategy: atom.StrategySeparated, PoolPages: 4096, DisableMetrics: disabled})
		if err != nil {
			return nil, nil, err
		}
		if err := installSchema(db, workload.PersonnelSchema); err != nil {
			db.Close()
			return nil, nil, err
		}
		p := workload.PersonnelParams{Depts: 4, Emps: 100 * int(scale), UpdatesPerEmp: 8, TimeStep: 10, Seed: 42}
		app := workload.NewEngineApplier(db, 256)
		ids, err := workload.Apply(workload.Personnel(p), app)
		if err != nil {
			db.Close()
			return nil, nil, err
		}
		if err := app.Flush(); err != nil {
			db.Close()
			return nil, nil, err
		}
		return db, ids[p.Depts:], nil
	}

	// Interleave the off/on passes (off, on, off, on, ...) so machine-load
	// drift biases both sides equally, force a GC between passes so
	// collection cycles land outside the timed region, and take each
	// configuration's median pass: robust against the occasional pass a
	// scheduler hiccup poisons, which a min-of-N can still lose to.
	var insOffs, insOns []time.Duration
	for pass := 0; pass < passes; pass++ {
		runtime.GC()
		dOff, err := insertPass(true)
		if err != nil {
			return nil, err
		}
		runtime.GC()
		dOn, err := insertPass(false)
		if err != nil {
			return nil, err
		}
		insOffs, insOns = append(insOffs, dOff), append(insOns, dOn)
	}
	insOff, insOn := median(insOffs), median(insOns)

	dbOff, empsOff, err := scanDB(true)
	if err != nil {
		return nil, err
	}
	defer dbOff.Close()
	dbOn, empsOn, err := scanDB(false)
	if err != nil {
		return nil, err
	}
	defer dbOn.Close()
	vt := temporal.Instant(90)
	var scanOffs, scanOns []time.Duration
	for pass := 0; pass < passes; pass++ {
		runtime.GC()
		dOff := measure(40*time.Millisecond, func() {
			if _, err := scanCurrentSalaries(dbOff, empsOff, vt, atom.Now); err != nil {
				panic(err)
			}
		})
		runtime.GC()
		dOn := measure(40*time.Millisecond, func() {
			if _, err := scanCurrentSalaries(dbOn, empsOn, vt, atom.Now); err != nil {
				panic(err)
			}
		})
		scanOffs, scanOns = append(scanOffs, dOff), append(scanOns, dOn)
	}
	scanOff, scanOn := median(scanOffs), median(scanOns)

	addRow := func(name string, off, on time.Duration) {
		overhead := "-"
		if off > 0 {
			overhead = fmt.Sprintf("%+.1f%%", 100*(float64(on)-float64(off))/float64(off))
		}
		t.Rows = append(t.Rows, []string{name, dur(off), dur(on), overhead})
	}
	addRow(fmt.Sprintf("insert x%d (in-memory)", n), insOff, insOn)
	addRow("time-slice scan", scanOff, scanOn)

	t.Notes = append(t.Notes,
		fmt.Sprintf("interleaved passes, median of %d per configuration; negative overhead = measurement noise", passes))
	return t, nil
}

// median returns the middle value of ds (ds is small; sorted in place).
func median(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}
