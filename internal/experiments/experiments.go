// Package experiments implements the reconstructed evaluation suite: one
// function per table/figure that builds its workload, runs the measurement,
// and returns a printable table. cmd/tcobench drives the full suite; the
// root bench_test.go exposes the same code paths as testing.B benchmarks.
//
// Because the original paper's evaluation text is unavailable (see
// DESIGN.md), these experiments reconstruct the study a temporal
// complex-object engine paper of this era reports: storage and access
// trade-offs between history placements, time-slice costs by slice age,
// the price of temporal molecule materialization, and index support for
// temporal selection. Absolute numbers are machine-dependent; the claims
// under test are shapes (who wins, by what factor, where the crossovers
// are).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"tcodm/internal/atom"
	"tcodm/internal/core"
	"tcodm/internal/schema"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
	"tcodm/internal/workload"
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper-shaped expectation under test
	Columns []string
	Rows    [][]string
	Notes   []string
	// Counters carries engine counter snapshots captured during the run
	// (machine-readable telemetry for BENCH_*.json); keys are prefixed
	// with the capture point, e.g. "separated/pool.misses".
	Counters map[string]uint64
}

// AddCounters merges a counter snapshot into the table under prefix.
func (t *Table) AddCounters(prefix string, counters map[string]uint64) {
	if len(counters) == 0 {
		return
	}
	if t.Counters == nil {
		t.Counters = make(map[string]uint64, len(counters))
	}
	for k, v := range counters {
		t.Counters[prefix+"/"+k] = v
	}
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	sb.WriteByte('\n')
	for i := range t.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Strategies lists the mappings every experiment compares.
var Strategies = []atom.Strategy{atom.StrategyEmbedded, atom.StrategySeparated, atom.StrategyTuple}

// measure runs f repeatedly until minDur has elapsed and returns the mean
// per-iteration duration.
func measure(minDur time.Duration, f func()) time.Duration {
	f() // warm up
	var n int
	start := time.Now()
	for time.Since(start) < minDur {
		f()
		n++
	}
	if n == 0 {
		n = 1
	}
	return time.Since(start) / time.Duration(n)
}

func dur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func mib(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }

// BuildPersonnelDB loads a personnel workload into a fresh in-memory
// database under the given strategy, returning the db and the employee IDs.
func BuildPersonnelDB(strat atom.Strategy, p workload.PersonnelParams, timeIndex bool) (*core.Engine, []value.ID, error) {
	db, err := core.Open(core.Options{Strategy: strat, TimeIndex: timeIndex, PoolPages: 4096})
	if err != nil {
		return nil, nil, err
	}
	if err := installSchema(db, workload.PersonnelSchema); err != nil {
		db.Close()
		return nil, nil, err
	}
	app := workload.NewEngineApplier(db, 256)
	ids, err := workload.Apply(workload.Personnel(p), app)
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	if err := app.Flush(); err != nil {
		db.Close()
		return nil, nil, err
	}
	return db, ids[p.Depts:], nil
}

// BuildCADDB loads a CAD workload, returning the db and the assembly IDs.
func BuildCADDB(strat atom.Strategy, p workload.CADParams) (*core.Engine, []value.ID, error) {
	db, err := core.Open(core.Options{Strategy: strat, PoolPages: 4096})
	if err != nil {
		return nil, nil, err
	}
	if err := installSchema(db, workload.CADSchema); err != nil {
		db.Close()
		return nil, nil, err
	}
	app := workload.NewEngineApplier(db, 256)
	ids, err := workload.Apply(workload.CAD(p), app)
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	if err := app.Flush(); err != nil {
		db.Close()
		return nil, nil, err
	}
	var assemblies []value.ID
	for _, id := range ids {
		st, err := db.StateAt(id, 0, atom.Now)
		if err == nil && st.Type == "Assembly" {
			assemblies = append(assemblies, id)
		}
	}
	return db, assemblies, nil
}

func installSchema(db *core.Engine, build func() (*schema.Schema, error)) error {
	sch, err := build()
	if err != nil {
		return err
	}
	for _, name := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(name)
		if err := db.DefineAtomType(*at); err != nil {
			return err
		}
	}
	for _, name := range sch.MoleculeTypeNames() {
		mt, _ := sch.MoleculeType(name)
		if err := db.DefineMoleculeType(*mt); err != nil {
			return err
		}
	}
	return nil
}

// scanCurrentSalaries time-slices every employee at vt and folds salaries.
func scanCurrentSalaries(db *core.Engine, emps []value.ID, vt, tt temporal.Instant) (int64, error) {
	var sum int64
	for _, id := range emps {
		st, err := db.StateAt(id, vt, tt)
		if err != nil {
			return 0, err
		}
		if v, ok := st.Vals["salary"]; ok && !v.IsNull() {
			sum += v.AsInt()
		}
	}
	return sum, nil
}
