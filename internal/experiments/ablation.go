package experiments

import (
	"fmt"
	"time"

	"tcodm/internal/atom"
	"tcodm/internal/core"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
	"tcodm/internal/workload"
)

// RA1SegmentCap is the design-choice ablation for the separated strategy:
// history segment capacity trades update cost (small segments start new
// records often; big segments rewrite more bytes per append) against
// past-slice cost (small segments mean longer chains to walk).
func RA1SegmentCap(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "R-A1",
		Title:   "Ablation: separated-strategy history segment capacity",
		Claim:   "small segments lengthen the chain past slices walk; very large segments slow the appends that fill them; a mid-size capacity balances both",
		Columns: []string{"segment cap", "update", "old slice", "segments read/slice"},
	}
	const updates = 64
	emps := 50 * int(scale)
	p := workload.PersonnelParams{Depts: 2, Emps: emps, UpdatesPerEmp: updates, TimeStep: 10, Seed: 42}
	for _, cap := range []int{4, 16, 64, 256} {
		db, err := core.Open(core.Options{Strategy: atom.StrategySeparated, SegmentCap: cap, PoolPages: 4096})
		if err != nil {
			return nil, err
		}
		if err := installSchema(db, workload.PersonnelSchema); err != nil {
			db.Close()
			return nil, err
		}
		app := workload.NewEngineApplier(db, 256)
		ids, err := workload.Apply(workload.Personnel(p), app)
		if err != nil {
			db.Close()
			return nil, err
		}
		if err := app.Flush(); err != nil {
			db.Close()
			return nil, err
		}
		empIDs := ids[p.Depts:]

		// Marginal update cost at this capacity.
		next := updates + 2
		dUpdate := measure(25*time.Millisecond, func() {
			tx, err := db.Begin()
			if err != nil {
				panic(err)
			}
			if err := tx.Set(empIDs[0], "salary", value.Int(1),
				temporal.Instant(next)*10); err != nil {
				panic(err)
			}
			if err := tx.Commit(); err != nil {
				panic(err)
			}
			next++
		})

		// Old time-slice cost and the chain length it walks.
		db.Atoms().ResetStats()
		dSlice := measure(40*time.Millisecond, func() {
			if _, err := scanCurrentSalaries(db, empIDs, 5, atom.Now); err != nil {
				panic(err)
			}
		})
		stats := db.Atoms().Stats()
		perSlice := float64(stats.SegmentReads) / float64(stats.FullLoads)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(cap), dur(dUpdate), dur(dSlice), fmt.Sprintf("%.1f", perSlice),
		})
		db.Close()
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d employees, %d salary versions each; slice at the oldest instant", emps, updates+1))
	return t, nil
}

// RF8ValueIndex measures WHERE-predicate selection with and without the
// secondary value index across selectivities.
func RF8ValueIndex(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "R-F8",
		Title:   "Value-index selection (WHERE salary = / range) vs. full scan",
		Claim:   "the value index turns selection into O(matching); the advantage shrinks as the predicate widens to cover everyone",
		Columns: []string{"predicate", "matching", "full scan", "value index", "speedup"},
	}
	emps := 400 * int(scale)
	p := workload.PersonnelParams{Depts: 4, Emps: emps, UpdatesPerEmp: 0, TimeStep: 10, Seed: 42}
	build := func(valueIndex bool) (*core.Engine, error) {
		db, err := core.Open(core.Options{Strategy: atom.StrategySeparated, ValueIndex: valueIndex, PoolPages: 4096})
		if err != nil {
			return nil, err
		}
		if err := installSchema(db, workload.PersonnelSchema); err != nil {
			db.Close()
			return nil, err
		}
		app := workload.NewEngineApplier(db, 256)
		if _, err := workload.Apply(workload.Personnel(p), app); err != nil {
			db.Close()
			return nil, err
		}
		if err := app.Flush(); err != nil {
			db.Close()
			return nil, err
		}
		return db, nil
	}
	withIdx, err := build(true)
	if err != nil {
		return nil, err
	}
	defer withIdx.Close()
	without, err := build(false)
	if err != nil {
		return nil, err
	}
	defer without.Close()
	// Salaries are uniform in [1000, 5000): thresholds sweep selectivity.
	for _, threshold := range []int{1200, 2000, 3000, 5000} {
		q := fmt.Sprintf(`SELECT (name) FROM Emp WHERE salary < %d AT 5`, threshold)
		var matching int
		dIdx := measure(40*time.Millisecond, func() {
			res, err := withIdx.Query(q)
			if err != nil {
				panic(err)
			}
			matching = len(res.Rows)
		})
		dScan := measure(40*time.Millisecond, func() {
			if _, err := without.Query(q); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("salary < %d", threshold), fmt.Sprint(matching),
			dur(dScan), dur(dIdx), ratioDur(dScan, dIdx),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d employees, salaries uniform in [1000, 5000)", emps))
	return t, nil
}

// RA2Vacuum measures transaction-time vacuuming: how many versions each
// strategy reclaims and what it does to past-slice latency.
func RA2Vacuum(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "R-A2",
		Title:   "Transaction-time vacuum: reclaimed versions and past-slice latency",
		Claim:   "attribute versioning reclaims every superseded version (and past slices get cheaper); tuple versioning cannot reclaim — each snapshot stays reachable as a valid-time version",
		Columns: []string{"strategy", "versions removed", "old slice before", "old slice after"},
	}
	const updates = 32
	emps := 50 * int(scale)
	p := workload.PersonnelParams{Depts: 2, Emps: emps, UpdatesPerEmp: updates, TimeStep: 10, Seed: 42}
	for _, s := range Strategies {
		db, empIDs, err := BuildPersonnelDB(s, p, false)
		if err != nil {
			return nil, err
		}
		before := measure(40*time.Millisecond, func() {
			if _, err := scanCurrentSalaries(db, empIDs, 5, atom.Now); err != nil {
				panic(err)
			}
		})
		removed, err := db.Vacuum(db.Now())
		if err != nil {
			db.Close()
			return nil, err
		}
		after := measure(40*time.Millisecond, func() {
			if _, err := scanCurrentSalaries(db, empIDs, 5, atom.Now); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{s.String(), fmt.Sprint(removed), dur(before), dur(after)})
		db.Close()
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d employees, %d updates each; vacuum bound = current transaction time", emps, updates))
	return t, nil
}
