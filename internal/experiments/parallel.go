package experiments

import (
	"fmt"
	"runtime"
	"time"

	"tcodm/internal/atom"
	"tcodm/internal/value"
	"tcodm/internal/workload"
)

// RT9ParallelScan sweeps the per-query worker count over a scan-dominated
// temporal-aggregate query (the R-T1-style full-history scan: every
// candidate forces a complete salary-history read and streamfold). Each
// worker count re-runs the identical query on the identical database; the
// first row is the baseline for speedup and per-core efficiency. The sweep
// also cross-checks that every worker count returns the byte-identical
// result — a scaling number for a wrong answer would be worthless.
func RT9ParallelScan(scale Scale, cores []int) (*Table, error) {
	t := &Table{
		ID:      "R-T9",
		Title:   "Parallel query scaling: full-history aggregate scan vs. worker count",
		Claim:   "partitioned candidate processing scales a scan-dominated temporal aggregate with available cores; worker counts beyond GOMAXPROCS add no speedup",
		Columns: []string{"workers", "latency", "speedup", "efficiency"},
	}
	if len(cores) == 0 {
		cores = []int{1, 2, 4}
	}
	emps := 400 * int(scale)
	const updates = 16
	p := workload.PersonnelParams{Depts: 8, Emps: emps, UpdatesPerEmp: updates, MovesPerEmp: 2, TimeStep: 10, Seed: 7}
	db, _, err := BuildPersonnelDB(atom.StrategySeparated, p, false)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	horizon := int64(updates+1) * 10
	q := fmt.Sprintf(`SELECT (Emp.name, TAVG(Emp.salary), TMAX(Emp.salary), CHANGES(Emp.salary)) FROM Emp DURING [0, %d) AT %d`, horizon, horizon-5)

	var baseline time.Duration
	var baseRows [][]string
	for _, n := range cores {
		db.SetQueryWorkers(n)
		res, err := db.Query(q)
		if err != nil {
			return nil, fmt.Errorf("R-T9 workers=%d: %w", n, err)
		}
		rows := renderRows(res.Rows)
		if baseRows == nil {
			baseRows = rows
		} else if err := sameRows(baseRows, rows); err != nil {
			return nil, fmt.Errorf("R-T9 workers=%d diverged from workers=%d: %w", n, cores[0], err)
		}
		d := measure(80*time.Millisecond, func() {
			if _, err := db.Query(q); err != nil {
				panic(err)
			}
		})
		if baseline == 0 {
			baseline = d
		}
		sp := float64(baseline) / float64(d)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), dur(d), fmt.Sprintf("%.2fx", sp), fmt.Sprintf("%.0f%%", sp/float64(n)*100),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d employees × %d salary versions; aggregates read each candidate's full history", emps, updates),
		fmt.Sprintf("host GOMAXPROCS=%d; speedup relative to the first row (workers=%d); results verified identical across all worker counts", runtime.GOMAXPROCS(0), cores[0]),
	)
	t.AddCounters("final", db.CounterSnapshot())
	return t, nil
}

// renderRows stringifies result rows for cross-worker-count comparison.
func renderRows(rows [][]value.V) [][]string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = make([]string, len(r))
		for j, v := range r {
			out[i][j] = v.String()
		}
	}
	return out
}

// sameRows reports the first difference between two rendered result sets
// (row order included — parallel execution must preserve it).
func sameRows(want, got [][]string) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return fmt.Errorf("row %d has %d columns, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				return fmt.Errorf("row %d col %d = %q, want %q", i, j, got[i][j], want[i][j])
			}
		}
	}
	return nil
}
