package experiments

import (
	"fmt"
	"time"

	"tcodm/internal/atom"
	"tcodm/internal/baseline"
	"tcodm/internal/core"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
	"tcodm/internal/workload"
)

// Scale globally sizes the suite (1 = quick, 2+ = larger sweeps).
type Scale int

// RT1StorageCost measures storage consumption by strategy as update volume
// grows, against the snapshot-copy baseline.
func RT1StorageCost(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "R-T1",
		Title: "Storage consumption by strategy vs. update volume",
		Claim: "attribute versioning (embedded ≈ separated) < tuple-versioning ≪ snapshot-copy; gaps widen with update volume",
		Columns: []string{"updates/emp", "embedded MiB", "separated MiB", "tuple MiB", "snapshot-copy MiB",
			"tuple/separated", "copy/separated"},
	}
	emps := 200 * int(scale)
	for _, u := range []int{0, 2, 4, 8, 16} {
		// A quarter of the employees change per round: realistic sparse
		// updates that expose the per-epoch cost of whole-database copies.
		p := workload.PersonnelParams{Depts: 8, Emps: emps, UpdatesPerEmp: u, MovesPerEmp: 0,
			UpdateFraction: 0.25, TimeStep: 10, Seed: 42}
		sizes := map[atom.Strategy]int64{}
		for _, s := range Strategies {
			db, _, err := BuildPersonnelDB(s, p, false)
			if err != nil {
				return nil, err
			}
			if err := db.Checkpoint(); err != nil {
				db.Close()
				return nil, err
			}
			sizes[s] = int64(db.Stats().DevicePags) * 8192
			// Keep the last (largest-volume) build's telemetry per strategy.
			t.AddCounters(s.String(), db.CounterSnapshot())
			db.Close()
		}
		// Snapshot-copy baseline.
		sch, err := workload.PersonnelSchema()
		if err != nil {
			return nil, err
		}
		ar, err := baseline.NewArchive(sch, 1024)
		if err != nil {
			return nil, err
		}
		if _, err := workload.Apply(workload.Personnel(p), &workload.ArchiveApplier{Archive: ar}); err != nil {
			return nil, err
		}
		copyBytes, err := ar.DeviceBytes()
		if err != nil {
			return nil, err
		}
		sep := sizes[atom.StrategySeparated]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(u),
			mib(sizes[atom.StrategyEmbedded]),
			mib(sep),
			mib(sizes[atom.StrategyTuple]),
			mib(copyBytes),
			ratio(sizes[atom.StrategyTuple], sep),
			ratio(copyBytes, sep),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("personnel workload, %d employees, 8 departments", emps))
	return t, nil
}

func ratio(a, b int64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// RF1CurrentQuery measures current-state scan latency as history length
// grows.
func RF1CurrentQuery(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "R-F1",
		Title:   "Current-state (NOW) scan latency vs. history length",
		Claim:   "separated stays flat as histories grow; embedded and tuple-versioning degrade",
		Columns: []string{"updates/emp", "embedded", "separated", "tuple", "embedded/separated", "tuple/separated"},
	}
	emps := 100 * int(scale)
	for _, u := range []int{0, 4, 16, 64} {
		p := workload.PersonnelParams{Depts: 4, Emps: emps, UpdatesPerEmp: u, MovesPerEmp: 0, TimeStep: 10, Seed: 42}
		times := map[atom.Strategy]time.Duration{}
		nowVT := temporal.Instant(int64(u+2) * 10)
		for _, s := range Strategies {
			db, empIDs, err := BuildPersonnelDB(s, p, false)
			if err != nil {
				return nil, err
			}
			d := measure(40*time.Millisecond, func() {
				if _, err := scanCurrentSalaries(db, empIDs, nowVT, atom.Now); err != nil {
					panic(err)
				}
			})
			times[s] = d
			db.Close()
		}
		sep := times[atom.StrategySeparated]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(u),
			dur(times[atom.StrategyEmbedded]),
			dur(times[atom.StrategySeparated]),
			dur(times[atom.StrategyTuple]),
			ratioDur(times[atom.StrategyEmbedded], sep),
			ratioDur(times[atom.StrategyTuple], sep),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("scan of all %d employees' current salary per iteration", emps))
	return t, nil
}

func ratioDur(a, b time.Duration) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// RF2TimeSlice measures time-slice latency by slice age.
func RF2TimeSlice(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "R-F2",
		Title:   "Time-slice scan latency vs. age of the slice point",
		Claim:   "tuple-versioning degrades with age (chain walk); embedded is age-insensitive; separated pays history cost only for past slices",
		Columns: []string{"slice age", "embedded", "separated", "tuple"},
	}
	emps := 100 * int(scale)
	const updates = 32
	p := workload.PersonnelParams{Depts: 4, Emps: emps, UpdatesPerEmp: updates, MovesPerEmp: 0, TimeStep: 10, Seed: 42}
	horizon := int64(updates+1) * 10
	dbs := map[atom.Strategy]*core.Engine{}
	empIDs := map[atom.Strategy][]value.ID{}
	for _, s := range Strategies {
		db, ids, err := BuildPersonnelDB(s, p, false)
		if err != nil {
			return nil, err
		}
		defer db.Close()
		dbs[s] = db
		empIDs[s] = ids
	}
	for _, frac := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
		vt := temporal.Instant(horizon - int64(frac*float64(horizon)))
		row := []string{fmt.Sprintf("%.0f%%", frac*100)}
		for _, s := range Strategies {
			db, ids := dbs[s], empIDs[s]
			d := measure(40*time.Millisecond, func() {
				if _, err := scanCurrentSalaries(db, ids, vt, atom.Now); err != nil {
					panic(err)
				}
			})
			row = append(row, dur(d))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d employees, %d updates each; 0%% = newest instant, 100%% = creation time", emps, updates))
	return t, nil
}

// RF3UpdateCost measures the marginal update cost as history grows.
func RF3UpdateCost(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "R-F3",
		Title:   "Update cost vs. existing history length",
		Claim:   "embedded update cost grows with history (record rewrite); separated and tuple stay flat",
		Columns: []string{"history length", "embedded", "separated", "tuple"},
	}
	for _, h := range []int{1, 8, 32, 128} {
		row := []string{fmt.Sprint(h)}
		for _, s := range Strategies {
			db, err := core.Open(core.Options{Strategy: s, PoolPages: 2048})
			if err != nil {
				return nil, err
			}
			if err := installSchema(db, workload.PersonnelSchema); err != nil {
				db.Close()
				return nil, err
			}
			tx, _ := db.Begin()
			id, err := tx.Insert("Emp", map[string]value.V{
				"name": value.String_("u"), "salary": value.Int(0),
			}, 0)
			if err != nil {
				db.Close()
				return nil, err
			}
			for i := 1; i <= h; i++ {
				if err := tx.Set(id, "salary", value.Int(int64(i)), temporal.Instant(i)); err != nil {
					db.Close()
					return nil, err
				}
			}
			if err := tx.Commit(); err != nil {
				db.Close()
				return nil, err
			}
			next := h + 1
			d := measure(25*time.Millisecond, func() {
				tx, err := db.Begin()
				if err != nil {
					panic(err)
				}
				if err := tx.Set(id, "salary", value.Int(int64(next)), temporal.Instant(next)); err != nil {
					panic(err)
				}
				if err := tx.Commit(); err != nil {
					panic(err)
				}
				next++
			})
			row = append(row, dur(d))
			db.Close()
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "one transaction per update (in-memory database, no log)")
	_ = scale
	return t, nil
}

// RT2Molecule compares temporal molecule materialization against the
// non-temporal baseline across molecule sizes.
func RT2Molecule(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "R-T2",
		Title:   "Molecule materialization: temporal as-of vs. non-temporal baseline",
		Claim:   "temporal materialization costs a bounded constant factor over the non-temporal store, independent of molecule size",
		Columns: []string{"fanout", "depth", "atoms", "baseline", "temporal(sep)", "overhead"},
	}
	for _, fanout := range []int{2, 4, 8} {
		for _, depth := range []int{2, 3} {
			p := workload.CADParams{Assemblies: 2, Fanout: fanout, Depth: depth, Revisions: 3, TimeStep: 10, Seed: 7}
			db, asms, err := BuildCADDB(atom.StrategySeparated, p)
			if err != nil {
				return nil, err
			}
			sch, _ := workload.CADSchema()
			st, err := baseline.NewStore(sch, 2048)
			if err != nil {
				db.Close()
				return nil, err
			}
			ids, err := workload.Apply(workload.CAD(p), &workload.StoreApplier{Store: st})
			if err != nil {
				db.Close()
				return nil, err
			}
			mt, _ := sch.MoleculeType("Design")
			vt := temporal.Instant(int64(p.Revisions+1) * 10)
			var size int
			dTemporal := measure(40*time.Millisecond, func() {
				mol, err := db.Molecule("Design", asms[0], vt, atom.Now)
				if err != nil {
					panic(err)
				}
				size = mol.Size()
			})
			dBase := measure(40*time.Millisecond, func() {
				if _, err := st.Molecule(mt, ids[0]); err != nil {
					panic(err)
				}
			})
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(fanout), fmt.Sprint(depth), fmt.Sprint(size),
				dur(dBase), dur(dTemporal), ratioDur(dTemporal, dBase),
			})
			db.Close()
		}
	}
	t.Notes = append(t.Notes, "CAD design molecules, 3 weight revisions per part; as-of slice at the newest instant")
	_ = scale
	return t, nil
}

// RF4WhenSelection measures temporal selection with and without the time
// index across selectivities.
func RF4WhenSelection(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "R-F4",
		Title:   "Temporal selection (WHEN ... DURING) with vs. without time index",
		Claim:   "the time index wins at low selectivity; the advantage shrinks as the period widens to cover everything",
		Columns: []string{"period", "matching", "full scan", "time index", "speedup"},
	}
	emps := 400 * int(scale)
	// Staggered hires: employee e joins at t=e and gets one raise at t=e+5,
	// so version start instants spread across [0, emps). The DURING period
	// [0, X) then has genuine selectivity: only early hires can qualify,
	// and the time index prunes everyone else.
	p := workload.PersonnelParams{Depts: 4, Emps: emps, UpdatesPerEmp: 1, MovesPerEmp: 0,
		HireStagger: 1, TimeStep: 5, Seed: 42}
	withIdx, _, err := BuildPersonnelDB(atom.StrategySeparated, p, true)
	if err != nil {
		return nil, err
	}
	defer withIdx.Close()
	without, _, err := BuildPersonnelDB(atom.StrategySeparated, p, false)
	if err != nil {
		return nil, err
	}
	defer without.Close()
	horizon := int64(emps)
	for _, frac := range []float64{0.05, 0.25, 0.5, 1.0} {
		to := int64(frac * float64(horizon))
		q := fmt.Sprintf(`SELECT (name) FROM Emp WHEN VALID(salary) DURING PERIOD [0, %d)`, to)
		var matching int
		dIdx := measure(40*time.Millisecond, func() {
			res, err := withIdx.Query(q)
			if err != nil {
				panic(err)
			}
			matching = len(res.Rows)
		})
		dScan := measure(40*time.Millisecond, func() {
			if _, err := without.Query(q); err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("[0, %d)", to), fmt.Sprint(matching),
			dur(dScan), dur(dIdx), ratioDur(dScan, dIdx),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d employees with staggered hire dates, 2 salary versions each; DURING restricts version start below the period end", emps))
	return t, nil
}

// RF5HistoryQuery measures history retrieval cost against window length.
func RF5HistoryQuery(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "R-F5",
		Title:   "History retrieval cost vs. window length",
		Claim:   "history cost is set by placement: embedded reads one record, separated walks its chain, tuple reconstructs from all snapshots; window filtering itself is cheap",
		Columns: []string{"window", "versions", "embedded", "separated", "tuple"},
	}
	const updates = 64
	p := workload.PersonnelParams{Depts: 2, Emps: 20 * int(scale), UpdatesPerEmp: updates, MovesPerEmp: 0, TimeStep: 10, Seed: 42}
	horizon := int64(updates+1) * 10
	dbs := map[atom.Strategy]*core.Engine{}
	ids := map[atom.Strategy][]value.ID{}
	for _, s := range Strategies {
		db, emps, err := BuildPersonnelDB(s, p, false)
		if err != nil {
			return nil, err
		}
		defer db.Close()
		dbs[s] = db
		ids[s] = emps
	}
	for _, frac := range []float64{0.1, 0.5, 1.0} {
		to := int64(frac * float64(horizon))
		row := []string{fmt.Sprintf("[0, %d)", to)}
		var versions int
		for _, s := range Strategies {
			db := dbs[s]
			emp := ids[s][0]
			d := measure(40*time.Millisecond, func() {
				hist, err := db.History(emp, "salary", atom.Now)
				if err != nil {
					panic(err)
				}
				n := 0
				for _, v := range hist {
					if v.Valid.Overlaps(temporal.NewInterval(0, temporal.Instant(to))) {
						n++
					}
				}
				versions = n
			})
			if len(row) == 1 {
				row = append(row, fmt.Sprint(versions))
			}
			row = append(row, dur(d))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("single atom with %d salary versions; full history load then window filter", updates+1))
	return t, nil
}

// RT3Txn measures transaction throughput under durability settings and the
// recovery replay rate.
func RT3Txn(scale Scale, dir string) (*Table, error) {
	t := &Table{
		ID:      "R-T3",
		Title:   "Transaction throughput by durability setting; recovery replay",
		Claim:   "fsync-per-commit dominates cost; group commit (batching) recovers most of it; recovery replays committed work at bulk speed",
		Columns: []string{"configuration", "txns", "elapsed", "txns/sec"},
	}
	n := 500 * int(scale)
	run := func(name string, opts core.Options, batch int) error {
		if opts.Path != "" {
			opts.PoolPages = 2048
		}
		db, err := core.Open(opts)
		if err != nil {
			return err
		}
		defer db.Close()
		if err := installSchema(db, workload.PersonnelSchema); err != nil {
			return err
		}
		start := time.Now()
		app := workload.NewEngineApplier(db, batch)
		for i := 0; i < n; i++ {
			_, err := app.Insert("Emp", map[string]value.V{
				"name": value.String_(fmt.Sprintf("e%d", i)), "salary": value.Int(int64(i)),
			}, 0)
			if err != nil {
				return err
			}
		}
		if err := app.Flush(); err != nil {
			return err
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(n), dur(elapsed),
			fmt.Sprintf("%.0f", float64(n)/elapsed.Seconds())})
		t.AddCounters(name, db.CounterSnapshot())
		return nil
	}
	if err := run("in-memory (no log)", core.Options{}, 1); err != nil {
		return nil, err
	}
	if err := run("logged, no fsync", core.Options{Path: dir + "/nofsync.tdb"}, 1); err != nil {
		return nil, err
	}
	if err := run("logged, fsync/commit", core.Options{Path: dir + "/fsync.tdb", SyncOnCommit: true}, 1); err != nil {
		return nil, err
	}
	if err := run("logged, fsync, batch=64", core.Options{Path: dir + "/batch.tdb", SyncOnCommit: true}, 64); err != nil {
		return nil, err
	}

	// Recovery: write n committed txns post-checkpoint, then reopen.
	path := dir + "/recovery.tdb"
	db, err := core.Open(core.Options{Path: path, SyncOnCommit: false, PoolPages: 2048})
	if err != nil {
		return nil, err
	}
	if err := installSchema(db, workload.PersonnelSchema); err != nil {
		db.Close()
		return nil, err
	}
	app := workload.NewEngineApplier(db, 1)
	for i := 0; i < n; i++ {
		if _, err := app.Insert("Emp", map[string]value.V{
			"name": value.String_(fmt.Sprintf("r%d", i)), "salary": value.Int(int64(i)),
		}, 0); err != nil {
			db.Close()
			return nil, err
		}
	}
	if err := app.Flush(); err != nil {
		db.Close()
		return nil, err
	}
	logBytes := db.Stats().LogBytes
	// Crash without Close: the log alone carries the committed work.
	if err := db.Crash(); err != nil {
		return nil, err
	}
	start := time.Now()
	db2, err := core.Open(core.Options{Path: path})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	recovered := db2.Stats().Atoms
	t.AddCounters("recovery", db2.CounterSnapshot())
	rs := db2.RecoveryStats()
	t.Notes = append(t.Notes, fmt.Sprintf(
		"recovery replayed %d of %d log records (%d committed, %d torn bytes)",
		rs.Replayed, rs.Records, rs.Committed, rs.TornBytes))
	db2.Close()
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("recovery (%.1f MiB log, %d atoms)", float64(logBytes)/(1<<20), recovered),
		fmt.Sprint(n), dur(elapsed), fmt.Sprintf("%.0f", float64(n)/elapsed.Seconds()),
	})
	t.Notes = append(t.Notes, "one insert per transaction unless batched")
	return t, nil
}

// RF6BufferPool measures time-slice scans against pool size.
func RF6BufferPool(scale Scale, dir string) (*Table, error) {
	t := &Table{
		ID:      "R-F6",
		Title:   "Buffer-pool sensitivity: scan latency and hit ratio vs. pool size",
		Claim:   "latency falls and hit ratio rises until the working set fits; beyond that, more memory buys nothing",
		Columns: []string{"pool pages", "pool MiB", "scan latency", "hit ratio"},
	}
	// Build a file-backed database larger than the smallest pools.
	p := workload.PersonnelParams{Depts: 8, Emps: 400 * int(scale), UpdatesPerEmp: 8, MovesPerEmp: 0, TimeStep: 10, Seed: 42}
	path := dir + "/pool.tdb"
	db, err := core.Open(core.Options{Path: path, PoolPages: 4096})
	if err != nil {
		return nil, err
	}
	if err := installSchema(db, workload.PersonnelSchema); err != nil {
		db.Close()
		return nil, err
	}
	app := workload.NewEngineApplier(db, 256)
	ids, err := workload.Apply(workload.Personnel(p), app)
	if err != nil {
		db.Close()
		return nil, err
	}
	if err := app.Flush(); err != nil {
		db.Close()
		return nil, err
	}
	emps := ids[p.Depts:]
	if err := db.Close(); err != nil {
		return nil, err
	}
	for _, pages := range []int{16, 64, 256, 1024} {
		db, err := core.Open(core.Options{Path: path, PoolPages: pages})
		if err != nil {
			return nil, err
		}
		vt := temporal.Instant(90)
		d := measure(60*time.Millisecond, func() {
			if _, err := scanCurrentSalaries(db, emps, vt, atom.Now); err != nil {
				panic(err)
			}
		})
		stats := db.Stats().Pool
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pages), fmt.Sprintf("%.1f", float64(pages)*8192/(1<<20)),
			dur(d), fmt.Sprintf("%.3f", stats.HitRatio()),
		})
		db.Close()
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d employees, 8 versions each, file-backed; repeated full time-slice scans", p.Emps))
	return t, nil
}
