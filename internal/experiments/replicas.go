package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"path/filepath"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/repl"
	"tcodm/internal/server"
	"tcodm/internal/workload"
	"tcodm/pkg/client"
)

// RT10ReadReplicas measures read throughput through the replica-aware
// client as WAL-shipped followers are added behind one leader: the same
// fixed read workload runs against the leader alone, then against the
// leader plus one and two converged followers, with every result checked
// against the leader's golden answer. All servers share one process and
// one host, so the numbers measure the routing and replication machinery
// (round-robin spread, convergence, watermark bookkeeping), not linear
// hardware scaling — on a single-core runner the throughput columns are
// expected to be flat.
func RT10ReadReplicas(scale Scale, dir string) (*Table, error) {
	t := &Table{
		ID:      "R-T10",
		Title:   "Read scaling via WAL-shipped replicas: leader vs leader + N followers",
		Claim:   "read-only queries spread round-robin across converged replicas with answers identical to the leader's; the leader serves only the residue",
		Columns: []string{"followers", "queries", "elapsed", "queries/sec", "replica share"},
	}

	// Leader: a file-backed personnel database (replication ships the WAL,
	// so the leader must have one).
	leader, err := core.Open(core.Options{Path: filepath.Join(dir, "rt10-leader"), PoolPages: 2048})
	if err != nil {
		return nil, err
	}
	defer leader.Close()
	if err := installSchema(leader, workload.PersonnelSchema); err != nil {
		return nil, err
	}
	app := workload.NewEngineApplier(leader, 64)
	ops := workload.Personnel(workload.PersonnelParams{
		Depts: 4, Emps: 120 * int(scale), UpdatesPerEmp: 4, MovesPerEmp: 1, TimeStep: 10, Seed: 11,
	})
	if _, err := workload.Apply(ops, app); err != nil {
		return nil, err
	}
	if err := app.Flush(); err != nil {
		return nil, err
	}

	// The probe set pins valid time explicitly so leader and follower
	// clocks cannot skew the slice.
	probes := []string{
		`SELECT (Emp.name, Emp.salary) FROM Emp WHERE Emp.salary > 3000 AT 45`,
		`SELECT (Emp.name) FROM Emp WHERE Emp.salary > 1000 ORDER BY Emp.name LIMIT 20 AT 45`,
		`SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT 45`,
	}
	var golden [][][]string
	for _, q := range probes {
		res, err := leader.Query(q)
		if err != nil {
			return nil, fmt.Errorf("R-T10 golden %q: %w", q, err)
		}
		golden = append(golden, renderRows(res.Rows))
	}

	startServer := func(eng *core.Engine, staleness func() time.Duration, src *repl.Source) (string, func(), error) {
		srv, err := server.New(server.Config{Engine: eng, Repl: src, Staleness: staleness})
		if err != nil {
			return "", nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		served := make(chan error, 1)
		go func() { served <- srv.Serve(ln) }()
		stop := func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-served
		}
		return ln.Addr().String(), stop, nil
	}

	src := &repl.Source{Engine: leader, Heartbeat: 50 * time.Millisecond}
	leaderAddr, stopLeader, err := startServer(leader, nil, src)
	if err != nil {
		return nil, err
	}
	defer stopLeader()

	const queries = 240
	for _, nf := range []int{0, 1, 2} {
		var replicaAddrs []string
		var followers []*repl.Follower
		var stops []func()
		for i := 0; i < nf; i++ {
			f, err := repl.StartFollower(repl.FollowerConfig{
				Leader:  leaderAddr,
				Path:    filepath.Join(dir, fmt.Sprintf("rt10-f%d-%d", nf, i)),
				Backoff: 50 * time.Millisecond,
			})
			if err != nil {
				return nil, err
			}
			ctx, cancel := context.WithCancel(context.Background())
			go f.Run(ctx)
			addr, stop, err := startServer(f.Engine(), f.Staleness, nil)
			if err != nil {
				cancel()
				f.Close()
				return nil, err
			}
			followers = append(followers, f)
			replicaAddrs = append(replicaAddrs, addr)
			stops = append(stops, func() { stop(); cancel(); f.Close() })
		}
		// Converge every follower before measuring: the experiment times
		// steady-state reads, not catch-up.
		for _, f := range followers {
			if err := waitConverged(f, leader, 20*time.Second); err != nil {
				return nil, err
			}
		}

		cl, err := client.New(client.Config{
			Addr: leaderAddr, Replicas: replicaAddrs,
			MaxStaleness: 5 * time.Second, JitterSeed: 11,
		})
		if err != nil {
			return nil, err
		}
		before := uint64(0)
		for _, f := range followers {
			before += f.Engine().Metrics().Counter("server.queries").Value()
		}
		start := time.Now()
		for i := 0; i < queries; i++ {
			pi := i % len(probes)
			res, err := cl.Query(probes[pi])
			if err != nil {
				cl.Close()
				return nil, fmt.Errorf("R-T10 followers=%d query %d: %w", nf, i, err)
			}
			if err := sameRows(golden[pi], renderRows(res.Rows)); err != nil {
				cl.Close()
				return nil, fmt.Errorf("R-T10 followers=%d query %d DIVERGED from leader: %w", nf, i, err)
			}
		}
		elapsed := time.Since(start)
		cl.Close()
		onReplicas := uint64(0)
		for _, f := range followers {
			onReplicas += f.Engine().Metrics().Counter("server.queries").Value()
		}
		onReplicas -= before
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nf), fmt.Sprint(queries), dur(elapsed),
			fmt.Sprintf("%.0f", float64(queries)/elapsed.Seconds()),
			fmt.Sprintf("%d%%", onReplicas*100/queries),
		})
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	t.Notes = append(t.Notes,
		"every answer byte-checked against the leader's golden result; a divergent replica read fails the experiment",
		"all servers share one process and host: columns measure routing and replication overhead, not hardware scaling",
	)
	t.AddCounters("leader", leader.CounterSnapshot())
	return t, nil
}

// waitConverged polls until f's watermark reaches the leader's appended
// LSN and the logical store digests agree.
func waitConverged(f *repl.Follower, leader *core.Engine, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if f.Watermark() == leader.Log().AppendedLSN() {
			ld, err := leader.DigestStore()
			if err != nil {
				return err
			}
			fd, err := f.Engine().DigestStore()
			if err == nil && bytes.Equal(ld, fd) {
				return nil
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("R-T10: follower stuck at watermark %d, leader at %d",
		f.Watermark(), leader.Log().AppendedLSN())
}
