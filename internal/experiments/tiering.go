package experiments

import (
	"fmt"
	"time"

	"tcodm/internal/atom"
	"tcodm/internal/core"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
	"tcodm/internal/workload"
)

// RT11Tiering measures what the history-tiering pipeline buys: two
// file-backed databases take the identical deep-update workload, one
// untreated and one running periodic compact+archive passes as it grows.
// The tiered store's hot page count must stay bounded while the untreated
// one grows with history depth, current-state scans must not regress, and
// deep AS OF scans (served from the cold archive on the tiered side) must
// return byte-identical answers — the experiment fails on any divergence.
func RT11Tiering(scale Scale, dir string) (*Table, error) {
	t := &Table{
		ID:    "R-T11",
		Title: "History tiering: hot-store size and scan latency vs. history depth",
		Claim: "periodic compact+archive bounds the hot store as histories deepen; NOW scans ride the smaller hot store, deep ASOF pays sequential cold reads, answers are identical",
		Columns: []string{"updates/emp", "hot pages", "hot (tiered)", "archive KiB",
			"NOW scan", "NOW (tiered)", "deep ASOF", "deep ASOF (tiered)"},
	}
	emps := 20 * int(scale)
	const hotWindow = 8 // transaction instants each tiering pass keeps hot
	for _, updates := range []int{16, 64, 256} {
		plain, err := buildTieredDB(fmt.Sprintf("%s/rt11-plain-%d.tdb", dir, updates), emps, updates, 0, hotWindow)
		if err != nil {
			return nil, err
		}
		tiered, err := buildTieredDB(fmt.Sprintf("%s/rt11-tiered-%d.tdb", dir, updates), emps, updates, 32, hotWindow)
		if err != nil {
			plain.db.Close()
			return nil, err
		}

		// Differential guarantee before timing anything: the tiered store
		// answers every probe identically to the untreated one. Tiering
		// passes tick the transaction clock, so "just after round N" is a
		// different raw instant in each store — probe each at its own.
		nowVT := temporal.Instant(updates + 1)
		deepVT := temporal.Instant(updates / 4)
		for _, probe := range []struct {
			vt                temporal.Instant
			plainTT, tieredTT temporal.Instant
		}{
			{nowVT, atom.Now, atom.Now},
			{deepVT, atom.Now, atom.Now},
			{deepVT, plain.deepTT, tiered.deepTT},
			{nowVT, plain.deepTT, tiered.deepTT},
		} {
			a, err := scanCurrentSalaries(plain.db, plain.ids, probe.vt, probe.plainTT)
			if err != nil {
				return nil, fmt.Errorf("R-T11 plain scan: %w", err)
			}
			b, err := scanCurrentSalaries(tiered.db, tiered.ids, probe.vt, probe.tieredTT)
			if err != nil {
				return nil, fmt.Errorf("R-T11 tiered scan: %w", err)
			}
			if a != b {
				return nil, fmt.Errorf("R-T11 depth %d: tiered store DIVERGED at vt=%d tt=%d/%d: %d vs %d",
					updates, probe.vt, probe.plainTT, probe.tieredTT, a, b)
			}
		}

		now := func(db *core.Engine, ids []value.ID) time.Duration {
			return measure(40*time.Millisecond, func() {
				if _, err := scanCurrentSalaries(db, ids, nowVT, atom.Now); err != nil {
					panic(err)
				}
			})
		}
		deep := func(db *core.Engine, ids []value.ID, tt temporal.Instant) time.Duration {
			return measure(40*time.Millisecond, func() {
				if _, err := scanCurrentSalaries(db, ids, deepVT, tt); err != nil {
					panic(err)
				}
			})
		}
		nowPlain, nowTiered := now(plain.db, plain.ids), now(tiered.db, tiered.ids)
		deepPlain := deep(plain.db, plain.ids, plain.deepTT)
		deepTiered := deep(tiered.db, tiered.ids, tiered.deepTT)

		t.Rows = append(t.Rows, []string{
			fmt.Sprint(updates),
			fmt.Sprint(plain.db.Stats().DevicePags),
			fmt.Sprint(tiered.db.Stats().DevicePags),
			fmt.Sprintf("%.1f", float64(tiered.db.Stats().ArchiveBytes)/1024),
			dur(nowPlain), dur(nowTiered),
			dur(deepPlain), dur(deepTiered),
		})
		if updates == 256 {
			t.AddCounters("tiered", tiered.db.CounterSnapshot())
		}
		plain.db.Close()
		tiered.db.Close()
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d employees, separated strategy, file-backed; tiered side runs compact+archive every 32 commits keeping the last %d instants hot", emps, hotWindow),
		"deep ASOF probes read below the tiering watermark (cold archive on the tiered side); all probes verified byte-identical across the two stores before timing")
	return t, nil
}

// tieredDB is one built store plus the probe coordinates shared by the pair.
type tieredDB struct {
	db     *core.Engine
	ids    []value.ID
	deepTT temporal.Instant // transaction instant one quarter into the build
}

// buildTieredDB loads emps employees with `updates` salary rounds each, one
// commit per round. With tierEvery > 0, every tierEvery commits a tiering
// pass archives versions closed more than hotWindow instants ago — the
// grow-and-tier loop a long-lived store runs.
func buildTieredDB(path string, emps, updates, tierEvery, hotWindow int) (*tieredDB, error) {
	db, err := core.Open(core.Options{Path: path, Strategy: atom.StrategySeparated, PoolPages: 4096})
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*tieredDB, error) {
		db.Close()
		return nil, err
	}
	if err := installSchema(db, workload.PersonnelSchema); err != nil {
		return fail(err)
	}
	tx, err := db.Begin()
	if err != nil {
		return fail(err)
	}
	var ids []value.ID
	for e := 0; e < emps; e++ {
		id, err := tx.Insert("Emp", map[string]value.V{
			"name": value.String_(fmt.Sprintf("t%d", e)), "salary": value.Int(0),
		}, 0)
		if err != nil {
			return fail(err)
		}
		ids = append(ids, id)
	}
	if err := tx.Commit(); err != nil {
		return fail(err)
	}
	out := &tieredDB{db: db, ids: ids}
	for i := 1; i <= updates; i++ {
		tx, err := db.Begin()
		if err != nil {
			return fail(err)
		}
		for e, id := range ids {
			// Small value domain: adjacent rounds repeat values, so the
			// compaction stage has equal-valued runs to coalesce.
			if err := tx.Set(id, "salary", value.Int(int64((i*7+e)%16)), temporal.Instant(i)); err != nil {
				return fail(err)
			}
		}
		if i == updates/4 {
			out.deepTT = tx.TT()
		}
		if err := tx.Commit(); err != nil {
			return fail(err)
		}
		if tierEvery > 0 && i%tierEvery == 0 {
			wm := db.Now()
			if wm > temporal.Instant(hotWindow) {
				if _, err := db.Archive(wm - temporal.Instant(hotWindow)); err != nil {
					return fail(fmt.Errorf("tiering pass at round %d: %w", i, err))
				}
			}
		}
	}
	if err := db.Checkpoint(); err != nil {
		return fail(err)
	}
	return out, nil
}
