package experiments

import (
	"strings"
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/workload"
)

func TestBuildPersonnelDB(t *testing.T) {
	p := workload.PersonnelParams{Depts: 2, Emps: 10, UpdatesPerEmp: 2, TimeStep: 10, Seed: 1}
	for _, s := range Strategies {
		db, emps, err := BuildPersonnelDB(s, p, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(emps) != 10 {
			t.Errorf("emps = %d", len(emps))
		}
		sum, err := scanCurrentSalaries(db, emps, 100, atom.Now)
		if err != nil || sum == 0 {
			t.Errorf("salary sum = %d, %v", sum, err)
		}
		db.Close()
	}
}

func TestBuildCADDB(t *testing.T) {
	p := workload.CADParams{Assemblies: 2, Fanout: 2, Depth: 2, Revisions: 1, TimeStep: 10, Seed: 1}
	db, asms, err := BuildCADDB(atom.StrategySeparated, p)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if len(asms) != 2 {
		t.Errorf("assemblies = %d", len(asms))
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID: "T-X", Title: "test", Claim: "c",
		Columns: []string{"a", "bee"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n"},
	}
	s := tbl.String()
	for _, want := range []string{"T-X", "claim: c", "bee", "333", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

// TestSuiteRuns executes every experiment end-to-end (slow; skipped with
// -short). It checks structure, not timings.
func TestSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow; run without -short")
	}
	dir := t.TempDir()
	type exp struct {
		name string
		run  func() (*Table, error)
		rows int
	}
	suite := []exp{
		{"R-T1", func() (*Table, error) { return RT1StorageCost(1) }, 5},
		{"R-F1", func() (*Table, error) { return RF1CurrentQuery(1) }, 4},
		{"R-F2", func() (*Table, error) { return RF2TimeSlice(1) }, 5},
		{"R-F3", func() (*Table, error) { return RF3UpdateCost(1) }, 4},
		{"R-T2", func() (*Table, error) { return RT2Molecule(1) }, 6},
		{"R-F4", func() (*Table, error) { return RF4WhenSelection(1) }, 4},
		{"R-F5", func() (*Table, error) { return RF5HistoryQuery(1) }, 3},
		{"R-T3", func() (*Table, error) { return RT3Txn(1, dir) }, 5},
		{"R-F6", func() (*Table, error) { return RF6BufferPool(1, dir) }, 4},
		{"R-A1", func() (*Table, error) { return RA1SegmentCap(1) }, 4},
		{"R-F8", func() (*Table, error) { return RF8ValueIndex(1) }, 4},
		{"R-A2", func() (*Table, error) { return RA2Vacuum(1) }, 3},
		{"R-T9", func() (*Table, error) { return RT9ParallelScan(1, []int{1, 2}) }, 2},
		{"R-T11", func() (*Table, error) { return RT11Tiering(1, dir) }, 3},
	}
	for _, e := range suite {
		t.Run(e.name, func(t *testing.T) {
			tbl, err := e.run()
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) != e.rows {
				t.Errorf("%s rows = %d, want %d", e.name, len(tbl.Rows), e.rows)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("%s row width %d != %d columns", e.name, len(row), len(tbl.Columns))
				}
			}
		})
	}
}
