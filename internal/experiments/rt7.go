package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"tcodm/internal/atom"
	"tcodm/internal/server"
	"tcodm/internal/workload"
	"tcodm/pkg/client"
)

// RT7WireOverhead measures the network service tax: the same TMQL run
// through the in-process API and through pkg/client over TCP. With
// remoteAddr empty the server is spawned in-process on loopback, so both
// sides see the identical database and results are checked for equality;
// a non-empty remoteAddr points at an external tcoserve (whose data this
// experiment cannot verify — rows are reported, not compared).
func RT7WireOverhead(scale Scale, remoteAddr string) (*Table, error) {
	t := &Table{
		ID:      "R-T7",
		Title:   "Wire overhead: remote (TCP) vs in-process query latency",
		Claim:   "framing + loopback TCP adds a fixed per-query tax, amortized on larger results",
		Columns: []string{"query", "rows", "in-process", "remote", "overhead"},
	}
	p := workload.PersonnelParams{
		Depts: 4, Emps: 150 * int(scale), UpdatesPerEmp: 8, MovesPerEmp: 1,
		TimeStep: 10, Seed: 42,
	}
	db, _, err := BuildPersonnelDB(atom.StrategySeparated, p, false)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	addr := remoteAddr
	if addr == "" {
		srv, err := server.New(server.Config{Engine: db, Banner: "tcobench/rt7"})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		served := make(chan error, 1)
		go func() { served <- srv.Serve(ln) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-served
		}()
		addr = ln.Addr().String()
	}

	cl, err := client.New(client.Config{Addr: addr, PoolSize: 2})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		return nil, fmt.Errorf("rt7: ping %s: %w", addr, err)
	}

	queries := []struct {
		label string
		tmql  string
	}{
		{"point select", `SELECT (name, salary) FROM Emp WHERE name = "emp-0001" LIMIT 1`},
		{"filtered scan", `SELECT (name, salary) FROM Emp WHERE salary > 3000`},
		{"full scan", `SELECT (name, salary, bio) FROM Emp`},
		{"history", `SELECT HISTORY(Emp.salary) FROM Emp DURING [0, 10000)`},
	}
	for _, q := range queries {
		localRows := -1
		local := measure(40*time.Millisecond, func() {
			res, err := db.Query(q.tmql)
			if err != nil {
				panic(err)
			}
			localRows = len(res.Rows)
		})
		remoteRows := -1
		remote := measure(40*time.Millisecond, func() {
			res, err := cl.Query(q.tmql)
			if err != nil {
				panic(err)
			}
			remoteRows = len(res.Rows)
		})
		if remoteAddr == "" && localRows != remoteRows {
			return nil, fmt.Errorf("rt7: %s: remote returned %d rows, in-process %d", q.label, remoteRows, localRows)
		}
		t.Rows = append(t.Rows, []string{
			q.label, fmt.Sprint(remoteRows), dur(local), dur(remote), ratioDur(remote, local),
		})
	}
	transport := "in-process loopback server (same data both sides, results verified equal)"
	if remoteAddr != "" {
		transport = fmt.Sprintf("external server at %s (remote data not verified against local build)", remoteAddr)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d employees, %d salary versions each; pooled pkg/client, batched row streaming", p.Emps, p.UpdatesPerEmp+1),
		transport,
	)
	return t, nil
}
