package query

import (
	"context"
	"fmt"
	"strings"
	"time"

	"tcodm/internal/obs"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// PlanNode is one operator in an execution plan tree. Children are the
// operator's inputs (the leaf is the access path). When Analyzed is set the
// node carries actual row counts and accumulated wall time from a real
// execution (EXPLAIN ANALYZE); otherwise the node only describes the plan.
type PlanNode struct {
	Name     string        // operator, e.g. "scan", "filter: WHERE", "materialize"
	Detail   string        // operator argument, e.g. the access path or predicate
	Rows     int64         // rows/items produced (valid when Analyzed)
	Dur      time.Duration // wall time attributed to this operator (valid when Analyzed)
	Analyzed bool
	Children []*PlanNode
}

// String renders the tree in the conventional indented form.
func (n *PlanNode) String() string {
	var sb strings.Builder
	n.render(&sb, 0)
	return sb.String()
}

func (n *PlanNode) render(sb *strings.Builder, depth int) {
	if depth > 0 {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString("-> ")
	}
	sb.WriteString(n.Name)
	if n.Detail != "" {
		sb.WriteString(" (" + n.Detail + ")")
	}
	if n.Analyzed {
		fmt.Fprintf(sb, "  [rows=%d time=%s]", n.Rows, n.Dur.Round(time.Microsecond))
	}
	sb.WriteByte('\n')
	for _, c := range n.Children {
		c.render(sb, depth+1)
	}
}

// execCtx accumulates per-operator row counts and (when analyze is set)
// wall-time while a query executes. Counters are plain int64: one query
// runs on one goroutine. The zero value (analyze=false) costs a handful of
// increments per candidate — cheap enough to keep on unconditionally.
type execCtx struct {
	analyze bool

	// timed enables per-stage wall-clock measurement without the full
	// EXPLAIN ANALYZE machinery — set when the query runs under an active
	// trace so operator spans carry real durations.
	timed bool

	// ctx carries the caller's cancellation; nil means "never cancelled".
	ctx        context.Context
	cancelTick uint32

	// res accumulates the query's exact resource totals: every storage,
	// WAL, and atom-layer read on this execution context charges here.
	// Workers keep private totals that merge() sums, so serial and
	// parallel runs report identical numbers by construction.
	res obs.Resources

	scanDesc string // access-path description from candidates()
	scanned  int64  // candidate ids produced by the access path

	whenOut int64 // candidates surviving the WHEN filter
	whenDur time.Duration

	sliceOut int64 // states alive at the slice point (or loaded, with WHEN)
	sliceDur time.Duration

	whereOut int64 // states surviving the WHERE filter
	whereDur time.Duration

	emitOut int64 // rows/molecules produced by the class-specific stage
	emitDur time.Duration

	havingOut int64 // molecules surviving HAVING (molecule class only)
	matCount  int64 // molecules materialized (molecule class only)

	totalDur time.Duration

	// Parallel-execution telemetry. workers is non-nil iff runParallel
	// drove this query (possibly with zero entries when there were no
	// candidates); planWorkers is the configured fan-out, shown by plain
	// EXPLAIN where nothing executes.
	workers     []workerStat
	chunks      int
	planWorkers int
}

// merge folds a worker's counters into the parent context — the merge-time
// aggregation that keeps EXPLAIN ANALYZE row counts exact under
// parallelism (private counters per worker, no shared-counter races).
func (c *execCtx) merge(w *execCtx) {
	if w == nil {
		return
	}
	c.scanned += w.scanned
	c.whenOut += w.whenOut
	c.whenDur += w.whenDur
	c.sliceOut += w.sliceOut
	c.sliceDur += w.sliceDur
	c.whereOut += w.whereOut
	c.whereDur += w.whereDur
	c.emitOut += w.emitOut
	c.emitDur += w.emitDur
	c.havingOut += w.havingOut
	c.matCount += w.matCount
	c.res.Add(w.res)
}

// checkCancel polls the caller's context at operator-loop boundaries.
// Polling every candidate would put a lock acquisition (ctx.Err) on the
// per-row path, so it samples every 64 candidates — bounded staleness at
// negligible cost.
func (c *execCtx) checkCancel() error {
	if c.ctx == nil {
		return nil
	}
	c.cancelTick++
	if c.cancelTick&63 != 0 {
		return nil
	}
	return c.ctx.Err()
}

// cancelErr reports the context's error unconditionally (used before
// expensive per-candidate stages like molecule materialization).
func (c *execCtx) cancelErr() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// now returns the current time only when profiling; the zero Time means
// "don't measure" and makes the paired since() a no-op.
func (c *execCtx) now() time.Time {
	if c == nil || (!c.analyze && !c.timed) {
		return time.Time{}
	}
	return time.Now()
}

func since(start time.Time) time.Duration {
	if start.IsZero() {
		return 0
	}
	return time.Since(start)
}

// describeScan predicts the access path candidates() would choose, without
// executing anything. It must mirror candidates() branch for branch.
func (e *Engine) describeScan(a *Analyzed, typeName string) string {
	q := a.Query
	if q.When != nil && !q.When.Lifespan && e.Mgr.HasTimeIndex() {
		if bound, ok := whenStartBound(q.When); ok {
			return fmt.Sprintf("time-index scan on %s below %v", q.When.Attr, bound)
		}
	}
	if q.When == nil && e.Mgr.HasValueIndex() {
		if pred := sargable(q.Where, baseType(a)); pred != nil {
			return fmt.Sprintf("value-index scan on %s.%s %s %s", typeName, pred.attr, pred.op, pred.lit)
		}
	}
	return "full type scan on " + typeName
}

// buildPlanTree assembles the operator tree for an analyzed query. With a
// populated ctx (post-execution) the nodes carry actual counts and times;
// with ctx.analyze unset they only describe the plan shape.
func buildPlanTree(a *Analyzed, vt, tt temporal.Instant, ctx *execCtx, res *Result) *PlanNode {
	q := a.Query
	analyzed := ctx.analyze

	// Leaf: the access path.
	node := &PlanNode{
		Name: "scan", Detail: ctx.scanDesc,
		Rows: ctx.scanned, Analyzed: analyzed,
	}

	// Parallel execution inserts a gather node above the scan: the scan
	// (candidate collection) is serial, everything downstream fans out, and
	// the gather's worker children carry per-worker rows and wall time.
	if ctx.workers != nil || ctx.planWorkers > 1 {
		g := &PlanNode{
			Name: "gather", Rows: ctx.scanned, Analyzed: analyzed,
			Children: []*PlanNode{node},
		}
		if ctx.workers == nil {
			g.Detail = fmt.Sprintf("workers=%d", ctx.planWorkers)
		} else {
			g.Detail = fmt.Sprintf("workers=%d chunks=%d", len(ctx.workers), ctx.chunks)
			for i, ws := range ctx.workers {
				g.Children = append(g.Children, &PlanNode{
					Name:   fmt.Sprintf("worker %d", i),
					Detail: fmt.Sprintf("chunks=%d cands=%d", ws.chunks, ws.cands),
					Rows:   ws.rows, Dur: ws.dur, Analyzed: analyzed,
				})
			}
		}
		node = g
	}

	if q.When != nil {
		w := q.When
		detail := ""
		if w.Lifespan {
			detail = fmt.Sprintf("WHEN LIFESPAN %s PERIOD %s", w.Pred, w.Period)
		} else {
			detail = fmt.Sprintf("WHEN VALID(%s) %s PERIOD %s", w.Attr, w.Pred, w.Period)
		}
		node = &PlanNode{
			Name: "filter", Detail: detail,
			Rows: ctx.whenOut, Dur: ctx.whenDur, Analyzed: analyzed,
			Children: []*PlanNode{node},
		}
	}

	ttDesc := "now"
	if q.AsOf != nil {
		ttDesc = fmt.Sprint(tt)
	}
	node = &PlanNode{
		Name: "time-slice", Detail: fmt.Sprintf("vt=%v tt=%s", vt, ttDesc),
		Rows: ctx.sliceOut, Dur: ctx.sliceDur, Analyzed: analyzed,
		Children: []*PlanNode{node},
	}

	if q.Where != nil {
		node = &PlanNode{
			Name: "filter", Detail: "WHERE " + q.Where.String(),
			Rows: ctx.whereOut, Dur: ctx.whereDur, Analyzed: analyzed,
			Children: []*PlanNode{node},
		}
	}

	switch a.Class {
	case ClassMolecule:
		node = &PlanNode{
			Name: "materialize", Detail: "molecule " + a.MolType.Name,
			Rows: ctx.matCount, Dur: ctx.emitDur, Analyzed: analyzed,
			Children: []*PlanNode{node},
		}
		if q.Having != nil {
			node = &PlanNode{
				Name: "filter", Detail: "HAVING " + q.Having.String(),
				Rows: ctx.havingOut, Analyzed: analyzed,
				Children: []*PlanNode{node},
			}
		}
		if q.SelectAll {
			node = &PlanNode{
				Name: "collect", Detail: "ALL molecules",
				Rows: ctx.emitOut, Analyzed: analyzed,
				Children: []*PlanNode{node},
			}
		} else {
			node = &PlanNode{
				Name: "project", Detail: projListDetail(q),
				Rows: ctx.emitOut, Analyzed: analyzed,
				Children: []*PlanNode{node},
			}
		}
	case ClassHistory:
		detail := "HISTORY(" + q.History.String() + ")"
		if q.During != nil {
			detail += fmt.Sprintf(" DURING %s", *q.During)
		}
		node = &PlanNode{
			Name: "history-expand", Detail: detail,
			Rows: ctx.emitOut, Dur: ctx.emitDur, Analyzed: analyzed,
			Children: []*PlanNode{node},
		}
	default: // ClassAtom
		node = &PlanNode{
			Name: "project", Detail: projListDetail(q),
			Rows: ctx.emitOut, Dur: ctx.emitDur, Analyzed: analyzed,
			Children: []*PlanNode{node},
		}
	}

	if q.OrderBy != "" || q.Limit > 0 {
		detail := ""
		if q.OrderBy != "" {
			detail = "ORDER BY " + q.OrderBy
			if q.OrderDesc {
				detail += " DESC"
			}
		}
		if q.Limit > 0 {
			if detail != "" {
				detail += " "
			}
			detail += fmt.Sprintf("LIMIT %d", q.Limit)
		}
		rows := int64(0)
		if res != nil {
			rows = int64(len(res.Rows) + len(res.Molecules))
		}
		node = &PlanNode{
			Name: "order/limit", Detail: detail,
			Rows: rows, Analyzed: analyzed,
			Children: []*PlanNode{node},
		}
	}

	root := &PlanNode{
		Name: "query", Detail: className(a.Class),
		Dur:  ctx.totalDur, Analyzed: analyzed,
		Children: []*PlanNode{node},
	}
	if res != nil {
		root.Rows = int64(len(res.Rows) + len(res.Molecules))
	}
	if analyzed && ctx.res.Arc > 0 {
		// Cold-archive traffic only shows up when it happened, so plans for
		// purely-hot queries render exactly as before tiering existed.
		root.Children = append(root.Children, &PlanNode{
			Name: "archive", Detail: fmt.Sprintf("cold blocks read=%d", ctx.res.Arc),
			Rows: int64(ctx.res.Arc), Analyzed: analyzed,
		})
	}
	return root
}

func projListDetail(q *Query) string {
	parts := make([]string, len(q.Projs))
	for i, p := range q.Projs {
		parts[i] = p.Label()
	}
	return strings.Join(parts, ", ")
}

func className(c QueryClass) string {
	switch c {
	case ClassAtom:
		return "atom"
	case ClassHistory:
		return "history"
	case ClassMolecule:
		return "molecule"
	default:
		return "?"
	}
}

// planResult wraps a plan tree as a one-column result, one row per line.
func planResult(tree *PlanNode) *Result {
	res := &Result{Columns: []string{"QUERY PLAN"}, ExplainTree: tree, Plan: tree.String()}
	for _, line := range strings.Split(strings.TrimRight(tree.String(), "\n"), "\n") {
		res.Rows = append(res.Rows, []value.V{value.String_(line)})
	}
	return res
}

// explain handles EXPLAIN and EXPLAIN ANALYZE for an analyzed query.
func (e *Engine) explain(cctx context.Context, a *Analyzed, def Defaults) (*Result, error) {
	q := a.Query
	vt := def.VT
	if q.At != nil {
		vt = *q.At
	}
	tt := def.tt()
	if q.AsOf != nil {
		tt = *q.AsOf
	}
	if !q.Analyze {
		// Describe only — nothing executes.
		ctx := &execCtx{scanDesc: e.describeScan(a, baseType(a).Name), planWorkers: e.Workers}
		return planResult(buildPlanTree(a, vt, tt, ctx, nil)), nil
	}
	ctx := &execCtx{analyze: true, ctx: cctx}
	start := time.Now()
	res, err := e.executeClass(a, vt, tt, ctx)
	if err != nil {
		return nil, err
	}
	applyOrderLimit(a, res)
	ctx.totalDur = time.Since(start)
	out := planResult(buildPlanTree(a, vt, tt, ctx, res))
	out.Res = ctx.res
	out.Trace = def.Trace
	if e.tracer != nil && def.Trace != 0 {
		e.emitTrace(a, def, ctx, start, ctx.totalDur)
		// Stamp the trace id as a trailing plan line so EXPLAIN ANALYZE
		// output correlates with /debug/trace. Untraced runs are untouched,
		// keeping existing plan goldens byte-identical.
		out.Rows = append(out.Rows, []value.V{value.String_(fmt.Sprintf("trace: %d", def.Trace))})
	}
	return out, nil
}
