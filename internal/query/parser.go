package query

import (
	"fmt"
	"strconv"

	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// Parse compiles TMQL text into a Query AST (syntactic only; semantic
// checks against the schema happen in Analyze).
func Parse(src string) (*Query, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("query: unexpected %s after end of query", p.peek())
	}
	return q, nil
}

type parser struct {
	tokens []token
	pos    int
}

func (p *parser) peek() token { return p.tokens[p.pos] }

func (p *parser) next() token {
	t := p.tokens[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokenKind]string{
			tokIdent: "identifier", tokInt: "integer", tokPunct: "punctuation",
		}[kind]
	}
	return token{}, fmt.Errorf("query: expected %s, found %s at position %d", want, p.peek(), p.peek().pos)
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if p.accept(tokKeyword, "EXPLAIN") {
		q.Explain = true
		q.Analyze = p.accept(tokKeyword, "ANALYZE")
	}
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	switch {
	case p.accept(tokKeyword, "ALL"):
		q.SelectAll = true
	case p.accept(tokKeyword, "HISTORY"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		ref, err := p.parseAttrRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		q.History = &ref
	case p.accept(tokPunct, "("):
		for {
			proj, err := p.parseProjection()
			if err != nil {
				return nil, err
			}
			q.Projs = append(q.Projs, proj)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("query: expected ALL, HISTORY(...) or a projection list, found %s", p.peek())
	}

	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	q.From = from.text

	// Optional clauses in any order.
	for {
		switch {
		case p.accept(tokKeyword, "WHEN"):
			if q.When != nil {
				return nil, fmt.Errorf("query: duplicate WHEN clause")
			}
			w, err := p.parseWhen()
			if err != nil {
				return nil, err
			}
			q.When = w
		case p.accept(tokKeyword, "WHERE"):
			if q.Where != nil {
				return nil, fmt.Errorf("query: duplicate WHERE clause")
			}
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			q.Where = e
		case p.accept(tokKeyword, "HAVING"):
			if q.Having != nil {
				return nil, fmt.Errorf("query: duplicate HAVING clause")
			}
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			q.Having = e
		case p.accept(tokKeyword, "AT"):
			if q.At != nil {
				return nil, fmt.Errorf("query: duplicate AT clause")
			}
			t, err := p.parseInstant()
			if err != nil {
				return nil, err
			}
			q.At = &t
		case p.accept(tokKeyword, "ASOF"):
			if q.AsOf != nil {
				return nil, fmt.Errorf("query: duplicate ASOF clause")
			}
			t, err := p.parseInstant()
			if err != nil {
				return nil, err
			}
			q.AsOf = &t
		case p.accept(tokKeyword, "DURING"):
			if q.During != nil {
				return nil, fmt.Errorf("query: duplicate DURING clause")
			}
			iv, err := p.parsePeriod()
			if err != nil {
				return nil, err
			}
			q.During = &iv
		case p.accept(tokKeyword, "ORDER"):
			if q.OrderBy != "" {
				return nil, fmt.Errorf("query: duplicate ORDER BY clause")
			}
			if _, err := p.expect(tokKeyword, "BY"); err != nil {
				return nil, err
			}
			ref, err := p.parseAttrRef()
			if err != nil {
				return nil, err
			}
			q.OrderBy = ref.String()
			if p.accept(tokKeyword, "DESC") {
				q.OrderDesc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
		case p.accept(tokKeyword, "LIMIT"):
			if q.Limit != 0 {
				return nil, fmt.Errorf("query: duplicate LIMIT clause")
			}
			n, err := p.expect(tokInt, "")
			if err != nil {
				return nil, err
			}
			limit, err := strconv.Atoi(n.text)
			if err != nil || limit <= 0 {
				return nil, fmt.Errorf("query: LIMIT wants a positive integer, got %q", n.text)
			}
			q.Limit = limit
		default:
			return q, nil
		}
	}
}

func (p *parser) parseProjection() (Projection, error) {
	for _, agg := range []string{"TAVG", "TMIN", "TMAX", "CHANGES"} {
		if p.accept(tokKeyword, agg) {
			if _, err := p.expect(tokPunct, "("); err != nil {
				return Projection{}, err
			}
			ref, err := p.parseAttrRef()
			if err != nil {
				return Projection{}, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return Projection{}, err
			}
			return Projection{Attr: &ref, Agg: agg}, nil
		}
	}
	if p.accept(tokKeyword, "COUNT") {
		if _, err := p.expect(tokPunct, "("); err != nil {
			return Projection{}, err
		}
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return Projection{}, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return Projection{}, err
		}
		return Projection{Count: t.text}, nil
	}
	ref, err := p.parseAttrRef()
	if err != nil {
		return Projection{}, err
	}
	return Projection{Attr: &ref}, nil
}

// parseAttrRef parses `attr` or `Type.attr`.
func (p *parser) parseAttrRef() (AttrRef, error) {
	first, err := p.expect(tokIdent, "")
	if err != nil {
		return AttrRef{}, err
	}
	if p.accept(tokPunct, ".") {
		second, err := p.expect(tokIdent, "")
		if err != nil {
			return AttrRef{}, err
		}
		return AttrRef{Type: first.text, Attr: second.text}, nil
	}
	return AttrRef{Attr: first.text}, nil
}

func (p *parser) parseWhen() (*WhenClause, error) {
	w := &WhenClause{}
	switch {
	case p.accept(tokKeyword, "VALID"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		ref, err := p.parseAttrRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		w.Attr = ref
	case p.accept(tokKeyword, "LIFESPAN"):
		w.Lifespan = true
	default:
		return nil, fmt.Errorf("query: WHEN expects VALID(attr) or LIFESPAN, found %s", p.peek())
	}
	pred, err := p.parsePred()
	if err != nil {
		return nil, err
	}
	w.Pred = pred
	if _, err := p.expect(tokKeyword, "PERIOD"); err != nil {
		return nil, err
	}
	iv, err := p.parsePeriod()
	if err != nil {
		return nil, err
	}
	w.Period = iv
	return w, nil
}

func (p *parser) parsePred() (TemporalPred, error) {
	for pred, name := range predNames {
		if p.accept(tokKeyword, name) {
			return TemporalPred(pred), nil
		}
	}
	return 0, fmt.Errorf("query: expected a temporal predicate (OVERLAPS, CONTAINS, DURING, PRECEDES, MEETS, EQUALS), found %s", p.peek())
}

// parsePeriod parses `[ a , b )`.
func (p *parser) parsePeriod() (temporal.Interval, error) {
	if _, err := p.expect(tokPunct, "["); err != nil {
		return temporal.Interval{}, err
	}
	from, err := p.parseInstant()
	if err != nil {
		return temporal.Interval{}, err
	}
	if _, err := p.expect(tokPunct, ","); err != nil {
		return temporal.Interval{}, err
	}
	to, err := p.parseInstant()
	if err != nil {
		return temporal.Interval{}, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return temporal.Interval{}, err
	}
	if from > to {
		return temporal.Interval{}, fmt.Errorf("query: inverted period [%v, %v)", from, to)
	}
	return temporal.Interval{From: from, To: to}, nil
}

func (p *parser) parseInstant() (temporal.Instant, error) {
	if p.accept(tokKeyword, "FOREVER") {
		return temporal.Forever, nil
	}
	t, err := p.expect(tokInt, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("query: bad instant %q: %w", t.text, err)
	}
	return temporal.Instant(n), nil
}

// Expression grammar: or := and {OR and}; and := not {AND not};
// not := [NOT] cmp; cmp := operand [op operand] | '(' or ')'.
func (p *parser) parseOr() (*Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Expr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (*Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Expr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (*Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Expr{Op: "NOT", Left: inner}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (*Expr, error) {
	if p.accept(tokPunct, "(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.at(tokOp, "") {
		op := p.next().text
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return &Expr{Op: op, Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *parser) parseOperand() (*Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokIdent:
		ref, err := p.parseAttrRef()
		if err != nil {
			return nil, err
		}
		return &Expr{Ref: &ref}, nil
	case t.kind == tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad integer %q", t.text)
		}
		v := value.Int(n)
		return &Expr{Lit: &v}, nil
	case t.kind == tokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad float %q", t.text)
		}
		v := value.Float(f)
		return &Expr{Lit: &v}, nil
	case t.kind == tokString:
		p.next()
		v := value.String_(t.text)
		return &Expr{Lit: &v}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		v := value.Bool(true)
		return &Expr{Lit: &v}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		v := value.Bool(false)
		return &Expr{Lit: &v}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		v := value.Null
		return &Expr{Lit: &v}, nil
	default:
		return nil, fmt.Errorf("query: expected an operand, found %s at position %d", t, t.pos)
	}
}
