package query

import (
	"strings"
	"testing"
)

func TestHavingQualifiesMolecules(t *testing.T) {
	e, _, _ := fixture(t, false)
	// Departments employing someone earning > 4000 at t=10:
	// kernel has eve (5000); tools tops out at dan (4000).
	res, err := e.Run(`SELECT (Dept.name) FROM DeptStaff HAVING Emp.salary > 4000 AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "kernel" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// At t=90 eve is gone but ada (kernel) earns 9000.
	res, err = e.Run(`SELECT (Dept.name) FROM DeptStaff HAVING Emp.salary > 4000 AT 90`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "kernel" {
		t.Fatalf("rows at 90 = %v", res.Rows)
	}
	// Conjunctions compose per-comparison existentials: a department with
	// both a low earner and a high earner.
	res, err = e.Run(`SELECT (Dept.name) FROM DeptStaff HAVING Emp.salary > 4000 AND Emp.salary < 2000 AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "kernel" {
		t.Fatalf("conjunct rows = %v", res.Rows)
	}
	// NOT: departments where no employee earns > 4000.
	res, err = e.Run(`SELECT (Dept.name) FROM DeptStaff HAVING NOT Emp.salary > 4000 AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "tools" {
		t.Fatalf("NOT rows = %v", res.Rows)
	}
	// HAVING composes with SELECT ALL.
	res, err = e.Run(`SELECT ALL FROM DeptStaff HAVING Emp.salary > 4000 AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Molecules) != 1 {
		t.Fatalf("molecules = %d", len(res.Molecules))
	}
	// And with WHERE on the root.
	res, err = e.Run(`SELECT (Dept.name) FROM DeptStaff WHERE name = "tools" HAVING Emp.salary > 3000 AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "tools" {
		t.Fatalf("where+having rows = %v", res.Rows)
	}
}

func TestHavingErrors(t *testing.T) {
	sch := testSchema(t)
	cases := map[string]string{
		`SELECT (name) FROM Emp HAVING Emp.salary > 1`:              "requires a molecule",
		`SELECT (Dept.name) FROM DeptStaff HAVING salary > 1`:       "must be qualified",
		`SELECT (Dept.name) FROM DeptStaff HAVING Proj.title = "x"`: "no constituent type",
		`SELECT (Dept.name) FROM DeptStaff HAVING Emp.bogus > 1`:    "no attribute",
	}
	for src, frag := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		_, err = Analyze(q, sch)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("Analyze(%q) = %v, want %q", src, err, frag)
		}
	}
}

func TestHavingRoundTrip(t *testing.T) {
	q, err := Parse(`SELECT ALL FROM DeptStaff HAVING Emp.salary > 4000 AND NOT Emp.name = "x" AT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(q.String()); err != nil {
		t.Fatalf("re-parse of %q: %v", q.String(), err)
	}
}
