package query

import (
	"fmt"

	"tcodm/internal/schema"
)

// QueryClass distinguishes the execution shapes.
type QueryClass uint8

const (
	// ClassAtom: FROM names an atom type; rows of projected values.
	ClassAtom QueryClass = iota
	// ClassMolecule: FROM names a molecule type; molecules or per-molecule rows.
	ClassMolecule
	// ClassHistory: SELECT HISTORY(...) over an atom type.
	ClassHistory
)

// Analyzed is a semantically checked query ready for planning.
type Analyzed struct {
	Query *Query
	Class QueryClass

	AtomType *schema.AtomType     // ClassAtom/ClassHistory
	MolType  *schema.MoleculeType // ClassMolecule
	RootType *schema.AtomType     // ClassMolecule: the root's atom type
}

// Analyze resolves the query against the schema, normalizing unqualified
// attribute references and rejecting inconsistent constructs.
func Analyze(q *Query, sch *schema.Schema) (*Analyzed, error) {
	a := &Analyzed{Query: q}
	if at, ok := sch.AtomType(q.From); ok {
		a.AtomType = at
		a.Class = ClassAtom
	} else if mt, ok := sch.MoleculeType(q.From); ok {
		a.MolType = mt
		root, ok := sch.AtomType(mt.Root)
		if !ok {
			return nil, fmt.Errorf("query: molecule %s has unknown root type %s", mt.Name, mt.Root)
		}
		a.RootType = root
		a.Class = ClassMolecule
	} else {
		return nil, fmt.Errorf("query: FROM names unknown type %q", q.From)
	}

	hasAgg := false
	for _, p := range q.Projs {
		if p.Agg != "" {
			hasAgg = true
		}
	}
	if q.History != nil {
		if a.Class != ClassAtom {
			return nil, fmt.Errorf("query: HISTORY queries require an atom type in FROM")
		}
		a.Class = ClassHistory
		if err := resolveRef(q.History, a.AtomType); err != nil {
			return nil, err
		}
	} else if q.During != nil && !hasAgg {
		return nil, fmt.Errorf("query: DURING is only valid with SELECT HISTORY or temporal aggregates")
	}
	if hasAgg && a.Class != ClassAtom {
		return nil, fmt.Errorf("query: temporal aggregates require an atom type in FROM")
	}

	if q.SelectAll && a.Class == ClassAtom {
		return nil, fmt.Errorf("query: SELECT ALL requires a molecule type in FROM (got atom type %s)", q.From)
	}

	// Resolve projections. Molecule queries may project attributes of any
	// constituent type: the result is unnested, one row per combination of
	// constituents of the referenced non-root types.
	base := a.AtomType
	if a.Class == ClassMolecule {
		base = a.RootType
	}
	for i := range q.Projs {
		p := &q.Projs[i]
		if p.Count != "" {
			if a.Class != ClassMolecule {
				return nil, fmt.Errorf("query: COUNT(%s) requires a molecule type in FROM", p.Count)
			}
			if !moleculeHasType(a.MolType, p.Count) {
				return nil, fmt.Errorf("query: molecule %s has no constituent type %s", a.MolType.Name, p.Count)
			}
			continue
		}
		if a.Class == ClassMolecule && p.Attr.Type != "" && p.Attr.Type != base.Name {
			if !moleculeHasType(a.MolType, p.Attr.Type) {
				return nil, fmt.Errorf("query: molecule %s has no constituent type %s", a.MolType.Name, p.Attr.Type)
			}
			ct, ok := sch.AtomType(p.Attr.Type)
			if !ok {
				return nil, fmt.Errorf("query: unknown atom type %s", p.Attr.Type)
			}
			if _, ok := ct.Attr(p.Attr.Attr); !ok {
				return nil, fmt.Errorf("query: %s has no attribute %q", p.Attr.Type, p.Attr.Attr)
			}
			continue
		}
		if err := resolveRef(p.Attr, base); err != nil {
			return nil, err
		}
	}

	// Resolve WHERE references against the base type.
	if q.Where != nil {
		if err := resolveExpr(q.Where, base); err != nil {
			return nil, err
		}
	}

	// Resolve WHEN.
	if q.When != nil && !q.When.Lifespan {
		if err := resolveRef(&q.When.Attr, base); err != nil {
			return nil, err
		}
	}

	// HAVING qualifies molecules by constituent atoms.
	if q.Having != nil {
		if a.Class != ClassMolecule {
			return nil, fmt.Errorf("query: HAVING requires a molecule type in FROM")
		}
		if err := resolveHaving(q.Having, a.MolType, sch); err != nil {
			return nil, err
		}
	}

	// ORDER BY must name an output column.
	if q.OrderBy != "" {
		if q.SelectAll {
			return nil, fmt.Errorf("query: ORDER BY needs a projection list (SELECT ALL has no columns)")
		}
		if _, ok := orderColumn(a); !ok {
			return nil, fmt.Errorf("query: ORDER BY column %q is not in the projection list", q.OrderBy)
		}
	}
	return a, nil
}

// orderColumn resolves the ORDER BY name against the output columns,
// accepting either the full label or a bare attribute name.
func orderColumn(a *Analyzed) (int, bool) {
	q := a.Query
	if a.Class == ClassHistory {
		for i, c := range []string{"id", q.History.Attr, "valid_from", "valid_to"} {
			if q.OrderBy == c {
				return i, true
			}
		}
		return 0, false
	}
	for i, p := range q.Projs {
		if q.OrderBy == p.Label() {
			return i, true
		}
		if p.Attr != nil && p.Count == "" && p.Agg == "" && q.OrderBy == p.Attr.Attr {
			return i, true
		}
	}
	return 0, false
}

// resolveHaving checks HAVING references: each must be Type.attr where
// Type is a constituent of the molecule.
func resolveHaving(e *Expr, mt *schema.MoleculeType, sch *schema.Schema) error {
	if e == nil {
		return nil
	}
	if e.Ref != nil {
		if e.Ref.Type == "" {
			return fmt.Errorf("query: HAVING references must be qualified (Type.attr), got %q", e.Ref.Attr)
		}
		if !moleculeHasType(mt, e.Ref.Type) {
			return fmt.Errorf("query: molecule %s has no constituent type %s", mt.Name, e.Ref.Type)
		}
		t, ok := sch.AtomType(e.Ref.Type)
		if !ok {
			return fmt.Errorf("query: unknown atom type %s", e.Ref.Type)
		}
		if _, ok := t.Attr(e.Ref.Attr); !ok {
			return fmt.Errorf("query: %s has no attribute %q", e.Ref.Type, e.Ref.Attr)
		}
		return nil
	}
	if e.Lit != nil {
		return nil
	}
	if err := resolveHaving(e.Left, mt, sch); err != nil {
		return err
	}
	if e.Right != nil {
		return resolveHaving(e.Right, mt, sch)
	}
	return nil
}

func moleculeHasType(mt *schema.MoleculeType, name string) bool {
	if mt.Root == name {
		return true
	}
	for _, e := range mt.Edges {
		if e.From == name || e.To == name {
			return true
		}
	}
	return false
}

// resolveRef checks the reference against the base type and fills in the
// qualifier.
func resolveRef(r *AttrRef, base *schema.AtomType) error {
	if r.Type != "" && r.Type != base.Name {
		return fmt.Errorf("query: attribute %s does not belong to %s (only the FROM type's root attributes are addressable)", r, base.Name)
	}
	if _, ok := base.Attr(r.Attr); !ok {
		return fmt.Errorf("query: %s has no attribute %q", base.Name, r.Attr)
	}
	r.Type = base.Name
	return nil
}

func resolveExpr(e *Expr, base *schema.AtomType) error {
	if e == nil {
		return nil
	}
	if e.Ref != nil {
		return resolveRef(e.Ref, base)
	}
	if e.Lit != nil {
		return nil
	}
	if err := resolveExpr(e.Left, base); err != nil {
		return err
	}
	if e.Right != nil {
		return resolveExpr(e.Right, base)
	}
	return nil
}
