package query

import (
	"strings"
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/schema"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := buildTestSchema()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// buildTestSchema is the t-free form of testSchema (fuzz targets build the
// fixture outside a *testing.T).
func buildTestSchema() (*schema.Schema, error) {
	s := schema.New()
	if err := s.AddAtomType(schema.AtomType{
		Name: "Dept",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
		},
	}); err != nil {
		return nil, err
	}
	if err := s.AddAtomType(schema.AtomType{
		Name: "Emp",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "salary", Kind: value.KindInt, Temporal: true},
			{Name: "dept", Kind: value.KindID, Target: "Dept", Card: schema.One, Temporal: true},
		},
	}); err != nil {
		return nil, err
	}
	if err := s.AddMoleculeType(schema.MoleculeType{
		Name:  "DeptStaff",
		Root:  "Dept",
		Edges: []schema.MoleculeEdge{{From: "Dept", Attr: "dept", To: "Emp", Reverse: true}},
	}); err != nil {
		return nil, err
	}
	s.Freeze()
	return s, nil
}

// fixture builds a small personnel database and returns the engine plus
// the dept/emp ids.
func fixture(t *testing.T, timeIndex bool) (*Engine, []value.ID, []value.ID) {
	t.Helper()
	e, depts, emps, err := buildFixture(timeIndex)
	if err != nil {
		t.Fatal(err)
	}
	return e, depts, emps
}

// buildFixture is the t-free form of fixture.
func buildFixture(timeIndex bool) (*Engine, []value.ID, []value.ID, error) {
	dev := storage.NewMemDevice()
	pool := storage.NewBufferPool(dev, 256)
	if err := storage.InitMeta(pool); err != nil {
		return nil, nil, nil, err
	}
	heap := storage.NewHeap(pool, nil)
	sch, err := buildTestSchema()
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := atom.NewManager(heap, pool, sch, atom.Options{Strategy: atom.StrategySeparated, TimeIndex: timeIndex})
	if err != nil {
		return nil, nil, nil, err
	}
	var depts, emps []value.ID
	for _, n := range []string{"kernel", "tools"} {
		d, err := m.Insert("Dept", map[string]value.V{"name": value.String_(n)}, 0, 1)
		if err != nil {
			return nil, nil, nil, err
		}
		depts = append(depts, d)
	}
	// Employees: salaries 1000, 2000, ..., alternating departments.
	names := []string{"ada", "bob", "cay", "dan", "eve"}
	for i, n := range names {
		e, err := m.Insert("Emp", map[string]value.V{
			"name":   value.String_(n),
			"salary": value.Int(int64(1000 * (i + 1))),
			"dept":   value.Ref(depts[i%2]),
		}, 0, 2)
		if err != nil {
			return nil, nil, nil, err
		}
		emps = append(emps, e)
	}
	// ada gets a raise at t=50; eve leaves at t=80.
	if err := m.UpdateAttr(emps[0], "salary", value.Int(9000), temporal.Open(50), 3); err != nil {
		return nil, nil, nil, err
	}
	if err := m.Delete(emps[4], 80, 4); err != nil {
		return nil, nil, nil, err
	}
	return NewEngine(m), depts, emps, nil
}

func TestParseRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT ALL FROM DeptStaff`,
		`SELECT (Emp.name, Emp.salary) FROM Emp WHERE Emp.salary > 4000`,
		`SELECT (name) FROM Emp WHEN VALID(salary) OVERLAPS PERIOD [10, 20) AT 15`,
		`SELECT HISTORY(Emp.salary) FROM Emp DURING [0, 100) ASOF 3`,
		`SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT 100`,
		`SELECT (name) FROM Emp WHERE (salary > 100 AND salary < 200) OR NOT name = "x"`,
		`SELECT (name) FROM Emp WHEN LIFESPAN CONTAINS PERIOD [5, 6)`,
	}
	for _, src := range queries {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		// Round trip: the normalized text must parse to the same shape.
		if _, err := Parse(q.String()); err != nil {
			t.Errorf("re-Parse(%q -> %q): %v", src, q.String(), err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT ALL`,
		`SELECT ALL FROM`,
		`SELECT (a FROM T`,
		`SELECT (a) FROM T WHERE`,
		`SELECT (a) FROM T AT x`,
		`SELECT (a) FROM T WHEN VALID(a) SOMETIME PERIOD [0, 1)`,
		`SELECT (a) FROM T WHEN VALID(a) OVERLAPS PERIOD [5, 1)`,
		`SELECT (a) FROM T extra`,
		`SELECT (a) FROM T WHERE a = "unterminated`,
		`SELECT (a) FROM T AT 5 AT 6`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	sch := testSchema(t)
	bad := map[string]string{
		`SELECT (x) FROM Nowhere`:                                       "unknown type",
		`SELECT (bogus) FROM Emp`:                                       "no attribute",
		`SELECT (Dept.name) FROM Emp`:                                   "does not belong",
		`SELECT ALL FROM Emp`:                                           "SELECT ALL requires a molecule",
		`SELECT HISTORY(salary) FROM DeptStaff`:                         "require an atom type",
		`SELECT (name) FROM Emp DURING [0, 1)`:                          "DURING is only valid",
		`SELECT (Dept.name, COUNT(Proj)) FROM DeptStaff`:                "no constituent type",
		`SELECT (name, COUNT(Emp)) FROM Emp`:                            "requires a molecule",
		`SELECT (name) FROM Emp WHEN VALID(zzz) OVERLAPS PERIOD [0, 1)`: "no attribute",
	}
	for src, frag := range bad {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		_, err = Analyze(q, sch)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("Analyze(%q) err = %v, want containing %q", src, err, frag)
		}
	}
}

func TestSelectProjection(t *testing.T) {
	e, _, _ := fixture(t, false)
	res, err := e.Run(`SELECT (Emp.name, Emp.salary) FROM Emp WHERE Emp.salary >= 3000 AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // cay 3000, dan 4000, eve 5000
		t.Fatalf("rows = %d: %v", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		if row[1].AsInt() < 3000 {
			t.Errorf("row %v violates predicate", row)
		}
	}
}

func TestTimeSliceSemantics(t *testing.T) {
	e, _, _ := fixture(t, false)
	// At t=10 ada earns 1000; at t=60 she earns 9000.
	res, err := e.Run(`SELECT (salary) FROM Emp WHERE name = "ada" AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 1000 {
		t.Fatalf("ada at 10 = %v", res.Rows)
	}
	res, _ = e.Run(`SELECT (salary) FROM Emp WHERE name = "ada" AT 60`, 10)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 9000 {
		t.Fatalf("ada at 60 = %v", res.Rows)
	}
	// eve was deleted at 80: present at 70, absent at 90.
	res, _ = e.Run(`SELECT (name) FROM Emp WHERE name = "eve" AT 70`, 10)
	if len(res.Rows) != 1 {
		t.Fatalf("eve at 70 = %v", res.Rows)
	}
	res, _ = e.Run(`SELECT (name) FROM Emp WHERE name = "eve" AT 90`, 10)
	if len(res.Rows) != 0 {
		t.Fatalf("eve at 90 = %v", res.Rows)
	}
}

func TestTransactionTimeAsOf(t *testing.T) {
	e, _, _ := fixture(t, false)
	// As recorded at tt=2 (before ada's raise at tt=3), her salary at
	// vt=60 was still 1000.
	res, err := e.Run(`SELECT (salary) FROM Emp WHERE name = "ada" AT 60 ASOF 2`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 1000 {
		t.Fatalf("ada at 60 asof 2 = %v", res.Rows)
	}
}

func TestWhenSelection(t *testing.T) {
	e, _, _ := fixture(t, false)
	// Who had a salary version overlapping [0, 20)? Everyone (initial
	// versions start at 0).
	res, err := e.Run(`SELECT (name) FROM Emp WHEN VALID(salary) OVERLAPS PERIOD [0, 20)`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("overlap rows = %d", len(res.Rows))
	}
	// Whose salary version lies DURING [40, 200)? Only ada's raise
	// version [50, forever) is open-ended, so nobody qualifies...
	res, _ = e.Run(`SELECT (name) FROM Emp WHEN VALID(salary) DURING PERIOD [40, 200)`, 10)
	if len(res.Rows) != 0 {
		t.Fatalf("during rows = %v", res.Rows)
	}
	// ...but ada's closed version [0, 50) lies during [0, 60).
	res, _ = e.Run(`SELECT (name) FROM Emp WHEN VALID(salary) DURING PERIOD [0, 60)`, 10)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "ada" {
		t.Fatalf("during rows = %v", res.Rows)
	}
	// Lifespan-based WHEN: eve's lifespan [0, 80) precedes [100, 200).
	res, _ = e.Run(`SELECT (name) FROM Emp WHEN LIFESPAN PRECEDES PERIOD [100, 200)`, 10)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "eve" {
		t.Fatalf("lifespan rows = %v", res.Rows)
	}
}

func TestWhenUsesTimeIndex(t *testing.T) {
	e, _, _ := fixture(t, true)
	res, err := e.Run(`SELECT (name) FROM Emp WHEN VALID(salary) OVERLAPS PERIOD [0, 20)`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "time-index scan") {
		t.Errorf("plan = %q, want time-index scan", res.Plan)
	}
	if len(res.Rows) != 5 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	// Without the index the plan is a full scan.
	e2, _, _ := fixture(t, false)
	res2, _ := e2.Run(`SELECT (name) FROM Emp WHEN VALID(salary) OVERLAPS PERIOD [0, 20)`, 10)
	if !strings.Contains(res2.Plan, "full type scan") {
		t.Errorf("plan without index = %q", res2.Plan)
	}
}

func TestHistoryQuery(t *testing.T) {
	e, _, _ := fixture(t, false)
	res, err := e.Run(`SELECT HISTORY(salary) FROM Emp WHERE name = "ada" DURING [0, 100) AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("history rows = %v", res.Rows)
	}
	// Rows: (id, 1000, 0, 50), (id, 9000, 50, 100-clipped).
	if res.Rows[0][1].AsInt() != 1000 || res.Rows[0][3].AsInstant() != 50 {
		t.Errorf("row 0 = %v", res.Rows[0])
	}
	if res.Rows[1][1].AsInt() != 9000 || res.Rows[1][2].AsInstant() != 50 {
		t.Errorf("row 1 = %v", res.Rows[1])
	}
	if res.Rows[1][3].AsInstant() != 100 {
		t.Errorf("open end not clipped to window: %v", res.Rows[1])
	}
}

func TestMoleculeQueries(t *testing.T) {
	e, depts, _ := fixture(t, false)
	res, err := e.Run(`SELECT ALL FROM DeptStaff AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Molecules) != 2 {
		t.Fatalf("molecules = %d", len(res.Molecules))
	}
	// kernel dept (depts[0]) employs ada, cay, eve at t=10.
	var kernel *int
	for i, mol := range res.Molecules {
		if mol.Root == depts[0] {
			kernel = &i
			if mol.Size() != 4 { // dept + 3 emps
				t.Errorf("kernel molecule size = %d", mol.Size())
			}
		}
	}
	if kernel == nil {
		t.Fatal("kernel molecule missing")
	}
	// Projection with COUNT.
	res, err = e.Run(`SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, row := range res.Rows {
		counts[row[0].AsString()] = row[1].AsInt()
	}
	if counts["kernel"] != 3 || counts["tools"] != 2 {
		t.Errorf("counts = %v", counts)
	}
	// After eve leaves (t=90), kernel employs 2.
	res, _ = e.Run(`SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT 90`, 10)
	counts = map[string]int64{}
	for _, row := range res.Rows {
		counts[row[0].AsString()] = row[1].AsInt()
	}
	if counts["kernel"] != 2 {
		t.Errorf("kernel count at 90 = %d", counts["kernel"])
	}
}

func TestWhereNullSemantics(t *testing.T) {
	e, _, _ := fixture(t, false)
	// dept is never null here; salary = NULL matches nothing.
	res, err := e.Run(`SELECT (name) FROM Emp WHERE salary = NULL AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("salary = NULL rows = %v", res.Rows)
	}
	res, _ = e.Run(`SELECT (name) FROM Emp WHERE salary != NULL AT 10`, 10)
	if len(res.Rows) != 5 {
		t.Errorf("salary != NULL rows = %d", len(res.Rows))
	}
	// Ordered comparison with NULL is never true.
	res, _ = e.Run(`SELECT (name) FROM Emp WHERE salary > NULL AT 10`, 10)
	if len(res.Rows) != 0 {
		t.Errorf("salary > NULL rows = %v", res.Rows)
	}
}

func TestResultTable(t *testing.T) {
	e, _, _ := fixture(t, false)
	res, err := e.Run(`SELECT (name, salary) FROM Emp WHERE name = "bob" AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "name") || !strings.Contains(tbl, `"bob"`) || !strings.Contains(tbl, "2000") {
		t.Errorf("table rendering:\n%s", tbl)
	}
	// Molecule result rendering.
	res, _ = e.Run(`SELECT ALL FROM DeptStaff AT 10`, 10)
	if !strings.Contains(res.Table(), "molecule") {
		t.Errorf("molecule table rendering: %q", res.Table())
	}
}

func TestTemporalPredHolds(t *testing.T) {
	period := temporal.NewInterval(10, 20)
	cases := []struct {
		pred TemporalPred
		iv   temporal.Interval
		want bool
	}{
		{PredOverlaps, temporal.NewInterval(15, 25), true},
		{PredOverlaps, temporal.NewInterval(20, 30), false},
		{PredContains, temporal.NewInterval(5, 25), true},
		{PredContains, temporal.NewInterval(12, 18), false},
		{PredDuring, temporal.NewInterval(12, 18), true},
		{PredDuring, temporal.NewInterval(5, 25), false},
		{PredPrecedes, temporal.NewInterval(0, 10), true},
		{PredPrecedes, temporal.NewInterval(0, 11), false},
		{PredMeets, temporal.NewInterval(0, 10), true},
		{PredMeets, temporal.NewInterval(0, 9), false},
		{PredEquals, temporal.NewInterval(10, 20), true},
		{PredEquals, temporal.NewInterval(10, 21), false},
	}
	for _, c := range cases {
		if got := c.pred.Holds(c.iv, period); got != c.want {
			t.Errorf("%v.Holds(%v, %v) = %v, want %v", c.pred, c.iv, period, got, c.want)
		}
	}
}
