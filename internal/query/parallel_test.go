package query

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"tcodm/internal/atom"
	"tcodm/internal/obs"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// differentialCorpus is every execution query from the package's unit
// tests (query, aggregate, orderlimit, unnest, having) plus the analyze
// errors — the corpus the serial-vs-parallel differential harness replays
// at several worker counts. FuzzParallelEquivalence seeds from it too.
var differentialCorpus = []string{
	// query_test.go
	`SELECT (Emp.name, Emp.salary) FROM Emp WHERE Emp.salary >= 3000 AT 10`,
	`SELECT (salary) FROM Emp WHERE name = "ada" AT 10`,
	`SELECT (salary) FROM Emp WHERE name = "ada" AT 60`,
	`SELECT (name) FROM Emp WHERE name = "eve" AT 70`,
	`SELECT (name) FROM Emp WHERE name = "eve" AT 90`,
	`SELECT (salary) FROM Emp WHERE name = "ada" AT 60 ASOF 2`,
	`SELECT (name) FROM Emp WHEN VALID(salary) OVERLAPS PERIOD [0, 20)`,
	`SELECT (name) FROM Emp WHEN VALID(salary) DURING PERIOD [40, 200)`,
	`SELECT (name) FROM Emp WHEN VALID(salary) DURING PERIOD [0, 60)`,
	`SELECT (name) FROM Emp WHEN LIFESPAN PRECEDES PERIOD [100, 200)`,
	`SELECT HISTORY(salary) FROM Emp WHERE name = "ada" DURING [0, 100) AT 10`,
	`SELECT HISTORY(Emp.salary) FROM Emp DURING [0, 100) ASOF 3`,
	`SELECT ALL FROM DeptStaff AT 10`,
	`SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT 10`,
	`SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT 90`,
	`SELECT (name) FROM Emp WHERE salary = NULL AT 10`,
	`SELECT (name) FROM Emp WHERE salary != NULL AT 10`,
	`SELECT (name) FROM Emp WHERE salary > NULL AT 10`,
	// aggregate_test.go
	`SELECT (name, TAVG(salary)) FROM Emp WHERE name = "ada" DURING [0, 100) AT 10`,
	`SELECT (TMIN(salary), TMAX(salary)) FROM Emp WHERE name = "ada" DURING [0, 100) AT 10`,
	`SELECT (CHANGES(salary)) FROM Emp WHERE name = "ada" DURING [0, 100) AT 10`,
	`SELECT (CHANGES(salary), TMAX(salary)) FROM Emp WHERE name = "ada" DURING [0, 40) AT 10`,
	`SELECT (TAVG(salary)) FROM Emp WHERE name = "ada" AT 10`,
	`SELECT (TAVG(salary)) FROM Emp WHERE name = "bob" DURING [-100, -50) AT 10`,
	// orderlimit_test.go
	`SELECT (name, salary) FROM Emp ORDER BY salary AT 10`,
	`SELECT (name, salary) FROM Emp ORDER BY salary DESC LIMIT 2 AT 10`,
	`SELECT (Emp.name) FROM Emp ORDER BY Emp.name AT 10`,
	`SELECT (name) FROM Emp LIMIT 3 AT 10`,
	`SELECT ALL FROM DeptStaff LIMIT 1 AT 10`,
	`SELECT HISTORY(salary) FROM Emp WHERE name = "ada" ORDER BY valid_from DESC DURING [0, 100) AT 10`,
	`SELECT (name) FROM Emp ORDER BY salary AT 10`,
	`SELECT ALL FROM DeptStaff ORDER BY name AT 10`,
	// unnest_test.go
	`SELECT (Dept.name, Emp.name, Emp.salary) FROM DeptStaff ORDER BY Emp.salary AT 10`,
	`SELECT (Dept.name, COUNT(Emp), Emp.name) FROM DeptStaff WHERE name = "kernel" AT 10`,
	`SELECT (Dept.name, Emp.name) FROM DeptStaff AT 90`,
	// having_test.go
	`SELECT (Dept.name) FROM DeptStaff HAVING Emp.salary > 4000 AT 10`,
	`SELECT (Dept.name) FROM DeptStaff HAVING Emp.salary > 4000 AT 90`,
	`SELECT (Dept.name) FROM DeptStaff HAVING Emp.salary > 4000 AND Emp.salary < 2000 AT 10`,
	`SELECT (Dept.name) FROM DeptStaff HAVING NOT Emp.salary > 4000 AT 10`,
	`SELECT ALL FROM DeptStaff HAVING Emp.salary > 4000 AT 10`,
	`SELECT (Dept.name) FROM DeptStaff WHERE name = "tools" HAVING Emp.salary > 3000 AT 10`,
}

// signature flattens everything observable about one execution — error,
// columns, row values in order, molecule identity in order, the plan
// string, and the exact resource totals (pages, WAL bytes, chain steps,
// atoms) — so two runs compare with a single string equality. Including
// the totals makes the corpus assert the accounting invariant: parallel
// execution must charge exactly what serial execution charges.
func signature(res *Result, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	var sb strings.Builder
	sb.WriteString("plan: " + res.Plan + "\n")
	sb.WriteString("resources: " + res.Res.String() + "\n")
	sb.WriteString("columns: " + strings.Join(res.Columns, "|") + "\n")
	for _, row := range res.Rows {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	for _, m := range res.Molecules {
		fmt.Fprintf(&sb, "molecule %s root=%v atoms=%d\n", m.Type.Name, m.Root, m.Size())
	}
	return sb.String()
}

// buildScaledFixture grows the standard fixture shape to n employees over
// eight departments (names cycle ada/bob/cay/dan/eve so the corpus's
// literal predicates select many rows): every third employee gets a raise
// at vt=50, every seventh is deleted at vt=80. With the default 64-chunk
// partitioning, n >= several hundred gives every worker real work.
func buildScaledFixture(n int, timeIndex bool) (*Engine, error) {
	dev := storage.NewMemDevice()
	pool := storage.NewBufferPool(dev, 1024)
	if err := storage.InitMeta(pool); err != nil {
		return nil, err
	}
	heap := storage.NewHeap(pool, nil)
	sch, err := buildTestSchema()
	if err != nil {
		return nil, err
	}
	m, err := atom.NewManager(heap, pool, sch, atom.Options{Strategy: atom.StrategySeparated, TimeIndex: timeIndex})
	if err != nil {
		return nil, err
	}
	var depts []value.ID
	for i := 0; i < 8; i++ {
		d, err := m.Insert("Dept", map[string]value.V{"name": value.String_(fmt.Sprintf("dept%d", i))}, 0, 1)
		if err != nil {
			return nil, err
		}
		depts = append(depts, d)
	}
	names := []string{"ada", "bob", "cay", "dan", "eve"}
	for i := 0; i < n; i++ {
		id, err := m.Insert("Emp", map[string]value.V{
			"name":   value.String_(names[i%len(names)]),
			"salary": value.Int(int64(1000 + 100*(i%50))),
			"dept":   value.Ref(depts[i%len(depts)]),
		}, 0, 2)
		if err != nil {
			return nil, err
		}
		if i%3 == 0 {
			if err := m.UpdateAttr(id, "salary", value.Int(int64(9000+i)), temporal.Open(50), 3); err != nil {
				return nil, err
			}
		}
		if i%7 == 0 {
			if err := m.Delete(id, 80, 4); err != nil {
				return nil, err
			}
		}
	}
	return NewEngine(m), nil
}

// TestParallelDifferentialCorpus replays the corpus at workers 1, 2, and 8
// against the serial baseline and requires byte-identical signatures:
// result values, row order, molecule order, plan string, and error text.
// The small fixture runs with a chunk size of 2 so even five candidates
// split across several partitions; the scaled fixture uses the production
// chunk size.
func TestParallelDifferentialCorpus(t *testing.T) {
	small, _, _ := fixture(t, false)
	smallIdx, _, _ := fixture(t, true)
	big, err := buildScaledFixture(300, true)
	if err != nil {
		t.Fatal(err)
	}
	fixtures := []struct {
		name  string
		e     *Engine
		chunk int
	}{
		{"small", small, 2},
		{"small-timeindex", smallIdx, 2},
		{"scaled", big, 0},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			sawResources := false
			for _, src := range differentialCorpus {
				fx.e.Workers = 1
				fx.e.chunk = 0
				serialRes, serialErr := fx.e.Run(src, 10)
				want := signature(serialRes, serialErr)
				if serialErr == nil && !serialRes.Res.IsZero() {
					sawResources = true
				}
				for _, workers := range []int{1, 2, 8} {
					fx.e.Workers = workers
					fx.e.chunk = fx.chunk
					got := signature(fx.e.Run(src, 10))
					if got != want {
						t.Errorf("workers=%d diverges on %q:\n--- serial ---\n%s\n--- parallel ---\n%s", workers, src, want, got)
					}
				}
			}
			// Guard against the totals comparison passing vacuously: the
			// corpus must actually exercise the accounting paths.
			if !sawResources {
				t.Error("no query in the corpus reported nonzero resources; accounting is dead")
			}
		})
	}
}

// TestParallelMetrics checks the query.parallel_* family: a parallel run
// bumps runs/chunks/cands; a serial run does not.
func TestParallelMetrics(t *testing.T) {
	e, _, _ := fixture(t, false)
	reg := obs.New()
	e.SetMetrics(reg)
	e.Workers = 4
	e.chunk = 2
	if _, err := e.Run(`SELECT (name) FROM Emp AT 10`, 10); err != nil {
		t.Fatal(err)
	}
	c := reg.Counters()
	if c["query.parallel_runs"] != 1 {
		t.Errorf("parallel_runs = %d, want 1", c["query.parallel_runs"])
	}
	if c["query.parallel_chunks"] != 3 { // 5 candidates / chunk 2 -> 3 chunks
		t.Errorf("parallel_chunks = %d, want 3", c["query.parallel_chunks"])
	}
	if c["query.parallel_cands"] != 5 {
		t.Errorf("parallel_cands = %d, want 5", c["query.parallel_cands"])
	}
	e.Workers = 1
	if _, err := e.Run(`SELECT (name) FROM Emp AT 10`, 10); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counters()["query.parallel_runs"]; got != 1 {
		t.Errorf("serial run bumped parallel_runs to %d", got)
	}
}

// TestParallelCancellationReapsWorkers cancels a context mid-execution and
// asserts (a) the query surfaces the context error and (b) every worker
// goroutine is gone within the poll budget — runParallel joins its workers
// before returning, so the goroutine count must return to the baseline.
func TestParallelCancellationReapsWorkers(t *testing.T) {
	e, err := buildScaledFixture(300, false)
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = 4
	e.chunk = 1
	baseline := runtime.NumGoroutine()

	// A pre-cancelled context: the small candidate count (under the serial
	// 64-tick poll) sails through collection, so the cancellation must be
	// caught by the workers' per-chunk poll.
	small, _, _ := fixture(t, false)
	small.Workers = 4
	small.chunk = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := small.RunCtx(ctx, `SELECT (name) FROM Emp AT 10`, Defaults{VT: 10}); err != context.Canceled {
		t.Errorf("pre-cancelled small scan err = %v, want context.Canceled", err)
	}

	// Cancel mid-scan on the large fixture (molecule query: workers also
	// poll per candidate before materialization).
	ctx, cancel = context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.RunCtx(ctx, `SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT 10`, Defaults{VT: 10})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err != nil && err != context.Canceled {
			t.Errorf("cancelled scan err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled query did not return within 5s")
	}

	// All workers must be reaped: poll the goroutine count back to the
	// baseline (the runner goroutine above also exits).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines = %d, baseline %d: workers leaked", runtime.NumGoroutine(), baseline)
}

// TestParallelErrorPositionMatchesSerial forces a runtime execution error
// and checks the parallel path surfaces the same (first-in-stream-order)
// error the serial path does.
func TestParallelErrorPositionMatchesSerial(t *testing.T) {
	e, _, _ := fixture(t, false)
	src := `SELECT (name) FROM Emp WHERE bogus = 1 AT 10`
	e.Workers = 1
	_, serialErr := e.Run(src, 10)
	e.Workers = 4
	e.chunk = 1
	_, parallelErr := e.Run(src, 10)
	if fmt.Sprint(serialErr) != fmt.Sprint(parallelErr) {
		t.Errorf("error mismatch: serial=%v parallel=%v", serialErr, parallelErr)
	}
	if serialErr == nil {
		t.Skip("expected an error to compare")
	}
}

// TestParallelWorkerClamp: more workers than chunks must clamp (a fixture
// of five candidates in one 64-wide chunk runs on exactly one worker).
func TestParallelWorkerClamp(t *testing.T) {
	e, _, _ := fixture(t, false)
	e.Workers = 8
	ctx := &execCtx{}
	a, err := Analyze(mustParse(t, `SELECT (name) FROM Emp AT 10`), e.Mgr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.executeClass(a, 10, atom.Now, ctx); err != nil {
		t.Fatal(err)
	}
	if len(ctx.workers) != 1 || ctx.chunks != 1 {
		t.Errorf("workers=%d chunks=%d, want 1/1", len(ctx.workers), ctx.chunks)
	}
	if ctx.workers[0].cands != 5 {
		t.Errorf("worker cands = %d, want 5", ctx.workers[0].cands)
	}
}

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
