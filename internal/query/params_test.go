package query

import (
	"strings"
	"testing"

	"tcodm/internal/value"
)

func TestBindSubstitutes(t *testing.T) {
	cases := []struct {
		src    string
		params []value.V
		want   string
	}{
		{
			"SELECT e.name FROM emp e WHERE e.sal > $1",
			[]value.V{value.Int(5000)},
			"SELECT e.name FROM emp e WHERE e.sal > 5000",
		},
		{
			"WHERE e.name = $1 AND e.rate = $2",
			[]value.V{value.String_("alice"), value.Float(2.5)},
			`WHERE e.name = "alice" AND e.rate = 2.5`,
		},
		{
			"WHERE e.f = $1", // integral float keeps a decimal point
			[]value.V{value.Float(3)},
			"WHERE e.f = 3.0",
		},
		{
			"WHERE e.ok = $1 AND e.gone = $2",
			[]value.V{value.Bool(true), value.Null},
			"WHERE e.ok = TRUE AND e.gone = NULL",
		},
		{
			"WHERE e.a = $2 AND e.b = $1 AND e.c = $1", // reorder + reuse
			[]value.V{value.Int(1), value.Int(2)},
			"WHERE e.a = 2 AND e.b = 1 AND e.c = 1",
		},
		{
			`WHERE e.name = "$1" AND e.id = $1`, // $ inside string untouched
			[]value.V{value.Int(9)},
			`WHERE e.name = "$1" AND e.id = 9`,
		},
		{
			`WHERE e.name = "a\"$1" AND e.id = $1`, // escaped quote does not end the literal
			[]value.V{value.Int(9)},
			`WHERE e.name = "a\"$1" AND e.id = 9`,
		},
	}
	for _, c := range cases {
		got, err := Bind(c.src, c.params)
		if err != nil {
			t.Errorf("Bind(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("Bind(%q)\n got  %q\n want %q", c.src, got, c.want)
		}
	}
}

func TestBindStringEscaping(t *testing.T) {
	src := "WHERE e.name = $1"
	bound, err := Bind(src, []value.V{value.String_("line1\nline2\t\"q\" \\end")})
	if err != nil {
		t.Fatal(err)
	}
	want := `WHERE e.name = "line1\nline2\t\"q\" \\end"`
	if bound != want {
		t.Fatalf("got %q want %q", bound, want)
	}
}

func TestBindErrors(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		params []value.V
		msg    string
	}{
		{"out of range", "WHERE e.id = $2", []value.V{value.Int(1)}, "out of range"},
		{"stray dollar", "WHERE e.id = $x", []value.V{value.Int(1)}, "stray"},
		{"unused param", "WHERE e.id = $1", []value.V{value.Int(1), value.Int(2)}, "never referenced"},
		{"nan float", "WHERE e.f = $1", []value.V{value.Float(nan())}, "no TMQL literal"},
	}
	for _, c := range cases {
		_, err := Bind(c.src, c.params)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.msg) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.msg)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// TestBindExecutes proves bound text parses and runs identically to the
// hand-written literal form.
func TestBindExecutes(t *testing.T) {
	e, _, _ := fixture(t, false)
	bound, err := Bind(
		"SELECT (name, salary) FROM Emp WHERE salary >= $1 AND NOT name = $2 AT 10",
		[]value.V{value.Int(2000), value.String_("bob")},
	)
	if err != nil {
		t.Fatal(err)
	}
	boundRes, err := e.Run(bound, 10)
	if err != nil {
		t.Fatalf("bound query: %v", err)
	}
	litRes, err := e.Run(`SELECT (name, salary) FROM Emp WHERE salary >= 2000 AND NOT name = "bob" AT 10`, 10)
	if err != nil {
		t.Fatalf("literal query: %v", err)
	}
	if len(boundRes.Rows) != len(litRes.Rows) || len(boundRes.Rows) == 0 {
		t.Fatalf("bound %d rows, literal %d rows", len(boundRes.Rows), len(litRes.Rows))
	}
}
