package query

import (
	"sync"
	"sync/atomic"
	"time"

	"tcodm/internal/value"
)

// parallelChunk is the candidate partition size. It matches the serial
// path's 64-candidate cancellation-poll cadence: a worker polls the context
// once per claimed chunk, so cancellation reaction latency is the same
// bounded number of candidates in both modes.
const parallelChunk = 64

// workerStat is one worker's contribution to a parallel execution, shown
// by EXPLAIN ANALYZE and summed into exact operator counts at merge time.
type workerStat struct {
	chunks int           // partitions this worker claimed
	cands  int64         // candidates it processed
	rows   int64         // rows/molecules it produced
	dur    time.Duration // wall time from launch to completion (analyze only)
}

func (e *Engine) chunkSize() int {
	if e.chunk > 0 {
		return e.chunk
	}
	return parallelChunk
}

// collectCandidates drains the access path into a deduplicated id slice in
// stream order. Dedup is inherently order-dependent so it stays serial; the
// per-candidate pipeline behind it is not, and fans out.
func (e *Engine) collectCandidates(a *Analyzed, typeName string, ctx *execCtx) (string, []value.ID, error) {
	var ids []value.ID
	seen := map[value.ID]bool{}
	var innerErr error
	plan, err := e.candidates(a, typeName, func(id value.ID) (bool, error) {
		if err := ctx.checkCancel(); err != nil {
			innerErr = err
			return false, nil
		}
		if seen[id] {
			return true, nil
		}
		seen[id] = true
		ids = append(ids, id)
		return true, nil
	})
	ctx.scanDesc = plan
	if innerErr != nil {
		return plan, nil, innerErr
	}
	return plan, ids, err
}

// runParallel partitions the candidate stream into fixed-size chunks and
// fans them out across e.Workers goroutines. Chunks are claimed in
// ascending order from a shared counter (dynamic load balancing); each
// chunk fills its own output fragment, and fragments are concatenated in
// chunk order — so row order, and therefore the merged result, is
// byte-identical to runSerial.
//
// Error semantics also match serial execution: the surfaced error is the
// one raised by the earliest candidate in stream order. Because chunks are
// claimed in ascending order, every chunk before a failing one is already
// claimed and runs to completion, so the minimum failing position recorded
// below is exactly the serial first error. Workers stop claiming new
// (strictly later) chunks once any failure is recorded.
//
// Each worker accumulates counts into a private execCtx; the parent merges
// them after the barrier, keeping EXPLAIN ANALYZE row counts exact without
// shared counters.
func (e *Engine) runParallel(a *Analyzed, typeName string, ctx *execCtx, proc candProc, sink *frag) (string, error) {
	plan, ids, err := e.collectCandidates(a, typeName, ctx)
	if err != nil {
		return plan, err
	}
	chunk := e.chunkSize()
	nchunks := (len(ids) + chunk - 1) / chunk
	workers := e.Workers
	if workers > nchunks {
		workers = nchunks
	}
	frags := make([]frag, nchunks)
	wctxs := make([]*execCtx, workers)
	stats := make([]workerStat, workers)

	var next atomic.Int64
	var failed atomic.Bool
	var mu sync.Mutex
	firstPos := int64(-1)
	var firstErr error
	record := func(pos int64, err error) {
		mu.Lock()
		if firstPos < 0 || pos < firstPos {
			firstPos, firstErr = pos, err
		}
		mu.Unlock()
		failed.Store(true)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wctx := &execCtx{analyze: ctx.analyze, timed: ctx.timed, ctx: ctx.ctx}
		wctxs[w] = wctx
		wg.Add(1)
		go func(w int, wctx *execCtx) {
			defer wg.Done()
			var start time.Time
			if ctx.analyze || ctx.timed {
				start = time.Now()
			}
			for {
				k := next.Add(1) - 1
				if k >= int64(nchunks) || failed.Load() {
					break
				}
				lo := int(k) * chunk
				// Chunk claims are the cancellation poll points (the serial
				// path polls every 64 candidates; a worker polls per chunk).
				if err := wctx.cancelErr(); err != nil {
					record(int64(lo), err)
					break
				}
				hi := lo + chunk
				if hi > len(ids) {
					hi = len(ids)
				}
				stats[w].chunks++
				abort := false
				for i, id := range ids[lo:hi] {
					if err := proc(id, wctx, &frags[k]); err != nil {
						record(int64(lo+i), err)
						abort = true
						break
					}
				}
				if abort {
					break
				}
			}
			if ctx.analyze || ctx.timed {
				stats[w].dur = time.Since(start)
			}
			stats[w].cands = wctx.scanned
			stats[w].rows = wctx.emitOut
		}(w, wctx)
	}
	wg.Wait()

	for _, wctx := range wctxs {
		ctx.merge(wctx)
	}
	ctx.workers = stats
	ctx.chunks = nchunks
	e.met.parRuns.Inc()
	e.met.parChunks.Add(uint64(nchunks))
	e.met.parCands.Add(uint64(len(ids)))
	if firstErr != nil {
		return plan, firstErr
	}
	for i := range frags {
		sink.rows = append(sink.rows, frags[i].rows...)
		sink.mols = append(sink.mols, frags[i].mols...)
	}
	return plan, nil
}
