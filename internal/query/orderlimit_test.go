package query

import (
	"testing"
)

func TestOrderByAndLimit(t *testing.T) {
	e, _, _ := fixture(t, false)
	// Ascending by salary.
	res, err := e.Run(`SELECT (name, salary) FROM Emp ORDER BY salary AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][1].AsInt() > res.Rows[i][1].AsInt() {
			t.Fatalf("not ascending: %v", res.Rows)
		}
	}
	// Descending with LIMIT: the top 2 earners.
	res, err = e.Run(`SELECT (name, salary) FROM Emp ORDER BY salary DESC LIMIT 2 AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("limited rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].AsInt() != 5000 || res.Rows[1][1].AsInt() != 4000 {
		t.Errorf("top earners = %v", res.Rows)
	}
	// ORDER BY a qualified label.
	res, err = e.Run(`SELECT (Emp.name) FROM Emp ORDER BY Emp.name AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsString() != "ada" {
		t.Errorf("first by name = %v", res.Rows[0])
	}
	// LIMIT without ORDER BY.
	res, err = e.Run(`SELECT (name) FROM Emp LIMIT 3 AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("limit-only rows = %d", len(res.Rows))
	}
	// LIMIT on SELECT ALL caps molecules.
	res, err = e.Run(`SELECT ALL FROM DeptStaff LIMIT 1 AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Molecules) != 1 {
		t.Errorf("limited molecules = %d", len(res.Molecules))
	}
	// History queries order by their columns.
	res, err = e.Run(`SELECT HISTORY(salary) FROM Emp WHERE name = "ada" ORDER BY valid_from DESC DURING [0, 100) AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][2].AsInstant() != 50 {
		t.Errorf("history desc = %v", res.Rows)
	}
}

func TestOrderByErrors(t *testing.T) {
	e, _, _ := fixture(t, false)
	if _, err := e.Run(`SELECT (name) FROM Emp ORDER BY salary AT 10`, 10); err == nil {
		t.Error("ORDER BY on a non-projected column accepted")
	}
	if _, err := e.Run(`SELECT ALL FROM DeptStaff ORDER BY name AT 10`, 10); err == nil {
		t.Error("ORDER BY on SELECT ALL accepted")
	}
	if _, err := Parse(`SELECT (name) FROM Emp LIMIT 0`); err == nil {
		t.Error("LIMIT 0 accepted")
	}
	if _, err := Parse(`SELECT (name) FROM Emp LIMIT 2 LIMIT 3`); err == nil {
		t.Error("duplicate LIMIT accepted")
	}
	if _, err := Parse(`SELECT (name) FROM Emp ORDER salary`); err == nil {
		t.Error("ORDER without BY accepted")
	}
}

func TestOrderLimitRoundTrip(t *testing.T) {
	q, err := Parse(`SELECT (name, salary) FROM Emp ORDER BY salary DESC LIMIT 5 AT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(q.String()); err != nil {
		t.Fatalf("re-parse of %q: %v", q.String(), err)
	}
	if q.Limit != 5 || !q.OrderDesc || q.OrderBy != "salary" {
		t.Errorf("parsed: %+v", q)
	}
}
