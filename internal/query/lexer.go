// Package query implements TMQL, the temporal molecule query language: a
// small declarative language over the temporal complex-object model with
// time-slice (AT), transaction-time (ASOF), temporal-selection (WHEN ...
// PERIOD), and history (HISTORY ... DURING) constructs, compiled onto the
// atom and molecule layers.
//
// Examples:
//
//	SELECT ALL FROM Design WHERE name = "engine" AT 150
//	SELECT (Emp.name, Emp.salary) FROM Emp WHERE Emp.salary > 4000
//	SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT 100
//	SELECT (Emp.name) FROM Emp WHEN VALID(Emp.salary) OVERLAPS PERIOD [10, 20)
//	SELECT HISTORY(Emp.salary) FROM Emp DURING [0, 100)
//	SELECT (Emp.name, TAVG(Emp.salary)) FROM Emp DURING [0, 100)
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokPunct // ( ) [ , . )
	tokOp    // = != < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "ALL": true, "FROM": true, "WHERE": true, "WHEN": true,
	"AT": true, "ASOF": true, "PERIOD": true, "DURING": true, "HISTORY": true,
	"VALID": true, "AND": true, "OR": true, "NOT": true, "COUNT": true,
	"OVERLAPS": true, "CONTAINS": true, "PRECEDES": true, "MEETS": true,
	"EQUALS": true, "TRUE": true, "FALSE": true, "NULL": true, "FOREVER": true,
	"LIFESPAN": true, "TAVG": true, "TMIN": true, "TMAX": true, "CHANGES": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"HAVING": true, "EXPLAIN": true, "ANALYZE": true,
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes the query text.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexWord(start)
		case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			if err := l.lexNumber(start); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		case strings.ContainsRune("()[],.", rune(c)):
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokPunct, text: string(c), pos: start})
		case c == '=':
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokOp, text: "=", pos: start})
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.pos += 2
				l.tokens = append(l.tokens, token{kind: tokOp, text: "!=", pos: start})
				continue
			}
			return nil, fmt.Errorf("query: unexpected '!' at position %d", start)
		case c == '<' || c == '>':
			op := string(c)
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				op += "="
				l.pos++
			}
			l.tokens = append(l.tokens, token{kind: tokOp, text: op, pos: start})
		default:
			return nil, fmt.Errorf("query: unexpected character %q at position %d", c, start)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '@'
}

func (l *lexer) lexWord(start int) {
	for l.pos < len(l.src) && (isIdentStart(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos]))) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if keywords[strings.ToUpper(text)] {
		l.tokens = append(l.tokens, token{kind: tokKeyword, text: strings.ToUpper(text), pos: start})
		return
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: text, pos: start})
}

func (l *lexer) lexNumber(start int) error {
	if l.src[l.pos] == '-' {
		l.pos++
	}
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
			continue
		}
		// A '.' is part of the number only when followed by a digit
		// (distinguishes 3.5 from the path separator in Emp.salary).
		if c == '.' && !isFloat && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) {
			isFloat = true
			l.pos++
			continue
		}
		break
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	l.tokens = append(l.tokens, token{kind: kind, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return fmt.Errorf("query: unterminated escape at position %d", l.pos)
			}
			l.pos++
			switch e := l.src[l.pos]; e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '"', '\\':
				sb.WriteByte(e)
			default:
				return fmt.Errorf("query: unknown escape \\%c at position %d", e, l.pos)
			}
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return fmt.Errorf("query: unterminated string starting at position %d", start)
}
