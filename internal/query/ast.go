package query

import (
	"fmt"
	"strings"

	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// Query is the parsed form of a TMQL statement.
type Query struct {
	// Explain requests the query plan instead of the result; with Analyze
	// the query also runs and the plan carries actual row counts and times.
	Explain bool
	Analyze bool

	// Select is exactly one of: SelectAll, History != nil, or Projs.
	SelectAll bool
	History   *AttrRef // SELECT HISTORY(T.attr)
	Projs     []Projection

	From string // atom type or molecule type name

	Where *Expr // optional boolean predicate

	When *WhenClause // optional temporal selection

	// At is the valid-time slice instant (nil = the clock's now).
	At *temporal.Instant
	// AsOf is the transaction-time instant (nil = latest state).
	AsOf *temporal.Instant
	// During is the valid window for HISTORY queries (nil = all time).
	During *temporal.Interval
	// OrderBy names the output column to sort rows by ("" = storage order);
	// OrderDesc flips the direction.
	OrderBy   string
	OrderDesc bool
	// Limit caps the number of rows/molecules (0 = unlimited).
	Limit int
	// Having qualifies molecules by their constituents: the molecule is
	// kept iff some constituent atom satisfies the predicate (an
	// existential qualification over the complex object).
	Having *Expr
}

// Projection is one output column: an attribute reference, COUNT(Type)
// over a molecule, or a temporal aggregate over an attribute history
// (TAVG: duration-weighted average; TMIN/TMAX: extrema over time; CHANGES:
// number of value transitions) evaluated within the DURING window.
type Projection struct {
	Attr  *AttrRef
	Count string // COUNT(Count) when non-empty
	Agg   string // "TAVG", "TMIN", "TMAX", "CHANGES" when non-empty
}

// Label renders the column heading.
func (p Projection) Label() string {
	if p.Count != "" {
		return "count(" + p.Count + ")"
	}
	if p.Agg != "" {
		return strings.ToLower(p.Agg) + "(" + p.Attr.String() + ")"
	}
	return p.Attr.String()
}

// AttrRef names an attribute, optionally qualified by its atom type.
type AttrRef struct {
	Type string // empty = the FROM type (atom-type queries only)
	Attr string
}

func (a AttrRef) String() string {
	if a.Type == "" {
		return a.Attr
	}
	return a.Type + "." + a.Attr
}

// WhenClause is a temporal selection: the attribute's valid history must
// contain a version whose interval stands in Pred relation to Period.
type WhenClause struct {
	Attr     AttrRef // VALID(T.attr); Attr=="" with Lifespan=true selects on the atom's lifespan
	Lifespan bool
	Pred     TemporalPred
	Period   temporal.Interval
}

// TemporalPred enumerates the WHEN predicates.
type TemporalPred uint8

const (
	// PredOverlaps: version interval shares an instant with the period.
	PredOverlaps TemporalPred = iota
	// PredContains: version interval contains the whole period.
	PredContains
	// PredDuring: version interval lies within the period.
	PredDuring
	// PredPrecedes: version interval ends at or before the period starts.
	PredPrecedes
	// PredMeets: version interval ends exactly where the period starts.
	PredMeets
	// PredEquals: version interval equals the period.
	PredEquals
)

var predNames = [...]string{"OVERLAPS", "CONTAINS", "DURING", "PRECEDES", "MEETS", "EQUALS"}

// String returns the predicate keyword.
func (p TemporalPred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return "?"
}

// Holds evaluates the predicate of iv against the period.
func (p TemporalPred) Holds(iv, period temporal.Interval) bool {
	switch p {
	case PredOverlaps:
		return iv.Overlaps(period)
	case PredContains:
		return iv.ContainsInterval(period) && !period.IsEmpty()
	case PredDuring:
		return period.ContainsInterval(iv) && !iv.IsEmpty()
	case PredPrecedes:
		return iv.Before(period)
	case PredMeets:
		return !iv.IsEmpty() && iv.To == period.From
	case PredEquals:
		return iv.Equal(period) && !iv.IsEmpty()
	default:
		return false
	}
}

// Expr is a boolean/comparison expression tree.
type Expr struct {
	// Exactly one of the following shapes:
	Op    string // "AND", "OR", "NOT", "=", "!=", "<", "<=", ">", ">="
	Left  *Expr
	Right *Expr // nil for NOT

	// Leaf forms:
	Ref *AttrRef // attribute reference
	Lit *value.V // literal
}

// IsLeaf reports whether the node is an operand rather than an operator.
func (e *Expr) IsLeaf() bool { return e.Op == "" }

func (e *Expr) String() string {
	switch {
	case e == nil:
		return ""
	case e.Ref != nil:
		return e.Ref.String()
	case e.Lit != nil:
		return e.Lit.String()
	case e.Op == "NOT":
		return "NOT (" + e.Left.String() + ")"
	default:
		return "(" + e.Left.String() + " " + e.Op + " " + e.Right.String() + ")"
	}
}

// String renders the query back to (normalized) TMQL.
func (q *Query) String() string {
	var sb strings.Builder
	if q.Explain {
		sb.WriteString("EXPLAIN ")
		if q.Analyze {
			sb.WriteString("ANALYZE ")
		}
	}
	sb.WriteString("SELECT ")
	switch {
	case q.SelectAll:
		sb.WriteString("ALL")
	case q.History != nil:
		fmt.Fprintf(&sb, "HISTORY(%s)", q.History)
	default:
		parts := make([]string, len(q.Projs))
		for i, p := range q.Projs {
			parts[i] = p.Label()
		}
		sb.WriteString("(" + strings.Join(parts, ", ") + ")")
	}
	sb.WriteString(" FROM " + q.From)
	if q.When != nil {
		if q.When.Lifespan {
			fmt.Fprintf(&sb, " WHEN LIFESPAN %s PERIOD %s", q.When.Pred, q.When.Period)
		} else {
			fmt.Fprintf(&sb, " WHEN VALID(%s) %s PERIOD %s", q.When.Attr, q.When.Pred, q.When.Period)
		}
	}
	if q.Where != nil {
		sb.WriteString(" WHERE " + q.Where.String())
	}
	if q.Having != nil {
		sb.WriteString(" HAVING " + q.Having.String())
	}
	if q.During != nil {
		fmt.Fprintf(&sb, " DURING %s", *q.During)
	}
	if q.At != nil {
		fmt.Fprintf(&sb, " AT %v", *q.At)
	}
	if q.AsOf != nil {
		fmt.Fprintf(&sb, " ASOF %v", *q.AsOf)
	}
	if q.OrderBy != "" {
		fmt.Fprintf(&sb, " ORDER BY %s", q.OrderBy)
		if q.OrderDesc {
			sb.WriteString(" DESC")
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}
