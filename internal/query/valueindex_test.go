package query

import (
	"sort"
	"strings"
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// vfixture builds a database with the value index enabled.
func vfixture(t *testing.T) *Engine {
	t.Helper()
	dev := storage.NewMemDevice()
	pool := storage.NewBufferPool(dev, 256)
	if err := storage.InitMeta(pool); err != nil {
		t.Fatal(err)
	}
	heap := storage.NewHeap(pool, nil)
	m, err := atom.NewManager(heap, pool, testSchema(t),
		atom.Options{Strategy: atom.StrategySeparated, ValueIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := m.Insert("Dept", map[string]value.V{"name": value.String_("d")}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Salaries 100, 200, ..., 1000.
	for i := 1; i <= 10; i++ {
		if _, err := m.Insert("Emp", map[string]value.V{
			"name":   value.String_(string(rune('a' + i - 1))),
			"salary": value.Int(int64(i * 100)),
			"dept":   value.Ref(d),
		}, 0, 2); err != nil {
			t.Fatal(err)
		}
	}
	fixturePools[m] = pool
	return NewEngine(m)
}

func TestValueIndexPlans(t *testing.T) {
	e := vfixture(t)
	cases := []struct {
		q    string
		want []int64 // expected salaries in result
	}{
		{`SELECT (salary) FROM Emp WHERE salary = 300 AT 10`, []int64{300}},
		{`SELECT (salary) FROM Emp WHERE salary < 300 AT 10`, []int64{100, 200}},
		{`SELECT (salary) FROM Emp WHERE salary <= 300 AT 10`, []int64{100, 200, 300}},
		{`SELECT (salary) FROM Emp WHERE salary > 800 AT 10`, []int64{900, 1000}},
		{`SELECT (salary) FROM Emp WHERE salary >= 800 AT 10`, []int64{800, 900, 1000}},
		{`SELECT (salary) FROM Emp WHERE 800 <= salary AT 10`, []int64{800, 900, 1000}},
		{`SELECT (salary) FROM Emp WHERE salary > 400 AND salary < 700 AT 10`, []int64{500, 600}},
		{`SELECT (salary) FROM Emp WHERE name = "c" AT 10`, []int64{300}},
	}
	for _, c := range cases {
		res, err := e.Run(c.q, 10)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if !strings.Contains(res.Plan, "value-index scan") {
			t.Errorf("%s: plan = %q, want value-index scan", c.q, res.Plan)
		}
		var got []int64
		for _, row := range res.Rows {
			got = append(got, row[0].AsInt())
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(c.want) {
			t.Fatalf("%s: rows = %v, want %v", c.q, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: rows = %v, want %v", c.q, got, c.want)
			}
		}
	}
}

func TestValueIndexNotUsedWhenUnusable(t *testing.T) {
	e := vfixture(t)
	// OR at the top level disables the index.
	res, err := e.Run(`SELECT (salary) FROM Emp WHERE salary = 300 OR salary = 400 AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "full type scan") {
		t.Errorf("OR plan = %q", res.Plan)
	}
	if len(res.Rows) != 2 {
		t.Errorf("OR rows = %v", res.Rows)
	}
	// != is not sargable.
	res, _ = e.Run(`SELECT (salary) FROM Emp WHERE salary != 300 AT 10`, 10)
	if !strings.Contains(res.Plan, "full type scan") {
		t.Errorf("!= plan = %q", res.Plan)
	}
	// Cross-kind literal (float vs int attr) is not sargable but still
	// answers correctly via the scan path.
	res, err = e.Run(`SELECT (salary) FROM Emp WHERE salary > 250.5 AND salary < 450.5 AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "full type scan") {
		t.Errorf("cross-kind plan = %q", res.Plan)
	}
	if len(res.Rows) != 2 {
		t.Errorf("cross-kind rows = %v", res.Rows)
	}
}

func TestValueIndexStaleEntriesAreFiltered(t *testing.T) {
	e := vfixture(t)
	// Raise every salary by an update; old values linger in the index but
	// the executor re-checks the predicate on the state at vt.
	ids, err := e.Mgr.IDs("Emp")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, _ := e.Mgr.StateAt(id, 10, atom.Now)
		old := st.Vals["salary"].AsInt()
		if err := e.Mgr.UpdateAttr(id, "salary", value.Int(old+5000), temporal.Open(100), 3); err != nil {
			t.Fatal(err)
		}
	}
	// At vt=200 the old values no longer hold: equality on an old value
	// yields nothing despite the stale index entry.
	res, err := e.Run(`SELECT (salary) FROM Emp WHERE salary = 300 AT 200`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("stale entry leaked: %v", res.Rows)
	}
	// The new values are found through the index.
	res, err = e.Run(`SELECT (salary) FROM Emp WHERE salary = 5300 AT 200`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Plan, "value-index") {
		t.Errorf("new value rows = %v plan = %q", res.Rows, res.Plan)
	}
	// Historical slices still answer through old values.
	res, _ = e.Run(`SELECT (salary) FROM Emp WHERE salary = 300 AT 50`, 10)
	if len(res.Rows) != 1 {
		t.Errorf("historical rows = %v", res.Rows)
	}
}

func TestValueIndexSurvivesRebuild(t *testing.T) {
	e := vfixture(t)
	// Simulate index loss and rebuild; the value index must come back.
	mgr := e.Mgr
	pool := poolOf(t, mgr)
	if _, err := mgr.RebuildIndexes(pool); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(`SELECT (salary) FROM Emp WHERE salary = 300 AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Plan, "value-index") {
		t.Errorf("after rebuild: rows = %v plan = %q", res.Rows, res.Plan)
	}
}

// poolOf digs the pool back out for rebuild tests (the manager does not
// retain it). A fresh pool over a fresh device would lose the heap, so the
// fixture threads it via a package-level hook instead.
var fixturePools = map[*atom.Manager]*storage.BufferPool{}

func poolOf(t *testing.T, m *atom.Manager) *storage.BufferPool {
	t.Helper()
	p, ok := fixturePools[m]
	if !ok {
		t.Skip("fixture pool not registered")
	}
	return p
}
