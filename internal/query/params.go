package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"tcodm/internal/value"
)

// Bind substitutes $1..$n placeholders in src with the TMQL literal
// rendering of params (1-based). Placeholders inside string literals are
// left untouched. Every parameter must be referenced at least once and
// every reference must have a parameter; violations are errors, as are
// values with no literal syntax (surrogate IDs, NaN/Inf floats). Binding
// is purely textual — the result lexes exactly as if the literal had been
// typed — so the parse and analysis paths need no placeholder awareness.
func Bind(src string, params []value.V) (string, error) {
	var sb strings.Builder
	sb.Grow(len(src) + 16*len(params))
	used := make([]bool, len(params))
	inString := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inString {
			sb.WriteByte(c)
			switch c {
			case '\\':
				// Copy the escaped byte verbatim so an escaped quote does
				// not end the literal.
				if i+1 < len(src) {
					i++
					sb.WriteByte(src[i])
				}
			case '"':
				inString = false
			}
			continue
		}
		switch {
		case c == '"':
			inString = true
			sb.WriteByte(c)
		case c == '$':
			j := i + 1
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			if j == i+1 {
				return "", fmt.Errorf("query: stray '$' at position %d (placeholders are $1..$%d)", i, len(params))
			}
			n, err := strconv.Atoi(src[i+1 : j])
			if err != nil || n < 1 || n > len(params) {
				return "", fmt.Errorf("query: placeholder %s out of range (have %d parameters)", src[i:j], len(params))
			}
			lit, err := renderLiteral(params[n-1])
			if err != nil {
				return "", fmt.Errorf("query: parameter $%d: %w", n, err)
			}
			used[n-1] = true
			sb.WriteString(lit)
			i = j - 1
		default:
			sb.WriteByte(c)
		}
	}
	for i, u := range used {
		if !u {
			return "", fmt.Errorf("query: parameter $%d is never referenced", i+1)
		}
	}
	return sb.String(), nil
}

// renderLiteral writes v in TMQL literal syntax.
func renderLiteral(v value.V) (string, error) {
	switch v.Kind() {
	case value.KindNull:
		return "NULL", nil
	case value.KindBool:
		if v.AsBool() {
			return "TRUE", nil
		}
		return "FALSE", nil
	case value.KindInt:
		return strconv.FormatInt(v.AsInt(), 10), nil
	case value.KindInstant:
		return strconv.FormatInt(int64(v.AsInstant()), 10), nil
	case value.KindFloat:
		f := v.AsFloat()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return "", fmt.Errorf("float %v has no TMQL literal syntax", f)
		}
		// 'f' (never 'e'): the TMQL lexer has no exponent syntax.
		s := strconv.FormatFloat(f, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0" // keep the token a float so value kinds survive the round trip
		}
		return s, nil
	case value.KindString:
		return quoteTMQL(v.AsString()), nil
	default:
		return "", fmt.Errorf("%s values have no TMQL literal syntax", v.Kind())
	}
}

// quoteTMQL quotes s using the lexer's escape set.
func quoteTMQL(s string) string {
	var sb strings.Builder
	sb.Grow(len(s) + 2)
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
