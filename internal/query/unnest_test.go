package query

import (
	"sort"
	"strings"
	"testing"
)

func TestMoleculeUnnesting(t *testing.T) {
	e, _, _ := fixture(t, false)
	// One row per (dept, employee) pair at t=10: 5 employees total.
	res, err := e.Run(`SELECT (Dept.name, Emp.name, Emp.salary) FROM DeptStaff ORDER BY Emp.salary AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("unnested rows = %d: %v", len(res.Rows), res.Rows)
	}
	// Rows are (dept, emp) pairs with the right membership: ada/cay/eve in
	// kernel, bob/dan in tools.
	membership := map[string]string{}
	for _, row := range res.Rows {
		membership[row[1].AsString()] = row[0].AsString()
	}
	want := map[string]string{"ada": "kernel", "cay": "kernel", "eve": "kernel", "bob": "tools", "dan": "tools"}
	for emp, dept := range want {
		if membership[emp] != dept {
			t.Errorf("%s in %q, want %q", emp, membership[emp], dept)
		}
	}
	// Ordering by the unnested column held.
	if res.Rows[0][2].AsInt() != 1000 || res.Rows[4][2].AsInt() != 5000 {
		t.Errorf("ordering: %v", res.Rows)
	}
	// Mixing root attrs, counts, and unnested attrs in one query.
	res, err = e.Run(`SELECT (Dept.name, COUNT(Emp), Emp.name) FROM DeptStaff WHERE name = "kernel" AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("mixed rows = %v", res.Rows)
	}
	for _, row := range res.Rows {
		if row[1].AsInt() != 3 {
			t.Errorf("count column = %v", row)
		}
	}
	// A department with no staff produces no unnested rows (inner join).
	// At t=90 eve is deleted; kernel still has 2.
	res, _ = e.Run(`SELECT (Dept.name, Emp.name) FROM DeptStaff AT 90`, 10)
	if len(res.Rows) != 4 {
		t.Errorf("rows at 90 = %v", res.Rows)
	}
	names := []string{}
	for _, row := range res.Rows {
		names = append(names, row[1].AsString())
	}
	sort.Strings(names)
	if strings.Join(names, ",") != "ada,bob,cay,dan" {
		t.Errorf("names at 90 = %v", names)
	}
}

func TestMoleculeUnnestingValidation(t *testing.T) {
	sch := testSchema(t)
	cases := map[string]string{
		`SELECT (Proj.title) FROM DeptStaff`: "no constituent type",
		`SELECT (Emp.bogus) FROM DeptStaff`:  "no attribute",
	}
	for src, frag := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		_, err = Analyze(q, sch)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("Analyze(%q) = %v, want %q", src, err, frag)
		}
	}
}
