package query

import (
	"strings"
	"testing"

	"tcodm/internal/value"
)

func TestTemporalAggregates(t *testing.T) {
	e, _, emps := fixture(t, false)
	_ = emps
	// ada: salary 1000 during [0, 50), 9000 from 50 on.
	res, err := e.Run(`SELECT (name, TAVG(salary)) FROM Emp WHERE name = "ada" DURING [0, 100) AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	want := (50.0*1000 + 50.0*9000) / 100.0
	if got := res.Rows[0][1].AsFloat(); got != want {
		t.Errorf("TAVG = %v, want %v", got, want)
	}
	// TMIN / TMAX over the same window.
	res, err = e.Run(`SELECT (TMIN(salary), TMAX(salary)) FROM Emp WHERE name = "ada" DURING [0, 100) AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 1000 || res.Rows[0][1].AsInt() != 9000 {
		t.Errorf("TMIN/TMAX = %v", res.Rows[0])
	}
	// CHANGES counts value transitions in the window.
	res, err = e.Run(`SELECT (CHANGES(salary)) FROM Emp WHERE name = "ada" DURING [0, 100) AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 1 {
		t.Errorf("CHANGES = %v", res.Rows[0][0])
	}
	// A window before the raise sees no change and the initial salary only.
	res, err = e.Run(`SELECT (CHANGES(salary), TMAX(salary)) FROM Emp WHERE name = "ada" DURING [0, 40) AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 0 || res.Rows[0][1].AsInt() != 1000 {
		t.Errorf("windowed aggregates = %v", res.Rows[0])
	}
	// Column labels.
	res, _ = e.Run(`SELECT (TAVG(salary)) FROM Emp WHERE name = "ada" DURING [0, 10) AT 5`, 5)
	if res.Columns[0] != "tavg(Emp.salary)" {
		t.Errorf("label = %q", res.Columns[0])
	}
}

func TestAggregateDefaultsToAllTime(t *testing.T) {
	e, _, _ := fixture(t, false)
	// Without DURING, TAVG spans all time; ada's newest version is
	// open-ended (unbounded weight), so only the bounded [0,50) piece
	// aggregates: average = 1000.
	res, err := e.Run(`SELECT (TAVG(salary)) FROM Emp WHERE name = "ada" AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsFloat(); got != 1000 {
		t.Errorf("all-time TAVG = %v", got)
	}
}

func TestAggregateAnalyzeErrors(t *testing.T) {
	sch := testSchema(t)
	cases := map[string]string{
		`SELECT (TAVG(salary)) FROM DeptStaff`:  "require an atom type",
		`SELECT (TAVG(bogus)) FROM Emp`:         "no attribute",
		`SELECT (name) FROM Emp DURING [0, 10)`: "DURING is only valid",
	}
	for src, frag := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		_, err = Analyze(q, sch)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("Analyze(%q) = %v, want %q", src, err, frag)
		}
	}
}

func TestAggregateNullOnEmptyWindow(t *testing.T) {
	e, _, _ := fixture(t, false)
	// eve was deleted at 80; her history still aggregates, but a window
	// before anyone existed yields Null.
	res, err := e.Run(`SELECT (TAVG(salary)) FROM Emp WHERE name = "bob" DURING [-100, -50) AT 10`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].IsNull() {
		t.Errorf("empty-window TAVG = %v", res.Rows[0][0])
	}
	_ = value.Null
}
