package query

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"tcodm/internal/atom"
	"tcodm/internal/history"
	"tcodm/internal/molecule"
	"tcodm/internal/obs"
	"tcodm/internal/schema"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// Result holds a query's answer: tabular rows and, for SELECT ALL,
// materialized molecules.
type Result struct {
	Columns   []string
	Rows      [][]value.V
	Molecules []*molecule.Molecule
	// Plan describes the chosen access path (diagnostics / experiments).
	Plan string
	// ExplainTree is the operator tree for EXPLAIN [ANALYZE] queries (nil
	// otherwise); Rows then carry its rendered lines.
	ExplainTree *PlanNode
	// Res holds the query's exact resource totals: pages read, WAL bytes,
	// version-chain steps, and atoms scanned. Identical for serial and
	// parallel execution of the same query.
	Res obs.Resources
	// Trace is the trace id the query ran under (0 = untraced).
	Trace uint64
}

// Table renders the rows as an aligned text table.
func (r *Result) Table() string {
	if len(r.Columns) == 0 {
		return fmt.Sprintf("%d molecule(s)\n", len(r.Molecules))
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	sb.WriteByte('\n')
	for i := range r.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for i, c := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Engine executes analyzed queries against the atom and molecule layers.
type Engine struct {
	Mgr     *atom.Manager
	Builder *molecule.Builder

	// Workers caps intra-query parallelism: candidate streams are
	// partitioned across this many goroutines with an order-preserving
	// merge, so results are byte-identical to serial execution. Values
	// <= 1 run the exact serial path. The atom-layer read path must be
	// safe for concurrent readers (it is: the server already runs whole
	// queries concurrently under the engine's shared lock).
	Workers int

	// chunk overrides the candidate partition size (tests only; 0 = the
	// parallelChunk default, which matches the serial cancel-poll cadence).
	chunk int

	met    engineMetrics
	tracer *obs.Tracer
}

// SetTracer binds the engine to a span store: queries that carry a trace id
// (Defaults.Trace != 0) emit per-operator, per-worker, and storage spans
// into it. A nil tracer disables executor tracing.
func (e *Engine) SetTracer(tr *obs.Tracer) { e.tracer = tr }

// engineMetrics holds the query engine's instrumentation handles. The
// defaults are nil no-ops; SetMetrics binds them to a registry. Parallel
// bookkeeping fires once per query (not per row), so counters are enough.
type engineMetrics struct {
	parRuns   *obs.Counter // queries that took the parallel path
	parChunks *obs.Counter // candidate partitions dispatched to workers
	parCands  *obs.Counter // candidates processed by parallel workers
}

// SetMetrics binds the engine's instrumentation to reg under
// "query.parallel_*" names. A nil registry disables it (nil no-op handles).
func (e *Engine) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		e.met = engineMetrics{}
		return
	}
	e.met = engineMetrics{
		parRuns:   reg.Counter("query.parallel_runs"),
		parChunks: reg.Counter("query.parallel_chunks"),
		parCands:  reg.Counter("query.parallel_cands"),
	}
}

// NewEngine wires a query engine.
func NewEngine(mgr *atom.Manager) *Engine {
	return &Engine{Mgr: mgr, Builder: molecule.NewBuilder(mgr)}
}

// Defaults are the session-supplied slice coordinates used when the query
// text has no AT / ASOF clause. The zero TT means "the latest recorded
// state" (atom.Now), so Defaults{VT: vt} does the expected thing.
type Defaults struct {
	VT temporal.Instant
	TT temporal.Instant

	// Trace and Span tie this execution into a distributed trace: Trace is
	// the query's trace id and Span the parent span the executor's spans
	// attach under (the engine's "exec" span). Zero Trace disables tracing.
	Trace uint64
	Span  uint64
}

// tt returns the effective default transaction time.
func (d Defaults) tt() temporal.Instant {
	if d.TT == 0 {
		return atom.Now
	}
	return d.TT
}

// Run parses, analyzes, and executes src. defaultVT is the valid time used
// when the query has no AT clause (the engine passes its clock's now).
func (e *Engine) Run(src string, defaultVT temporal.Instant) (*Result, error) {
	return e.RunCtx(context.Background(), src, Defaults{VT: defaultVT})
}

// RunCtx parses, analyzes, and executes src under ctx. Cancellation or
// deadline expiry stops execution at the next operator-loop boundary and
// surfaces the context's error.
func (e *Engine) RunCtx(ctx context.Context, src string, def Defaults) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	a, err := Analyze(q, e.Mgr.Schema())
	if err != nil {
		return nil, err
	}
	if q.Explain {
		return e.explain(ctx, a, def)
	}
	return e.ExecuteCtx(ctx, a, def)
}

// Execute runs an analyzed query.
func (e *Engine) Execute(a *Analyzed, defaultVT temporal.Instant) (*Result, error) {
	return e.ExecuteCtx(context.Background(), a, Defaults{VT: defaultVT})
}

// ExecuteCtx runs an analyzed query under ctx.
func (e *Engine) ExecuteCtx(ctx context.Context, a *Analyzed, def Defaults) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q := a.Query
	vt := def.VT
	if q.At != nil {
		vt = *q.At
	}
	tt := def.tt()
	if q.AsOf != nil {
		tt = *q.AsOf
	}
	traced := e.tracer != nil && def.Trace != 0
	ectx := &execCtx{ctx: ctx, timed: traced}
	var start time.Time
	if traced {
		start = time.Now()
	}
	res, err := e.executeClass(a, vt, tt, ectx)
	if err != nil {
		return nil, err
	}
	applyOrderLimit(a, res)
	res.Res = ectx.res
	res.Trace = def.Trace
	if traced {
		e.emitTrace(a, def, ectx, start, time.Since(start))
	}
	return res, nil
}

// emitTrace records the executor's span tree after the query completes:
// per-operator spans, per-worker spans (parallel runs), and one storage
// span carrying the exact resource totals, all children of the engine's
// exec span (def.Span). Emission is post-hoc because per-stage durations
// and merged totals only exist once every worker has finished; operator
// spans therefore share the query's start instant and carry the stage's
// accumulated duration across all candidates.
func (e *Engine) emitTrace(a *Analyzed, def Defaults, ctx *execCtx, start time.Time, total time.Duration) {
	tr, q := e.tracer, a.Query
	emit := func(name string, dur time.Duration, attrs string, res obs.Resources) {
		tr.EmitSpan(def.Trace, def.Span, name, start, dur, attrs, res)
	}
	emit("op:scan", 0, fmt.Sprintf("cands=%d %s", ctx.scanned, ctx.scanDesc), obs.Resources{})
	if q.When != nil {
		emit("op:when", ctx.whenDur, fmt.Sprintf("out=%d", ctx.whenOut), obs.Resources{})
	}
	emit("op:time-slice", ctx.sliceDur, fmt.Sprintf("out=%d", ctx.sliceOut), obs.Resources{})
	if q.Where != nil {
		emit("op:where", ctx.whereDur, fmt.Sprintf("out=%d", ctx.whereOut), obs.Resources{})
	}
	if a.Class == ClassMolecule {
		emit("op:materialize", 0, fmt.Sprintf("molecules=%d", ctx.matCount), obs.Resources{})
	}
	emit("op:emit", ctx.emitDur, fmt.Sprintf("out=%d", ctx.emitOut), obs.Resources{})
	for i, ws := range ctx.workers {
		emit(fmt.Sprintf("worker %d", i), ws.dur,
			fmt.Sprintf("chunks=%d cands=%d rows=%d", ws.chunks, ws.cands, ws.rows), obs.Resources{})
	}
	if ctx.res.Arc > 0 {
		// A deep-history read crossed the tiering watermark: surface the
		// cold-archive traffic as its own span so a trace shows at a glance
		// which queries paid for archived history.
		emit("archive", 0, fmt.Sprintf("blocks=%d", ctx.res.Arc), obs.Resources{Arc: ctx.res.Arc})
	}
	emit("storage", total, "", ctx.res)
}

// frag is the output fragment one candidate partition produces. Serial
// execution fills a single fragment; parallel execution fills one per chunk
// and concatenates them in chunk order, which reproduces the serial row
// order exactly.
type frag struct {
	rows [][]value.V
	mols []*molecule.Molecule
}

// candProc processes one deduplicated candidate id, appending output to
// sink and accounting operator counts into ctx. Implementations must be
// safe for concurrent use with distinct (ctx, sink) pairs: all shared state
// (atom manager, molecule builder) is read-only during query execution.
type candProc func(id value.ID, ctx *execCtx, sink *frag) error

// executeClass dispatches on the query class, accumulating operator counts
// (and, when ctx.analyze is set, per-stage wall time) into ctx. The
// per-candidate pipeline is identical for serial and parallel execution;
// only the driver differs.
func (e *Engine) executeClass(a *Analyzed, vt, tt temporal.Instant, ctx *execCtx) (*Result, error) {
	q := a.Query
	res := &Result{}
	var proc candProc
	switch a.Class {
	case ClassAtom:
		for _, p := range q.Projs {
			res.Columns = append(res.Columns, p.Label())
		}
		proc = e.atomProc(a, vt, tt)
	case ClassHistory:
		res.Columns = []string{"id", q.History.Attr, "valid_from", "valid_to"}
		proc = e.historyProc(a, vt, tt)
	case ClassMolecule:
		if !q.SelectAll {
			for _, p := range q.Projs {
				res.Columns = append(res.Columns, p.Label())
			}
		}
		proc = e.moleculeProc(a, vt, tt)
	default:
		return nil, fmt.Errorf("query: unknown query class %d", a.Class)
	}

	typeName := baseType(a).Name
	var out frag
	var plan string
	var err error
	if e.Workers > 1 {
		plan, err = e.runParallel(a, typeName, ctx, proc, &out)
	} else {
		plan, err = e.runSerial(a, typeName, ctx, proc, &out)
	}
	if err != nil {
		return nil, err
	}
	res.Rows = out.rows
	res.Molecules = out.mols
	res.Plan = plan
	if a.Class == ClassMolecule {
		res.Plan = plan + " + molecule materialization (" + a.MolType.Name + ")"
	}
	return res, nil
}

// runSerial streams candidates through proc on the calling goroutine — the
// exact single-threaded path (Workers <= 1). Deduplication and sampled
// cancellation polling happen here, in stream order.
func (e *Engine) runSerial(a *Analyzed, typeName string, ctx *execCtx, proc candProc, sink *frag) (string, error) {
	seen := map[value.ID]bool{}
	var innerErr error
	plan, err := e.candidates(a, typeName, func(id value.ID) (bool, error) {
		if err := ctx.checkCancel(); err != nil {
			innerErr = err
			return false, nil
		}
		if seen[id] {
			return true, nil
		}
		seen[id] = true
		if err := proc(id, ctx, sink); err != nil {
			innerErr = err
			return false, nil
		}
		return true, nil
	})
	ctx.scanDesc = plan
	if innerErr != nil {
		return plan, innerErr
	}
	return plan, err
}

// applyOrderLimit sorts and truncates the result per ORDER BY / LIMIT.
func applyOrderLimit(a *Analyzed, res *Result) {
	q := a.Query
	if q.OrderBy != "" {
		if col, ok := orderColumn(a); ok {
			sort.SliceStable(res.Rows, func(i, j int) bool {
				cmp := res.Rows[i][col].Compare(res.Rows[j][col])
				if q.OrderDesc {
					return cmp > 0
				}
				return cmp < 0
			})
		}
	}
	if q.Limit > 0 {
		if len(res.Rows) > q.Limit {
			res.Rows = res.Rows[:q.Limit]
		}
		if len(res.Molecules) > q.Limit {
			res.Molecules = res.Molecules[:q.Limit]
		}
	}
}

// candidates streams the candidate atom IDs for the FROM type, pruning
// with the time index (WHEN clauses) or the value index (sargable WHERE
// conjuncts) when available. Returns the plan description.
func (e *Engine) candidates(a *Analyzed, typeName string, fn func(id value.ID) (bool, error)) (string, error) {
	q := a.Query
	if q.When != nil && !q.When.Lifespan {
		if bound, ok := whenStartBound(q.When); ok {
			err := e.Mgr.TimeIndexScan(q.When.Attr.Type, q.When.Attr.Attr, bound, fn)
			if err == nil {
				return fmt.Sprintf("time-index scan on %s below %v", q.When.Attr, bound), nil
			}
			// Time index unavailable: fall through.
		}
	}
	if q.When == nil && e.Mgr.HasValueIndex() {
		if pred := sargable(q.Where, baseType(a)); pred != nil {
			err := e.Mgr.ValueIndexScan(typeName, pred.attr, pred.op, pred.lit, fn)
			if err == nil {
				return fmt.Sprintf("value-index scan on %s.%s %s %s", typeName, pred.attr, pred.op, pred.lit), nil
			}
		}
	}
	err := e.Mgr.ScanType(typeName, func(id value.ID, _ storage.RID) (bool, error) {
		return fn(id)
	})
	return "full type scan on " + typeName, err
}

func baseType(a *Analyzed) *schema.AtomType {
	if a.Class == ClassMolecule {
		return a.RootType
	}
	return a.AtomType
}

// indexablePred is a WHERE conjunct the value index can serve.
type indexablePred struct {
	attr string
	op   string
	lit  value.V
}

// sargable finds a usable conjunct in the WHERE tree: a comparison between
// an attribute of the scanned type and a same-kind literal, reachable
// through top-level ANDs (any other operator shape disables the index for
// that branch). "!=" is never sargable.
func sargable(e *Expr, t *schema.AtomType) *indexablePred {
	if e == nil || t == nil {
		return nil
	}
	switch e.Op {
	case "AND":
		if p := sargable(e.Left, t); p != nil {
			return p
		}
		return sargable(e.Right, t)
	case "=", "<", "<=", ">", ">=":
		ref, lit, op := e.Left, e.Right, e.Op
		if ref.Ref == nil && lit.Ref != nil {
			// literal op ref: flip the comparison.
			ref, lit = lit, ref
			op = map[string]string{"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
		}
		if ref.Ref == nil || lit.Lit == nil || lit.Lit.IsNull() {
			return nil
		}
		at, ok := t.Attr(ref.Ref.Attr)
		if !ok || at.Kind != lit.Lit.Kind() {
			return nil
		}
		return &indexablePred{attr: ref.Ref.Attr, op: op, lit: *lit.Lit}
	default:
		return nil
	}
}

// whenStartBound derives an exclusive upper bound on the valid-start
// instants of versions that can satisfy the WHEN predicate: every
// predicate constrains the version to begin before some instant.
func whenStartBound(w *WhenClause) (temporal.Instant, bool) {
	switch w.Pred {
	case PredOverlaps, PredDuring:
		return w.Period.To, true
	case PredContains, PredEquals:
		return w.Period.From + 1, true
	case PredPrecedes, PredMeets:
		return w.Period.From, true
	default:
		return 0, false
	}
}

// whenHolds evaluates the WHEN clause exactly for one atom.
func (e *Engine) whenHolds(id value.ID, w *WhenClause, tt temporal.Instant, acc *obs.Resources) (bool, error) {
	if w.Lifespan {
		life, err := e.Mgr.LifespanAcc(id, acc)
		if err != nil {
			return false, err
		}
		for _, iv := range life {
			if w.Pred.Holds(iv, w.Period) {
				return true, nil
			}
		}
		return false, nil
	}
	hist, err := e.Mgr.HistoryAcc(id, w.Attr.Attr, tt, acc)
	if err != nil {
		return false, err
	}
	for _, v := range hist {
		if w.Pred.Holds(v.Valid, w.Period) {
			return true, nil
		}
	}
	return false, nil
}

// atomProc builds the per-candidate pipeline for atom-class queries:
// WHEN / time-slice / WHERE filters, then projection (temporal aggregates
// evaluate per atom, so no cross-partition merge state is needed).
func (e *Engine) atomProc(a *Analyzed, vt, tt temporal.Instant) candProc {
	q := a.Query
	window := temporal.All()
	if q.During != nil {
		window = *q.During
	}
	return func(id value.ID, ctx *execCtx, sink *frag) error {
		return e.processCandidate(a, vt, tt, id, ctx, func(st *atom.State) error {
			row := make([]value.V, 0, len(q.Projs))
			for _, p := range q.Projs {
				if p.Agg != "" {
					v, err := e.evalAggregate(st.ID, p, window, tt, &ctx.res)
					if err != nil {
						return err
					}
					row = append(row, v)
					continue
				}
				row = append(row, projectValue(st, p))
			}
			sink.rows = append(sink.rows, row)
			ctx.emitOut++
			return nil
		})
	}
}

// evalAggregate computes a temporal aggregate over one atom's attribute
// history within the window.
func (e *Engine) evalAggregate(id value.ID, p Projection, window temporal.Interval, tt temporal.Instant, acc *obs.Resources) (value.V, error) {
	hist, err := e.Mgr.HistoryAcc(id, p.Attr.Attr, tt, acc)
	if err != nil {
		return value.Null, err
	}
	sf := history.FromVersions(hist)
	switch p.Agg {
	case "TAVG":
		avg, ok := sf.WeightedAvg(window)
		if !ok {
			return value.Null, nil
		}
		return value.Float(avg), nil
	case "TMIN", "TMAX":
		v, ok := sf.Extremum(window, p.Agg == "TMAX")
		if !ok {
			return value.Null, nil
		}
		return v, nil
	case "CHANGES":
		return value.Int(int64(sf.Clip(window).Changes())), nil
	default:
		return value.Null, fmt.Errorf("query: unknown aggregate %q", p.Agg)
	}
}

// processCandidate applies the WHEN and WHERE filters to one candidate and
// calls emit with its qualifying state, accumulating per-stage counts into
// ctx. A nil return with no emit means the candidate was filtered out.
func (e *Engine) processCandidate(a *Analyzed, vt, tt temporal.Instant, id value.ID, ctx *execCtx, emit func(*atom.State) error) error {
	q := a.Query
	ctx.scanned++
	ctx.res.Atoms++
	if q.When != nil {
		start := ctx.now()
		ok, err := e.whenHolds(id, q.When, tt, &ctx.res)
		ctx.whenDur += since(start)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ctx.whenOut++
	}
	start := ctx.now()
	st, err := e.Mgr.StateAtAcc(id, vt, tt, &ctx.res)
	ctx.sliceDur += since(start)
	if err != nil {
		return err
	}
	// Without a WHEN clause the query is a pure time-slice: only atoms
	// alive at vt qualify. With WHEN, selection is by history.
	if q.When == nil && !st.Alive {
		return nil
	}
	ctx.sliceOut++
	if q.Where != nil {
		start := ctx.now()
		ok, err := evalBool(q.Where, st)
		ctx.whereDur += since(start)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ctx.whereOut++
	}
	start = ctx.now()
	err = emit(st)
	ctx.emitDur += since(start)
	return err
}

func projectValue(st *atom.State, p Projection) value.V {
	if p.Count != "" {
		return value.Null // counts are molecule-level; unreachable for atoms
	}
	if v, ok := st.Vals[p.Attr.Attr]; ok {
		return v
	}
	// Set attribute: project its cardinality at the slice point.
	if vs, ok := st.Sets[p.Attr.Attr]; ok {
		return value.Int(int64(len(vs)))
	}
	return value.Null
}

// historyProc builds the per-candidate pipeline for HISTORY() queries. The
// stage order differs from the atom pipeline (the time-slice only runs when
// a WHERE needs a state to evaluate against), so it does not share
// processCandidate.
func (e *Engine) historyProc(a *Analyzed, vt, tt temporal.Instant) candProc {
	q := a.Query
	window := temporal.All()
	if q.During != nil {
		window = *q.During
	}
	return func(id value.ID, ctx *execCtx, sink *frag) error {
		ctx.scanned++
		ctx.res.Atoms++
		if q.When != nil {
			start := ctx.now()
			ok, err := e.whenHolds(id, q.When, tt, &ctx.res)
			ctx.whenDur += since(start)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			ctx.whenOut++
		}
		if q.Where != nil {
			start := ctx.now()
			st, err := e.Mgr.StateAtAcc(id, vt, tt, &ctx.res)
			ctx.sliceDur += since(start)
			if err != nil {
				return err
			}
			ctx.sliceOut++
			start = ctx.now()
			ok, err := evalBool(q.Where, st)
			ctx.whereDur += since(start)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			ctx.whereOut++
		} else {
			ctx.sliceOut++
		}
		start := ctx.now()
		hist, err := e.Mgr.HistoryAcc(id, q.History.Attr, tt, &ctx.res)
		if err != nil {
			ctx.emitDur += since(start)
			return err
		}
		for _, v := range hist {
			iv := v.Valid.Intersect(window)
			if iv.IsEmpty() {
				continue
			}
			sink.rows = append(sink.rows, []value.V{
				value.Ref(id), v.Val, value.Instant(iv.From), value.Instant(iv.To),
			})
			ctx.emitOut++
		}
		ctx.emitDur += since(start)
		return nil
	}
}

// moleculeProc builds the per-candidate pipeline for molecule-class
// queries: the atom pipeline on the root type, then materialization,
// HAVING, and projection/unnesting. Materialize is read-only over the atom
// layer, so root candidates parallelize like any other candidate stream.
func (e *Engine) moleculeProc(a *Analyzed, vt, tt temporal.Instant) candProc {
	q := a.Query
	return func(id value.ID, ctx *execCtx, sink *frag) error {
		return e.processCandidate(a, vt, tt, id, ctx, func(st *atom.State) error {
			// Materialization is the expensive per-candidate stage (it can touch
			// thousands of atoms per molecule), so poll cancellation on every
			// molecule rather than at the sampled scan cadence.
			if err := ctx.cancelErr(); err != nil {
				return err
			}
			mol, err := e.Builder.MaterializeAcc(a.MolType, st.ID, vt, tt, &ctx.res)
			if err != nil {
				return err
			}
			ctx.matCount++
			if q.Having != nil {
				ok, err := evalHaving(q.Having, mol)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			ctx.havingOut++
			if q.SelectAll {
				sink.mols = append(sink.mols, mol)
				ctx.emitOut++
				return nil
			}
			rows := moleculeRows(q, a, st, mol)
			sink.rows = append(sink.rows, rows...)
			ctx.emitOut += int64(len(rows))
			return nil
		})
	}
}

// moleculeRows projects one molecule into result rows. Projections of
// non-root constituent types unnest the molecule: one row per combination
// of constituents, inner-join style (a molecule lacking a referenced type
// yields no rows). Root attributes and COUNTs repeat per row.
func moleculeRows(q *Query, a *Analyzed, root *atom.State, mol *molecule.Molecule) [][]value.V {
	// The referenced non-root types, in first-appearance order.
	var unnest []string
	seen := map[string]bool{}
	for _, p := range q.Projs {
		if p.Count == "" && p.Attr != nil && p.Attr.Type != a.RootType.Name && !seen[p.Attr.Type] {
			unnest = append(unnest, p.Attr.Type)
			seen[p.Attr.Type] = true
		}
	}
	// Current bindings: type -> chosen constituent state.
	binding := map[string]*atom.State{}
	var rows [][]value.V
	var emit func(level int)
	emit = func(level int) {
		if level == len(unnest) {
			row := make([]value.V, 0, len(q.Projs))
			for _, p := range q.Projs {
				switch {
				case p.Count != "":
					row = append(row, value.Int(int64(len(mol.AtomsOfType(p.Count)))))
				case p.Attr.Type == a.RootType.Name:
					row = append(row, projectValue(root, p))
				default:
					row = append(row, projectValue(binding[p.Attr.Type], p))
				}
			}
			rows = append(rows, row)
			return
		}
		for _, st := range mol.AtomsOfType(unnest[level]) {
			binding[unnest[level]] = st
			emit(level + 1)
		}
	}
	emit(0)
	return rows
}

// evalHaving qualifies a molecule: each comparison leaf `T.attr op lit`
// holds iff SOME constituent atom of type T satisfies it (existential
// qualification); AND/OR/NOT compose those per-comparison facts. NOT thus
// reads "no constituent satisfies".
func evalHaving(ex *Expr, mol *molecule.Molecule) (bool, error) {
	switch ex.Op {
	case "AND":
		l, err := evalHaving(ex.Left, mol)
		if err != nil || !l {
			return false, err
		}
		return evalHaving(ex.Right, mol)
	case "OR":
		l, err := evalHaving(ex.Left, mol)
		if err != nil || l {
			return l, err
		}
		return evalHaving(ex.Right, mol)
	case "NOT":
		l, err := evalHaving(ex.Left, mol)
		return !l, err
	case "=", "!=", "<", "<=", ">", ">=":
		typeName := havingType(ex)
		if typeName == "" {
			return false, fmt.Errorf("query: HAVING comparison %s references no constituent attribute", ex)
		}
		for _, st := range mol.AtomsOfType(typeName) {
			ok, err := evalBool(ex, st)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("query: unsupported HAVING expression %s", ex)
	}
}

// havingType finds the constituent type a comparison references.
func havingType(ex *Expr) string {
	if ex.Left != nil && ex.Left.Ref != nil {
		return ex.Left.Ref.Type
	}
	if ex.Right != nil && ex.Right.Ref != nil {
		return ex.Right.Ref.Type
	}
	return ""
}

// evalBool evaluates a WHERE expression against one atom state.
func evalBool(e *Expr, st *atom.State) (bool, error) {
	switch e.Op {
	case "AND":
		l, err := evalBool(e.Left, st)
		if err != nil || !l {
			return false, err
		}
		return evalBool(e.Right, st)
	case "OR":
		l, err := evalBool(e.Left, st)
		if err != nil || l {
			return l, err
		}
		return evalBool(e.Right, st)
	case "NOT":
		l, err := evalBool(e.Left, st)
		return !l, err
	case "=", "!=", "<", "<=", ">", ">=":
		l, err := evalValue(e.Left, st)
		if err != nil {
			return false, err
		}
		r, err := evalValue(e.Right, st)
		if err != nil {
			return false, err
		}
		// Comparisons involving NULL hold only for = NULL / != NULL.
		if l.IsNull() || r.IsNull() {
			switch e.Op {
			case "=":
				return l.IsNull() && r.IsNull(), nil
			case "!=":
				return l.IsNull() != r.IsNull(), nil
			default:
				return false, nil
			}
		}
		cmp := l.Compare(r)
		switch e.Op {
		case "=":
			return cmp == 0, nil
		case "!=":
			return cmp != 0, nil
		case "<":
			return cmp < 0, nil
		case "<=":
			return cmp <= 0, nil
		case ">":
			return cmp > 0, nil
		default:
			return cmp >= 0, nil
		}
	case "":
		v, err := evalValue(e, st)
		if err != nil {
			return false, err
		}
		if v.Kind() == value.KindBool {
			return v.AsBool(), nil
		}
		return false, fmt.Errorf("query: non-boolean expression %s in WHERE", e)
	default:
		return false, fmt.Errorf("query: unknown operator %q", e.Op)
	}
}

func evalValue(e *Expr, st *atom.State) (value.V, error) {
	switch {
	case e.Lit != nil:
		return *e.Lit, nil
	case e.Ref != nil:
		if v, ok := st.Vals[e.Ref.Attr]; ok {
			return v, nil
		}
		if vs, ok := st.Sets[e.Ref.Attr]; ok {
			return value.Int(int64(len(vs))), nil
		}
		return value.Null, fmt.Errorf("query: atom state has no attribute %q", e.Ref.Attr)
	default:
		return value.Null, fmt.Errorf("query: expression %s is not a value", e)
	}
}
