package query

import (
	"regexp"
	"strings"
	"testing"
)

// stripTimings removes the volatile time= component of analyzed plan lines
// so golden comparisons pin only the structure and row counts.
var timingRe = regexp.MustCompile(` time=[^\]]+\]`)

func planText(t *testing.T, e *Engine, src string) string {
	t.Helper()
	res, err := e.Run(src, 100)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	if res.ExplainTree == nil {
		t.Fatalf("Run(%q): no ExplainTree", src)
	}
	return timingRe.ReplaceAllString(res.ExplainTree.String(), "]")
}

// TestExplainAnalyzeAtomGolden pins the operator tree and row counts for a
// filtered atom scan on the fixed fixture dataset: 5 employees, salaries
// 1000..5000 (ada raised to 9000 at vt=50), eve deleted at vt=80.
func TestExplainAnalyzeAtomGolden(t *testing.T) {
	e, _, _ := fixture(t, false)
	got := planText(t, e, `EXPLAIN ANALYZE SELECT (name, salary) FROM Emp WHERE salary > 2500 AT 100`)
	// At vt=100: eve is deleted (4 alive of 5 scanned); salaries are
	// ada=9000, bob=2000, cay=3000, dan=4000, so salary > 2500 keeps 3.
	want := strings.Join([]string{
		`query (atom)  [rows=3]`,
		`  -> project (Emp.name, Emp.salary)  [rows=3]`,
		`    -> filter (WHERE (Emp.salary > 2500))  [rows=3]`,
		`      -> time-slice (vt=100 tt=now)  [rows=4]`,
		`        -> scan (full type scan on Emp)  [rows=5]`,
		``,
	}, "\n")
	if got != want {
		t.Errorf("plan mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainAnalyzeMoleculeGolden pins the tree for a molecule time-slice
// query (the acceptance-criteria shape): per-operator rows through scan,
// time-slice, materialization, and projection.
func TestExplainAnalyzeMoleculeGolden(t *testing.T) {
	e, _, _ := fixture(t, false)
	got := planText(t, e, `EXPLAIN ANALYZE SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT 100`)
	want := strings.Join([]string{
		`query (molecule)  [rows=2]`,
		`  -> project (Dept.name, count(Emp))  [rows=2]`,
		`    -> materialize (molecule DeptStaff)  [rows=2]`,
		`      -> time-slice (vt=100 tt=now)  [rows=2]`,
		`        -> scan (full type scan on Dept)  [rows=2]`,
		``,
	}, "\n")
	if got != want {
		t.Errorf("plan mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainAnalyzeHistory covers the history-expand operator: ada's
// salary history has 2 versions (1000 then 9000 from vt=50).
func TestExplainAnalyzeHistory(t *testing.T) {
	e, _, _ := fixture(t, false)
	got := planText(t, e, `EXPLAIN ANALYZE SELECT HISTORY(Emp.salary) FROM Emp WHERE name = "ada" DURING [0, 100)`)
	if !strings.Contains(got, "history-expand (HISTORY(Emp.salary) DURING [0, 100))  [rows=2]") {
		t.Errorf("missing history-expand with 2 rows:\n%s", got)
	}
	if !strings.Contains(got, `filter (WHERE (Emp.name = "ada"))  [rows=1]`) {
		t.Errorf("missing WHERE filter with 1 row:\n%s", got)
	}
}

// TestExplainDescribeOnly checks that plain EXPLAIN does not execute and
// predicts the same access path candidates() would pick.
func TestExplainDescribeOnly(t *testing.T) {
	e, _, _ := fixture(t, true) // time index on
	res, err := e.Run(`EXPLAIN SELECT (name) FROM Emp WHEN VALID(salary) OVERLAPS PERIOD [10, 20)`, 100)
	if err != nil {
		t.Fatal(err)
	}
	text := res.ExplainTree.String()
	if !strings.Contains(text, "time-index scan") {
		t.Errorf("EXPLAIN should predict the time-index scan:\n%s", text)
	}
	if strings.Contains(text, "[rows=") {
		t.Errorf("plain EXPLAIN must not carry analyzed counts:\n%s", text)
	}
	// The describe-only path and the real execution must agree.
	ran, err := e.Run(`SELECT (name) FROM Emp WHEN VALID(salary) OVERLAPS PERIOD [10, 20)`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ran.Plan, "time-index scan") {
		t.Errorf("execution chose %q, EXPLAIN said time-index scan", ran.Plan)
	}
}

// TestExplainAnalyzeOrderLimit covers the order/limit operator node.
func TestExplainAnalyzeOrderLimit(t *testing.T) {
	e, _, _ := fixture(t, false)
	got := planText(t, e, `EXPLAIN ANALYZE SELECT (name, salary) FROM Emp ORDER BY salary DESC LIMIT 2 AT 100`)
	if !strings.Contains(got, "order/limit (ORDER BY salary DESC LIMIT 2)  [rows=2]") {
		t.Errorf("missing order/limit node with 2 rows:\n%s", got)
	}
}

// TestExplainAnalyzeParallelGolden pins the gather node and its per-worker
// line for a parallel run. The fixture's 5 candidates fit in one default
// chunk, so exactly one worker runs and the whole tree — including the
// worker's chunk/candidate/row counts — is deterministic.
func TestExplainAnalyzeParallelGolden(t *testing.T) {
	e, _, _ := fixture(t, false)
	e.Workers = 4
	got := planText(t, e, `EXPLAIN ANALYZE SELECT (name, salary) FROM Emp WHERE salary > 2500 AT 100`)
	want := strings.Join([]string{
		`query (atom)  [rows=3]`,
		`  -> project (Emp.name, Emp.salary)  [rows=3]`,
		`    -> filter (WHERE (Emp.salary > 2500))  [rows=3]`,
		`      -> time-slice (vt=100 tt=now)  [rows=4]`,
		`        -> gather (workers=1 chunks=1)  [rows=5]`,
		`          -> scan (full type scan on Emp)  [rows=5]`,
		`          -> worker 0 (chunks=1 cands=5)  [rows=3]`,
		``,
	}, "\n")
	if got != want {
		t.Errorf("plan mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainAnalyzeParallelExactCounts forces many chunks across several
// workers: the chunk distribution is nondeterministic, but the merged
// operator counts must stay exact — identical to a serial run — and the
// per-worker rows/candidates must sum to the operator totals.
func TestExplainAnalyzeParallelExactCounts(t *testing.T) {
	e, err := buildScaledFixture(300, false)
	if err != nil {
		t.Fatal(err)
	}
	const src = `EXPLAIN ANALYZE SELECT (name, salary) FROM Emp WHERE salary > 2500 AT 100`
	e.Workers = 1
	serial := planText(t, e, src)
	e.Workers = 8
	e.chunk = 16
	res, err := e.Run(src, 100)
	if err != nil {
		t.Fatal(err)
	}
	tree := res.ExplainTree

	// Locate the gather node and check the worker sums.
	var gather *PlanNode
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		if n.Name == "gather" {
			gather = n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree)
	if gather == nil {
		t.Fatalf("no gather node in parallel plan:\n%s", tree)
	}
	if len(gather.Children) < 2 {
		t.Fatalf("gather has no worker children:\n%s", tree)
	}
	var workerRows, scanRows int64
	for _, c := range gather.Children {
		if c.Name == "scan" {
			scanRows = c.Rows
			continue
		}
		workerRows += c.Rows
	}
	if scanRows != gather.Rows {
		t.Errorf("gather rows %d != scan rows %d", gather.Rows, scanRows)
	}
	// The project node (root's grandchild) carries the total emitted rows;
	// per-worker rows must sum to it exactly.
	project := tree.Children[0]
	if project.Name != "project" {
		t.Fatalf("expected project under root, got %q", project.Name)
	}
	if workerRows != project.Rows {
		t.Errorf("worker rows sum %d != project rows %d", workerRows, project.Rows)
	}

	// Every operator count above the gather must match the serial plan:
	// strip the gather/worker lines and compare the rest byte-for-byte.
	var parallel []string
	for _, line := range strings.Split(timingRe.ReplaceAllString(tree.String(), "]"), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "-> gather") || strings.HasPrefix(trimmed, "-> worker") {
			continue
		}
		parallel = append(parallel, strings.TrimLeft(line, " "))
	}
	var serialLines []string
	for _, line := range strings.Split(serial, "\n") {
		serialLines = append(serialLines, strings.TrimLeft(line, " "))
	}
	if strings.Join(parallel, "\n") != strings.Join(serialLines, "\n") {
		t.Errorf("operator counts diverge from serial\nserial:\n%s\nparallel sans gather:\n%s",
			strings.Join(serialLines, "\n"), strings.Join(parallel, "\n"))
	}
}

// TestExplainDescribeParallel: plain EXPLAIN on a parallel engine shows the
// planned gather fan-out without executing anything.
func TestExplainDescribeParallel(t *testing.T) {
	e, _, _ := fixture(t, false)
	e.Workers = 4
	res, err := e.Run(`EXPLAIN SELECT (name) FROM Emp`, 100)
	if err != nil {
		t.Fatal(err)
	}
	text := res.ExplainTree.String()
	if !strings.Contains(text, "gather (workers=4)") {
		t.Errorf("EXPLAIN should show the planned fan-out:\n%s", text)
	}
	if strings.Contains(text, "[rows=") {
		t.Errorf("plain EXPLAIN must not carry analyzed counts:\n%s", text)
	}
}

// TestExplainRoundTrip ensures EXPLAIN queries re-parse from String().
func TestExplainRoundTrip(t *testing.T) {
	for _, src := range []string{
		`EXPLAIN SELECT ALL FROM DeptStaff`,
		`EXPLAIN ANALYZE SELECT (Emp.name) FROM Emp WHERE Emp.salary > 4000`,
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if !q.Explain {
			t.Fatalf("Parse(%q): Explain not set", src)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", q.String(), err)
		}
		if q2.Explain != q.Explain || q2.Analyze != q.Analyze {
			t.Fatalf("round trip lost explain flags: %q", q.String())
		}
	}
}
