package query

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParallelEquivalence is the differential fuzzer: any input that
// parses and analyzes against the fixture schema executes twice — serial
// and with 4 workers over 1-candidate chunks (maximum interleaving) — and
// the two runs must agree on everything observable: error text, columns,
// row values and order, molecule order, and plan description. The engine
// pair is built once; queries are read-only.
func FuzzParallelEquivalence(f *testing.F) {
	for _, s := range differentialCorpus {
		f.Add(s)
	}
	// Shapes the corpus lacks: EXPLAIN ANALYZE totals and runtime errors.
	f.Add(`SELECT (name) FROM Emp WHERE bogus = 1 AT 10`)
	f.Add(`SELECT (name, salary) FROM Emp WHEN VALID(salary) OVERLAPS PERIOD [0, 20) ORDER BY salary DESC LIMIT 2`)
	eng, _, _, err := buildFixture(false)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil || q.Explain {
			// Unparseable input is FuzzParse's territory; EXPLAIN trees
			// legitimately differ (the parallel plan adds a gather node).
			return
		}
		if _, err := Analyze(q, eng.Mgr.Schema()); err != nil {
			return
		}
		eng.Workers = 1
		eng.chunk = 0
		serialRes, serialErr := eng.Run(src, 10)
		eng.Workers = 4
		eng.chunk = 1
		parallelRes, parallelErr := eng.Run(src, 10)
		if (serialErr == nil) != (parallelErr == nil) {
			t.Fatalf("error divergence on %q: serial=%v parallel=%v", src, serialErr, parallelErr)
		}
		if serialErr != nil {
			if serialErr.Error() != parallelErr.Error() {
				t.Fatalf("error text divergence on %q: serial=%q parallel=%q", src, serialErr, parallelErr)
			}
			return
		}
		if got, want := signature(parallelRes, nil), signature(serialRes, nil); got != want {
			t.Fatalf("result divergence on %q:\n--- serial ---\n%s\n--- parallel ---\n%s", src, want, got)
		}
	})
}

// FuzzParse throws arbitrary byte soup at the TMQL parser. The parser's
// contract for any input is an AST or an error — never a panic, a hang,
// or an out-of-range slice access in the lexer. The seed corpus covers
// every clause: projections, WHERE, WHEN predicates, AT/ASOF, DURING,
// HAVING, aggregates, ORDER BY/LIMIT, and a selection of the malformed
// shapes the parser's unit tests reject.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Well-formed queries, one per feature.
		`SELECT ALL FROM Emp`,
		`SELECT ALL FROM DeptStaff`,
		`SELECT (Emp.name, Emp.salary) FROM Emp WHERE Emp.salary > 4000`,
		`SELECT (name) FROM Emp WHEN VALID(salary) OVERLAPS PERIOD [10, 20) AT 15`,
		`SELECT HISTORY(Emp.salary) FROM Emp DURING [0, 100) ASOF 3`,
		`SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT 100`,
		`SELECT (name) FROM Emp WHERE (salary > 100 AND salary < 200) OR NOT name = "x"`,
		`SELECT (name) FROM Emp WHEN LIFESPAN CONTAINS PERIOD [5, 6)`,
		`SELECT (name, TAVG(salary)) FROM Emp WHERE name = "ada" DURING [0, 100) AT 10`,
		`SELECT (TMIN(salary), TMAX(salary)) FROM Emp DURING [0, 100) AT 10`,
		`SELECT (CHANGES(salary)) FROM Emp DURING [0, 100) AT 10`,
		`SELECT (Dept.name) FROM DeptStaff HAVING Emp.salary > 4000 AT 10`,
		`SELECT (name) FROM Emp ORDER BY salary DESC LIMIT 3`,
		`SELECT (name) FROM Emp WHERE salary >= -17 ORDER BY name`,
		// Malformed shapes the parser must reject gracefully.
		`SELECT`,
		`SELECT ALL FROM`,
		`SELECT (a FROM T`,
		`SELECT (a) FROM T WHERE`,
		`SELECT (a) FROM T AT x`,
		`SELECT (a) FROM T WHEN VALID(a) SOMETIME PERIOD [0, 1)`,
		`SELECT (a) FROM T WHEN VALID(a) OVERLAPS PERIOD [5, 1)`,
		`SELECT (a) FROM T LIMIT -1`,
		`SELECT (a)) FROM T`,
		`"unterminated`,
		`PERIOD [`,
		"SELECT (a) FROM T \x00\xff",
		strings.Repeat("(", 100),
		strings.Repeat(`SELECT ALL FROM T `, 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err == nil && q == nil {
			t.Errorf("Parse(%q) returned neither AST nor error", src)
		}
		if err != nil && q != nil {
			t.Errorf("Parse(%q) returned both AST and error %v", src, err)
		}
		// The error path must produce a printable message, not garbage.
		if err != nil && !utf8.ValidString(err.Error()) {
			t.Errorf("Parse(%q) error is not valid UTF-8: %q", src, err.Error())
		}
	})
}
