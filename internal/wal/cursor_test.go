package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tcodm/internal/storage"
)

// commitN runs one committed transaction with n heap inserts and returns
// the commit marker's LSN.
func commitN(t *testing.T, w *WAL, txn uint64, n int) uint64 {
	t.Helper()
	if err := w.BeginTxn(txn); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w.LogHeapInsert(storage.RID{Page: storage.PageID(txn), Slot: uint16(i)}, []byte(fmt.Sprintf("txn%d-rec%d", txn, i)))
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	return w.AppendedLSN()
}

func TestCursorTailFollowsCommits(t *testing.T) {
	w := newWAL(t, false)
	c := w.Cursor(1)

	// Nothing yet: caught up, no error.
	recs, err := c.Read(100)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty read = %d recs, %v; want 0, nil", len(recs), err)
	}

	commitN(t, w, 1, 3)
	recs, err = c.Read(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("batch 1 = %d records, want 4 (3 ops + commit)", len(recs))
	}
	if recs[len(recs)-1].Op != OpCommit {
		t.Fatalf("batch must end at a commit marker, got op %d", recs[len(recs)-1].Op)
	}

	// Two more transactions land; the cursor picks up both, in order.
	commitN(t, w, 2, 2)
	commitN(t, w, 3, 1)
	recs, err = c.Read(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("batch 2 = %d records, want 5", len(recs))
	}
	prev := uint64(0)
	for _, r := range recs {
		if r.LSN <= prev {
			t.Fatalf("LSNs not ascending: %d after %d", r.LSN, prev)
		}
		prev = r.LSN
	}
	// Caught up again.
	recs, err = c.Read(100)
	if err != nil || len(recs) != 0 {
		t.Fatalf("caught-up read = %d recs, %v", len(recs), err)
	}
}

func TestCursorNeverSplitsCommitGroup(t *testing.T) {
	w := newWAL(t, false)
	commitN(t, w, 1, 5) // group of 6 records
	commitN(t, w, 2, 5) // group of 6 records
	c := w.Cursor(1)
	// maxRecords = 2 lands mid-group: the batch must extend to the group's
	// commit marker rather than split it.
	recs, err := c.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("batch = %d records, want 6 (whole first group)", len(recs))
	}
	if recs[len(recs)-1].Op != OpCommit || recs[len(recs)-1].Txn != 1 {
		t.Fatalf("batch does not end at txn 1's commit: %+v", recs[len(recs)-1])
	}
	recs, err = c.Read(100)
	if err != nil || len(recs) != 6 {
		t.Fatalf("second batch = %d records, %v; want 6", len(recs), err)
	}
}

func TestCursorAbortHolesAreNotGaps(t *testing.T) {
	w := newWAL(t, false)
	commitN(t, w, 1, 2)
	// Aborted transaction burns LSNs without writing them.
	_ = w.BeginTxn(2)
	w.LogHeapInsert(storage.RID{Page: 9}, []byte("doomed"))
	w.LogHeapInsert(storage.RID{Page: 9, Slot: 1}, []byte("doomed too"))
	w.Abort()
	commitN(t, w, 3, 2)

	c := w.Cursor(1)
	var all []Record
	for {
		recs, err := c.Read(100)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		all = append(all, recs...)
	}
	if len(all) != 6 {
		t.Fatalf("read %d records, want 6 (two groups of 3)", len(all))
	}
}

func TestCursorCheckpointInteraction(t *testing.T) {
	w := newWAL(t, false)
	commitN(t, w, 1, 2)
	c := w.Cursor(1)
	recs, err := c.Read(100)
	if err != nil || len(recs) != 3 {
		t.Fatalf("pre-checkpoint read = %d recs, %v", len(recs), err)
	}

	// Checkpoint truncates everything the cursor has consumed: the cursor
	// carries on cleanly with records appended afterwards.
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitN(t, w, 2, 2)
	recs, err = c.Read(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("post-checkpoint read = %d recs, want 3", len(recs))
	}
	if recs[0].Txn != 2 {
		t.Fatalf("post-checkpoint records from txn %d, want 2", recs[0].Txn)
	}

	// A cursor still needing truncated records reports ErrGap, not silence.
	stale := w.Cursor(1)
	if _, err := stale.Read(100); !errors.Is(err, ErrGap) {
		t.Fatalf("stale cursor error = %v, want ErrGap", err)
	}
}

func TestCursorCheckpointRaceMidStream(t *testing.T) {
	w := newWAL(t, false)
	commitN(t, w, 1, 2)
	commitN(t, w, 2, 2)
	c := w.Cursor(1)
	// Consume only the first group.
	if recs, err := c.Read(1); err != nil || len(recs) != 3 {
		t.Fatalf("first group read = %d recs, %v", len(recs), err)
	}
	// Checkpoint destroys the second group before the cursor reads it.
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(100); !errors.Is(err, ErrGap) {
		t.Fatalf("error = %v, want ErrGap (unread group truncated away)", err)
	}
}

func TestCursorFromLSNSkipsPrefix(t *testing.T) {
	w := newWAL(t, false)
	commitN(t, w, 1, 2)
	mid := w.AppendedLSN()
	commitN(t, w, 2, 2)
	c := w.Cursor(mid + 1)
	recs, err := c.Read(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Txn != 2 {
		t.Fatalf("got %d records (first txn %d), want 3 from txn 2", len(recs), recs[0].Txn)
	}
}

func TestCursorTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.wal")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, w, 1, 2)
	commitN(t, w, 2, 2)
	size := w.Size()
	w.Close()

	// Tear the final frame: cut 3 bytes off the file.
	if err := os.Truncate(path, size-3); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	c := w2.Cursor(1)
	// The torn group's records must not ship: its commit marker is gone.
	recs, err := c.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[len(recs)-1].Txn != 1 {
		t.Fatalf("batch = %d records, want only txn 1's intact group", len(recs))
	}
	// The next read hits the torn group: it must error, not ship a
	// partial group.
	if _, err := c.Read(100); err == nil {
		t.Fatal("cursor shipped a torn commit group")
	}
}

func TestAppendWatchWakesOnCommit(t *testing.T) {
	w := newWAL(t, false)
	ch := w.AppendWatch()
	select {
	case <-ch:
		t.Fatal("watch fired before any commit")
	default:
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Error("watch never fired after commit")
		}
	}()
	commitN(t, w, 1, 1)
	<-done
}

func TestAppendGroupsRoundTrip(t *testing.T) {
	leader := newWAL(t, false)
	commitN(t, leader, 1, 3)
	commitN(t, leader, 2, 2)
	c := leader.Cursor(1)
	batch, err := c.Read(100)
	if err != nil {
		t.Fatal(err)
	}

	follower := newWAL(t, false)
	fresh, err := follower.AppendGroups(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != len(batch) {
		t.Fatalf("appended %d records, want %d", len(fresh), len(batch))
	}
	if follower.AppendedLSN() != leader.AppendedLSN() {
		t.Fatalf("follower appended LSN %d, leader %d", follower.AppendedLSN(), leader.AppendedLSN())
	}

	// Byte-identical logs: shipping preserves the on-disk encoding.
	lr, _ := leader.ReadAll()
	fr, _ := follower.ReadAll()
	if len(lr) != len(fr) {
		t.Fatalf("log lengths differ: %d vs %d", len(lr), len(fr))
	}
	for i := range lr {
		if lr[i].LSN != fr[i].LSN || lr[i].Txn != fr[i].Txn || lr[i].Op != fr[i].Op ||
			lr[i].RID != fr[i].RID || !bytes.Equal(lr[i].Data, fr[i].Data) {
			t.Fatalf("record %d differs: %+v vs %+v", i, lr[i], fr[i])
		}
	}

	// Re-delivery of the same batch is a no-op (reconnect overlap).
	fresh, err = follower.AppendGroups(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 0 {
		t.Fatalf("duplicate delivery appended %d records, want 0", len(fresh))
	}
}

func TestAppendGroupsRejectsPartialBatch(t *testing.T) {
	leader := newWAL(t, false)
	commitN(t, leader, 1, 2)
	c := leader.Cursor(1)
	batch, err := c.Read(100)
	if err != nil {
		t.Fatal(err)
	}
	follower := newWAL(t, false)
	if _, err := follower.AppendGroups(batch[:len(batch)-1]); err == nil {
		t.Fatal("AppendGroups accepted a batch without a commit marker")
	}
}

func TestReadOnlyWALRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ro.wal")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, w, 1, 2)
	w.Close()

	ro, err := Open(path, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if err := ro.BeginTxn(7); err != nil {
		t.Fatal(err)
	}
	ro.LogHeapInsert(storage.RID{Page: 1}, []byte("x"))
	if err := ro.Commit(); err == nil {
		t.Fatal("read-only WAL accepted a commit")
	}
	ro.Abort()
	if err := ro.Checkpoint(); err == nil {
		t.Fatal("read-only WAL accepted a checkpoint")
	}
	if _, err := ro.AppendGroups([]Record{{LSN: 99, Txn: 9, Op: OpCommit}}); err == nil {
		t.Fatal("read-only WAL accepted AppendGroups")
	}
	recs, err := ro.ReadAll()
	if err != nil || len(recs) != 3 {
		t.Fatalf("read-only ReadAll = %d recs, %v", len(recs), err)
	}
}

func TestRecordStreamRoundTrip(t *testing.T) {
	recs := []Record{
		{LSN: 1, Txn: 1, Op: OpHeapInsert, RID: storage.RID{Page: 3, Slot: 9}, Data: []byte("payload")},
		{LSN: 2, Txn: 1, Op: OpHeapDelete, RID: storage.RID{Page: 3, Slot: 9}},
		{LSN: 3, Txn: 1, Op: OpCommit},
	}
	enc := AppendRecordStream(nil, recs)
	got, rest, err := DecodeRecordStream(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("unexpected %d trailing bytes", len(rest))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].LSN != recs[i].LSN || got[i].Txn != recs[i].Txn || got[i].Op != recs[i].Op ||
			got[i].RID != recs[i].RID || !bytes.Equal(got[i].Data, recs[i].Data) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}

	// Trailing bytes beyond the stream are handed back for the caller
	// (future protocol fields), not rejected.
	enc2 := append(append([]byte(nil), enc...), 0xAA, 0xBB)
	_, rest, err = DecodeRecordStream(enc2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 {
		t.Fatalf("trailing bytes = %d, want 2", len(rest))
	}
}

func TestRecordStreamHostileCounts(t *testing.T) {
	// A count claiming far more records than the payload could hold must
	// fail fast instead of allocating.
	var b []byte
	b = appendUvarintForTest(b, 1<<40)
	if _, _, err := DecodeRecordStream(b); err == nil {
		t.Fatal("hostile count accepted")
	}
	// Data length overrunning the payload.
	recs := []Record{{LSN: 1, Txn: 1, Op: OpHeapInsert, Data: []byte("abc")}}
	enc := AppendRecordStream(nil, recs)
	if _, _, err := DecodeRecordStream(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated data accepted")
	}
}

func appendUvarintForTest(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}
