// Package wal implements the redo-only write-ahead log that makes
// committed transactions durable: heap mutations are buffered per
// transaction, written (with CRC framing) and optionally fsynced at commit,
// replayed idempotently at recovery via page-LSN guards, and truncated at
// checkpoints.
//
// The protocol pairs with the buffer pool's no-steal policy: pages dirtied
// by an uncommitted transaction never reach the device, so the log needs no
// undo information. Aborts are handled above the log by in-memory undo.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"tcodm/internal/obs"
	"tcodm/internal/storage"
)

// Op tags a log record's operation.
type Op uint8

const (
	// OpHeapInsert logs a heap record insertion.
	OpHeapInsert Op = iota + 1
	// OpHeapUpdate logs a heap record replacement.
	OpHeapUpdate
	// OpHeapDelete logs a heap record deletion.
	OpHeapDelete
	// OpCommit marks a transaction as committed; only records of
	// committed transactions are replayed.
	OpCommit
	// OpArchiveWrite logs a cold-archive block append: Data carries the
	// block's byte offset (8 bytes little-endian) followed by the exact
	// frame bytes, and RID is NilRID. The offset travels in Data rather
	// than the RID field because RID.Pack only round-trips 16-bit pages —
	// an archive byte offset would be silently truncated.
	OpArchiveWrite
	// OpEpoch logs a replication-epoch bump: Data is the new epoch (8
	// bytes little-endian), RID is NilRID, and the epoch's start LSN is
	// the record's own LSN minus one (the appended frontier at promotion).
	// It travels in its own [OpEpoch, OpCommit] group, so it replicates
	// to followers through the ordinary log stream and survives recovery
	// like any committed write.
	OpEpoch
)

// Record is one decoded log record.
type Record struct {
	LSN  uint64
	Txn  uint64
	Op   Op
	RID  storage.RID
	Data []byte
}

// Options configure a WAL.
type Options struct {
	// SyncOnCommit fsyncs the log at every commit (full durability).
	// When false, commits are durable only at the next checkpoint or
	// explicit sync — the classic group-commit trade-off.
	SyncOnCommit bool

	// ReadOnly opens the log for inspection only: appends, truncations
	// (including torn-tail repair during Replay) and checkpoints fail or
	// are skipped. A read-only WAL never mutates the file, so it is safe
	// on a directory another process is writing.
	ReadOnly bool
}

// File is the byte-level handle a WAL runs on. *os.File implements it; the
// fault package wraps one to inject torn appends and failed syncs, which is
// why the WAL goes through this seam rather than *os.File directly.
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
	Close() error
}

// WAL is the write-ahead log over a single file. It implements
// storage.RedoLogger; install it on the heap so mutations are captured.
type WAL struct {
	mu   sync.Mutex
	f    File
	path string
	opts Options

	nextLSN  uint64 // next LSN to assign
	appended uint64 // highest LSN written to the OS file
	durable  uint64 // highest LSN known synced

	txn     uint64   // active transaction (0 = none)
	pending []Record // buffered records of the active transaction
	size    int64    // current file size

	truncations uint64        // checkpoint epoch: bumped whenever the file is truncated to 0
	truncLSN    uint64        // highest LSN removed by the last checkpoint
	notify      chan struct{} // closed when new records reach the file

	met walMetrics
}

// walMetrics holds the log's instrumentation handles (nil = no-op).
// Latency histograms sit only where actual file I/O happens — commit
// appends and fsyncs — never on the per-record buffering path.
type walMetrics struct {
	appends     *obs.Counter   // commit-time append writes
	fsyncs      *obs.Counter   // fsync calls (commit + WAL-rule + checkpoint)
	appendBytes *obs.Counter   // total bytes appended
	appendNS    *obs.Histogram // append write latency
	fsyncNS     *obs.Histogram // fsync latency
	groupSize   *obs.Histogram // records per commit batch (group size)
}

// SetMetrics binds the log's instrumentation to reg under "wal.*" names.
// A nil registry disables instrumentation (the default).
func (w *WAL) SetMetrics(reg *obs.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if reg == nil {
		w.met = walMetrics{}
		return
	}
	w.met = walMetrics{
		appends:     reg.Counter("wal.appends"),
		fsyncs:      reg.Counter("wal.fsyncs"),
		appendBytes: reg.Counter("wal.append_bytes"),
		appendNS:    reg.Histogram("wal.append_ns"),
		fsyncNS:     reg.Histogram("wal.fsync_ns"),
		groupSize:   reg.Histogram("wal.commit_group"),
	}
}

// syncLocked runs one instrumented fsync.
func (w *WAL) syncLocked() error {
	start := time.Time{}
	if w.met.fsyncNS != nil {
		start = time.Now()
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.met.fsyncs.Inc()
	if !start.IsZero() {
		w.met.fsyncNS.Observe(time.Since(start))
	}
	return nil
}

// Open opens (creating if absent) the log file at path. With opts.ReadOnly
// the file is opened without write access and never created — a missing log
// reads as empty (the clean-shutdown state it represents).
func Open(path string, opts Options) (*WAL, error) {
	flags := os.O_RDWR | os.O_CREATE
	if opts.ReadOnly {
		flags = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		if opts.ReadOnly && os.IsNotExist(err) {
			w := OpenFile(emptyFile{}, 0, opts)
			w.path = path
			return w, nil
		}
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat: %w", err)
	}
	w := OpenFile(f, info.Size(), opts)
	w.path = path
	return w, nil
}

// emptyFile backs a read-only WAL whose log file does not exist: all reads
// see an empty log, all mutations fail.
type emptyFile struct{}

func (emptyFile) ReadAt(p []byte, off int64) (int, error) { return 0, io.EOF }
func (emptyFile) WriteAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("wal: log file does not exist (read-only)")
}
func (emptyFile) Sync() error { return nil }
func (emptyFile) Truncate(size int64) error {
	return fmt.Errorf("wal: log file does not exist (read-only)")
}
func (emptyFile) Close() error { return nil }

// OpenFile wraps an already-open log file handle of the given current size.
// It is the injection seam for tests that need to interpose on the log's
// I/O (see internal/fault); regular callers use Open.
func OpenFile(f File, size int64, opts Options) *WAL {
	return &WAL{f: f, opts: opts, nextLSN: 1, size: size}
}

// SetNextLSN moves the LSN counter past LSNs already used (called after
// recovery and when reopening a checkpointed database, so page LSNs on disk
// stay strictly below future LSNs).
func (w *WAL) SetNextLSN(lsn uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if lsn > w.nextLSN {
		w.nextLSN = lsn
	}
	if w.nextLSN-1 > w.appended {
		w.appended = w.nextLSN - 1
		w.durable = w.appended
		// Those LSNs were assigned before this file (or before its last
		// checkpoint), so no cursor can read them back out of it.
		w.truncLSN = w.appended
	}
}

// NextLSN returns the next LSN the log would assign.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Size returns the current log file size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// BeginTxn starts buffering for transaction id (non-zero).
func (w *WAL) BeginTxn(id uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.txn != 0 {
		return fmt.Errorf("wal: transaction %d already active", w.txn)
	}
	if id == 0 {
		return fmt.Errorf("wal: transaction id must be non-zero")
	}
	w.txn = id
	w.pending = w.pending[:0]
	return nil
}

// LogHeapInsert implements storage.RedoLogger.
func (w *WAL) LogHeapInsert(rid storage.RID, data []byte) uint64 {
	return w.buffer(OpHeapInsert, rid, data)
}

// LogHeapUpdate implements storage.RedoLogger.
func (w *WAL) LogHeapUpdate(rid storage.RID, data []byte) uint64 {
	return w.buffer(OpHeapUpdate, rid, data)
}

// LogHeapDelete implements storage.RedoLogger.
func (w *WAL) LogHeapDelete(rid storage.RID) uint64 {
	return w.buffer(OpHeapDelete, rid, nil)
}

// LogArchiveWrite buffers a cold-archive block append: the frame bytes as
// written at the given archive byte offset. Replayed (via ReplayWith) by
// rewriting the frame at the same offset — idempotent, like heap redo.
func (w *WAL) LogArchiveWrite(off uint64, frame []byte) uint64 {
	data := make([]byte, 8+len(frame))
	binary.LittleEndian.PutUint64(data, off)
	copy(data[8:], frame)
	return w.buffer(OpArchiveWrite, storage.NilRID, data)
}

func (w *WAL) buffer(op Op, rid storage.RID, data []byte) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	lsn := w.nextLSN
	w.nextLSN++
	cp := make([]byte, len(data))
	copy(cp, data)
	w.pending = append(w.pending, Record{LSN: lsn, Txn: w.txn, Op: op, RID: rid, Data: cp})
	return lsn
}

// Commit writes the buffered records plus a commit marker and (optionally)
// syncs. After Commit the transaction's effects survive a crash.
func (w *WAL) Commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.opts.ReadOnly {
		return fmt.Errorf("wal: commit on read-only log")
	}
	if w.txn == 0 {
		return fmt.Errorf("wal: commit without active transaction")
	}
	commit := Record{LSN: w.nextLSN, Txn: w.txn, Op: OpCommit}
	w.nextLSN++
	records := append(w.pending, commit)
	var buf []byte
	for _, r := range records {
		buf = appendRecord(buf, r)
	}
	appendStart := time.Time{}
	if w.met.appendNS != nil {
		appendStart = time.Now()
	}
	if _, err := w.f.WriteAt(buf, w.size); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if !appendStart.IsZero() {
		w.met.appendNS.Observe(time.Since(appendStart))
	}
	w.met.appends.Inc()
	w.met.appendBytes.Add(uint64(len(buf)))
	w.met.groupSize.Record(uint64(len(records)))
	w.size += int64(len(buf))
	w.appended = commit.LSN
	if w.opts.SyncOnCommit {
		if err := w.syncLocked(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		w.durable = w.appended
	}
	w.txn = 0
	w.pending = w.pending[:0]
	w.wakeLocked()
	return nil
}

// AppendEpochGroup appends a committed [OpEpoch, OpCommit] group carrying
// the given epoch and syncs it to stable storage — a promotion must not
// be forgettable. The group uses its own first LSN as the transaction id;
// the WAL never holds records of uncommitted transactions, so the id
// cannot collide with an uncommitted group during replay. Returns the
// commit LSN (the new appended frontier).
func (w *WAL) AppendEpochGroup(epoch uint64) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.opts.ReadOnly {
		return 0, fmt.Errorf("wal: epoch append on read-only log")
	}
	if w.txn != 0 {
		return 0, fmt.Errorf("wal: epoch append during active transaction %d", w.txn)
	}
	data := binary.LittleEndian.AppendUint64(nil, epoch)
	rec := Record{LSN: w.nextLSN, Txn: w.nextLSN, Op: OpEpoch, RID: storage.NilRID, Data: data}
	commit := Record{LSN: w.nextLSN + 1, Txn: rec.Txn, Op: OpCommit}
	w.nextLSN += 2
	buf := appendRecord(nil, rec)
	buf = appendRecord(buf, commit)
	if _, err := w.f.WriteAt(buf, w.size); err != nil {
		return 0, fmt.Errorf("wal: epoch append: %w", err)
	}
	w.met.appends.Inc()
	w.met.appendBytes.Add(uint64(len(buf)))
	w.size += int64(len(buf))
	w.appended = commit.LSN
	if err := w.syncLocked(); err != nil {
		return 0, fmt.Errorf("wal: epoch sync: %w", err)
	}
	w.durable = w.appended
	w.wakeLocked()
	return commit.LSN, nil
}

// Abort drops the buffered records of the active transaction.
func (w *WAL) Abort() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.txn = 0
	w.pending = w.pending[:0]
}

// EnsureDurable enforces the WAL rule for a page flush: everything logged
// up to lsn must be on stable storage first. LSNs belonging to the active
// uncommitted transaction cannot be made durable — that is a protocol
// violation (the no-steal policy should have prevented the flush).
func (w *WAL) EnsureDurable(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if lsn <= w.durable {
		return nil
	}
	if lsn <= w.appended {
		if err := w.syncLocked(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		w.durable = w.appended
		return nil
	}
	return fmt.Errorf("wal: WAL-rule violation: page LSN %d not yet appended (appended through %d)", lsn, w.appended)
}

// Checkpoint truncates the log. The caller must have flushed and synced all
// dirty pages first; the LSN counter keeps advancing across checkpoints.
func (w *WAL) Checkpoint() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.opts.ReadOnly {
		return fmt.Errorf("wal: checkpoint on read-only log")
	}
	if w.txn != 0 {
		return fmt.Errorf("wal: checkpoint during active transaction %d", w.txn)
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := w.syncLocked(); err != nil {
		return fmt.Errorf("wal: sync after truncate: %w", err)
	}
	w.size = 0
	w.durable = w.nextLSN - 1
	w.appended = w.nextLSN - 1
	w.truncations++
	w.truncLSN = w.appended
	return nil
}

// Close releases the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// --- Framing -------------------------------------------------------------

// Frame layout: [payloadLen uint32][crc32(payload) uint32][payload].
// Payload: [lsn uint64][txn uint64][op uint8][rid uint64][dataLen uint32][data].
func appendRecord(dst []byte, r Record) []byte {
	payload := make([]byte, 0, 29+len(r.Data))
	payload = binary.LittleEndian.AppendUint64(payload, r.LSN)
	payload = binary.LittleEndian.AppendUint64(payload, r.Txn)
	payload = append(payload, byte(r.Op))
	payload = binary.LittleEndian.AppendUint64(payload, r.RID.Pack())
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(r.Data)))
	payload = append(payload, r.Data...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

func decodeRecord(payload []byte) (Record, error) {
	if len(payload) < 29 {
		return Record{}, fmt.Errorf("wal: short record payload (%d bytes)", len(payload))
	}
	r := Record{
		LSN: binary.LittleEndian.Uint64(payload[0:]),
		Txn: binary.LittleEndian.Uint64(payload[8:]),
		Op:  Op(payload[16]),
		RID: storage.UnpackRID(binary.LittleEndian.Uint64(payload[17:])),
	}
	n := binary.LittleEndian.Uint32(payload[25:])
	if int(n) != len(payload)-29 {
		return Record{}, fmt.Errorf("wal: record data length mismatch: header %d, actual %d", n, len(payload)-29)
	}
	r.Data = append([]byte(nil), payload[29:]...)
	return r, nil
}

// ReadAll decodes every complete, checksum-valid record from the log,
// stopping silently at the first torn or corrupt frame (the crash tail).
func (w *WAL) ReadAll() ([]Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	records, _, err := w.readAllLocked()
	return records, err
}

// readAllLocked decodes the intact record prefix and returns it together
// with the byte offset where that prefix ends (the start of any torn or
// corrupt tail).
func (w *WAL) readAllLocked() ([]Record, int64, error) {
	data := make([]byte, w.size)
	if w.size > 0 {
		n, err := w.f.ReadAt(data, 0)
		if err != nil && err != io.EOF {
			return nil, 0, fmt.Errorf("wal: read: %w", err)
		}
		data = data[:n]
	}
	var out []Record
	off := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if off+8+n > len(data) {
			break // torn tail
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt tail
		}
		r, err := decodeRecord(payload)
		if err != nil {
			break
		}
		out = append(out, r)
		off += 8 + n
	}
	return out, int64(off), nil
}

// RecoveryStats summarizes a replay.
type RecoveryStats struct {
	Records   int    // records read from the log
	Committed int    // records belonging to committed transactions
	Replayed  int    // redo operations applied (page-LSN guard may no-op them)
	MaxLSN    uint64 // highest LSN seen
	TornBytes int64  // bytes of torn/corrupt tail truncated away

	// Epoch is the highest committed replication epoch replayed (0 when
	// the log holds no OpEpoch records) and EpochStart the appended
	// frontier at which that epoch began. The engine takes the max of
	// these against its checkpointed metadata: a crash between a
	// promotion's log append and its metadata flush must not forget the
	// epoch.
	Epoch      uint64
	EpochStart uint64
}

// Replay applies the redo records of committed transactions to the heap,
// in log order, and returns statistics. Call SetNextLSN(stats.MaxLSN+1)
// afterwards (Replay does it internally as well).
//
// A torn or corrupt tail (the bytes a crash left after the last intact
// record) is truncated away before replay: leaving it in place would make
// post-recovery commits append *behind* garbage that a future ReadAll
// stops at, silently losing them on the next crash.
//
// Replay handles heap records only; a log containing OpArchiveWrite records
// needs ReplayWith so the caller can say where archive frames go.
func (w *WAL) Replay(h *storage.Heap) (RecoveryStats, error) {
	return w.ReplayWith(h, nil)
}

// ReplayWith is Replay with a redo hook for cold-archive block writes:
// arcApply receives each committed OpArchiveWrite record's byte offset and
// frame, and must reproduce the frame at that offset (idempotently — the
// same record may be replayed again after a crash during recovery). A nil
// arcApply makes OpArchiveWrite an unknown op, matching Replay.
func (w *WAL) ReplayWith(h *storage.Heap, arcApply func(off uint64, frame []byte) error) (RecoveryStats, error) {
	w.mu.Lock()
	records, validEnd, err := w.readAllLocked()
	if err != nil {
		w.mu.Unlock()
		return RecoveryStats{}, err
	}
	var torn int64
	if validEnd < w.size {
		torn = w.size - validEnd
		if w.opts.ReadOnly {
			// Leave the torn tail in place: a read-only opener must not
			// mutate a file another process may still own. Replay still
			// ignores the tail (readAllLocked stops at it).
			w.size = validEnd
		} else {
			if err := w.f.Truncate(validEnd); err != nil {
				w.mu.Unlock()
				return RecoveryStats{}, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			if err := w.f.Sync(); err != nil {
				w.mu.Unlock()
				return RecoveryStats{}, fmt.Errorf("wal: sync after tail truncation: %w", err)
			}
			w.size = validEnd
		}
	}
	w.mu.Unlock()
	stats := RecoveryStats{Records: len(records), TornBytes: torn}
	committed := map[uint64]bool{}
	for _, r := range records {
		if r.Op == OpCommit {
			committed[r.Txn] = true
		}
		if r.LSN > stats.MaxLSN {
			stats.MaxLSN = r.LSN
		}
	}
	for _, r := range records {
		if !committed[r.Txn] || r.Op == OpCommit {
			continue
		}
		stats.Committed++
		var err error
		switch r.Op {
		case OpHeapInsert:
			err = h.RedoInsert(r.RID, r.Data, r.LSN)
		case OpHeapUpdate:
			err = h.RedoUpdate(r.RID, r.Data, r.LSN)
		case OpHeapDelete:
			err = h.RedoDelete(r.RID, r.LSN)
		case OpArchiveWrite:
			if arcApply == nil {
				err = fmt.Errorf("wal: archive record at LSN %d but no archive apply hook", r.LSN)
			} else if len(r.Data) < 8 {
				err = fmt.Errorf("wal: archive record at LSN %d too short (%d bytes)", r.LSN, len(r.Data))
			} else {
				err = arcApply(binary.LittleEndian.Uint64(r.Data), r.Data[8:])
			}
		case OpEpoch:
			if len(r.Data) < 8 {
				err = fmt.Errorf("wal: epoch record at LSN %d too short (%d bytes)", r.LSN, len(r.Data))
			} else if e := binary.LittleEndian.Uint64(r.Data); e > stats.Epoch {
				stats.Epoch = e
				stats.EpochStart = r.LSN - 1
			}
		default:
			err = fmt.Errorf("wal: unknown op %d at LSN %d", r.Op, r.LSN)
		}
		if err != nil {
			return stats, fmt.Errorf("wal: replay LSN %d: %w", r.LSN, err)
		}
		stats.Replayed++
	}
	w.SetNextLSN(stats.MaxLSN + 1)
	if len(records) > 0 {
		// The file still holds these records: cursors may read from the
		// first one onward, so pull the gap floor back below it (SetNextLSN
		// conservatively assumed nothing in the file was readable).
		w.mu.Lock()
		if records[0].LSN-1 < w.truncLSN {
			w.truncLSN = records[0].LSN - 1
		}
		w.mu.Unlock()
	}
	return stats, nil
}
