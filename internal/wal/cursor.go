package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrGap reports that a cursor's position has been truncated away by a
// checkpoint (or predates the log file entirely): the records it needs can
// no longer be read from the file. A replication follower hitting ErrGap
// must fall back to a snapshot bootstrap.
var ErrGap = errors.New("wal: cursor position truncated away (snapshot required)")

// Cursor is an incremental reader over the committed tail of the log. It is
// the leader-side feed for WAL shipping: each Read returns whole commit
// groups, in LSN order, never splitting a group across batches. A cursor
// tolerates checkpoints racing with it — truncation resets its file offset
// and, when the records it still needs were truncated away, Read returns
// ErrGap rather than silently skipping them.
//
// Cursors are owned by one goroutine each; the WAL's own mutex serializes
// them against appends and checkpoints.
type Cursor struct {
	w     *WAL
	off   int64  // file offset of the next unread frame
	next  uint64 // next LSN the consumer expects
	epoch uint64 // truncation epoch the offset is valid for
}

// Cursor opens a cursor whose first Read returns the earliest committed
// record with LSN >= fromLSN.
func (w *WAL) Cursor(fromLSN uint64) *Cursor {
	if fromLSN == 0 {
		fromLSN = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return &Cursor{w: w, next: fromLSN, epoch: w.truncations}
}

// Next returns the LSN the cursor expects to read next.
func (c *Cursor) Next() uint64 {
	c.w.mu.Lock()
	defer c.w.mu.Unlock()
	return c.next
}

// Read returns the next batch of committed records: at least one whole
// commit group when data is available, at most maxRecords except that the
// final group is always completed (the last record of a non-empty batch is
// guaranteed to be an OpCommit marker). An empty batch with a nil error
// means the cursor is caught up; pair it with AppendWatch to block for
// more. Read never returns records of uncommitted transactions because the
// file itself never contains them (commit groups are appended atomically).
func (c *Cursor) Read(maxRecords int) ([]Record, error) {
	if maxRecords <= 0 {
		maxRecords = 1
	}
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if c.epoch != w.truncations {
		// A checkpoint truncated the file since the last read: every offset
		// is invalid. Restart the scan from the top of the (new) file.
		c.off = 0
		c.epoch = w.truncations
	}
	if c.next <= w.truncLSN {
		return nil, ErrGap
	}
	if c.off >= w.size {
		return nil, nil // caught up
	}
	data := make([]byte, w.size-c.off)
	n, err := w.f.ReadAt(data, c.off)
	if err != nil && n < len(data) {
		return nil, fmt.Errorf("wal: cursor read: %w", err)
	}
	var out []Record
	off := 0
	for off+8 <= len(data) {
		if len(out) >= maxRecords && out[len(out)-1].Op == OpCommit {
			break
		}
		frameLen, payload, ok := frameAt(data, off)
		if !ok {
			break // torn or corrupt tail: treat as end of log
		}
		r, err := decodeRecord(payload)
		if err != nil {
			break
		}
		off += frameLen
		if r.LSN < c.next {
			// Already consumed (overlap after an offset reset); the commit
			// groups below c.next were fully delivered, so skipping whole
			// records here can never split a group.
			c.off += int64(frameLen)
			continue
		}
		out = append(out, r)
		c.next = r.LSN + 1
		c.off += int64(frameLen)
	}
	if len(out) > 0 && out[len(out)-1].Op != OpCommit {
		// The scan ran out of intact bytes mid-group. On a live log this
		// cannot happen (groups are appended under the same mutex), so the
		// tail must be torn garbage from a prior crash that recovery has
		// not repaired; surface it rather than ship a partial group.
		return nil, fmt.Errorf("wal: cursor hit incomplete commit group at LSN %d", out[len(out)-1].LSN)
	}
	return out, nil
}

// frameAt decodes the frame header at off and verifies its checksum,
// returning the total frame length and payload.
func frameAt(data []byte, off int) (int, []byte, bool) {
	n := int(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if n < 0 || off+8+n > len(data) {
		return 0, nil, false
	}
	payload := data[off+8 : off+8+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, false
	}
	return 8 + n, payload, true
}

// AppendWatch returns a channel that is closed the next time committed
// records reach the log file. Callers re-arm by calling it again; a typical
// tailing loop is: Read until empty, select on AppendWatch + timeout.
func (w *WAL) AppendWatch() <-chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.notify == nil {
		w.notify = make(chan struct{})
	}
	return w.notify
}

// wakeLocked fires the append notification. Caller holds w.mu.
func (w *WAL) wakeLocked() {
	if w.notify != nil {
		close(w.notify)
		w.notify = nil
	}
}

// AppendedLSN returns the highest LSN written to the log file.
func (w *WAL) AppendedLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// AppendGroups appends whole commit groups received from a replication
// leader to this (follower-local) log, preserving their original LSNs. The
// batch must be complete groups in ascending LSN order, each ending with an
// OpCommit marker — exactly what a Cursor.Read on the leader produced.
// Groups whose commit LSN is at or below the current appended LSN are
// skipped (reconnect overlap); the records actually appended are returned
// so the caller can apply exactly those.
func (w *WAL) AppendGroups(recs []Record) ([]Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.opts.ReadOnly {
		return nil, fmt.Errorf("wal: append on read-only log")
	}
	if w.txn != 0 {
		return nil, fmt.Errorf("wal: AppendGroups during active transaction %d", w.txn)
	}
	if len(recs) == 0 {
		return nil, nil
	}
	if recs[len(recs)-1].Op != OpCommit {
		return nil, fmt.Errorf("wal: AppendGroups batch does not end with a commit marker")
	}
	var fresh []Record
	var buf []byte
	prev := uint64(0)
	group := 0 // start index of the current group in recs
	for i, r := range recs {
		if r.LSN <= prev {
			return nil, fmt.Errorf("wal: AppendGroups LSNs not ascending (%d after %d)", r.LSN, prev)
		}
		prev = r.LSN
		if r.Op != OpCommit {
			continue
		}
		if r.LSN > w.appended {
			for _, g := range recs[group : i+1] {
				buf = appendRecord(buf, g)
				fresh = append(fresh, g)
			}
		}
		group = i + 1
	}
	if group != len(recs) {
		return nil, fmt.Errorf("wal: AppendGroups batch ends mid-group")
	}
	if len(buf) == 0 {
		return nil, nil // everything was overlap
	}
	if _, err := w.f.WriteAt(buf, w.size); err != nil {
		return nil, fmt.Errorf("wal: append: %w", err)
	}
	w.met.appends.Inc()
	w.met.appendBytes.Add(uint64(len(buf)))
	w.size += int64(len(buf))
	w.appended = fresh[len(fresh)-1].LSN
	if w.appended >= w.nextLSN {
		w.nextLSN = w.appended + 1
	}
	if w.opts.SyncOnCommit {
		if err := w.syncLocked(); err != nil {
			return nil, fmt.Errorf("wal: sync: %w", err)
		}
		w.durable = w.appended
	}
	w.wakeLocked()
	return fresh, nil
}
