package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"tcodm/internal/storage"
)

func newWAL(t *testing.T, sync bool) *WAL {
	t.Helper()
	w, err := Open(filepath.Join(t.TempDir(), "test.wal"), Options{SyncOnCommit: sync})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func TestCommitWritesRecords(t *testing.T) {
	w := newWAL(t, true)
	if err := w.BeginTxn(1); err != nil {
		t.Fatal(err)
	}
	rid := storage.RID{Page: 3, Slot: 1}
	l1 := w.LogHeapInsert(rid, []byte("hello"))
	l2 := w.LogHeapUpdate(rid, []byte("world"))
	l3 := w.LogHeapDelete(rid)
	if !(l1 < l2 && l2 < l3) {
		t.Fatalf("LSNs not monotone: %d %d %d", l1, l2, l3)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	records, err := w.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("records = %d, want 4 (3 ops + commit)", len(records))
	}
	if records[0].Op != OpHeapInsert || !bytes.Equal(records[0].Data, []byte("hello")) {
		t.Errorf("record 0 = %+v", records[0])
	}
	if records[3].Op != OpCommit || records[3].Txn != 1 {
		t.Errorf("record 3 = %+v", records[3])
	}
	if records[2].RID != rid {
		t.Errorf("delete RID = %v", records[2].RID)
	}
}

func TestAbortDropsRecords(t *testing.T) {
	w := newWAL(t, true)
	_ = w.BeginTxn(1)
	w.LogHeapInsert(storage.RID{Page: 1}, []byte("doomed"))
	w.Abort()
	records, err := w.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("aborted records reached the log: %d", len(records))
	}
	// A new transaction can begin after abort.
	if err := w.BeginTxn(2); err != nil {
		t.Fatal(err)
	}
	w.LogHeapInsert(storage.RID{Page: 1}, []byte("kept"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	records, _ = w.ReadAll()
	if len(records) != 2 {
		t.Fatalf("records = %d, want 2", len(records))
	}
}

func TestDoubleBeginAndCommitWithoutBegin(t *testing.T) {
	w := newWAL(t, false)
	if err := w.BeginTxn(0); err == nil {
		t.Error("zero txn id accepted")
	}
	if err := w.BeginTxn(1); err != nil {
		t.Fatal(err)
	}
	if err := w.BeginTxn(2); err == nil {
		t.Error("nested BeginTxn accepted")
	}
	w.Abort()
	if err := w.Commit(); err == nil {
		t.Error("commit without begin accepted")
	}
}

func TestEnsureDurable(t *testing.T) {
	w := newWAL(t, false) // no sync on commit
	_ = w.BeginTxn(1)
	lsn := w.LogHeapInsert(storage.RID{Page: 1}, []byte("x"))
	// Uncommitted LSN cannot be made durable: WAL-rule violation.
	if err := w.EnsureDurable(lsn); err == nil {
		t.Error("EnsureDurable of unappended LSN should fail")
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// Appended but unsynced: EnsureDurable syncs.
	if err := w.EnsureDurable(lsn); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := w.EnsureDurable(lsn); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointTruncates(t *testing.T) {
	w := newWAL(t, true)
	_ = w.BeginTxn(1)
	w.LogHeapInsert(storage.RID{Page: 1}, bytes.Repeat([]byte("z"), 100))
	_ = w.Commit()
	if w.Size() == 0 {
		t.Fatal("log empty after commit")
	}
	next := w.NextLSN()
	if err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Error("log not truncated")
	}
	if w.NextLSN() != next {
		t.Error("LSN counter reset by checkpoint")
	}
	// Checkpoint during a transaction is refused.
	_ = w.BeginTxn(2)
	if err := w.Checkpoint(); err == nil {
		t.Error("checkpoint during txn accepted")
	}
	w.Abort()
}

func newRecoveryHeap(t *testing.T) (*storage.Heap, *storage.BufferPool) {
	t.Helper()
	dev := storage.NewMemDevice()
	bp := storage.NewBufferPool(dev, 32)
	if err := storage.InitMeta(bp); err != nil {
		t.Fatal(err)
	}
	return storage.NewHeap(bp, nil), bp
}

func TestReplayCommittedOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.wal")
	w, err := Open(path, Options{SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	// Committed transaction.
	_ = w.BeginTxn(1)
	w.LogHeapInsert(storage.RID{Page: 1, Slot: 0}, []byte("committed"))
	_ = w.Commit()
	// Simulate a crash mid-transaction: records appended without commit.
	// (Write them via a second committed txn's framing trick: append
	// manually by beginning and never committing — buffered records never
	// reach the file, which is exactly the no-commit-no-log property.)
	_ = w.BeginTxn(2)
	w.LogHeapInsert(storage.RID{Page: 1, Slot: 1}, []byte("uncommitted"))
	w.Close() // crash: pending buffer lost

	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	h, _ := newRecoveryHeap(t)
	stats, err := w2.Replay(h)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 1 {
		t.Fatalf("replayed %d, want 1 (stats %+v)", stats.Replayed, stats)
	}
	got, err := h.Fetch(storage.RID{Page: 1, Slot: 0})
	if err != nil || string(got) != "committed" {
		t.Fatalf("replayed record: %q, %v", got, err)
	}
	if _, err := h.Fetch(storage.RID{Page: 1, Slot: 1}); err == nil {
		t.Error("uncommitted record materialized")
	}
	if w2.NextLSN() <= stats.MaxLSN {
		t.Error("NextLSN not advanced past replayed records")
	}
}

func TestReplayFullLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "l.wal")
	w, _ := Open(path, Options{SyncOnCommit: true})
	rid := storage.RID{Page: 1, Slot: 0}
	_ = w.BeginTxn(1)
	w.LogHeapInsert(rid, []byte("v1"))
	_ = w.Commit()
	_ = w.BeginTxn(2)
	w.LogHeapUpdate(rid, []byte("v2"))
	_ = w.Commit()
	_ = w.BeginTxn(3)
	w.LogHeapDelete(rid)
	_ = w.Commit()
	_ = w.BeginTxn(4)
	w.LogHeapInsert(storage.RID{Page: 1, Slot: 1}, []byte("other"))
	_ = w.Commit()
	w.Close()

	w2, _ := Open(path, Options{})
	defer w2.Close()
	h, _ := newRecoveryHeap(t)
	stats, err := w2.Replay(h)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 4 {
		t.Errorf("replayed %d, want 4", stats.Replayed)
	}
	if _, err := h.Fetch(rid); err == nil {
		t.Error("deleted record resurrected")
	}
	got, err := h.Fetch(storage.RID{Page: 1, Slot: 1})
	if err != nil || string(got) != "other" {
		t.Errorf("surviving record: %q, %v", got, err)
	}
}

func TestReplayIdempotentViaPageLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "i.wal")
	w, _ := Open(path, Options{SyncOnCommit: true})
	rid := storage.RID{Page: 1, Slot: 0}
	_ = w.BeginTxn(1)
	w.LogHeapInsert(rid, []byte("once"))
	_ = w.Commit()
	w.Close()

	w2, _ := Open(path, Options{})
	defer w2.Close()
	h, _ := newRecoveryHeap(t)
	if _, err := w2.Replay(h); err != nil {
		t.Fatal(err)
	}
	// Replaying again must not double-insert (page LSN guard).
	if _, err := w2.Replay(h); err != nil {
		t.Fatal(err)
	}
	n := 0
	_ = h.Scan(func(r storage.RID, data []byte) (bool, error) {
		n++
		return true, nil
	})
	if n != 1 {
		t.Fatalf("record count after double replay = %d, want 1", n)
	}
}

func TestTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	w, _ := Open(path, Options{SyncOnCommit: true})
	_ = w.BeginTxn(1)
	w.LogHeapInsert(storage.RID{Page: 1, Slot: 0}, []byte("good"))
	_ = w.Commit()
	w.Close()

	// Append garbage simulating a torn write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02})
	f.Close()

	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	records, err := w2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d, want 2 (op + commit)", len(records))
	}
}

func TestCorruptMiddleStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	w, _ := Open(path, Options{SyncOnCommit: true})
	_ = w.BeginTxn(1)
	w.LogHeapInsert(storage.RID{Page: 1, Slot: 0}, []byte("first"))
	_ = w.Commit()
	sizeAfterFirst := w.Size()
	_ = w.BeginTxn(2)
	w.LogHeapInsert(storage.RID{Page: 1, Slot: 1}, []byte("second"))
	_ = w.Commit()
	w.Close()

	// Flip a byte inside the second transaction's frames.
	data, _ := os.ReadFile(path)
	data[sizeAfterFirst+12] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	w2, _ := Open(path, Options{})
	defer w2.Close()
	records, err := w2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d, want 2 (corruption should stop the read)", len(records))
	}
}

func TestSetNextLSN(t *testing.T) {
	w := newWAL(t, false)
	w.SetNextLSN(100)
	if w.NextLSN() != 100 {
		t.Errorf("NextLSN = %d", w.NextLSN())
	}
	w.SetNextLSN(50) // never moves backwards
	if w.NextLSN() != 100 {
		t.Errorf("NextLSN moved backwards to %d", w.NextLSN())
	}
	// Durability marks track: an old page LSN from before a checkpoint
	// must be considered durable.
	if err := w.EnsureDurable(99); err != nil {
		t.Errorf("pre-existing LSN not durable: %v", err)
	}
}
