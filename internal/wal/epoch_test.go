package wal

import (
	"encoding/binary"
	"path/filepath"
	"testing"

	"tcodm/internal/storage"
)

func TestAppendEpochGroupWritesCommittedGroup(t *testing.T) {
	w := newWAL(t, true)
	if err := w.BeginTxn(1); err != nil {
		t.Fatal(err)
	}
	w.LogHeapInsert(storage.RID{Page: 1, Slot: 0}, []byte("before"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	lsn, err := w.AppendEpochGroup(7)
	if err != nil {
		t.Fatal(err)
	}
	records, err := w.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("records = %d, want 4 (insert+commit, epoch+commit)", len(records))
	}
	ep, cm := records[2], records[3]
	if ep.Op != OpEpoch || binary.LittleEndian.Uint64(ep.Data) != 7 {
		t.Fatalf("epoch record = %+v", ep)
	}
	if cm.Op != OpCommit || cm.Txn != ep.Txn || cm.LSN != lsn {
		t.Fatalf("epoch commit = %+v, group commit LSN %d", cm, lsn)
	}
	// The group's txn id is its own first LSN: collision-free by
	// construction against every other committed group in the log.
	if ep.Txn != ep.LSN {
		t.Fatalf("epoch txn id = %d, want own LSN %d", ep.Txn, ep.LSN)
	}
	if w.NextLSN() != lsn+1 {
		t.Fatalf("next LSN = %d, want %d", w.NextLSN(), lsn+1)
	}
}

func TestAppendEpochGroupRefusals(t *testing.T) {
	w := newWAL(t, true)
	if err := w.BeginTxn(1); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendEpochGroup(1); err == nil {
		t.Error("epoch append allowed during an active transaction")
	}
	w.Abort()
	if _, err := w.AppendEpochGroup(1); err != nil {
		t.Errorf("epoch append after abort: %v", err)
	}

	ro, err := Open(filepath.Join(t.TempDir(), "ro.wal"), Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.AppendEpochGroup(1); err == nil {
		t.Error("epoch append allowed on a read-only log")
	}
}

// TestReplayRecoversEpoch proves the durability path: an epoch appended
// just before a crash is replayed into RecoveryStats, with EpochStart
// pointing at the frontier the promotion happened on.
func TestReplayRecoversEpoch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "epoch.wal")
	w, err := Open(path, Options{SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BeginTxn(1); err != nil {
		t.Fatal(err)
	}
	w.LogHeapInsert(storage.RID{Page: 1, Slot: 0}, []byte("x"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	frontier := w.NextLSN() - 1
	if _, err := w.AppendEpochGroup(3); err != nil {
		t.Fatal(err)
	}
	// An older, superseded epoch later in the log must not win: replay
	// keeps the max, not the last.
	if _, err := w.AppendEpochGroup(2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(path, Options{SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	h, _ := newRecoveryHeap(t)
	stats, err := w2.Replay(h)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 3 {
		t.Fatalf("replayed epoch = %d, want 3", stats.Epoch)
	}
	if stats.EpochStart != frontier {
		t.Fatalf("epoch start = %d, want %d", stats.EpochStart, frontier)
	}
}
