package wal

import (
	"encoding/binary"
	"fmt"

	"tcodm/internal/storage"
)

// Record stream encoding — the payload of a replication LogBatch frame.
// Uvarint-based (unlike the fixed-width on-disk framing) because batches
// cross the wire: [count][per record: lsn, txn, op byte, packed rid,
// dataLen, data]. The frame layer's CRC trailer covers integrity; decode
// still guards every length against the remaining bytes so a hostile or
// corrupt payload cannot force a huge allocation.

// minStreamRecord is the smallest possible encoded record (five 1-byte
// uvarints), used to bound the count a payload could plausibly hold.
const minStreamRecord = 5

// AppendRecordStream appends the stream encoding of recs to dst.
func AppendRecordStream(dst []byte, recs []Record) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	for _, r := range recs {
		dst = binary.AppendUvarint(dst, r.LSN)
		dst = binary.AppendUvarint(dst, r.Txn)
		dst = append(dst, byte(r.Op))
		dst = binary.AppendUvarint(dst, r.RID.Pack())
		dst = binary.AppendUvarint(dst, uint64(len(r.Data)))
		dst = append(dst, r.Data...)
	}
	return dst
}

// DecodeRecordStream decodes a record stream produced by AppendRecordStream
// and returns any bytes that follow it. Trailing bytes are returned, not
// rejected: frame payloads embed the stream first so future protocol
// revisions can append fields that old decoders skip (the same discipline
// the wire package uses).
func DecodeRecordStream(b []byte) ([]Record, []byte, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("wal: stream: bad record count")
	}
	b = b[n:]
	if count > uint64(len(b)/minStreamRecord)+1 {
		return nil, nil, fmt.Errorf("wal: stream: record count %d exceeds payload", count)
	}
	recs := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		var r Record
		var err error
		if r.LSN, b, err = streamUvarint(b); err != nil {
			return nil, nil, fmt.Errorf("wal: stream: record %d lsn: %w", i, err)
		}
		if r.Txn, b, err = streamUvarint(b); err != nil {
			return nil, nil, fmt.Errorf("wal: stream: record %d txn: %w", i, err)
		}
		if len(b) == 0 {
			return nil, nil, fmt.Errorf("wal: stream: record %d truncated at op", i)
		}
		r.Op = Op(b[0])
		b = b[1:]
		var packed uint64
		if packed, b, err = streamUvarint(b); err != nil {
			return nil, nil, fmt.Errorf("wal: stream: record %d rid: %w", i, err)
		}
		r.RID = storage.UnpackRID(packed)
		var dlen uint64
		if dlen, b, err = streamUvarint(b); err != nil {
			return nil, nil, fmt.Errorf("wal: stream: record %d data length: %w", i, err)
		}
		if dlen > uint64(len(b)) {
			return nil, nil, fmt.Errorf("wal: stream: record %d data length %d exceeds payload", i, dlen)
		}
		r.Data = append([]byte(nil), b[:dlen]...)
		b = b[dlen:]
		recs = append(recs, r)
	}
	return recs, b, nil
}

func streamUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated uvarint")
	}
	return v, b[n:], nil
}
