package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"tcodm/internal/storage"
)

// TestCorruptionRobustness flips random bytes at random offsets of a valid
// log and checks the invariant recovery depends on: ReadAll never panics,
// never errors, and always returns a prefix of the intact record sequence
// up to (and excluding) the corruption — committed work before the damage
// is never lost, and garbage after it is never fabricated.
func TestCorruptionRobustness(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fuzz.wal")
	w, err := Open(path, Options{SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	const txns = 40
	var recordEnds []int64 // log size after each commit
	for i := 1; i <= txns; i++ {
		if err := w.BeginTxn(uint64(i)); err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 10+i)
		for j := range payload {
			payload[j] = byte(i)
		}
		w.LogHeapInsert(storage.RID{Page: 1, Slot: uint16(i)}, payload)
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
		recordEnds = append(recordEnds, w.Size())
	}
	w.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		corrupt := append([]byte(nil), intact...)
		off := rng.Intn(len(corrupt))
		old := corrupt[off]
		corrupt[off] ^= byte(1 + rng.Intn(255))
		if corrupt[off] == old {
			continue
		}
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("trial %d: open: %v", trial, err)
		}
		records, err := w2.ReadAll()
		w2.Close()
		if err != nil {
			t.Fatalf("trial %d: ReadAll errored: %v", trial, err)
		}
		// Every committed transaction whose bytes end before the damage
		// must be fully present (2 records each: op + commit).
		committedBefore := 0
		for _, end := range recordEnds {
			if end <= int64(off) {
				committedBefore++
			}
		}
		if len(records) < 2*committedBefore {
			t.Fatalf("trial %d: corruption at %d lost committed prefix: %d records, want >= %d",
				trial, off, len(records), 2*committedBefore)
		}
		// Returned records must be an exact prefix of the intact sequence.
		for i, r := range records {
			wantTxn := uint64(i/2 + 1)
			if r.Txn != wantTxn {
				t.Fatalf("trial %d: record %d has txn %d, want %d (fabricated data?)", trial, i, r.Txn, wantTxn)
			}
		}
	}
}

// FuzzRecordStream throws arbitrary bytes at the replication stream
// decoder: it must never panic or over-allocate, and whatever it does
// decode must survive a re-encode/re-decode round trip byte-identically
// (the property the follower's apply path depends on).
func FuzzRecordStream(f *testing.F) {
	seedRecs := []Record{
		{LSN: 1, Txn: 1, Op: OpHeapInsert, RID: storage.RID{Page: 2, Slot: 3}, Data: []byte("seed")},
		{LSN: 2, Txn: 1, Op: OpCommit},
	}
	f.Add(AppendRecordStream(nil, seedRecs))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, rest, err := DecodeRecordStream(data)
		if err != nil {
			return
		}
		enc := AppendRecordStream(nil, recs)
		got, rest2, err := DecodeRecordStream(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("canonical encoding left %d trailing bytes", len(rest2))
		}
		if len(got) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(got))
		}
		for i := range recs {
			if got[i].LSN != recs[i].LSN || got[i].Txn != recs[i].Txn ||
				got[i].Op != recs[i].Op || got[i].RID != recs[i].RID ||
				string(got[i].Data) != string(recs[i].Data) {
				t.Fatalf("record %d changed in round trip: %+v -> %+v", i, recs[i], got[i])
			}
		}
		_ = rest
	})
}

// TestTruncationRobustness cuts the log at every byte boundary of the first
// few records and checks the same prefix property.
func TestTruncationRobustness(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.wal")
	w, _ := Open(path, Options{SyncOnCommit: true})
	for i := 1; i <= 5; i++ {
		_ = w.BeginTxn(uint64(i))
		w.LogHeapInsert(storage.RID{Page: 1, Slot: uint16(i)}, []byte{byte(i)})
		_ = w.Commit()
	}
	w.Close()
	intact, _ := os.ReadFile(path)

	for cut := 0; cut <= len(intact); cut++ {
		if err := os.WriteFile(path, intact[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		records, err := w2.ReadAll()
		w2.Close()
		if err != nil {
			t.Fatalf("cut %d: ReadAll: %v", cut, err)
		}
		for i, r := range records {
			if r.Txn != uint64(i/2+1) {
				t.Fatalf("cut %d: record %d txn %d", cut, i, r.Txn)
			}
		}
	}
}
