package wire

import (
	"testing"
	"time"

	"tcodm/internal/obs"
	"tcodm/internal/value"
)

// TestQueryTraceRoundTrip: the trace id survives encode/decode on both
// query-class frames, and a zero id is omitted entirely (the payload is
// byte-identical to the untraced encoding).
func TestQueryTraceRoundTrip(t *testing.T) {
	text, trace, err := DecodeQueryTrace(EncodeQueryTrace("SELECT ALL FROM Design", 0xDEADBEEF))
	if err != nil || text != "SELECT ALL FROM Design" || trace != 0xDEADBEEF {
		t.Fatalf("query: %q trace=%d, %v", text, trace, err)
	}

	if got, want := EncodeQueryTrace("q", 0), EncodeQuery("q"); string(got) != string(want) {
		t.Fatalf("trace=0 must encode identically to the untraced payload: %x vs %x", got, want)
	}

	params := []value.V{value.Int(7), value.String_("x")}
	etext, eparams, etrace, err := DecodeExecTrace(EncodeExecTrace("SELECT $1", params, 99))
	if err != nil || etext != "SELECT $1" || etrace != 99 || len(eparams) != 2 {
		t.Fatalf("exec: %q trace=%d params=%d, %v", etext, etrace, len(eparams), err)
	}
}

// TestQueryTraceVersionCompat: old decoders read the known fields from the
// front of the payload and ignore trailing bytes, so a traced payload must
// still decode with the legacy functions — and a legacy payload must
// decode as trace 0 with the new ones.
func TestQueryTraceVersionCompat(t *testing.T) {
	// New encoder -> old decoder.
	text, err := DecodeQuery(EncodeQueryTrace("SELECT 1", 12345))
	if err != nil || text != "SELECT 1" {
		t.Fatalf("old DecodeQuery on traced payload: %q, %v", text, err)
	}
	// Old encoder -> new decoder.
	text, trace, err := DecodeQueryTrace(EncodeQuery("SELECT 2"))
	if err != nil || text != "SELECT 2" || trace != 0 {
		t.Fatalf("new DecodeQueryTrace on legacy payload: %q trace=%d, %v", text, trace, err)
	}

	params := []value.V{value.Bool(true)}
	etext, eparams, err := DecodeExec(EncodeExecTrace("q", params, 777))
	if err != nil || etext != "q" || len(eparams) != 1 {
		t.Fatalf("old DecodeExec on traced payload: %q params=%d, %v", etext, len(eparams), err)
	}
	etext, eparams, etrace, err := DecodeExecTrace(EncodeExec("q2", params))
	if err != nil || etext != "q2" || etrace != 0 || len(eparams) != 1 {
		t.Fatalf("new DecodeExecTrace on legacy payload: %q trace=%d, %v", etext, etrace, err)
	}
}

// TestResultDoneTraceBlock: the trailing accounting block carries the
// trace id plus all four resource counters, is omitted when everything is
// zero, and errors loudly on truncation instead of silently dropping
// counters.
func TestResultDoneTraceBlock(t *testing.T) {
	done := ResultDone{
		Plan:    "scan",
		Rows:    2,
		Elapsed: 5 * time.Millisecond,
		Trace:   42,
		Res:     obs.Resources{Pages: 10, WALBytes: 128, ChainSteps: 3, Atoms: 7},
	}
	got, err := DecodeResultDone(EncodeResultDone(done))
	if err != nil || got != done {
		t.Fatalf("done round trip: %+v, %v", got, err)
	}

	// Zero trace + zero resources: block omitted, legacy-shaped payload.
	plain := ResultDone{Plan: "p", Rows: 1, Elapsed: time.Millisecond}
	if gp, err := DecodeResultDone(EncodeResultDone(plain)); err != nil || gp != plain {
		t.Fatalf("plain done: %+v, %v", gp, err)
	}

	// Resources without a trace id still travel (accounting is useful even
	// for untraced queries).
	resOnly := ResultDone{Plan: "p", Res: obs.Resources{Atoms: 1}}
	if gr, err := DecodeResultDone(EncodeResultDone(resOnly)); err != nil || gr != resOnly {
		t.Fatalf("res-only done: %+v, %v", gr, err)
	}

	// Truncating the block mid-way must error: the block is all-or-nothing.
	enc := EncodeResultDone(done)
	for cut := 1; cut < 4; cut++ {
		if _, err := DecodeResultDone(enc[:len(enc)-cut]); err == nil {
			t.Fatalf("expected error for block truncated by %d bytes", cut)
		}
	}
}

// TestTrailingTraceCorruption: a malformed trailing uvarint is a protocol
// error, not a silent zero.
func TestTrailingTraceCorruption(t *testing.T) {
	p := EncodeQuery("q")
	p = append(p, 0x80) // unterminated uvarint
	if _, _, err := DecodeQueryTrace(p); err == nil {
		t.Fatal("expected error for corrupt trailing trace id")
	}
}
