package wire

import (
	"bytes"
	"testing"

	"tcodm/internal/obs"
)

func TestReplicationFrameRoundTrip(t *testing.T) {
	p := EncodeSubscribe(42)
	lsn, err := DecodeSubscribe(p)
	if err != nil || lsn != 42 {
		t.Fatalf("Subscribe round trip = %d, %v", lsn, err)
	}

	p = EncodeWatermark(1234, 9876)
	wm, clock, err := DecodeWatermark(p)
	if err != nil || wm != 1234 || clock != 9876 {
		t.Fatalf("Watermark round trip = %d, %d, %v", wm, clock, err)
	}

	p = EncodeSnapshotOffer(77, 1<<20)
	start, size, err := DecodeSnapshotOffer(p)
	if err != nil || start != 77 || size != 1<<20 {
		t.Fatalf("SnapshotOffer round trip = %d, %d, %v", start, size, err)
	}

	digest := bytes.Repeat([]byte{0xAB}, 32)
	p = EncodeSnapshotDone(digest)
	got, err := DecodeSnapshotDone(p)
	if err != nil || !bytes.Equal(got, digest) {
		t.Fatalf("SnapshotDone round trip = %x, %v", got, err)
	}
}

func TestReplicationFramesRejectTruncation(t *testing.T) {
	if _, err := DecodeSubscribe(nil); err == nil {
		t.Error("DecodeSubscribe accepted empty payload")
	}
	if _, _, err := DecodeWatermark(EncodeWatermark(5, 6)[:1]); err == nil {
		t.Error("DecodeWatermark accepted truncated payload")
	}
	if _, _, err := DecodeSnapshotOffer(nil); err == nil {
		t.Error("DecodeSnapshotOffer accepted empty payload")
	}
	if _, err := DecodeSnapshotDone([]byte{0xFF}); err == nil {
		t.Error("DecodeSnapshotDone accepted corrupt payload")
	}
}

// TestReplicationFramesIgnoreTrailing checks the trailing-field discipline:
// a future revision may append fields, and today's decoders must not choke.
func TestReplicationFramesIgnoreTrailing(t *testing.T) {
	p := append(EncodeSubscribe(42), 0x01, 0x02)
	if lsn, err := DecodeSubscribe(p); err != nil || lsn != 42 {
		t.Fatalf("Subscribe with trailing bytes = %d, %v", lsn, err)
	}
	p = append(EncodeWatermark(7, 8), 0x09)
	if wm, clock, err := DecodeWatermark(p); err != nil || wm != 7 || clock != 8 {
		t.Fatalf("Watermark with trailing bytes = %d, %d, %v", wm, clock, err)
	}
}

func TestResultDoneWatermark(t *testing.T) {
	// Watermark alone forces the trace block out as zeros, keeping field
	// positions unambiguous.
	d := ResultDone{Plan: "scan", Rows: 3, Elapsed: 5, Watermark: 99}
	got, err := DecodeResultDone(EncodeResultDone(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.Watermark != 99 || got.Trace != 0 || !got.Res.IsZero() {
		t.Fatalf("decoded = %+v", got)
	}

	// Watermark together with a full trace block.
	d = ResultDone{
		Plan: "scan", Rows: 3, Elapsed: 5, Trace: 11,
		Res:       obs.Resources{Pages: 1, WALBytes: 2, ChainSteps: 3, Atoms: 4},
		Watermark: 1234,
	}
	got, err = DecodeResultDone(EncodeResultDone(d))
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("decoded %+v, want %+v", got, d)
	}

	// Absent watermark decodes as zero (old encoder, new decoder).
	d = ResultDone{Plan: "scan", Rows: 1, Trace: 7, Res: obs.Resources{Pages: 2}}
	got, err = DecodeResultDone(EncodeResultDone(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.Watermark != 0 {
		t.Fatalf("watermark fabricated: %+v", got)
	}
}
