// Package wire defines the binary protocol the tcodm query service speaks:
// length-prefixed, versioned frames over a byte stream. Every frame is
//
//	uint32  length   big-endian; bytes following the prefix = 2 + len(payload)
//	byte    version  protocol version (currently 1)
//	byte    type     frame type
//	[]byte  payload  type-specific encoding
//
// Values travel in the engine's compact record encoding
// (value.AppendRecord); strings and counts are uvarint-length-prefixed.
// Decoding is defensive end to end: malformed lengths, truncated frames,
// and hostile counts error out without panicking and without allocating
// more than the bytes actually received (fuzzed in fuzz_test.go).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version this package encodes.
const Version = 1

// MaxPayload bounds a single frame's payload: large results are streamed
// as many bounded row batches, so no legitimate frame approaches this.
const MaxPayload = 8 << 20

// headerLen is the fixed frame overhead past the length prefix.
const headerLen = 2

// Frame types. Client-to-server frames sit below 0x20, server-to-client
// frames at or above it.
const (
	// FrameHello opens a session: client banner string.
	FrameHello byte = 0x01
	// FrameQuery runs a TMQL statement: query text.
	FrameQuery byte = 0x02
	// FrameExec runs parameterized TMQL: text + bound parameter values.
	FrameExec byte = 0x03
	// FrameOption sets one session option: key and value strings.
	FrameOption byte = 0x04
	// FramePing probes liveness; the payload is echoed back in the Pong.
	FramePing byte = 0x05
	// FrameClose announces an orderly client shutdown (empty payload).
	FrameClose byte = 0x06

	// FrameWelcome acknowledges Hello: server banner + session id.
	FrameWelcome byte = 0x20
	// FrameResultHeader starts a result: column names.
	FrameResultHeader byte = 0x21
	// FrameResultRows carries one bounded batch of result rows.
	FrameResultRows byte = 0x22
	// FrameResultDone ends a result: plan, row/molecule totals, elapsed.
	FrameResultDone byte = 0x23
	// FrameError reports a failure: code, message, detail.
	FrameError byte = 0x24
	// FramePong answers a Ping, echoing its payload.
	FramePong byte = 0x25
	// FrameAck acknowledges an Option, echoing the effective value.
	FrameAck byte = 0x26
)

// Error codes carried by FrameError.
const (
	// CodeQuery: the query failed (parse, analysis, or execution); the
	// session remains usable.
	CodeQuery uint16 = 1
	// CodeProtocol: the peer sent a malformed or unexpected frame; the
	// connection is closed.
	CodeProtocol uint16 = 2
	// CodeTimeout: the query exceeded its deadline or was cancelled.
	CodeTimeout uint16 = 3
	// CodeDraining: the server is shutting down and accepts no new work.
	CodeDraining uint16 = 4
	// CodeVersion: the client's protocol version is unsupported.
	CodeVersion uint16 = 5
	// CodeBusy: the server's connection limit is reached; dial again later.
	CodeBusy uint16 = 6
)

// Frame is one decoded protocol frame.
type Frame struct {
	Version byte
	Type    byte
	Payload []byte
}

// ErrFrameTooLarge reports a length prefix beyond MaxPayload.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// AppendFrame appends the encoded frame to dst and returns it.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(headerLen+len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, Version, typ)
	return append(dst, payload...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrFrameTooLarge
	}
	_, err := w.Write(AppendFrame(make([]byte, 0, 4+headerLen+len(payload)), typ, payload))
	return err
}

// ReadFrame reads one frame from r. The allocation for the payload is
// bounded by the declared length, which is itself bounded by MaxPayload —
// a hostile length prefix cannot force a large allocation beyond that cap.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < headerLen {
		return Frame{}, fmt.Errorf("wire: frame length %d below header size", n)
	}
	if n > headerLen+MaxPayload {
		return Frame{}, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, fmt.Errorf("wire: truncated frame: %w", err)
	}
	f := Frame{Version: buf[0], Type: buf[1], Payload: buf[2:]}
	if f.Version != Version {
		return f, fmt.Errorf("wire: unsupported protocol version %d", f.Version)
	}
	return f, nil
}

// DecodeFrame decodes one frame from the front of buf, returning the
// frame and the bytes consumed. It is ReadFrame over a byte slice — the
// fuzzing entry point — and never allocates: the payload aliases buf.
func DecodeFrame(buf []byte) (Frame, int, error) {
	if len(buf) < 4 {
		return Frame{}, 0, fmt.Errorf("wire: short frame prefix (%d bytes)", len(buf))
	}
	n := binary.BigEndian.Uint32(buf)
	if n < headerLen {
		return Frame{}, 0, fmt.Errorf("wire: frame length %d below header size", n)
	}
	if n > headerLen+MaxPayload {
		return Frame{}, 0, ErrFrameTooLarge
	}
	end := 4 + int(n)
	if end > len(buf) {
		return Frame{}, 0, fmt.Errorf("wire: truncated frame (need %d bytes, have %d)", end, len(buf))
	}
	f := Frame{Version: buf[4], Type: buf[5], Payload: buf[6:end]}
	if f.Version != Version {
		return f, end, fmt.Errorf("wire: unsupported protocol version %d", f.Version)
	}
	return f, end, nil
}
