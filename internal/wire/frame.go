// Package wire defines the binary protocol the tcodm query service speaks:
// length-prefixed, versioned frames over a byte stream. Every version-2
// frame is
//
//	uint32  length   big-endian; bytes following the prefix = 2 + len(payload) + 4
//	byte    version  protocol version (currently 2)
//	byte    type     frame type
//	[]byte  payload  type-specific encoding
//	uint32  crc      big-endian CRC-32C over version|type|payload
//
// The checksum turns silent byte corruption on the link into a detected
// transport error: a flipped bit anywhere in the framed region fails the
// CRC and the connection is torn down instead of a mangled query or
// result being acted on. Version-1 frames (no trailer) are still read for
// compatibility; writers emit version 2.
//
// Values travel in the engine's compact record encoding
// (value.AppendRecord); strings and counts are uvarint-length-prefixed.
// Decoding is defensive end to end: malformed lengths, truncated frames,
// and hostile counts error out without panicking and without allocating
// more than the bytes actually received (fuzzed in fuzz_test.go).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the protocol version this package encodes.
const Version = 2

// VersionLegacy is the checksum-free version 1, still accepted on read.
const VersionLegacy = 1

// MaxPayload bounds a single frame's payload: large results are streamed
// as many bounded row batches, so no legitimate frame approaches this.
const MaxPayload = 8 << 20

// headerLen is the fixed frame overhead past the length prefix.
const headerLen = 2

// crcLen is the version-2 integrity trailer size.
const crcLen = 4

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame types. Client-to-server frames sit below 0x20, server-to-client
// frames at or above it.
const (
	// FrameHello opens a session: client banner string.
	FrameHello byte = 0x01
	// FrameQuery runs a TMQL statement: query text.
	FrameQuery byte = 0x02
	// FrameExec runs parameterized TMQL: text + bound parameter values.
	FrameExec byte = 0x03
	// FrameOption sets one session option: key and value strings.
	FrameOption byte = 0x04
	// FramePing probes liveness; the payload is echoed back in the Pong.
	FramePing byte = 0x05
	// FrameClose announces an orderly client shutdown (empty payload).
	FrameClose byte = 0x06
	// FrameSubscribe asks the server to switch this connection into a
	// replication feed starting at a given LSN (see internal/repl).
	FrameSubscribe byte = 0x07
	// FrameAdmin carries an operator command ("promote", "epoch"); the
	// server answers with Ack (result text) or Error. Servers that expose
	// no admin hook refuse it with CodeQuery, leaving the session usable.
	FrameAdmin byte = 0x08

	// FrameWelcome acknowledges Hello: server banner + session id.
	FrameWelcome byte = 0x20
	// FrameResultHeader starts a result: column names.
	FrameResultHeader byte = 0x21
	// FrameResultRows carries one bounded batch of result rows.
	FrameResultRows byte = 0x22
	// FrameResultDone ends a result: plan, row/molecule totals, elapsed.
	FrameResultDone byte = 0x23
	// FrameError reports a failure: code, message, detail.
	FrameError byte = 0x24
	// FramePong answers a Ping, echoing its payload.
	FramePong byte = 0x25
	// FrameAck acknowledges an Option, echoing the effective value.
	FrameAck byte = 0x26
	// FrameLogBatch carries whole WAL commit groups to a subscriber.
	FrameLogBatch byte = 0x27
	// FrameWatermark reports the leader's appended LSN and clock — sent
	// after each batch and as an idle heartbeat so followers can measure
	// staleness even when no writes are happening.
	FrameWatermark byte = 0x28
	// FrameSnapshotOffer tells a subscriber its requested LSN is gone
	// (checkpoint-truncated) and a full snapshot follows.
	FrameSnapshotOffer byte = 0x29
	// FrameSnapshotChunk carries one bounded run of snapshot bytes.
	FrameSnapshotChunk byte = 0x2A
	// FrameSnapshotDone ends a snapshot; log batches follow from the
	// offer's start LSN.
	FrameSnapshotDone byte = 0x2B
	// FrameFence tells a subscriber it may not be served from its current
	// history: the payload carries the source's epoch and epoch-start LSN
	// so the subscriber can decide between self-fencing (it is the stale
	// one) and a snapshot rejoin (its history diverged).
	FrameFence byte = 0x2C
)

// Error codes carried by FrameError.
const (
	// CodeQuery: the query failed (parse, analysis, or execution); the
	// session remains usable.
	CodeQuery uint16 = 1
	// CodeProtocol: the peer sent a malformed or unexpected frame; the
	// connection is closed.
	CodeProtocol uint16 = 2
	// CodeTimeout: the query exceeded its deadline or was cancelled.
	CodeTimeout uint16 = 3
	// CodeDraining: the server is shutting down and accepts no new work.
	CodeDraining uint16 = 4
	// CodeVersion: the client's protocol version is unsupported.
	CodeVersion uint16 = 5
	// CodeBusy: the server's connection limit is reached; dial again later.
	CodeBusy uint16 = 6
	// CodeStale: a follower cannot satisfy the session's max-staleness
	// bound; retry on the leader or relax the bound.
	CodeStale uint16 = 7
	// CodeReadOnly: the statement writes but this server is a read-only
	// follower; send writes to the leader.
	CodeReadOnly uint16 = 8
	// CodeFenced: the peer's replication epoch is behind (or its history
	// diverged from) this server's; it must not act as — or on behalf
	// of — a leader until it rejoins at the current epoch.
	CodeFenced uint16 = 9
)

// Frame is one decoded protocol frame.
type Frame struct {
	Version byte
	Type    byte
	Payload []byte
}

// ErrFrameTooLarge reports a length prefix beyond MaxPayload.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// ErrChecksum reports a version-2 frame whose CRC trailer does not match
// its content: the bytes were corrupted in transit. The connection is not
// recoverable — the stream position is untrustworthy.
var ErrChecksum = errors.New("wire: frame checksum mismatch")

// AppendFrame appends the encoded version-2 frame to dst and returns it.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(headerLen+len(payload)+crcLen))
	dst = append(dst, hdr[:]...)
	body := len(dst)
	dst = append(dst, Version, typ)
	dst = append(dst, payload...)
	var crc [crcLen]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(dst[body:], castagnoli))
	return append(dst, crc[:]...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrFrameTooLarge
	}
	_, err := w.Write(AppendFrame(make([]byte, 0, 4+headerLen+len(payload)+crcLen), typ, payload))
	return err
}

// checkBody validates the framed region (version|type|payload[|crc]) and
// splits out the payload. buf is the n bytes following the length prefix.
func checkBody(buf []byte) (Frame, error) {
	f := Frame{Version: buf[0], Type: buf[1]}
	switch f.Version {
	case Version:
		if len(buf) < headerLen+crcLen {
			return f, fmt.Errorf("wire: frame too short for checksum trailer (%d bytes)", len(buf))
		}
		body := buf[:len(buf)-crcLen]
		want := binary.BigEndian.Uint32(buf[len(buf)-crcLen:])
		if crc32.Checksum(body, castagnoli) != want {
			return f, ErrChecksum
		}
		f.Payload = body[headerLen:]
	case VersionLegacy:
		f.Payload = buf[headerLen:]
	default:
		return f, fmt.Errorf("wire: unsupported protocol version %d", f.Version)
	}
	return f, nil
}

// ReadFrame reads one frame from r. The allocation for the payload is
// bounded by the declared length, which is itself bounded by MaxPayload —
// a hostile length prefix cannot force a large allocation beyond that cap.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < headerLen {
		return Frame{}, fmt.Errorf("wire: frame length %d below header size", n)
	}
	if n > headerLen+MaxPayload+crcLen {
		return Frame{}, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return checkBody(buf)
}

// DecodeFrame decodes one frame from the front of buf, returning the
// frame and the bytes consumed. It is ReadFrame over a byte slice — the
// fuzzing entry point — and never allocates: the payload aliases buf.
func DecodeFrame(buf []byte) (Frame, int, error) {
	if len(buf) < 4 {
		return Frame{}, 0, fmt.Errorf("wire: short frame prefix (%d bytes)", len(buf))
	}
	n := binary.BigEndian.Uint32(buf)
	if n < headerLen {
		return Frame{}, 0, fmt.Errorf("wire: frame length %d below header size", n)
	}
	if n > headerLen+MaxPayload+crcLen {
		return Frame{}, 0, ErrFrameTooLarge
	}
	end := 4 + int(n)
	if end > len(buf) {
		return Frame{}, 0, fmt.Errorf("wire: truncated frame (need %d bytes, have %d)", end, len(buf))
	}
	f, err := checkBody(buf[4:end])
	return f, end, err
}
