package wire

import (
	"bytes"
	"testing"
)

func TestWelcomeInfoRoundTrip(t *testing.T) {
	in := WelcomeInfo{Banner: "srv/1", Session: 42, Epoch: 7, Writable: true}
	got, err := DecodeWelcomeInfo(EncodeWelcomeInfo(in))
	if err != nil || got != in {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	// Old encoder, new decoder: epoch and writable default to zero values.
	got, err = DecodeWelcomeInfo(EncodeWelcome("old", 9))
	if err != nil || got.Banner != "old" || got.Session != 9 || got.Epoch != 0 || got.Writable {
		t.Fatalf("legacy welcome = %+v, %v", got, err)
	}
	// New encoder, old decoder: front fields still parse.
	banner, sid, err := DecodeWelcome(EncodeWelcomeInfo(in))
	if err != nil || banner != "srv/1" || sid != 42 {
		t.Fatalf("old decoder on new payload = %q, %d, %v", banner, sid, err)
	}
}

func TestSubscribeReqRoundTrip(t *testing.T) {
	in := SubscribeReq{FromLSN: 101, Epoch: 3, Flags: SubscribeFlagSnapshot}
	got, err := DecodeSubscribeReq(EncodeSubscribeReq(in))
	if err != nil || got != in {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	// Legacy one-field Subscribe decodes with zero epoch and flags.
	got, err = DecodeSubscribeReq(EncodeSubscribe(55))
	if err != nil || got.FromLSN != 55 || got.Epoch != 0 || got.Flags != 0 {
		t.Fatalf("legacy subscribe = %+v, %v", got, err)
	}
	// Legacy decoder reads the LSN off a new payload.
	if lsn, err := DecodeSubscribe(EncodeSubscribeReq(in)); err != nil || lsn != 101 {
		t.Fatalf("old decoder on new payload = %d, %v", lsn, err)
	}
	if _, err := DecodeSubscribeReq(nil); err == nil {
		t.Error("DecodeSubscribeReq accepted empty payload")
	}
}

func TestWatermarkInfoRoundTrip(t *testing.T) {
	dig := bytes.Repeat([]byte{0x5A}, StoreDigestLen)
	in := WatermarkInfo{LSN: 99, Clock: 1234, Epoch: 6, Digest: dig}
	got, err := DecodeWatermarkInfo(EncodeWatermarkInfo(in))
	if err != nil || got.LSN != 99 || got.Clock != 1234 || got.Epoch != 6 || !bytes.Equal(got.Digest, dig) {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	// No digest: nothing trailing, digest stays nil.
	in.Digest = nil
	got, err = DecodeWatermarkInfo(EncodeWatermarkInfo(in))
	if err != nil || got.Digest != nil || got.Epoch != 6 {
		t.Fatalf("digestless round trip = %+v, %v", got, err)
	}
	// A wrong-length digest is never emitted and never decoded as one.
	in.Digest = []byte{1, 2, 3}
	got, err = DecodeWatermarkInfo(EncodeWatermarkInfo(in))
	if err != nil || got.Digest != nil {
		t.Fatalf("short digest leaked: %+v, %v", got, err)
	}
	// Legacy two-field watermark decodes with zero epoch, nil digest.
	got, err = DecodeWatermarkInfo(EncodeWatermark(7, 8))
	if err != nil || got.LSN != 7 || got.Clock != 8 || got.Epoch != 0 || got.Digest != nil {
		t.Fatalf("legacy watermark = %+v, %v", got, err)
	}
}

func TestFenceRoundTrip(t *testing.T) {
	in := Fence{Epoch: 4, EpochStart: 77, Msg: "stale leadership"}
	got, err := DecodeFence(EncodeFence(in))
	if err != nil || got != in {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	if _, err := DecodeFence(nil); err == nil {
		t.Error("DecodeFence accepted empty payload")
	}
	if _, err := DecodeFence(EncodeFence(in)[:2]); err == nil {
		t.Error("DecodeFence accepted truncated payload")
	}
}

func TestAdminRoundTrip(t *testing.T) {
	got, err := DecodeAdmin(EncodeAdmin("promote"))
	if err != nil || got != "promote" {
		t.Fatalf("round trip = %q, %v", got, err)
	}
	if _, err := DecodeAdmin([]byte{0xFF}); err == nil {
		t.Error("DecodeAdmin accepted corrupt payload")
	}
}

func TestResultDoneEpoch(t *testing.T) {
	// Epoch alone forces both the trace block and watermark out as zeros.
	d := ResultDone{Plan: "scan", Rows: 2, Epoch: 5}
	got, err := DecodeResultDone(EncodeResultDone(d))
	if err != nil || got != d {
		t.Fatalf("epoch-only round trip = %+v, %v", got, err)
	}
	// Watermark + epoch together.
	d = ResultDone{Plan: "scan", Rows: 1, Watermark: 88, Epoch: 3}
	got, err = DecodeResultDone(EncodeResultDone(d))
	if err != nil || got != d {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	// Absent epoch (old encoder) decodes as zero.
	d = ResultDone{Plan: "scan", Rows: 1, Watermark: 88}
	got, err = DecodeResultDone(EncodeResultDone(d))
	if err != nil || got.Epoch != 0 || got.Watermark != 88 {
		t.Fatalf("epoch fabricated: %+v, %v", got, err)
	}
}

// FuzzEpochFrame throws arbitrary bytes at every failover-era decoder:
// the epoch-bearing handshake and replication payloads plus the fence and
// admin frames. Invariants: no panic, and whatever decodes re-encodes to
// an identical decode (the input need not be canonical, the value is).
func FuzzEpochFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeWelcomeInfo(WelcomeInfo{Banner: "srv", Session: 1, Epoch: 2, Writable: true}))
	f.Add(EncodeSubscribeReq(SubscribeReq{FromLSN: 10, Epoch: 2, Flags: SubscribeFlagSnapshot}))
	f.Add(EncodeWatermarkInfo(WatermarkInfo{LSN: 5, Clock: 6, Epoch: 7, Digest: bytes.Repeat([]byte{1}, StoreDigestLen)}))
	f.Add(EncodeFence(Fence{Epoch: 3, EpochStart: 44, Msg: "fenced"}))
	f.Add(EncodeAdmin("promote"))
	f.Add(EncodeResultDone(ResultDone{Plan: "scan", Rows: 1, Watermark: 9, Epoch: 4}))

	f.Fuzz(func(t *testing.T, p []byte) {
		if info, err := DecodeWelcomeInfo(p); err == nil {
			got, err2 := DecodeWelcomeInfo(EncodeWelcomeInfo(info))
			if err2 != nil || got != info {
				t.Fatalf("welcome re-decode: %+v vs %+v, %v", got, info, err2)
			}
		}
		if req, err := DecodeSubscribeReq(p); err == nil {
			got, err2 := DecodeSubscribeReq(EncodeSubscribeReq(req))
			if err2 != nil || got != req {
				t.Fatalf("subscribe re-decode: %+v vs %+v, %v", got, req, err2)
			}
		}
		if wm, err := DecodeWatermarkInfo(p); err == nil {
			got, err2 := DecodeWatermarkInfo(EncodeWatermarkInfo(wm))
			if err2 != nil || got.LSN != wm.LSN || got.Clock != wm.Clock ||
				got.Epoch != wm.Epoch || !bytes.Equal(got.Digest, wm.Digest) {
				t.Fatalf("watermark re-decode: %+v vs %+v, %v", got, wm, err2)
			}
			if wm.Digest != nil && len(wm.Digest) != StoreDigestLen {
				t.Fatalf("decoded digest of %d bytes", len(wm.Digest))
			}
		}
		if fc, err := DecodeFence(p); err == nil {
			got, err2 := DecodeFence(EncodeFence(fc))
			if err2 != nil || got != fc {
				t.Fatalf("fence re-decode: %+v vs %+v, %v", got, fc, err2)
			}
		}
		if cmd, err := DecodeAdmin(p); err == nil {
			got, err2 := DecodeAdmin(EncodeAdmin(cmd))
			if err2 != nil || got != cmd {
				t.Fatalf("admin re-decode: %q vs %q, %v", got, cmd, err2)
			}
		}
		if d, err := DecodeResultDone(p); err == nil {
			got, err2 := DecodeResultDone(EncodeResultDone(d))
			if err2 != nil || got != d {
				t.Fatalf("result-done re-decode: %+v vs %+v, %v", got, d, err2)
			}
		}
	})
}
