package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"tcodm/internal/value"
)

func TestFrameRoundTripStream(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i, p := range payloads {
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if f.Version != Version || f.Type != byte(i+1) || !bytes.Equal(f.Payload, p) {
			t.Fatalf("frame %d mismatch: %+v", i, f)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}

func TestDecodeFrameConsumed(t *testing.T) {
	buf := AppendFrame(nil, FrameQuery, []byte("abc"))
	buf = AppendFrame(buf, FramePing, nil)
	f, n, err := DecodeFrame(buf)
	if err != nil || f.Type != FrameQuery || string(f.Payload) != "abc" {
		t.Fatalf("first frame: %+v, %v", f, err)
	}
	f, m, err := DecodeFrame(buf[n:])
	if err != nil || f.Type != FramePing || len(f.Payload) != 0 {
		t.Fatalf("second frame: %+v, %v", f, err)
	}
	if n+m != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n+m, len(buf))
	}
}

func TestReadFrameRejectsHostileLengths(t *testing.T) {
	cases := map[string][]byte{
		"below header": {0, 0, 0, 1, Version},
		"oversized":    {0xFF, 0xFF, 0xFF, 0xFF},
		"truncated":    {0, 0, 0, 10, Version, FramePing, 'x'},
	}
	for name, raw := range cases {
		if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Oversized must fail before any payload-sized allocation: feed only
	// the prefix so a (wrong) attempt to read the body would block on EOF
	// rather than allocate.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("expected ErrFrameTooLarge, got %v", err)
	}
}

func TestReadFrameRejectsBadVersion(t *testing.T) {
	raw := []byte{0, 0, 0, 2, 99, FramePing}
	_, err := ReadFrame(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("expected version error, got %v", err)
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	err := WriteFrame(io.Discard, FrameQuery, make([]byte, MaxPayload+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("expected ErrFrameTooLarge, got %v", err)
	}
}

func TestHelloWelcomeRoundTrip(t *testing.T) {
	banner, err := DecodeHello(EncodeHello("tcoq/1"))
	if err != nil || banner != "tcoq/1" {
		t.Fatalf("hello: %q, %v", banner, err)
	}
	b, sid, err := DecodeWelcome(EncodeWelcome("tcoserve/1", 42))
	if err != nil || b != "tcoserve/1" || sid != 42 {
		t.Fatalf("welcome: %q, %d, %v", b, sid, err)
	}
}

func TestExecRoundTrip(t *testing.T) {
	params := []value.V{
		value.Null,
		value.Bool(true),
		value.Int(-7),
		value.Float(3.5),
		value.String_("O'Brien \"quoted\"\n"),
		value.Instant(12345),
	}
	text, got, err := DecodeExec(EncodeExec("SELECT e FROM emp e WHERE e.id = $1", params))
	if err != nil {
		t.Fatal(err)
	}
	if text != "SELECT e FROM emp e WHERE e.id = $1" {
		t.Fatalf("text = %q", text)
	}
	if len(got) != len(params) {
		t.Fatalf("got %d params, want %d", len(got), len(params))
	}
	for i := range params {
		if got[i] != params[i] {
			t.Fatalf("param %d: got %v want %v", i, got[i], params[i])
		}
	}
}

func TestExecRejectsHostileParamCount(t *testing.T) {
	p := AppendString(nil, "q")
	p = binary.AppendUvarint(p, 1<<40) // claims a trillion params
	if _, _, err := DecodeExec(p); err == nil {
		t.Fatal("expected error for hostile count")
	}
}

func TestResultFramesRoundTrip(t *testing.T) {
	cols, err := DecodeResultHeader(EncodeResultHeader([]string{"name", "sal"}))
	if err != nil || len(cols) != 2 || cols[0] != "name" || cols[1] != "sal" {
		t.Fatalf("header: %v, %v", cols, err)
	}

	rows := [][]value.V{
		{value.String_("alice"), value.Int(100)},
		{value.String_("bob"), value.Null},
		{}, // empty row survives
	}
	got, err := DecodeResultRows(EncodeResultRows(rows))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if len(got[i]) != len(rows[i]) {
			t.Fatalf("row %d: got %d values, want %d", i, len(got[i]), len(rows[i]))
		}
		for j := range rows[i] {
			if got[i][j] != rows[i][j] {
				t.Fatalf("row %d value %d: got %v want %v", i, j, got[i][j], rows[i][j])
			}
		}
	}

	done := ResultDone{Plan: "scan emp", Rows: 3, Molecules: 1, Elapsed: 42 * time.Microsecond}
	gd, err := DecodeResultDone(EncodeResultDone(done))
	if err != nil || gd != done {
		t.Fatalf("done: %+v, %v", gd, err)
	}
}

func TestOptionAckErrorRoundTrip(t *testing.T) {
	k, v, err := DecodeOption(EncodeOption("timeout", "5s"))
	if err != nil || k != "timeout" || v != "5s" {
		t.Fatalf("option: %q=%q, %v", k, v, err)
	}
	ack, err := DecodeAck(EncodeAck("5s"))
	if err != nil || ack != "5s" {
		t.Fatalf("ack: %q, %v", ack, err)
	}
	code, msg, detail, err := DecodeError(EncodeError(CodeQuery, "parse error", "line 3"))
	if err != nil || code != CodeQuery || msg != "parse error" || detail != "line 3" {
		t.Fatalf("error frame: %d %q %q, %v", code, msg, detail, err)
	}
}

// TestFrameChecksumDetectsCorruption flips every byte of an encoded frame
// in turn; each single-byte flip must surface as a decode error, never as
// a silently different frame. This is the integrity property the chaos
// harness leans on: corruption on the link becomes a typed transport
// error.
func TestFrameChecksumDetectsCorruption(t *testing.T) {
	frame := AppendFrame(nil, FrameQuery, EncodeQuery("SELECT (name) FROM Emp"))
	for i := range frame {
		mut := bytes.Clone(frame)
		mut[i] ^= 0xFF
		if f, _, err := DecodeFrame(mut); err == nil {
			t.Fatalf("flip at byte %d went undetected: %+v", i, f)
		}
		if f, err := ReadFrame(bytes.NewReader(mut)); err == nil {
			t.Fatalf("stream flip at byte %d went undetected: %+v", i, f)
		}
	}
	// A checksum failure is distinguishable from framing noise.
	mut := bytes.Clone(frame)
	mut[len(mut)-1] ^= 0x01
	if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrChecksum) {
		t.Fatalf("expected ErrChecksum, got %v", err)
	}
}

// TestLegacyV1FrameStillReadable hand-builds a checksum-free version-1
// frame; readers must accept it for compatibility.
func TestLegacyV1FrameStillReadable(t *testing.T) {
	payload := EncodeQuery("SELECT (name) FROM Emp")
	var raw []byte
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(2+len(payload)))
	raw = append(raw, hdr[:]...)
	raw = append(raw, VersionLegacy, FrameQuery)
	raw = append(raw, payload...)

	f, err := ReadFrame(bytes.NewReader(raw))
	if err != nil || f.Version != VersionLegacy || f.Type != FrameQuery {
		t.Fatalf("legacy frame rejected: %+v, %v", f, err)
	}
	text, err := DecodeQuery(f.Payload)
	if err != nil || text != "SELECT (name) FROM Emp" {
		t.Fatalf("legacy payload: %q, %v", text, err)
	}
	f2, n, err := DecodeFrame(raw)
	if err != nil || n != len(raw) || !bytes.Equal(f2.Payload, f.Payload) {
		t.Fatalf("DecodeFrame on legacy frame: %+v, %d, %v", f2, n, err)
	}
}

func TestErrorRetryAfterRoundTrip(t *testing.T) {
	p := EncodeErrorRetry(CodeBusy, "overloaded", "queue full", 250)
	code, msg, detail, retry, err := DecodeErrorRetry(p)
	if err != nil || code != CodeBusy || msg != "overloaded" || detail != "queue full" || retry != 250 {
		t.Fatalf("retry error frame: %d %q %q retry=%d, %v", code, msg, detail, retry, err)
	}
	// A version-1 decoder reads the same payload and simply ignores the
	// trailing hint.
	code, msg, detail, err = DecodeError(p)
	if err != nil || code != CodeBusy || msg != "overloaded" || detail != "queue full" {
		t.Fatalf("v1 view of retry error frame: %d %q %q, %v", code, msg, detail, err)
	}
	// Absent hint decodes as zero, and a hint-free payload is byte-identical
	// to the version-1 encoding.
	if !bytes.Equal(EncodeErrorRetry(CodeBusy, "m", "d", 0), EncodeError(CodeBusy, "m", "d")) {
		t.Fatal("zero hint changed the payload encoding")
	}
	_, _, _, retry, err = DecodeErrorRetry(EncodeError(CodeBusy, "m", "d"))
	if err != nil || retry != 0 {
		t.Fatalf("absent hint: retry=%d, %v", retry, err)
	}
}

func TestTruncatedPayloadsError(t *testing.T) {
	full := map[string][]byte{
		"welcome": EncodeWelcome("srv", 9),
		"exec":    EncodeExec("q", []value.V{value.Int(1)}),
		"header":  EncodeResultHeader([]string{"a", "b"}),
		"rows":    EncodeResultRows([][]value.V{{value.Int(1)}}),
		"done":    EncodeResultDone(ResultDone{Plan: "p", Rows: 1}),
		"error":   EncodeError(CodeQuery, "m", "d"),
	}
	decode := map[string]func([]byte) error{
		"welcome": func(p []byte) error { _, _, err := DecodeWelcome(p); return err },
		"exec":    func(p []byte) error { _, _, err := DecodeExec(p); return err },
		"header":  func(p []byte) error { _, err := DecodeResultHeader(p); return err },
		"rows":    func(p []byte) error { _, err := DecodeResultRows(p); return err },
		"done":    func(p []byte) error { _, err := DecodeResultDone(p); return err },
		"error":   func(p []byte) error { _, _, _, err := DecodeError(p); return err },
	}
	for name, payload := range full {
		for cut := 0; cut < len(payload); cut++ {
			if err := decode[name](payload[:cut]); err == nil {
				t.Errorf("%s truncated at %d: expected error", name, cut)
			}
		}
	}
}
