package wire

import (
	"encoding/binary"
	"fmt"
	"time"

	"tcodm/internal/obs"
	"tcodm/internal/value"
)

// --- primitives ------------------------------------------------------------

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ReadString decodes a length-prefixed string from src, returning the
// string and the bytes consumed.
func ReadString(src []byte) (string, int, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return "", 0, fmt.Errorf("wire: corrupt string length")
	}
	end := sz + int(n)
	if n > uint64(len(src)) || end > len(src) || end < sz {
		return "", 0, fmt.Errorf("wire: string truncated (need %d bytes, have %d)", n, len(src)-sz)
	}
	return string(src[sz:end]), end, nil
}

// readCount decodes a uvarint element count and validates it against the
// remaining payload, given a per-element lower bound in bytes. A hostile
// count therefore cannot force an allocation beyond the bytes received.
func readCount(src []byte, minElem int) (int, int, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return 0, 0, fmt.Errorf("wire: corrupt count")
	}
	if n > uint64((len(src)-sz)/minElem) {
		return 0, 0, fmt.Errorf("wire: count %d exceeds payload", n)
	}
	return int(n), sz, nil
}

// --- handshake -------------------------------------------------------------

// EncodeHello builds a Hello payload: the client banner.
func EncodeHello(banner string) []byte {
	return AppendString(nil, banner)
}

// DecodeHello parses a Hello payload.
func DecodeHello(p []byte) (banner string, err error) {
	banner, _, err = ReadString(p)
	return banner, err
}

// EncodeWelcome builds a Welcome payload: server banner and session id.
func EncodeWelcome(banner string, session uint64) []byte {
	dst := AppendString(nil, banner)
	return binary.AppendUvarint(dst, session)
}

// DecodeWelcome parses a Welcome payload.
func DecodeWelcome(p []byte) (banner string, session uint64, err error) {
	var info WelcomeInfo
	info, err = DecodeWelcomeInfo(p)
	return info.Banner, info.Session, err
}

// WelcomeInfo is the full Welcome payload. Epoch and Writable are
// optional trailing fields (epoch uvarint, then writable 0/1 uvarint)
// appended after the session id: pre-epoch decoders read banner and
// session from the front and ignore them, and pre-epoch servers emit
// neither — DecodeWelcomeInfo then reports epoch 0, not writable.
// Clients use the pair to probe a replica set for the highest-epoch
// writable node during failover.
type WelcomeInfo struct {
	Banner   string
	Session  uint64
	Epoch    uint64
	Writable bool
}

// EncodeWelcomeInfo builds a Welcome payload carrying the server's
// replication epoch and writability.
func EncodeWelcomeInfo(info WelcomeInfo) []byte {
	dst := AppendString(nil, info.Banner)
	dst = binary.AppendUvarint(dst, info.Session)
	dst = binary.AppendUvarint(dst, info.Epoch)
	var w uint64
	if info.Writable {
		w = 1
	}
	return binary.AppendUvarint(dst, w)
}

// DecodeWelcomeInfo parses a Welcome payload including the optional
// epoch and writable trailing fields (zero values when absent).
func DecodeWelcomeInfo(p []byte) (WelcomeInfo, error) {
	var info WelcomeInfo
	banner, n, err := ReadString(p)
	if err != nil {
		return info, err
	}
	info.Banner = banner
	p = p[n:]
	session, sz := binary.Uvarint(p)
	if sz <= 0 {
		return info, fmt.Errorf("wire: corrupt session id")
	}
	info.Session = session
	if p = p[sz:]; len(p) > 0 {
		epoch, sz := binary.Uvarint(p)
		if sz <= 0 {
			return info, fmt.Errorf("wire: corrupt welcome epoch")
		}
		info.Epoch = epoch
		if p = p[sz:]; len(p) > 0 {
			w, sz := binary.Uvarint(p)
			if sz <= 0 {
				return info, fmt.Errorf("wire: corrupt welcome writable flag")
			}
			info.Writable = w != 0
		}
	}
	return info, nil
}

// --- queries ---------------------------------------------------------------

// EncodeQuery builds a Query payload: the statement text.
func EncodeQuery(text string) []byte {
	return AppendString(nil, text)
}

// DecodeQuery parses a Query payload.
func DecodeQuery(p []byte) (string, error) {
	text, _, err := ReadString(p)
	return text, err
}

// EncodeQueryTrace builds a Query payload stamped with a trace id. The id
// is an optional trailing uvarint, omitted when zero, so version-1
// decoders — which read the text from the front and ignore trailing
// bytes — parse the payload unchanged and see "untraced".
func EncodeQueryTrace(text string, trace uint64) []byte {
	dst := AppendString(nil, text)
	if trace > 0 {
		dst = binary.AppendUvarint(dst, trace)
	}
	return dst
}

// DecodeQueryTrace parses a Query payload including the optional trace id
// (0 when absent).
func DecodeQueryTrace(p []byte) (string, uint64, error) {
	text, n, err := ReadString(p)
	if err != nil {
		return "", 0, err
	}
	trace, err := readTrailingTrace(p[n:])
	return text, trace, err
}

// readTrailingTrace decodes the optional trailing trace-id uvarint.
func readTrailingTrace(p []byte) (uint64, error) {
	if len(p) == 0 {
		return 0, nil
	}
	t, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, fmt.Errorf("wire: corrupt trace id")
	}
	return t, nil
}

// EncodeExec builds an Exec payload: statement text plus bound parameters
// in record encoding.
func EncodeExec(text string, params []value.V) []byte {
	dst := AppendString(nil, text)
	dst = binary.AppendUvarint(dst, uint64(len(params)))
	for _, v := range params {
		dst = value.AppendRecord(dst, v)
	}
	return dst
}

// DecodeExec parses an Exec payload.
func DecodeExec(p []byte) (string, []value.V, error) {
	text, params, _, err := DecodeExecTrace(p)
	return text, params, err
}

// EncodeExecTrace builds an Exec payload stamped with a trace id, encoded
// as an optional trailing uvarint exactly like EncodeQueryTrace.
func EncodeExecTrace(text string, params []value.V, trace uint64) []byte {
	dst := EncodeExec(text, params)
	if trace > 0 {
		dst = binary.AppendUvarint(dst, trace)
	}
	return dst
}

// DecodeExecTrace parses an Exec payload including the optional trace id
// (0 when absent).
func DecodeExecTrace(p []byte) (string, []value.V, uint64, error) {
	text, n, err := ReadString(p)
	if err != nil {
		return "", nil, 0, err
	}
	p = p[n:]
	count, sz, err := readCount(p, 1)
	if err != nil {
		return "", nil, 0, err
	}
	p = p[sz:]
	params := make([]value.V, 0, count)
	for i := 0; i < count; i++ {
		v, used, err := value.DecodeRecord(p)
		if err != nil {
			return "", nil, 0, fmt.Errorf("wire: parameter %d: %w", i+1, err)
		}
		p = p[used:]
		params = append(params, v)
	}
	trace, err := readTrailingTrace(p)
	if err != nil {
		return "", nil, 0, err
	}
	return text, params, trace, nil
}

// EncodeOption builds an Option payload: key and value strings.
func EncodeOption(key, val string) []byte {
	return AppendString(AppendString(nil, key), val)
}

// DecodeOption parses an Option payload.
func DecodeOption(p []byte) (key, val string, err error) {
	key, n, err := ReadString(p)
	if err != nil {
		return "", "", err
	}
	val, _, err = ReadString(p[n:])
	return key, val, err
}

// EncodeAck builds an Ack payload: the effective option value.
func EncodeAck(val string) []byte {
	return AppendString(nil, val)
}

// DecodeAck parses an Ack payload.
func DecodeAck(p []byte) (string, error) {
	val, _, err := ReadString(p)
	return val, err
}

// --- results ---------------------------------------------------------------

// EncodeResultHeader builds a ResultHeader payload: the column names.
func EncodeResultHeader(cols []string) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(cols)))
	for _, c := range cols {
		dst = AppendString(dst, c)
	}
	return dst
}

// DecodeResultHeader parses a ResultHeader payload.
func DecodeResultHeader(p []byte) ([]string, error) {
	count, sz, err := readCount(p, 1)
	if err != nil {
		return nil, err
	}
	p = p[sz:]
	cols := make([]string, 0, count)
	for i := 0; i < count; i++ {
		c, n, err := ReadString(p)
		if err != nil {
			return nil, fmt.Errorf("wire: column %d: %w", i, err)
		}
		p = p[n:]
		cols = append(cols, c)
	}
	return cols, nil
}

// EncodeResultRows builds a ResultRows payload: one batch of rows, each a
// count-prefixed sequence of record-encoded values.
func EncodeResultRows(rows [][]value.V) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(rows)))
	for _, row := range rows {
		dst = binary.AppendUvarint(dst, uint64(len(row)))
		for _, v := range row {
			dst = value.AppendRecord(dst, v)
		}
	}
	return dst
}

// DecodeResultRows parses a ResultRows payload.
func DecodeResultRows(p []byte) ([][]value.V, error) {
	count, sz, err := readCount(p, 1)
	if err != nil {
		return nil, err
	}
	p = p[sz:]
	rows := make([][]value.V, 0, count)
	for i := 0; i < count; i++ {
		nvals, sz, err := readCount(p, 1)
		if err != nil {
			return nil, fmt.Errorf("wire: row %d: %w", i, err)
		}
		p = p[sz:]
		row := make([]value.V, 0, nvals)
		for j := 0; j < nvals; j++ {
			v, used, err := value.DecodeRecord(p)
			if err != nil {
				return nil, fmt.Errorf("wire: row %d value %d: %w", i, j, err)
			}
			p = p[used:]
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ResultDone summarizes a completed result stream.
type ResultDone struct {
	Plan      string
	Rows      uint64 // total rows streamed
	Molecules uint64 // molecules summarized (SELECT ALL)
	Elapsed   time.Duration

	// Trace is the trace id the query ran under and Res its exact resource
	// totals. Both travel as an optional trailing block (trace id plus the
	// four resource uvarints), omitted when the query was untraced with
	// zero resources — version-1 decoders ignore trailing bytes and see
	// untraced results with no accounting.
	Trace uint64
	Res   obs.Resources

	// Watermark is the replication watermark LSN the serving store had
	// applied when the query ran: 0 on a leader (or pre-replication
	// server), the follower's applied LSN on a replica. It travels as one
	// more optional trailing uvarint after the trace block; when present
	// the trace block is always emitted (zeros included) so the field
	// positions stay unambiguous. Older decoders ignore it.
	Watermark uint64

	// Epoch is the serving store's replication epoch (0 before any
	// promotion). One more optional trailing uvarint after Watermark;
	// emitting it forces the trace and watermark fields out (zeros
	// included) to keep positions unambiguous. Clients watch it to
	// notice failovers mid-stream.
	Epoch uint64
}

// EncodeResultDone builds a ResultDone payload.
func EncodeResultDone(d ResultDone) []byte {
	dst := AppendString(nil, d.Plan)
	dst = binary.AppendUvarint(dst, d.Rows)
	dst = binary.AppendUvarint(dst, d.Molecules)
	dst = binary.AppendUvarint(dst, uint64(d.Elapsed.Nanoseconds()))
	if d.Trace != 0 || !d.Res.IsZero() || d.Watermark != 0 || d.Epoch != 0 {
		dst = binary.AppendUvarint(dst, d.Trace)
		dst = binary.AppendUvarint(dst, d.Res.Pages)
		dst = binary.AppendUvarint(dst, d.Res.WALBytes)
		dst = binary.AppendUvarint(dst, d.Res.ChainSteps)
		dst = binary.AppendUvarint(dst, d.Res.Atoms)
	}
	if d.Watermark != 0 || d.Epoch != 0 {
		dst = binary.AppendUvarint(dst, d.Watermark)
	}
	if d.Epoch != 0 {
		dst = binary.AppendUvarint(dst, d.Epoch)
	}
	return dst
}

// DecodeResultDone parses a ResultDone payload.
func DecodeResultDone(p []byte) (ResultDone, error) {
	var d ResultDone
	plan, n, err := ReadString(p)
	if err != nil {
		return d, err
	}
	d.Plan = plan
	p = p[n:]
	for _, field := range []*uint64{&d.Rows, &d.Molecules} {
		v, sz := binary.Uvarint(p)
		if sz <= 0 {
			return d, fmt.Errorf("wire: corrupt result summary")
		}
		*field = v
		p = p[sz:]
	}
	ns, sz := binary.Uvarint(p)
	if sz <= 0 {
		return d, fmt.Errorf("wire: corrupt result summary")
	}
	d.Elapsed = time.Duration(ns)
	if p = p[sz:]; len(p) > 0 {
		// The trailing trace/resources block is all-or-nothing: five
		// uvarints, present together.
		for _, field := range []*uint64{&d.Trace, &d.Res.Pages, &d.Res.WALBytes, &d.Res.ChainSteps, &d.Res.Atoms} {
			v, sz := binary.Uvarint(p)
			if sz <= 0 {
				return d, fmt.Errorf("wire: corrupt trace block")
			}
			*field = v
			p = p[sz:]
		}
	}
	if len(p) > 0 {
		v, sz := binary.Uvarint(p)
		if sz <= 0 {
			return d, fmt.Errorf("wire: corrupt watermark")
		}
		d.Watermark = v
		p = p[sz:]
	}
	if len(p) > 0 {
		v, sz := binary.Uvarint(p)
		if sz <= 0 {
			return d, fmt.Errorf("wire: corrupt result epoch")
		}
		d.Epoch = v
	}
	return d, nil
}

// --- errors ----------------------------------------------------------------

// EncodeError builds an Error payload: code, message, and detail.
func EncodeError(code uint16, msg, detail string) []byte {
	return EncodeErrorRetry(code, msg, detail, 0)
}

// EncodeErrorRetry builds an Error payload carrying a retry hint: the
// server suggests the client wait retryAfterMs milliseconds before trying
// again (overload shedding, connection-limit refusals). The hint is an
// optional trailing field, omitted when zero, so version-1 decoders —
// which read code, msg, and detail from the front and ignore trailing
// bytes — parse the payload unchanged and see "no hint".
func EncodeErrorRetry(code uint16, msg, detail string, retryAfterMs uint32) []byte {
	dst := binary.AppendUvarint(nil, uint64(code))
	dst = AppendString(dst, msg)
	dst = AppendString(dst, detail)
	if retryAfterMs > 0 {
		dst = binary.AppendUvarint(dst, uint64(retryAfterMs))
	}
	return dst
}

// DecodeError parses an Error payload, ignoring any retry hint — the
// version-1 view of the payload.
func DecodeError(p []byte) (code uint16, msg, detail string, err error) {
	code, msg, detail, _, err = DecodeErrorRetry(p)
	return code, msg, detail, err
}

// DecodeErrorRetry parses an Error payload including the optional
// RetryAfterMs hint (0 when absent).
func DecodeErrorRetry(p []byte) (code uint16, msg, detail string, retryAfterMs uint32, err error) {
	c, sz := binary.Uvarint(p)
	if sz <= 0 || c > 0xFFFF {
		return 0, "", "", 0, fmt.Errorf("wire: corrupt error code")
	}
	p = p[sz:]
	msg, n, err := ReadString(p)
	if err != nil {
		return 0, "", "", 0, err
	}
	p = p[n:]
	detail, n, err = ReadString(p)
	if err != nil {
		return 0, "", "", 0, err
	}
	if p = p[n:]; len(p) > 0 {
		r, sz := binary.Uvarint(p)
		if sz <= 0 || r > 1<<31 {
			return 0, "", "", 0, fmt.Errorf("wire: corrupt retry hint")
		}
		retryAfterMs = uint32(r)
	}
	return uint16(c), msg, detail, retryAfterMs, nil
}

// --- replication -----------------------------------------------------------
//
// The replication frame family (Subscribe, LogBatch, Watermark, Snapshot*)
// follows the same trailing-field discipline as the rest of the protocol:
// fixed fields decode from the front, unknown trailing bytes are ignored,
// so either end can be upgraded first. LogBatch payloads are a WAL record
// stream (internal/wal.AppendRecordStream) and SnapshotChunk payloads are
// raw store bytes; both are opaque at this layer.

// EncodeSubscribe builds a Subscribe payload: the first LSN the follower
// still needs (its own next LSN after local recovery).
func EncodeSubscribe(fromLSN uint64) []byte {
	return binary.AppendUvarint(nil, fromLSN)
}

// DecodeSubscribe parses a Subscribe payload.
func DecodeSubscribe(p []byte) (uint64, error) {
	lsn, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, fmt.Errorf("wire: corrupt subscribe LSN")
	}
	return lsn, nil
}

// Subscribe flag bits (the optional third uvarint of a Subscribe payload).
const (
	// SubscribeFlagSnapshot asks the source to start with a full snapshot
	// regardless of log availability — a fenced ex-leader rejoining after
	// divergence, or an operator-forced resync.
	SubscribeFlagSnapshot uint64 = 1 << 0
)

// SubscribeReq is the full Subscribe payload. Epoch and Flags are
// optional trailing uvarints after FromLSN: pre-epoch followers emit
// neither and decode as epoch 0 with no flags, and pre-epoch sources
// ignore them.
type SubscribeReq struct {
	FromLSN uint64 // first LSN the subscriber still needs
	Epoch   uint64 // highest replication epoch the subscriber has seen
	Flags   uint64 // SubscribeFlag* bits
}

// EncodeSubscribeReq builds a Subscribe payload with epoch and flags.
func EncodeSubscribeReq(req SubscribeReq) []byte {
	dst := binary.AppendUvarint(nil, req.FromLSN)
	dst = binary.AppendUvarint(dst, req.Epoch)
	return binary.AppendUvarint(dst, req.Flags)
}

// DecodeSubscribeReq parses a Subscribe payload including the optional
// epoch and flags (zero when absent).
func DecodeSubscribeReq(p []byte) (SubscribeReq, error) {
	var req SubscribeReq
	lsn, sz := binary.Uvarint(p)
	if sz <= 0 {
		return req, fmt.Errorf("wire: corrupt subscribe LSN")
	}
	req.FromLSN = lsn
	if p = p[sz:]; len(p) > 0 {
		epoch, sz := binary.Uvarint(p)
		if sz <= 0 {
			return req, fmt.Errorf("wire: corrupt subscribe epoch")
		}
		req.Epoch = epoch
		if p = p[sz:]; len(p) > 0 {
			flags, sz := binary.Uvarint(p)
			if sz <= 0 {
				return req, fmt.Errorf("wire: corrupt subscribe flags")
			}
			req.Flags = flags
		}
	}
	return req, nil
}

// EncodeWatermark builds a Watermark payload: the leader's highest
// appended LSN and its transaction-time clock at that point. Sent after
// every log batch and as an idle heartbeat, it is what lets a follower
// *know* it is caught up (and how far behind it is when it is not).
func EncodeWatermark(lsn, clock uint64) []byte {
	dst := binary.AppendUvarint(nil, lsn)
	return binary.AppendUvarint(dst, clock)
}

// DecodeWatermark parses a Watermark payload.
func DecodeWatermark(p []byte) (lsn, clock uint64, err error) {
	var wm WatermarkInfo
	wm, err = DecodeWatermarkInfo(p)
	return wm.LSN, wm.Clock, err
}

// StoreDigestLen is the size of a store digest on the wire (SHA-256).
const StoreDigestLen = 32

// WatermarkInfo is the full Watermark payload. Epoch is an optional
// trailing uvarint after the clock; Digest, when present, is the final
// StoreDigestLen raw bytes — the leader's store digest at exactly LSN,
// shipped on idle heartbeats so a follower promoting at that frontier
// can verify its replayed history without a live leader to ask.
// Pre-epoch peers emit neither and ignore both.
type WatermarkInfo struct {
	LSN    uint64
	Clock  uint64
	Epoch  uint64
	Digest []byte // nil or StoreDigestLen bytes
}

// EncodeWatermarkInfo builds a Watermark payload with epoch and an
// optional store digest.
func EncodeWatermarkInfo(wm WatermarkInfo) []byte {
	dst := binary.AppendUvarint(nil, wm.LSN)
	dst = binary.AppendUvarint(dst, wm.Clock)
	dst = binary.AppendUvarint(dst, wm.Epoch)
	if len(wm.Digest) == StoreDigestLen {
		dst = append(dst, wm.Digest...)
	}
	return dst
}

// DecodeWatermarkInfo parses a Watermark payload including the optional
// epoch and digest (zero/nil when absent).
func DecodeWatermarkInfo(p []byte) (WatermarkInfo, error) {
	var wm WatermarkInfo
	lsn, sz := binary.Uvarint(p)
	if sz <= 0 {
		return wm, fmt.Errorf("wire: corrupt watermark LSN")
	}
	wm.LSN = lsn
	p = p[sz:]
	clock, sz := binary.Uvarint(p)
	if sz <= 0 {
		return wm, fmt.Errorf("wire: corrupt watermark clock")
	}
	wm.Clock = clock
	if p = p[sz:]; len(p) > 0 {
		epoch, sz := binary.Uvarint(p)
		if sz <= 0 {
			return wm, fmt.Errorf("wire: corrupt watermark epoch")
		}
		wm.Epoch = epoch
		if p = p[sz:]; len(p) == StoreDigestLen {
			wm.Digest = append([]byte(nil), p...)
		}
	}
	return wm, nil
}

// Fence is a FrameFence payload: the source's view of the current epoch,
// where that epoch began, and a human-readable reason. A subscriber
// whose epoch is higher should self-fence (it is the newer leader's
// peer); one whose history extends past EpochStart at a lower epoch has
// diverged and must rejoin via snapshot.
type Fence struct {
	Epoch      uint64 // the source's current epoch
	EpochStart uint64 // appended LSN at which that epoch began
	Msg        string
}

// EncodeFence builds a Fence payload.
func EncodeFence(f Fence) []byte {
	dst := binary.AppendUvarint(nil, f.Epoch)
	dst = binary.AppendUvarint(dst, f.EpochStart)
	return AppendString(dst, f.Msg)
}

// DecodeFence parses a Fence payload.
func DecodeFence(p []byte) (Fence, error) {
	var f Fence
	epoch, sz := binary.Uvarint(p)
	if sz <= 0 {
		return f, fmt.Errorf("wire: corrupt fence epoch")
	}
	f.Epoch = epoch
	p = p[sz:]
	start, sz := binary.Uvarint(p)
	if sz <= 0 {
		return f, fmt.Errorf("wire: corrupt fence epoch start")
	}
	f.EpochStart = start
	msg, _, err := ReadString(p[sz:])
	if err != nil {
		return f, err
	}
	f.Msg = msg
	return f, nil
}

// --- admin ------------------------------------------------------------------

// EncodeAdmin builds an Admin payload: the operator command.
func EncodeAdmin(cmd string) []byte {
	return AppendString(nil, cmd)
}

// DecodeAdmin parses an Admin payload.
func DecodeAdmin(p []byte) (string, error) {
	cmd, _, err := ReadString(p)
	return cmd, err
}

// EncodeSnapshotOffer builds a SnapshotOffer payload: the LSN log batches
// will resume from once the snapshot is applied, and the snapshot's total
// byte size (chunks follow until SnapshotDone).
func EncodeSnapshotOffer(startLSN, size uint64) []byte {
	dst := binary.AppendUvarint(nil, startLSN)
	return binary.AppendUvarint(dst, size)
}

// DecodeSnapshotOffer parses a SnapshotOffer payload.
func DecodeSnapshotOffer(p []byte) (startLSN, size uint64, err error) {
	startLSN, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, 0, fmt.Errorf("wire: corrupt snapshot start LSN")
	}
	p = p[sz:]
	size, sz = binary.Uvarint(p)
	if sz <= 0 {
		return 0, 0, fmt.Errorf("wire: corrupt snapshot size")
	}
	return startLSN, size, nil
}

// EncodeSnapshotDone builds a SnapshotDone payload: the SHA-256 digest of
// the snapshot bytes, so the follower can verify the transfer before
// trusting the store it is about to open.
func EncodeSnapshotDone(digest []byte) []byte {
	return AppendString(nil, string(digest))
}

// DecodeSnapshotDone parses a SnapshotDone payload.
func DecodeSnapshotDone(p []byte) ([]byte, error) {
	s, _, err := ReadString(p)
	if err != nil {
		return nil, err
	}
	return []byte(s), nil
}
