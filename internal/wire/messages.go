package wire

import (
	"encoding/binary"
	"fmt"
	"time"

	"tcodm/internal/obs"
	"tcodm/internal/value"
)

// --- primitives ------------------------------------------------------------

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ReadString decodes a length-prefixed string from src, returning the
// string and the bytes consumed.
func ReadString(src []byte) (string, int, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return "", 0, fmt.Errorf("wire: corrupt string length")
	}
	end := sz + int(n)
	if n > uint64(len(src)) || end > len(src) || end < sz {
		return "", 0, fmt.Errorf("wire: string truncated (need %d bytes, have %d)", n, len(src)-sz)
	}
	return string(src[sz:end]), end, nil
}

// readCount decodes a uvarint element count and validates it against the
// remaining payload, given a per-element lower bound in bytes. A hostile
// count therefore cannot force an allocation beyond the bytes received.
func readCount(src []byte, minElem int) (int, int, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return 0, 0, fmt.Errorf("wire: corrupt count")
	}
	if n > uint64((len(src)-sz)/minElem) {
		return 0, 0, fmt.Errorf("wire: count %d exceeds payload", n)
	}
	return int(n), sz, nil
}

// --- handshake -------------------------------------------------------------

// EncodeHello builds a Hello payload: the client banner.
func EncodeHello(banner string) []byte {
	return AppendString(nil, banner)
}

// DecodeHello parses a Hello payload.
func DecodeHello(p []byte) (banner string, err error) {
	banner, _, err = ReadString(p)
	return banner, err
}

// EncodeWelcome builds a Welcome payload: server banner and session id.
func EncodeWelcome(banner string, session uint64) []byte {
	dst := AppendString(nil, banner)
	return binary.AppendUvarint(dst, session)
}

// DecodeWelcome parses a Welcome payload.
func DecodeWelcome(p []byte) (banner string, session uint64, err error) {
	banner, n, err := ReadString(p)
	if err != nil {
		return "", 0, err
	}
	session, sz := binary.Uvarint(p[n:])
	if sz <= 0 {
		return "", 0, fmt.Errorf("wire: corrupt session id")
	}
	return banner, session, nil
}

// --- queries ---------------------------------------------------------------

// EncodeQuery builds a Query payload: the statement text.
func EncodeQuery(text string) []byte {
	return AppendString(nil, text)
}

// DecodeQuery parses a Query payload.
func DecodeQuery(p []byte) (string, error) {
	text, _, err := ReadString(p)
	return text, err
}

// EncodeQueryTrace builds a Query payload stamped with a trace id. The id
// is an optional trailing uvarint, omitted when zero, so version-1
// decoders — which read the text from the front and ignore trailing
// bytes — parse the payload unchanged and see "untraced".
func EncodeQueryTrace(text string, trace uint64) []byte {
	dst := AppendString(nil, text)
	if trace > 0 {
		dst = binary.AppendUvarint(dst, trace)
	}
	return dst
}

// DecodeQueryTrace parses a Query payload including the optional trace id
// (0 when absent).
func DecodeQueryTrace(p []byte) (string, uint64, error) {
	text, n, err := ReadString(p)
	if err != nil {
		return "", 0, err
	}
	trace, err := readTrailingTrace(p[n:])
	return text, trace, err
}

// readTrailingTrace decodes the optional trailing trace-id uvarint.
func readTrailingTrace(p []byte) (uint64, error) {
	if len(p) == 0 {
		return 0, nil
	}
	t, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, fmt.Errorf("wire: corrupt trace id")
	}
	return t, nil
}

// EncodeExec builds an Exec payload: statement text plus bound parameters
// in record encoding.
func EncodeExec(text string, params []value.V) []byte {
	dst := AppendString(nil, text)
	dst = binary.AppendUvarint(dst, uint64(len(params)))
	for _, v := range params {
		dst = value.AppendRecord(dst, v)
	}
	return dst
}

// DecodeExec parses an Exec payload.
func DecodeExec(p []byte) (string, []value.V, error) {
	text, params, _, err := DecodeExecTrace(p)
	return text, params, err
}

// EncodeExecTrace builds an Exec payload stamped with a trace id, encoded
// as an optional trailing uvarint exactly like EncodeQueryTrace.
func EncodeExecTrace(text string, params []value.V, trace uint64) []byte {
	dst := EncodeExec(text, params)
	if trace > 0 {
		dst = binary.AppendUvarint(dst, trace)
	}
	return dst
}

// DecodeExecTrace parses an Exec payload including the optional trace id
// (0 when absent).
func DecodeExecTrace(p []byte) (string, []value.V, uint64, error) {
	text, n, err := ReadString(p)
	if err != nil {
		return "", nil, 0, err
	}
	p = p[n:]
	count, sz, err := readCount(p, 1)
	if err != nil {
		return "", nil, 0, err
	}
	p = p[sz:]
	params := make([]value.V, 0, count)
	for i := 0; i < count; i++ {
		v, used, err := value.DecodeRecord(p)
		if err != nil {
			return "", nil, 0, fmt.Errorf("wire: parameter %d: %w", i+1, err)
		}
		p = p[used:]
		params = append(params, v)
	}
	trace, err := readTrailingTrace(p)
	if err != nil {
		return "", nil, 0, err
	}
	return text, params, trace, nil
}

// EncodeOption builds an Option payload: key and value strings.
func EncodeOption(key, val string) []byte {
	return AppendString(AppendString(nil, key), val)
}

// DecodeOption parses an Option payload.
func DecodeOption(p []byte) (key, val string, err error) {
	key, n, err := ReadString(p)
	if err != nil {
		return "", "", err
	}
	val, _, err = ReadString(p[n:])
	return key, val, err
}

// EncodeAck builds an Ack payload: the effective option value.
func EncodeAck(val string) []byte {
	return AppendString(nil, val)
}

// DecodeAck parses an Ack payload.
func DecodeAck(p []byte) (string, error) {
	val, _, err := ReadString(p)
	return val, err
}

// --- results ---------------------------------------------------------------

// EncodeResultHeader builds a ResultHeader payload: the column names.
func EncodeResultHeader(cols []string) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(cols)))
	for _, c := range cols {
		dst = AppendString(dst, c)
	}
	return dst
}

// DecodeResultHeader parses a ResultHeader payload.
func DecodeResultHeader(p []byte) ([]string, error) {
	count, sz, err := readCount(p, 1)
	if err != nil {
		return nil, err
	}
	p = p[sz:]
	cols := make([]string, 0, count)
	for i := 0; i < count; i++ {
		c, n, err := ReadString(p)
		if err != nil {
			return nil, fmt.Errorf("wire: column %d: %w", i, err)
		}
		p = p[n:]
		cols = append(cols, c)
	}
	return cols, nil
}

// EncodeResultRows builds a ResultRows payload: one batch of rows, each a
// count-prefixed sequence of record-encoded values.
func EncodeResultRows(rows [][]value.V) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(rows)))
	for _, row := range rows {
		dst = binary.AppendUvarint(dst, uint64(len(row)))
		for _, v := range row {
			dst = value.AppendRecord(dst, v)
		}
	}
	return dst
}

// DecodeResultRows parses a ResultRows payload.
func DecodeResultRows(p []byte) ([][]value.V, error) {
	count, sz, err := readCount(p, 1)
	if err != nil {
		return nil, err
	}
	p = p[sz:]
	rows := make([][]value.V, 0, count)
	for i := 0; i < count; i++ {
		nvals, sz, err := readCount(p, 1)
		if err != nil {
			return nil, fmt.Errorf("wire: row %d: %w", i, err)
		}
		p = p[sz:]
		row := make([]value.V, 0, nvals)
		for j := 0; j < nvals; j++ {
			v, used, err := value.DecodeRecord(p)
			if err != nil {
				return nil, fmt.Errorf("wire: row %d value %d: %w", i, j, err)
			}
			p = p[used:]
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ResultDone summarizes a completed result stream.
type ResultDone struct {
	Plan      string
	Rows      uint64 // total rows streamed
	Molecules uint64 // molecules summarized (SELECT ALL)
	Elapsed   time.Duration

	// Trace is the trace id the query ran under and Res its exact resource
	// totals. Both travel as an optional trailing block (trace id plus the
	// four resource uvarints), omitted when the query was untraced with
	// zero resources — version-1 decoders ignore trailing bytes and see
	// untraced results with no accounting.
	Trace uint64
	Res   obs.Resources

	// Watermark is the replication watermark LSN the serving store had
	// applied when the query ran: 0 on a leader (or pre-replication
	// server), the follower's applied LSN on a replica. It travels as one
	// more optional trailing uvarint after the trace block; when present
	// the trace block is always emitted (zeros included) so the field
	// positions stay unambiguous. Older decoders ignore it.
	Watermark uint64
}

// EncodeResultDone builds a ResultDone payload.
func EncodeResultDone(d ResultDone) []byte {
	dst := AppendString(nil, d.Plan)
	dst = binary.AppendUvarint(dst, d.Rows)
	dst = binary.AppendUvarint(dst, d.Molecules)
	dst = binary.AppendUvarint(dst, uint64(d.Elapsed.Nanoseconds()))
	if d.Trace != 0 || !d.Res.IsZero() || d.Watermark != 0 {
		dst = binary.AppendUvarint(dst, d.Trace)
		dst = binary.AppendUvarint(dst, d.Res.Pages)
		dst = binary.AppendUvarint(dst, d.Res.WALBytes)
		dst = binary.AppendUvarint(dst, d.Res.ChainSteps)
		dst = binary.AppendUvarint(dst, d.Res.Atoms)
	}
	if d.Watermark != 0 {
		dst = binary.AppendUvarint(dst, d.Watermark)
	}
	return dst
}

// DecodeResultDone parses a ResultDone payload.
func DecodeResultDone(p []byte) (ResultDone, error) {
	var d ResultDone
	plan, n, err := ReadString(p)
	if err != nil {
		return d, err
	}
	d.Plan = plan
	p = p[n:]
	for _, field := range []*uint64{&d.Rows, &d.Molecules} {
		v, sz := binary.Uvarint(p)
		if sz <= 0 {
			return d, fmt.Errorf("wire: corrupt result summary")
		}
		*field = v
		p = p[sz:]
	}
	ns, sz := binary.Uvarint(p)
	if sz <= 0 {
		return d, fmt.Errorf("wire: corrupt result summary")
	}
	d.Elapsed = time.Duration(ns)
	if p = p[sz:]; len(p) > 0 {
		// The trailing trace/resources block is all-or-nothing: five
		// uvarints, present together.
		for _, field := range []*uint64{&d.Trace, &d.Res.Pages, &d.Res.WALBytes, &d.Res.ChainSteps, &d.Res.Atoms} {
			v, sz := binary.Uvarint(p)
			if sz <= 0 {
				return d, fmt.Errorf("wire: corrupt trace block")
			}
			*field = v
			p = p[sz:]
		}
	}
	if len(p) > 0 {
		v, sz := binary.Uvarint(p)
		if sz <= 0 {
			return d, fmt.Errorf("wire: corrupt watermark")
		}
		d.Watermark = v
	}
	return d, nil
}

// --- errors ----------------------------------------------------------------

// EncodeError builds an Error payload: code, message, and detail.
func EncodeError(code uint16, msg, detail string) []byte {
	return EncodeErrorRetry(code, msg, detail, 0)
}

// EncodeErrorRetry builds an Error payload carrying a retry hint: the
// server suggests the client wait retryAfterMs milliseconds before trying
// again (overload shedding, connection-limit refusals). The hint is an
// optional trailing field, omitted when zero, so version-1 decoders —
// which read code, msg, and detail from the front and ignore trailing
// bytes — parse the payload unchanged and see "no hint".
func EncodeErrorRetry(code uint16, msg, detail string, retryAfterMs uint32) []byte {
	dst := binary.AppendUvarint(nil, uint64(code))
	dst = AppendString(dst, msg)
	dst = AppendString(dst, detail)
	if retryAfterMs > 0 {
		dst = binary.AppendUvarint(dst, uint64(retryAfterMs))
	}
	return dst
}

// DecodeError parses an Error payload, ignoring any retry hint — the
// version-1 view of the payload.
func DecodeError(p []byte) (code uint16, msg, detail string, err error) {
	code, msg, detail, _, err = DecodeErrorRetry(p)
	return code, msg, detail, err
}

// DecodeErrorRetry parses an Error payload including the optional
// RetryAfterMs hint (0 when absent).
func DecodeErrorRetry(p []byte) (code uint16, msg, detail string, retryAfterMs uint32, err error) {
	c, sz := binary.Uvarint(p)
	if sz <= 0 || c > 0xFFFF {
		return 0, "", "", 0, fmt.Errorf("wire: corrupt error code")
	}
	p = p[sz:]
	msg, n, err := ReadString(p)
	if err != nil {
		return 0, "", "", 0, err
	}
	p = p[n:]
	detail, n, err = ReadString(p)
	if err != nil {
		return 0, "", "", 0, err
	}
	if p = p[n:]; len(p) > 0 {
		r, sz := binary.Uvarint(p)
		if sz <= 0 || r > 1<<31 {
			return 0, "", "", 0, fmt.Errorf("wire: corrupt retry hint")
		}
		retryAfterMs = uint32(r)
	}
	return uint16(c), msg, detail, retryAfterMs, nil
}

// --- replication -----------------------------------------------------------
//
// The replication frame family (Subscribe, LogBatch, Watermark, Snapshot*)
// follows the same trailing-field discipline as the rest of the protocol:
// fixed fields decode from the front, unknown trailing bytes are ignored,
// so either end can be upgraded first. LogBatch payloads are a WAL record
// stream (internal/wal.AppendRecordStream) and SnapshotChunk payloads are
// raw store bytes; both are opaque at this layer.

// EncodeSubscribe builds a Subscribe payload: the first LSN the follower
// still needs (its own next LSN after local recovery).
func EncodeSubscribe(fromLSN uint64) []byte {
	return binary.AppendUvarint(nil, fromLSN)
}

// DecodeSubscribe parses a Subscribe payload.
func DecodeSubscribe(p []byte) (uint64, error) {
	lsn, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, fmt.Errorf("wire: corrupt subscribe LSN")
	}
	return lsn, nil
}

// EncodeWatermark builds a Watermark payload: the leader's highest
// appended LSN and its transaction-time clock at that point. Sent after
// every log batch and as an idle heartbeat, it is what lets a follower
// *know* it is caught up (and how far behind it is when it is not).
func EncodeWatermark(lsn, clock uint64) []byte {
	dst := binary.AppendUvarint(nil, lsn)
	return binary.AppendUvarint(dst, clock)
}

// DecodeWatermark parses a Watermark payload.
func DecodeWatermark(p []byte) (lsn, clock uint64, err error) {
	lsn, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, 0, fmt.Errorf("wire: corrupt watermark LSN")
	}
	p = p[sz:]
	clock, sz = binary.Uvarint(p)
	if sz <= 0 {
		return 0, 0, fmt.Errorf("wire: corrupt watermark clock")
	}
	return lsn, clock, nil
}

// EncodeSnapshotOffer builds a SnapshotOffer payload: the LSN log batches
// will resume from once the snapshot is applied, and the snapshot's total
// byte size (chunks follow until SnapshotDone).
func EncodeSnapshotOffer(startLSN, size uint64) []byte {
	dst := binary.AppendUvarint(nil, startLSN)
	return binary.AppendUvarint(dst, size)
}

// DecodeSnapshotOffer parses a SnapshotOffer payload.
func DecodeSnapshotOffer(p []byte) (startLSN, size uint64, err error) {
	startLSN, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, 0, fmt.Errorf("wire: corrupt snapshot start LSN")
	}
	p = p[sz:]
	size, sz = binary.Uvarint(p)
	if sz <= 0 {
		return 0, 0, fmt.Errorf("wire: corrupt snapshot size")
	}
	return startLSN, size, nil
}

// EncodeSnapshotDone builds a SnapshotDone payload: the SHA-256 digest of
// the snapshot bytes, so the follower can verify the transfer before
// trusting the store it is about to open.
func EncodeSnapshotDone(digest []byte) []byte {
	return AppendString(nil, string(digest))
}

// DecodeSnapshotDone parses a SnapshotDone payload.
func DecodeSnapshotDone(p []byte) ([]byte, error) {
	s, _, err := ReadString(p)
	if err != nil {
		return nil, err
	}
	return []byte(s), nil
}
