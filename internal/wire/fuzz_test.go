package wire

import (
	"bytes"
	"testing"

	"tcodm/internal/value"
)

// FuzzDecodeFrame throws arbitrary bytes at the full decode stack: frame
// framing first, then every payload decoder against the frame's payload
// regardless of its type byte (a hostile peer can put any payload under
// any type). The invariants: no panic, no allocation beyond the bytes
// received, and well-formed inputs round-trip exactly.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 1})
	f.Add([]byte{0, 0, 0, 2, 99, FramePing})                // bad version
	f.Add([]byte{0, 0, 0, 200, Version, FrameQuery, 'x'})   // truncated body
	f.Add([]byte{0, 0, 0, 4, VersionLegacy, FramePing, 'h', 'i'}) // legacy checksum-free frame
	f.Add([]byte{0, 0, 0, 6, Version, FramePing, 0, 0, 0, 0})     // v2 frame, bad checksum
	f.Add(AppendFrame(nil, FrameQuery, EncodeQuery("SELECT e FROM emp e")))
	f.Add(AppendFrame(nil, FrameExec, EncodeExec("q $1", []value.V{value.Int(1), value.String_("s")})))
	f.Add(AppendFrame(nil, FrameWelcome, EncodeWelcome("srv", 7)))
	f.Add(AppendFrame(nil, FrameResultHeader, EncodeResultHeader([]string{"a", "b"})))
	f.Add(AppendFrame(nil, FrameResultRows, EncodeResultRows([][]value.V{{value.Float(1.5), value.Null}})))
	f.Add(AppendFrame(nil, FrameResultDone, EncodeResultDone(ResultDone{Plan: "scan", Rows: 2})))
	f.Add(AppendFrame(nil, FrameError, EncodeError(CodeProtocol, "bad", "frame")))
	f.Add(AppendFrame(nil, FrameError, EncodeErrorRetry(CodeBusy, "overloaded", "queue full", 250)))

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < 6 || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		if len(frame.Payload) > MaxPayload {
			t.Fatalf("payload %d exceeds MaxPayload", len(frame.Payload))
		}
		// The stream reader must agree with the slice decoder.
		sf, serr := ReadFrame(bytes.NewReader(data))
		if serr != nil {
			t.Fatalf("DecodeFrame accepted what ReadFrame rejected: %v", serr)
		}
		if sf.Type != frame.Type || !bytes.Equal(sf.Payload, frame.Payload) {
			t.Fatal("DecodeFrame and ReadFrame disagree")
		}

		p := frame.Payload
		// Every payload decoder must tolerate every payload: error, never
		// panic. When one succeeds, encode→decode of the result must be
		// lossless (the input bytes themselves need not be canonical —
		// uvarint tolerates non-minimal encodings).
		if text, err := DecodeQuery(p); err == nil {
			if got, err2 := DecodeQuery(EncodeQuery(text)); err2 != nil || got != text {
				t.Fatalf("query round-trip: %q -> %q, %v", text, got, err2)
			}
		}
		if text, params, err := DecodeExec(p); err == nil {
			t2, p2, err2 := DecodeExec(EncodeExec(text, params))
			if err2 != nil || t2 != text || len(p2) != len(params) {
				t.Fatalf("exec round-trip: %v", err2)
			}
			for i := range params {
				if p2[i] != params[i] {
					t.Fatalf("exec param %d changed in round trip", i)
				}
			}
		}
		if banner, sid, err := DecodeWelcome(p); err == nil {
			_ = banner
			_ = sid
		}
		if cols, err := DecodeResultHeader(p); err == nil && len(cols) > len(p) {
			t.Fatalf("decoded %d columns from %d payload bytes", len(cols), len(p))
		}
		if rows, err := DecodeResultRows(p); err == nil && len(rows) > len(p) {
			t.Fatalf("decoded %d rows from %d payload bytes", len(rows), len(p))
		}
		if _, err := DecodeResultDone(p); err == nil {
			// fine
		}
		if code, msg, detail, err := DecodeError(p); err == nil {
			// The v1 and retry-aware decoders must agree on the shared
			// fields, and a decoded hint must round-trip.
			c2, m2, d2, retry, err2 := DecodeErrorRetry(p)
			if err2 == nil && (c2 != code || m2 != msg || d2 != detail) {
				t.Fatalf("DecodeError and DecodeErrorRetry disagree on %q", p)
			}
			if err2 == nil {
				rc, rm, rd, rr, rerr := DecodeErrorRetry(EncodeErrorRetry(c2, m2, d2, retry))
				if rerr != nil || rc != c2 || rm != m2 || rd != d2 || rr != retry {
					t.Fatalf("error retry round-trip changed: %v", rerr)
				}
			}
		}
		if _, _, err := DecodeOption(p); err == nil {
			// fine
		}
	})
}
