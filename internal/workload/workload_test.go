package workload

import (
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/baseline"
	"tcodm/internal/core"
	"tcodm/internal/schema"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

func openPersonnelDB(t *testing.T, strat atom.Strategy) *core.Engine {
	t.Helper()
	db, err := core.Open(core.Options{Strategy: strat})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	sch, err := PersonnelSchema()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(name)
		if err := db.DefineAtomType(*at); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range sch.MoleculeTypeNames() {
		mt, _ := sch.MoleculeType(name)
		if err := db.DefineMoleculeType(*mt); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestPersonnelDeterminism(t *testing.T) {
	p := DefaultPersonnel()
	a := Personnel(p)
	b := Personnel(p)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].From != b[i].From || a[i].Handle != b[i].Handle {
			t.Fatalf("op %d differs", i)
		}
	}
	// Expected composition.
	inserts := countInserts(a)
	if inserts != p.Depts+p.Emps {
		t.Errorf("inserts = %d, want %d", inserts, p.Depts+p.Emps)
	}
}

func TestPersonnelAppliesToAllStrategies(t *testing.T) {
	p := PersonnelParams{Depts: 3, Emps: 20, UpdatesPerEmp: 3, MovesPerEmp: 1, TimeStep: 10, Seed: 1}
	ops := Personnel(p)
	for _, strat := range []atom.Strategy{atom.StrategyEmbedded, atom.StrategySeparated, atom.StrategyTuple} {
		t.Run(strat.String(), func(t *testing.T) {
			db := openPersonnelDB(t, strat)
			app := NewEngineApplier(db, 16)
			ids, err := Apply(ops, app)
			if err != nil {
				t.Fatal(err)
			}
			if err := app.Flush(); err != nil {
				t.Fatal(err)
			}
			if len(ids) != p.Depts+p.Emps {
				t.Fatalf("ids = %d", len(ids))
			}
			// Every employee has UpdatesPerEmp+MovesPerEmp+1 dept/salary
			// versions in total; check one.
			hist, err := db.History(ids[p.Depts], "salary", atom.Now)
			if err != nil {
				t.Fatal(err)
			}
			if len(hist) != p.UpdatesPerEmp+1 {
				t.Errorf("salary versions = %d, want %d", len(hist), p.UpdatesPerEmp+1)
			}
			// The molecule query works on the loaded data.
			res, err := db.Query(`SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT 5`)
			if err != nil {
				t.Fatal(err)
			}
			total := int64(0)
			for _, row := range res.Rows {
				total += row[1].AsInt()
			}
			if total != int64(p.Emps) {
				t.Errorf("total staffed employees = %d, want %d", total, p.Emps)
			}
		})
	}
}

func TestPersonnelAppliesToBaselines(t *testing.T) {
	p := PersonnelParams{Depts: 3, Emps: 20, UpdatesPerEmp: 3, MovesPerEmp: 1, TimeStep: 10, Seed: 1}
	ops := Personnel(p)
	sch, _ := PersonnelSchema()

	st, err := baseline.NewStore(sch, 128)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := Apply(ops, &StoreApplier{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline keeps only the final state.
	got, err := st.Get(ids[p.Depts])
	if err != nil {
		t.Fatal(err)
	}
	if got.Vals["salary"].IsNull() {
		t.Error("baseline lost the salary")
	}
	// Molecule works on the baseline.
	mt, _ := sch.MoleculeType("DeptStaff")
	mol, err := st.Molecule(mt, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(mol) < 1 {
		t.Error("baseline molecule empty")
	}

	ar, err := baseline.NewArchive(sch, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(ops, &ArchiveApplier{Archive: ar}); err != nil {
		t.Fatal(err)
	}
	if ar.Copies() == 0 || ar.ArchivedBytes() == 0 {
		t.Errorf("archive took %d copies, %d bytes", ar.Copies(), ar.ArchivedBytes())
	}
}

func TestCADWorkload(t *testing.T) {
	p := CADParams{Assemblies: 2, Fanout: 2, Depth: 2, Revisions: 2, TimeStep: 10, Seed: 3}
	ops := CAD(p)
	db, err := core.Open(core.Options{Strategy: atom.StrategySeparated})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sch, err := CADSchema()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(name)
		if err := db.DefineAtomType(*at); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range sch.MoleculeTypeNames() {
		mt, _ := sch.MoleculeType(name)
		if err := db.DefineMoleculeType(*mt); err != nil {
			t.Fatal(err)
		}
	}
	app := NewEngineApplier(db, 32)
	ids, err := Apply(ops, app)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Flush(); err != nil {
		t.Fatal(err)
	}
	// Each assembly's molecule: fanout=2, depth=2 -> 2 + 2*2 = 6 parts + asm.
	mol, err := db.Molecule("Design", ids[0], 5, atom.Now)
	if err != nil {
		t.Fatal(err)
	}
	wantParts := 2 + 2*2
	if mol.Size() != wantParts+1 {
		t.Errorf("design molecule size = %d, want %d", mol.Size(), wantParts+1)
	}
	// Parts have revision histories.
	parts, err := db.IDs("Part")
	if err != nil || len(parts) == 0 {
		t.Fatalf("parts: %v, %v", parts, err)
	}
	hist, err := db.History(parts[0], "weight", atom.Now)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != p.Revisions+1 {
		t.Errorf("weight versions = %d, want %d", len(hist), p.Revisions+1)
	}
}

func TestApplyPropagatesErrors(t *testing.T) {
	sch := schema.New()
	_ = sch.AddAtomType(schema.AtomType{Name: "T", Attrs: []schema.Attribute{{Name: "x", Kind: value.KindInt}}})
	sch.Freeze()
	st, _ := baseline.NewStore(sch, 64)
	ops := []Op{{Kind: OpInsert, Type: "Missing", From: 0}}
	if _, err := Apply(ops, &StoreApplier{Store: st}); err == nil {
		t.Error("bad op applied silently")
	}
}

func TestCADDeterminism(t *testing.T) {
	p := DefaultCAD()
	a, b := CAD(p), CAD(p)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Handle != b[i].Handle || a[i].Target != b[i].Target {
			t.Fatalf("op %d differs", i)
		}
	}
	// Changing the seed changes the content.
	p2 := p
	p2.Seed++
	c := CAD(p2)
	same := true
	for i := range a {
		if a[i].Kind == OpUpdate && c[i].Kind == OpUpdate && !a[i].Val.Equal(c[i].Val) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical update values")
	}
}

func TestPersonnelHireStagger(t *testing.T) {
	p := PersonnelParams{Depts: 2, Emps: 5, UpdatesPerEmp: 1, HireStagger: 3, TimeStep: 7, Seed: 1}
	ops := Personnel(p)
	// Employee e is inserted at 3e and updated at 3e+7.
	empSeen := 0
	for _, op := range ops {
		if op.Kind == OpInsert && op.Type == "Emp" {
			if op.From != temporal.Instant(3*empSeen) {
				t.Errorf("emp %d hired at %v, want %v", empSeen, op.From, 3*empSeen)
			}
			empSeen++
		}
		if op.Kind == OpUpdate && op.Attr == "salary" {
			h := op.Handle - p.Depts
			if op.From != temporal.Instant(3*h+7) {
				t.Errorf("emp %d updated at %v, want %v", h, op.From, 3*h+7)
			}
		}
	}
	if empSeen != 5 {
		t.Errorf("emps = %d", empSeen)
	}
}
