package workload

import (
	"tcodm/internal/baseline"
	"tcodm/internal/core"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// EngineApplier applies workload operations to the temporal engine,
// batching BatchSize operations per transaction (1 = a transaction per
// operation; larger batches amortize commit costs).
type EngineApplier struct {
	DB        *core.Engine
	BatchSize int

	tx      *core.Txn
	pending int
}

// NewEngineApplier wraps db with the given batch size.
func NewEngineApplier(db *core.Engine, batchSize int) *EngineApplier {
	if batchSize <= 0 {
		batchSize = 1
	}
	return &EngineApplier{DB: db, BatchSize: batchSize}
}

func (a *EngineApplier) begin() (*core.Txn, error) {
	if a.tx == nil {
		tx, err := a.DB.Begin()
		if err != nil {
			return nil, err
		}
		a.tx = tx
		a.pending = 0
	}
	return a.tx, nil
}

func (a *EngineApplier) step() error {
	a.pending++
	if a.pending >= a.BatchSize {
		return a.Flush()
	}
	return nil
}

// Flush commits the open batch, if any.
func (a *EngineApplier) Flush() error {
	if a.tx == nil {
		return nil
	}
	err := a.tx.Commit()
	a.tx = nil
	return err
}

// Insert implements Applier.
func (a *EngineApplier) Insert(typeName string, vals map[string]value.V, from temporal.Instant) (value.ID, error) {
	tx, err := a.begin()
	if err != nil {
		return 0, err
	}
	id, err := tx.Insert(typeName, vals, from)
	if err != nil {
		return 0, err
	}
	return id, a.step()
}

// Update implements Applier.
func (a *EngineApplier) Update(id value.ID, attr string, v value.V, from temporal.Instant) error {
	tx, err := a.begin()
	if err != nil {
		return err
	}
	if err := tx.Set(id, attr, v, from); err != nil {
		return err
	}
	return a.step()
}

// AddRef implements Applier.
func (a *EngineApplier) AddRef(id value.ID, attr string, target value.ID, from temporal.Instant) error {
	tx, err := a.begin()
	if err != nil {
		return err
	}
	if err := tx.AddRef(id, attr, target, temporal.Open(from)); err != nil {
		return err
	}
	return a.step()
}

// RemoveRef implements Applier.
func (a *EngineApplier) RemoveRef(id value.ID, attr string, target value.ID, from temporal.Instant) error {
	tx, err := a.begin()
	if err != nil {
		return err
	}
	if err := tx.RemoveRef(id, attr, target, temporal.Open(from)); err != nil {
		return err
	}
	return a.step()
}

// Delete implements Applier.
func (a *EngineApplier) Delete(id value.ID, from temporal.Instant) error {
	tx, err := a.begin()
	if err != nil {
		return err
	}
	if err := tx.Delete(id, from); err != nil {
		return err
	}
	return a.step()
}

// StoreApplier applies workload operations to the non-temporal baseline,
// discarding valid time (the baseline keeps only current state).
type StoreApplier struct {
	Store *baseline.Store
}

// Insert implements Applier.
func (a *StoreApplier) Insert(typeName string, vals map[string]value.V, _ temporal.Instant) (value.ID, error) {
	return a.Store.Insert(typeName, vals)
}

// Update implements Applier.
func (a *StoreApplier) Update(id value.ID, attr string, v value.V, _ temporal.Instant) error {
	return a.Store.Update(id, attr, v)
}

// AddRef implements Applier.
func (a *StoreApplier) AddRef(id value.ID, attr string, target value.ID, _ temporal.Instant) error {
	return a.Store.AddRef(id, attr, target)
}

// RemoveRef implements Applier.
func (a *StoreApplier) RemoveRef(id value.ID, attr string, target value.ID, _ temporal.Instant) error {
	return a.Store.RemoveRef(id, attr, target)
}

// Delete implements Applier.
func (a *StoreApplier) Delete(id value.ID, _ temporal.Instant) error {
	return a.Store.Delete(id)
}

// ArchiveApplier applies workload operations to the snapshot-copy baseline:
// whenever valid time advances, the whole database is archived first (the
// "copy the database per version" discipline).
type ArchiveApplier struct {
	Archive *baseline.Archive
	lastT   temporal.Instant
}

func (a *ArchiveApplier) tick(from temporal.Instant) error {
	if from > a.lastT {
		a.lastT = from
		return a.Archive.Snapshot()
	}
	return nil
}

// Insert implements Applier.
func (a *ArchiveApplier) Insert(typeName string, vals map[string]value.V, from temporal.Instant) (value.ID, error) {
	if err := a.tick(from); err != nil {
		return 0, err
	}
	return a.Archive.Insert(typeName, vals)
}

// Update implements Applier.
func (a *ArchiveApplier) Update(id value.ID, attr string, v value.V, from temporal.Instant) error {
	if err := a.tick(from); err != nil {
		return err
	}
	return a.Archive.Update(id, attr, v)
}

// AddRef implements Applier.
func (a *ArchiveApplier) AddRef(id value.ID, attr string, target value.ID, from temporal.Instant) error {
	if err := a.tick(from); err != nil {
		return err
	}
	return a.Archive.AddRef(id, attr, target)
}

// RemoveRef implements Applier.
func (a *ArchiveApplier) RemoveRef(id value.ID, attr string, target value.ID, from temporal.Instant) error {
	if err := a.tick(from); err != nil {
		return err
	}
	return a.Archive.RemoveRef(id, attr, target)
}

// Delete implements Applier.
func (a *ArchiveApplier) Delete(id value.ID, from temporal.Instant) error {
	if err := a.tick(from); err != nil {
		return err
	}
	return a.Archive.Delete(id)
}
