// Package workload provides the deterministic synthetic workload
// generators the evaluation runs on: the personnel database (departments,
// employees, salary and assignment histories — the standard motivating
// example of temporal data models) and the CAD design database (assemblies
// of parts with revision histories — the standard motivating example of
// complex-object models). Workloads are generated as operation lists so
// the same history can be applied to the temporal engine (any strategy)
// and to the baselines.
package workload

import (
	"fmt"
	"math/rand"

	"tcodm/internal/schema"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// OpKind enumerates workload operations.
type OpKind uint8

const (
	// OpInsert creates an atom; its position in the op list defines its
	// handle (index into the applier's id table).
	OpInsert OpKind = iota
	// OpUpdate sets a plain attribute from a valid instant on.
	OpUpdate
	// OpAddRef attaches a many-reference member.
	OpAddRef
	// OpRemoveRef detaches a many-reference member.
	OpRemoveRef
	// OpDelete ends an atom's existence.
	OpDelete
	// OpUpdateRef retargets a One-reference attribute to another handle.
	OpUpdateRef
)

// Op is one workload operation. Atom identity is positional: Handle and
// Target index the sequence of OpInserts.
type Op struct {
	Kind   OpKind
	Type   string             // OpInsert
	Vals   map[string]value.V // OpInsert
	Refs   map[string]int     // OpInsert: One-reference initializations by handle
	Handle int                // subject atom (insert order index)
	Attr   string
	Val    value.V
	Target int // reference target handle
	From   temporal.Instant
}

// Applier consumes a workload. The engine and the baselines implement it.
type Applier interface {
	Insert(typeName string, vals map[string]value.V, from temporal.Instant) (value.ID, error)
	Update(id value.ID, attr string, v value.V, from temporal.Instant) error
	AddRef(id value.ID, attr string, target value.ID, from temporal.Instant) error
	RemoveRef(id value.ID, attr string, target value.ID, from temporal.Instant) error
	Delete(id value.ID, from temporal.Instant) error
}

// Apply replays ops against an applier, returning the id table (handle ->
// assigned surrogate).
func Apply(ops []Op, a Applier) ([]value.ID, error) {
	var ids []value.ID
	for i, op := range ops {
		switch op.Kind {
		case OpInsert:
			vals := map[string]value.V{}
			for k, v := range op.Vals {
				vals[k] = v
			}
			for attr, h := range op.Refs {
				vals[attr] = value.Ref(ids[h])
			}
			id, err := a.Insert(op.Type, vals, op.From)
			if err != nil {
				return nil, fmt.Errorf("workload: op %d (insert %s): %w", i, op.Type, err)
			}
			ids = append(ids, id)
		case OpUpdate:
			if err := a.Update(ids[op.Handle], op.Attr, op.Val, op.From); err != nil {
				return nil, fmt.Errorf("workload: op %d (update): %w", i, err)
			}
		case OpUpdateRef:
			if err := a.Update(ids[op.Handle], op.Attr, value.Ref(ids[op.Target]), op.From); err != nil {
				return nil, fmt.Errorf("workload: op %d (update-ref): %w", i, err)
			}
		case OpAddRef:
			if err := a.AddRef(ids[op.Handle], op.Attr, ids[op.Target], op.From); err != nil {
				return nil, fmt.Errorf("workload: op %d (addref): %w", i, err)
			}
		case OpRemoveRef:
			if err := a.RemoveRef(ids[op.Handle], op.Attr, ids[op.Target], op.From); err != nil {
				return nil, fmt.Errorf("workload: op %d (removeref): %w", i, err)
			}
		case OpDelete:
			if err := a.Delete(ids[op.Handle], op.From); err != nil {
				return nil, fmt.Errorf("workload: op %d (delete): %w", i, err)
			}
		}
	}
	return ids, nil
}

// --- Personnel workload -------------------------------------------------------

// PersonnelParams size the personnel workload.
type PersonnelParams struct {
	Depts         int
	Emps          int
	UpdatesPerEmp int // salary updates per employee
	MovesPerEmp   int // department reassignments per employee
	// UpdateFraction is the share of employees touched per update round
	// (0 or 1 = everyone). Sparse rounds separate per-change costs from
	// per-epoch costs (snapshot copies pay for unchanged atoms too).
	UpdateFraction float64
	// HireStagger > 0 spreads hire dates (employee e joins at e×HireStagger)
	// and staggers each employee's updates relative to their own hire date,
	// giving version start instants a spread the time index can exploit.
	HireStagger temporal.Instant
	TimeStep    temporal.Instant
	Seed        int64
}

// DefaultPersonnel returns laptop-scale defaults.
func DefaultPersonnel() PersonnelParams {
	return PersonnelParams{Depts: 8, Emps: 200, UpdatesPerEmp: 8, MovesPerEmp: 2, TimeStep: 10, Seed: 42}
}

// PersonnelSchema returns the personnel schema.
func PersonnelSchema() (*schema.Schema, error) {
	s := schema.New()
	if err := s.AddAtomType(schema.AtomType{
		Name: "Dept",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "budget", Kind: value.KindInt, Temporal: true},
		},
	}); err != nil {
		return nil, err
	}
	if err := s.AddAtomType(schema.AtomType{
		Name: "Emp",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			// bio is the atom's stable payload (address, title, notes in a
			// real system). It never changes, so it separates approaches
			// that version at attribute granularity from those that copy
			// whole atoms per version.
			{Name: "bio", Kind: value.KindString},
			{Name: "salary", Kind: value.KindInt, Temporal: true},
			{Name: "dept", Kind: value.KindID, Target: "Dept", Card: schema.One, Temporal: true},
		},
	}); err != nil {
		return nil, err
	}
	if err := s.AddAtomType(schema.AtomType{
		Name: "Proj",
		Attrs: []schema.Attribute{
			{Name: "title", Kind: value.KindString},
			{Name: "members", Kind: value.KindID, Target: "Emp", Card: schema.Many, Temporal: true},
		},
	}); err != nil {
		return nil, err
	}
	if err := s.AddMoleculeType(schema.MoleculeType{
		Name:  "DeptStaff",
		Root:  "Dept",
		Edges: []schema.MoleculeEdge{{From: "Dept", Attr: "dept", To: "Emp", Reverse: true}},
	}); err != nil {
		return nil, err
	}
	s.Freeze()
	return s, nil
}

// Personnel generates the personnel op list: departments and employees
// inserted at t=0, then rounds of salary raises and department moves
// advancing valid time by TimeStep per round.
func Personnel(p PersonnelParams) []Op {
	rng := rand.New(rand.NewSource(p.Seed))
	var ops []Op
	for d := 0; d < p.Depts; d++ {
		ops = append(ops, Op{Kind: OpInsert, Type: "Dept", From: 0, Vals: map[string]value.V{
			"name":   value.String_(fmt.Sprintf("dept-%02d", d)),
			"budget": value.Int(int64(10000 * (d + 1))),
		}})
	}
	empBase := p.Depts
	bio := make([]byte, 160)
	hire := func(e int) temporal.Instant { return temporal.Instant(e) * p.HireStagger }
	for e := 0; e < p.Emps; e++ {
		for i := range bio {
			bio[i] = byte('a' + rng.Intn(26))
		}
		ops = append(ops, Op{Kind: OpInsert, Type: "Emp", From: hire(e),
			Vals: map[string]value.V{
				"name":   value.String_(fmt.Sprintf("emp-%04d", e)),
				"bio":    value.String_(string(bio)),
				"salary": value.Int(int64(1000 + rng.Intn(4000))),
			},
			Refs: map[string]int{"dept": rng.Intn(p.Depts)},
		})
	}
	// Interleave rounds of updates so histories grow in lock-step.
	rounds := p.UpdatesPerEmp + p.MovesPerEmp
	t := p.TimeStep
	moveEvery := 1
	if p.MovesPerEmp > 0 {
		moveEvery = rounds / p.MovesPerEmp
	}
	frac := p.UpdateFraction
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	for r := 0; r < rounds; r++ {
		isMove := p.MovesPerEmp > 0 && (r+1)%moveEvery == 0
		for e := 0; e < p.Emps; e++ {
			if frac < 1 && rng.Float64() >= frac {
				continue
			}
			h := empBase + e
			from := t
			if p.HireStagger > 0 {
				from = hire(e) + temporal.Instant(r+1)*p.TimeStep
			}
			if isMove {
				ops = append(ops, Op{Kind: OpUpdateRef, Handle: h, Attr: "dept",
					Target: rng.Intn(p.Depts), From: from})
			} else {
				ops = append(ops, Op{Kind: OpUpdate, Handle: h, Attr: "salary",
					Val: value.Int(int64(1000 + rng.Intn(9000))), From: from})
			}
		}
		t += p.TimeStep
	}
	return ops
}

// --- CAD workload ----------------------------------------------------------

// CADParams size the design-database workload.
type CADParams struct {
	Assemblies int
	Fanout     int // parts per assembly (and sub-parts per part)
	Depth      int // levels of part nesting below the assembly
	Revisions  int // weight revisions per part
	TimeStep   temporal.Instant
	Seed       int64
}

// DefaultCAD returns laptop-scale defaults.
func DefaultCAD() CADParams {
	return CADParams{Assemblies: 4, Fanout: 4, Depth: 3, Revisions: 4, TimeStep: 10, Seed: 7}
}

// CADSchema returns the design-database schema.
func CADSchema() (*schema.Schema, error) {
	s := schema.New()
	if err := s.AddAtomType(schema.AtomType{
		Name: "Assembly",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "rev", Kind: value.KindInt, Temporal: true},
		},
	}); err != nil {
		return nil, err
	}
	if err := s.AddAtomType(schema.AtomType{
		Name: "Part",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "weight", Kind: value.KindInt, Temporal: true},
			{Name: "assembly", Kind: value.KindID, Target: "Assembly", Card: schema.One, Temporal: true},
			{Name: "uses", Kind: value.KindID, Target: "Part", Card: schema.Many, Temporal: true},
		},
	}); err != nil {
		return nil, err
	}
	if err := s.AddMoleculeType(schema.MoleculeType{
		Name: "Design",
		Root: "Assembly",
		Edges: []schema.MoleculeEdge{
			{From: "Assembly", Attr: "assembly", To: "Part", Reverse: true},
			{From: "Part", Attr: "uses", To: "Part"},
		},
	}); err != nil {
		return nil, err
	}
	s.Freeze()
	return s, nil
}

// CAD generates the design workload: each assembly owns Fanout top-level
// parts; each part at depth < Depth uses Fanout sub-parts; every part's
// weight is revised Revisions times.
func CAD(p CADParams) []Op {
	rng := rand.New(rand.NewSource(p.Seed))
	var ops []Op
	var partHandles []int

	var addParts func(asmHandle, parentPart, depth int)
	addParts = func(asmHandle, parentPart, depth int) {
		for f := 0; f < p.Fanout; f++ {
			op := Op{Kind: OpInsert, Type: "Part", From: 0, Vals: map[string]value.V{
				"name":   value.String_(fmt.Sprintf("part-%d", len(partHandles))),
				"weight": value.Int(int64(1 + rng.Intn(100))),
			}}
			if parentPart < 0 {
				op.Refs = map[string]int{"assembly": asmHandle}
			}
			ops = append(ops, op)
			handle := countInserts(ops) - 1
			partHandles = append(partHandles, handle)
			if parentPart >= 0 {
				ops = append(ops, Op{Kind: OpAddRef, Handle: parentPart, Attr: "uses", Target: handle, From: 0})
			}
			if depth+1 < p.Depth {
				addParts(asmHandle, handle, depth+1)
			}
		}
	}

	for a := 0; a < p.Assemblies; a++ {
		ops = append(ops, Op{Kind: OpInsert, Type: "Assembly", From: 0, Vals: map[string]value.V{
			"name": value.String_(fmt.Sprintf("asm-%d", a)),
			"rev":  value.Int(1),
		}})
		asmHandle := countInserts(ops) - 1
		addParts(asmHandle, -1, 0)
	}
	// Revision rounds.
	t := p.TimeStep
	for r := 0; r < p.Revisions; r++ {
		for _, h := range partHandles {
			ops = append(ops, Op{Kind: OpUpdate, Handle: h, Attr: "weight",
				Val: value.Int(int64(1 + rng.Intn(100))), From: t})
		}
		t += p.TimeStep
	}
	return ops
}

// countInserts counts the OpInserts in ops (the next insert's handle).
func countInserts(ops []Op) int {
	n := 0
	for _, op := range ops {
		if op.Kind == OpInsert {
			n++
		}
	}
	return n
}
