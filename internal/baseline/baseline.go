// Package baseline implements the comparators the evaluation measures the
// temporal engine against:
//
//   - Store: a conventional non-temporal complex-object store over the same
//     storage substrate — atoms keep only their current state, updates
//     overwrite in place, molecules materialize from current links. It
//     bounds the price of temporality (R-T2) and anchors storage costs.
//   - Archive: the naive temporal baseline — keep the current store and
//     write a complete snapshot copy of every atom at each version point
//     ("copy the database"), the approach attribute versioning is designed
//     to beat (R-T1).
package baseline

import (
	"encoding/binary"
	"fmt"
	"sort"

	"tcodm/internal/atom"
	"tcodm/internal/index"
	"tcodm/internal/schema"
	"tcodm/internal/storage"
	"tcodm/internal/value"
)

// Store is a non-temporal complex-object store: the MAD model without time.
type Store struct {
	dev     *storage.MemDevice
	heap    *storage.Heap
	pool    *storage.BufferPool
	schema  *schema.Schema
	primary *index.BPTree
	nextID  uint64
}

// NewStore creates a store over a fresh in-memory substrate.
func NewStore(sch *schema.Schema, poolPages int) (*Store, error) {
	dev := storage.NewMemDevice()
	pool := storage.NewBufferPool(dev, poolPages)
	if err := storage.InitMeta(pool); err != nil {
		return nil, err
	}
	heap := storage.NewHeap(pool, nil)
	primary, err := index.New(pool)
	if err != nil {
		return nil, err
	}
	return &Store{dev: dev, heap: heap, pool: pool, schema: sch, primary: primary, nextID: 1}, nil
}

// Pool exposes the buffer pool for statistics.
func (s *Store) Pool() *storage.BufferPool { return s.pool }

// record is the non-temporal atom state, persisted via the snapshot codec
// (with the temporal fields pinned to zero).
type record struct {
	snap *atom.Snapshot
	rid  storage.RID
}

func (s *Store) load(id value.ID) (*record, error) {
	v, ok, err := s.primary.Get(key(id))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("baseline: atom %v not found", id)
	}
	rid := storage.UnpackRID(v)
	data, err := s.heap.Fetch(rid)
	if err != nil {
		return nil, err
	}
	snap, err := atom.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	return &record{snap: snap, rid: rid}, nil
}

func (s *Store) save(r *record) error {
	return s.heap.Update(r.rid, atom.EncodeSnapshot(r.snap))
}

func key(id value.ID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return b[:]
}

// Insert creates an atom with the given plain attribute values.
func (s *Store) Insert(typeName string, vals map[string]value.V) (value.ID, error) {
	t, ok := s.schema.AtomType(typeName)
	if !ok {
		return 0, fmt.Errorf("baseline: unknown atom type %q", typeName)
	}
	id := value.ID(s.nextID)
	s.nextID++
	snap := &atom.Snapshot{
		ID: id, Type: typeName,
		Vals: map[string]value.V{}, Sets: map[string][]value.V{}, BackRefs: map[string][]value.ID{},
	}
	for name, v := range vals {
		at, ok := t.Attr(name)
		if !ok {
			return 0, fmt.Errorf("baseline: %s has no attribute %q", typeName, name)
		}
		if at.IsRef() && at.Card == schema.Many {
			return 0, fmt.Errorf("baseline: many-reference %q must use AddRef", name)
		}
		snap.Vals[name] = v
	}
	rid, err := s.heap.Insert(atom.EncodeSnapshot(snap))
	if err != nil {
		return 0, err
	}
	if err := s.primary.Insert(key(id), rid.Pack()); err != nil {
		return 0, err
	}
	// Maintain the inverse direction of initial references.
	for name, v := range vals {
		at, _ := t.Attr(name)
		if at.IsRef() && !v.IsNull() {
			if err := s.addBackRef(v.AsID(), typeName, name, id); err != nil {
				return 0, err
			}
		}
	}
	return id, nil
}

// Update overwrites a plain attribute's value.
func (s *Store) Update(id value.ID, attrName string, v value.V) error {
	r, err := s.load(id)
	if err != nil {
		return err
	}
	t, ok := s.schema.AtomType(r.snap.Type)
	if !ok {
		return fmt.Errorf("baseline: unknown type %q", r.snap.Type)
	}
	at, ok := t.Attr(attrName)
	if !ok {
		return fmt.Errorf("baseline: %s has no attribute %q", r.snap.Type, attrName)
	}
	if at.IsRef() {
		if old, ok := r.snap.Vals[attrName]; ok && !old.IsNull() {
			if err := s.removeBackRef(old.AsID(), r.snap.Type, attrName, id); err != nil {
				return err
			}
		}
		if !v.IsNull() {
			if err := s.addBackRef(v.AsID(), r.snap.Type, attrName, id); err != nil {
				return err
			}
		}
		// Reload: the back-reference maintenance may have touched us.
		r, err = s.load(id)
		if err != nil {
			return err
		}
	}
	r.snap.Vals[attrName] = v
	return s.save(r)
}

// AddRef attaches target to a many-reference.
func (s *Store) AddRef(id value.ID, attrName string, target value.ID) error {
	r, err := s.load(id)
	if err != nil {
		return err
	}
	for _, v := range r.snap.Sets[attrName] {
		if v.AsID() == target {
			return nil
		}
	}
	r.snap.Sets[attrName] = append(r.snap.Sets[attrName], value.Ref(target))
	if err := s.save(r); err != nil {
		return err
	}
	return s.addBackRef(target, r.snap.Type, attrName, id)
}

// RemoveRef detaches target from a many-reference.
func (s *Store) RemoveRef(id value.ID, attrName string, target value.ID) error {
	r, err := s.load(id)
	if err != nil {
		return err
	}
	vs := r.snap.Sets[attrName]
	out := vs[:0]
	for _, v := range vs {
		if v.AsID() != target {
			out = append(out, v)
		}
	}
	r.snap.Sets[attrName] = out
	if err := s.save(r); err != nil {
		return err
	}
	return s.removeBackRef(target, r.snap.Type, attrName, id)
}

// Delete removes an atom entirely (no history is kept — this is the point).
func (s *Store) Delete(id value.ID) error {
	r, err := s.load(id)
	if err != nil {
		return err
	}
	if err := s.heap.Delete(r.rid); err != nil {
		return err
	}
	_, err = s.primary.Delete(key(id))
	return err
}

func (s *Store) addBackRef(target value.ID, srcType, attrName string, src value.ID) error {
	r, err := s.load(target)
	if err != nil {
		return err
	}
	k := srcType + "." + attrName
	r.snap.BackRefs[k] = append(r.snap.BackRefs[k], src)
	return s.save(r)
}

func (s *Store) removeBackRef(target value.ID, srcType, attrName string, src value.ID) error {
	r, err := s.load(target)
	if err != nil {
		return err
	}
	k := srcType + "." + attrName
	ids := r.snap.BackRefs[k]
	out := ids[:0]
	for _, x := range ids {
		if x != src {
			out = append(out, x)
		}
	}
	r.snap.BackRefs[k] = out
	return s.save(r)
}

// Get returns the atom's current state in the engine's State shape.
func (s *Store) Get(id value.ID) (*atom.State, error) {
	r, err := s.load(id)
	if err != nil {
		return nil, err
	}
	st := &atom.State{
		ID: r.snap.ID, Type: r.snap.Type, Alive: true,
		Vals: r.snap.Vals, Sets: r.snap.Sets, BackRefs: map[string][]value.ID{},
	}
	for k, ids := range r.snap.BackRefs {
		cp := append([]value.ID(nil), ids...)
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		st.BackRefs[k] = cp
	}
	return st, nil
}

// Molecule materializes the current complex object rooted at root.
func (s *Store) Molecule(mt *schema.MoleculeType, root value.ID) (map[value.ID]*atom.State, error) {
	out := map[value.ID]*atom.State{}
	rootState, err := s.Get(root)
	if err != nil {
		return nil, err
	}
	if rootState.Type != mt.Root {
		return nil, fmt.Errorf("baseline: root %v has type %s, want %s", root, rootState.Type, mt.Root)
	}
	out[root] = rootState
	queue := []value.ID{root}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		st := out[id]
		for _, e := range mt.Edges {
			if e.From != st.Type {
				continue
			}
			var targets []value.ID
			if e.Reverse {
				targets = st.BackRefs[e.To+"."+e.Attr]
			} else if vs, ok := st.Sets[e.Attr]; ok {
				for _, v := range vs {
					targets = append(targets, v.AsID())
				}
			} else if v, ok := st.Vals[e.Attr]; ok && !v.IsNull() {
				targets = append(targets, v.AsID())
			}
			for _, tid := range targets {
				if _, seen := out[tid]; seen {
					continue
				}
				tst, err := s.Get(tid)
				if err != nil || tst.Type != e.To {
					continue
				}
				out[tid] = tst
				queue = append(queue, tid)
			}
		}
	}
	return out, nil
}

// IDs lists all atoms.
func (s *Store) IDs() []value.ID {
	var out []value.ID
	_ = s.primary.Scan(nil, func(k []byte, v uint64) (bool, error) {
		out = append(out, value.ID(binary.BigEndian.Uint64(k)))
		return true, nil
	})
	return out
}

// DeviceBytes returns the store's on-device footprint after a flush.
func (s *Store) DeviceBytes() (int64, error) {
	if err := s.pool.FlushAll(); err != nil {
		return 0, err
	}
	return int64(s.dev.NumPages()) * storage.PageSize, nil
}

// Archive is the naive temporal baseline: a Store plus full-copy
// snapshots. Each Snapshot() call archives the complete current state of
// every atom, so storage grows with (versions × database size).
type Archive struct {
	*Store
	archived int64 // bytes written to the archive so far
	copies   int
}

// NewArchive wraps a fresh store.
func NewArchive(sch *schema.Schema, poolPages int) (*Archive, error) {
	st, err := NewStore(sch, poolPages)
	if err != nil {
		return nil, err
	}
	return &Archive{Store: st}, nil
}

// Snapshot archives a complete copy of the current database state.
func (a *Archive) Snapshot() error {
	for _, id := range a.IDs() {
		r, err := a.load(id)
		if err != nil {
			return err
		}
		data := atom.EncodeSnapshot(r.snap)
		if _, err := a.heap.Insert(data); err != nil {
			return err
		}
		a.archived += int64(len(data))
	}
	a.copies++
	return nil
}

// ArchivedBytes returns the bytes written to the archive.
func (a *Archive) ArchivedBytes() int64 { return a.archived }

// Copies returns the number of full snapshots taken.
func (a *Archive) Copies() int { return a.copies }
