package baseline

import (
	"testing"

	"tcodm/internal/schema"
	"tcodm/internal/value"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddAtomType(schema.AtomType{
		Name: "Dept",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
		},
	}))
	must(s.AddAtomType(schema.AtomType{
		Name: "Emp",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "salary", Kind: value.KindInt},
			{Name: "dept", Kind: value.KindID, Target: "Dept", Card: schema.One},
			{Name: "mentors", Kind: value.KindID, Target: "Emp", Card: schema.Many},
		},
	}))
	must(s.AddMoleculeType(schema.MoleculeType{
		Name:  "DeptStaff",
		Root:  "Dept",
		Edges: []schema.MoleculeEdge{{From: "Dept", Attr: "dept", To: "Emp", Reverse: true}},
	}))
	s.Freeze()
	return s
}

func TestStoreCRUD(t *testing.T) {
	st, err := NewStore(testSchema(t), 128)
	if err != nil {
		t.Fatal(err)
	}
	d, err := st.Insert("Dept", map[string]value.V{"name": value.String_("k")})
	if err != nil {
		t.Fatal(err)
	}
	e, err := st.Insert("Emp", map[string]value.V{
		"name": value.String_("a"), "salary": value.Int(100), "dept": value.Ref(d),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(e)
	if err != nil {
		t.Fatal(err)
	}
	if got.Vals["salary"].AsInt() != 100 {
		t.Errorf("salary = %v", got.Vals["salary"])
	}
	// Update overwrites with no history.
	if err := st.Update(e, "salary", value.Int(200)); err != nil {
		t.Fatal(err)
	}
	got, _ = st.Get(e)
	if got.Vals["salary"].AsInt() != 200 {
		t.Errorf("salary after update = %v", got.Vals["salary"])
	}
	// Back-references on the department.
	dst, _ := st.Get(d)
	if refs := dst.BackRefs["Emp.dept"]; len(refs) != 1 || refs[0] != e {
		t.Errorf("backrefs = %v", refs)
	}
	// Errors.
	if _, err := st.Insert("Nope", nil); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := st.Insert("Emp", map[string]value.V{"bogus": value.Int(1)}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if err := st.Update(e, "bogus", value.Int(1)); err == nil {
		t.Error("update of unknown attribute accepted")
	}
	if _, err := st.Get(999); err == nil {
		t.Error("phantom atom readable")
	}
}

func TestStoreRefRetargeting(t *testing.T) {
	st, _ := NewStore(testSchema(t), 128)
	d1, _ := st.Insert("Dept", map[string]value.V{"name": value.String_("d1")})
	d2, _ := st.Insert("Dept", map[string]value.V{"name": value.String_("d2")})
	e, _ := st.Insert("Emp", map[string]value.V{"name": value.String_("a"), "dept": value.Ref(d1)})
	if err := st.Update(e, "dept", value.Ref(d2)); err != nil {
		t.Fatal(err)
	}
	d1st, _ := st.Get(d1)
	if len(d1st.BackRefs["Emp.dept"]) != 0 {
		t.Errorf("old dept keeps backref: %v", d1st.BackRefs)
	}
	d2st, _ := st.Get(d2)
	if refs := d2st.BackRefs["Emp.dept"]; len(refs) != 1 || refs[0] != e {
		t.Errorf("new dept backrefs = %v", refs)
	}
}

func TestStoreManyRefs(t *testing.T) {
	st, _ := NewStore(testSchema(t), 128)
	e1, _ := st.Insert("Emp", map[string]value.V{"name": value.String_("a")})
	e2, _ := st.Insert("Emp", map[string]value.V{"name": value.String_("b")})
	if err := st.AddRef(e1, "mentors", e2); err != nil {
		t.Fatal(err)
	}
	// Adding twice is a no-op.
	if err := st.AddRef(e1, "mentors", e2); err != nil {
		t.Fatal(err)
	}
	got, _ := st.Get(e1)
	if len(got.Sets["mentors"]) != 1 {
		t.Errorf("mentors = %v", got.Sets["mentors"])
	}
	if err := st.RemoveRef(e1, "mentors", e2); err != nil {
		t.Fatal(err)
	}
	got, _ = st.Get(e1)
	if len(got.Sets["mentors"]) != 0 {
		t.Errorf("mentors after remove = %v", got.Sets["mentors"])
	}
	e2st, _ := st.Get(e2)
	if len(e2st.BackRefs["Emp.mentors"]) != 0 {
		t.Errorf("stale mentor backref: %v", e2st.BackRefs)
	}
}

func TestStoreDeleteAndMolecule(t *testing.T) {
	sch := testSchema(t)
	st, _ := NewStore(sch, 128)
	d, _ := st.Insert("Dept", map[string]value.V{"name": value.String_("k")})
	var emps []value.ID
	for i := 0; i < 3; i++ {
		e, _ := st.Insert("Emp", map[string]value.V{"name": value.String_("e"), "dept": value.Ref(d)})
		emps = append(emps, e)
	}
	mt, _ := sch.MoleculeType("DeptStaff")
	mol, err := st.Molecule(mt, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(mol) != 4 {
		t.Fatalf("molecule size = %d", len(mol))
	}
	// Deletion is permanent — no history.
	if err := st.Delete(emps[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(emps[0]); err == nil {
		t.Error("deleted atom readable")
	}
	if ids := st.IDs(); len(ids) != 3 {
		t.Errorf("IDs = %v", ids)
	}
	// Wrong root type.
	if _, err := st.Molecule(mt, emps[1]); err == nil {
		t.Error("wrong molecule root accepted")
	}
}

func TestArchiveGrowsPerSnapshot(t *testing.T) {
	sch := testSchema(t)
	ar, err := NewArchive(sch, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ar.Insert("Emp", map[string]value.V{"name": value.String_("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ar.Snapshot(); err != nil {
		t.Fatal(err)
	}
	b1 := ar.ArchivedBytes()
	if b1 == 0 || ar.Copies() != 1 {
		t.Fatalf("first snapshot: %d bytes, %d copies", b1, ar.Copies())
	}
	if err := ar.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if ar.ArchivedBytes() != 2*b1 {
		t.Errorf("second snapshot did not double the archive: %d vs %d", ar.ArchivedBytes(), 2*b1)
	}
	bytes, err := ar.DeviceBytes()
	if err != nil || bytes == 0 {
		t.Errorf("DeviceBytes = %d, %v", bytes, err)
	}
}
