package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tcodm/internal/storage"
)

func newTree(t *testing.T, poolPages int) (*BPTree, *storage.BufferPool) {
	t.Helper()
	dev := storage.NewMemDevice()
	bp := storage.NewBufferPool(dev, poolPages)
	if err := storage.InitMeta(bp); err != nil {
		t.Fatal(err)
	}
	tr, err := New(bp)
	if err != nil {
		t.Fatal(err)
	}
	return tr, bp
}

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestBPTreeBasicCRUD(t *testing.T) {
	tr, _ := newTree(t, 64)
	if err := tr.Insert([]byte("beta"), 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("alpha"), 1); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte("alpha"))
	if err != nil || !ok || v != 1 {
		t.Fatalf("Get(alpha) = %d, %v, %v", v, ok, err)
	}
	if _, ok, _ := tr.Get([]byte("gamma")); ok {
		t.Error("phantom key")
	}
	// Replace.
	if err := tr.Insert([]byte("alpha"), 11); err != nil {
		t.Fatal(err)
	}
	v, _, _ = tr.Get([]byte("alpha"))
	if v != 11 {
		t.Errorf("after replace: %d", v)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
	// Delete.
	ok, err = tr.Delete([]byte("alpha"))
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, ok, _ := tr.Get([]byte("alpha")); ok {
		t.Error("deleted key still present")
	}
	ok, _ = tr.Delete([]byte("alpha"))
	if ok {
		t.Error("double delete reported success")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestBPTreeManyKeysSplits(t *testing.T) {
	tr, _ := newTree(t, 256)
	const n = 20000
	// Insert in a shuffled order to exercise splits everywhere.
	perm := rand.New(rand.NewSource(4)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(key(i), uint64(i)*3); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Errorf("tree of %d keys has height %d; splits never happened?", n, h)
	}
	for i := 0; i < n; i += 97 {
		v, ok, err := tr.Get(key(i))
		if err != nil || !ok || v != uint64(i)*3 {
			t.Fatalf("Get(%d) = %d, %v, %v", i, v, ok, err)
		}
	}
	// Full scan is ordered and complete.
	prev := -1
	count := 0
	err = tr.Scan(nil, func(k []byte, v uint64) (bool, error) {
		i := int(binary.BigEndian.Uint64(k))
		if i <= prev {
			return false, fmt.Errorf("out of order: %d after %d", i, prev)
		}
		if v != uint64(i)*3 {
			return false, fmt.Errorf("value mismatch at %d", i)
		}
		prev = i
		count++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan visited %d, want %d", count, n)
	}
}

func TestBPTreeVariableLengthKeys(t *testing.T) {
	tr, _ := newTree(t, 128)
	rng := rand.New(rand.NewSource(6))
	shadow := map[string]uint64{}
	for i := 0; i < 3000; i++ {
		klen := 1 + rng.Intn(60)
		k := make([]byte, klen)
		rng.Read(k)
		shadow[string(k)] = uint64(i)
		if err := tr.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for k, want := range shadow {
		v, ok, err := tr.Get([]byte(k))
		if err != nil || !ok || v != want {
			t.Fatalf("Get(%x) = %d, %v, %v; want %d", k, v, ok, err, want)
		}
	}
	if tr.Len() != len(shadow) {
		t.Errorf("Len = %d, want %d", tr.Len(), len(shadow))
	}
}

func TestBPTreeScanRange(t *testing.T) {
	tr, _ := newTree(t, 64)
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(key(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	err := tr.ScanRange(key(100), key(110), func(k []byte, v uint64) (bool, error) {
		got = append(got, int(v))
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 100 || got[9] != 109 {
		t.Fatalf("range scan = %v", got)
	}
	// Open-ended scan from near the top.
	var tail []int
	err = tr.Scan(key(997), func(k []byte, v uint64) (bool, error) {
		tail = append(tail, int(v))
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 3 {
		t.Fatalf("tail scan = %v", tail)
	}
	// Early stop.
	n := 0
	_ = tr.Scan(nil, func(k []byte, v uint64) (bool, error) {
		n++
		return n < 5, nil
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestBPTreeRandomizedAgainstModel(t *testing.T) {
	tr, _ := newTree(t, 128)
	rng := rand.New(rand.NewSource(8))
	model := map[string]uint64{}
	for i := 0; i < 20000; i++ {
		k := key(rng.Intn(2000))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Uint64()
			model[string(k)] = v
			if err := tr.Insert(k, v); err != nil {
				t.Fatal(err)
			}
		default:
			_, inModel := model[string(k)]
			ok, err := tr.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			if ok != inModel {
				t.Fatalf("delete presence mismatch for %x: tree %v, model %v", k, ok, inModel)
			}
			delete(model, string(k))
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
	}
	// Verify every model entry and full-scan order.
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	err := tr.Scan(nil, func(k []byte, v uint64) (bool, error) {
		if i >= len(keys) {
			return false, fmt.Errorf("scan yielded extra key %x", k)
		}
		if !bytes.Equal(k, []byte(keys[i])) {
			return false, fmt.Errorf("scan key %x, want %x", k, keys[i])
		}
		if v != model[keys[i]] {
			return false, fmt.Errorf("scan value mismatch at %x", k)
		}
		i++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(keys) {
		t.Fatalf("scan yielded %d keys, want %d", i, len(keys))
	}
}

func TestBPTreePersistsThroughPool(t *testing.T) {
	dev := storage.NewMemDevice()
	bp := storage.NewBufferPool(dev, 16) // small pool: evictions guaranteed
	if err := storage.InitMeta(bp); err != nil {
		t.Fatal(err)
	}
	tr, err := New(bp)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Reopen through a fresh pool over the same device.
	bp2 := storage.NewBufferPool(dev, 16)
	tr2, err := Open(bp2, tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", tr2.Len(), n)
	}
	for i := 0; i < n; i += 71 {
		v, ok, err := tr2.Get(key(i))
		if err != nil || !ok || v != uint64(i) {
			t.Fatalf("reopened Get(%d) = %d, %v, %v", i, v, ok, err)
		}
	}
}

func TestBPTreeRejectsHugeKey(t *testing.T) {
	tr, _ := newTree(t, 16)
	if err := tr.Insert(make([]byte, MaxKeySize+1), 0); err == nil {
		t.Error("oversized key accepted")
	}
}

func TestBPTreeSequentialAndReverseInsert(t *testing.T) {
	for name, order := range map[string]func(i, n int) int{
		"ascending":  func(i, n int) int { return i },
		"descending": func(i, n int) int { return n - 1 - i },
	} {
		t.Run(name, func(t *testing.T) {
			tr, _ := newTree(t, 256)
			const n = 8000
			for i := 0; i < n; i++ {
				k := order(i, n)
				if err := tr.Insert(key(k), uint64(k)); err != nil {
					t.Fatal(err)
				}
			}
			count := 0
			prev := -1
			err := tr.Scan(nil, func(k []byte, v uint64) (bool, error) {
				i := int(binary.BigEndian.Uint64(k))
				if i <= prev {
					return false, fmt.Errorf("disorder at %d", i)
				}
				prev = i
				count++
				return true, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if count != n {
				t.Fatalf("count = %d", count)
			}
		})
	}
}
