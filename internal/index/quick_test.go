package index

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tcodm/internal/storage"
)

// opSeq is a quick-generated sequence of tree operations.
type opSeq []treeOp

type treeOp struct {
	Insert bool
	Key    uint16 // small key space forces overwrites and delete hits
	Val    uint64
}

// Generate implements quick.Generator.
func (opSeq) Generate(rand *rand.Rand, size int) reflect.Value {
	n := 50 + rand.Intn(400)
	ops := make(opSeq, n)
	for i := range ops {
		ops[i] = treeOp{
			Insert: rand.Intn(3) != 0,
			Key:    uint16(rand.Intn(200)),
			Val:    rand.Uint64(),
		}
	}
	return reflect.ValueOf(ops)
}

// TestPropTreeMatchesMap: any operation sequence leaves the tree equal to a
// plain map (the obviously correct model).
func TestPropTreeMatchesMap(t *testing.T) {
	f := func(ops opSeq) bool {
		dev := storage.NewMemDevice()
		pool := storage.NewBufferPool(dev, 64)
		if err := storage.InitMeta(pool); err != nil {
			return false
		}
		tr, err := New(pool)
		if err != nil {
			return false
		}
		model := map[uint16]uint64{}
		for _, op := range ops {
			k := []byte{byte(op.Key >> 8), byte(op.Key)}
			if op.Insert {
				if err := tr.Insert(k, op.Val); err != nil {
					return false
				}
				model[op.Key] = op.Val
			} else {
				ok, err := tr.Delete(k)
				if err != nil {
					return false
				}
				_, inModel := model[op.Key]
				if ok != inModel {
					return false
				}
				delete(model, op.Key)
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		for k, want := range model {
			v, ok, err := tr.Get([]byte{byte(k >> 8), byte(k)})
			if err != nil || !ok || v != want {
				return false
			}
		}
		// Scan visits exactly the model keys, in order.
		count := 0
		prev := -1
		err = tr.Scan(nil, func(key []byte, v uint64) (bool, error) {
			k := int(key[0])<<8 | int(key[1])
			if k <= prev {
				return false, nil
			}
			if model[uint16(k)] != v {
				return false, nil
			}
			prev = k
			count++
			return true, nil
		})
		return err == nil && count == len(model)
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
