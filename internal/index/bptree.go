// Package index implements a page-based B+-tree over the buffer pool,
// keyed by arbitrary byte strings (the order-preserving encodings produced
// by the value and temporal packages) with uint64 payloads (packed RIDs or
// version handles).
//
// Design notes:
//   - Duplicate keys are handled by the caller suffixing keys with a unique
//     discriminator (typically the atom surrogate or RID), which keeps the
//     tree strictly unique and makes deletions exact.
//   - Deletion is lazy: entries are removed but nodes are never merged, a
//     standard trade-off for write-mostly version stores. Space is
//     reclaimed when a node is compacted or the index is rebuilt.
//   - Index pages are not write-ahead logged. After an unclean shutdown the
//     engine rebuilds all indexes from the heap, which is always possible
//     because indexes are derived state.
package index

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"tcodm/internal/storage"
)

// MaxKeySize bounds key length so that several cells always fit per node.
const MaxKeySize = 1024

// Node layout (within an 8 KiB page, after the common page header):
//
//	offset 12: count    uint16 — number of cells
//	offset 14: freeEnd  uint16 — start of the cell area (cells grow down)
//	offset 16: next     uint32 — leaf: right sibling; inner: rightmost child
//	offset 20: offsets  [count]uint16 — cell offsets, sorted by key
//
// Leaf cell:  [keyLen uint16][key][value uint64]
// Inner cell: [keyLen uint16][key][child uint32] — child holds keys < key;
// the rightmost child (header "next") holds keys >= the last cell key.
const (
	ixCountOff   = 12
	ixFreeEndOff = 14
	ixNextOff    = 16
	ixOffsets    = 20
)

// BPTree is a B+-tree handle. The root page ID is the tree's identity;
// persist it (the engine stores it in the meta payload) and reopen with
// Open.
type BPTree struct {
	pool *storage.BufferPool
	root storage.PageID
	size int // live entries (maintained in memory; recomputed on open)
}

// New allocates an empty tree.
func New(pool *storage.BufferPool) (*BPTree, error) {
	t := &BPTree{pool: pool}
	p, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	initNode(p, true)
	p.MarkDirty(false)
	t.root = p.ID()
	pool.Unpin(p)
	return t, nil
}

// Open attaches to an existing tree rooted at root and counts its entries.
func Open(pool *storage.BufferPool, root storage.PageID) (*BPTree, error) {
	t := &BPTree{pool: pool, root: root}
	n := 0
	err := t.Scan(nil, func(k []byte, v uint64) (bool, error) {
		n++
		return true, nil
	})
	if err != nil {
		return nil, fmt.Errorf("index: open tree at page %d: %w", root, err)
	}
	t.size = n
	return t, nil
}

// Root returns the root page ID (persist it to reopen the tree).
func (t *BPTree) Root() storage.PageID { return t.root }

// Len returns the number of live entries.
func (t *BPTree) Len() int { return t.size }

func initNode(p *storage.Page, leaf bool) {
	d := p.Data()
	for i := range d {
		d[i] = 0
	}
	if leaf {
		p.SetType(storage.PageBTreeLeaf)
	} else {
		p.SetType(storage.PageBTreeInner)
	}
	binary.LittleEndian.PutUint16(d[ixCountOff:], 0)
	binary.LittleEndian.PutUint16(d[ixFreeEndOff:], storage.PageSize)
	binary.LittleEndian.PutUint32(d[ixNextOff:], uint32(storage.InvalidPage))
}

func nodeCount(p *storage.Page) int {
	return int(binary.LittleEndian.Uint16(p.Data()[ixCountOff:]))
}
func setNodeCount(p *storage.Page, n int) {
	binary.LittleEndian.PutUint16(p.Data()[ixCountOff:], uint16(n))
}
func nodeFreeEnd(p *storage.Page) int {
	return int(binary.LittleEndian.Uint16(p.Data()[ixFreeEndOff:]))
}
func setNodeFreeEnd(p *storage.Page, n int) {
	binary.LittleEndian.PutUint16(p.Data()[ixFreeEndOff:], uint16(n))
}
func nodeNext(p *storage.Page) storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(p.Data()[ixNextOff:]))
}
func setNodeNext(p *storage.Page, id storage.PageID) {
	binary.LittleEndian.PutUint32(p.Data()[ixNextOff:], uint32(id))
}
func isLeaf(p *storage.Page) bool { return p.Type() == storage.PageBTreeLeaf }

func cellOffset(p *storage.Page, i int) int {
	return int(binary.LittleEndian.Uint16(p.Data()[ixOffsets+2*i:]))
}
func setCellOffset(p *storage.Page, i, off int) {
	binary.LittleEndian.PutUint16(p.Data()[ixOffsets+2*i:], uint16(off))
}

// cellKey returns the key bytes of cell i (aliasing the page).
func cellKey(p *storage.Page, i int) []byte {
	off := cellOffset(p, i)
	d := p.Data()
	klen := int(binary.LittleEndian.Uint16(d[off:]))
	return d[off+2 : off+2+klen]
}

// leafValue returns the value of leaf cell i.
func leafValue(p *storage.Page, i int) uint64 {
	off := cellOffset(p, i)
	d := p.Data()
	klen := int(binary.LittleEndian.Uint16(d[off:]))
	return binary.LittleEndian.Uint64(d[off+2+klen:])
}

func setLeafValue(p *storage.Page, i int, v uint64) {
	off := cellOffset(p, i)
	d := p.Data()
	klen := int(binary.LittleEndian.Uint16(d[off:]))
	binary.LittleEndian.PutUint64(d[off+2+klen:], v)
}

// innerChild returns the child pointer of inner cell i.
func innerChild(p *storage.Page, i int) storage.PageID {
	off := cellOffset(p, i)
	d := p.Data()
	klen := int(binary.LittleEndian.Uint16(d[off:]))
	return storage.PageID(binary.LittleEndian.Uint32(d[off+2+klen:]))
}

func setInnerChild(p *storage.Page, i int, id storage.PageID) {
	off := cellOffset(p, i)
	d := p.Data()
	klen := int(binary.LittleEndian.Uint16(d[off:]))
	binary.LittleEndian.PutUint32(d[off+2+klen:], uint32(id))
}

// search finds the position of key within the node: for leaves, the index
// where key is or would be (found reports exact match); for inner nodes,
// the cell whose child should be descended (count = rightmost).
func search(p *storage.Page, key []byte) (pos int, found bool) {
	lo, hi := 0, nodeCount(p)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(cellKey(p, mid), key) {
		case 0:
			return mid, true
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// payloadSize is the per-cell payload size by node kind.
func payloadSize(leaf bool) int {
	if leaf {
		return 8
	}
	return 4
}

// cellSpace returns bytes a new cell for key would occupy (offset entry
// included).
func cellSpace(key []byte, leaf bool) int {
	return 2 + 2 + len(key) + payloadSize(leaf)
}

// nodeFree returns the free bytes between the offset array and cell area.
func nodeFree(p *storage.Page) int {
	return nodeFreeEnd(p) - (ixOffsets + 2*nodeCount(p))
}

// nodeLiveBytes returns bytes the node's live cells (plus offsets) occupy.
func nodeLiveBytes(p *storage.Page) int {
	leaf := isLeaf(p)
	total := 0
	for i := 0; i < nodeCount(p); i++ {
		total += cellSpace(cellKey(p, i), leaf)
	}
	return total
}

// insertCell places a cell at position pos, assuming space is available.
func insertCell(p *storage.Page, pos int, key []byte, payload uint64) {
	leaf := isLeaf(p)
	d := p.Data()
	n := nodeCount(p)
	cellLen := 2 + len(key) + payloadSize(leaf)
	newEnd := nodeFreeEnd(p) - cellLen
	binary.LittleEndian.PutUint16(d[newEnd:], uint16(len(key)))
	copy(d[newEnd+2:], key)
	if leaf {
		binary.LittleEndian.PutUint64(d[newEnd+2+len(key):], payload)
	} else {
		binary.LittleEndian.PutUint32(d[newEnd+2+len(key):], uint32(payload))
	}
	// Shift offsets to open a gap at pos.
	copy(d[ixOffsets+2*(pos+1):ixOffsets+2*(n+1)], d[ixOffsets+2*pos:ixOffsets+2*n])
	setCellOffset(p, pos, newEnd)
	setNodeCount(p, n+1)
	setNodeFreeEnd(p, newEnd)
}

// removeCell deletes the cell at pos (cell bytes become garbage until the
// node is compacted).
func removeCell(p *storage.Page, pos int) {
	d := p.Data()
	n := nodeCount(p)
	copy(d[ixOffsets+2*pos:ixOffsets+2*(n-1)], d[ixOffsets+2*(pos+1):ixOffsets+2*n])
	setNodeCount(p, n-1)
}

// compactNode rewrites the cell area dropping garbage.
func compactNode(p *storage.Page) {
	leaf := isLeaf(p)
	n := nodeCount(p)
	type cell struct {
		key     []byte
		payload uint64
	}
	cells := make([]cell, n)
	for i := 0; i < n; i++ {
		k := append([]byte(nil), cellKey(p, i)...)
		var v uint64
		if leaf {
			v = leafValue(p, i)
		} else {
			v = uint64(innerChild(p, i))
		}
		cells[i] = cell{k, v}
	}
	d := p.Data()
	end := storage.PageSize
	for i, c := range cells {
		cellLen := 2 + len(c.key) + payloadSize(leaf)
		end -= cellLen
		binary.LittleEndian.PutUint16(d[end:], uint16(len(c.key)))
		copy(d[end+2:], c.key)
		if leaf {
			binary.LittleEndian.PutUint64(d[end+2+len(c.key):], c.payload)
		} else {
			binary.LittleEndian.PutUint32(d[end+2+len(c.key):], uint32(c.payload))
		}
		setCellOffset(p, i, end)
	}
	setNodeFreeEnd(p, end)
}

// Get returns the value stored under key.
func (t *BPTree) Get(key []byte) (uint64, bool, error) {
	p, err := t.pool.Fetch(t.root)
	if err != nil {
		return 0, false, err
	}
	for !isLeaf(p) {
		pos, found := search(p, key)
		// Equal separator keys live in the right subtree.
		if found {
			pos++
		}
		var child storage.PageID
		if pos >= nodeCount(p) {
			child = nodeNext(p)
		} else {
			child = innerChild(p, pos)
		}
		t.pool.Unpin(p)
		p, err = t.pool.Fetch(child)
		if err != nil {
			return 0, false, err
		}
	}
	pos, found := search(p, key)
	if !found {
		t.pool.Unpin(p)
		return 0, false, nil
	}
	v := leafValue(p, pos)
	t.pool.Unpin(p)
	return v, true, nil
}

// Insert stores key -> value, replacing any existing value for key.
func (t *BPTree) Insert(key []byte, value uint64) error {
	if len(key) > MaxKeySize {
		return fmt.Errorf("index: key of %d bytes exceeds maximum %d", len(key), MaxKeySize)
	}
	promoted, newChild, replaced, err := t.insertInto(t.root, key, value)
	if err != nil {
		return err
	}
	if !replaced {
		t.size++
	}
	if newChild == storage.InvalidPage {
		return nil
	}
	// Root split: grow the tree by one level.
	p, err := t.pool.Allocate()
	if err != nil {
		return err
	}
	initNode(p, false)
	insertCell(p, 0, promoted, uint64(t.root))
	setNodeNext(p, newChild)
	p.MarkDirty(false)
	t.root = p.ID()
	t.pool.Unpin(p)
	return nil
}

// insertInto descends to the leaf, inserts, and propagates splits upward.
// When the node at id splits it returns the separator key and the new
// right sibling's page ID.
func (t *BPTree) insertInto(id storage.PageID, key []byte, value uint64) (promoted []byte, newChild storage.PageID, replaced bool, err error) {
	p, err := t.pool.Fetch(id)
	if err != nil {
		return nil, storage.InvalidPage, false, err
	}
	if isLeaf(p) {
		pos, found := search(p, key)
		if found {
			setLeafValue(p, pos, value)
			p.MarkDirty(false)
			t.pool.Unpin(p)
			return nil, storage.InvalidPage, true, nil
		}
		if err := t.makeRoom(p, key); err != nil {
			// Split required.
			sep, right, err := t.splitLeaf(p)
			if err != nil {
				t.pool.Unpin(p)
				return nil, storage.InvalidPage, false, err
			}
			if bytes.Compare(key, sep) >= 0 {
				rp, err := t.pool.Fetch(right)
				if err != nil {
					t.pool.Unpin(p)
					return nil, storage.InvalidPage, false, err
				}
				pos, _ := search(rp, key)
				insertCell(rp, pos, key, value)
				rp.MarkDirty(false)
				t.pool.Unpin(rp)
			} else {
				pos, _ := search(p, key)
				insertCell(p, pos, key, value)
			}
			p.MarkDirty(false)
			t.pool.Unpin(p)
			return sep, right, false, nil
		}
		pos, _ = search(p, key)
		insertCell(p, pos, key, value)
		p.MarkDirty(false)
		t.pool.Unpin(p)
		return nil, storage.InvalidPage, false, nil
	}
	// Inner node: descend.
	pos, found := search(p, key)
	if found {
		pos++
	}
	var child storage.PageID
	if pos >= nodeCount(p) {
		child = nodeNext(p)
	} else {
		child = innerChild(p, pos)
	}
	t.pool.Unpin(p)
	childSep, childNew, replaced, err := t.insertInto(child, key, value)
	if err != nil || childNew == storage.InvalidPage {
		return nil, storage.InvalidPage, replaced, err
	}
	// Child split: insert (childSep -> child) before the pointer that
	// referenced child, and repoint that slot to childNew.
	p, err = t.pool.Fetch(id)
	if err != nil {
		return nil, storage.InvalidPage, replaced, err
	}
	pos, found = search(p, childSep)
	if found {
		pos++
	}
	if err := t.makeRoom(p, childSep); err != nil {
		sep, right, serr := t.splitInner(p)
		if serr != nil {
			t.pool.Unpin(p)
			return nil, storage.InvalidPage, replaced, serr
		}
		target := p
		var rp *storage.Page
		if bytes.Compare(childSep, sep) >= 0 {
			rp, err = t.pool.Fetch(right)
			if err != nil {
				t.pool.Unpin(p)
				return nil, storage.InvalidPage, replaced, err
			}
			target = rp
		}
		tpos, tfound := search(target, childSep)
		if tfound {
			tpos++
		}
		t.innerInsertAt(target, tpos, childSep, childNew)
		target.MarkDirty(false)
		if rp != nil {
			t.pool.Unpin(rp)
		}
		p.MarkDirty(false)
		t.pool.Unpin(p)
		return sep, right, replaced, nil
	}
	t.innerInsertAt(p, pos, childSep, childNew)
	p.MarkDirty(false)
	t.pool.Unpin(p)
	return nil, storage.InvalidPage, replaced, nil
}

// innerInsertAt inserts separator sep at pos; the child previously in that
// position keeps holding keys < sep, and newRight takes its place for keys
// >= sep.
func (t *BPTree) innerInsertAt(p *storage.Page, pos int, sep []byte, newRight storage.PageID) {
	var oldChild storage.PageID
	if pos >= nodeCount(p) {
		oldChild = nodeNext(p)
		setNodeNext(p, newRight)
	} else {
		oldChild = innerChild(p, pos)
		setInnerChild(p, pos, newRight)
	}
	insertCell(p, pos, sep, uint64(oldChild))
}

// makeRoom ensures the node can absorb a new cell for key, compacting if
// fragmentation is the only obstacle. It returns an error when a split is
// unavoidable.
func (t *BPTree) makeRoom(p *storage.Page, key []byte) error {
	need := cellSpace(key, isLeaf(p))
	if nodeFree(p) >= need {
		return nil
	}
	if storage.PageSize-ixOffsets-nodeLiveBytes(p) >= need {
		compactNode(p)
		if nodeFree(p) >= need {
			return nil
		}
	}
	return errNodeFull
}

var errNodeFull = fmt.Errorf("index: node full")

// splitLeaf moves the upper half of p's cells to a new right sibling and
// returns the separator (first key of the right node).
func (t *BPTree) splitLeaf(p *storage.Page) ([]byte, storage.PageID, error) {
	n := nodeCount(p)
	mid := n / 2
	right, err := t.pool.Allocate()
	if err != nil {
		return nil, storage.InvalidPage, err
	}
	initNode(right, true)
	for i := mid; i < n; i++ {
		insertCell(right, i-mid, cellKey(p, i), leafValue(p, i))
	}
	setNodeCount(p, mid)
	compactNode(p)
	setNodeNext(right, nodeNext(p))
	setNodeNext(p, right.ID())
	sep := append([]byte(nil), cellKey(right, 0)...)
	right.MarkDirty(false)
	id := right.ID()
	t.pool.Unpin(right)
	return sep, id, nil
}

// splitInner moves the upper half of p's cells to a new right sibling,
// promoting the middle key (which appears in neither node).
func (t *BPTree) splitInner(p *storage.Page) ([]byte, storage.PageID, error) {
	n := nodeCount(p)
	mid := n / 2
	sep := append([]byte(nil), cellKey(p, mid)...)
	midChild := innerChild(p, mid)
	right, err := t.pool.Allocate()
	if err != nil {
		return nil, storage.InvalidPage, err
	}
	initNode(right, false)
	for i := mid + 1; i < n; i++ {
		insertCell(right, i-mid-1, cellKey(p, i), uint64(innerChild(p, i)))
	}
	setNodeNext(right, nodeNext(p))
	setNodeNext(p, midChild)
	setNodeCount(p, mid)
	compactNode(p)
	right.MarkDirty(false)
	id := right.ID()
	t.pool.Unpin(right)
	return sep, id, nil
}

// Delete removes key, reporting whether it was present. Nodes are never
// merged (lazy deletion).
func (t *BPTree) Delete(key []byte) (bool, error) {
	p, err := t.pool.Fetch(t.root)
	if err != nil {
		return false, err
	}
	for !isLeaf(p) {
		pos, found := search(p, key)
		if found {
			pos++
		}
		var child storage.PageID
		if pos >= nodeCount(p) {
			child = nodeNext(p)
		} else {
			child = innerChild(p, pos)
		}
		t.pool.Unpin(p)
		p, err = t.pool.Fetch(child)
		if err != nil {
			return false, err
		}
	}
	pos, found := search(p, key)
	if !found {
		t.pool.Unpin(p)
		return false, nil
	}
	removeCell(p, pos)
	p.MarkDirty(false)
	t.pool.Unpin(p)
	t.size--
	return true, nil
}

// Scan iterates entries with key >= start (start nil = from the beginning)
// in ascending key order, calling fn until it returns false or the tree is
// exhausted. The key slice passed to fn is only valid during the call.
func (t *BPTree) Scan(start []byte, fn func(key []byte, value uint64) (bool, error)) error {
	p, err := t.pool.Fetch(t.root)
	if err != nil {
		return err
	}
	for !isLeaf(p) {
		pos, found := search(p, start)
		if found {
			pos++
		}
		var child storage.PageID
		if pos >= nodeCount(p) {
			child = nodeNext(p)
		} else {
			child = innerChild(p, pos)
		}
		t.pool.Unpin(p)
		p, err = t.pool.Fetch(child)
		if err != nil {
			return err
		}
	}
	pos, _ := search(p, start)
	for {
		n := nodeCount(p)
		for ; pos < n; pos++ {
			cont, err := fn(cellKey(p, pos), leafValue(p, pos))
			if err != nil {
				t.pool.Unpin(p)
				return err
			}
			if !cont {
				t.pool.Unpin(p)
				return nil
			}
		}
		next := nodeNext(p)
		t.pool.Unpin(p)
		if next == storage.InvalidPage {
			return nil
		}
		p, err = t.pool.Fetch(next)
		if err != nil {
			return err
		}
		pos = 0
	}
}

// ScanRange iterates entries with start <= key < end (nil end = no bound).
func (t *BPTree) ScanRange(start, end []byte, fn func(key []byte, value uint64) (bool, error)) error {
	return t.Scan(start, func(k []byte, v uint64) (bool, error) {
		if end != nil && bytes.Compare(k, end) >= 0 {
			return false, nil
		}
		return fn(k, v)
	})
}

// Height returns the tree's height (1 = a lone leaf), for diagnostics.
func (t *BPTree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		p, err := t.pool.Fetch(id)
		if err != nil {
			return 0, err
		}
		if isLeaf(p) {
			t.pool.Unpin(p)
			return h, nil
		}
		id = innerChild(p, 0)
		if nodeCount(p) == 0 {
			id = nodeNext(p)
		}
		t.pool.Unpin(p)
		h++
	}
}
