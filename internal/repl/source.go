// Package repl implements WAL-shipping replication: a leader streams
// committed log records to followers, which replay them through the
// engine's idempotent redo path and serve read-only queries pinned at a
// monotonic replication watermark.
//
// The protocol rides the wire-v2 frame layer. A follower connects like any
// client (Hello/Welcome), then sends Subscribe(fromLSN) and the connection
// becomes a one-way stream: LogBatch frames carry committed commit groups
// in the WAL's stream encoding, Watermark frames carry the leader's
// appended LSN and clock (sent after every batch and as an idle
// heartbeat), and when the requested LSN has been truncated away by a
// checkpoint the leader interposes SnapshotOffer/SnapshotChunk/
// SnapshotDone — a full device copy the follower installs before the log
// stream resumes.
package repl

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/wal"
	"tcodm/internal/wire"
)

// Source streams the leader's WAL to subscribed followers. One Source
// serves any number of concurrent subscriptions; each Serve call owns its
// connection for the connection's lifetime.
type Source struct {
	Engine *core.Engine

	Batch        int           // records per LogBatch (default 512)
	Heartbeat    time.Duration // idle Watermark cadence (default 500ms)
	ChunkSize    int           // snapshot chunk payload bytes (default 256 KiB)
	WriteTimeout time.Duration // per-frame write deadline (default 30s)

	Logf func(format string, args ...any)
}

func (s *Source) batch() int {
	if s.Batch > 0 {
		return s.Batch
	}
	return 512
}

func (s *Source) heartbeat() time.Duration {
	if s.Heartbeat > 0 {
		return s.Heartbeat
	}
	return 500 * time.Millisecond
}

func (s *Source) chunkSize() int {
	if s.ChunkSize > 0 {
		return s.ChunkSize
	}
	return 256 << 10
}

func (s *Source) writeTimeout() time.Duration {
	if s.WriteTimeout > 0 {
		return s.WriteTimeout
	}
	return 30 * time.Second
}

func (s *Source) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Source) writeFrame(conn net.Conn, typ byte, payload []byte) error {
	conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
	return wire.WriteFrame(conn, typ, payload)
}

// Serve streams the log to one follower, starting at fromLSN, until the
// connection dies, the follower sends anything (the stream is one-way —
// inbound bytes are a protocol violation), or ctx is cancelled. An engine
// without a log (in-memory) cannot replicate; the error travels to the
// follower as an Error frame.
func (s *Source) Serve(ctx context.Context, conn net.Conn, fromLSN uint64) error {
	eng := s.Engine
	log := eng.Log()
	if log == nil {
		s.writeFrame(conn, wire.FrameError, wire.EncodeError(wire.CodeQuery,
			"replication requires a file-backed database", "leader runs in-memory (no log)"))
		return errors.New("repl: in-memory engine cannot replicate")
	}

	reg := eng.Metrics()
	subscribers := reg.Gauge("repl.subscribers")
	batchesSent := reg.Counter("repl.batches_sent")
	recordsSent := reg.Counter("repl.records_sent")
	snapshotsSent := reg.Counter("repl.snapshots_sent")
	subscribers.Add(1)
	defer subscribers.Add(-1)

	// Any inbound traffic — including EOF — ends the subscription. This is
	// also how a vanished follower is noticed while the leader is idle.
	dead := make(chan struct{})
	go func() {
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Time{})
		conn.Read(buf)
		close(dead)
	}()

	s.logf("repl: subscriber %s from LSN %d", conn.RemoteAddr(), fromLSN)
	cur := log.Cursor(fromLSN)
	hb := time.NewTicker(s.heartbeat())
	defer hb.Stop()
	var streamBuf []byte
	for {
		// Fetch the wake channel before reading: a commit landing between
		// the read and the select must not be sleep-missed.
		watch := log.AppendWatch()
		recs, err := cur.Read(s.batch())
		if errors.Is(err, wal.ErrGap) {
			// The follower's position has been checkpointed away; reseed it
			// with a full snapshot, then resume the stream where the
			// snapshot's log begins.
			start, serr := s.sendSnapshot(conn)
			if serr != nil {
				return serr
			}
			snapshotsSent.Inc()
			cur = log.Cursor(start)
			continue
		}
		if err != nil {
			s.writeFrame(conn, wire.FrameError, wire.EncodeError(wire.CodeQuery, "log stream failed", err.Error()))
			return err
		}
		if len(recs) > 0 {
			streamBuf = wal.AppendRecordStream(streamBuf[:0], recs)
			if err := s.writeFrame(conn, wire.FrameLogBatch, streamBuf); err != nil {
				return err
			}
			batchesSent.Inc()
			recordsSent.Add(uint64(len(recs)))
			if err := s.sendWatermark(conn); err != nil {
				return err
			}
			continue // drain the backlog before sleeping
		}
		select {
		case <-watch:
		case <-hb.C:
			if err := s.sendWatermark(conn); err != nil {
				return err
			}
		case <-dead:
			s.logf("repl: subscriber %s gone", conn.RemoteAddr())
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (s *Source) sendWatermark(conn net.Conn) error {
	lsn := s.Engine.Log().AppendedLSN()
	return s.writeFrame(conn, wire.FrameWatermark, wire.EncodeWatermark(lsn, uint64(s.Engine.Now())))
}

// sendSnapshot checkpoints the engine and streams the full device:
// SnapshotOffer (start LSN + exact size), ChunkSize'd SnapshotChunk
// frames, then SnapshotDone carrying the stream's SHA-256. Returns the LSN
// the log stream resumes from.
func (s *Source) sendSnapshot(conn net.Conn) (uint64, error) {
	s.logf("repl: sending snapshot to %s", conn.RemoteAddr())
	var start uint64
	cw := &chunkWriter{src: s, conn: conn, buf: make([]byte, 0, s.chunkSize())}
	digest, err := s.Engine.Snapshot(func(lsn, size uint64) error {
		start = lsn
		return s.writeFrame(conn, wire.FrameSnapshotOffer, wire.EncodeSnapshotOffer(lsn, size))
	}, cw)
	if err != nil {
		return 0, fmt.Errorf("repl: snapshot: %w", err)
	}
	if err := cw.flush(); err != nil {
		return 0, err
	}
	if err := s.writeFrame(conn, wire.FrameSnapshotDone, wire.EncodeSnapshotDone(digest)); err != nil {
		return 0, err
	}
	return start, nil
}

// chunkWriter re-frames a byte stream into SnapshotChunk frames.
type chunkWriter struct {
	src  *Source
	conn net.Conn
	buf  []byte
}

func (w *chunkWriter) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		room := cap(w.buf) - len(w.buf)
		if room == 0 {
			if err := w.flush(); err != nil {
				return 0, err
			}
			room = cap(w.buf)
		}
		if room > len(p) {
			room = len(p)
		}
		w.buf = append(w.buf, p[:room]...)
		p = p[room:]
	}
	return n, nil
}

func (w *chunkWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	err := w.src.writeFrame(w.conn, wire.FrameSnapshotChunk, w.buf)
	w.buf = w.buf[:0]
	return err
}
