// Package repl implements WAL-shipping replication: a leader streams
// committed log records to followers, which replay them through the
// engine's idempotent redo path and serve read-only queries pinned at a
// monotonic replication watermark.
//
// The protocol rides the wire-v2 frame layer. A follower connects like any
// client (Hello/Welcome), then sends Subscribe(fromLSN) and the connection
// becomes a one-way stream: LogBatch frames carry committed commit groups
// in the WAL's stream encoding, Watermark frames carry the leader's
// appended LSN and clock (sent after every batch and as an idle
// heartbeat), and when the requested LSN has been truncated away by a
// checkpoint the leader interposes SnapshotOffer/SnapshotChunk/
// SnapshotDone — a full device copy the follower installs before the log
// stream resumes.
package repl

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/wal"
	"tcodm/internal/wire"
)

// Source streams the leader's WAL to subscribed followers. One Source
// serves any number of concurrent subscriptions; each Serve call owns its
// connection for the connection's lifetime.
type Source struct {
	Engine *core.Engine

	Batch        int           // records per LogBatch (default 512)
	Heartbeat    time.Duration // idle Watermark cadence (default 500ms)
	ChunkSize    int           // snapshot chunk payload bytes (default 256 KiB)
	WriteTimeout time.Duration // per-frame write deadline (default 30s)

	// OnFenced fires when a subscriber reports an epoch higher than this
	// source's: some follower was promoted past us, so this node is an
	// ex-leader that should stop acting like one. The serving layer uses
	// it to log loudly and begin demotion.
	OnFenced func(peerEpoch uint64)

	Logf func(format string, args ...any)

	// Digest cache: the store digest is shipped on idle heartbeats so a
	// follower can verify its replayed history at promotion time without
	// a live leader to ask. Hashing the store is a full scan, so it runs
	// only once the frontier has been still for two consecutive beats and
	// is cached per frontier.
	digMu  sync.Mutex
	hbLSN  uint64 // frontier at the previous heartbeat
	digLSN uint64 // frontier the cached digest was computed at
	dig    []byte
}

func (s *Source) batch() int {
	if s.Batch > 0 {
		return s.Batch
	}
	return 512
}

func (s *Source) heartbeat() time.Duration {
	if s.Heartbeat > 0 {
		return s.Heartbeat
	}
	return 500 * time.Millisecond
}

func (s *Source) chunkSize() int {
	if s.ChunkSize > 0 {
		return s.ChunkSize
	}
	return 256 << 10
}

func (s *Source) writeTimeout() time.Duration {
	if s.WriteTimeout > 0 {
		return s.WriteTimeout
	}
	return 30 * time.Second
}

func (s *Source) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Source) writeFrame(conn net.Conn, typ byte, payload []byte) error {
	conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
	return wire.WriteFrame(conn, typ, payload)
}

// Serve streams the log to one follower, starting at req.FromLSN, until
// the connection dies, the follower sends anything (the stream is one-way —
// inbound bytes are a protocol violation), or ctx is cancelled. An engine
// without a log (in-memory) cannot replicate; the error travels to the
// follower as an Error frame.
//
// Epoch fencing happens here, before a single record is shipped:
//
//   - A subscriber reporting a HIGHER epoch than this source means some
//     follower was promoted past us — this source is a stale ex-leader.
//     It answers with a Fence frame, fires OnFenced, and refuses to
//     serve (serving would hand out history a newer leader may have
//     superseded).
//   - A subscriber at a LOWER epoch whose history extends past this
//     epoch's start LSN is the resurrected old leader: its unshipped
//     suffix diverged from the promoted timeline and idempotent redo
//     would silently skip the overlap. It gets a Fence frame telling it
//     where the epochs split so it can rejoin via snapshot.
//   - A subscriber at a lower epoch whose history stops at or before the
//     epoch start is an innocent, merely-behind follower: it is served
//     normally and learns the new epoch from the OpEpoch record in the
//     stream itself.
func (s *Source) Serve(ctx context.Context, conn net.Conn, req wire.SubscribeReq) error {
	eng := s.Engine
	log := eng.Log()
	if log == nil {
		s.writeFrame(conn, wire.FrameError, wire.EncodeError(wire.CodeQuery,
			"replication requires a file-backed database", "leader runs in-memory (no log)"))
		return errors.New("repl: in-memory engine cannot replicate")
	}

	reg := eng.Metrics()
	subscribers := reg.Gauge("repl.subscribers")
	batchesSent := reg.Counter("repl.batches_sent")
	recordsSent := reg.Counter("repl.records_sent")
	snapshotsSent := reg.Counter("repl.snapshots_sent")

	srcEpoch, srcStart := eng.Epoch(), eng.EpochStart()
	if req.Epoch > srcEpoch {
		msg := fmt.Sprintf("subscriber epoch %d exceeds source epoch %d: this source is a fenced ex-leader", req.Epoch, srcEpoch)
		s.writeFrame(conn, wire.FrameFence, wire.EncodeFence(wire.Fence{Epoch: srcEpoch, EpochStart: srcStart, Msg: msg}))
		reg.Counter("repl.fences_sent").Inc()
		s.logf("repl: FENCED by subscriber %s at epoch %d (local epoch %d)", conn.RemoteAddr(), req.Epoch, srcEpoch)
		if s.OnFenced != nil {
			s.OnFenced(req.Epoch)
		}
		return fmt.Errorf("repl: %s", msg)
	}
	forceSnapshot := req.Flags&wire.SubscribeFlagSnapshot != 0
	if req.Epoch < srcEpoch && req.FromLSN > srcStart+1 && !forceSnapshot {
		msg := fmt.Sprintf("subscriber history reaches LSN %d at epoch %d, but epoch %d began at LSN %d: histories diverged, rejoin via snapshot",
			req.FromLSN-1, req.Epoch, srcEpoch, srcStart)
		s.writeFrame(conn, wire.FrameFence, wire.EncodeFence(wire.Fence{Epoch: srcEpoch, EpochStart: srcStart, Msg: msg}))
		reg.Counter("repl.fences_sent").Inc()
		s.logf("repl: fencing diverged subscriber %s (%s)", conn.RemoteAddr(), msg)
		return fmt.Errorf("repl: %s", msg)
	}

	subscribers.Add(1)
	defer subscribers.Add(-1)

	// Any inbound traffic — including EOF — ends the subscription. This is
	// also how a vanished follower is noticed while the leader is idle.
	dead := make(chan struct{})
	go func() {
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Time{})
		conn.Read(buf)
		close(dead)
	}()

	s.logf("repl: subscriber %s from LSN %d (epoch %d)", conn.RemoteAddr(), req.FromLSN, req.Epoch)
	cur := log.Cursor(req.FromLSN)
	if forceSnapshot {
		// The subscriber asked to discard its local history (fenced rejoin
		// or operator-forced resync): reseed it before any log record.
		start, serr := s.sendSnapshot(conn)
		if serr != nil {
			return serr
		}
		snapshotsSent.Inc()
		cur = log.Cursor(start)
	}
	hb := time.NewTicker(s.heartbeat())
	defer hb.Stop()
	var streamBuf []byte
	for {
		// Fetch the wake channel before reading: a commit landing between
		// the read and the select must not be sleep-missed.
		watch := log.AppendWatch()
		recs, err := cur.Read(s.batch())
		if errors.Is(err, wal.ErrGap) {
			// The follower's position has been checkpointed away; reseed it
			// with a full snapshot, then resume the stream where the
			// snapshot's log begins.
			start, serr := s.sendSnapshot(conn)
			if serr != nil {
				return serr
			}
			snapshotsSent.Inc()
			cur = log.Cursor(start)
			continue
		}
		if err != nil {
			s.writeFrame(conn, wire.FrameError, wire.EncodeError(wire.CodeQuery, "log stream failed", err.Error()))
			return err
		}
		if len(recs) > 0 {
			streamBuf = wal.AppendRecordStream(streamBuf[:0], recs)
			if err := s.writeFrame(conn, wire.FrameLogBatch, streamBuf); err != nil {
				return err
			}
			batchesSent.Inc()
			recordsSent.Add(uint64(len(recs)))
			if err := s.sendWatermark(conn, false); err != nil {
				return err
			}
			continue // drain the backlog before sleeping
		}
		select {
		case <-watch:
		case <-hb.C:
			if err := s.sendWatermark(conn, true); err != nil {
				return err
			}
		case <-dead:
			s.logf("repl: subscriber %s gone", conn.RemoteAddr())
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// sendWatermark ships the appended frontier, clock, and epoch. Heartbeat
// watermarks on a quiescent frontier additionally carry the store digest
// (see digestAt) — the follower caches it so Promote can verify its
// replayed history after the leader is gone.
func (s *Source) sendWatermark(conn net.Conn, heartbeat bool) error {
	lsn := s.Engine.Log().AppendedLSN()
	wm := wire.WatermarkInfo{LSN: lsn, Clock: uint64(s.Engine.Now()), Epoch: s.Engine.Epoch()}
	if heartbeat {
		s.digMu.Lock()
		idle := s.hbLSN == lsn
		s.hbLSN = lsn
		s.digMu.Unlock()
		if idle {
			wm.Digest = s.digestAt(lsn)
		}
	}
	return s.writeFrame(conn, wire.FrameWatermark, wire.EncodeWatermarkInfo(wm))
}

// digestAt returns the store digest at frontier lsn, computing it at most
// once per frontier. Hashing is a full logical scan, so it only runs when
// the frontier has already sat still for a whole heartbeat; if a commit
// lands mid-hash the result describes neither frontier and is discarded.
func (s *Source) digestAt(lsn uint64) []byte {
	s.digMu.Lock()
	if s.digLSN == lsn && s.dig != nil {
		d := s.dig
		s.digMu.Unlock()
		return d
	}
	s.digMu.Unlock()
	d, err := s.Engine.DigestStore()
	if err != nil || s.Engine.Log().AppendedLSN() != lsn {
		return nil
	}
	s.digMu.Lock()
	s.digLSN, s.dig = lsn, d
	s.digMu.Unlock()
	return d
}

// sendSnapshot checkpoints the engine and streams the full device:
// SnapshotOffer (start LSN + exact size), ChunkSize'd SnapshotChunk
// frames, then SnapshotDone carrying the stream's SHA-256. Returns the LSN
// the log stream resumes from.
func (s *Source) sendSnapshot(conn net.Conn) (uint64, error) {
	s.logf("repl: sending snapshot to %s", conn.RemoteAddr())
	var start uint64
	cw := &chunkWriter{src: s, conn: conn, buf: make([]byte, 0, s.chunkSize())}
	digest, err := s.Engine.Snapshot(func(lsn, size uint64) error {
		start = lsn
		return s.writeFrame(conn, wire.FrameSnapshotOffer, wire.EncodeSnapshotOffer(lsn, size))
	}, cw)
	if err != nil {
		return 0, fmt.Errorf("repl: snapshot: %w", err)
	}
	if err := cw.flush(); err != nil {
		return 0, err
	}
	if err := s.writeFrame(conn, wire.FrameSnapshotDone, wire.EncodeSnapshotDone(digest)); err != nil {
		return 0, err
	}
	return start, nil
}

// chunkWriter re-frames a byte stream into SnapshotChunk frames.
type chunkWriter struct {
	src  *Source
	conn net.Conn
	buf  []byte
}

func (w *chunkWriter) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		room := cap(w.buf) - len(w.buf)
		if room == 0 {
			if err := w.flush(); err != nil {
				return 0, err
			}
			room = cap(w.buf)
		}
		if room > len(p) {
			room = len(p)
		}
		w.buf = append(w.buf, p[:room]...)
		p = p[room:]
	}
	return n, nil
}

func (w *chunkWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	err := w.src.writeFrame(w.conn, wire.FrameSnapshotChunk, w.buf)
	w.buf = w.buf[:0]
	return err
}
