package repl

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/schema"
	"tcodm/internal/value"
	"tcodm/internal/wire"
)

func openLeader(t *testing.T, dir string) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Options{Path: filepath.Join(dir, "leader"), TimeIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if err := e.DefineAtomType(schema.AtomType{
		Name: "Emp",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "salary", Kind: value.KindInt, Temporal: true},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

func commit(t *testing.T, e *core.Engine, name string, salary int64) value.ID {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	id, err := tx.Insert("Emp", map[string]value.V{
		"name": value.String_(name), "salary": value.Int(salary),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return id
}

// leaderDialer fakes the wire server's replication hand-off over net.Pipe:
// each dial performs the Hello/Welcome handshake, reads Subscribe, and
// hands the connection to the Source.
func leaderDialer(ctx context.Context, src *Source) func(context.Context, string) (net.Conn, error) {
	return func(context.Context, string) (net.Conn, error) {
		client, server := net.Pipe()
		go func() {
			defer server.Close()
			br := bufio.NewReader(server)
			if fr, err := wire.ReadFrame(br); err != nil || fr.Type != wire.FrameHello {
				return
			}
			if err := wire.WriteFrame(server, wire.FrameWelcome, wire.EncodeWelcome("test", 1)); err != nil {
				return
			}
			fr, err := wire.ReadFrame(br)
			if err != nil || fr.Type != wire.FrameSubscribe {
				return
			}
			req, err := wire.DecodeSubscribeReq(fr.Payload)
			if err != nil {
				return
			}
			src.Serve(ctx, server, req)
		}()
		return client, nil
	}
}

func waitConverged(t *testing.T, f *Follower, leader *core.Engine) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if f.Watermark() == leader.Log().AppendedLSN() {
			ld, err := leader.DigestStore()
			if err != nil {
				t.Fatal(err)
			}
			fd, err := f.Engine().DigestStore()
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(ld, fd) {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower did not converge: watermark %d, leader %d", f.Watermark(), leader.Log().AppendedLSN())
}

func TestReplicationEndToEnd(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, dir)
	commit(t, leader, "a", 100)
	commit(t, leader, "b", 200)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &Source{Engine: leader, Heartbeat: 20 * time.Millisecond}
	f, err := StartFollower(FollowerConfig{
		Leader: "pipe", Path: filepath.Join(dir, "follower"),
		Dial:    leaderDialer(ctx, src),
		Backoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	go f.Run(ctx)

	waitConverged(t, f, leader)
	if f.Staleness() > 5*time.Second {
		t.Errorf("caught-up follower reports staleness %v", f.Staleness())
	}

	// The stream keeps flowing: later commits arrive without resubscribing.
	commit(t, leader, "c", 300)
	commit(t, leader, "d", 400)
	waitConverged(t, f, leader)

	// Follower answers queries at its watermark.
	res, err := f.Engine().Query(`SELECT (Emp.name) FROM Emp WHERE Emp.salary >= 300 AT 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("follower rows = %v", res.Rows)
	}
}

func TestSnapshotBootstrapOverWire(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, dir)
	commit(t, leader, "a", 100)
	// Checkpoint truncates the log: a fresh follower cannot start at LSN 1
	// and must be seeded with a snapshot.
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commit(t, leader, "b", 200)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &Source{Engine: leader, Heartbeat: 20 * time.Millisecond, ChunkSize: 4096}
	var swaps atomic.Int32
	f, err := StartFollower(FollowerConfig{
		Leader: "pipe", Path: filepath.Join(dir, "follower"),
		Dial:    leaderDialer(ctx, src),
		Backoff: 20 * time.Millisecond,
		OnSwap:  func(old, next *core.Engine) { swaps.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	go f.Run(ctx)

	waitConverged(t, f, leader)
	if swaps.Load() != 1 {
		t.Errorf("snapshot bootstraps = %d, want 1", swaps.Load())
	}
	// And the stream continues past the snapshot.
	commit(t, leader, "c", 300)
	waitConverged(t, f, leader)
}

func TestFollowerReconnects(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, dir)
	commit(t, leader, "a", 100)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &Source{Engine: leader, Heartbeat: 20 * time.Millisecond}
	dial := leaderDialer(ctx, src)
	var conns atomic.Int32
	var lastConn atomic.Value // net.Conn
	f, err := StartFollower(FollowerConfig{
		Leader: "pipe", Path: filepath.Join(dir, "follower"),
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			c, err := dial(ctx, addr)
			if err == nil {
				conns.Add(1)
				lastConn.Store(c)
			}
			return c, err
		},
		Backoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	go f.Run(ctx)

	waitConverged(t, f, leader)
	// Sever the link mid-life; the follower must redial and keep applying.
	lastConn.Load().(net.Conn).Close()
	commit(t, leader, "b", 200)
	waitConverged(t, f, leader)
	if conns.Load() < 2 {
		t.Errorf("dials = %d, want a reconnect", conns.Load())
	}
}

func TestFollowerRestartResumesFromLocalLog(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, dir)
	commit(t, leader, "a", 100)

	ctx, cancel := context.WithCancel(context.Background())
	src := &Source{Engine: leader, Heartbeat: 20 * time.Millisecond}
	fpath := filepath.Join(dir, "follower")
	f, err := StartFollower(FollowerConfig{
		Leader: "pipe", Path: fpath,
		Dial:    leaderDialer(ctx, src),
		Backoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go f.Run(ctx)
	waitConverged(t, f, leader)
	wm := f.Watermark()
	cancel()
	time.Sleep(20 * time.Millisecond) // let Run observe cancellation
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the local database carries the replicated state; the new
	// subscription resumes from the stored watermark, not from scratch.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	src2 := &Source{Engine: leader, Heartbeat: 20 * time.Millisecond}
	f2, err := StartFollower(FollowerConfig{
		Leader: "pipe", Path: fpath,
		Dial:    leaderDialer(ctx2, src2),
		Backoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Watermark() != wm {
		t.Errorf("restarted watermark = %d, want %d", f2.Watermark(), wm)
	}
	go f2.Run(ctx2)
	commit(t, leader, "b", 200)
	waitConverged(t, f2, leader)
}
