package repl

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/obs"
	"tcodm/internal/wal"
	"tcodm/internal/wire"
)

// FollowerConfig parameterizes a Follower. Leader and Path are required.
type FollowerConfig struct {
	Leader string // leader wire address, e.g. "leader:7483"
	Path   string // local database file (owned by this follower)

	// Open is the option template for the local engine; Path and Follower
	// are overridden, and follower mode force-disables the time and value
	// indexes regardless of what it says.
	Open core.Options

	// Dial replaces the default TCP dialer (fault-injection seam).
	Dial func(ctx context.Context, addr string) (net.Conn, error)

	// OnSwap fires after a snapshot bootstrap replaced the engine — the
	// serving layer must stop routing queries to old (already closed) and
	// start using next.
	OnSwap func(old, next *core.Engine)

	ReadTimeout time.Duration // max silence from the leader (default 10s)

	// Backoff is the base reconnect delay after a failure (default 500ms).
	// Consecutive failures without stream progress double it up to
	// MaxBackoff (default 10s), plus up to 50% seeded jitter — the same
	// policy as the client's dial retry — so a flapping leader is not
	// hammered in lockstep by every follower.
	Backoff    time.Duration
	MaxBackoff time.Duration
	JitterSeed int64 // 0 = seed from wall clock

	// ForceSnapshot makes the first subscription ask the leader for a
	// full snapshot regardless of log availability, discarding all local
	// history — the operator-initiated "rejoin from scratch" used to
	// demote an ex-leader whose timeline diverged.
	ForceSnapshot bool

	Logf func(format string, args ...any)
}

// Follower owns a replica database: it maintains the connection to the
// leader, applies the shipped log, installs bootstrap snapshots, and
// tracks how fresh the local store is.
type Follower struct {
	cfg FollowerConfig

	mu  sync.RWMutex // guards eng across snapshot swaps
	eng *core.Engine

	// freshAsOf is the wall-clock instant (unix nanos) at which the store
	// was last known to be caught up with the leader; 0 = never. Staleness
	// is measured from it locally, so leader and follower clocks need not
	// agree.
	freshAsOf atomic.Int64

	// leaderEpoch is the highest replication epoch heard from the leader
	// (watermarks and fences); Promote bumps past it. needSnapshot makes
	// the next subscription request a full snapshot — set by a fence or
	// by cfg.ForceSnapshot, cleared by a successful bootstrap. promoted
	// flips once Promote succeeds: streaming is over for good.
	leaderEpoch atomic.Uint64
	needSnap    atomic.Bool
	promoted    atomic.Bool
	progressed  atomic.Bool // stream produced frames since the last reconnect decision

	// connMu guards the live stream connection so Promote can sever it.
	connMu sync.Mutex
	conn   net.Conn

	// digMu guards the leader's last shipped store digest and the
	// frontier it was computed at — the evidence Promote checks its own
	// replayed history against.
	digMu  sync.Mutex
	digLSN uint64
	dig    []byte

	watermarkG  *obs.Gauge
	lagLSNs     *obs.Gauge
	lagMS       *obs.Gauge
	applied     *obs.Counter
	reconnects  *obs.Counter
	bootstraps  *obs.Counter
	streamDrops *obs.Counter
	fencedC     *obs.Counter
}

// ErrDiverged reports that a follower's replayed history does not match
// the leader's last shipped store digest at the same frontier: the local
// store is not a faithful prefix of the leader's timeline and must not be
// promoted. Rejoin via snapshot instead.
var ErrDiverged = errors.New("repl: local history diverged from the leader's shipped digest")

// StartFollower opens (creating if absent) the local replica database. A
// fresh directory is valid: the first subscription starts at LSN 1 and the
// leader either streams its whole log or interposes a snapshot.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Leader == "" || cfg.Path == "" {
		return nil, fmt.Errorf("repl: follower needs Leader and Path")
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 10 * time.Second
	}
	if cfg.MaxBackoff < cfg.Backoff {
		cfg.MaxBackoff = cfg.Backoff
	}
	f := &Follower{cfg: cfg}
	f.needSnap.Store(cfg.ForceSnapshot)
	eng, err := f.openEngine()
	if err != nil {
		return nil, err
	}
	f.setEngine(eng)
	f.leaderEpoch.Store(eng.Epoch())
	return f, nil
}

func (f *Follower) openEngine() (*core.Engine, error) {
	opts := f.cfg.Open
	opts.Path = f.cfg.Path
	opts.Follower = true
	opts.ReadOnly = false
	return core.Open(opts)
}

func (f *Follower) setEngine(eng *core.Engine) {
	f.mu.Lock()
	f.eng = eng
	reg := eng.Metrics()
	f.watermarkG = reg.Gauge("repl.watermark_lsn")
	f.lagLSNs = reg.Gauge("repl.lag_lsns")
	f.lagMS = reg.Gauge("repl.lag_ms")
	f.applied = reg.Counter("repl.records_applied")
	f.reconnects = reg.Counter("repl.reconnects")
	f.bootstraps = reg.Counter("repl.snapshot_bootstraps")
	f.streamDrops = reg.Counter("repl.stream_drops")
	f.fencedC = reg.Counter("repl.fenced")
	f.watermarkG.Set(int64(eng.Watermark()))
	f.mu.Unlock()
}

// SetOnSwap installs the snapshot-swap callback after construction — the
// serving layer that needs it usually does not exist yet when the
// follower starts. Must be called before Run.
func (f *Follower) SetOnSwap(fn func(old, next *core.Engine)) { f.cfg.OnSwap = fn }

// Engine returns the current local engine. The pointer is invalidated by
// a snapshot bootstrap — long-lived holders must use OnSwap.
func (f *Follower) Engine() *core.Engine {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.eng
}

// Watermark returns the highest replicated LSN the local store reflects.
func (f *Follower) Watermark() uint64 { return f.Engine().Watermark() }

// Staleness reports how long ago the store was last known to be caught up
// with the leader. A connected, keeping-up follower reads on the order of
// the leader's heartbeat interval; a partitioned one grows without bound;
// a follower that has never reached the leader returns a year. A promoted
// follower IS the leader — its staleness is zero by definition.
func (f *Follower) Staleness() time.Duration {
	if f.promoted.Load() {
		return 0
	}
	at := f.freshAsOf.Load()
	if at == 0 {
		return 365 * 24 * time.Hour
	}
	return time.Since(time.Unix(0, at))
}

// LeaderEpoch returns the highest replication epoch heard from upstream.
func (f *Follower) LeaderEpoch() uint64 { return f.leaderEpoch.Load() }

// Close shuts the local engine down.
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eng.Close()
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

func (f *Follower) dial(ctx context.Context) (net.Conn, error) {
	if f.cfg.Dial != nil {
		return f.cfg.Dial(ctx, f.cfg.Leader)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", f.cfg.Leader)
}

// Run replicates until ctx is cancelled, reconnecting with jittered
// exponential backoff across leader restarts and network faults. It
// returns ctx.Err() — every other failure is retried, because a
// follower's job is to converge eventually — except promotion, which
// ends replication for good and returns nil.
func (f *Follower) Run(ctx context.Context) error {
	seed := f.cfg.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	attempt := 0
	for {
		err := f.runOnce(ctx)
		if f.promoted.Load() {
			return nil
		}
		if err != nil && ctx.Err() == nil {
			f.streamDrops.Inc()
			f.logf("repl: stream to %s failed: %v (retrying in ~%s)", f.cfg.Leader, err, f.backoff(attempt, nil))
		}
		// A stream that made progress before dying resets the backoff —
		// the exponential curve is for a leader that is down, not one that
		// blipped.
		if f.progressed.Swap(false) {
			attempt = 0
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(f.backoff(attempt, rng)):
		}
		if attempt < 30 {
			attempt++
		}
		f.reconnects.Inc()
	}
}

// backoff computes the reconnect delay for the given consecutive-failure
// count: base doubled per attempt, capped at MaxBackoff, plus up to 50%
// jitter — mirroring the client's dial-retry policy. A nil rng yields the
// deterministic base (used for log messages).
func (f *Follower) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := f.cfg.Backoff
	for i := 0; i < attempt && d < f.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > f.cfg.MaxBackoff {
		d = f.cfg.MaxBackoff
	}
	if rng != nil {
		d += time.Duration(rng.Int63n(int64(d)/2 + 1))
	}
	return d
}

// runOnce runs one subscription: dial, handshake, subscribe from the
// current watermark, then apply frames until something breaks.
func (f *Follower) runOnce(ctx context.Context) error {
	if f.promoted.Load() {
		return nil
	}
	conn, err := f.dial(ctx)
	if err != nil {
		return err
	}
	defer conn.Close()
	f.setConn(conn)
	defer f.setConn(nil)
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetWriteDeadline(time.Now().Add(f.cfg.ReadTimeout))
	if err := wire.WriteFrame(conn, wire.FrameHello, wire.EncodeHello("tcodm-repl")); err != nil {
		return err
	}
	fr, err := f.readFrame(conn, br)
	if err != nil {
		return err
	}
	if fr.Type != wire.FrameWelcome {
		return fmt.Errorf("repl: expected Welcome, got frame 0x%02x", fr.Type)
	}
	eng := f.Engine()
	req := wire.SubscribeReq{FromLSN: eng.Watermark() + 1, Epoch: f.epoch()}
	if f.needSnap.Load() {
		req.Flags |= wire.SubscribeFlagSnapshot
	}
	conn.SetWriteDeadline(time.Now().Add(f.cfg.ReadTimeout))
	if err := wire.WriteFrame(conn, wire.FrameSubscribe, wire.EncodeSubscribeReq(req)); err != nil {
		return err
	}
	f.logf("repl: subscribed to %s from LSN %d (epoch %d, flags %#x)", f.cfg.Leader, req.FromLSN, req.Epoch, req.Flags)

	for {
		fr, err := f.readFrame(conn, br)
		if err != nil {
			return err
		}
		f.progressed.Store(true)
		switch fr.Type {
		case wire.FrameLogBatch:
			recs, _, err := wal.DecodeRecordStream(fr.Payload)
			if err != nil {
				return fmt.Errorf("repl: corrupt log batch: %w", err)
			}
			wm, err := f.Engine().ApplyReplicated(recs)
			if err != nil {
				return fmt.Errorf("repl: apply: %w", err)
			}
			f.applied.Add(uint64(len(recs)))
			f.watermarkG.Set(int64(wm))
		case wire.FrameWatermark:
			wmk, err := wire.DecodeWatermarkInfo(fr.Payload)
			if err != nil {
				return err
			}
			f.noteLeaderEpoch(wmk.Epoch)
			if len(wmk.Digest) == wire.StoreDigestLen {
				f.digMu.Lock()
				f.digLSN, f.dig = wmk.LSN, wmk.Digest
				f.digMu.Unlock()
			}
			wm := f.Engine().Watermark()
			lag := int64(0)
			if wmk.LSN > wm {
				lag = int64(wmk.LSN - wm)
			}
			f.lagLSNs.Set(lag)
			if lag == 0 {
				// Caught up as of this heartbeat's arrival; staleness is
				// measured from here on our own clock.
				f.freshAsOf.Store(time.Now().UnixNano())
			}
			f.lagMS.Set(int64(f.Staleness() / time.Millisecond))
		case wire.FrameSnapshotOffer:
			startLSN, size, err := wire.DecodeSnapshotOffer(fr.Payload)
			if err != nil {
				return err
			}
			if err := f.bootstrap(conn, br, startLSN, size); err != nil {
				return fmt.Errorf("repl: snapshot bootstrap: %w", err)
			}
		case wire.FrameFence:
			return f.handleFence(fr.Payload)
		case wire.FrameError:
			code, msg, detail, _ := wire.DecodeError(fr.Payload)
			return fmt.Errorf("repl: leader error %d: %s (%s)", code, msg, detail)
		default:
			return fmt.Errorf("repl: unexpected frame 0x%02x on replication stream", fr.Type)
		}
	}
}

// handleFence reacts to the source refusing this follower's history. When
// the source is at a HIGHER epoch, this node is the resurrected old
// leader (or a peer of one): its WAL suffix above the epoch-start LSN was
// never shipped and now belongs to a dead timeline. Redo-only replication
// cannot unapply it, so the discard is loud and total — the next
// subscription requests a full snapshot, whose installation drops the
// local WAL and store wholesale. When the source is at a lower-or-equal
// epoch, the SOURCE is the stale one; keep our state and keep retrying
// (the operator repoints the follower, or the source rejoins).
func (f *Follower) handleFence(payload []byte) error {
	fence, err := wire.DecodeFence(payload)
	if err != nil {
		return err
	}
	f.fencedC.Inc()
	local := f.epoch()
	if fence.Epoch <= local {
		f.logf("repl: leader %s is stale (its epoch %d <= local %d); keeping local state", f.cfg.Leader, fence.Epoch, local)
		return fmt.Errorf("repl: fenced by stale leader: %s", fence.Msg)
	}
	f.noteLeaderEpoch(fence.Epoch)
	appended := f.Engine().Watermark()
	var unshipped uint64
	if appended > fence.EpochStart {
		unshipped = appended - fence.EpochStart
	}
	f.needSnap.Store(true)
	f.logf("repl: FENCED by %s at epoch %d: %s — DISCARDING %d unshipped WAL records above epoch-start LSN %d (local frontier %d) and rejoining via snapshot",
		f.cfg.Leader, fence.Epoch, fence.Msg, unshipped, fence.EpochStart, appended)
	return fmt.Errorf("repl: fenced at epoch %d (rejoining via snapshot): %s", fence.Epoch, fence.Msg)
}

// epoch returns the local store's epoch, never lower than what the leader
// has told us — the subscribe epoch must reflect everything we know, or a
// just-bootstrapped follower could present epoch 0 to a newer leader.
func (f *Follower) epoch() uint64 {
	e := f.Engine().Epoch()
	if le := f.leaderEpoch.Load(); le > e {
		e = le
	}
	return e
}

func (f *Follower) noteLeaderEpoch(e uint64) {
	for {
		cur := f.leaderEpoch.Load()
		if e <= cur || f.leaderEpoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

func (f *Follower) setConn(c net.Conn) {
	f.connMu.Lock()
	f.conn = c
	f.connMu.Unlock()
}

// Promote turns this follower into the leader: streaming stops, the
// replayed history is verified against the leader's last shipped store
// digest when one is available at the exact local frontier (mismatch is
// the typed ErrDiverged — promoting a diverged store would fork the
// timeline), the engine opens read-write, and the epoch is bumped past
// everything this node ever heard. The caller then serves the engine as
// a repl.Source; Run returns nil on its next wakeup.
//
// The digest check is evidence, not proof: if the leader died before
// shipping a digest at this frontier, promotion proceeds with a logged
// warning — refusing would trade a detectable risk for guaranteed
// unavailability.
func (f *Follower) Promote() (uint64, error) {
	if f.promoted.Load() {
		return 0, fmt.Errorf("repl: already promoted")
	}
	// Sever the stream first: no new batches land while we examine the
	// frontier (ApplyReplicated and core.Promote serialize on the engine
	// lock, so a batch already in flight either fully lands before the
	// check or fails after the flip — never half).
	f.connMu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.connMu.Unlock()

	eng := f.Engine()
	wm := eng.Watermark()
	f.digMu.Lock()
	digLSN, dig := f.digLSN, f.dig
	f.digMu.Unlock()
	if len(dig) == wire.StoreDigestLen && digLSN == wm {
		own, err := eng.DigestStore()
		if err != nil {
			return 0, fmt.Errorf("repl: promote digest check: %w", err)
		}
		if !bytes.Equal(own, dig) {
			return 0, fmt.Errorf("%w (frontier LSN %d)", ErrDiverged, wm)
		}
		f.logf("repl: promote: store digest verified against leader's at LSN %d", wm)
	} else {
		f.logf("repl: promote: no leader digest at local frontier %d (last shipped at %d); skipping divergence check", wm, digLSN)
	}
	epoch, err := eng.Promote(f.leaderEpoch.Load())
	if err != nil {
		return 0, err
	}
	f.promoted.Store(true)
	f.freshAsOf.Store(time.Now().UnixNano())
	f.lagLSNs.Set(0)
	f.lagMS.Set(0)
	f.watermarkG.Set(int64(eng.Watermark()))
	f.logf("repl: PROMOTED to epoch %d at LSN %d; ex-leader %s is fenced", epoch, eng.Watermark(), f.cfg.Leader)
	return epoch, nil
}

// Promoted reports whether Promote has succeeded on this follower.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

func (f *Follower) readFrame(conn net.Conn, br *bufio.Reader) (wire.Frame, error) {
	conn.SetReadDeadline(time.Now().Add(f.cfg.ReadTimeout))
	return wire.ReadFrame(br)
}

// snapshotSplitter separates the snapshot stream back into its two files:
// an 8-byte big-endian device byte count, that many device bytes, then the
// cold archive's content (possibly empty, never negative — the count is
// validated against the promised total upstream by the size check).
type snapshotSplitter struct {
	db, arc  *os.File
	hdr      [8]byte
	hdrGot   int
	devBytes uint64
	devGot   uint64
}

func (s *snapshotSplitter) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if s.hdrGot < 8 {
			c := copy(s.hdr[s.hdrGot:], p)
			s.hdrGot += c
			p = p[c:]
			if s.hdrGot == 8 {
				s.devBytes = binary.BigEndian.Uint64(s.hdr[:])
			}
			continue
		}
		if s.devGot < s.devBytes {
			c := uint64(len(p))
			if c > s.devBytes-s.devGot {
				c = s.devBytes - s.devGot
			}
			if _, err := s.db.Write(p[:c]); err != nil {
				return n, err
			}
			s.devGot += c
			p = p[c:]
			continue
		}
		if _, err := s.arc.Write(p); err != nil {
			return n, err
		}
		p = nil
	}
	return n, nil
}

// bootstrap receives a snapshot into temp files (device and cold archive),
// verifies the size and digest, and swaps the local database underneath
// the serving layer: the old engine closes (releasing its writer lease),
// the snapshot files are renamed into place, the stale local log is
// dropped, and a fresh follower engine opens at the snapshot's LSN.
// Queries racing the swap fail with "database closed" until OnSwap
// installs the new engine — a bounded, explicit window, never a wrong
// answer.
func (f *Follower) bootstrap(conn net.Conn, br *bufio.Reader, startLSN, size uint64) error {
	f.logf("repl: receiving snapshot (start LSN %d, %d bytes)", startLSN, size)
	tmpPath := f.cfg.Path + ".snap"
	arcTmpPath := f.cfg.Path + ".snap.arc"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath)
	arcTmp, err := os.Create(arcTmpPath)
	if err != nil {
		tmp.Close()
		return err
	}
	defer os.Remove(arcTmpPath)
	closeBoth := func() { tmp.Close(); arcTmp.Close() }
	split := &snapshotSplitter{db: tmp, arc: arcTmp}
	h := sha256.New()
	var got uint64
	var digest []byte
recv:
	for {
		fr, err := f.readFrame(conn, br)
		if err != nil {
			closeBoth()
			return err
		}
		switch fr.Type {
		case wire.FrameSnapshotChunk:
			if _, err := split.Write(fr.Payload); err != nil {
				closeBoth()
				return err
			}
			h.Write(fr.Payload)
			got += uint64(len(fr.Payload))
		case wire.FrameSnapshotDone:
			digest, err = wire.DecodeSnapshotDone(fr.Payload)
			if err != nil {
				closeBoth()
				return err
			}
			break recv
		default:
			closeBoth()
			return fmt.Errorf("unexpected frame 0x%02x inside snapshot", fr.Type)
		}
	}
	if got != size {
		closeBoth()
		return fmt.Errorf("snapshot promised %d bytes, received %d", size, got)
	}
	if !bytes.Equal(h.Sum(nil), digest) {
		closeBoth()
		return fmt.Errorf("snapshot digest mismatch")
	}
	if split.hdrGot < 8 || split.devGot < split.devBytes {
		closeBoth()
		return fmt.Errorf("snapshot truncated: device section incomplete")
	}
	if err := tmp.Sync(); err != nil {
		closeBoth()
		return err
	}
	if err := arcTmp.Sync(); err != nil {
		closeBoth()
		return err
	}
	if err := tmp.Close(); err != nil {
		arcTmp.Close()
		return err
	}
	if err := arcTmp.Close(); err != nil {
		return err
	}

	f.mu.Lock()
	old := f.eng
	if err := old.Close(); err != nil {
		f.mu.Unlock()
		return fmt.Errorf("closing old engine: %w", err)
	}
	if err := os.Rename(tmpPath, f.cfg.Path); err != nil {
		f.mu.Unlock()
		return err
	}
	if err := os.Rename(arcTmpPath, f.cfg.Path+".arc"); err != nil {
		f.mu.Unlock()
		return err
	}
	// The local log predates the snapshot; the stream resumes at startLSN.
	if err := os.Remove(f.cfg.Path + ".wal"); err != nil && !os.IsNotExist(err) {
		f.mu.Unlock()
		return err
	}
	f.mu.Unlock()
	next, err := f.openEngine()
	if err != nil {
		return fmt.Errorf("opening bootstrapped engine: %w", err)
	}
	f.setEngine(next)
	f.bootstraps.Inc()
	f.needSnap.Store(false)
	f.noteLeaderEpoch(next.Epoch())
	if f.cfg.OnSwap != nil {
		f.cfg.OnSwap(old, next)
	}
	f.logf("repl: snapshot installed, resuming at LSN %d", startLSN)
	return nil
}
