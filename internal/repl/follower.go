package repl

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/obs"
	"tcodm/internal/wal"
	"tcodm/internal/wire"
)

// FollowerConfig parameterizes a Follower. Leader and Path are required.
type FollowerConfig struct {
	Leader string // leader wire address, e.g. "leader:7483"
	Path   string // local database file (owned by this follower)

	// Open is the option template for the local engine; Path and Follower
	// are overridden, and follower mode force-disables the time and value
	// indexes regardless of what it says.
	Open core.Options

	// Dial replaces the default TCP dialer (fault-injection seam).
	Dial func(ctx context.Context, addr string) (net.Conn, error)

	// OnSwap fires after a snapshot bootstrap replaced the engine — the
	// serving layer must stop routing queries to old (already closed) and
	// start using next.
	OnSwap func(old, next *core.Engine)

	ReadTimeout time.Duration // max silence from the leader (default 10s)
	Backoff     time.Duration // reconnect delay after a failure (default 500ms)

	Logf func(format string, args ...any)
}

// Follower owns a replica database: it maintains the connection to the
// leader, applies the shipped log, installs bootstrap snapshots, and
// tracks how fresh the local store is.
type Follower struct {
	cfg FollowerConfig

	mu  sync.RWMutex // guards eng across snapshot swaps
	eng *core.Engine

	// freshAsOf is the wall-clock instant (unix nanos) at which the store
	// was last known to be caught up with the leader; 0 = never. Staleness
	// is measured from it locally, so leader and follower clocks need not
	// agree.
	freshAsOf atomic.Int64

	watermarkG *obs.Gauge
	lagLSNs    *obs.Gauge
	lagMS      *obs.Gauge
	applied    *obs.Counter
	reconnects *obs.Counter
	bootstraps *obs.Counter
}

// StartFollower opens (creating if absent) the local replica database. A
// fresh directory is valid: the first subscription starts at LSN 1 and the
// leader either streams its whole log or interposes a snapshot.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Leader == "" || cfg.Path == "" {
		return nil, fmt.Errorf("repl: follower needs Leader and Path")
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 10 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	f := &Follower{cfg: cfg}
	eng, err := f.openEngine()
	if err != nil {
		return nil, err
	}
	f.setEngine(eng)
	return f, nil
}

func (f *Follower) openEngine() (*core.Engine, error) {
	opts := f.cfg.Open
	opts.Path = f.cfg.Path
	opts.Follower = true
	opts.ReadOnly = false
	return core.Open(opts)
}

func (f *Follower) setEngine(eng *core.Engine) {
	f.mu.Lock()
	f.eng = eng
	reg := eng.Metrics()
	f.watermarkG = reg.Gauge("repl.watermark_lsn")
	f.lagLSNs = reg.Gauge("repl.lag_lsns")
	f.lagMS = reg.Gauge("repl.lag_ms")
	f.applied = reg.Counter("repl.records_applied")
	f.reconnects = reg.Counter("repl.reconnects")
	f.bootstraps = reg.Counter("repl.snapshot_bootstraps")
	f.watermarkG.Set(int64(eng.Watermark()))
	f.mu.Unlock()
}

// SetOnSwap installs the snapshot-swap callback after construction — the
// serving layer that needs it usually does not exist yet when the
// follower starts. Must be called before Run.
func (f *Follower) SetOnSwap(fn func(old, next *core.Engine)) { f.cfg.OnSwap = fn }

// Engine returns the current local engine. The pointer is invalidated by
// a snapshot bootstrap — long-lived holders must use OnSwap.
func (f *Follower) Engine() *core.Engine {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.eng
}

// Watermark returns the highest replicated LSN the local store reflects.
func (f *Follower) Watermark() uint64 { return f.Engine().Watermark() }

// Staleness reports how long ago the store was last known to be caught up
// with the leader. A connected, keeping-up follower reads on the order of
// the leader's heartbeat interval; a partitioned one grows without bound;
// a follower that has never reached the leader returns a year.
func (f *Follower) Staleness() time.Duration {
	at := f.freshAsOf.Load()
	if at == 0 {
		return 365 * 24 * time.Hour
	}
	return time.Since(time.Unix(0, at))
}

// Close shuts the local engine down.
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eng.Close()
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

func (f *Follower) dial(ctx context.Context) (net.Conn, error) {
	if f.cfg.Dial != nil {
		return f.cfg.Dial(ctx, f.cfg.Leader)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", f.cfg.Leader)
}

// Run replicates until ctx is cancelled, reconnecting with backoff across
// leader restarts and network faults. It returns ctx.Err() — every other
// failure is retried, because a follower's job is to converge eventually.
func (f *Follower) Run(ctx context.Context) error {
	for {
		if err := f.runOnce(ctx); err != nil && ctx.Err() == nil {
			f.logf("repl: stream to %s failed: %v (retrying in %s)", f.cfg.Leader, err, f.cfg.Backoff)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(f.cfg.Backoff):
		}
		f.reconnects.Inc()
	}
}

// runOnce runs one subscription: dial, handshake, subscribe from the
// current watermark, then apply frames until something breaks.
func (f *Follower) runOnce(ctx context.Context) error {
	conn, err := f.dial(ctx)
	if err != nil {
		return err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetWriteDeadline(time.Now().Add(f.cfg.ReadTimeout))
	if err := wire.WriteFrame(conn, wire.FrameHello, wire.EncodeHello("tcodm-repl")); err != nil {
		return err
	}
	fr, err := f.readFrame(conn, br)
	if err != nil {
		return err
	}
	if fr.Type != wire.FrameWelcome {
		return fmt.Errorf("repl: expected Welcome, got frame 0x%02x", fr.Type)
	}
	from := f.Engine().Watermark() + 1
	conn.SetWriteDeadline(time.Now().Add(f.cfg.ReadTimeout))
	if err := wire.WriteFrame(conn, wire.FrameSubscribe, wire.EncodeSubscribe(from)); err != nil {
		return err
	}
	f.logf("repl: subscribed to %s from LSN %d", f.cfg.Leader, from)

	for {
		fr, err := f.readFrame(conn, br)
		if err != nil {
			return err
		}
		switch fr.Type {
		case wire.FrameLogBatch:
			recs, _, err := wal.DecodeRecordStream(fr.Payload)
			if err != nil {
				return fmt.Errorf("repl: corrupt log batch: %w", err)
			}
			wm, err := f.Engine().ApplyReplicated(recs)
			if err != nil {
				return fmt.Errorf("repl: apply: %w", err)
			}
			f.applied.Add(uint64(len(recs)))
			f.watermarkG.Set(int64(wm))
		case wire.FrameWatermark:
			lsn, _, err := wire.DecodeWatermark(fr.Payload)
			if err != nil {
				return err
			}
			wm := f.Engine().Watermark()
			lag := int64(0)
			if lsn > wm {
				lag = int64(lsn - wm)
			}
			f.lagLSNs.Set(lag)
			if lag == 0 {
				// Caught up as of this heartbeat's arrival; staleness is
				// measured from here on our own clock.
				f.freshAsOf.Store(time.Now().UnixNano())
			}
			f.lagMS.Set(int64(f.Staleness() / time.Millisecond))
		case wire.FrameSnapshotOffer:
			startLSN, size, err := wire.DecodeSnapshotOffer(fr.Payload)
			if err != nil {
				return err
			}
			if err := f.bootstrap(conn, br, startLSN, size); err != nil {
				return fmt.Errorf("repl: snapshot bootstrap: %w", err)
			}
		case wire.FrameError:
			code, msg, detail, _ := wire.DecodeError(fr.Payload)
			return fmt.Errorf("repl: leader error %d: %s (%s)", code, msg, detail)
		default:
			return fmt.Errorf("repl: unexpected frame 0x%02x on replication stream", fr.Type)
		}
	}
}

func (f *Follower) readFrame(conn net.Conn, br *bufio.Reader) (wire.Frame, error) {
	conn.SetReadDeadline(time.Now().Add(f.cfg.ReadTimeout))
	return wire.ReadFrame(br)
}

// snapshotSplitter separates the snapshot stream back into its two files:
// an 8-byte big-endian device byte count, that many device bytes, then the
// cold archive's content (possibly empty, never negative — the count is
// validated against the promised total upstream by the size check).
type snapshotSplitter struct {
	db, arc  *os.File
	hdr      [8]byte
	hdrGot   int
	devBytes uint64
	devGot   uint64
}

func (s *snapshotSplitter) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if s.hdrGot < 8 {
			c := copy(s.hdr[s.hdrGot:], p)
			s.hdrGot += c
			p = p[c:]
			if s.hdrGot == 8 {
				s.devBytes = binary.BigEndian.Uint64(s.hdr[:])
			}
			continue
		}
		if s.devGot < s.devBytes {
			c := uint64(len(p))
			if c > s.devBytes-s.devGot {
				c = s.devBytes - s.devGot
			}
			if _, err := s.db.Write(p[:c]); err != nil {
				return n, err
			}
			s.devGot += c
			p = p[c:]
			continue
		}
		if _, err := s.arc.Write(p); err != nil {
			return n, err
		}
		p = nil
	}
	return n, nil
}

// bootstrap receives a snapshot into temp files (device and cold archive),
// verifies the size and digest, and swaps the local database underneath
// the serving layer: the old engine closes (releasing its writer lease),
// the snapshot files are renamed into place, the stale local log is
// dropped, and a fresh follower engine opens at the snapshot's LSN.
// Queries racing the swap fail with "database closed" until OnSwap
// installs the new engine — a bounded, explicit window, never a wrong
// answer.
func (f *Follower) bootstrap(conn net.Conn, br *bufio.Reader, startLSN, size uint64) error {
	f.logf("repl: receiving snapshot (start LSN %d, %d bytes)", startLSN, size)
	tmpPath := f.cfg.Path + ".snap"
	arcTmpPath := f.cfg.Path + ".snap.arc"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath)
	arcTmp, err := os.Create(arcTmpPath)
	if err != nil {
		tmp.Close()
		return err
	}
	defer os.Remove(arcTmpPath)
	closeBoth := func() { tmp.Close(); arcTmp.Close() }
	split := &snapshotSplitter{db: tmp, arc: arcTmp}
	h := sha256.New()
	var got uint64
	var digest []byte
recv:
	for {
		fr, err := f.readFrame(conn, br)
		if err != nil {
			closeBoth()
			return err
		}
		switch fr.Type {
		case wire.FrameSnapshotChunk:
			if _, err := split.Write(fr.Payload); err != nil {
				closeBoth()
				return err
			}
			h.Write(fr.Payload)
			got += uint64(len(fr.Payload))
		case wire.FrameSnapshotDone:
			digest, err = wire.DecodeSnapshotDone(fr.Payload)
			if err != nil {
				closeBoth()
				return err
			}
			break recv
		default:
			closeBoth()
			return fmt.Errorf("unexpected frame 0x%02x inside snapshot", fr.Type)
		}
	}
	if got != size {
		closeBoth()
		return fmt.Errorf("snapshot promised %d bytes, received %d", size, got)
	}
	if !bytes.Equal(h.Sum(nil), digest) {
		closeBoth()
		return fmt.Errorf("snapshot digest mismatch")
	}
	if split.hdrGot < 8 || split.devGot < split.devBytes {
		closeBoth()
		return fmt.Errorf("snapshot truncated: device section incomplete")
	}
	if err := tmp.Sync(); err != nil {
		closeBoth()
		return err
	}
	if err := arcTmp.Sync(); err != nil {
		closeBoth()
		return err
	}
	if err := tmp.Close(); err != nil {
		arcTmp.Close()
		return err
	}
	if err := arcTmp.Close(); err != nil {
		return err
	}

	f.mu.Lock()
	old := f.eng
	if err := old.Close(); err != nil {
		f.mu.Unlock()
		return fmt.Errorf("closing old engine: %w", err)
	}
	if err := os.Rename(tmpPath, f.cfg.Path); err != nil {
		f.mu.Unlock()
		return err
	}
	if err := os.Rename(arcTmpPath, f.cfg.Path+".arc"); err != nil {
		f.mu.Unlock()
		return err
	}
	// The local log predates the snapshot; the stream resumes at startLSN.
	if err := os.Remove(f.cfg.Path + ".wal"); err != nil && !os.IsNotExist(err) {
		f.mu.Unlock()
		return err
	}
	f.mu.Unlock()
	next, err := f.openEngine()
	if err != nil {
		return fmt.Errorf("opening bootstrapped engine: %w", err)
	}
	f.setEngine(next)
	f.bootstraps.Inc()
	if f.cfg.OnSwap != nil {
		f.cfg.OnSwap(old, next)
	}
	f.logf("repl: snapshot installed, resuming at LSN %d", startLSN)
	return nil
}
