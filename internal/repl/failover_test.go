package repl

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/value"
	"tcodm/internal/wire"
)

// commitOn inserts an Emp row on an arbitrary engine (used for writes on
// a freshly promoted follower's engine).
func commitOn(t *testing.T, e *core.Engine, name string, salary int64) {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("Emp", map[string]value.V{
		"name": value.String_(name), "salary": value.Int(salary),
	}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// waitDigestShipped waits until the follower has cached a leader digest at
// its current watermark (the leader ships one after two idle heartbeats).
func waitDigestShipped(t *testing.T, f *Follower) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		f.digMu.Lock()
		ok := len(f.dig) == wire.StoreDigestLen && f.digLSN == f.Watermark()
		f.digMu.Unlock()
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("leader never shipped a digest at the follower's frontier")
}

func TestPromoteVerifiedTakeover(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, dir)
	commit(t, leader, "a", 100)
	commit(t, leader, "b", 200)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &Source{Engine: leader, Heartbeat: 20 * time.Millisecond}
	f, err := StartFollower(FollowerConfig{
		Leader: "pipe", Path: filepath.Join(dir, "follower"),
		Dial:    leaderDialer(ctx, src),
		Backoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	go f.Run(ctx)
	waitConverged(t, f, leader)
	waitDigestShipped(t, f)

	epoch, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("promotion epoch = %d, want 1", epoch)
	}
	if !f.Promoted() {
		t.Fatal("Promoted() = false after Promote")
	}
	if f.Staleness() != 0 {
		t.Fatalf("promoted follower staleness = %v, want 0 (a leader is a replica with zero lag)", f.Staleness())
	}
	// The promoted engine takes local writes.
	eng := f.Engine()
	if eng.IsReadOnly() {
		t.Fatal("promoted engine is still read-only")
	}
	commitOn(t, eng, "c", 300)
	// Promote is once-only.
	if _, err := f.Promote(); err == nil {
		t.Fatal("second Promote succeeded")
	}
}

func TestPromoteDetectsDivergence(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, dir)
	commit(t, leader, "a", 100)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &Source{Engine: leader, Heartbeat: 20 * time.Millisecond}
	f, err := StartFollower(FollowerConfig{
		Leader: "pipe", Path: filepath.Join(dir, "follower"),
		Dial:    leaderDialer(ctx, src),
		Backoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	go f.Run(ctx)
	waitConverged(t, f, leader)

	// Forge a digest the local store cannot match at the current frontier:
	// promotion must refuse with the typed divergence error rather than
	// fork the timeline.
	f.digMu.Lock()
	f.digLSN = f.Watermark()
	f.dig = bytes.Repeat([]byte{0xEE}, wire.StoreDigestLen)
	f.digMu.Unlock()
	if _, err := f.Promote(); !errors.Is(err, ErrDiverged) {
		t.Fatalf("Promote with mismatched digest = %v, want ErrDiverged", err)
	}
	if f.Promoted() {
		t.Fatal("diverged follower reports Promoted()")
	}
}

// TestSourceSelfFencesOnHigherEpoch drives Serve directly: a subscriber
// that has seen a higher epoch proves this source is a stale ex-leader.
func TestSourceSelfFencesOnHigherEpoch(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, dir)
	commit(t, leader, "a", 100)

	var fencedBy atomic.Uint64
	src := &Source{Engine: leader, OnFenced: func(peer uint64) { fencedBy.Store(peer) }}
	client, server := net.Pipe()
	defer client.Close()
	done := make(chan error, 1)
	go func() {
		defer server.Close()
		done <- src.Serve(context.Background(), server, wire.SubscribeReq{FromLSN: 1, Epoch: 5})
	}()
	fr, err := wire.ReadFrame(bufio.NewReader(client))
	if err != nil {
		t.Fatal(err)
	}
	if fr.Type != wire.FrameFence {
		t.Fatalf("frame = 0x%02x, want Fence", fr.Type)
	}
	fence, err := wire.DecodeFence(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if fence.Epoch != 0 {
		t.Fatalf("fence epoch = %d, want the source's own 0", fence.Epoch)
	}
	if err := <-done; err == nil {
		t.Fatal("Serve returned nil after self-fencing")
	}
	if fencedBy.Load() != 5 {
		t.Fatalf("OnFenced peer epoch = %d, want 5", fencedBy.Load())
	}
}

// TestFencedOldLeaderRejoinsViaSnapshot is the full demotion arc: the old
// leader commits past the promotion point (a divergent, unshipped
// suffix), then rejoins the new leader — it must be fenced, discard its
// suffix loudly, bootstrap from a snapshot, and converge byte-for-byte.
func TestFencedOldLeaderRejoinsViaSnapshot(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, dir)
	commit(t, leader, "a", 100)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &Source{Engine: leader, Heartbeat: 20 * time.Millisecond}
	f, err := StartFollower(FollowerConfig{
		Leader: "pipe", Path: filepath.Join(dir, "new-leader"),
		Dial:    leaderDialer(ctx, src),
		Backoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	go f.Run(ctx)
	waitConverged(t, f, leader)

	// Partition: the follower promotes while the old leader, unaware,
	// keeps committing writes nobody will ever replicate.
	if _, err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	newEng := f.Engine()
	commitOn(t, newEng, "on-new-timeline", 500)
	commit(t, leader, "divergent-unshipped", 999)
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}

	// The resurrected old leader rejoins as a follower of the new leader.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	src2 := &Source{Engine: newEng, Heartbeat: 20 * time.Millisecond, Logf: t.Logf}
	old, err := StartFollower(FollowerConfig{
		Leader: "pipe2", Path: filepath.Join(dir, "leader"),
		Dial:    leaderDialer(ctx2, src2),
		Backoff: 10 * time.Millisecond,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	go old.Run(ctx2)

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if old.Watermark() == newEng.Log().AppendedLSN() && old.Engine().Epoch() == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if old.Engine().Epoch() != 1 {
		t.Fatalf("rejoined old leader epoch = %d, want 1", old.Engine().Epoch())
	}
	nd, err := newEng.DigestStore()
	if err != nil {
		t.Fatal(err)
	}
	od, err := old.Engine().DigestStore()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(nd, od) {
		t.Fatal("old leader did not converge onto the promoted timeline")
	}
	// The divergent write is gone; the new timeline's write is present.
	res, err := old.Engine().Query(`SELECT (Emp.name) FROM Emp WHERE Emp.salary >= 500 AT 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "on-new-timeline" {
		t.Fatalf("post-rejoin rows = %v", res.Rows)
	}
	// The rejoin was by fencing, not by luck: the new leader sent a fence
	// (the old leader's repl.fenced counter is rebound to a fresh registry
	// during the snapshot swap, so assert on the source side).
	if newEng.Metrics().Counters()["repl.fences_sent"] == 0 {
		t.Error("repl.fences_sent never moved on the new leader")
	}
	if old.Engine().Metrics().Counters()["repl.snapshot_bootstraps"] == 0 {
		t.Error("old leader rejoined without a snapshot bootstrap")
	}
}

// TestBehindFollowerServedAcrossPromotion: a follower that is merely
// behind (clean prefix, no divergent suffix) must NOT be fenced by the
// new leader — it streams the missing records, including the epoch
// record, and converges without a snapshot.
func TestBehindFollowerServedAcrossPromotion(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, dir)
	commit(t, leader, "a", 100)

	// First follower: converges, then promotes.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &Source{Engine: leader, Heartbeat: 20 * time.Millisecond}
	f1, err := StartFollower(FollowerConfig{
		Leader: "pipe", Path: filepath.Join(dir, "f1"),
		Dial:    leaderDialer(ctx, src),
		Backoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	go f1.Run(ctx)
	waitConverged(t, f1, leader)
	if _, err := f1.Promote(); err != nil {
		t.Fatal(err)
	}
	commitOn(t, f1.Engine(), "post-promo", 700)

	// Second follower: fresh (way behind, clean prefix), pointed at the
	// NEW leader. It must be served the full stream, never fenced.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	src2 := &Source{Engine: f1.Engine(), Heartbeat: 20 * time.Millisecond}
	f2, err := StartFollower(FollowerConfig{
		Leader: "pipe2", Path: filepath.Join(dir, "f2"),
		Dial:    leaderDialer(ctx2, src2),
		Backoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	go f2.Run(ctx2)
	waitConverged(t, f2, f1.Engine())
	if f2.Engine().Epoch() != 1 {
		t.Fatalf("behind follower epoch = %d, want 1 (from the streamed epoch record)", f2.Engine().Epoch())
	}
	if f2.Engine().Metrics().Counters()["repl.fenced"] != 0 {
		t.Error("clean behind follower was fenced")
	}
}

func TestBackoffJitteredExponentialCapped(t *testing.T) {
	f := &Follower{cfg: FollowerConfig{
		Backoff:    100 * time.Millisecond,
		MaxBackoff: 800 * time.Millisecond,
	}}
	// Deterministic curve without jitter.
	for i, want := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 800 * time.Millisecond, 800 * time.Millisecond,
	} {
		if got := f.backoff(i, nil); got != want {
			t.Errorf("backoff(%d) = %v, want %v", i, got, want)
		}
	}
	// Jitter adds at most 50% and never goes below the base.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 6; i++ {
		base := f.backoff(i, nil)
		for k := 0; k < 50; k++ {
			got := f.backoff(i, rng)
			if got < base || got > base+base/2 {
				t.Fatalf("backoff(%d) with jitter = %v, want [%v, %v]", i, got, base, base+base/2)
			}
		}
	}
}

// TestFollowerStreamDropCounters: killing the transport mid-stream moves
// repl.stream_drops and repl.reconnects.
func TestFollowerStreamDropCounters(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, dir)
	commit(t, leader, "a", 100)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &Source{Engine: leader, Heartbeat: 20 * time.Millisecond}
	dial := leaderDialer(ctx, src)
	var lastConn atomic.Value
	f, err := StartFollower(FollowerConfig{
		Leader: "pipe", Path: filepath.Join(dir, "follower"),
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			c, err := dial(ctx, addr)
			if err == nil {
				lastConn.Store(c)
			}
			return c, err
		},
		Backoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	go f.Run(ctx)
	waitConverged(t, f, leader)

	lastConn.Load().(net.Conn).Close()
	commit(t, leader, "b", 200)
	waitConverged(t, f, leader)
	c := f.Engine().Metrics().Counters()
	if c["repl.stream_drops"] == 0 {
		t.Error("repl.stream_drops never moved after a severed stream")
	}
	if c["repl.reconnects"] == 0 {
		t.Error("repl.reconnects never moved after a severed stream")
	}
}
