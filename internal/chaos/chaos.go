// Package chaos is the end-to-end network torture harness: seeded client
// workloads replayed through the netfault chaos proxy against a real
// server, with every scenario checked against in-process golden results.
// The contract under fault injection is strict — a query either returns
// results byte-identical to the fault-free run or a clean typed error;
// never a wrong answer, a panic, a hang past the watchdog, or a leaked
// connection.
//
// Every scenario is a deterministic function of the seed: byte-offset
// faults are exact, clients run sequentially with seeded jitter, and the
// report holds only seed-determined facts (scenario verdicts and the
// availability sweep), so two same-seed runs produce identical reports.
package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/netfault"
	"tcodm/internal/obs"
	"tcodm/internal/server"
	"tcodm/internal/wire"
	"tcodm/internal/workload"
	"tcodm/pkg/client"
)

// Config sizes one chaos run.
type Config struct {
	// Seed drives the workload, the fault schedule, and client jitter;
	// the whole run is a deterministic function of it.
	Seed int64
	// Short selects the deterministic CI subset (~60 scenarios).
	Short bool
	// MaxScenarios truncates the schedule (0 = all); test support.
	MaxScenarios int
	// Watchdog bounds one scenario's wall time (default 30s). A scenario
	// that outlives it is a hang violation.
	Watchdog time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Report is the deterministic outcome of a run: two same-seed runs must
// serialize to identical bytes.
type Report struct {
	Seed      int64            `json:"seed"`
	Short     bool             `json:"short"`
	Scenarios []ScenarioResult `json:"scenarios"`
	Summary   Summary          `json:"summary"`
	Sweep     []SweepPoint     `json:"availability_sweep"`

	// Stats are informational wall-clock-dependent aggregates, excluded
	// from the deterministic report payload.
	Stats Stats `json:"-"`
}

// ScenarioResult is one scenario's verdict: "ok" (every query returned
// the golden result, possibly after retries) or "error" (at least one
// query surfaced a clean typed error). Violations are reported
// separately and fail the run.
type ScenarioResult struct {
	Name    string `json:"name"`
	Verdict string `json:"verdict"`
}

// Summary aggregates verdicts.
type Summary struct {
	Total      int `json:"total"`
	OK         int `json:"ok"`
	Errors     int `json:"errors"`
	Violations int `json:"violations"`
}

// SweepPoint is one R-T8 availability measurement: the fraction of
// queries that completed correctly when every Nth connection is faulty.
type SweepPoint struct {
	FaultEvery   int     `json:"fault_every"` // 0 = no faults
	Queries      int     `json:"queries"`
	Correct      int     `json:"correct"`
	Availability float64 `json:"availability"`
}

// Stats are the nondeterministic extras: retry totals and wall time.
type Stats struct {
	Retries  uint64
	Sheds    uint64
	Elapsed  time.Duration
	Probe    probe
	Failures []string // violation details, mirrored from the run

	// SampleTrace is one formatted span tree captured by the trace-spans
	// scenario: a root "query" span with queue/exec/storage children and
	// exact resource totals. Durations make it wall-clock-dependent, so it
	// lives outside the deterministic report payload.
	SampleTrace string
}

type probe struct {
	C2S int64 // client-to-server bytes for the standard workload
	S2C int64 // server-to-client bytes
}

const verdictOK, verdictError = "ok", "error"

// chaosQueries is the fixed read-only workload every scenario replays.
var chaosQueries = []string{
	`SELECT (name, salary) FROM Emp WHERE salary > 3000`,
	`SELECT (name) FROM Emp WHERE salary > 1000 ORDER BY name LIMIT 10`,
	`SELECT HISTORY(Emp.salary) FROM Emp DURING [0, 1000)`,
	`SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff`,
}

// golden is one query's fault-free answer in comparable form.
type golden struct {
	text string
	cols []string
	rows []byte // wire-encoded row set: byte-identical comparison
	n    int
}

type env struct {
	seed   int64
	eng    *core.Engine
	addr   string
	golden []golden
	connsG *obs.Gauge
	shedC  *obs.Counter
	logf   func(format string, args ...any)

	// Overload scenarios need queries whose execution outlasts the Go
	// runtime's ~10ms async-preemption threshold — otherwise, on a
	// single-CPU host, session goroutines run their whole query without
	// yielding and the admission gate never observes concurrency. The
	// bigger engine is built lazily on first use and shared.
	overloadOnce sync.Once
	overloadEng  *core.Engine
	overloadErr  error
	heavy        golden

	retries atomic.Uint64
	sheds   atomic.Uint64

	sampleMu    sync.Mutex
	sampleTrace string // first complete span tree seen by trace-spans
}

// heavyQuery runs for tens of milliseconds against the overload engine.
const heavyQuery = `SELECT HISTORY(Emp.salary) FROM Emp DURING [0, 100000)`

func (e *env) overloadEngine() (*core.Engine, error) {
	e.overloadOnce.Do(func() {
		eng, err := core.Open(core.Options{})
		if err != nil {
			e.overloadErr = err
			return
		}
		sch, err := workload.PersonnelSchema()
		if err != nil {
			eng.Close()
			e.overloadErr = err
			return
		}
		for _, n := range sch.AtomTypeNames() {
			at, _ := sch.AtomType(n)
			if err := eng.DefineAtomType(*at); err != nil {
				eng.Close()
				e.overloadErr = err
				return
			}
		}
		for _, n := range sch.MoleculeTypeNames() {
			mt, _ := sch.MoleculeType(n)
			if err := eng.DefineMoleculeType(*mt); err != nil {
				eng.Close()
				e.overloadErr = err
				return
			}
		}
		app := workload.NewEngineApplier(eng, 256)
		ops := workload.Personnel(workload.PersonnelParams{
			Depts: 8, Emps: 3200, UpdatesPerEmp: 6, MovesPerEmp: 1, TimeStep: 10, Seed: e.seed,
		})
		if _, err := workload.Apply(ops, app); err != nil {
			eng.Close()
			e.overloadErr = err
			return
		}
		if err := app.Flush(); err != nil {
			eng.Close()
			e.overloadErr = err
			return
		}
		res, err := eng.Query(heavyQuery)
		if err != nil {
			eng.Close()
			e.overloadErr = err
			return
		}
		e.heavy = golden{
			text: heavyQuery,
			cols: res.Columns,
			rows: wire.EncodeResultRows(res.Rows),
			n:    len(res.Rows),
		}
		e.overloadEng = eng
	})
	return e.overloadEng, e.overloadErr
}

// outcome is one scenario's result.
type outcome struct {
	verdict    string
	violations []string
}

func (o *outcome) bad(format string, args ...any) {
	o.violations = append(o.violations, fmt.Sprintf(format, args...))
}

// scenario is one scripted failure mode.
type scenario struct {
	name  string
	short bool // member of the -short subset
	run   func(e *env) outcome
}

// Run executes the chaos matrix.
func Run(cfg Config) (*Report, error) {
	if cfg.Watchdog <= 0 {
		cfg.Watchdog = 30 * time.Second
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	start := time.Now()

	eng, err := buildEngine(cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("chaos: building engine: %w", err)
	}
	defer eng.Close()

	e := &env{
		seed:   cfg.Seed,
		eng:    eng,
		connsG: eng.Metrics().Gauge("server.conns"),
		shedC:  eng.Metrics().Counter("server.shed"),
		logf:   logf,
	}
	defer func() {
		if oe := e.overloadEng; oe != nil {
			oe.Close()
		}
	}()
	for _, q := range chaosQueries {
		res, err := eng.Query(q)
		if err != nil {
			return nil, fmt.Errorf("chaos: golden %q: %w", q, err)
		}
		e.golden = append(e.golden, golden{
			text: q,
			cols: res.Columns,
			rows: wire.EncodeResultRows(res.Rows),
			n:    len(res.Rows),
		})
	}

	srv, err := server.New(server.Config{Engine: eng, Banner: "tcochaos"})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	e.addr = ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-served
	}()

	// Probe: measure the fault-free per-direction byte streams so fault
	// offsets spread across the whole exchange.
	c2s, s2c, out := probeRun(e)
	if len(out.violations) > 0 {
		return nil, fmt.Errorf("chaos: probe violated invariants: %s", out.violations[0])
	}
	logf("probe: %d bytes client-to-server, %d server-to-client", c2s, s2c)

	scenarios := buildScenarios(e, c2s, s2c)
	if cfg.Short {
		kept := scenarios[:0]
		for _, sc := range scenarios {
			if sc.short {
				kept = append(kept, sc)
			}
		}
		scenarios = kept
	}
	if cfg.MaxScenarios > 0 && len(scenarios) > cfg.MaxScenarios {
		scenarios = scenarios[:cfg.MaxScenarios]
	}

	rep := &Report{Seed: cfg.Seed, Short: cfg.Short}
	rep.Stats.Probe = probe{C2S: c2s, S2C: s2c}
	for _, sc := range scenarios {
		out := runGuarded(sc, e, cfg.Watchdog)
		rep.Scenarios = append(rep.Scenarios, ScenarioResult{Name: sc.name, Verdict: out.verdict})
		rep.Summary.Total++
		switch out.verdict {
		case verdictOK:
			rep.Summary.OK++
		default:
			rep.Summary.Errors++
		}
		for _, v := range out.violations {
			rep.Stats.Failures = append(rep.Stats.Failures, sc.name+": "+v)
		}
		rep.Summary.Violations += len(out.violations)
		if len(out.violations) > 0 {
			logf("%s: %s, %d violation(s): %s", sc.name, out.verdict, len(out.violations), out.violations[0])
		} else {
			logf("%s: %s", sc.name, out.verdict)
		}
	}

	rep.Sweep = availabilitySweep(e)
	rep.Stats.Retries = e.retries.Load()
	rep.Stats.Sheds = e.sheds.Load()
	rep.Stats.SampleTrace = e.sampleTrace
	rep.Stats.Elapsed = time.Since(start)
	return rep, nil
}

// runGuarded runs one scenario under the watchdog with panic recovery.
func runGuarded(sc scenario, e *env, watchdog time.Duration) outcome {
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				var o outcome
				o.verdict = verdictError
				o.bad("panic: %v", r)
				done <- o
			}
		}()
		done <- sc.run(e)
	}()
	select {
	case o := <-done:
		return o
	case <-time.After(watchdog):
		var o outcome
		o.verdict = verdictError
		o.bad("hang: scenario exceeded the %v watchdog", watchdog)
		return o
	}
}

// buildEngine constructs the seeded personnel engine.
func buildEngine(seed int64) (*core.Engine, error) {
	eng, err := core.Open(core.Options{})
	if err != nil {
		return nil, err
	}
	sch, err := workload.PersonnelSchema()
	if err != nil {
		eng.Close()
		return nil, err
	}
	for _, n := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(n)
		if err := eng.DefineAtomType(*at); err != nil {
			eng.Close()
			return nil, err
		}
	}
	for _, n := range sch.MoleculeTypeNames() {
		mt, _ := sch.MoleculeType(n)
		if err := eng.DefineMoleculeType(*mt); err != nil {
			eng.Close()
			return nil, err
		}
	}
	app := workload.NewEngineApplier(eng, 256)
	ops := workload.Personnel(workload.PersonnelParams{
		Depts: 3, Emps: 30, UpdatesPerEmp: 3, MovesPerEmp: 1, TimeStep: 10, Seed: seed,
	})
	if _, err := workload.Apply(ops, app); err != nil {
		eng.Close()
		return nil, err
	}
	if err := app.Flush(); err != nil {
		eng.Close()
		return nil, err
	}
	return eng, nil
}

// clientTweaks parameterize the scenario client.
type clientTweaks struct {
	queryRetries    int
	dialRetries     int
	readTimeout     time.Duration
	breakerFailures int           // 0 = disabled for scenario determinism
	breakerCooldown time.Duration
	preSleep        map[int]time.Duration // query index -> sleep first
}

func (e *env) newClient(addr string, tw clientTweaks, seedOffset int64) (*client.Client, *obs.Registry, error) {
	if tw.queryRetries == 0 {
		tw.queryRetries = 5
	}
	if tw.dialRetries == 0 {
		tw.dialRetries = 3
	}
	if tw.breakerFailures == 0 {
		tw.breakerFailures = -1
	}
	if tw.readTimeout == 0 {
		// A corrupted length prefix can stall both ends of a frame
		// exchange; a finite read deadline turns the stall into a typed
		// timeout so the connection is discarded and retried.
		tw.readTimeout = 2 * time.Second
	}
	reg := obs.New()
	cl, err := client.New(client.Config{
		Addr:            addr,
		PoolSize:        1, // sequential per-connection determinism
		DialRetries:     tw.dialRetries,
		QueryRetries:    tw.queryRetries,
		RetryBackoff:    time.Millisecond,
		MaxBackoff:      20 * time.Millisecond,
		RetryBudget:     -1,
		BreakerFailures: tw.breakerFailures,
		BreakerCooldown: tw.breakerCooldown,
		ReadTimeout:     tw.readTimeout,
		JitterSeed:      e.seed + seedOffset,
		Metrics:         reg,
	})
	return cl, reg, err
}

// checkResult compares a remote result against the golden answer.
func checkResult(g golden, res *client.Result) error {
	if len(res.Columns) != len(g.cols) {
		return fmt.Errorf("columns %v, want %v", res.Columns, g.cols)
	}
	for i := range g.cols {
		if res.Columns[i] != g.cols[i] {
			return fmt.Errorf("column %d = %q, want %q", i, res.Columns[i], g.cols[i])
		}
	}
	if len(res.Rows) != g.n {
		return fmt.Errorf("%d rows, want %d", len(res.Rows), g.n)
	}
	if !bytes.Equal(wire.EncodeResultRows(res.Rows), g.rows) {
		return fmt.Errorf("rows differ from the golden result byte-for-byte")
	}
	return nil
}

// runWorkload replays the standard queries through a proxy scripted with
// scriptFor and applies the chaos contract: correct result or typed
// error, never a wrong answer; no leaked connection afterwards.
func (e *env) runWorkload(scriptFor func(i int) netfault.Script, tw clientTweaks) outcome {
	var out outcome
	out.verdict = verdictOK

	proxy, err := netfault.NewProxy(e.addr, e.seed, scriptFor)
	if err != nil {
		out.verdict = verdictError
		out.bad("proxy: %v", err)
		return out
	}
	cl, reg, err := e.newClient(proxy.Addr(), tw, 1)
	if err != nil {
		proxy.Close()
		out.verdict = verdictError
		out.bad("client: %v", err)
		return out
	}

	for qi, g := range e.golden {
		if d := tw.preSleep[qi]; d > 0 {
			time.Sleep(d)
		}
		res, err := cl.Query(g.text)
		if err != nil {
			// A typed error is an allowed outcome; record and continue on
			// a fresh footing (the client discards broken connections).
			out.verdict = verdictError
			continue
		}
		if cerr := checkResult(g, res); cerr != nil {
			out.bad("query %d returned a WRONG ANSWER under faults: %v", qi, cerr)
		}
	}
	e.retries.Add(reg.Counters()["client.retry"])
	cl.Close()

	// Leak checks: the proxy's live connections and the server's session
	// gauge must both drain once the client is gone.
	deadline := time.Now().Add(5 * time.Second)
	for proxy.Conns() != 0 || e.connsG.Value() != 0 {
		if time.Now().After(deadline) {
			out.bad("leak: %d proxied conns, server gauge %d after client close", proxy.Conns(), e.connsG.Value())
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	proxy.Close()
	return out
}

// probeRun measures the fault-free per-direction byte streams.
func probeRun(e *env) (c2s, s2c int64, out outcome) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		out.bad("probe listen: %v", err)
		return 0, 0, out
	}
	var up, down atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			b, err := net.Dial("tcp", e.addr)
			if err != nil {
				c.Close()
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				var inner sync.WaitGroup
				inner.Add(2)
				go func() { defer inner.Done(); n, _ := io.Copy(b, c); up.Add(n); b.Close(); c.Close() }()
				go func() { defer inner.Done(); n, _ := io.Copy(c, b); down.Add(n); b.Close(); c.Close() }()
				inner.Wait()
			}()
		}
	}()

	cl, _, err := e.newClient(ln.Addr().String(), clientTweaks{queryRetries: -1, dialRetries: -1}, 0)
	if err != nil {
		out.bad("probe client: %v", err)
		ln.Close()
		wg.Wait()
		return 0, 0, out
	}
	out.verdict = verdictOK
	for qi, g := range e.golden {
		res, err := cl.Query(g.text)
		if err != nil {
			out.bad("probe query %d failed fault-free: %v", qi, err)
			continue
		}
		if cerr := checkResult(g, res); cerr != nil {
			out.bad("probe query %d mismatched golden fault-free: %v", qi, cerr)
		}
	}
	cl.Close()
	ln.Close()
	wg.Wait()
	return up.Load(), down.Load(), out
}

// spread returns n 1-based offsets spread evenly across [1, total].
func spread(n int, total int64) []int64 {
	if total < 1 {
		total = 1
	}
	offs := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		off := 1 + int64(i)*(total-1)/int64(max(1, n-1))
		offs = append(offs, off)
	}
	return offs
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// buildScenarios assembles the full matrix. Each entry is deterministic
// under (seed, scenario); short entries form the CI subset.
func buildScenarios(e *env, c2s, s2c int64) []scenario {
	var scs []scenario
	add := func(name string, short bool, run func(e *env) outcome) {
		scs = append(scs, scenario{name: name, short: short, run: run})
	}

	// Family A: one byte-offset fault on the FIRST connection only; a
	// retrying client must recover to the exact golden results.
	// Family B: the fault on EVERY connection with retries disabled; the
	// outcome is a typed error (or ok when the offset lies beyond the
	// bytes a single exchange moves).
	type dir struct {
		name string
		len  int64
		pipe func(ps netfault.PipeScript) netfault.Script
	}
	dirs := []dir{
		{"c2s", c2s, func(ps netfault.PipeScript) netfault.Script { return netfault.Script{Read: ps} }},
		{"s2c", s2c, func(ps netfault.PipeScript) netfault.Script { return netfault.Script{Write: ps} }},
	}
	type flt struct {
		name string
		ps   func(off int64) netfault.PipeScript
	}
	faults := []flt{
		{"corrupt", func(off int64) netfault.PipeScript { return netfault.PipeScript{CorruptAt: off} }},
		{"reset", func(off int64) netfault.PipeScript { return netfault.PipeScript{ResetAt: off} }},
		{"freeze", func(off int64) netfault.PipeScript {
			return netfault.PipeScript{FreezeAt: off, FreezeFor: 50 * time.Millisecond}
		}},
	}
	for _, d := range dirs {
		for _, f := range faults {
			for oi, off := range spread(11, d.len) {
				d, f, off := d, f, off
				add(fmt.Sprintf("%s-%s@%d-first", d.name, f.name, off), oi%2 == 0, func(e *env) outcome {
					return e.runWorkload(func(i int) netfault.Script {
						if i == 0 {
							return d.pipe(f.ps(off))
						}
						return netfault.Script{}
					}, clientTweaks{})
				})
				add(fmt.Sprintf("%s-%s@%d-all", d.name, f.name, off), oi%8 == 0, func(e *env) outcome {
					return e.runWorkload(func(i int) netfault.Script {
						return d.pipe(f.ps(off))
					}, clientTweaks{queryRetries: -1, dialRetries: -1})
				})
			}
		}
	}

	// Timing faults: latency, jitter, bandwidth caps, forced chunking —
	// results must stay golden, only slower.
	timing := []struct {
		name string
		sc   netfault.Script
	}{
		{"latency", netfault.Script{
			Read:  netfault.PipeScript{Latency: 2 * time.Millisecond},
			Write: netfault.PipeScript{Latency: 2 * time.Millisecond},
		}},
		{"jitter", netfault.Script{
			Read:  netfault.PipeScript{Latency: time.Millisecond, Jitter: 3 * time.Millisecond},
			Write: netfault.PipeScript{Latency: time.Millisecond, Jitter: 3 * time.Millisecond},
		}},
		{"bandwidth", netfault.Script{
			Write: netfault.PipeScript{BandwidthBPS: 256 << 10, ChunkMax: 512},
		}},
		{"chunk1", netfault.Script{
			Read:  netfault.PipeScript{ChunkMax: 1},
			Write: netfault.PipeScript{ChunkMax: 7},
		}},
		{"chunk-jitter", netfault.Script{
			Read:  netfault.PipeScript{ChunkMax: 3, Jitter: time.Millisecond},
			Write: netfault.PipeScript{ChunkMax: 13, Jitter: time.Millisecond},
		}},
		{"slow-every-conn", netfault.Script{
			Read:  netfault.PipeScript{Latency: time.Millisecond, ChunkMax: 64},
			Write: netfault.PipeScript{Latency: time.Millisecond, ChunkMax: 64, BandwidthBPS: 512 << 10},
		}},
	}
	for _, tm := range timing {
		tm := tm
		add("timing-"+tm.name, true, func(e *env) outcome {
			out := e.runWorkload(func(int) netfault.Script { return tm.sc }, clientTweaks{})
			if out.verdict != verdictOK && len(out.violations) == 0 {
				out.bad("timing fault %s produced an error; timing must never break a query", tm.name)
			}
			return out
		})
	}

	// Accept-time refusals: the first k dials die at accept.
	for _, k := range []int{1, 2, 3} {
		k := k
		add(fmt.Sprintf("refuse-first-%d", k), true, func(e *env) outcome {
			out := e.runWorkload(func(i int) netfault.Script {
				return netfault.Script{RefuseAccept: i < k}
			}, clientTweaks{})
			if out.verdict != verdictOK && len(out.violations) == 0 {
				out.bad("client failed to dial past %d refused accepts", k)
			}
			return out
		})
	}
	add("refuse-all", true, func(e *env) outcome {
		out := e.runWorkload(func(int) netfault.Script {
			return netfault.Script{RefuseAccept: true}
		}, clientTweaks{queryRetries: -1, dialRetries: -1})
		if out.verdict != verdictError {
			out.bad("every accept refused yet the workload reported %q", out.verdict)
		}
		return out
	})
	add("refuse-alternate", true, func(e *env) outcome {
		return e.runWorkload(func(i int) netfault.Script {
			return netfault.Script{RefuseAccept: i%2 == 0}
		}, clientTweaks{})
	})

	// Freeze past the client's read deadline: a stalled stream must
	// surface as a typed timeout, not a hang.
	for _, d := range dirs {
		d := d
		add("freeze-timeout-"+d.name, true, func(e *env) outcome {
			out := e.runWorkload(func(int) netfault.Script {
				return d.pipe(netfault.PipeScript{FreezeAt: d.len / 3, FreezeFor: 600 * time.Millisecond})
			}, clientTweaks{queryRetries: -1, dialRetries: -1, readTimeout: 100 * time.Millisecond})
			if out.verdict != verdictError {
				out.bad("600ms freeze under a 100ms read deadline reported %q", out.verdict)
			}
			return out
		})
	}

	// Mixed faults: corruption or resets under degraded timing.
	combos := []struct {
		name string
		sc   netfault.Script
	}{
		{"corrupt-latency", netfault.Script{
			Write: netfault.PipeScript{CorruptAt: s2c / 2, Latency: time.Millisecond, ChunkMax: 128},
		}},
		{"reset-chunked", netfault.Script{
			Write: netfault.PipeScript{ResetAt: s2c / 2, ChunkMax: 9},
		}},
		{"corrupt-both-dirs", netfault.Script{
			Read:  netfault.PipeScript{CorruptAt: c2s / 2},
			Write: netfault.PipeScript{CorruptAt: s2c / 3},
		}},
		{"reset-early-corrupt-late", netfault.Script{
			Read:  netfault.PipeScript{ResetAt: c2s / 4},
			Write: netfault.PipeScript{CorruptAt: s2c - 1},
		}},
	}
	for _, cb := range combos {
		cb := cb
		add("combo-"+cb.name+"-first", true, func(e *env) outcome {
			return e.runWorkload(func(i int) netfault.Script {
				if i == 0 {
					return cb.sc
				}
				return netfault.Script{}
			}, clientTweaks{})
		})
		add("combo-"+cb.name+"-all", false, func(e *env) outcome {
			return e.runWorkload(func(int) netfault.Script { return cb.sc },
				clientTweaks{queryRetries: -1, dialRetries: -1})
		})
	}

	// Tracing: every non-shed query must leave a complete span tree in
	// the server tracer — root "query" with queue, exec, and at least one
	// storage-accounting child — whose totals match what came back on the
	// wire. Runs fault-free and under degraded timing: faults slow
	// queries, they must never produce half-recorded traces.
	add("trace-spans", true, func(e *env) outcome {
		return e.traceScenario(netfault.Script{})
	})
	add("trace-spans-chunked", false, func(e *env) outcome {
		return e.traceScenario(netfault.Script{
			Read:  netfault.PipeScript{ChunkMax: 5},
			Write: netfault.PipeScript{ChunkMax: 11},
		})
	})

	// Breaker: consecutive dial failures must open the circuit (fail
	// fast), and a healthy server after the cooldown must close it again.
	add("breaker-trips-open", true, func(e *env) outcome {
		return e.breakerTripScenario()
	})
	add("breaker-recovers", false, func(e *env) outcome {
		return e.breakerRecoverScenario()
	})

	// Overload: a saturated admission gate must shed with CodeBusy and
	// retry hints, and retrying clients must still finish correctly.
	for _, workers := range []int{4, 8, 16} {
		workers := workers
		add(fmt.Sprintf("overload-%d-workers", workers), workers == 8, func(e *env) outcome {
			return e.overloadScenario(workers)
		})
	}

	// Replication faults: WAL shipping under partition, crash, restart,
	// and degraded links — convergence and the TT-prefix property.
	scs = append(scs, replScenarios(e)...)

	// Leader failover: promotion, epoch fencing, divergent-suffix discard,
	// double-promotion races, and client re-routing.
	scs = append(scs, failoverScenarios(e)...)

	return scs
}

// traceScenario checks the observability contract end to end: each golden
// query's trace id travels client → wire → server, names a complete span
// tree in the server tracer, and the resource totals on the wire equal
// the totals the root span accounted. The first complete tree is kept as
// the run's sample trace.
func (e *env) traceScenario(sc netfault.Script) outcome {
	var out outcome
	out.verdict = verdictOK

	proxy, err := netfault.NewProxy(e.addr, e.seed, func(int) netfault.Script { return sc })
	if err != nil {
		out.verdict = verdictError
		out.bad("proxy: %v", err)
		return out
	}
	defer proxy.Close()
	cl, _, err := e.newClient(proxy.Addr(), clientTweaks{}, 4)
	if err != nil {
		out.verdict = verdictError
		out.bad("client: %v", err)
		return out
	}
	defer cl.Close()

	for qi, g := range e.golden {
		res, err := cl.Query(g.text)
		if err != nil {
			out.verdict = verdictError
			continue
		}
		if cerr := checkResult(g, res); cerr != nil {
			out.bad("query %d wrong answer: %v", qi, cerr)
			continue
		}
		if res.Trace == 0 {
			out.bad("query %d completed without a trace id", qi)
			continue
		}
		evs := e.eng.Tracer().Trace(res.Trace)
		spans := make(map[string]obs.Event, len(evs))
		for _, ev := range evs {
			spans[ev.Name] = ev
		}
		root, ok := spans["query"]
		if !ok || root.Parent != 0 {
			out.bad("query %d trace %d: no root query span", qi, res.Trace)
			continue
		}
		if q, ok := spans["queue"]; !ok || q.Parent != root.Span {
			out.bad("query %d trace %d: queue span missing or misparented", qi, res.Trace)
		}
		exec, ok := spans["exec"]
		if !ok || exec.Parent != root.Span {
			out.bad("query %d trace %d: exec span missing or misparented", qi, res.Trace)
			continue
		}
		if st, ok := spans["storage"]; !ok || st.Parent != exec.Span {
			out.bad("query %d trace %d: no storage child under exec", qi, res.Trace)
		}
		if root.Res != res.Res {
			out.bad("query %d trace %d: root accounted %s but the wire reported %s",
				qi, res.Trace, root.Res, res.Res)
		}
		if res.Res.IsZero() {
			out.bad("query %d trace %d: resource totals all zero", qi, res.Trace)
		}
		e.sampleMu.Lock()
		if e.sampleTrace == "" {
			e.sampleTrace = fmt.Sprintf("query: %s\n%s", g.text, obs.FormatTrace(evs))
		}
		e.sampleMu.Unlock()
	}
	return out
}

func (e *env) breakerTripScenario() outcome {
	var out outcome
	out.verdict = verdictError // this scenario's deterministic endpoint
	proxy, err := netfault.NewProxy(e.addr, e.seed, func(int) netfault.Script {
		return netfault.Script{RefuseAccept: true}
	})
	if err != nil {
		out.bad("proxy: %v", err)
		return out
	}
	defer proxy.Close()
	cl, _, err := e.newClient(proxy.Addr(), clientTweaks{
		queryRetries: -1, dialRetries: -1,
		breakerFailures: 2, breakerCooldown: time.Hour,
	}, 2)
	if err != nil {
		out.bad("client: %v", err)
		return out
	}
	defer cl.Close()
	for i := 0; i < 2; i++ {
		if err := cl.Ping(); err == nil || errors.Is(err, client.ErrBreakerOpen) {
			out.bad("refused dial %d: got %v", i, err)
		}
	}
	if err := cl.Ping(); !errors.Is(err, client.ErrBreakerOpen) {
		out.bad("after %d failures the breaker must fail fast, got %v", 2, err)
	}
	if got := proxy.Accepted(); got != 2 {
		out.bad("breaker open yet the client dialed: %d accepts, want 2", got)
	}
	return out
}

func (e *env) breakerRecoverScenario() outcome {
	var out outcome
	out.verdict = verdictError // the trip phase errors; recovery is checked explicitly
	proxy, err := netfault.NewProxy(e.addr, e.seed, func(i int) netfault.Script {
		return netfault.Script{RefuseAccept: i < 2}
	})
	if err != nil {
		out.bad("proxy: %v", err)
		return out
	}
	defer proxy.Close()
	cl, _, err := e.newClient(proxy.Addr(), clientTweaks{
		queryRetries: -1, dialRetries: -1,
		breakerFailures: 2, breakerCooldown: 30 * time.Millisecond,
	}, 3)
	if err != nil {
		out.bad("client: %v", err)
		return out
	}
	defer cl.Close()
	cl.Ping() // failure 1
	cl.Ping() // failure 2: open
	if err := cl.Ping(); !errors.Is(err, client.ErrBreakerOpen) {
		out.bad("expected an open breaker, got %v", err)
	}
	time.Sleep(50 * time.Millisecond) // cooldown elapses
	g := e.golden[0]
	res, err := cl.Query(g.text)
	if err != nil {
		out.bad("half-open probe against a healthy server failed: %v", err)
		return out
	}
	if cerr := checkResult(g, res); cerr != nil {
		out.bad("post-recovery result: %v", cerr)
	}
	return out
}

// overloadScenario saturates a tiny admission gate with concurrent
// retrying clients: every query must still complete correctly, and the
// server must have shed at least once.
func (e *env) overloadScenario(workers int) outcome {
	var out outcome
	out.verdict = verdictOK

	oeng, err := e.overloadEngine()
	if err != nil {
		out.verdict = verdictError
		out.bad("overload engine: %v", err)
		return out
	}
	srv, err := server.New(server.Config{
		Engine:         oeng,
		MaxActive:      1,
		MaxQueueDepth:  1,
		MaxQueueWait:   time.Nanosecond, // any queueing collision sheds
		RetryAfterHint: 5 * time.Millisecond,
	})
	if err != nil {
		out.verdict = verdictError
		out.bad("server: %v", err)
		return out
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		out.verdict = verdictError
		out.bad("listen: %v", err)
		return out
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-served
	}()

	shedC := oeng.Metrics().Counter("server.shed")
	shedBefore := shedC.Value()
	const queriesPerWorker = 3
	var wg sync.WaitGroup
	var retries atomic.Uint64
	errs := make(chan string, workers*queriesPerWorker)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, reg, err := e.newClient(ln.Addr().String(), clientTweaks{queryRetries: 500}, int64(10+w))
			if err != nil {
				errs <- fmt.Sprintf("worker %d client: %v", w, err)
				return
			}
			defer cl.Close()
			<-start
			for q := 0; q < queriesPerWorker; q++ {
				res, err := cl.Query(e.heavy.text)
				if err != nil {
					errs <- fmt.Sprintf("worker %d query %d failed despite retries: %v", w, q, err)
					continue
				}
				if cerr := checkResult(e.heavy, res); cerr != nil {
					errs <- fmt.Sprintf("worker %d query %d wrong under overload: %v", w, q, cerr)
				}
			}
			retries.Add(reg.Counters()["client.retry"])
		}(w)
	}
	close(start)
	wg.Wait()
	close(errs)
	for msg := range errs {
		out.bad("%s", msg)
	}
	sheds := shedC.Value() - shedBefore
	if sheds == 0 {
		out.bad("overload with %d workers through a 1-wide gate never shed", workers)
	}
	e.sheds.Add(sheds)
	e.retries.Add(retries.Load())
	return out
}

// splitmix64 is a tiny seeded mixer used to scatter faulty connection
// indices pseudo-randomly (so consecutive connections can both be
// faulty) while staying a pure function of the seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// availabilitySweep is experiment R-T8: availability (fraction of
// queries that complete correctly) as the connection fault rate rises.
// Each query runs on a fresh client with two retries, so a query fails
// only when three consecutive connections are all faulty — the measured
// curve is the resilience the retry layer buys. Everything is
// sequential and seed-driven, so each point is deterministic.
func availabilitySweep(e *env) []SweepPoint {
	points := []int{0, 16, 8, 4, 2} // 1-in-N connections faulty; 0 = none
	var sweep []SweepPoint
	for pi, every := range points {
		const rounds = 6
		correct, total := 0, 0
		var next atomic.Int64 // global accept index across all clients
		proxy, err := netfault.NewProxy(e.addr, e.seed+int64(pi), func(i int) netfault.Script {
			if every > 0 && splitmix64(uint64(e.seed)+uint64(i)*2654435761)%uint64(every) == 0 {
				// Alternate silent corruption and mid-frame resets across
				// the faulty population.
				if splitmix64(uint64(i))%2 == 0 {
					return netfault.Script{Write: netfault.PipeScript{CorruptAt: 100}}
				}
				return netfault.Script{Read: netfault.PipeScript{ResetAt: 48}}
			}
			return netfault.Script{}
		})
		if err != nil {
			continue
		}
		for r := 0; r < rounds; r++ {
			for _, g := range e.golden {
				total++
				cl, _, err := e.newClient(proxy.Addr(), clientTweaks{queryRetries: 2}, int64(100+pi)+next.Add(1))
				if err != nil {
					continue
				}
				res, err := cl.Query(g.text)
				if err == nil && checkResult(g, res) == nil {
					correct++
				}
				cl.Close()
			}
		}
		proxy.Close()
		sweep = append(sweep, SweepPoint{
			FaultEvery:   every,
			Queries:      total,
			Correct:      correct,
			Availability: float64(correct) / float64(total),
		})
	}
	return sweep
}
