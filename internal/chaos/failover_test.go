package chaos

import "testing"

// TestFailoverScenarios runs the leader-failover fault family directly,
// so a failover regression names its exact scenario. The full chaos
// matrix (cmd/tcochaos) includes the same family.
func TestFailoverScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("failover scenarios spin real leaders/followers/clients; skipped with -short")
	}
	e := &env{seed: 7, logf: t.Logf}
	scs := failoverScenarios(e)
	if len(scs) < 40 {
		t.Fatalf("failover family has %d scenarios, want >= 40", len(scs))
	}
	for _, sc := range scs {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			out := sc.run(e)
			if len(out.violations) > 0 {
				t.Fatalf("verdict %q, violations: %v", out.verdict, out.violations)
			}
			if out.verdict != verdictOK {
				t.Fatalf("verdict = %q, want ok", out.verdict)
			}
		})
	}
}
