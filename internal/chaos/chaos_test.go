package chaos

import (
	"encoding/json"
	"testing"
	"time"
)

// TestRunSubsetCleanAndDeterministic runs a slice of the chaos matrix
// twice with the same seed: no violations may surface, and the
// deterministic report must be byte-identical across runs. The full
// matrix runs in CI via cmd/tcochaos.
func TestRunSubsetCleanAndDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos subset is several seconds; skipped with -short")
	}
	run := func() *Report {
		rep, err := Run(Config{Seed: 11, Short: true, MaxScenarios: 24, Watchdog: 20 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a := run()
	if a.Summary.Violations != 0 {
		t.Fatalf("violations: %v", a.Stats.Failures)
	}
	if a.Summary.Total != 24 {
		t.Fatalf("ran %d scenarios, want 24", a.Summary.Total)
	}
	if len(a.Sweep) == 0 {
		t.Fatal("availability sweep missing")
	}
	if p := a.Sweep[0]; p.FaultEvery != 0 || p.Availability != 1.0 {
		t.Fatalf("fault-free sweep point must be fully available, got %+v", p)
	}

	b := run()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("same-seed reports differ:\n%s\n%s", aj, bj)
	}
}
