package chaos

// Replication chaos: the leader/follower WAL-shipping pipeline driven
// through the same netfault proxy as the query scenarios. The contract
// mirrors the paper's transaction-time semantics — a follower is always
// a consistent transaction-time PREFIX of the leader: convergence is
// checked with logical store digests, and the prefix property is checked
// by replaying the leader's log group-by-group and comparing every
// intermediate follower state against the leader "as of" the follower's
// clock.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/netfault"
	"tcodm/internal/repl"
	"tcodm/internal/schema"
	"tcodm/internal/server"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
	"tcodm/internal/wal"
	"tcodm/internal/wire"
)

// replQuery is the probe every replication scenario compares across the
// leader/follower pair. The explicit AT pins valid time so both sides
// slice identically regardless of their clocks.
const replQuery = `SELECT (Emp.name, Emp.salary) FROM Emp WHERE Emp.salary >= 0 AT 0`

// replLab is one leader: a file-backed engine behind a real wire server
// with replication enabled, plus a commit driver.
type replLab struct {
	dir    string
	leader *core.Engine
	srv    *server.Server
	ln     net.Listener
	served chan error
	seq    int
}

func openReplLeader(path string) (*core.Engine, error) {
	eng, err := core.Open(core.Options{Path: path, TimeIndex: true})
	if err != nil {
		return nil, err
	}
	// A reopened leader already has the type; only define it once.
	if err := eng.DefineAtomType(schema.AtomType{
		Name: "Emp",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "salary", Kind: value.KindInt, Temporal: true},
		},
	}); err != nil && !isExists(err) {
		eng.Close()
		return nil, err
	}
	return eng, nil
}

func isExists(err error) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte("already defined"))
}

func newReplLab() (*replLab, error) {
	dir, err := os.MkdirTemp("", "tcochaos-repl-")
	if err != nil {
		return nil, err
	}
	l := &replLab{dir: dir}
	if l.leader, err = openReplLeader(filepath.Join(dir, "leader")); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	if err := l.startServer(); err != nil {
		l.leader.Close()
		os.RemoveAll(dir)
		return nil, err
	}
	return l, nil
}

func (l *replLab) startServer() error {
	srv, err := server.New(server.Config{
		Engine: l.leader,
		Banner: "tcochaos-repl",
		Repl:   &repl.Source{Engine: l.leader, Heartbeat: 20 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	l.srv, l.ln, l.served = srv, ln, served
	return nil
}

// stopServer drains the wire server. Idempotent: failover scenarios stop
// the server mid-body ("the leader dies") and lab teardown must not
// double-drain.
func (l *replLab) stopServer() {
	if l.srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	l.srv.Shutdown(ctx)
	<-l.served
	l.srv = nil
}

func (l *replLab) addr() string { return l.ln.Addr().String() }

func (l *replLab) close() {
	l.stopServer()
	l.leader.Close()
	os.RemoveAll(l.dir)
}

// commit appends n single-insert transactions to the leader.
func (l *replLab) commit(n int) error {
	for i := 0; i < n; i++ {
		l.seq++
		tx, err := l.leader.Begin()
		if err != nil {
			return err
		}
		if _, err := tx.Insert("Emp", map[string]value.V{
			"name":   value.String_(fmt.Sprintf("e%04d", l.seq)),
			"salary": value.Int(int64(1000 + l.seq)),
		}, 0); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// follower starts a replica of the lab's leader, dialing addr (usually a
// netfault proxy in front of the leader server).
func (l *replLab) follower(addr func() string, path string) (*repl.Follower, context.CancelFunc, error) {
	f, err := repl.StartFollower(repl.FollowerConfig{
		Leader: "lab",
		Path:   path,
		Dial: func(ctx context.Context, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr())
		},
		ReadTimeout: time.Second,
		Backoff:     20 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	go f.Run(ctx)
	return f, cancel, nil
}

// waitReplConverged polls until the follower's watermark reaches the
// leader's appended LSN and the logical store digests agree.
func (l *replLab) waitReplConverged(f *repl.Follower, out *outcome) bool {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if f.Watermark() == l.leader.Log().AppendedLSN() {
			ld, err := l.leader.DigestStore()
			if err != nil {
				out.bad("leader digest: %v", err)
				return false
			}
			fd, err := f.Engine().DigestStore()
			if err == nil && bytes.Equal(ld, fd) {
				return true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	out.bad("follower stuck at watermark %d, leader at %d", f.Watermark(), l.leader.Log().AppendedLSN())
	return false
}

// replScenario wraps a scenario body with lab setup/teardown.
func replScenario(body func(l *replLab, out *outcome)) func(e *env) outcome {
	return func(e *env) outcome {
		var out outcome
		out.verdict = verdictOK
		l, err := newReplLab()
		if err != nil {
			out.verdict = verdictError
			out.bad("repl lab: %v", err)
			return out
		}
		defer l.close()
		body(l, &out)
		if len(out.violations) > 0 {
			out.verdict = verdictError
		}
		return out
	}
}

// replScenarios is the replication fault family.
func replScenarios(e *env) []scenario {
	var scs []scenario
	add := func(name string, short bool, run func(e *env) outcome) {
		scs = append(scs, scenario{name: name, short: short, run: run})
	}

	// Clean link: stream, converge, and stay converged across later commits.
	add("repl-converge-direct", true, replScenario(func(l *replLab, out *outcome) {
		if err := l.commit(20); err != nil {
			out.bad("commit: %v", err)
			return
		}
		f, cancel, err := l.follower(l.addr, filepath.Join(l.dir, "f1"))
		if err != nil {
			out.bad("follower: %v", err)
			return
		}
		defer func() { cancel(); f.Close() }()
		if !l.waitReplConverged(f, out) {
			return
		}
		if s := f.Staleness(); s > 5*time.Second {
			out.bad("caught-up follower reports staleness %v", s)
		}
		if err := l.commit(10); err != nil {
			out.bad("commit: %v", err)
			return
		}
		l.waitReplConverged(f, out)
	}))

	// Degraded links: chunked and slow streams must still converge — the
	// frame layer owns reassembly, replication only sees whole frames.
	links := []struct {
		name  string
		short bool
		sc    netfault.Script
	}{
		{"chunked", true, netfault.Script{
			Read:  netfault.PipeScript{ChunkMax: 3},
			Write: netfault.PipeScript{ChunkMax: 7},
		}},
		{"slow", false, netfault.Script{
			Write: netfault.PipeScript{Latency: time.Millisecond, Jitter: 2 * time.Millisecond, ChunkMax: 256},
		}},
	}
	for _, lk := range links {
		lk := lk
		add("repl-link-"+lk.name, lk.short, replScenario(func(l *replLab, out *outcome) {
			proxy, err := netfault.NewProxy(l.addr(), 1, func(int) netfault.Script { return lk.sc })
			if err != nil {
				out.bad("proxy: %v", err)
				return
			}
			defer proxy.Close()
			if err := l.commit(15); err != nil {
				out.bad("commit: %v", err)
				return
			}
			f, cancel, err := l.follower(proxy.Addr, filepath.Join(l.dir, "f1"))
			if err != nil {
				out.bad("follower: %v", err)
				return
			}
			defer func() { cancel(); f.Close() }()
			if !l.waitReplConverged(f, out) {
				return
			}
			if err := l.commit(15); err != nil {
				out.bad("commit: %v", err)
				return
			}
			l.waitReplConverged(f, out)
		}))
	}

	// Partition: the first subscription is reset mid-stream; the follower
	// must redial and converge from its watermark — no restart, no resync
	// from scratch.
	add("repl-partition-heals", true, replScenario(func(l *replLab, out *outcome) {
		proxy, err := netfault.NewProxy(l.addr(), 2, func(i int) netfault.Script {
			if i == 0 {
				return netfault.Script{Write: netfault.PipeScript{ResetAt: 2000}}
			}
			return netfault.Script{}
		})
		if err != nil {
			out.bad("proxy: %v", err)
			return
		}
		defer proxy.Close()
		if err := l.commit(30); err != nil {
			out.bad("commit: %v", err)
			return
		}
		f, cancel, err := l.follower(proxy.Addr, filepath.Join(l.dir, "f1"))
		if err != nil {
			out.bad("follower: %v", err)
			return
		}
		defer func() { cancel(); f.Close() }()
		if !l.waitReplConverged(f, out) {
			return
		}
		if proxy.Accepted() < 2 {
			out.bad("converged without reconnecting through the reset (%d accepts)", proxy.Accepted())
		}
	}))

	// Follower crash mid-replay: kill the follower while the stream is
	// live, restart on the same directory. The restarted watermark must
	// not regress (replicated state is durable), and it must converge.
	add("repl-follower-crash-mid-replay", true, replScenario(func(l *replLab, out *outcome) {
		if err := l.commit(40); err != nil {
			out.bad("commit: %v", err)
			return
		}
		fpath := filepath.Join(l.dir, "f1")
		f, cancel, err := l.follower(l.addr, fpath)
		if err != nil {
			out.bad("follower: %v", err)
			return
		}
		// Wait for replay to be underway (not necessarily done), then kill.
		deadline := time.Now().Add(10 * time.Second)
		for f.Watermark() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		wm := f.Watermark()
		if wm == 0 {
			out.bad("follower never started applying")
			cancel()
			f.Close()
			return
		}
		cancel()
		f.Close()

		if err := l.commit(10); err != nil {
			out.bad("commit: %v", err)
			return
		}
		f2, cancel2, err := l.follower(l.addr, fpath)
		if err != nil {
			out.bad("restarted follower: %v", err)
			return
		}
		defer func() { cancel2(); f2.Close() }()
		if got := f2.Engine().Watermark(); got < wm {
			out.bad("watermark regressed across restart: %d -> %d", wm, got)
		}
		l.waitReplConverged(f2, out)
	}))

	// Leader restart: the leader process goes away and comes back on a new
	// port; the follower redials (through the address indirection) and
	// converges on the post-restart history.
	add("repl-leader-restart", false, replScenario(func(l *replLab, out *outcome) {
		var addr atomic.Value
		addr.Store(l.addr())
		if err := l.commit(10); err != nil {
			out.bad("commit: %v", err)
			return
		}
		f, cancel, err := l.follower(func() string { return addr.Load().(string) }, filepath.Join(l.dir, "f1"))
		if err != nil {
			out.bad("follower: %v", err)
			return
		}
		defer func() { cancel(); f.Close() }()
		if !l.waitReplConverged(f, out) {
			return
		}

		l.stopServer()
		if err := l.leader.Close(); err != nil {
			out.bad("leader close: %v", err)
			return
		}
		l.leader, err = openReplLeader(filepath.Join(l.dir, "leader"))
		if err != nil {
			out.bad("leader reopen: %v", err)
			return
		}
		if err := l.startServer(); err != nil {
			out.bad("leader restart: %v", err)
			return
		}
		addr.Store(l.addr())
		if err := l.commit(10); err != nil {
			out.bad("commit after restart: %v", err)
			return
		}
		l.waitReplConverged(f, out)
	}))

	// Watermark consistency (the TT-prefix property): replay the leader's
	// log commit group by commit group into an engine-level follower. After
	// every group the follower must answer the probe exactly as the leader
	// does "as of" the follower's clock — a replica is never a smeared
	// state, always a clean transaction-time prefix. Pure in-process
	// replay: fully deterministic, no network.
	add("repl-watermark-consistency", true, func(e *env) outcome {
		var out outcome
		out.verdict = verdictOK
		dir, err := os.MkdirTemp("", "tcochaos-repl-wm-")
		if err != nil {
			out.verdict = verdictError
			out.bad("tempdir: %v", err)
			return out
		}
		defer os.RemoveAll(dir)
		leader, err := openReplLeader(filepath.Join(dir, "leader"))
		if err != nil {
			out.verdict = verdictError
			out.bad("leader: %v", err)
			return out
		}
		defer leader.Close()
		// A burst of commits, then group-wise replay.
		lab := &replLab{leader: leader}
		if err := lab.commit(25); err != nil {
			out.verdict = verdictError
			out.bad("commit: %v", err)
			return out
		}
		cur := leader.Log().Cursor(1)
		recs, err := cur.Read(1 << 20)
		if err != nil {
			out.verdict = verdictError
			out.bad("cursor: %v", err)
			return out
		}
		fw, err := core.Open(core.Options{Path: filepath.Join(dir, "follower"), Follower: true})
		if err != nil {
			out.verdict = verdictError
			out.bad("follower engine: %v", err)
			return out
		}
		defer fw.Close()

		group := recs[:0:0]
		for _, r := range recs {
			group = append(group, r)
			if r.Op != wal.OpCommit {
				continue
			}
			if _, err := fw.ApplyReplicated(group); err != nil {
				out.bad("apply group ending at LSN %d: %v", r.LSN, err)
				break
			}
			group = group[:0]
			t := fw.Now()
			if t == 0 {
				// Only schema groups applied so far: the follower clock has
				// not advanced, and TT 0 is the "latest" sentinel, not a
				// point — nothing to compare yet.
				continue
			}
			fres, err := fw.Query(replQuery)
			if err != nil {
				out.bad("follower query at watermark %d: %v", fw.Watermark(), err)
				break
			}
			tt := temporal.Instant(t)
			lres, err := leader.QueryWith(context.Background(), replQuery, core.QueryOptions{TT: &tt})
			if err != nil {
				out.bad("leader asof %v: %v", t, err)
				break
			}
			if !bytes.Equal(wire.EncodeResultRows(fres.Rows), wire.EncodeResultRows(lres.Rows)) {
				out.bad("PREFIX VIOLATION at watermark %d: follower state is not the leader asof %v (%d vs %d rows)",
					fw.Watermark(), t, len(fres.Rows), len(lres.Rows))
				break
			}
		}
		if len(out.violations) > 0 {
			out.verdict = verdictError
		}
		return out
	})

	return scs
}
