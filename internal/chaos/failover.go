package chaos

// Failover chaos: leader death, promotion, fencing, and rejoin driven
// through real engines, real wire servers, and the real client — every
// scenario a deterministic function of its fixed script. The contract:
//
//   - No write that was shipped to (acked by) the replication stream is
//     ever lost by a promotion, a crash, or a rejoin.
//   - A resurrected ex-leader never splits the brain: its divergent
//     unshipped suffix is fenced and discarded, and it converges onto the
//     promoted timeline byte-for-byte (logical store digest).
//   - Promotion is once-only per node, bumps the epoch exactly once, and
//     replicates through the WAL itself — downstream followers learn the
//     epoch from the log, never a side channel.
//   - Clients re-route leader-targeted traffic to the highest-epoch
//     writable node, deterministically (ties go to probe order), and
//     surface the epoch change on every Result.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/repl"
	"tcodm/internal/server"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
	"tcodm/internal/wire"
	"tcodm/pkg/client"
)

// commitEng appends n single-insert commits with a distinct name prefix
// to any writable engine (the promoted-timeline counterpart of
// replLab.commit). seq persists across calls so names never collide.
func commitEng(eng *core.Engine, prefix string, seq *int, n int) error {
	for i := 0; i < n; i++ {
		*seq++
		tx, err := eng.Begin()
		if err != nil {
			return err
		}
		if _, err := tx.Insert("Emp", map[string]value.V{
			"name":   value.String_(fmt.Sprintf("%s%04d", prefix, *seq)),
			"salary": value.Int(int64(5000 + *seq)),
		}, 0); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// countEmp returns the number of Emp rows visible at VT 0, latest TT.
func countEmp(eng *core.Engine) (int, error) {
	res, err := eng.Query(replQuery)
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}

// foServer is a wire server with replication enabled for an arbitrary
// engine — the serving half of a promoted node.
type foServer struct {
	srv    *server.Server
	ln     net.Listener
	served chan error
}

func serveRepl(eng *core.Engine) (*foServer, error) {
	srv, err := server.New(server.Config{
		Engine:    eng,
		Banner:    "tcochaos-failover",
		Repl:      &repl.Source{Engine: eng, Heartbeat: 20 * time.Millisecond},
		Staleness: func() time.Duration { return 0 },
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	return &foServer{srv: srv, ln: ln, served: served}, nil
}

func (s *foServer) addr() string { return s.ln.Addr().String() }

func (s *foServer) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.srv.Shutdown(ctx)
	<-s.served
}

// startFoFollower starts a follower of addr at path; force requests a
// snapshot rejoin (the operator demotion path).
func startFoFollower(addr func() string, path string, force bool) (*repl.Follower, context.CancelFunc, error) {
	f, err := repl.StartFollower(repl.FollowerConfig{
		Leader: "fo-lab",
		Path:   path,
		Dial: func(ctx context.Context, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr())
		},
		ReadTimeout:   time.Second,
		Backoff:       20 * time.Millisecond,
		ForceSnapshot: force,
	})
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	go f.Run(ctx)
	return f, cancel, nil
}

// waitEngConverged polls until f matches the target engine's frontier and
// logical digest.
func waitEngConverged(f *repl.Follower, target *core.Engine, out *outcome) bool {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if f.Watermark() == target.Log().AppendedLSN() {
			td, err := target.DigestStore()
			if err != nil {
				out.bad("target digest: %v", err)
				return false
			}
			fd, err := f.Engine().DigestStore()
			if err == nil && bytes.Equal(td, fd) {
				return true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	out.bad("follower stuck at watermark %d, target at %d", f.Watermark(), target.Log().AppendedLSN())
	return false
}

// promoteOrBad promotes f and runs the shared post-promotion assertions:
// epoch value, writability, zero staleness, once-only.
func promoteOrBad(f *repl.Follower, wantEpoch uint64, out *outcome) bool {
	epoch, err := f.Promote()
	if err != nil {
		out.bad("promote: %v", err)
		return false
	}
	if epoch != wantEpoch {
		out.bad("promotion epoch = %d, want %d", epoch, wantEpoch)
	}
	if f.Engine().IsReadOnly() || f.Engine().IsFollower() {
		out.bad("promoted engine still refuses writes")
	}
	if s := f.Staleness(); s != 0 {
		out.bad("promoted node staleness = %v, want 0", s)
	}
	if _, err := f.Promote(); err == nil {
		out.bad("DOUBLE PROMOTION: second Promote on the same node succeeded")
	}
	return true
}

// failoverScenarios is the leader-failover fault family.
func failoverScenarios(e *env) []scenario {
	var scs []scenario
	add := func(name string, short bool, run func(e *env) outcome) {
		scs = append(scs, scenario{name: name, short: short, run: run})
	}

	// --- caught-up promotion -------------------------------------------------
	// Converge fully, promote, and check the whole post-promotion contract:
	// exact row counts (zero acked-write loss), epoch 1, local writes land.
	for _, n := range []int{1, 3, 5, 8, 12, 20, 30, 45} {
		n := n
		add(fmt.Sprintf("failover-promote-caught-up-%d", n), n == 8, replScenario(func(l *replLab, out *outcome) {
			if err := l.commit(n); err != nil {
				out.bad("commit: %v", err)
				return
			}
			f, cancel, err := l.follower(l.addr, filepath.Join(l.dir, "f1"))
			if err != nil {
				out.bad("follower: %v", err)
				return
			}
			defer func() { cancel(); f.Close() }()
			if !l.waitReplConverged(f, out) {
				return
			}
			l.stopServer() // the leader "dies" (cleanly severs the stream)
			if !promoteOrBad(f, 1, out) {
				return
			}
			if got, err := countEmp(f.Engine()); err != nil || got != n {
				out.bad("ACKED WRITE LOST: promoted node has %d rows, want %d (%v)", got, n, err)
			}
			seq := 0
			if err := commitEng(f.Engine(), "p", &seq, 3); err != nil {
				out.bad("post-promotion commit: %v", err)
				return
			}
			if got, err := countEmp(f.Engine()); err != nil || got != n+3 {
				out.bad("post-promotion rows = %d, want %d (%v)", got, n+3, err)
			}
		}))
	}

	// --- leader killed mid-commit-group --------------------------------------
	// The stream is severed at a known watermark, the leader commits a
	// group that never ships, then dies by SIGKILL (no flush); the torn
	// variants also smash a partial record onto the WAL tail. Promotion
	// must preserve every shipped write; the resurrected leader must be
	// fenced, discard its suffix, and converge onto the new timeline.
	for _, n := range []int{3, 8, 15, 30} {
		for _, torn := range []bool{false, true} {
			n, torn := n, torn
			name := fmt.Sprintf("failover-kill-mid-group-%d", n)
			if torn {
				name += "-torn"
			}
			add(name, n == 8 && !torn, replScenario(func(l *replLab, out *outcome) {
				if err := l.commit(n); err != nil {
					out.bad("commit: %v", err)
					return
				}
				f, cancel, err := l.follower(l.addr, filepath.Join(l.dir, "f1"))
				if err != nil {
					out.bad("follower: %v", err)
					return
				}
				defer func() { cancel(); f.Close() }()
				if !l.waitReplConverged(f, out) {
					return
				}
				l.stopServer()
				// Two commits the stream never sees, then SIGKILL.
				if err := l.commit(2); err != nil {
					out.bad("unshipped commit: %v", err)
					return
				}
				leaderPath := filepath.Join(l.dir, "leader")
				if err := l.leader.Crash(); err != nil {
					out.bad("crash: %v", err)
					return
				}
				if torn {
					// A torn half-record at the WAL tail, as a real mid-write
					// SIGKILL leaves behind.
					wf, err := os.OpenFile(leaderPath+".wal", os.O_APPEND|os.O_WRONLY, 0o644)
					if err != nil {
						out.bad("torn tail: %v", err)
						return
					}
					wf.Write([]byte{0x7F, 0x01, 0x02, 0x03, 0x04})
					wf.Close()
				}

				if !promoteOrBad(f, 1, out) {
					return
				}
				if got, err := countEmp(f.Engine()); err != nil || got != n {
					out.bad("ACKED WRITE LOST: promoted node has %d rows, want %d (%v)", got, n, err)
				}
				seq := 0
				if err := commitEng(f.Engine(), "p", &seq, 2); err != nil {
					out.bad("post-promotion commit: %v", err)
					return
				}

				// Resurrect the old leader as a follower of the new one: its
				// divergent suffix must be fenced away, not merged.
				ns, err := serveRepl(f.Engine())
				if err != nil {
					out.bad("new leader server: %v", err)
					return
				}
				defer ns.stop()
				old, cancelOld, err := startFoFollower(ns.addr, leaderPath, false)
				if err != nil {
					out.bad("resurrect old leader: %v", err)
					return
				}
				defer func() { cancelOld(); old.Close() }()
				// The lab still owns l.leader; hand it the rejoined engine's
				// lifecycle is ours, the crashed engine needs no close.
				if !waitEngConverged(old, f.Engine(), out) {
					return
				}
				if old.Engine().Epoch() != 1 {
					out.bad("rejoined old leader epoch = %d, want 1", old.Engine().Epoch())
				}
				if got, err := countEmp(old.Engine()); err != nil || got != n+2 {
					out.bad("SPLIT BRAIN: rejoined old leader has %d rows, want %d (%v)", got, n+2, err)
				}
				if f.Engine().Metrics().Counters()["repl.fences_sent"] == 0 {
					out.bad("divergent ex-leader rejoined without being fenced")
				}
				if old.Engine().Metrics().Counters()["repl.snapshot_bootstraps"] == 0 {
					out.bad("divergent ex-leader rejoined without a snapshot")
				}
			}))
		}
	}

	// --- promotion during a partition ----------------------------------------
	// The follower is cut off, the unaware leader commits k more groups,
	// the follower promotes anyway. k = 0 is the clean-resurrection case:
	// the old leader's history is an exact prefix, so it must be served
	// WITHOUT fencing or a snapshot and learn the epoch from the stream.
	for _, k := range []int{0, 1, 2, 3, 7, 15} {
		k := k
		add(fmt.Sprintf("failover-promote-partitioned-%d-unshipped", k), k == 0 || k == 3, replScenario(func(l *replLab, out *outcome) {
			const n = 6
			if err := l.commit(n); err != nil {
				out.bad("commit: %v", err)
				return
			}
			f, cancel, err := l.follower(l.addr, filepath.Join(l.dir, "f1"))
			if err != nil {
				out.bad("follower: %v", err)
				return
			}
			defer func() { cancel(); f.Close() }()
			if !l.waitReplConverged(f, out) {
				return
			}
			l.stopServer() // partition
			if err := l.commit(k); err != nil {
				out.bad("partitioned commit: %v", err)
				return
			}
			if !promoteOrBad(f, 1, out) {
				return
			}
			if got, err := countEmp(f.Engine()); err != nil || got != n {
				out.bad("promoted node has %d rows, want %d (%v)", got, n, err)
			}

			// The old leader shuts down cleanly and rejoins.
			leaderPath := filepath.Join(l.dir, "leader")
			if err := l.leader.Close(); err != nil {
				out.bad("leader close: %v", err)
				return
			}
			ns, err := serveRepl(f.Engine())
			if err != nil {
				out.bad("new leader server: %v", err)
				return
			}
			defer ns.stop()
			old, cancelOld, err := startFoFollower(ns.addr, leaderPath, false)
			if err != nil {
				out.bad("rejoin: %v", err)
				return
			}
			defer func() { cancelOld(); old.Close() }()
			if !waitEngConverged(old, f.Engine(), out) {
				return
			}
			if old.Engine().Epoch() != 1 {
				out.bad("rejoined epoch = %d, want 1", old.Engine().Epoch())
			}
			fences := f.Engine().Metrics().Counters()["repl.fences_sent"]
			boots := old.Engine().Metrics().Counters()["repl.snapshot_bootstraps"]
			if k == 0 {
				// Clean prefix: served in place, no fence, no snapshot.
				if fences != 0 {
					out.bad("clean-prefix ex-leader was fenced (%d fences)", fences)
				}
				if boots != 0 {
					out.bad("clean-prefix ex-leader was made to bootstrap")
				}
			} else {
				if fences == 0 {
					out.bad("divergent ex-leader (%d unshipped) was not fenced", k)
				}
				if boots == 0 {
					out.bad("divergent ex-leader rejoined without a snapshot")
				}
			}
		}))
	}

	// --- double promotion race -----------------------------------------------
	// Two converged followers both promote after the leader dies. At the
	// same frontier both land on epoch 1 with byte-identical histories
	// (the epoch group is deterministic), clients deterministically agree
	// on one winner, and the loser is demoted by an operator-forced
	// snapshot rejoin.
	for _, n := range []int{5, 20} {
		for _, swap := range []bool{false, true} {
			n, swap := n, swap
			name := fmt.Sprintf("failover-double-promote-%d", n)
			if swap {
				name += "-swapped"
			}
			add(name, n == 5 && !swap, replScenario(func(l *replLab, out *outcome) {
				if err := l.commit(n); err != nil {
					out.bad("commit: %v", err)
					return
				}
				f1, cancel1, err := l.follower(l.addr, filepath.Join(l.dir, "f1"))
				if err != nil {
					out.bad("f1: %v", err)
					return
				}
				defer func() { cancel1(); f1.Close() }()
				f2, cancel2, err := l.follower(l.addr, filepath.Join(l.dir, "f2"))
				if err != nil {
					out.bad("f2: %v", err)
					return
				}
				deadAddr := l.addr()
				if !l.waitReplConverged(f1, out) || !l.waitReplConverged(f2, out) {
					cancel2()
					f2.Close()
					return
				}
				l.stopServer() // leader dies; both followers promote
				if !promoteOrBad(f1, 1, out) || !promoteOrBad(f2, 1, out) {
					cancel2()
					f2.Close()
					return
				}
				// Same frontier, same epoch: the histories must be identical.
				d1, err1 := f1.Engine().DigestStore()
				d2, err2 := f2.Engine().DigestStore()
				if err1 != nil || err2 != nil || !bytes.Equal(d1, d2) {
					out.bad("same-frontier double promotion diverged (%v, %v)", err1, err2)
				}

				s1, err := serveRepl(f1.Engine())
				if err != nil {
					out.bad("s1: %v", err)
					cancel2()
					f2.Close()
					return
				}
				s2, err := serveRepl(f2.Engine())
				if err != nil {
					out.bad("s2: %v", err)
					s1.stop()
					cancel2()
					f2.Close()
					return
				}
				replicas := []string{s1.addr(), s2.addr()}
				if swap {
					replicas[0], replicas[1] = replicas[1], replicas[0]
				}
				// Every client with the same config must pick the same winner:
				// the earliest probe-order address among the highest epoch.
				var winners []string
				for i := 0; i < 2; i++ {
					cl, err := client.New(client.Config{
						Addr: deadAddr, Replicas: replicas,
						DialRetries: -1, QueryRetries: 1,
						RetryBackoff: time.Millisecond, JitterSeed: e.seed + int64(i),
					})
					if err != nil {
						out.bad("client: %v", err)
						break
					}
					sess, err := cl.Session()
					if err != nil {
						out.bad("session after double promote: %v", err)
						cl.Close()
						break
					}
					sess.Close()
					if cl.Epoch() != 1 {
						out.bad("client observed epoch %d, want 1", cl.Epoch())
					}
					winners = append(winners, cl.Leader())
					cl.Close()
				}
				if len(winners) == 2 {
					if winners[0] != winners[1] {
						out.bad("NONDETERMINISTIC WINNER: %s vs %s", winners[0], winners[1])
					}
					if winners[0] != replicas[0] {
						out.bad("winner %s is not the earliest probe address %s", winners[0], replicas[0])
					}
				}
				s2.stop()

				// Demote the loser (f2): operator-forced snapshot rejoin under
				// the winner. Its engine must come back read-only at epoch 1
				// with the winner's exact history.
				f2Path := filepath.Join(l.dir, "f2")
				cancel2()
				if err := f2.Close(); err != nil {
					out.bad("loser close: %v", err)
					s1.stop()
					return
				}
				loser, cancelL, err := startFoFollower(s1.addr, f2Path, true)
				if err != nil {
					out.bad("demote rejoin: %v", err)
					s1.stop()
					return
				}
				defer func() { cancelL(); loser.Close() }()
				if waitEngConverged(loser, f1.Engine(), out) {
					if !loser.Engine().IsReadOnly() {
						out.bad("demoted loser still accepts writes")
					}
					if loser.Engine().Epoch() != 1 {
						out.bad("demoted loser epoch = %d, want 1", loser.Engine().Epoch())
					}
				}
				s1.stop()
			}))
		}
	}

	// --- promotion vs the archive tier ---------------------------------------
	add("failover-archive-then-promote", false, replScenario(func(l *replLab, out *outcome) {
		if err := l.commit(30); err != nil {
			out.bad("commit: %v", err)
			return
		}
		// Tier the older half of history down, then replicate and promote:
		// the archive state must ship and survive promotion.
		if _, err := l.leader.Archive(temporal.Instant(l.leader.Now() / 2)); err != nil {
			out.bad("archive: %v", err)
			return
		}
		f, cancel, err := l.follower(l.addr, filepath.Join(l.dir, "f1"))
		if err != nil {
			out.bad("follower: %v", err)
			return
		}
		defer func() { cancel(); f.Close() }()
		if !l.waitReplConverged(f, out) {
			return
		}
		l.stopServer()
		if !promoteOrBad(f, 1, out) {
			return
		}
		if got, err := countEmp(f.Engine()); err != nil || got != 30 {
			out.bad("rows after archive+promote = %d, want 30 (%v)", got, err)
		}
	}))
	add("failover-promote-then-archive", true, replScenario(func(l *replLab, out *outcome) {
		if err := l.commit(20); err != nil {
			out.bad("commit: %v", err)
			return
		}
		f, cancel, err := l.follower(l.addr, filepath.Join(l.dir, "f1"))
		if err != nil {
			out.bad("follower: %v", err)
			return
		}
		defer func() { cancel(); f.Close() }()
		if !l.waitReplConverged(f, out) {
			return
		}
		l.stopServer()
		if !promoteOrBad(f, 1, out) {
			return
		}
		// The new leader immediately runs the tiering pipeline, then keeps
		// committing; a fresh follower must still converge byte-for-byte.
		neu := f.Engine()
		if _, err := neu.Archive(temporal.Instant(neu.Now() / 2)); err != nil {
			out.bad("archive on promoted node: %v", err)
			return
		}
		seq := 0
		if err := commitEng(neu, "p", &seq, 4); err != nil {
			out.bad("commit after archive: %v", err)
			return
		}
		if got, err := countEmp(neu); err != nil || got != 24 {
			out.bad("rows after promote+archive = %d, want 24 (%v)", got, err)
		}
		ns, err := serveRepl(neu)
		if err != nil {
			out.bad("serve: %v", err)
			return
		}
		defer ns.stop()
		f2, cancel2, err := startFoFollower(ns.addr, filepath.Join(l.dir, "f2"), false)
		if err != nil {
			out.bad("f2: %v", err)
			return
		}
		defer func() { cancel2(); f2.Close() }()
		waitEngConverged(f2, neu, out)
	}))
	add("failover-promote-then-checkpoint", false, replScenario(func(l *replLab, out *outcome) {
		if err := l.commit(10); err != nil {
			out.bad("commit: %v", err)
			return
		}
		f, cancel, err := l.follower(l.addr, filepath.Join(l.dir, "f1"))
		if err != nil {
			out.bad("follower: %v", err)
			return
		}
		defer func() { cancel(); f.Close() }()
		if !l.waitReplConverged(f, out) {
			return
		}
		l.stopServer()
		if !promoteOrBad(f, 1, out) {
			return
		}
		// Checkpoint truncates the new leader's log: a fresh follower can
		// no longer start from LSN 1 and must be seeded with a snapshot.
		neu := f.Engine()
		if err := neu.Checkpoint(); err != nil {
			out.bad("checkpoint on promoted node: %v", err)
			return
		}
		seq := 0
		if err := commitEng(neu, "p", &seq, 3); err != nil {
			out.bad("commit after checkpoint: %v", err)
			return
		}
		ns, err := serveRepl(neu)
		if err != nil {
			out.bad("serve: %v", err)
			return
		}
		defer ns.stop()
		f2, cancel2, err := startFoFollower(ns.addr, filepath.Join(l.dir, "f2"), false)
		if err != nil {
			out.bad("f2: %v", err)
			return
		}
		defer func() { cancel2(); f2.Close() }()
		if waitEngConverged(f2, neu, out) {
			if f2.Engine().Metrics().Counters()["repl.snapshot_bootstraps"] == 0 {
				out.bad("follower of a checkpointed promoted leader converged without a snapshot")
			}
			if f2.Engine().Epoch() != 1 {
				out.bad("snapshot carried epoch %d, want 1", f2.Engine().Epoch())
			}
		}
	}))

	// --- fencing: a stale source refuses a future subscriber ------------------
	// Serve is driven directly with a subscriber claiming a higher epoch:
	// the source must self-fence (Fence frame + OnFenced + error), never
	// stream a single record.
	for _, peer := range []uint64{1, 2, 3, 5, 9, 17} {
		peer := peer
		add(fmt.Sprintf("failover-fence-subscriber-epoch-%d", peer), peer == 2, replScenario(func(l *replLab, out *outcome) {
			if err := l.commit(3); err != nil {
				out.bad("commit: %v", err)
				return
			}
			var fencedBy uint64
			src := &repl.Source{Engine: l.leader, OnFenced: func(e uint64) { fencedBy = e }}
			cli, srvConn := net.Pipe()
			defer cli.Close()
			done := make(chan error, 1)
			go func() {
				defer srvConn.Close()
				done <- src.Serve(context.Background(), srvConn, wire.SubscribeReq{FromLSN: 1, Epoch: peer})
			}()
			fr, err := wire.ReadFrame(bufio.NewReader(cli))
			if err != nil {
				out.bad("read: %v", err)
				return
			}
			if fr.Type != wire.FrameFence {
				out.bad("stale source sent frame 0x%02x, want Fence", fr.Type)
				return
			}
			fence, err := wire.DecodeFence(fr.Payload)
			if err != nil || fence.Epoch != 0 {
				out.bad("fence = %+v (%v), want source epoch 0", fence, err)
			}
			if err := <-done; err == nil {
				out.bad("stale source served a higher-epoch subscriber")
			}
			if fencedBy != peer {
				out.bad("OnFenced saw epoch %d, want %d", fencedBy, peer)
			}
		}))
	}

	// --- client failover ------------------------------------------------------
	add("failover-client-session-reroutes", true, replScenario(func(l *replLab, out *outcome) {
		if err := l.commit(10); err != nil {
			out.bad("commit: %v", err)
			return
		}
		f, cancel, err := l.follower(l.addr, filepath.Join(l.dir, "f1"))
		if err != nil {
			out.bad("follower: %v", err)
			return
		}
		defer func() { cancel(); f.Close() }()
		if !l.waitReplConverged(f, out) {
			return
		}
		deadAddr := l.addr()
		l.stopServer()
		if !promoteOrBad(f, 1, out) {
			return
		}
		ns, err := serveRepl(f.Engine())
		if err != nil {
			out.bad("serve: %v", err)
			return
		}
		defer ns.stop()
		cl, err := client.New(client.Config{
			Addr: deadAddr, Replicas: []string{ns.addr()},
			DialRetries: -1, QueryRetries: 1,
			RetryBackoff: time.Millisecond, JitterSeed: e.seed,
		})
		if err != nil {
			out.bad("client: %v", err)
			return
		}
		defer cl.Close()
		sess, err := cl.Session()
		if err != nil {
			out.bad("leader-targeted session did not fail over: %v", err)
			return
		}
		res, err := sess.Query(replQuery)
		sess.Close()
		if err != nil || len(res.Rows) != 10 {
			out.bad("post-failover session query: %d rows (%v), want 10", len(res.Rows), err)
		}
		if cl.Leader() != ns.addr() {
			out.bad("client leader = %s, want the promoted node %s", cl.Leader(), ns.addr())
		}
		if cl.Epoch() != 1 {
			out.bad("client epoch = %d, want 1", cl.Epoch())
		}
	}))
	add("failover-client-result-epoch", true, replScenario(func(l *replLab, out *outcome) {
		if err := l.commit(5); err != nil {
			out.bad("commit: %v", err)
			return
		}
		f, cancel, err := l.follower(l.addr, filepath.Join(l.dir, "f1"))
		if err != nil {
			out.bad("follower: %v", err)
			return
		}
		defer func() { cancel(); f.Close() }()
		if !l.waitReplConverged(f, out) {
			return
		}
		deadAddr := l.addr()
		l.stopServer()
		if !promoteOrBad(f, 1, out) {
			return
		}
		ns, err := serveRepl(f.Engine())
		if err != nil {
			out.bad("serve: %v", err)
			return
		}
		defer ns.stop()
		cl, err := client.New(client.Config{
			Addr: deadAddr, Replicas: []string{ns.addr()},
			DialRetries: -1, QueryRetries: 1,
			RetryBackoff: time.Millisecond, JitterSeed: e.seed,
		})
		if err != nil {
			out.bad("client: %v", err)
			return
		}
		defer cl.Close()
		res, err := cl.Exec(replQuery)
		if err != nil {
			out.bad("exec after failover: %v", err)
			return
		}
		if res.Epoch != 1 {
			out.bad("Result.Epoch = %d, want 1 (clients watch this for failovers)", res.Epoch)
		}
		if len(res.Rows) != 5 {
			out.bad("exec rows = %d, want 5", len(res.Rows))
		}
	}))
	add("failover-client-no-replicas-typed-error", true, replScenario(func(l *replLab, out *outcome) {
		// Without a replica set there is nowhere to go: the client must
		// surface a typed transport error, never hang or invent a leader.
		deadAddr := l.addr()
		l.stopServer()
		cl, err := client.New(client.Config{
			Addr: deadAddr, DialRetries: -1, QueryRetries: 1,
			RetryBackoff: time.Millisecond, DialTimeout: time.Second, JitterSeed: e.seed,
		})
		if err != nil {
			out.bad("client: %v", err)
			return
		}
		defer cl.Close()
		if _, err := cl.Exec(replQuery); err == nil {
			out.bad("exec against a dead leader with no replicas succeeded")
		}
		if cl.Leader() != deadAddr {
			out.bad("client moved its leader with no replicas configured: %s", cl.Leader())
		}
	}))

	// --- chained promotions ---------------------------------------------------
	// Leadership hops L times; each hop ships its epoch record downstream,
	// so the final node carries epoch L and the union of every timeline's
	// surviving writes.
	for _, hops := range []int{2, 3, 4} {
		hops := hops
		add(fmt.Sprintf("failover-epoch-chain-%d", hops), hops == 2, replScenario(func(l *replLab, out *outcome) {
			const base = 4
			if err := l.commit(base); err != nil {
				out.bad("commit: %v", err)
				return
			}
			f, cancel, err := l.follower(l.addr, filepath.Join(l.dir, "h1"))
			if err != nil {
				out.bad("h1: %v", err)
				return
			}
			if !l.waitReplConverged(f, out) {
				cancel()
				f.Close()
				return
			}
			l.stopServer()
			want := base
			seq := 0
			var lastSrv *foServer
			for h := 1; h <= hops; h++ {
				epoch, err := f.Promote()
				if err != nil {
					out.bad("hop %d promote: %v", h, err)
					break
				}
				if epoch != uint64(h) {
					out.bad("hop %d epoch = %d", h, epoch)
				}
				if err := commitEng(f.Engine(), "h", &seq, 3); err != nil {
					out.bad("hop %d commit: %v", h, err)
					break
				}
				want += 3
				if h == hops {
					break
				}
				srv, err := serveRepl(f.Engine())
				if err != nil {
					out.bad("hop %d serve: %v", h, err)
					break
				}
				next, cancelN, err := startFoFollower(srv.addr, filepath.Join(l.dir, fmt.Sprintf("h%d", h+1)), false)
				if err != nil {
					out.bad("hop %d follower: %v", h, err)
					srv.stop()
					break
				}
				if !waitEngConverged(next, f.Engine(), out) {
					cancelN()
					next.Close()
					srv.stop()
					break
				}
				// The old hop retires; the next one takes over.
				cancel()
				f.Close()
				if lastSrv != nil {
					lastSrv.stop()
				}
				lastSrv = srv
				f, cancel = next, cancelN
			}
			if lastSrv != nil {
				lastSrv.stop()
			}
			if got := f.Engine().Epoch(); got != uint64(hops) {
				out.bad("final epoch = %d, want %d", got, hops)
			}
			if got, err := countEmp(f.Engine()); err != nil || got != want {
				out.bad("final rows = %d, want %d (%v)", got, want, err)
			}
			cancel()
			f.Close()
		}))
	}

	// --- staleness after promotion -------------------------------------------
	// "A leader is a replica with zero lag": a promoted node serving with
	// a zero staleness source must satisfy even the tightest bound.
	add("failover-staleness-zero-after-promote", true, replScenario(func(l *replLab, out *outcome) {
		if err := l.commit(5); err != nil {
			out.bad("commit: %v", err)
			return
		}
		f, cancel, err := l.follower(l.addr, filepath.Join(l.dir, "f1"))
		if err != nil {
			out.bad("follower: %v", err)
			return
		}
		defer func() { cancel(); f.Close() }()
		if !l.waitReplConverged(f, out) {
			return
		}
		l.stopServer()
		if !promoteOrBad(f, 1, out) {
			return
		}
		ns, err := serveRepl(f.Engine())
		if err != nil {
			out.bad("serve: %v", err)
			return
		}
		defer ns.stop()
		cl, err := client.New(client.Config{
			Addr: ns.addr(), DialRetries: -1, QueryRetries: 1,
			RetryBackoff: time.Millisecond, JitterSeed: e.seed,
		})
		if err != nil {
			out.bad("client: %v", err)
			return
		}
		defer cl.Close()
		sess, err := cl.Session()
		if err != nil {
			out.bad("session: %v", err)
			return
		}
		defer sess.Close()
		if _, err := sess.Option("max_staleness", "1ms"); err != nil {
			out.bad("max_staleness on promoted node: %v", err)
			return
		}
		if res, err := sess.Query(replQuery); err != nil || len(res.Rows) != 5 {
			out.bad("bounded-staleness read on promoted node: %d rows (%v)", len(res.Rows), err)
		}
	}))

	return scs
}
