package chaos

import "testing"

// TestReplScenarios runs the replication fault family directly (the full
// chaos matrix includes it, but this pins each scenario's verdict and
// makes a replication regression name itself).
func TestReplScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("replication scenarios spin real leaders/followers; skipped with -short")
	}
	e := &env{seed: 7, logf: t.Logf}
	for _, sc := range replScenarios(e) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			out := sc.run(e)
			if len(out.violations) > 0 {
				t.Fatalf("verdict %q, violations: %v", out.verdict, out.violations)
			}
			if out.verdict != verdictOK {
				t.Fatalf("verdict = %q, want ok", out.verdict)
			}
		})
	}
}
