package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"tcodm/internal/value"
)

func TestPromoteBumpsAndPersistsEpoch(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, filepath.Join(dir, "leader"))
	defer leader.Close()
	seedLeader(t, leader)

	fpath := filepath.Join(dir, "follower")
	f, err := Open(Options{Path: fpath, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ApplyReplicated(shipAll(t, leader)); err != nil {
		t.Fatal(err)
	}
	frontier := f.Watermark()

	epoch, err := f.Promote(0)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("first promotion epoch = %d, want 1", epoch)
	}
	if f.Epoch() != 1 || f.EpochStart() != frontier {
		t.Fatalf("epoch state = (%d, %d), want (1, %d)", f.Epoch(), f.EpochStart(), frontier)
	}
	if f.IsFollower() || f.IsReadOnly() {
		t.Fatal("promoted engine still refuses writes")
	}
	// The epoch group advanced the watermark: a leader's watermark is its
	// appended frontier.
	if f.Watermark() != f.Log().AppendedLSN() {
		t.Fatalf("watermark %d != appended %d", f.Watermark(), f.Log().AppendedLSN())
	}

	// The promoted engine accepts local commits.
	tx, err := f.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("Dept", map[string]value.V{
		"name": value.String_("post-promotion"), "budget": value.Int(1),
	}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// A second promotion on a non-follower engine is refused.
	if _, err := f.Promote(0); err == nil {
		t.Fatal("promote succeeded twice on the same engine")
	}

	// Crash, reopen: the epoch survives (via the WAL group and/or meta).
	if err := f.Crash(); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(Options{Path: fpath})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Epoch() != 1 {
		t.Fatalf("epoch after crash recovery = %d, want 1", f2.Epoch())
	}
	if f2.EpochStart() != frontier {
		t.Fatalf("epoch start after crash recovery = %d, want %d", f2.EpochStart(), frontier)
	}
}

func TestPromoteTakesObservedEpoch(t *testing.T) {
	dir := t.TempDir()
	f, err := Open(Options{Path: filepath.Join(dir, "f"), Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// The follower heard epoch 5 from its (dead) leader's heartbeats but
	// never replayed an epoch record: promotion must land above it.
	epoch, err := f.Promote(5)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 6 {
		t.Fatalf("promotion epoch = %d, want 6", epoch)
	}
}

func TestPromoteRefusedOnLeader(t *testing.T) {
	leader := openLeader(t, filepath.Join(t.TempDir(), "leader"))
	defer leader.Close()
	if _, err := leader.Promote(0); err == nil {
		t.Fatal("promote succeeded on a non-follower engine")
	}
}

// TestEpochReplicatesThroughStream proves the promotion is itself a WAL
// event: a follower of the new leader learns the epoch from the log, no
// side channel.
func TestEpochReplicatesThroughStream(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, filepath.Join(dir, "leader"))
	defer leader.Close()
	seedLeader(t, leader)

	a, err := Open(Options{Path: filepath.Join(dir, "a"), Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyReplicated(shipAll(t, leader)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Promote(0); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// B replicates from A (the promoted leader) and must converge on both
	// the store and the epoch.
	b, err := Open(Options{Path: filepath.Join(dir, "b"), Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.ApplyReplicated(shipAll(t, a)); err != nil {
		t.Fatal(err)
	}
	if b.Epoch() != 1 {
		t.Fatalf("streamed epoch = %d, want 1", b.Epoch())
	}
	if b.EpochStart() != a.EpochStart() {
		t.Fatalf("streamed epoch start = %d, want %d", b.EpochStart(), a.EpochStart())
	}
	da, err := a.DigestStore()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.DigestStore()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatal("digest diverged after epoch replication")
	}
}

// TestEpochRecoveryLogWins: meta may lag the log (crash between the epoch
// group's append and the next checkpoint); replay must win the max.
func TestEpochRecoveryLogWins(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db")
	f, err := Open(Options{Path: path, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Promote(3); err != nil { // lands at epoch 4
		t.Fatal(err)
	}
	if err := f.Crash(); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Epoch() != 4 {
		t.Fatalf("epoch after crash = %d, want 4 (log must win over stale meta)", f2.Epoch())
	}
	if !f2.Recovered {
		t.Error("expected crash recovery to have run")
	}
}
