package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// TestConcurrentReadersDuringCommits drives N reader goroutines through
// every read entry point — StateAt, History, Molecule, Query, IDs, Stats,
// Now — while a writer keeps committing temporal updates. Run under
// -race, it is the regression test for the engine's reader/writer
// synchronization (the RWMutex plus the atomic clock: Engine.Now and
// Vacuum used to race against the writer's clock ticks).
func TestConcurrentReadersDuringCommits(t *testing.T) {
	e := openMem(t, atom.StrategySeparated)

	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	dept, err := tx.Insert("Dept", map[string]value.V{
		"name": value.String_("eng"), "budget": value.Int(100),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var emps []value.ID
	for i := 0; i < 4; i++ {
		emp, err := tx.Insert("Emp", map[string]value.V{
			"name":   value.String_(fmt.Sprintf("e%d", i)),
			"salary": value.Int(int64(1000 * (i + 1))),
			"dept":   value.Ref(dept),
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		emps = append(emps, emp)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	const commits = 40
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				emp := emps[(r+i)%len(emps)]
				vt := temporal.Instant(i % 500)
				if _, err := e.StateAt(emp, vt, atom.Now); err != nil {
					errs <- fmt.Errorf("reader %d: StateAt: %w", r, err)
					return
				}
				if _, err := e.History(emp, "salary", atom.Now); err != nil {
					errs <- fmt.Errorf("reader %d: History: %w", r, err)
					return
				}
				if _, err := e.Molecule("DeptStaff", dept, vt, atom.Now); err != nil {
					errs <- fmt.Errorf("reader %d: Molecule: %w", r, err)
					return
				}
				if _, err := e.Query(`SELECT (Emp.name, Emp.salary) FROM Emp`); err != nil {
					errs <- fmt.Errorf("reader %d: Query: %w", r, err)
					return
				}
				if _, err := e.IDs("Emp"); err != nil {
					errs <- fmt.Errorf("reader %d: IDs: %w", r, err)
					return
				}
				_ = e.Stats()
				_ = e.Now()
			}
		}(r)
	}

	for i := 0; i < commits; i++ {
		tx, err := e.Begin()
		if err != nil {
			t.Fatalf("commit %d: Begin: %v", i, err)
		}
		emp := emps[i%len(emps)]
		from := temporal.Instant(10 * (i + 1))
		if err := tx.Set(emp, "salary", value.Int(int64(2000+i)), from); err != nil {
			t.Fatalf("commit %d: Set: %v", i, err)
		}
		if i%4 == 0 {
			if err := tx.Set(dept, "budget", value.Int(int64(100+i)), from); err != nil {
				t.Fatalf("commit %d: Set budget: %v", i, err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: Commit: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The final state must reflect the last committed update of each record.
	for i, emp := range emps {
		st, err := e.StateAt(emp, temporal.Instant(10*commits+1000), atom.Now)
		if err != nil {
			t.Fatalf("final StateAt(%d): %v", i, err)
		}
		if st.Vals["salary"].AsInt() < 2000 {
			t.Errorf("emp %d: final salary %v, want a committed update >= 2000", i, st.Vals["salary"])
		}
	}
}

// TestConcurrentWritersSerialize checks that Begin/Commit from many
// goroutines serialize cleanly (the engine holds a single write lock per
// transaction) and that every acknowledged commit is visible afterwards.
func TestConcurrentWritersSerialize(t *testing.T) {
	e := openMem(t, atom.StrategyEmbedded)

	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	dept, err := tx.Insert("Dept", map[string]value.V{
		"name": value.String_("ops"), "budget": value.Int(1),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	const writers = 6
	ids := make([]value.ID, writers)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx, err := e.Begin()
			if err != nil {
				errs <- err
				return
			}
			id, err := tx.Insert("Emp", map[string]value.V{
				"name":   value.String_(fmt.Sprintf("w%d", w)),
				"salary": value.Int(int64(100 + w)),
				"dept":   value.Ref(dept),
			}, 0)
			if err != nil {
				tx.Abort()
				errs <- err
				return
			}
			if err := tx.Commit(); err != nil {
				errs <- err
				return
			}
			ids[w] = id
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w, id := range ids {
		st, err := e.StateAt(id, 0, atom.Now)
		if err != nil {
			t.Fatalf("writer %d's insert not visible: %v", w, err)
		}
		if got := st.Vals["salary"].AsInt(); got != int64(100+w) {
			t.Errorf("writer %d: salary = %d, want %d", w, got, 100+w)
		}
	}
}
