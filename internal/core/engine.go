// Package core assembles the full temporal complex-object engine: storage
// device, buffer pool, write-ahead log, transaction manager, catalog,
// temporal atom manager, molecule builder, and TMQL query engine — the
// realization of the temporal complex-object data model on a conventional
// record-oriented store.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"tcodm/internal/atom"
	"tcodm/internal/molecule"
	"tcodm/internal/obs"
	"tcodm/internal/query"
	"tcodm/internal/schema"
	"tcodm/internal/storage"
	"tcodm/internal/temporal"
	"tcodm/internal/txn"
	"tcodm/internal/value"
	"tcodm/internal/wal"
)

// Options configure a database.
type Options struct {
	// Path is the database file; the log lives at Path+".wal". Empty
	// means an ephemeral in-memory database (no log, no durability).
	Path string
	// Strategy selects the physical mapping (default: separated).
	Strategy atom.Strategy
	// PoolPages sizes the buffer pool (default 1024 pages = 8 MiB).
	PoolPages int
	// SyncOnCommit fsyncs the log on every commit.
	SyncOnCommit bool
	// TimeIndex maintains the version time index.
	TimeIndex bool
	// ValueIndex maintains secondary value indexes over plain attributes.
	ValueIndex bool
	// SegmentCap bounds history segment size (separated strategy).
	SegmentCap int
	// OpenDevice, when non-nil, replaces storage.OpenFileDevice for the
	// data file (fault-injection seam; see internal/fault).
	OpenDevice func(path string) (storage.Device, error)
	// OpenWAL, when non-nil, replaces wal.Open for the log file (fault-
	// injection seam; see internal/fault).
	OpenWAL func(path string, opts wal.Options) (*wal.WAL, error)
	// OpenArchive, when non-nil, replaces storage.OpenArchive for the cold
	// archive file at Path+".arc" (fault-injection seam; see internal/fault).
	OpenArchive func(path string) (*storage.Archive, error)
	// DisableMetrics turns the observability layer off: no registry is
	// created and every instrumented component gets nil metric handles
	// (true no-ops on the hot paths).
	DisableMetrics bool
	// SlowQueryThreshold enables the slow-query log for queries at or
	// above the given duration (0 = disabled; adjustable at runtime via
	// SlowLog().SetThreshold).
	SlowQueryThreshold time.Duration
	// QueryWorkers caps intra-query parallelism: candidate streams are
	// partitioned across this many goroutines with an order-preserving
	// merge (results are byte-identical to serial execution). 0 defaults
	// to GOMAXPROCS; 1 forces the exact serial path.
	QueryWorkers int
	// ReadOnly opens the database without the writer lease, sharing the
	// directory with a live writer process. All mutation entry points
	// return ErrReadOnly; recovery replay and other internal writes land
	// in an in-memory overlay and never reach the files.
	ReadOnly bool
	// Follower marks this engine as a replication follower: it owns its
	// directory (writable, leased) but refuses user transactions — its
	// only write path is ApplyReplicated. Time and value indexes are
	// force-disabled (they cannot be maintained incrementally from the
	// log without risking stale under-approximate candidate sets).
	Follower bool
}

// Engine is one open database.
type Engine struct {
	mu sync.RWMutex

	opts    Options
	dev     storage.Device
	pool    *storage.BufferPool
	heap    *storage.Heap
	log     *wal.WAL
	arc     *storage.Archive
	clock   *temporal.Clock
	txns    *txn.Manager
	schema  *schema.Schema
	atoms   *atom.Manager
	builder *molecule.Builder
	queries *query.Engine

	catalogRID storage.RID
	closed     bool
	diskClean  bool // on-disk meta currently carries the clean mark

	// lease is the exclusive writer lock (nil for read-only and in-memory
	// engines); watermark is the highest replicated LSN a follower's store
	// reflects, advanced only by ApplyReplicated.
	lease     *lease
	watermark uint64

	// epoch is the replication epoch this store last observed (0 before
	// any promotion); epochStart is the appended LSN at which it began.
	// Bumped by Promote on this node, advanced by OpEpoch records on
	// followers, persisted in the meta page and recoverable from the log.
	epoch      uint64
	epochStart uint64

	// Recovered reports whether opening required crash recovery.
	Recovered bool

	// metrics is the engine-wide registry (nil when DisableMetrics).
	metrics *obs.Registry
	// slow is the slow-query log (always non-nil; threshold 0 disables).
	slow *obs.SlowLog
	// tracer records recent engine events in a bounded ring.
	tracer *obs.Tracer
	// recovery holds the WAL replay statistics from the last unclean open.
	recovery wal.RecoveryStats

	queryNS   *obs.Histogram // query latency (ns); nil when metrics off
	queryRuns *obs.Counter
}

// metaPayload is the engine state persisted in the meta page.
type metaPayload struct {
	Strategy   string           `json:"strategy"`
	SegmentCap int              `json:"segment_cap"`
	TimeIndex  bool             `json:"time_index"`
	CatalogRID uint64           `json:"catalog_rid"`
	Primary    storage.PageID   `json:"primary_root"`
	TypeIdx    storage.PageID   `json:"type_root"`
	TimeIdx    storage.PageID   `json:"time_root"`
	ValueIdx   storage.PageID   `json:"value_root"`
	ValueIndex bool             `json:"value_index"`
	NextID     uint64           `json:"next_id"`
	Clock      temporal.Instant `json:"clock"`
	NextLSN    uint64           `json:"next_lsn"`
	FreePages  []storage.PageID `json:"free_pages,omitempty"`
	// Pages is the device size when this meta was written — the crash
	// horizon. Pages allocated at or beyond it carry only data the log can
	// reproduce, so recovery may quarantine them if a torn write left them
	// checksum-invalid. 0 in databases written before horizon tracking.
	Pages storage.PageID `json:"pages,omitempty"`
	// ArchiveSize is the cold archive's committed logical size (the append
	// frontier). Physical bytes past it belong to uncommitted migrations and
	// are overwritten by the next archival run. 0/absent in databases
	// written before archive tiering (SetSize clamps to the header size).
	ArchiveSize uint64 `json:"archive_size,omitempty"`
	// Epoch is the replication epoch the store last observed and
	// EpochStart the appended LSN at which it began. 0/absent in
	// databases that predate failover (never promoted, never led by a
	// promoted leader).
	Epoch      uint64 `json:"epoch,omitempty"`
	EpochStart uint64 `json:"epoch_start,omitempty"`
}

// Open opens (creating if absent) a database.
func Open(opts Options) (*Engine, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = 1024
	}
	e := &Engine{opts: opts, clock: temporal.NewClock(0)}
	e.slow = obs.NewSlowLog(64, opts.SlowQueryThreshold)
	if !opts.DisableMetrics {
		e.metrics = obs.New()
		// The ring holds span trees now, not just points: a traced query
		// emits ~10 events, so size for a few hundred recent queries.
		e.tracer = obs.NewTracer(4096)
		e.queryNS = e.metrics.Histogram("query.ns")
		e.queryRuns = e.metrics.Counter("query.runs")
	}

	if opts.ReadOnly && opts.Follower {
		return nil, fmt.Errorf("core: ReadOnly and Follower are mutually exclusive open modes")
	}
	if (opts.ReadOnly || opts.Follower) && opts.Path == "" {
		return nil, fmt.Errorf("core: read-only and follower modes require a database path")
	}
	if opts.Follower {
		// A follower cannot maintain these incrementally from the log;
		// stale entries would under-approximate query candidate sets.
		opts.TimeIndex = false
		opts.ValueIndex = false
		e.opts = opts
	}

	var err error
	switch {
	case opts.Path == "":
		e.dev = storage.NewMemDevice()
		e.arc = storage.NewMemArchive()
	case opts.ReadOnly:
		// No lease: share the directory with a live writer. All writes the
		// engine performs internally (recovery replay, torn-page
		// quarantine, meta re-marking) land in the overlay.
		ro, err := openReadOnlyDevice(opts.Path)
		if err != nil {
			return nil, err
		}
		e.dev = newOverlayDevice(ro)
		e.log, err = wal.Open(opts.Path+".wal", wal.Options{ReadOnly: true})
		if err != nil {
			e.dev.Close()
			return nil, err
		}
		// The archive is copied into memory: recovery replay may re-apply
		// frames, and a reader must never write the shared file.
		arcBytes, rerr := os.ReadFile(opts.Path + ".arc")
		if rerr != nil && !os.IsNotExist(rerr) {
			e.log.Close()
			e.dev.Close()
			return nil, rerr
		}
		e.arc, err = storage.OpenArchiveCopy(arcBytes)
		if err != nil {
			e.log.Close()
			e.dev.Close()
			return nil, err
		}
	default:
		e.lease, err = acquireLease(opts.Path)
		if err != nil {
			return nil, err
		}
		openDev := opts.OpenDevice
		if openDev == nil {
			openDev = func(p string) (storage.Device, error) { return storage.OpenFileDevice(p) }
		}
		openWAL := wal.Open
		if opts.OpenWAL != nil {
			openWAL = opts.OpenWAL
		}
		e.dev, err = openDev(opts.Path)
		if err != nil {
			e.lease.release()
			return nil, err
		}
		// A database is born when its meta page (with magic) lands; FlushAll
		// writes page 0 last, so a crash during the very first flush leaves
		// page 0 all-zero. Such a half-born file holds nothing committed —
		// wipe it and bootstrap from scratch rather than refusing to open.
		if e.dev.NumPages() > 0 {
			buf := make([]byte, storage.PageSize)
			if err := e.dev.ReadPage(0, buf); err != nil {
				e.dev.Close()
				e.lease.release()
				return nil, err
			}
			if allZero(buf) {
				e.dev.Close()
				if err := os.Remove(opts.Path); err != nil {
					e.lease.release()
					return nil, fmt.Errorf("core: wiping half-born database: %w", err)
				}
				os.Remove(opts.Path + ".wal")
				os.Remove(opts.Path + ".arc")
				e.dev, err = openDev(opts.Path)
				if err != nil {
					e.lease.release()
					return nil, err
				}
			}
		}
		e.log, err = openWAL(opts.Path+".wal", wal.Options{SyncOnCommit: opts.SyncOnCommit})
		if err != nil {
			e.dev.Close()
			e.lease.release()
			return nil, err
		}
		openArc := storage.OpenArchive
		if opts.OpenArchive != nil {
			openArc = opts.OpenArchive
		}
		e.arc, err = openArc(opts.Path + ".arc")
		if err != nil {
			e.log.Close()
			e.dev.Close()
			e.lease.release()
			return nil, err
		}
	}
	e.pool = storage.NewBufferPool(e.dev, opts.PoolPages)
	if e.log != nil {
		e.pool.SetFlushHook(e.log.EnsureDurable)
	}
	e.heap = storage.NewHeap(e.pool, nil)
	// Bind (or, with DisableMetrics, sever) component instrumentation.
	// e.metrics is nil when metrics are off, which SetMetrics maps to nil
	// no-op handles throughout.
	e.pool.SetMetrics(e.metrics)
	e.heap.SetMetrics(e.metrics)
	e.arc.SetMetrics(e.metrics)
	if e.log != nil {
		e.log.SetMetrics(e.metrics)
	}

	if e.dev.NumPages() == 0 {
		err = e.bootstrap()
	} else {
		err = e.recoverOrLoad()
	}
	if err != nil {
		e.closeFiles()
		return nil, err
	}
	if e.log != nil {
		e.heap.SetLogger(e.log)
	}
	e.atoms.SetMetrics(e.metrics)
	e.txns = txn.NewManager(e.clock, e.log, e.heap, e.pool)
	e.txns.SetMetrics(e.metrics)
	e.builder = molecule.NewBuilder(e.atoms)
	e.queries = query.NewEngine(e.atoms)
	e.queries.Workers = opts.QueryWorkers
	if e.queries.Workers == 0 {
		e.queries.Workers = runtime.GOMAXPROCS(0)
	}
	e.queries.SetMetrics(e.metrics)
	e.queries.SetTracer(e.tracer)
	if e.metrics != nil {
		// Record how the database came up; after a clean open all recovery
		// gauges read zero.
		e.metrics.Gauge("recovery.records").Set(int64(e.recovery.Records))
		e.metrics.Gauge("recovery.committed").Set(int64(e.recovery.Committed))
		e.metrics.Gauge("recovery.replayed").Set(int64(e.recovery.Replayed))
		e.metrics.Gauge("recovery.torn_bytes").Set(e.recovery.TornBytes)
		if e.Recovered {
			e.metrics.Gauge("recovery.unclean_opens").Set(1)
		}
	}

	// Mark the database dirty on disk so a crash triggers recovery. A
	// read-only open leaves the file exactly as found (the mark would only
	// land in the overlay anyway).
	if opts.Path != "" && !opts.ReadOnly {
		if err := e.persistMeta(false); err != nil {
			e.closeFiles()
			return nil, err
		}
		if err := e.pool.FlushAll(); err != nil {
			e.closeFiles()
			return nil, err
		}
	}
	if opts.Follower && e.log != nil {
		// Everything in the local log is already applied (recovery replayed
		// any unapplied suffix above): the store reflects exactly this LSN.
		e.watermark = e.log.AppendedLSN()
	}
	return e, nil
}

// engineArchive couples the cold-archive store to the WAL: every block
// append is also logged, so a crash mid-migration replays the exact frame
// at the exact offset — the same redo discipline heap pages get. Reads
// bypass the log entirely.
type engineArchive struct {
	arc *storage.Archive
	log *wal.WAL // nil for unlogged (in-memory) engines
}

func (s engineArchive) Append(payload []byte) (uint64, error) {
	off, frame, err := s.arc.Append(payload)
	if err != nil {
		return 0, err
	}
	if s.log != nil {
		s.log.LogArchiveWrite(off, frame)
	}
	return off, nil
}

func (s engineArchive) ReadBlock(off uint64, acc *obs.Resources) ([]byte, error) {
	return s.arc.ReadBlock(off, acc)
}

// archiveSink builds the manager-facing sink for this engine.
func (e *Engine) archiveSink() atom.ArchiveSink {
	return engineArchive{arc: e.arc, log: e.log}
}

// bootstrap formats a fresh database.
func (e *Engine) bootstrap() error {
	if err := storage.InitMeta(e.pool); err != nil {
		return err
	}
	e.schema = schema.New()
	e.schema.Freeze()
	catBytes, err := e.schema.Marshal()
	if err != nil {
		return err
	}
	e.catalogRID, err = e.heap.Insert(catBytes)
	if err != nil {
		return err
	}
	e.atoms, err = atom.NewManager(e.heap, e.pool, e.schema, atom.Options{
		Strategy: e.opts.Strategy, SegmentCap: e.opts.SegmentCap,
		TimeIndex: e.opts.TimeIndex, ValueIndex: e.opts.ValueIndex,
	})
	if err != nil {
		return err
	}
	e.atoms.SetArchive(e.archiveSink())
	return nil
}

// recoverOrLoad opens an existing database, replaying the log and
// rebuilding indexes when the previous shutdown was unclean.
func (e *Engine) recoverOrLoad() error {
	payload, clean, err := storage.ReadMeta(e.pool)
	if err != nil {
		return err
	}
	var meta metaPayload
	if err := json.Unmarshal(payload, &meta); err != nil {
		return fmt.Errorf("core: corrupt meta payload: %w", err)
	}
	strat, ok := atom.ParseStrategy(meta.Strategy)
	if !ok {
		return fmt.Errorf("core: unknown stored strategy %q", meta.Strategy)
	}
	e.opts.Strategy = strat
	e.opts.SegmentCap = meta.SegmentCap
	e.opts.TimeIndex = meta.TimeIndex
	e.opts.ValueIndex = meta.ValueIndex
	if e.opts.Follower {
		// The directory may carry a leader's meta (snapshot bootstrap);
		// follower mode overrides its index flags unconditionally.
		e.opts.TimeIndex = false
		e.opts.ValueIndex = false
		meta.TimeIndex = false
		meta.ValueIndex = false
	}
	e.clock.Advance(meta.Clock)
	e.epoch = meta.Epoch
	e.epochStart = meta.EpochStart
	e.pool.SetFreePages(meta.FreePages)
	// Rewind the archive's append frontier to the committed size: physical
	// bytes past it were staged by migrations that never committed, and the
	// next Append overwrites them. Replay below re-extends the frontier for
	// every committed OpArchiveWrite it re-applies.
	e.arc.SetSize(meta.ArchiveSize)
	if e.log != nil {
		e.log.SetNextLSN(meta.NextLSN)
	}
	if !clean {
		// Sweep for torn writes before anything walks the device: a page
		// the crash left checksum-invalid would otherwise abort the heap
		// scan and index rebuild below and brick the database even when the
		// page held nothing the log cannot reproduce.
		if err := e.quarantineTornPages(meta.Pages); err != nil {
			return err
		}
	}
	if err := e.heap.Rebuild(e.dev); err != nil {
		return err
	}

	if !clean {
		e.Recovered = true
		if e.log == nil {
			return fmt.Errorf("core: database is marked dirty but has no log")
		}
		// The persisted free list predates the crash and may name pages
		// the replayed transactions reused; drop it (leaking the pages is
		// safe, reusing them is not).
		e.pool.SetFreePages(nil)
		rstats, err := e.log.ReplayWith(e.heap, e.arc.WriteFrameAt)
		if err != nil {
			return err
		}
		e.recovery = rstats
		// A promotion's epoch group may have reached the log but not the
		// meta page before the crash; the log wins.
		if rstats.Epoch > e.epoch {
			e.epoch = rstats.Epoch
			e.epochStart = rstats.EpochStart
		}
	}

	e.catalogRID = storage.UnpackRID(meta.CatalogRID)
	catBytes, err := e.heap.Fetch(e.catalogRID)
	if err != nil {
		return fmt.Errorf("core: loading catalog: %w", err)
	}
	e.schema, err = schema.Unmarshal(catBytes)
	if err != nil {
		return err
	}

	mgrOpts := atom.Options{Strategy: strat, SegmentCap: meta.SegmentCap,
		TimeIndex: meta.TimeIndex, ValueIndex: meta.ValueIndex}
	if clean {
		e.atoms, err = atom.OpenManager(e.heap, e.pool, e.schema, mgrOpts, atom.Roots{
			Primary: meta.Primary, Type: meta.TypeIdx, Time: meta.TimeIdx,
			Value: meta.ValueIdx, NextID: meta.NextID,
		})
		if err != nil {
			return err
		}
		e.atoms.SetArchive(e.archiveSink())
		return nil
	}
	// Unclean shutdown: indexes are untrustworthy; rebuild them. The archive
	// must be attached first — the rebuild loads atoms at full fidelity, and
	// a time index missing archived versions would under-approximate
	// candidate sets for deep ASOF queries.
	e.atoms, err = atom.NewManager(e.heap, e.pool, e.schema, mgrOpts)
	if err != nil {
		return err
	}
	e.atoms.SetArchive(e.archiveSink())
	if _, err = e.atoms.RebuildIndexes(e.pool); err != nil {
		return err
	}
	// The persisted clock predates the crash: replayed commits carry
	// transaction times past it. Left behind, the clock would stamp
	// post-recovery commits with already-used transaction instants, and
	// the replayed versions would bitemporally shadow the new ones after
	// the next recovery. Advance past everything the rebuild scan saw.
	e.clock.Advance(e.atoms.MaxTransactionTime())
	return nil
}

// allZero reports whether every byte of buf is zero.
func allZero(buf []byte) bool {
	for _, b := range buf {
		if b != 0 {
			return false
		}
	}
	return true
}

// quarantineTornPages scans the raw device for checksum-invalid pages left
// behind by a torn write at crash time. A bad page at or beyond the crash
// horizon (the device size recorded by the last durable meta write) holds
// only data written after that point, which the log replay reconstructs in
// full — so it is zeroed and left out of circulation. A bad page below the
// horizon held checkpointed, committed state the log no longer covers;
// that damage is unrepairable and must be refused, not papered over.
func (e *Engine) quarantineTornPages(horizon storage.PageID) error {
	if horizon == 0 {
		// Database written before horizon tracking: nothing is provably
		// log-reconstructible, so leave pages alone and let the checksum
		// verification in the fetch path report any damage.
		return nil
	}
	buf := make([]byte, storage.PageSize)
	n := e.dev.NumPages()
	for id := storage.PageID(0); id < n; id++ {
		if err := e.dev.ReadPage(id, buf); err != nil {
			return err
		}
		if storage.VerifyPageChecksum(id, buf) == nil {
			continue
		}
		if id < horizon {
			return fmt.Errorf("core: page %d fails its checksum and predates the last checkpoint; committed data is damaged beyond what the log can repair", id)
		}
		if err := e.pool.ZapPage(id); err != nil {
			return err
		}
	}
	return nil
}

// persistMeta stores the engine state in the meta page.
func (e *Engine) persistMeta(clean bool) error {
	roots := e.atoms.Roots()
	meta := metaPayload{
		Strategy:    e.opts.Strategy.String(),
		SegmentCap:  e.opts.SegmentCap,
		TimeIndex:   e.opts.TimeIndex,
		CatalogRID:  e.catalogRID.Pack(),
		Primary:     roots.Primary,
		TypeIdx:     roots.Type,
		TimeIdx:     roots.Time,
		ValueIdx:    roots.Value,
		ValueIndex:  e.opts.ValueIndex,
		NextID:      roots.NextID,
		Clock:       e.clock.Now(),
		FreePages:   e.pool.FreePages(),
		Pages:       e.dev.NumPages(),
		ArchiveSize: e.arc.Size(),
		Epoch:       e.epoch,
		EpochStart:  e.epochStart,
	}
	if e.log != nil {
		meta.NextLSN = e.log.NextLSN()
	}
	payload, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	return storage.WriteMeta(e.pool, payload, clean)
}

// Checkpoint flushes all state, persists the meta page (marked clean), and
// truncates the log.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.opts.ReadOnly {
		return ErrReadOnly
	}
	return e.checkpointLocked()
}

func (e *Engine) checkpointLocked() error {
	// Order matters: all data pages must be durable before the clean flag
	// is. First flush everything with the meta page still marked dirty,
	// then truncate the log, and only then persist the clean mark.
	if err := e.persistMeta(false); err != nil {
		return err
	}
	// Archive bytes must be durable before the log truncates: the
	// OpArchiveWrite records about to be discarded are their only redo.
	if err := e.arc.Sync(); err != nil {
		return err
	}
	if err := e.txns.Checkpoint(); err != nil {
		return err
	}
	if err := e.persistMeta(true); err != nil {
		return err
	}
	if err := e.pool.FlushAll(); err != nil {
		return err
	}
	e.diskClean = true
	return nil
}

// Close checkpoints and releases the database.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	if e.opts.ReadOnly {
		// Nothing to persist: every internal write went to the overlay.
		return e.closeFiles()
	}
	if err := e.checkpointLocked(); err != nil {
		e.closeFiles()
		return err
	}
	return e.closeFiles()
}

// Crash abandons the database without checkpointing: buffered pages are
// discarded and files are closed as-is, leaving the on-disk state exactly
// as a process crash would. Recovery runs on the next Open. Test support.
func (e *Engine) Crash() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	return e.closeFiles()
}

func (e *Engine) closeFiles() error {
	var firstErr error
	if e.log != nil {
		if err := e.log.Close(); err != nil {
			firstErr = err
		}
	}
	if e.arc != nil {
		if err := e.arc.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if e.dev != nil {
		if err := e.dev.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := e.lease.release(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Schema returns the current (frozen) schema.
func (e *Engine) Schema() *schema.Schema {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.schema
}

// Atoms exposes the atom manager (benchmark and tooling access).
func (e *Engine) Atoms() *atom.Manager { return e.atoms }

// Pool exposes the buffer pool (statistics).
func (e *Engine) Pool() *storage.BufferPool { return e.pool }

// Log exposes the WAL (may be nil).
func (e *Engine) Log() *wal.WAL { return e.log }

// Now returns the engine clock's current instant.
func (e *Engine) Now() temporal.Instant { return e.clock.Now() }

// AdvanceClock moves the engine clock forward to at least t (lets
// applications couple valid time to transaction time).
func (e *Engine) AdvanceClock(t temporal.Instant) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock.Advance(t)
}

// --- DDL -------------------------------------------------------------------

// DefineAtomType adds an atom type to the schema (atomic, durable).
func (e *Engine) DefineAtomType(t schema.AtomType) error {
	return e.ddl(func(s *schema.Schema) error { return s.AddAtomType(t) })
}

// DefineAttribute adds an attribute to an existing atom type (schema
// evolution). Atoms written earlier read Null for it until first updated.
func (e *Engine) DefineAttribute(typeName string, a schema.Attribute) error {
	return e.ddl(func(s *schema.Schema) error { return s.AddAttribute(typeName, a) })
}

// DefineMoleculeType adds a molecule type to the schema.
func (e *Engine) DefineMoleculeType(m schema.MoleculeType) error {
	return e.ddl(func(s *schema.Schema) error { return s.AddMoleculeType(m) })
}

func (e *Engine) ddl(mutate func(*schema.Schema) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.opts.ReadOnly || e.opts.Follower {
		return ErrReadOnly
	}
	next := e.schema.Clone()
	if err := mutate(next); err != nil {
		return err
	}
	next.Freeze()
	catBytes, err := next.Marshal()
	if err != nil {
		return err
	}
	// Persist the catalog atomically through a transaction.
	tx, err := e.txns.Begin()
	if err != nil {
		return err
	}
	if err := e.heap.Update(e.catalogRID, catBytes); err != nil {
		_ = tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	e.schema = next
	e.atoms.SetSchema(next)
	return nil
}

// --- Transactions ------------------------------------------------------------

// Txn is a write transaction over the engine. Mutations carry the
// transaction's TT; they become visible and durable together at Commit.
type Txn struct {
	e     *Engine
	inner *txn.Txn
	// span traces the transaction; its Resources carry the exact WAL bytes
	// the commit appended (single-writer log, so the size delta is exact).
	span *obs.Span
	wal0 int64
}

// Begin starts a write transaction (engine-wide writer exclusion).
func (e *Engine) Begin() (*Txn, error) {
	e.mu.Lock() // held until Commit/Abort
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("core: database closed")
	}
	if e.opts.ReadOnly || e.opts.Follower {
		e.mu.Unlock()
		return nil, ErrReadOnly
	}
	// Re-mark the database dirty before the first write after a
	// checkpoint, so a crash triggers recovery.
	if e.diskClean && e.opts.Path != "" {
		if err := e.persistMeta(false); err != nil {
			e.mu.Unlock()
			return nil, err
		}
		if err := e.pool.FlushPage(0); err != nil {
			e.mu.Unlock()
			return nil, err
		}
	}
	e.diskClean = false
	inner, err := e.txns.Begin()
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	e.atoms.SetIndexUndo(inner)
	tx := &Txn{e: e, inner: inner}
	if e.tracer != nil {
		tx.span = e.tracer.Start(e.tracer.NextTraceID(), "txn")
		if e.log != nil {
			tx.wal0 = e.log.Size()
		}
	}
	return tx, nil
}

// TT returns the transaction's transaction-time instant.
func (t *Txn) TT() temporal.Instant { return t.inner.TT }

// Commit makes the transaction durable and visible. If the log append or
// sync fails, the transaction is rolled back before returning: a failed
// commit must not leave the writer slot held or half-applied state in
// memory, or the engine would be wedged for every later transaction.
func (t *Txn) Commit() error {
	t.e.atoms.SetIndexUndo(nil)
	err := t.inner.Commit()
	if err != nil {
		_ = t.inner.Abort()
	}
	if t.span != nil {
		// Measure after the commit record lands so the delta covers it.
		if t.e.log != nil {
			if d := t.e.log.Size() - t.wal0; d > 0 {
				t.span.Account(obs.Resources{WALBytes: uint64(d)})
			}
		}
		if err != nil {
			t.span.End("error: " + err.Error())
		} else {
			t.span.End("committed")
		}
	}
	t.e.mu.Unlock()
	return err
}

// Abort rolls the transaction back.
func (t *Txn) Abort() error {
	t.e.atoms.SetIndexUndo(nil)
	err := t.inner.Abort()
	t.span.End("aborted")
	t.e.mu.Unlock()
	return err
}

// Insert creates an atom alive from validFrom.
func (t *Txn) Insert(typeName string, vals map[string]value.V, validFrom temporal.Instant) (value.ID, error) {
	return t.e.atoms.Insert(typeName, vals, validFrom, t.inner.TT)
}

// Update records a new attribute value over iv.
func (t *Txn) Update(id value.ID, attr string, v value.V, iv temporal.Interval) error {
	return t.e.atoms.UpdateAttr(id, attr, v, iv, t.inner.TT)
}

// Set records a new attribute value from validFrom on (the common case).
func (t *Txn) Set(id value.ID, attr string, v value.V, validFrom temporal.Instant) error {
	return t.e.atoms.UpdateAttr(id, attr, v, temporal.Open(validFrom), t.inner.TT)
}

// AddRef attaches target to a many-reference over iv.
func (t *Txn) AddRef(id value.ID, attr string, target value.ID, iv temporal.Interval) error {
	return t.e.atoms.AddRef(id, attr, target, iv, t.inner.TT)
}

// RemoveRef detaches target from a many-reference over iv.
func (t *Txn) RemoveRef(id value.ID, attr string, target value.ID, iv temporal.Interval) error {
	return t.e.atoms.RemoveRef(id, attr, target, iv, t.inner.TT)
}

// Delete ends an atom's existence from valid time `from` on.
func (t *Txn) Delete(id value.ID, from temporal.Instant) error {
	return t.e.atoms.Delete(id, from, t.inner.TT)
}

// Revive resumes a deleted atom's existence from valid time `from` on.
func (t *Txn) Revive(id value.ID, from temporal.Instant) error {
	return t.e.atoms.Revive(id, from, t.inner.TT)
}

// --- Reads -------------------------------------------------------------------

// StateAt returns one atom's state at (vt, tt). Pass atom.Now as tt for
// the latest recorded state.
func (e *Engine) StateAt(id value.ID, vt, tt temporal.Instant) (*atom.State, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.atoms.StateAt(id, vt, tt)
}

// History returns an attribute's valid-time history at transaction time tt.
func (e *Engine) History(id value.ID, attr string, tt temporal.Instant) ([]atom.Version, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.atoms.History(id, attr, tt)
}

// Molecule materializes a complex object at (vt, tt).
func (e *Engine) Molecule(molType string, root value.ID, vt, tt temporal.Instant) (*molecule.Molecule, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	mt, ok := e.schema.MoleculeType(molType)
	if !ok {
		return nil, fmt.Errorf("core: unknown molecule type %q", molType)
	}
	return e.builder.Materialize(mt, root, vt, tt)
}

// MoleculeHistory returns the step-wise history of a complex object.
func (e *Engine) MoleculeHistory(molType string, root value.ID, window temporal.Interval, tt temporal.Instant) ([]molecule.HistoryStep, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	mt, ok := e.schema.MoleculeType(molType)
	if !ok {
		return nil, fmt.Errorf("core: unknown molecule type %q", molType)
	}
	return e.builder.History(mt, root, window, tt)
}

// Vacuum purges versions that left the recorded state before transaction
// time beforeTT, reclaiming space while preserving every answer for
// tt >= beforeTT. Runs as a single transaction; beforeTT must not exceed
// the current clock.
func (e *Engine) Vacuum(beforeTT temporal.Instant) (int, error) {
	if beforeTT > e.clock.Now() {
		return 0, atom.ErrVacuumFuture
	}
	tx, err := e.Begin()
	if err != nil {
		return 0, err
	}
	removed, err := e.atoms.Vacuum(beforeTT)
	if err != nil {
		_ = tx.Abort()
		return 0, err
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return removed, nil
}

// Compact coalesces adjacent equal-valued history steps whose transaction
// intervals closed before beforeTT and whose valid intervals abut — stage
// one of the tiering pipeline. Every query at tt >= beforeTT answers
// identically afterwards. Returns the number of version pairs merged.
func (e *Engine) Compact(beforeTT temporal.Instant) (int, error) {
	if beforeTT > e.clock.Now() {
		return 0, atom.ErrVacuumFuture
	}
	tx, err := e.Begin()
	if err != nil {
		return 0, err
	}
	merged, err := e.atoms.Compact(beforeTT)
	if err != nil {
		_ = tx.Abort()
		return 0, err
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return merged, nil
}

// ArchiveResult reports what one tiering run moved.
type ArchiveResult struct {
	Compacted int // version pairs coalesced (stage one)
	Archived  int // versions/snapshots migrated to the cold archive (stage two)
}

// Archive runs the full tiering pipeline in one transaction: compact the
// history below beforeTT, then migrate transaction-closed versions older
// than that watermark into the cold archive, leaving a per-atom archive
// pointer in the hot store. Queries at tt >= beforeTT answer byte-
// identically; deeper ASOF reads transparently chain into the archive.
// The cut-over is WAL-logged record by record, so a crash at any point
// replays to a consistent state; on abort the archive's append frontier
// rolls back and the staged bytes are overwritten by the next run.
func (e *Engine) Archive(beforeTT temporal.Instant) (ArchiveResult, error) {
	var res ArchiveResult
	if beforeTT > e.clock.Now() {
		return res, atom.ErrVacuumFuture
	}
	tx, err := e.Begin()
	if err != nil {
		return res, err
	}
	size0 := e.arc.Size()
	res.Compacted, err = e.atoms.Compact(beforeTT)
	if err == nil {
		res.Archived, err = e.atoms.ArchiveOlderThan(beforeTT)
	}
	if err != nil {
		// Roll the staged archive bytes back while the writer lock is still
		// held (Abort releases it): the frontier retreat and the heap undo
		// must be observed together.
		e.arc.SetSize(size0)
		_ = tx.Abort()
		return ArchiveResult{}, err
	}
	if err := tx.Commit(); err != nil {
		e.arc.SetSize(size0)
		return ArchiveResult{}, err
	}
	return res, nil
}

// ArchiveStore exposes the cold archive (statistics, replication, tooling).
func (e *Engine) ArchiveStore() *storage.Archive { return e.arc }

// Query runs a TMQL statement. Queries without an AT clause slice at the
// engine clock's current instant. Each run is timed into the query.ns
// histogram and offered to the slow-query log.
func (e *Engine) Query(src string) (*query.Result, error) {
	return e.QueryCtx(context.Background(), src)
}

// QueryCtx runs a TMQL statement under ctx: cancellation or deadline
// expiry stops execution at the next operator-loop boundary and returns
// the context's error.
func (e *Engine) QueryCtx(ctx context.Context, src string) (*query.Result, error) {
	return e.QueryWith(ctx, src, QueryOptions{})
}

// QueryOptions carry per-call session state for QueryWith. The zero value
// reproduces Query's behaviour exactly.
type QueryOptions struct {
	// VT overrides the default valid-time slice point for queries without
	// an AT clause (nil = the engine clock's now).
	VT *temporal.Instant
	// TT overrides the default transaction time for queries without an
	// ASOF clause (nil = the latest recorded state). A server session
	// pins this to realize repeatable reads across a conversation.
	TT *temporal.Instant
	// SlowThreshold force-records the query into the slow log when its
	// duration meets it, independent of the engine-wide threshold
	// (0 = engine threshold only). Per-session knob of the query server.
	SlowThreshold time.Duration
	// Trace is the distributed trace id this query runs under; 0 asks the
	// engine to allocate one when tracing is enabled. Parent is the span
	// the engine's exec span attaches to (the server's root query span;
	// 0 = the exec span is the trace root).
	Trace  uint64
	Parent uint64
}

// QueryWith runs a TMQL statement under ctx with explicit session
// defaults. Each run is timed into the query.ns histogram and offered to
// the slow-query log.
func (e *Engine) QueryWith(ctx context.Context, src string, opts QueryOptions) (*query.Result, error) {
	trace := opts.Trace
	if trace == 0 {
		trace = e.tracer.NextTraceID() // nil-safe: 0 when tracing is off
	}
	exec := e.tracer.StartSpan(trace, opts.Parent, "exec")

	e.mu.RLock()
	def := query.Defaults{VT: e.clock.Now(), Trace: trace, Span: exec.ID()}
	if opts.VT != nil {
		def.VT = *opts.VT
	}
	if opts.TT != nil {
		def.TT = *opts.TT
	}
	start := time.Now()
	res, err := e.queries.RunCtx(ctx, src, def)
	dur := time.Since(start)
	e.mu.RUnlock()

	e.queryRuns.Inc()
	e.queryNS.Observe(dur)
	if err != nil {
		exec.End("error: " + err.Error())
		return res, err
	}
	rows := len(res.Rows) + len(res.Molecules)
	exec.Account(res.Res)
	exec.End(fmt.Sprintf("rows=%d", rows))
	recorded := e.slow.Observe(src, dur, rows, res.Plan, trace)
	if !recorded && opts.SlowThreshold > 0 && dur >= opts.SlowThreshold {
		e.slow.Record(src, dur, rows, res.Plan, trace)
		recorded = true
	}
	if recorded {
		e.tracer.Point(trace, "slow-query", fmt.Sprintf("dur=%s rows=%d", dur, rows))
	}
	return res, err
}

// SetQueryWorkers adjusts intra-query parallelism at runtime (the ncores
// sweep in tcobench re-runs one workload across worker counts without
// rebuilding the database). n <= 1 forces the exact serial path. Takes the
// writer lock so in-flight queries never observe the change mid-run.
func (e *Engine) SetQueryWorkers(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queries.Workers = n
}

// IDs lists the atoms of a type.
func (e *Engine) IDs(typeName string) ([]value.ID, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.atoms.IDs(typeName)
}

// Stats aggregates engine statistics.
type Stats struct {
	Atoms        int
	Pool         storage.PoolStats
	AtomLayer    atom.Stats
	LogBytes     int64
	DevicePags   storage.PageID
	ArchiveBytes uint64
}

// Stats returns a snapshot of engine statistics.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := Stats{
		Atoms:        e.atoms.Count(),
		Pool:         e.pool.Stats(),
		AtomLayer:    e.atoms.Stats(),
		DevicePags:   e.dev.NumPages(),
		ArchiveBytes: e.arc.Size(),
	}
	if e.log != nil {
		s.LogBytes = e.log.Size()
	}
	return s
}

// Metrics exposes the engine-wide metric registry (nil when metrics are
// disabled).
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// SlowLog exposes the slow-query log (never nil; threshold 0 = disabled).
func (e *Engine) SlowLog() *obs.SlowLog { return e.slow }

// Tracer exposes the engine event ring (nil when metrics are disabled).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// RecoveryStats returns the WAL replay statistics from this open. All
// zeros when the previous shutdown was clean (check Recovered).
func (e *Engine) RecoveryStats() wal.RecoveryStats { return e.recovery }

// CounterSnapshot returns every registered counter by name — the
// machine-readable form used by tcobench's BENCH_*.json and the debug
// endpoint. Nil when metrics are disabled.
func (e *Engine) CounterSnapshot() map[string]uint64 {
	if e.metrics == nil {
		return nil
	}
	return e.metrics.Counters()
}

// PublishDebugVars exposes this engine's metric snapshot through the
// expvar endpoint (`/debug/vars`, key "tcodm"). Only one engine per
// process can be published at a time; pass through obs.SetDebugVars(nil)
// semantics by calling with a closed engine is not needed — the snapshot
// function only touches the registry, which outlives Close.
func (e *Engine) PublishDebugVars() {
	if e.metrics == nil {
		return
	}
	obs.SetMetricsSource(e.metrics)
	obs.SetTraceSource(e.tracer)
	obs.SetDebugVars(func() any {
		snap := e.metrics.Snapshot()
		snap["slowlog"] = map[string]any{
			"total":     e.slow.Total(),
			"threshold": e.slow.Threshold().String(),
		}
		snap["recovery"] = e.recovery
		return snap
	})
}

// interface assertions
var _ storage.RedoLogger = (*wal.WAL)(nil)
var _ atom.IndexUndo = (*txn.Txn)(nil)
