package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// TestCrashTorture drives a random committed workload against a file-backed
// database, snapshotting the on-disk files after random commits (simulated
// crashes), then recovers each snapshot and verifies that every transaction
// committed before the crash point is fully present with the exact expected
// time-sliced values. This is the end-to-end check that the WAL + no-steal
// + page-LSN-redo + index-rebuild pipeline composes correctly.
func TestCrashTorture(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torture.tdb")
	// A tiny pool forces evictions mid-transaction, stressing no-steal and
	// the WAL rule.
	e, err := Open(Options{Path: path, SyncOnCommit: true, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defineTestSchema(t, e)

	type expectation struct {
		id   value.ID
		vt   temporal.Instant
		attr string
		want value.V
	}
	// expected accumulates (atom, vt) -> value facts established by
	// committed transactions, keyed by crash snapshot index.
	var committed []expectation
	type snapshot struct {
		path  string
		facts int // committed facts guaranteed present
	}
	var snaps []snapshot

	rng := rand.New(rand.NewSource(77))
	var ids []value.ID
	vt := temporal.Instant(0)
	for op := 0; op < 120; op++ {
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case len(ids) < 10 || rng.Intn(4) == 0:
			name := fmt.Sprintf("t%d", op)
			sal := value.Int(int64(rng.Intn(10000)))
			id, err := tx.Insert("Emp", map[string]value.V{
				"name": value.String_(name), "salary": sal,
			}, vt)
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(3) == 0 { // some transactions abort
				_ = tx.Abort()
				break
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			committed = append(committed, expectation{id: id, vt: vt, attr: "salary", want: sal})
		default:
			id := ids[rng.Intn(len(ids))]
			vt += temporal.Instant(1 + rng.Intn(3))
			sal := value.Int(int64(rng.Intn(10000)))
			if err := tx.Set(id, "salary", sal, vt); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(4) == 0 {
				_ = tx.Abort()
				break
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			committed = append(committed, expectation{id: id, vt: vt, attr: "salary", want: sal})
		}
		// Random crash snapshot after a commit boundary.
		if rng.Intn(10) == 0 {
			snapPath := filepath.Join(dir, fmt.Sprintf("snap%d.tdb", len(snaps)))
			crashCloneFiles(t, path, snapPath)
			snaps = append(snaps, snapshot{path: snapPath, facts: len(committed)})
		}
	}
	_ = e.Crash()
	snaps = append(snaps, snapshot{path: path, facts: len(committed)})

	for si, snap := range snaps {
		e2, err := Open(Options{Path: snap.path})
		if err != nil {
			t.Fatalf("snapshot %d: open: %v", si, err)
		}
		for fi := 0; fi < snap.facts; fi++ {
			f := committed[fi]
			// A later committed update (also before the crash) may have
			// superseded this fact at the same vt; find the latest fact
			// for (id, vt) within the crash horizon.
			want := f.want
			for fj := fi + 1; fj < snap.facts; fj++ {
				g := committed[fj]
				if g.id == f.id && g.vt <= f.vt {
					want = g.want
				}
			}
			st, err := e2.StateAt(f.id, f.vt, atom.Now)
			if err != nil {
				t.Fatalf("snapshot %d: atom %v lost: %v", si, f.id, err)
			}
			if got := st.Vals[f.attr]; !got.Equal(want) {
				t.Fatalf("snapshot %d: %v.%s at vt=%v = %v, want %v",
					si, f.id, f.attr, f.vt, got, want)
			}
		}
		// The engine keeps working after recovery.
		tx, err := e2.Begin()
		if err != nil {
			t.Fatalf("snapshot %d: begin after recovery: %v", si, err)
		}
		if _, err := tx.Insert("Emp", map[string]value.V{"name": value.String_("post")}, vt); err != nil {
			t.Fatalf("snapshot %d: insert after recovery: %v", si, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("snapshot %d: commit after recovery: %v", si, err)
		}
		if err := e2.Close(); err != nil {
			t.Fatalf("snapshot %d: close: %v", si, err)
		}
	}
	if len(snaps) < 3 {
		t.Fatalf("only %d crash snapshots exercised", len(snaps))
	}
}

func crashCloneFiles(t *testing.T, path, dest string) {
	t.Helper()
	for _, suffix := range []string{"", ".wal"} {
		data, err := os.ReadFile(path + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dest+suffix, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
