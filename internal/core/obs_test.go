package core

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tcodm/internal/atom"
	"tcodm/internal/value"
)

// workload runs a small insert/update/query mix so every instrumented
// layer sees traffic.
func workload(t *testing.T, e *Engine) {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	d, err := tx.Insert("Dept", map[string]value.V{"name": value.String_("obs"), "budget": value.Int(7)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := tx.Insert("Emp", map[string]value.V{
			"name": value.String_("e"), "salary": value.Int(int64(1000 * (i + 1))), "dept": value.Ref(d),
		}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`SELECT (name, salary) FROM Emp WHERE salary > 2000 AT 10`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`SELECT ALL FROM DeptStaff AT 10`); err != nil {
		t.Fatal(err)
	}
}

// TestEngineMetricsWiring verifies that an ordinary workload drives the
// per-layer counters the acceptance criteria name: pool traffic, atom
// version-chain activity, transaction commits, and query runs.
func TestEngineMetricsWiring(t *testing.T) {
	e := openMem(t, atom.StrategySeparated)
	workload(t, e)

	counters := e.CounterSnapshot()
	if counters == nil {
		t.Fatal("CounterSnapshot returned nil with metrics enabled")
	}
	for _, name := range []string{"pool.hits", "heap.fetches", "atom.fast_loads", "txn.commits", "query.runs"} {
		if counters[name] == 0 {
			t.Errorf("counter %s = 0, want > 0 (all: %v)", name, counters)
		}
	}
	if e.Metrics().Histogram("query.ns").Count() == 0 {
		t.Error("query.ns histogram recorded nothing")
	}
}

// TestEngineWALMetrics checks the durable path: commits must show up as
// WAL appends and fsyncs.
func TestEngineWALMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.tdb")
	e, err := Open(Options{Path: path, SyncOnCommit: true, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	defineTestSchema(t, e)
	workload(t, e)

	counters := e.CounterSnapshot()
	if counters["wal.appends"] == 0 || counters["wal.fsyncs"] == 0 {
		t.Errorf("wal.appends=%d wal.fsyncs=%d, want both > 0",
			counters["wal.appends"], counters["wal.fsyncs"])
	}
}

// TestDisableMetrics verifies the kill switch: no registry, nil snapshot,
// and the engine still works.
func TestDisableMetrics(t *testing.T) {
	e, err := Open(Options{Strategy: atom.StrategySeparated, DisableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	defineTestSchema(t, e)
	workload(t, e)
	if e.Metrics() != nil {
		t.Error("Metrics() should be nil when disabled")
	}
	if e.CounterSnapshot() != nil {
		t.Error("CounterSnapshot() should be nil when disabled")
	}
	if e.Tracer() != nil {
		t.Error("Tracer() should be nil when disabled")
	}
}

// TestSlowQueryLog sets a zero-distance threshold so every query is slow,
// then checks the log captured text and row counts.
func TestSlowQueryLog(t *testing.T) {
	e, err := Open(Options{Strategy: atom.StrategySeparated, SlowQueryThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	defineTestSchema(t, e)
	workload(t, e)

	if e.SlowLog().Total() == 0 {
		t.Fatal("slow log captured nothing at 1ns threshold")
	}
	entries := e.SlowLog().Entries()
	found := false
	for _, en := range entries {
		if strings.Contains(en.Query, "FROM Emp") {
			found = true
			if en.Dur <= 0 {
				t.Errorf("slow entry has non-positive duration: %+v", en)
			}
		}
	}
	if !found {
		t.Errorf("no slow entry for the Emp query: %+v", entries)
	}

	// Raising the threshold stops collection.
	before := e.SlowLog().Total()
	e.SlowLog().SetThreshold(time.Hour)
	if _, err := e.Query(`SELECT (name) FROM Emp AT 10`); err != nil {
		t.Fatal(err)
	}
	if e.SlowLog().Total() != before {
		t.Error("slow log grew past an hour-long threshold")
	}
}

// TestRecoveryStatsRecorded exercises the crash path and checks that the
// replay statistics — formerly computed and discarded — surface through
// RecoveryStats() and the recovery.* gauges.
func TestRecoveryStatsRecorded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.tdb")
	e, err := Open(Options{Path: path, Strategy: atom.StrategySeparated, SyncOnCommit: true, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defineTestSchema(t, e)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx, _ := e.Begin()
	if _, err := tx.Insert("Dept", map[string]value.V{"name": value.String_("x"), "budget": value.Int(1)}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	crashed := filepath.Join(dir, "crashed.tdb")
	crashClone(t, path, crashed)
	_ = e.Close()

	e2, err := Open(Options{Path: crashed})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !e2.Recovered {
		t.Fatal("clone not flagged as recovered")
	}
	rs := e2.RecoveryStats()
	if rs.Records == 0 || rs.Committed == 0 {
		t.Errorf("recovery stats not captured: %+v", rs)
	}
	if g := e2.Metrics().Gauge("recovery.records").Value(); g != int64(rs.Records) {
		t.Errorf("recovery.records gauge = %d, want %d", g, rs.Records)
	}
	if e2.Metrics().Gauge("recovery.unclean_opens").Value() != 1 {
		t.Error("recovery.unclean_opens gauge not set")
	}

	// A clean reopen reports all-zero recovery stats.
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, err := Open(Options{Path: crashed})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if e3.Recovered {
		t.Error("clean reopen flagged as recovered")
	}
	if rs := e3.RecoveryStats(); rs.Records != 0 || rs.Replayed != 0 {
		t.Errorf("clean open carries recovery stats: %+v", rs)
	}
}
