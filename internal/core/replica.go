// Replication and read-only support: the engine-side half of the WAL-
// shipping subsystem (internal/repl drives the network protocol).
//
//   - Read-only opens run the whole engine — including crash-recovery
//     replay — against a copy-on-write overlay device, so nothing ever
//     reaches the shared file. No writer lease is taken.
//   - Follower opens are writable (the follower owns its directory and
//     holds its lease) but refuse user transactions; their only write path
//     is ApplyReplicated, which appends shipped commit groups to the local
//     WAL and replays them through the idempotent redo path.
//   - Snapshot streams a point-in-time copy of the store for follower
//     bootstrap; DigestStore hashes the logical store content, the
//     convergence check of the replication chaos harness.
package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"tcodm/internal/schema"
	"tcodm/internal/storage"
	"tcodm/internal/wal"
)

// ErrReadOnly reports a write attempted through a read-only or follower
// engine. Followers accept writes only from the replication stream; route
// user writes to the leader.
var ErrReadOnly = errors.New("core: database opened read-only")

// --- read-only device plumbing ---------------------------------------------

// roFileDevice is a page device over a file opened without write access.
// Unlike storage.OpenFileDevice it never repairs a torn tail page (that
// would mutate a file another process owns); a trailing partial page is
// simply not visible.
type roFileDevice struct {
	mu    sync.Mutex
	f     *os.File
	pages storage.PageID
}

func openReadOnlyDevice(path string) (*roFileDevice, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: open read-only device: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("core: stat read-only device: %w", err)
	}
	return &roFileDevice{f: f, pages: storage.PageID(info.Size() / storage.PageSize)}, nil
}

func (d *roFileDevice) ReadPage(id storage.PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id >= d.pages {
		return fmt.Errorf("core: read of page %d beyond device end %d", id, d.pages)
	}
	_, err := d.f.ReadAt(buf, int64(id)*storage.PageSize)
	return err
}

func (d *roFileDevice) WritePage(id storage.PageID, buf []byte) error {
	return fmt.Errorf("core: write to read-only device")
}

func (d *roFileDevice) NumPages() storage.PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

func (d *roFileDevice) Sync() error  { return nil }
func (d *roFileDevice) Close() error { return d.f.Close() }

// overlayDevice absorbs every write into memory, reading through to the
// base for untouched pages. It is what lets a read-only open reuse the
// stock engine paths — recovery replay, index rebuild, meta re-marking —
// unchanged: they all "write", and none of it reaches the file.
type overlayDevice struct {
	mu    sync.Mutex
	base  storage.Device
	mem   map[storage.PageID][]byte
	pages storage.PageID
}

func newOverlayDevice(base storage.Device) *overlayDevice {
	return &overlayDevice{base: base, mem: map[storage.PageID][]byte{}, pages: base.NumPages()}
}

func (d *overlayDevice) ReadPage(id storage.PageID, buf []byte) error {
	d.mu.Lock()
	if p, ok := d.mem[id]; ok {
		copy(buf, p)
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()
	return d.base.ReadPage(id, buf)
}

func (d *overlayDevice) WritePage(id storage.PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id > d.pages {
		return fmt.Errorf("core: overlay write to page %d would leave a hole (device has %d)", id, d.pages)
	}
	d.mem[id] = append([]byte(nil), buf...)
	if id == d.pages {
		d.pages++
	}
	return nil
}

func (d *overlayDevice) NumPages() storage.PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

func (d *overlayDevice) Sync() error  { return nil }
func (d *overlayDevice) Close() error { return d.base.Close() }

// --- follower apply ---------------------------------------------------------

// ApplyReplicated durably appends shipped WAL commit groups to the
// follower's local log and replays them into the store, maintaining the
// primary and type indexes incrementally and reloading the schema when the
// batch rewrites the catalog. Groups already applied (reconnect overlap)
// are skipped. Returns the new watermark: the highest LSN the store now
// reflects.
func (e *Engine) ApplyReplicated(recs []wal.Record) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, fmt.Errorf("core: database closed")
	}
	if !e.opts.Follower {
		return 0, fmt.Errorf("core: ApplyReplicated on a non-follower engine")
	}
	if len(recs) == 0 {
		return e.watermark, nil
	}
	// Same dirty-marking discipline as Begin: the meta page must carry the
	// dirty flag on disk before any replayed page can reach the device.
	if e.diskClean && e.opts.Path != "" {
		if err := e.persistMeta(false); err != nil {
			return 0, err
		}
		if err := e.pool.FlushPage(0); err != nil {
			return 0, err
		}
	}
	e.diskClean = false
	// Local WAL first: once appended, a crash at any point replays these
	// groups through stock recovery — the follower is just a crash-safe
	// engine whose "user" is the leader's log.
	fresh, err := e.log.AppendGroups(recs)
	if err != nil {
		return 0, err
	}
	for _, r := range fresh {
		switch r.Op {
		case wal.OpHeapInsert:
			if err := e.heap.RedoInsert(r.RID, r.Data, r.LSN); err != nil {
				return 0, fmt.Errorf("core: apply LSN %d: %w", r.LSN, err)
			}
			if err := e.atoms.NoteInsert(r.RID, r.Data); err != nil {
				return 0, fmt.Errorf("core: index note at LSN %d: %w", r.LSN, err)
			}
		case wal.OpHeapUpdate:
			if err := e.heap.RedoUpdate(r.RID, r.Data, r.LSN); err != nil {
				return 0, fmt.Errorf("core: apply LSN %d: %w", r.LSN, err)
			}
			if r.RID == e.catalogRID {
				next, err := schema.Unmarshal(r.Data)
				if err != nil {
					return 0, fmt.Errorf("core: replicated catalog at LSN %d: %w", r.LSN, err)
				}
				e.schema = next
				e.atoms.SetSchema(next)
			} else if err := e.atoms.NoteUpdate(r.RID, r.Data); err != nil {
				return 0, fmt.Errorf("core: index note at LSN %d: %w", r.LSN, err)
			}
		case wal.OpHeapDelete:
			// The pre-image names the index entries the delete invalidates;
			// deletes are logged without data, so fetch it before applying.
			old, ferr := e.heap.Fetch(r.RID)
			if err := e.heap.RedoDelete(r.RID, r.LSN); err != nil {
				return 0, fmt.Errorf("core: apply LSN %d: %w", r.LSN, err)
			}
			if ferr == nil {
				if err := e.atoms.NoteDelete(r.RID, old); err != nil {
					return 0, fmt.Errorf("core: index note at LSN %d: %w", r.LSN, err)
				}
			}
		case wal.OpArchiveWrite:
			// Cold-archive block from a leader-side tiering run: reproduce
			// the frame at its offset. Only the leader archives (followers
			// refuse user transactions), so both archives grow through this
			// one path and stay byte-identical by construction.
			if len(r.Data) < 8 {
				return 0, fmt.Errorf("core: archive record at LSN %d too short (%d bytes)", r.LSN, len(r.Data))
			}
			if err := e.arc.WriteFrameAt(binary.LittleEndian.Uint64(r.Data), r.Data[8:]); err != nil {
				return 0, fmt.Errorf("core: apply archive LSN %d: %w", r.LSN, err)
			}
		case wal.OpEpoch:
			// A promotion upstream: adopt the higher epoch. The epoch's
			// start LSN is the frontier just before the record itself.
			if len(r.Data) < 8 {
				return 0, fmt.Errorf("core: epoch record at LSN %d too short (%d bytes)", r.LSN, len(r.Data))
			}
			if v := binary.LittleEndian.Uint64(r.Data); v > e.epoch {
				e.epoch = v
				e.epochStart = r.LSN - 1
			}
		case wal.OpCommit:
			// Group boundary; nothing to apply.
		default:
			return 0, fmt.Errorf("core: unknown replicated op %d at LSN %d", r.Op, r.LSN)
		}
	}
	// Replayed versions carry the leader's transaction times; the local
	// clock must not lag them or default reads would miss applied state.
	e.clock.Advance(e.atoms.MaxTransactionTime())
	e.watermark = e.log.AppendedLSN()
	return e.watermark, nil
}

// Watermark returns the highest LSN this store reflects: the replication
// watermark on a follower, the appended LSN on a leader, 0 for an
// in-memory engine (no log, no LSNs).
func (e *Engine) Watermark() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.opts.Follower {
		return e.watermark
	}
	if e.log != nil {
		return e.log.AppendedLSN()
	}
	return 0
}

// IsFollower reports whether this engine applies a replication stream.
func (e *Engine) IsFollower() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.opts.Follower
}

// IsReadOnly reports whether this engine refuses user writes.
func (e *Engine) IsReadOnly() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.opts.ReadOnly || e.opts.Follower
}

// Epoch returns the replication epoch this store last observed (0 before
// any promotion anywhere in its history).
func (e *Engine) Epoch() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.epoch
}

// EpochStart returns the appended LSN at which the current epoch began:
// every LSN at or below it belongs to pre-promotion history, every one
// above it to the current leader. 0 before any promotion.
func (e *Engine) EpochStart() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.epochStart
}

// Promote turns a follower engine into a writable leader: the epoch is
// bumped past both the local store's and the given observed epoch (the
// highest this node ever heard from its leader), an [OpEpoch, OpCommit]
// group is durably appended — so the bump replicates to this node's own
// followers and survives any crash — and user transactions are accepted
// from then on. The returned epoch fences the old leader: a Source at
// this epoch refuses subscribers whose history extends past the epoch's
// start LSN at a lower epoch.
//
// Promotion does not rebuild the optional time/value indexes a follower
// runs without; the promoted store answers every query correctly through
// scans (see DESIGN.md §15 for the full contract).
func (e *Engine) Promote(observedEpoch uint64) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, fmt.Errorf("core: database closed")
	}
	if !e.opts.Follower {
		return 0, fmt.Errorf("core: promote on a non-follower engine")
	}
	newEpoch := e.epoch
	if observedEpoch > newEpoch {
		newEpoch = observedEpoch
	}
	newEpoch++
	start := e.log.AppendedLSN()
	// Same dirty-marking discipline as Begin: the meta page must carry the
	// dirty flag on disk before the epoch group's effects can matter.
	if e.diskClean && e.opts.Path != "" {
		if err := e.persistMeta(false); err != nil {
			return 0, err
		}
		if err := e.pool.FlushPage(0); err != nil {
			return 0, err
		}
	}
	e.diskClean = false
	if _, err := e.log.AppendEpochGroup(newEpoch); err != nil {
		return 0, err
	}
	e.epoch = newEpoch
	e.epochStart = start
	e.opts.Follower = false
	e.watermark = e.log.AppendedLSN()
	return newEpoch, nil
}

// --- snapshot + digest ------------------------------------------------------

// Snapshot checkpoints the store and streams a point-in-time copy to w,
// holding the writer lock throughout (writes stall for the duration; the
// follower count makes that a rare, explicit cost). The stream is an
// 8-byte big-endian device byte count, the device pages, then the cold
// archive's logical content — the receiver splits it back into the two
// files. offer is called once before the first byte with the LSN the log
// stream resumes from and the exact byte size; the SHA-256 digest of the
// streamed bytes is returned for end-to-end verification.
func (e *Engine) Snapshot(offer func(startLSN, size uint64) error, w io.Writer) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("core: database closed")
	}
	if e.log == nil {
		return nil, fmt.Errorf("core: in-memory database cannot be snapshotted (no log)")
	}
	// After a checkpoint the device plus archive are the complete store:
	// every page is flushed, the archive is synced, the meta (carrying the
	// archive's committed size) is clean, and the log is empty.
	if err := e.checkpointLocked(); err != nil {
		return nil, err
	}
	n := e.dev.NumPages()
	devBytes := uint64(n) * storage.PageSize
	size := 8 + devBytes + e.arc.Size()
	if err := offer(e.log.NextLSN(), size); err != nil {
		return nil, err
	}
	h := sha256.New()
	out := io.MultiWriter(w, h)
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], devBytes)
	if _, err := out.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("core: snapshot write: %w", err)
	}
	buf := make([]byte, storage.PageSize)
	for id := storage.PageID(0); id < n; id++ {
		if err := e.dev.ReadPage(id, buf); err != nil {
			return nil, fmt.Errorf("core: snapshot page %d: %w", id, err)
		}
		if _, err := out.Write(buf); err != nil {
			return nil, fmt.Errorf("core: snapshot write: %w", err)
		}
	}
	if _, err := e.arc.WriteContent(out); err != nil {
		return nil, fmt.Errorf("core: snapshot archive: %w", err)
	}
	return h.Sum(nil), nil
}

// DigestStore hashes the logical store content: every live record in home-
// RID order with its resolved payload. Leader and follower digests are
// equal exactly when they answer every query identically — physical page
// images may differ (index pages are unlogged, locally-allocated state,
// and the two sides make independent record-relocation decisions), which
// is why convergence is defined over this digest and not file bytes. The
// scan's visit order itself leaks placement (relocated records surface in
// a second pass), so records are sorted by home RID before hashing.
func (e *Engine) DigestStore() ([]byte, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	type rec struct {
		rid  storage.RID
		data []byte
	}
	var recs []rec
	err := e.heap.Scan(func(rid storage.RID, data []byte) (bool, error) {
		recs = append(recs, rec{rid: rid, data: data})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].rid.Pack() < recs[j].rid.Pack() })
	h := sha256.New()
	var scratch [12]byte
	for _, r := range recs {
		packRIDLen(scratch[:], r.rid, len(r.data))
		h.Write(scratch[:])
		h.Write(r.data)
	}
	// The cold archive is part of the logical store: hot records hold
	// pointers into it, and a leader/follower pair must agree on what those
	// pointers resolve to. Its content is append-only and written through
	// one replicated path, so hashing the raw logical bytes is placement-
	// independent. The length frame separates it from the record section.
	var arcLen [8]byte
	binary.BigEndian.PutUint64(arcLen[:], e.arc.Size())
	h.Write(arcLen[:])
	if _, err := e.arc.WriteContent(h); err != nil {
		return nil, err
	}
	return h.Sum(nil), nil
}

// packRIDLen encodes (rid, payload length) into buf — the record framing
// of the store digest.
func packRIDLen(buf []byte, rid storage.RID, n int) {
	v := rid.Pack()
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (56 - 8*i))
	}
	for i := 0; i < 4; i++ {
		buf[8+i] = byte(uint32(n) >> (24 - 8*i))
	}
}
