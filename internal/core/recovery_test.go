package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// verifySalaries checks every employee's salary history against the
// expected per-update values.
func verifySalaries(t *testing.T, e *Engine, emps []value.ID, updates int) {
	t.Helper()
	for i, emp := range emps {
		for u := 0; u < updates; u++ {
			vt := temporal.Instant(100*u + 50)
			st, err := e.StateAt(emp, vt, atom.Now)
			if err != nil {
				t.Fatalf("emp %d at vt %d: %v", i, vt, err)
			}
			want := int64(1000*(i+1) + 10*u)
			if got := st.Vals["salary"].AsInt(); got != want {
				t.Errorf("emp %d at vt %d: salary %d, want %d", i, vt, got, want)
			}
		}
	}
}

// TestDoubleRecoveryAllStrategies crashes a database, recovers it, runs a
// checkpoint, crashes again, and recovers again — for every storage
// strategy. The second recovery is the regression surface: a first
// recovery that leaves subtly wrong state (stale page LSNs, bad free
// lists, un-reset clocks) tends to pass its own verification and only
// break the next crash cycle.
func TestDoubleRecoveryAllStrategies(t *testing.T) {
	const nEmps, updates = 4, 3
	for _, strat := range []atom.Strategy{atom.StrategyEmbedded, atom.StrategySeparated, atom.StrategyTuple} {
		t.Run(strat.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "db.tdb")
			e, err := Open(Options{Path: path, Strategy: strat, SyncOnCommit: true, PoolPages: 32})
			if err != nil {
				t.Fatal(err)
			}
			defineTestSchema(t, e)

			tx, _ := e.Begin()
			dept, err := tx.Insert("Dept", map[string]value.V{
				"name": value.String_("r"), "budget": value.Int(7),
			}, 0)
			if err != nil {
				t.Fatal(err)
			}
			var emps []value.ID
			for i := 0; i < nEmps; i++ {
				emp, err := tx.Insert("Emp", map[string]value.V{
					"name":   value.String_(fmt.Sprintf("e%d", i)),
					"salary": value.Int(int64(1000 * (i + 1))),
					"dept":   value.Ref(dept),
				}, 0)
				if err != nil {
					t.Fatal(err)
				}
				emps = append(emps, emp)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			for u := 1; u < updates; u++ {
				tx, _ := e.Begin()
				for i, emp := range emps {
					v := value.Int(int64(1000*(i+1) + 10*u))
					if err := tx.Set(emp, "salary", v, temporal.Instant(100*u)); err != nil {
						t.Fatal(err)
					}
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}

			// First crash: committed work since bootstrap lives in the log.
			if err := e.Crash(); err != nil {
				t.Fatal(err)
			}
			e2, err := Open(Options{Path: path, PoolPages: 32})
			if err != nil {
				t.Fatalf("first recovery: %v", err)
			}
			if !e2.Recovered {
				t.Error("first reopen not flagged as recovered")
			}
			verifySalaries(t, e2, emps, updates)

			// Checkpoint, then crash again: the second recovery starts from
			// the first recovery's checkpoint image.
			if err := e2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			tx2, err := e2.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx2.Set(emps[0], "salary", value.Int(9999), 1000); err != nil {
				t.Fatal(err)
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := e2.Crash(); err != nil {
				t.Fatal(err)
			}

			e3, err := Open(Options{Path: path, PoolPages: 32})
			if err != nil {
				t.Fatalf("second recovery: %v", err)
			}
			if !e3.Recovered {
				t.Error("second reopen not flagged as recovered")
			}
			verifySalaries(t, e3, emps, updates)
			st, err := e3.StateAt(emps[0], 1001, atom.Now)
			if err != nil || st.Vals["salary"].AsInt() != 9999 {
				t.Errorf("post-checkpoint commit after second recovery: %v, %v", st, err)
			}
			// The recovered engine must accept new work and shut down clean.
			tx3, err := e3.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tx3.Insert("Dept", map[string]value.V{
				"name": value.String_("fresh"), "budget": value.Int(1),
			}, 0); err != nil {
				t.Fatal(err)
			}
			if err := tx3.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := e3.Close(); err != nil {
				t.Fatal(err)
			}

			// A clean reopen after the dust settles sees everything.
			e4, err := Open(Options{Path: path, PoolPages: 32})
			if err != nil {
				t.Fatal(err)
			}
			defer e4.Close()
			if e4.Recovered {
				t.Error("clean shutdown flagged as recovered")
			}
			verifySalaries(t, e4, emps, updates)
		})
	}
}

// TestReopenAfterTornTailPage is the regression test for torn final pages:
// a crash can leave a partial page at the end of the data file, and
// OpenFileDevice must truncate it rather than refuse the database.
func TestReopenAfterTornTailPage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.tdb")
	e, err := Open(Options{Path: path, Strategy: atom.StrategySeparated, SyncOnCommit: true, PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	defineTestSchema(t, e)
	tx, _ := e.Begin()
	d, err := tx.Insert("Dept", map[string]value.V{
		"name": value.String_("kept"), "budget": value.Int(5),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}

	// Append a sub-page tail, as a torn final write would leave.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 700)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2, err := Open(Options{Path: path, PoolPages: 32})
	if err != nil {
		t.Fatalf("reopen with torn tail page: %v", err)
	}
	defer e2.Close()
	st, err := e2.StateAt(d, 0, atom.Now)
	if err != nil || st.Vals["budget"].AsInt() != 5 {
		t.Errorf("data lost to torn tail: %v, %v", st, err)
	}
}
