package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/schema"
	"tcodm/internal/value"
	"tcodm/internal/wal"
)

// openLeader opens a file-backed engine with the test schema and a handful
// of committed transactions.
func openLeader(t *testing.T, path string) *Engine {
	t.Helper()
	e, err := Open(Options{Path: path, TimeIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	defineTestSchema(t, e)
	return e
}

func seedLeader(t *testing.T, e *Engine) (value.ID, value.ID) {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	d, err := tx.Insert("Dept", map[string]value.V{
		"name": value.String_("storage"), "budget": value.Int(100),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := tx.Insert("Emp", map[string]value.V{
		"name": value.String_("wk"), "salary": value.Int(4000), "dept": value.Ref(d),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Set(emp, "salary", value.Int(5000), 100); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	return d, emp
}

// shipAll drains every committed record from src's log.
func shipAll(t *testing.T, src *Engine) []wal.Record {
	t.Helper()
	c := src.Log().Cursor(1)
	recs, err := c.Read(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func digestOf(t *testing.T, e *Engine) []byte {
	t.Helper()
	d, err := e.DigestStore()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriterLeaseExcludesSecondWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	e := openLeader(t, path)
	defer e.Close()

	if _, err := Open(Options{Path: path}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second writable open = %v, want ErrLocked", err)
	}
	// Read-only opens skip the lease and coexist with the writer.
	ro, err := Open(Options{Path: path, ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only open alongside writer: %v", err)
	}
	ro.Close()
}

func TestLeaseReleasedOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	e := openLeader(t, path)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	e2.Close()
}

func TestReadOnlyRefusesWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	e := openLeader(t, path)
	seedLeader(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(Options{Path: path, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.Begin(); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Begin = %v, want ErrReadOnly", err)
	}
	if err := ro.DefineAtomType(schema.AtomType{Name: "X"}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("DDL = %v, want ErrReadOnly", err)
	}
	if err := ro.Checkpoint(); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Checkpoint = %v, want ErrReadOnly", err)
	}
	res, err := ro.Query(`SELECT (Emp.name, Emp.salary) FROM Emp WHERE Emp.salary >= 5000 AT 150`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].AsInt() != 5000 {
		t.Errorf("read-only query rows = %v", res.Rows)
	}
}

func TestReadOnlyLeavesFilesUntouched(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	e := openLeader(t, path)
	seedLeader(t, e)
	// Crash, not Close: leave a dirty database whose open requires replay,
	// the worst case for a mode that must not write.
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	walBefore, err := os.ReadFile(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}

	ro, err := Open(Options{Path: path, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ro.Recovered {
		t.Error("dirty database did not run recovery in read-only mode")
	}
	res, err := ro.Query(`SELECT (Emp.salary) FROM Emp`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows after overlay recovery = %v", res.Rows)
	}
	ro.Close()

	after, _ := os.ReadFile(path)
	walAfter, _ := os.ReadFile(path + ".wal")
	if !bytes.Equal(before, after) {
		t.Error("read-only open modified the data file")
	}
	if !bytes.Equal(walBefore, walAfter) {
		t.Error("read-only open modified the log file")
	}

	// The dirty store is still recoverable by a real writer afterwards.
	w, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if !w.Recovered {
		t.Error("writer open after read-only inspection did not recover")
	}
	w.Close()
}

func TestFollowerAppliesAndConverges(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, filepath.Join(dir, "leader"))
	defer leader.Close()
	_, emp := seedLeader(t, leader)

	f, err := Open(Options{Path: filepath.Join(dir, "follower"), Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Begin(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Begin = %v, want ErrReadOnly", err)
	}

	recs := shipAll(t, leader)
	wm, err := f.ApplyReplicated(recs)
	if err != nil {
		t.Fatal(err)
	}
	if want := leader.Log().AppendedLSN(); wm != want {
		t.Errorf("watermark = %d, want %d", wm, want)
	}
	if got, want := digestOf(t, f), digestOf(t, leader); !bytes.Equal(got, want) {
		t.Errorf("digest diverged: follower %x leader %x", got, want)
	}

	// Replicated DDL: the follower answers schema-dependent queries.
	res, err := f.Query(`SELECT (Emp.name, Emp.salary) FROM Emp WHERE Emp.salary >= 5000 AT 150`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].AsInt() != 5000 {
		t.Errorf("follower query rows = %v", res.Rows)
	}
	st, err := f.StateAt(emp, 50, atom.Now)
	if err != nil {
		t.Fatal(err)
	}
	if st.Vals["salary"].AsInt() != 4000 {
		t.Errorf("follower temporal read = %v", st.Vals["salary"])
	}

	// Re-applying the same batch (reconnect overlap) is a no-op.
	wm2, err := f.ApplyReplicated(recs)
	if err != nil {
		t.Fatal(err)
	}
	if wm2 != wm {
		t.Errorf("duplicate apply moved watermark %d -> %d", wm, wm2)
	}

	// Later commits — including deletes — keep converging.
	tx, err := leader.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(emp, 500); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ApplyReplicated(shipAll(t, leader)); err != nil {
		t.Fatal(err)
	}
	if got, want := digestOf(t, f), digestOf(t, leader); !bytes.Equal(got, want) {
		t.Errorf("digest diverged after delete")
	}
}

func TestFollowerCrashRecoveryKeepsWatermark(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, filepath.Join(dir, "leader"))
	defer leader.Close()
	seedLeader(t, leader)
	want := digestOf(t, leader)

	fpath := filepath.Join(dir, "follower")
	f, err := Open(Options{Path: fpath, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	wm, err := f.ApplyReplicated(shipAll(t, leader))
	if err != nil {
		t.Fatal(err)
	}
	// SIGKILL mid-life: applied groups are in the local log, pages may not
	// have been flushed.
	if err := f.Crash(); err != nil {
		t.Fatal(err)
	}

	f2, err := Open(Options{Path: fpath, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.Watermark() != wm {
		t.Errorf("watermark after crash recovery = %d, want %d", f2.Watermark(), wm)
	}
	if got := digestOf(t, f2); !bytes.Equal(got, want) {
		t.Errorf("digest diverged after follower crash recovery")
	}
}

func TestSnapshotBootstrap(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, filepath.Join(dir, "leader"))
	defer leader.Close()
	_, emp := seedLeader(t, leader)

	// Stream a snapshot and split it into what will become the follower's
	// data and archive files (the framing internal/repl's bootstrap uses).
	fpath := filepath.Join(dir, "follower")
	var out bytes.Buffer
	var startLSN, size uint64
	digest, err := leader.Snapshot(func(s, n uint64) error {
		startLSN, size = s, n
		return nil
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw := out.Bytes()
	if uint64(len(raw)) != size {
		t.Fatalf("snapshot size promised %d, wrote %d", size, len(raw))
	}
	if len(digest) != 32 {
		t.Fatalf("digest length %d", len(digest))
	}
	devBytes := binary.BigEndian.Uint64(raw[:8])
	if err := os.WriteFile(fpath, raw[8:8+devBytes], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fpath+".arc", raw[8+devBytes:], 0o644); err != nil {
		t.Fatal(err)
	}

	// Commit past the snapshot point, then bring the follower up from the
	// snapshot plus the log suffix.
	tx, err := leader.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Set(emp, "salary", value.Int(6000), 200); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	f, err := Open(Options{Path: fpath, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Watermark() != startLSN-1 {
		t.Errorf("bootstrap watermark = %d, want %d", f.Watermark(), startLSN-1)
	}

	c := leader.Log().Cursor(startLSN)
	recs, err := c.Read(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ApplyReplicated(recs); err != nil {
		t.Fatal(err)
	}
	if got, want := digestOf(t, f), digestOf(t, leader); !bytes.Equal(got, want) {
		t.Errorf("snapshot-bootstrapped follower diverged")
	}
	st, err := f.StateAt(emp, 250, atom.Now)
	if err != nil {
		t.Fatal(err)
	}
	if st.Vals["salary"].AsInt() != 6000 {
		t.Errorf("post-snapshot commit not visible: %v", st.Vals["salary"])
	}
}

func TestSnapshotTruncationGapsOtherCursors(t *testing.T) {
	dir := t.TempDir()
	leader := openLeader(t, filepath.Join(dir, "leader"))
	defer leader.Close()
	seedLeader(t, leader)

	c := leader.Log().Cursor(1)
	// Snapshot checkpoints, truncating the log out from under the cursor.
	if _, err := leader.Snapshot(func(s, n uint64) error { return nil }, discard{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(10); !errors.Is(err, wal.ErrGap) {
		t.Fatalf("stale cursor after snapshot = %v, want ErrGap", err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
