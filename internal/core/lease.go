package core

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// ErrLocked reports that another process holds the writer lease on a
// database directory. Read-only opens (Options.ReadOnly) skip the lease and
// can share the directory with a live writer.
var ErrLocked = errors.New("core: database is locked by another process")

// lease is an advisory exclusive writer lock on Path+".lock", held for the
// lifetime of a writable engine. It is what makes a follower and an
// inspection shell safe on the same directory: exactly one process may
// mutate the store, everyone else must open read-only.
type lease struct {
	f    *os.File
	path string
}

// acquireLease takes the exclusive flock for path, failing fast with
// ErrLocked when another process holds it.
func acquireLease(path string) (*lease, error) {
	lockPath := path + ".lock"
	f, err := os.OpenFile(lockPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: opening writer lease %s: %w", lockPath, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, fmt.Errorf("%w (lease file %s)", ErrLocked, lockPath)
		}
		return nil, fmt.Errorf("core: locking writer lease %s: %w", lockPath, err)
	}
	return &lease{f: f, path: lockPath}, nil
}

// release drops the lease. The lock file is left behind (removing it would
// race a concurrent acquirer); flock state dies with the descriptor.
func (l *lease) release() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
