package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// seedParallelDB populates an engine opened with forced intra-query
// parallelism: n employees over 4 departments with enough salary history
// that aggregate queries do real per-candidate work.
func seedParallelDB(t *testing.T, e *Engine, n int) (depts, emps []value.ID) {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		d, err := tx.Insert("Dept", map[string]value.V{
			"name": value.String_(fmt.Sprintf("d%d", i)), "budget": value.Int(int64(100 * i)),
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		depts = append(depts, d)
	}
	for i := 0; i < n; i++ {
		id, err := tx.Insert("Emp", map[string]value.V{
			"name":   value.String_(fmt.Sprintf("e%d", i)),
			"salary": value.Int(int64(1000 + i)),
			"dept":   value.Ref(depts[i%len(depts)]),
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		emps = append(emps, id)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return depts, emps
}

// TestParallelQueriesAgainstLiveWriter floods the engine with 64 concurrent
// query goroutines — all running with 8-way intra-query parallelism — while
// a writer keeps committing temporal updates. Run under -race, this is the
// regression test that worker goroutines inside one query are as safe
// against the writer as whole concurrent queries already were: every read
// still happens under the engine's shared lock, just on more goroutines.
func TestParallelQueriesAgainstLiveWriter(t *testing.T) {
	e, err := Open(Options{TimeIndex: true, QueryWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	defineTestSchema(t, e)
	_, emps := seedParallelDB(t, e, 200)

	queries := []string{
		`SELECT (Emp.name, Emp.salary) FROM Emp WHERE Emp.salary > 1050`,
		`SELECT (name, TAVG(salary), CHANGES(salary)) FROM Emp DURING [0, 400) AT 10`,
		`SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT 10`,
		`SELECT HISTORY(salary) FROM Emp WHERE name = "e7" DURING [0, 400)`,
		`SELECT (name, salary) FROM Emp ORDER BY salary DESC LIMIT 10 AT 10`,
		`EXPLAIN ANALYZE SELECT (name) FROM Emp WHERE salary > 1100 AT 10`,
	}

	const readers = 64
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Minimum one full pass over the corpus: on a single-CPU host
			// the writer can finish before a reader is ever scheduled.
			for i := 0; i < len(queries) || !stop.Load(); i++ {
				q := queries[(r+i)%len(queries)]
				if _, err := e.Query(q); err != nil {
					errs <- fmt.Errorf("reader %d: %q: %w", r, q, err)
					return
				}
			}
		}(r)
	}

	for i := 0; i < 25; i++ {
		tx, err := e.Begin()
		if err != nil {
			t.Fatalf("commit %d: Begin: %v", i, err)
		}
		emp := emps[(i*7)%len(emps)]
		if err := tx.Set(emp, "salary", value.Int(int64(5000+i)), temporal.Instant(10*(i+1))); err != nil {
			t.Fatalf("commit %d: Set: %v", i, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: Commit: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Sanity: parallel execution actually ran (the metric family ticks).
	if c := e.CounterSnapshot(); c["query.parallel_runs"] == 0 {
		t.Error("query.parallel_runs = 0: queries never took the parallel path")
	}

	// A final serial run cross-checks the live-writer results' shape.
	e.SetQueryWorkers(1)
	res, err := e.Query(`SELECT (Emp.name) FROM Emp AT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(emps) {
		t.Errorf("final rows = %d, want %d", len(res.Rows), len(emps))
	}
}

// TestParallelCancellationNoGoroutineLeak cancels parallel queries
// mid-scan, repeatedly, and asserts the engine reaps every worker within
// the poll budget: the goroutine count must settle back to its baseline
// (mirrors the leak-check style of internal/server/admission_test.go).
func TestParallelCancellationNoGoroutineLeak(t *testing.T) {
	e, err := Open(Options{TimeIndex: true, QueryWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	defineTestSchema(t, e)
	seedParallelDB(t, e, 300)

	baseline := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			// Molecule materialization polls cancellation per candidate;
			// the scan path polls per chunk. Alternate to cover both.
			q := `SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff AT 10`
			if i%2 == 1 {
				q = `SELECT (name, TAVG(salary)) FROM Emp DURING [0, 400) AT 10`
			}
			_, err := e.QueryCtx(ctx, q)
			if err != nil && err != context.Canceled {
				t.Errorf("iteration %d: err = %v", i, err)
			}
		}()
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: cancelled query did not return", i)
		}
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines = %d, baseline %d: parallel workers leaked", runtime.NumGoroutine(), baseline)
}

// TestQueryWorkersOptionPlumbing: 0 resolves to GOMAXPROCS, explicit values
// stick, and SetQueryWorkers adjusts at runtime.
func TestQueryWorkersOptionPlumbing(t *testing.T) {
	e, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if got, want := e.queries.Workers, runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default workers = %d, want GOMAXPROCS %d", got, want)
	}
	e2, err := Open(Options{QueryWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.queries.Workers != 3 {
		t.Errorf("explicit workers = %d, want 3", e2.queries.Workers)
	}
	e2.SetQueryWorkers(1)
	if e2.queries.Workers != 1 {
		t.Errorf("SetQueryWorkers(1) -> %d", e2.queries.Workers)
	}
}
