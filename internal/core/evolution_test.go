package core

import (
	"strings"
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/schema"
	"tcodm/internal/value"
)

func TestSchemaEvolutionAddAttribute(t *testing.T) {
	for _, strat := range []atom.Strategy{atom.StrategyEmbedded, atom.StrategySeparated, atom.StrategyTuple} {
		t.Run(strat.String(), func(t *testing.T) {
			e := openMem(t, strat)
			// An atom written under the original schema.
			tx, _ := e.Begin()
			old, err := tx.Insert("Emp", map[string]value.V{
				"name": value.String_("pre"), "salary": value.Int(100),
			}, 0)
			if err != nil {
				t.Fatal(err)
			}
			_ = tx.Commit()

			// Evolve: add a bonus attribute.
			if err := e.DefineAttribute("Emp", schema.Attribute{
				Name: "bonus", Kind: value.KindInt, Temporal: true,
			}); err != nil {
				t.Fatal(err)
			}

			// Old atoms read Null for the new attribute.
			st, err := e.StateAt(old, 10, atom.Now)
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := st.Vals["bonus"]; !ok || !got.IsNull() {
				t.Errorf("bonus on pre-evolution atom = %v (present %v)", got, ok)
			}

			// Old atoms accept updates to the new attribute.
			tx2, _ := e.Begin()
			if err := tx2.Set(old, "bonus", value.Int(500), 50); err != nil {
				t.Fatal(err)
			}
			_ = tx2.Commit()
			st, _ = e.StateAt(old, 60, atom.Now)
			if st.Vals["bonus"].AsInt() != 500 {
				t.Errorf("bonus after update = %v", st.Vals["bonus"])
			}
			st, _ = e.StateAt(old, 10, atom.Now)
			if !st.Vals["bonus"].IsNull() {
				t.Errorf("bonus before its first version = %v", st.Vals["bonus"])
			}

			// New atoms can set it at insert.
			tx3, _ := e.Begin()
			fresh, err := tx3.Insert("Emp", map[string]value.V{
				"name": value.String_("post"), "bonus": value.Int(1),
			}, 0)
			if err != nil {
				t.Fatal(err)
			}
			_ = tx3.Commit()
			st, _ = e.StateAt(fresh, 10, atom.Now)
			if st.Vals["bonus"].AsInt() != 1 {
				t.Errorf("bonus on post-evolution atom = %v", st.Vals["bonus"])
			}

			// TMQL sees the new attribute.
			res, err := e.Query(`SELECT (name, bonus) FROM Emp WHERE bonus = 500 AT 60`)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "pre" {
				t.Errorf("query rows = %v", res.Rows)
			}
		})
	}
}

func TestSchemaEvolutionValidation(t *testing.T) {
	e := openMem(t, atom.StrategySeparated)
	cases := []struct {
		attr schema.Attribute
		frag string
	}{
		{schema.Attribute{Name: "name", Kind: value.KindInt}, "duplicate"},
		{schema.Attribute{Name: "x", Kind: value.KindInt, Required: true}, "cannot be required"},
		{schema.Attribute{Name: "r", Kind: value.KindID, Target: "Ghost"}, "unknown target"},
		{schema.Attribute{Name: "bad name", Kind: value.KindInt}, "invalid attribute name"},
	}
	for _, c := range cases {
		err := e.DefineAttribute("Emp", c.attr)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("DefineAttribute(%+v) = %v, want %q", c.attr, err, c.frag)
		}
	}
	if err := e.DefineAttribute("Ghost", schema.Attribute{Name: "x", Kind: value.KindInt}); err == nil {
		t.Error("evolution of unknown type accepted")
	}
}

func TestSchemaEvolutionPersistsAndNewRefWorks(t *testing.T) {
	e := openMem(t, atom.StrategySeparated)
	tx, _ := e.Begin()
	d, _ := tx.Insert("Dept", map[string]value.V{"name": value.String_("hq")}, 0)
	emp, _ := tx.Insert("Emp", map[string]value.V{"name": value.String_("m")}, 0)
	_ = tx.Commit()
	// Add a reference attribute by evolution and use it.
	if err := e.DefineAttribute("Emp", schema.Attribute{
		Name: "mentorDept", Kind: value.KindID, Target: "Dept", Card: schema.One, Temporal: true,
	}); err != nil {
		t.Fatal(err)
	}
	tx2, _ := e.Begin()
	if err := tx2.Set(emp, "mentorDept", value.Ref(d), 10); err != nil {
		t.Fatal(err)
	}
	_ = tx2.Commit()
	// The inverse link appears on the target.
	dst, err := e.StateAt(d, 20, atom.Now)
	if err != nil {
		t.Fatal(err)
	}
	if refs := dst.BackRefs["Emp.mentorDept"]; len(refs) != 1 || refs[0] != emp {
		t.Errorf("backrefs = %v", dst.BackRefs)
	}
}
