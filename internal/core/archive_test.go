package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/query"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

// buildDeepHistory commits one schema, one employee, and n salary updates,
// returning the atom id, a watermark inside the history (the TT after the
// n/2-th update), and the highest transaction time used.
func buildDeepHistory(t *testing.T, e *Engine, n int) (value.ID, temporal.Instant, temporal.Instant) {
	t.Helper()
	defineTestSchema(t, e)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	emp, err := tx.Insert("Emp", map[string]value.V{
		"name": value.String_("deep"), "salary": value.Int(0),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var wm, maxTT temporal.Instant
	for i := 1; i <= n; i++ {
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		// Small value domain: adjacent equal-valued runs give stage-one
		// compaction something to coalesce.
		if err := tx.Set(emp, "salary", value.Int(int64(i%4)), temporal.Instant(i)); err != nil {
			t.Fatal(err)
		}
		maxTT = tx.TT()
		if i == n/2 {
			wm = tx.TT() + 1
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return emp, wm, maxTT
}

// engineFingerprint renders states and histories across a grid that spans
// both sides of the watermark — the byte-identity tiering must preserve at
// tt >= wm and archival alone (no vacuum) preserves even below it.
func engineFingerprint(t *testing.T, e *Engine, id value.ID, maxTT temporal.Instant) string {
	t.Helper()
	var sb strings.Builder
	tts := []temporal.Instant{maxTT / 2, maxTT - 3, maxTT, atom.Now}
	for _, tt := range tts {
		for _, vt := range []temporal.Instant{0, 3, 7, 11, 15, 100} {
			st, err := e.StateAt(id, vt, tt)
			if err != nil {
				t.Fatalf("StateAt(%v,%v): %v", vt, tt, err)
			}
			fmt.Fprintf(&sb, "%v,%v: %v %v\n", vt, tt, st.Alive, st.Vals)
		}
		hist, err := e.History(id, "salary", tt)
		if err != nil {
			t.Fatalf("History(%v): %v", tt, err)
		}
		fmt.Fprintf(&sb, "hist@%v: %v\n", tt, hist)
	}
	return sb.String()
}

func TestEngineArchiveAcrossStrategies(t *testing.T) {
	for _, strat := range []atom.Strategy{atom.StrategyEmbedded, atom.StrategySeparated, atom.StrategyTuple} {
		t.Run(strat.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "db")
			e, err := Open(Options{Path: path, Strategy: strat, TimeIndex: strat != atom.StrategyTuple})
			if err != nil {
				t.Fatal(err)
			}
			emp, wm, maxTT := buildDeepHistory(t, e, 16)
			before := engineFingerprint(t, e, emp, maxTT)

			res, err := e.Archive(wm)
			if err != nil {
				t.Fatal(err)
			}
			if res.Archived == 0 && strat != atom.StrategyTuple {
				t.Errorf("nothing archived below watermark %v", wm)
			}
			if got := engineFingerprint(t, e, emp, maxTT); got != before {
				t.Fatalf("answers changed after Archive:\nbefore:\n%s\nafter:\n%s", before, got)
			}
			if res.Archived > 0 && e.Stats().ArchiveBytes <= 8 {
				t.Errorf("archived %d versions but archive holds no blocks", res.Archived)
			}

			// Clean shutdown and reopen: the archive file persists and the
			// pointer-holding hot records resolve into it.
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			e2, err := Open(Options{Path: path})
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			if e2.Recovered {
				t.Error("clean reopen required recovery")
			}
			if got := engineFingerprint(t, e2, emp, maxTT); got != before {
				t.Fatalf("answers changed across clean reopen")
			}
		})
	}
}

func TestEngineArchiveCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	e, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	emp, wm, maxTT := buildDeepHistory(t, e, 16)
	res, err := e.Archive(wm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Archived == 0 {
		t.Fatal("nothing archived; the crash test would be vacuous")
	}
	before := engineFingerprint(t, e, emp, maxTT)

	// Crash without checkpoint: the heap pages and the archive's committed
	// size never reached the meta — recovery must replay the migration from
	// the WAL, including every archive frame.
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if !e2.Recovered {
		t.Error("open after crash did not recover")
	}
	if got := engineFingerprint(t, e2, emp, maxTT); got != before {
		t.Fatalf("answers changed across crash recovery")
	}

	// Crash again before checkpointing: double recovery replays the same
	// archive frames onto the same offsets — byte-identical overwrites.
	if err := e2.Crash(); err != nil {
		t.Fatal(err)
	}
	e3, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if !e3.Recovered {
		t.Error("second open after crash did not recover")
	}
	if got := engineFingerprint(t, e3, emp, maxTT); got != before {
		t.Fatalf("answers changed across double recovery")
	}
	// And the store still archives: a later watermark migrates the next band.
	if _, err := e3.Archive(maxTT); err != nil {
		t.Fatalf("re-archive after double recovery: %v", err)
	}
	if got := engineFingerprint(t, e3, emp, maxTT); got != before {
		t.Fatalf("answers changed after post-recovery re-archive")
	}
}

// TestVacuumNoopSkipsRewrite is the regression test for the no-op fast
// path: a vacuum that has nothing to remove must not rewrite any atom — its
// WAL footprint is exactly an empty transaction's (one commit record).
func TestVacuumNoopSkipsRewrite(t *testing.T) {
	for _, strat := range []atom.Strategy{atom.StrategyEmbedded, atom.StrategySeparated, atom.StrategyTuple} {
		t.Run(strat.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "db")
			e, err := Open(Options{Path: path, Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			_, wm, _ := buildDeepHistory(t, e, 8)
			if _, err := e.Vacuum(wm); err != nil {
				t.Fatal(err)
			}

			// Baseline: the WAL cost of a transaction that does nothing.
			base0 := e.Log().Size()
			tx, err := e.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			emptyTxnBytes := e.Log().Size() - base0

			// The same vacuum again is a no-op: same WAL delta as doing
			// nothing, i.e. zero rewrite bytes.
			size0 := e.Log().Size()
			removed, err := e.Vacuum(wm)
			if err != nil {
				t.Fatal(err)
			}
			if removed != 0 {
				t.Fatalf("second vacuum removed %d versions, want 0", removed)
			}
			if delta := e.Log().Size() - size0; delta != emptyTxnBytes {
				t.Errorf("no-op vacuum appended %d WAL bytes beyond the commit record (empty txn = %d)",
					delta-emptyTxnBytes, emptyTxnBytes)
			}
		})
	}
}

// TestArchiveReplicationConvergence: a tiering run ships through the WAL
// like any commit group; a follower applying it converges to the same
// logical store — including byte-identical archives — and answers deep
// ASOF reads from its own cold file.
func TestArchiveReplicationConvergence(t *testing.T) {
	dir := t.TempDir()
	leader, err := Open(Options{Path: filepath.Join(dir, "leader")})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	emp, wm, maxTT := buildDeepHistory(t, leader, 16)
	if _, err := leader.Archive(wm); err != nil {
		t.Fatal(err)
	}
	// Commits after the tiering run, so the follower applies a mixed stream.
	tx, err := leader.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Set(emp, "salary", value.Int(9999), 500); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	f, err := Open(Options{Path: filepath.Join(dir, "follower"), Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.ApplyReplicated(shipAll(t, leader)); err != nil {
		t.Fatal(err)
	}
	lg, err := leader.DigestStore()
	if err != nil {
		t.Fatal(err)
	}
	fg, err := f.DigestStore()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lg, fg) {
		t.Fatalf("leader/follower digests diverged with archiving enabled")
	}
	if l, fo := leader.ArchiveStore().Size(), f.ArchiveStore().Size(); l != fo {
		t.Errorf("archive sizes diverged: leader %d follower %d", l, fo)
	}
	// Deep read below the watermark on both sides: identical answers.
	for _, vt := range []temporal.Instant{0, 5, 11} {
		ls, err := leader.StateAt(emp, vt, wm-1)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := f.StateAt(emp, vt, wm-1)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(ls.Vals) != fmt.Sprint(fs.Vals) {
			t.Errorf("vt=%v: leader %v follower %v", vt, ls.Vals, fs.Vals)
		}
	}
	_ = maxTT
}

// TestExplainAnalyzeShowsArchive: once a query crosses the tiering
// watermark, its EXPLAIN ANALYZE plan and resource totals surface the
// cold-archive traffic.
func TestExplainAnalyzeShowsArchive(t *testing.T) {
	e, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_, wm, _ := buildDeepHistory(t, e, 16)
	if _, err := e.Archive(wm); err != nil {
		t.Fatal(err)
	}
	deep, err := e.Query(fmt.Sprintf(
		`EXPLAIN ANALYZE SELECT (name, salary) FROM Emp AT 3 ASOF %d`, wm-1))
	if err != nil {
		t.Fatal(err)
	}
	if deep.Res.Arc == 0 {
		t.Fatalf("deep ASOF query charged no archive reads; res=%v", deep.Res)
	}
	if !strings.Contains(deep.Plan, "archive (cold blocks read=") {
		t.Errorf("plan missing archive node:\n%s", deep.Plan)
	}
	// A hot query must not pay for (or display) the archive.
	hot, err := e.Query(`EXPLAIN ANALYZE SELECT (name, salary) FROM Emp AT 100`)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Res.Arc != 0 {
		t.Errorf("hot query charged %d archive reads", hot.Res.Arc)
	}
	if strings.Contains(hot.Plan, "archive") {
		t.Errorf("hot plan shows an archive node:\n%s", hot.Plan)
	}
}

// TestArchiveSerialParallelEquivalence: with the cold archive in the read
// path, parallel execution must stay byte-identical to serial — rows, plan,
// and the exact resource totals including cold-block reads. 130 atoms force
// the candidate stream into multiple 64-atom chunks so the workers genuinely
// partition the archive-crossing scan.
func TestArchiveSerialParallelEquivalence(t *testing.T) {
	e, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	defineTestSchema(t, e)
	const emps = 130
	ids := make([]value.ID, 0, emps)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < emps; i++ {
		id, err := tx.Insert("Emp", map[string]value.V{
			"name": value.String_(fmt.Sprintf("e%03d", i)), "salary": value.Int(0),
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var wm, deepTT temporal.Instant
	for round := 1; round <= 6; round++ {
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			if err := tx.Set(id, "salary", value.Int(int64(round*1000+i%5)), temporal.Instant(round)); err != nil {
				t.Fatal(err)
			}
		}
		if round == 2 {
			deepTT = tx.TT()
		}
		if round == 4 {
			wm = tx.TT() + 1
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Archive(wm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Archived == 0 {
		t.Fatal("nothing archived; fixture does not exercise the cold path")
	}

	sig := func(r *query.Result, err error) string {
		if err != nil {
			return "error: " + err.Error()
		}
		var sb strings.Builder
		sb.WriteString("plan: " + r.Plan + "\n")
		sb.WriteString("resources: " + r.Res.String() + "\n")
		sb.WriteString("columns: " + strings.Join(r.Columns, "|") + "\n")
		for _, row := range r.Rows {
			for j, v := range row {
				if j > 0 {
					sb.WriteByte('|')
				}
				sb.WriteString(v.String())
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	queries := []string{
		fmt.Sprintf(`SELECT (name, salary) FROM Emp AT 2 ASOF %d`, deepTT),
		fmt.Sprintf(`SELECT (name) FROM Emp WHERE salary > 2002 AT 2 ASOF %d`, deepTT),
		`SELECT (name, salary) FROM Emp AT 100`,
	}
	sawArc := false
	for _, src := range queries {
		e.SetQueryWorkers(1)
		serialRes, serialErr := e.Query(src)
		want := sig(serialRes, serialErr)
		if serialErr == nil && serialRes.Res.Arc > 0 {
			sawArc = true
		}
		for _, workers := range []int{2, 8} {
			e.SetQueryWorkers(workers)
			if got := sig(e.Query(src)); got != want {
				t.Errorf("workers=%d diverges on %q:\n--- serial ---\n%s\n--- parallel ---\n%s",
					workers, src, want, got)
			}
		}
	}
	if !sawArc {
		t.Error("no query charged archive reads; the equivalence check is vacuous")
	}
}
