package core

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tcodm/internal/atom"
	"tcodm/internal/schema"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
)

func defineTestSchema(t *testing.T, e *Engine) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(e.DefineAtomType(schema.AtomType{
		Name: "Dept",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "budget", Kind: value.KindInt, Temporal: true},
		},
	}))
	must(e.DefineAtomType(schema.AtomType{
		Name: "Emp",
		Attrs: []schema.Attribute{
			{Name: "name", Kind: value.KindString, Required: true},
			{Name: "salary", Kind: value.KindInt, Temporal: true},
			{Name: "dept", Kind: value.KindID, Target: "Dept", Card: schema.One, Temporal: true},
		},
	}))
	must(e.DefineMoleculeType(schema.MoleculeType{
		Name:  "DeptStaff",
		Root:  "Dept",
		Edges: []schema.MoleculeEdge{{From: "Dept", Attr: "dept", To: "Emp", Reverse: true}},
	}))
}

func openMem(t *testing.T, strat atom.Strategy) *Engine {
	t.Helper()
	e, err := Open(Options{Strategy: strat, TimeIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	defineTestSchema(t, e)
	return e
}

func TestEndToEndLifecycle(t *testing.T) {
	for _, strat := range []atom.Strategy{atom.StrategyEmbedded, atom.StrategySeparated, atom.StrategyTuple} {
		t.Run(strat.String(), func(t *testing.T) {
			e := openMem(t, strat)
			tx, err := e.Begin()
			if err != nil {
				t.Fatal(err)
			}
			d, err := tx.Insert("Dept", map[string]value.V{
				"name": value.String_("storage"), "budget": value.Int(100),
			}, 0)
			if err != nil {
				t.Fatal(err)
			}
			emp, err := tx.Insert("Emp", map[string]value.V{
				"name": value.String_("wk"), "salary": value.Int(4000), "dept": value.Ref(d),
			}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			tx2, _ := e.Begin()
			if err := tx2.Set(emp, "salary", value.Int(5000), 100); err != nil {
				t.Fatal(err)
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}

			st, err := e.StateAt(emp, 50, atom.Now)
			if err != nil {
				t.Fatal(err)
			}
			if st.Vals["salary"].AsInt() != 4000 {
				t.Errorf("salary at 50 = %v", st.Vals["salary"])
			}
			st, _ = e.StateAt(emp, 150, atom.Now)
			if st.Vals["salary"].AsInt() != 5000 {
				t.Errorf("salary at 150 = %v", st.Vals["salary"])
			}

			mol, err := e.Molecule("DeptStaff", d, 50, atom.Now)
			if err != nil {
				t.Fatal(err)
			}
			if mol.Size() != 2 {
				t.Errorf("molecule size = %d", mol.Size())
			}

			res, err := e.Query(`SELECT (Emp.name, Emp.salary) FROM Emp WHERE Emp.salary >= 5000 AT 150`)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 1 || res.Rows[0][1].AsInt() != 5000 {
				t.Errorf("query rows = %v", res.Rows)
			}
		})
	}
}

func TestAbortIsInvisible(t *testing.T) {
	e := openMem(t, atom.StrategySeparated)
	tx, _ := e.Begin()
	d, err := tx.Insert("Dept", map[string]value.V{"name": value.String_("doomed")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StateAt(d, 10, atom.Now); err == nil {
		t.Error("aborted atom is visible")
	}
	if ids, _ := e.IDs("Dept"); len(ids) != 0 {
		t.Errorf("aborted atom in type index: %v", ids)
	}
	// The engine remains usable.
	tx2, _ := e.Begin()
	if _, err := tx2.Insert("Dept", map[string]value.V{"name": value.String_("ok")}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortRestoresPriorState(t *testing.T) {
	e := openMem(t, atom.StrategySeparated)
	tx, _ := e.Begin()
	d, _ := tx.Insert("Dept", map[string]value.V{"name": value.String_("x"), "budget": value.Int(1)}, 0)
	_ = tx.Commit()
	tx2, _ := e.Begin()
	if err := tx2.Set(d, "budget", value.Int(999), 50); err != nil {
		t.Fatal(err)
	}
	_ = tx2.Abort()
	st, err := e.StateAt(d, 100, atom.Now)
	if err != nil {
		t.Fatal(err)
	}
	if st.Vals["budget"].AsInt() != 1 {
		t.Errorf("budget after abort = %v", st.Vals["budget"])
	}
	hist, _ := e.History(d, "budget", atom.Now)
	if len(hist) != 1 {
		t.Errorf("history after abort = %v", hist)
	}
}

func TestPersistenceAcrossCleanClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.tdb")
	e, err := Open(Options{Path: path, Strategy: atom.StrategySeparated, TimeIndex: true, SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defineTestSchema(t, e)
	tx, _ := e.Begin()
	d, _ := tx.Insert("Dept", map[string]value.V{"name": value.String_("persisted"), "budget": value.Int(7)}, 0)
	_ = tx.Commit()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Recovered {
		t.Error("clean close flagged as recovery")
	}
	st, err := e2.StateAt(d, 10, atom.Now)
	if err != nil {
		t.Fatal(err)
	}
	if st.Vals["name"].AsString() != "persisted" || st.Vals["budget"].AsInt() != 7 {
		t.Errorf("state after reopen = %v", st.Vals)
	}
	// Schema survived.
	if _, ok := e2.Schema().AtomType("Emp"); !ok {
		t.Error("schema lost")
	}
	if _, ok := e2.Schema().MoleculeType("DeptStaff"); !ok {
		t.Error("molecule type lost")
	}
	// The engine keeps working after reopen.
	tx2, err := e2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := tx2.Insert("Dept", map[string]value.V{"name": value.String_("new")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if d2 == d {
		t.Error("surrogate reuse after reopen")
	}
}

// crashClone simulates a crash: it copies the database and log files as
// they are on disk right now, ignoring any buffered state.
func crashClone(t *testing.T, path, dest string) {
	t.Helper()
	for _, suffix := range []string{"", ".wal"} {
		data, err := os.ReadFile(path + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dest+suffix, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.tdb")
	e, err := Open(Options{Path: path, Strategy: atom.StrategySeparated, SyncOnCommit: true, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defineTestSchema(t, e)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Committed work after the checkpoint lives only in the log.
	tx, _ := e.Begin()
	d, err := tx.Insert("Dept", map[string]value.V{"name": value.String_("survivor"), "budget": value.Int(42)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := e.Begin()
	if err := tx2.Set(d, "budget", value.Int(43), 10); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Crash: clone the on-disk files while the engine still holds dirty
	// pages, then abandon the original engine.
	crashed := filepath.Join(dir, "crashed.tdb")
	crashClone(t, path, crashed)

	e2, err := Open(Options{Path: crashed})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !e2.Recovered {
		t.Error("unclean database not flagged as recovered")
	}
	st, err := e2.StateAt(d, 20, atom.Now)
	if err != nil {
		t.Fatalf("committed atom lost in crash: %v", err)
	}
	if st.Vals["budget"].AsInt() != 43 {
		t.Errorf("budget after recovery = %v", st.Vals["budget"])
	}
	hist, err := e2.History(d, "budget", atom.Now)
	if err != nil || len(hist) != 2 {
		t.Errorf("history after recovery = %v (%v)", hist, err)
	}
	_ = e.Close()
}

func TestCrashLosesUncommitted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "u.tdb")
	e, err := Open(Options{Path: path, SyncOnCommit: true, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defineTestSchema(t, e)
	tx, _ := e.Begin()
	committed, _ := tx.Insert("Dept", map[string]value.V{"name": value.String_("committed")}, 0)
	_ = tx.Commit()

	// An open transaction at crash time.
	tx2, _ := e.Begin()
	uncommitted, err := tx2.Insert("Dept", map[string]value.V{"name": value.String_("uncommitted")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	crashed := filepath.Join(dir, "crashed.tdb")
	crashClone(t, path, crashed)
	_ = tx2.Abort()
	_ = e.Close()

	e2, err := Open(Options{Path: crashed})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, err := e2.StateAt(committed, 10, atom.Now); err != nil {
		t.Errorf("committed atom lost: %v", err)
	}
	if _, err := e2.StateAt(uncommitted, 10, atom.Now); err == nil {
		t.Error("uncommitted atom survived the crash")
	}
}

func TestDDLValidationAndPersistence(t *testing.T) {
	e := openMem(t, atom.StrategySeparated)
	// Duplicate type rejected, schema unchanged.
	err := e.DefineAtomType(schema.AtomType{
		Name:  "Emp",
		Attrs: []schema.Attribute{{Name: "x", Kind: value.KindInt}},
	})
	if err == nil {
		t.Fatal("duplicate atom type accepted")
	}
	// DDL after data exists.
	tx, _ := e.Begin()
	if _, err := tx.Insert("Emp", map[string]value.V{"name": value.String_("pre")}, 0); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if err := e.DefineAtomType(schema.AtomType{
		Name:  "Machine",
		Attrs: []schema.Attribute{{Name: "serial", Kind: value.KindString}},
	}); err != nil {
		t.Fatal(err)
	}
	tx2, _ := e.Begin()
	if _, err := tx2.Insert("Machine", map[string]value.V{"serial": value.String_("m-1")}, 0); err != nil {
		t.Fatal(err)
	}
	_ = tx2.Commit()
	if ids, _ := e.IDs("Machine"); len(ids) != 1 {
		t.Errorf("Machine ids = %v", ids)
	}
}

func TestConcurrentReadersWithWriter(t *testing.T) {
	e := openMem(t, atom.StrategySeparated)
	tx, _ := e.Begin()
	d, _ := tx.Insert("Dept", map[string]value.V{"name": value.String_("rw"), "budget": value.Int(1)}, 0)
	_ = tx.Commit()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st, err := e.StateAt(d, 1000, atom.Now)
				if err != nil {
					t.Error(err)
					return
				}
				if st.Vals["budget"].IsNull() {
					t.Error("budget became null")
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		tx, err := e.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Set(d, "budget", value.Int(int64(i+2)), temporal.Instant(10+i)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestMoleculeHistoryThroughEngine(t *testing.T) {
	e := openMem(t, atom.StrategyEmbedded)
	tx, _ := e.Begin()
	d, _ := tx.Insert("Dept", map[string]value.V{"name": value.String_("h")}, 0)
	emp, _ := tx.Insert("Emp", map[string]value.V{"name": value.String_("later")}, 0)
	_ = tx.Commit()
	tx2, _ := e.Begin()
	if err := tx2.Set(emp, "dept", value.Ref(d), 30); err != nil {
		t.Fatal(err)
	}
	_ = tx2.Commit()
	steps, err := e.MoleculeHistory("DeptStaff", d, temporal.NewInterval(0, 100), atom.Now)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) < 2 {
		t.Fatalf("steps = %d", len(steps))
	}
	if steps[0].Mol.Size() != 1 || steps[len(steps)-1].Mol.Size() != 2 {
		t.Errorf("molecule sizes: first %d, last %d", steps[0].Mol.Size(), steps[len(steps)-1].Mol.Size())
	}
}

func TestQueryDefaultsToClockNow(t *testing.T) {
	e := openMem(t, atom.StrategySeparated)
	e.AdvanceClock(500)
	tx, _ := e.Begin()
	// Atom alive only from 1000 on: invisible to a query at the clock's
	// current instant (~501), visible AT 2000.
	d, _ := tx.Insert("Dept", map[string]value.V{"name": value.String_("future")}, 1000)
	_ = tx.Commit()
	_ = d
	res, err := e.Query(`SELECT (name) FROM Dept`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("future atom visible now: %v", res.Rows)
	}
	res, _ = e.Query(`SELECT (name) FROM Dept AT 2000`)
	if len(res.Rows) != 1 {
		t.Errorf("future atom missing at 2000: %v", res.Rows)
	}
}

func TestStatsAndRecoveredFlag(t *testing.T) {
	e := openMem(t, atom.StrategySeparated)
	tx, _ := e.Begin()
	_, _ = tx.Insert("Dept", map[string]value.V{"name": value.String_("s")}, 0)
	_ = tx.Commit()
	s := e.Stats()
	if s.Atoms != 1 {
		t.Errorf("Atoms = %d", s.Atoms)
	}
	if s.DevicePags == 0 {
		t.Error("device pages = 0")
	}
	if e.Recovered {
		t.Error("fresh database flagged recovered")
	}
}

func TestUnknownMoleculeType(t *testing.T) {
	e := openMem(t, atom.StrategySeparated)
	if _, err := e.Molecule("Nope", 1, 0, atom.Now); err == nil || !strings.Contains(err.Error(), "unknown molecule") {
		t.Errorf("err = %v", err)
	}
}

func TestEngineVacuum(t *testing.T) {
	e := openMem(t, atom.StrategySeparated)
	tx, _ := e.Begin()
	d, _ := tx.Insert("Dept", map[string]value.V{"name": value.String_("v"), "budget": value.Int(1)}, 0)
	_ = tx.Commit()
	for i := 2; i <= 6; i++ {
		tx, _ := e.Begin()
		if err := tx.Set(d, "budget", value.Int(int64(i)), temporal.Instant(i*10)); err != nil {
			t.Fatal(err)
		}
		_ = tx.Commit()
	}
	// Vacuuming beyond the clock is refused.
	if _, err := e.Vacuum(e.Now() + 100); err == nil {
		t.Error("future vacuum accepted")
	}
	removed, err := e.Vacuum(e.Now())
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("nothing vacuumed")
	}
	// Valid-time answers survive.
	st, err := e.StateAt(d, 25, atom.Now)
	if err != nil || st.Vals["budget"].AsInt() != 2 {
		t.Errorf("budget at 25 after vacuum = %v (%v)", st.Vals["budget"], err)
	}
	st, _ = e.StateAt(d, 100, atom.Now)
	if st.Vals["budget"].AsInt() != 6 {
		t.Errorf("budget at 100 after vacuum = %v", st.Vals["budget"])
	}
}

func TestEngineValueIndexPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vi.tdb")
	e, err := Open(Options{Path: path, ValueIndex: true, SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defineTestSchema(t, e)
	tx, _ := e.Begin()
	if _, err := tx.Insert("Dept", map[string]value.V{"name": value.String_("idx"), "budget": value.Int(77)}, 0); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	res, err := e.Query(`SELECT (name) FROM Dept WHERE budget = 77 AT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Plan, "value-index") {
		t.Fatalf("rows=%v plan=%q", res.Rows, res.Plan)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// The option and index root persist across a clean reopen.
	e2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	res, err = e2.Query(`SELECT (name) FROM Dept WHERE budget = 77 AT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Plan, "value-index") {
		t.Fatalf("after reopen: rows=%v plan=%q", res.Rows, res.Plan)
	}
}

func TestReopenUsesPersistedStrategy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "strat.tdb")
	e, err := Open(Options{Path: path, Strategy: atom.StrategyTuple})
	if err != nil {
		t.Fatal(err)
	}
	defineTestSchema(t, e)
	tx, _ := e.Begin()
	id, _ := tx.Insert("Dept", map[string]value.V{"name": value.String_("s")}, 0)
	_ = tx.Commit()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening with a different strategy option must not reinterpret the
	// stored records: the persisted strategy wins.
	e2, err := Open(Options{Path: path, Strategy: atom.StrategyEmbedded})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := e2.Atoms().Strategy(); got != atom.StrategyTuple {
		t.Fatalf("reopened strategy = %v, want tuple", got)
	}
	st, err := e2.StateAt(id, 5, atom.Now)
	if err != nil || st.Vals["name"].AsString() != "s" {
		t.Fatalf("state = %v, %v", st, err)
	}
}
