package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.db")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	copy(buf, "hello page zero")
	if err := d.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "hello page one!")
	if err := d.WritePage(1, buf); err != nil {
		t.Fatal(err)
	}
	if d.NumPages() != 2 {
		t.Fatalf("NumPages = %d", d.NumPages())
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify.
	d2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 2 {
		t.Fatalf("reopened NumPages = %d", d2.NumPages())
	}
	got := make([]byte, PageSize)
	if err := d2.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("hello page zero")) {
		t.Error("page 0 content lost")
	}
}

func TestFileDeviceRejectsHolesAndTornFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.db")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d.WritePage(5, buf); err == nil {
		t.Error("write beyond end+1 should fail")
	}
	if err := d.ReadPage(0, buf); err == nil {
		t.Error("read beyond end should fail")
	}
	if err := d.ReadPage(0, buf[:10]); err == nil {
		t.Error("short buffer should fail")
	}
	d.Close()
	// Torn tail: a crash mid-grow leaves a partial page at the end. Opening
	// must truncate the fragment and keep every full page.
	full := make([]byte, PageSize)
	copy(full, "survivor")
	if err := os.WriteFile(path, append(append([]byte(nil), full...), make([]byte, 100)...), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if d2.NumPages() != 1 {
		t.Errorf("NumPages after tail truncation = %d, want 1", d2.NumPages())
	}
	got := make([]byte, PageSize)
	if err := d2.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("survivor")) {
		t.Error("full page lost during tail truncation")
	}
	d2.Close()
	if info, err := os.Stat(path); err != nil || info.Size() != PageSize {
		t.Errorf("file not truncated to page boundary: size %d", info.Size())
	}
	// A file smaller than one page is not a database at all.
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDevice(path); err == nil {
		t.Error("sub-page file accepted")
	}
}

func TestMemDevice(t *testing.T) {
	d := NewMemDevice()
	buf := make([]byte, PageSize)
	copy(buf, "mem")
	if err := d.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := d.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("mem")) {
		t.Error("content lost")
	}
	if err := d.WritePage(7, buf); err == nil {
		t.Error("hole write accepted")
	}
	if err := d.ReadPage(3, got); err == nil {
		t.Error("out-of-range read accepted")
	}
}

func TestBufferPoolFetchAllocateUnpin(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 8)
	p, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID()
	copy(p.Data()[100:], "payload")
	p.MarkDirty(false)
	bp.Unpin(p)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Refetch: must hit the pool.
	before := bp.Stats()
	p2, err := bp.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(p2.Data()[100:], []byte("payload")) {
		t.Error("content lost across flush")
	}
	bp.Unpin(p2)
	after := bp.Stats()
	if after.Hits != before.Hits+1 {
		t.Errorf("expected a pool hit, stats %+v -> %+v", before, after)
	}
}

func TestBufferPoolEvictionLRU(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 4)
	// Create 8 pages through a pool of 4: evictions must occur and all
	// content must survive on the device.
	var ids []PageID
	for i := 0; i < 8; i++ {
		p, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p.Data()[200] = byte(i)
		p.MarkDirty(false)
		ids = append(ids, p.ID())
		bp.Unpin(p)
	}
	if bp.Stats().Evictions == 0 {
		t.Error("no evictions with pool smaller than working set")
	}
	for i, id := range ids {
		p, err := bp.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if p.Data()[200] != byte(i) {
			t.Errorf("page %d content lost through eviction", id)
		}
		bp.Unpin(p)
	}
}

func TestBufferPoolPinnedPagesNotEvicted(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 4)
	var pinned []*Page
	for i := 0; i < 4; i++ {
		p, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, p)
	}
	// Pool is full of pinned pages: the next allocation must fail.
	if _, err := bp.Allocate(); err == nil {
		t.Fatal("allocation with fully pinned pool should fail")
	}
	bp.Unpin(pinned[0])
	if _, err := bp.Allocate(); err != nil {
		t.Fatalf("allocation after unpin failed: %v", err)
	}
	for _, p := range pinned[1:] {
		bp.Unpin(p)
	}
}

func TestBufferPoolNoStealTxnDirty(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 4)
	p, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p.MarkDirty(true) // txn-dirty
	id := p.ID()
	bp.Unpin(p)
	// Fill the pool; the txn-dirty page must survive unflushed.
	for i := 0; i < 6; i++ {
		q, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		q.MarkDirty(false)
		bp.Unpin(q)
	}
	// The txn-dirty page is still buffered (was never evicted).
	bp.mu.Lock()
	_, present := bp.frames[id]
	bp.mu.Unlock()
	if !present {
		t.Fatal("txn-dirty page was evicted (no-steal violated)")
	}
	bp.EndTxn(true)
	// Now it may be evicted.
	for i := 0; i < 6; i++ {
		q, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		bp.Unpin(q)
	}
}

func TestBufferPoolFlushHookWALRule(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 4)
	var flushedThrough []uint64
	bp.SetFlushHook(func(lsn uint64) error {
		flushedThrough = append(flushedThrough, lsn)
		return nil
	})
	p, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p.SetLSN(77)
	p.MarkDirty(false)
	bp.Unpin(p)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range flushedThrough {
		if l == 77 {
			found = true
		}
	}
	if !found {
		t.Errorf("flush hook never saw LSN 77: %v", flushedThrough)
	}
}

func TestBufferPoolDeallocateReuse(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 8)
	p, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID()
	bp.Unpin(p)
	if err := bp.Deallocate(id); err != nil {
		t.Fatal(err)
	}
	p2, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if p2.ID() != id {
		t.Errorf("freed page not reused: got %d, want %d", p2.ID(), id)
	}
	bp.Unpin(p2)
	// Free list round-trips through Set/Get.
	bp.SetFreePages([]PageID{9, 11})
	got := bp.FreePages()
	if len(got) != 2 || got[0] != 9 || got[1] != 11 {
		t.Errorf("free list = %v", got)
	}
}

func TestBufferPoolDeallocatePinnedFails(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 8)
	p, _ := bp.Allocate()
	if err := bp.Deallocate(p.ID()); err == nil {
		t.Error("deallocating a pinned page should fail")
	}
	bp.Unpin(p)
}

func TestPoolStatsHitRatio(t *testing.T) {
	s := PoolStats{Hits: 3, Misses: 1}
	if got := s.HitRatio(); got != 0.75 {
		t.Errorf("HitRatio = %v", got)
	}
	if (PoolStats{}).HitRatio() != 0 {
		t.Error("empty stats should have ratio 0")
	}
}

func TestMetaPage(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 8)
	if err := InitMeta(bp); err != nil {
		t.Fatal(err)
	}
	payload, clean, err := ReadMeta(bp)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 0 || !clean {
		t.Fatalf("fresh meta: payload %d bytes, clean %v", len(payload), clean)
	}
	if err := WriteMeta(bp, []byte("engine state"), false); err != nil {
		t.Fatal(err)
	}
	payload, clean, err = ReadMeta(bp)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "engine state" || clean {
		t.Fatalf("meta round-trip: %q clean=%v", payload, clean)
	}
	if err := WriteMeta(bp, make([]byte, MetaPayloadMax+1), true); err == nil {
		t.Error("oversized meta payload accepted")
	}
	// InitMeta on a non-empty device must fail.
	if err := InitMeta(bp); err == nil {
		t.Error("InitMeta on non-empty device accepted")
	}
}

func TestUnpinPanicsWhenNotPinned(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 4)
	p, _ := bp.Allocate()
	bp.Unpin(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double unpin did not panic")
		}
	}()
	bp.Unpin(p)
}
