package storage

import (
	"encoding/binary"
	"fmt"
)

// PageType tags what a page holds. The type byte lives in every page
// header so structures can be rediscovered by scanning the device.
type PageType uint8

const (
	// PageMeta is page 0: database metadata.
	PageMeta PageType = iota
	// PageHeap holds slotted variable-length records.
	PageHeap
	// PageOverflow holds one segment of an oversized record.
	PageOverflow
	// PageBTreeLeaf and PageBTreeInner belong to B+-trees.
	PageBTreeLeaf
	// PageBTreeInner is an interior B+-tree node.
	PageBTreeInner
	// PageFree is a deallocated page available for reuse.
	PageFree
)

// Page header layout (common prefix for every page type):
//
//	offset 0:  pageLSN   uint8×8 — LSN of the last logged mutation
//	offset 8:  pageType  uint8
//	offset 9:  checksum  [3]byte — low 24 bits of CRC-32C over the page
//	           (checksum bytes zeroed), stamped at flush, verified on read
//
// Slotted (heap) pages continue with:
//
//	offset 12: slotCount uint16 — number of slot directory entries
//	offset 14: freeStart uint16 — end of the slot directory
//	offset 16: freeEnd   uint16 — start of the record data area
//
// The slot directory grows upward from pageHeaderSize; record data grows
// downward from PageSize. Each slot entry is 4 bytes: record offset and
// record length (offset 0 = empty slot).
const (
	lsnOff        = 0
	typeOff       = 8
	checksumOff   = 9
	slotCountOff  = 12
	freeStartOff  = 14
	freeEndOff    = 16
	pageHeaderLen = 18
	slotDirStart  = 20 // aligned start of the slot directory
	slotEntryLen  = 4
)

// Page is one buffered page. The struct is owned by the buffer pool; users
// access it between Fetch/Unpin pairs.
type Page struct {
	id    PageID
	data  [PageSize]byte
	pin   int
	dirty bool
	// txnDirty marks a page mutated by the active (uncommitted) write
	// transaction; such pages are not evictable (no-steal policy).
	txnDirty bool
}

// ID returns the page's number.
func (p *Page) ID() PageID { return p.id }

// Data exposes the raw page bytes. Callers must hold a pin.
func (p *Page) Data() []byte { return p.data[:] }

// LSN returns the page's last-mutation LSN.
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.data[lsnOff:]) }

// SetLSN stamps the page with the LSN of a logged mutation.
func (p *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.data[lsnOff:], lsn) }

// Type returns the page's type tag.
func (p *Page) Type() PageType { return PageType(p.data[typeOff]) }

// SetType sets the page's type tag.
func (p *Page) SetType(t PageType) { p.data[typeOff] = byte(t) }

// MarkDirty flags the page as modified. The txn parameter additionally
// marks it as dirtied by the active uncommitted transaction.
func (p *Page) MarkDirty(txn bool) {
	p.dirty = true
	if txn {
		p.txnDirty = true
	}
}

// --- Slotted page operations -------------------------------------------

// InitHeap formats the page as an empty slotted heap page.
func (p *Page) InitHeap() {
	for i := range p.data {
		p.data[i] = 0
	}
	p.SetType(PageHeap)
	p.setSlotCount(0)
	p.setFreeStart(slotDirStart)
	p.setFreeEnd(PageSize)
}

func (p *Page) slotCount() uint16     { return binary.LittleEndian.Uint16(p.data[slotCountOff:]) }
func (p *Page) setSlotCount(n uint16) { binary.LittleEndian.PutUint16(p.data[slotCountOff:], n) }
func (p *Page) freeStart() uint16     { return binary.LittleEndian.Uint16(p.data[freeStartOff:]) }
func (p *Page) setFreeStart(n uint16) { binary.LittleEndian.PutUint16(p.data[freeStartOff:], n) }
func (p *Page) freeEnd() uint16       { return binary.LittleEndian.Uint16(p.data[freeEndOff:]) }
func (p *Page) setFreeEnd(n uint16)   { binary.LittleEndian.PutUint16(p.data[freeEndOff:], n) }

func (p *Page) slotOffset(slot uint16) int { return slotDirStart + int(slot)*slotEntryLen }

func (p *Page) slot(slot uint16) (off, length uint16) {
	base := p.slotOffset(slot)
	return binary.LittleEndian.Uint16(p.data[base:]), binary.LittleEndian.Uint16(p.data[base+2:])
}

func (p *Page) setSlot(slot uint16, off, length uint16) {
	base := p.slotOffset(slot)
	binary.LittleEndian.PutUint16(p.data[base:], off)
	binary.LittleEndian.PutUint16(p.data[base+2:], length)
}

// FreeSpace returns the bytes available for a new record, accounting for
// the slot entry a fresh insertion would need. Holes left by deleted and
// shrunk records count as free: InsertRecord and UpdateRecord compact the
// page on demand when the contiguous region alone is too small, so the
// whole reclaimable total is genuinely available. (Without counting holes,
// pages emptied by bulk deletes — history rewrites, vacuum — would
// advertise no room and be stranded forever.)
func (p *Page) FreeSpace() int {
	live := 0
	n := p.slotCount()
	for s := uint16(0); s < n; s++ {
		if off, length := p.slot(s); off != 0 {
			live += int(length)
		}
	}
	free := PageSize - int(p.freeStart()) - live
	// A new record may need a new slot entry unless an empty one exists.
	free -= slotEntryLen
	if free < 0 {
		return 0
	}
	return free
}

// MaxHeapRecord is the largest record payload a single heap page can hold.
const MaxHeapRecord = PageSize - slotDirStart - slotEntryLen

// InsertRecord places data into the page, returning the assigned slot.
// The caller must have checked FreeSpace() >= len(data).
func (p *Page) InsertRecord(data []byte) (uint16, error) {
	if len(data) > MaxHeapRecord {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds page capacity %d", len(data), MaxHeapRecord)
	}
	// Reuse an empty slot if one exists.
	slot := uint16(0)
	n := p.slotCount()
	found := false
	for ; slot < n; slot++ {
		if off, _ := p.slot(slot); off == 0 {
			found = true
			break
		}
	}
	needDir := 0
	if !found {
		slot = n
		needDir = slotEntryLen
	}
	if int(p.freeEnd())-int(p.freeStart())-needDir < len(data) {
		p.compact()
		if int(p.freeEnd())-int(p.freeStart())-needDir < len(data) {
			return 0, fmt.Errorf("storage: page %d full (need %d, have %d)", p.id, len(data), int(p.freeEnd())-int(p.freeStart())-needDir)
		}
	}
	newEnd := p.freeEnd() - uint16(len(data))
	copy(p.data[newEnd:], data)
	p.setFreeEnd(newEnd)
	if !found {
		p.setSlotCount(n + 1)
		p.setFreeStart(uint16(p.slotOffset(n + 1)))
	}
	p.setSlot(slot, newEnd, uint16(len(data)))
	return slot, nil
}

// InsertRecordAt places data into a specific slot (used by WAL redo).
// The slot directory is extended as needed; the slot must be empty.
func (p *Page) InsertRecordAt(slot uint16, data []byte) error {
	n := p.slotCount()
	needDir := 0
	if slot >= n {
		needDir = (int(slot) + 1 - int(n)) * slotEntryLen
	} else if off, _ := p.slot(slot); off != 0 {
		return fmt.Errorf("storage: redo insert into occupied slot %d of page %d", slot, p.id)
	}
	if int(p.freeEnd())-int(p.freeStart())-needDir < len(data) {
		p.compact()
		if int(p.freeEnd())-int(p.freeStart())-needDir < len(data) {
			return fmt.Errorf("storage: page %d full during redo", p.id)
		}
	}
	if slot >= n {
		// Zero any intermediate new slots.
		for s := n; s <= slot; s++ {
			p.setSlot(s, 0, 0)
		}
		p.setSlotCount(slot + 1)
		p.setFreeStart(uint16(p.slotOffset(slot + 1)))
	}
	newEnd := p.freeEnd() - uint16(len(data))
	copy(p.data[newEnd:], data)
	p.setFreeEnd(newEnd)
	p.setSlot(slot, newEnd, uint16(len(data)))
	return nil
}

// ReadRecord returns the record stored in slot. The returned slice aliases
// the page buffer and is valid only while the page is pinned.
func (p *Page) ReadRecord(slot uint16) ([]byte, error) {
	if slot >= p.slotCount() {
		return nil, fmt.Errorf("storage: slot %d out of range on page %d", slot, p.id)
	}
	off, length := p.slot(slot)
	if off == 0 {
		return nil, fmt.Errorf("storage: slot %d of page %d is empty", slot, p.id)
	}
	return p.data[off : off+length], nil
}

// UpdateRecord replaces the record in slot with data. If the new record
// fits in place (or elsewhere on the page after compaction) it stays; the
// caller handles page-change moves at the heap level.
func (p *Page) UpdateRecord(slot uint16, data []byte) error {
	if slot >= p.slotCount() {
		return fmt.Errorf("storage: slot %d out of range on page %d", slot, p.id)
	}
	off, length := p.slot(slot)
	if off == 0 {
		return fmt.Errorf("storage: slot %d of page %d is empty", slot, p.id)
	}
	if len(data) <= int(length) {
		copy(p.data[off:], data)
		p.setSlot(slot, off, uint16(len(data)))
		return nil
	}
	if len(data) > MaxHeapRecord {
		return errPageFull
	}
	// Relocate within the page: save the old payload, logically free the
	// slot, and compact to coalesce the free space.
	old := make([]byte, length)
	copy(old, p.data[off:off+length])
	p.setSlot(slot, 0, 0)
	if int(p.freeEnd())-int(p.freeStart()) < len(data) {
		p.compact()
	}
	if int(p.freeEnd())-int(p.freeStart()) >= len(data) {
		newEnd := p.freeEnd() - uint16(len(data))
		copy(p.data[newEnd:], data)
		p.setFreeEnd(newEnd)
		p.setSlot(slot, newEnd, uint16(len(data)))
		return nil
	}
	// No room even after compaction: restore the old record (it fits by
	// construction — it occupied space on this page a moment ago) and let
	// the heap layer move the record to another page.
	newEnd := p.freeEnd() - uint16(len(old))
	copy(p.data[newEnd:], old)
	p.setFreeEnd(newEnd)
	p.setSlot(slot, newEnd, uint16(len(old)))
	return errPageFull
}

// errPageFull signals the heap layer that an update must move the record.
var errPageFull = fmt.Errorf("storage: page full")

// DeleteRecord removes the record in slot, leaving an empty slot entry.
func (p *Page) DeleteRecord(slot uint16) error {
	if slot >= p.slotCount() {
		return fmt.Errorf("storage: slot %d out of range on page %d", slot, p.id)
	}
	if off, _ := p.slot(slot); off == 0 {
		return fmt.Errorf("storage: slot %d of page %d already empty", slot, p.id)
	}
	p.setSlot(slot, 0, 0)
	return nil
}

// SlotCount returns the size of the slot directory (including empty slots).
func (p *Page) SlotCount() uint16 { return p.slotCount() }

// SlotUsed reports whether the slot holds a record.
func (p *Page) SlotUsed(slot uint16) bool {
	if slot >= p.slotCount() {
		return false
	}
	off, _ := p.slot(slot)
	return off != 0
}

// compact repacks live records against the end of the page, reclaiming the
// space of deleted and superseded records.
func (p *Page) compact() {
	type live struct {
		slot uint16
		data []byte
	}
	n := p.slotCount()
	records := make([]live, 0, n)
	for s := uint16(0); s < n; s++ {
		off, length := p.slot(s)
		if off == 0 {
			continue
		}
		buf := make([]byte, length)
		copy(buf, p.data[off:off+length])
		records = append(records, live{slot: s, data: buf})
	}
	end := uint16(PageSize)
	for _, r := range records {
		end -= uint16(len(r.data))
		copy(p.data[end:], r.data)
		p.setSlot(r.slot, end, uint16(len(r.data)))
	}
	p.setFreeEnd(end)
}
