package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tcodm/internal/obs"
)

func TestArchiveAppendReadRoundTrip(t *testing.T) {
	a := NewMemArchive()
	payloads := [][]byte{
		[]byte("x"),
		bytes.Repeat([]byte("compressible "), 200),
		{0x00, 0xFF, 0x7F},
	}
	var offs []uint64
	for _, p := range payloads {
		off, frame, err := a.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(frame) == 0 {
			t.Fatal("empty frame")
		}
		offs = append(offs, off)
	}
	var acc obs.Resources
	for i, off := range offs {
		got, err := a.ReadBlock(off, &acc)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Errorf("block %d: payload mismatch", i)
		}
	}
	if acc.Arc != uint64(len(offs)) {
		t.Errorf("accounted %d archive reads, want %d", acc.Arc, len(offs))
	}
	// Reads past the logical frontier are refused, not garbage-decoded.
	if _, err := a.ReadBlock(a.Size()+8, nil); !errors.Is(err, ErrArchiveCorrupt) {
		t.Errorf("read past frontier: %v, want ErrArchiveCorrupt", err)
	}
	if _, err := a.ReadBlock(0, nil); !errors.Is(err, ErrArchiveCorrupt) {
		t.Errorf("read inside header: %v, want ErrArchiveCorrupt", err)
	}
}

func TestArchiveFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.arc")
	a, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives reopen")
	off, _, err := a.Append(payload)
	if err != nil {
		t.Fatal(err)
	}
	size := a.Size()
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Size() != size {
		t.Fatalf("reopened size %d, want %d", b.Size(), size)
	}
	got, err := b.ReadBlock(off, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload lost across reopen")
	}
}

func TestArchiveBadMagicRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.arc")
	if err := os.WriteFile(path, []byte("NOTANARCHIVE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenArchive(path); !errors.Is(err, ErrArchiveCorrupt) {
		t.Errorf("bad magic open: %v, want ErrArchiveCorrupt", err)
	}
}

// TestArchiveTornHeaderReinitialized: a power cut can tear the very first
// write, leaving a strict prefix of the magic. Nothing can have committed
// above a header that never landed, so the open reinitializes instead of
// refusing.
func TestArchiveTornHeaderReinitialized(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.arc")
	if err := os.WriteFile(path, []byte("TCDMA"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := OpenArchive(path)
	if err != nil {
		t.Fatalf("torn-header open: %v", err)
	}
	defer a.Close()
	if a.Size() != uint64(ArchiveHeaderSize) {
		t.Errorf("reinitialized size %d, want %d", a.Size(), ArchiveHeaderSize)
	}
	off, _, err := a.Append([]byte("after reinit"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadBlock(off, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "after reinit" {
		t.Errorf("payload %q after reinit", got)
	}
}

func TestArchiveSetSizeRollsBackStagedAppend(t *testing.T) {
	a := NewMemArchive()
	size0 := a.Size()
	if _, _, err := a.Append([]byte("staged then aborted")); err != nil {
		t.Fatal(err)
	}
	a.SetSize(size0)
	off, _, err := a.Append([]byte("committed"))
	if err != nil {
		t.Fatal(err)
	}
	if off != size0 {
		t.Errorf("append after rollback at %d, want frontier %d", off, size0)
	}
	got, err := a.ReadBlock(off, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "committed" {
		t.Errorf("payload %q after overwrite", got)
	}
}

func TestArchiveWriteFrameAtIdempotent(t *testing.T) {
	a := NewMemArchive()
	off, frame, err := a.Append([]byte("replayed"))
	if err != nil {
		t.Fatal(err)
	}
	// Re-applying the same frame (double recovery) changes nothing.
	for i := 0; i < 3; i++ {
		if err := a.WriteFrameAt(off, frame); err != nil {
			t.Fatal(err)
		}
	}
	got, err := a.ReadBlock(off, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "replayed" {
		t.Errorf("payload %q after re-apply", got)
	}
	// Replay into a fresh archive (follower bootstrap from WAL) works too.
	b := NewMemArchive()
	if err := b.WriteFrameAt(off, frame); err != nil {
		t.Fatal(err)
	}
	if b.Size() != a.Size() {
		t.Errorf("replayed size %d, want %d", b.Size(), a.Size())
	}
}

// FuzzArchiveSegment drives the block codec with arbitrary bytes, two ways:
// as a payload (encode/decode must round-trip byte-identically) and as a
// hostile frame (decode must either succeed or fail with ErrArchiveCorrupt
// — never panic, never return a wrong answer). Single-byte corruptions of a
// valid frame must always be detected (CRC-32C catches all of them).
func FuzzArchiveSegment(f *testing.F) {
	f.Add([]byte("hello archive"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA1}, 100))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, 1}) // hostile length
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes as a frame: must not panic, must not misbehave.
		if p, n, err := DecodeArchiveBlock(data); err == nil {
			if n < 9 || n > len(data) {
				t.Fatalf("decode claimed frame length %d of %d input bytes", n, len(data))
			}
			_ = p
		} else if !errors.Is(err, ErrArchiveCorrupt) {
			t.Fatalf("decode error not ErrArchiveCorrupt: %v", err)
		}

		// Same bytes as a payload: exact round-trip.
		frame, err := EncodeArchiveBlock(data)
		if err != nil {
			if len(data) == 0 {
				return // empty payloads are refused by contract
			}
			t.Fatalf("encode: %v", err)
		}
		got, n, err := DecodeArchiveBlock(frame)
		if err != nil {
			t.Fatalf("decode of fresh frame: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("frame length %d, decoded %d", len(frame), n)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round-trip payload mismatch")
		}

		// Every single-byte corruption is caught or harmless — a wrong
		// payload without an error is the one forbidden outcome.
		stride := 1
		if len(frame) > 64 {
			stride = len(frame) / 64
		}
		for i := 0; i < len(frame); i += stride {
			c := append([]byte(nil), frame...)
			c[i] ^= 0xFF
			p2, _, err := DecodeArchiveBlock(c)
			if err == nil && !bytes.Equal(p2, data) {
				t.Fatalf("corrupt byte %d decoded to a wrong answer", i)
			}
			if err != nil && !errors.Is(err, ErrArchiveCorrupt) {
				t.Fatalf("corrupt byte %d: error not ErrArchiveCorrupt: %v", i, err)
			}
		}
	})
}
