package storage

import (
	"bytes"
	"math/rand"
	"testing"
)

func newTestHeap(t *testing.T, poolPages int) (*Heap, *BufferPool, *MemDevice) {
	t.Helper()
	dev := NewMemDevice()
	bp := NewBufferPool(dev, poolPages)
	if err := InitMeta(bp); err != nil {
		t.Fatal(err)
	}
	return NewHeap(bp, nil), bp, dev
}

func TestHeapInsertFetch(t *testing.T) {
	h, _, _ := newTestHeap(t, 16)
	recs := [][]byte{
		[]byte("alpha"),
		[]byte(""),
		bytes.Repeat([]byte("beta"), 100),
	}
	var rids []RID
	for _, r := range recs {
		rid, err := h.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		got, err := h.Fetch(rid)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Errorf("rid %v: got %q, want %q", rid, got, recs[i])
		}
	}
}

func TestHeapUpdateInPlace(t *testing.T) {
	h, _, _ := newTestHeap(t, 16)
	rid, err := h.Insert([]byte("original content here"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Update(rid, []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, _ := h.Fetch(rid)
	if string(got) != "short" {
		t.Errorf("after update: %q", got)
	}
}

func TestHeapUpdateWithMoveKeepsRID(t *testing.T) {
	h, _, _ := newTestHeap(t, 32)
	// Fill one page almost completely so a grow must move the record.
	var rids []RID
	for i := 0; i < 7; i++ {
		rid, err := h.Insert(bytes.Repeat([]byte{byte('a' + i)}, 1000))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	victim := rids[0]
	grown := bytes.Repeat([]byte("G"), 3000)
	if err := h.Update(victim, grown); err != nil {
		t.Fatal(err)
	}
	got, err := h.Fetch(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, grown) {
		t.Error("grown record content lost")
	}
	// Update the moved record again, growing it further: the stub must be
	// repointed and the home RID must keep working.
	bigger := bytes.Repeat([]byte("H"), 6000)
	if err := h.Update(victim, bigger); err != nil {
		t.Fatal(err)
	}
	got, err = h.Fetch(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bigger) {
		t.Error("twice-moved record content lost")
	}
	// Neighbours intact.
	for i := 1; i < 7; i++ {
		got, err := h.Fetch(rids[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte('a' + i)}, 1000)) {
			t.Errorf("neighbour %d corrupted", i)
		}
	}
}

func TestHeapOverflowRecords(t *testing.T) {
	h, bp, _ := newTestHeap(t, 16)
	big := make([]byte, 3*PageSize+123)
	rng := rand.New(rand.NewSource(5))
	for i := range big {
		big[i] = byte(rng.Intn(256))
	}
	rid, err := h.Insert(big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Fetch(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("overflow record corrupted")
	}
	// Update to a different big payload: old chain freed, content correct.
	freeBefore := len(bp.FreePages())
	big2 := make([]byte, 2*PageSize)
	for i := range big2 {
		big2[i] = byte(rng.Intn(256))
	}
	if err := h.Update(rid, big2); err != nil {
		t.Fatal(err)
	}
	got, err = h.Fetch(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big2) {
		t.Fatal("updated overflow record corrupted")
	}
	if len(bp.FreePages()) <= freeBefore {
		t.Error("old overflow chain not freed")
	}
	// Shrink to a plain record.
	if err := h.Update(rid, []byte("small again")); err != nil {
		t.Fatal(err)
	}
	got, _ = h.Fetch(rid)
	if string(got) != "small again" {
		t.Errorf("after shrink: %q", got)
	}
}

func TestHeapDelete(t *testing.T) {
	h, bp, _ := newTestHeap(t, 16)
	rid, _ := h.Insert([]byte("condemned"))
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fetch(rid); err == nil {
		t.Error("fetch of deleted record should fail")
	}
	// Delete of an overflow record frees the chain.
	big := make([]byte, 2*PageSize)
	rid2, _ := h.Insert(big)
	before := len(bp.FreePages())
	if err := h.Delete(rid2); err != nil {
		t.Fatal(err)
	}
	if len(bp.FreePages()) <= before {
		t.Error("overflow chain not freed on delete")
	}
}

func TestHeapDeleteMovedRecord(t *testing.T) {
	h, _, _ := newTestHeap(t, 32)
	var rids []RID
	for i := 0; i < 7; i++ {
		rid, _ := h.Insert(bytes.Repeat([]byte{byte('a' + i)}, 1000))
		rids = append(rids, rid)
	}
	if err := h.Update(rids[0], bytes.Repeat([]byte("G"), 3000)); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(rids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fetch(rids[0]); err == nil {
		t.Error("fetch of deleted moved record should fail")
	}
}

func TestHeapScan(t *testing.T) {
	h, _, _ := newTestHeap(t, 64)
	want := map[string]bool{}
	for i := 0; i < 50; i++ {
		payload := []byte{byte(i), byte(i >> 8), 0xAB}
		if _, err := h.Insert(payload); err != nil {
			t.Fatal(err)
		}
		want[string(payload)] = true
	}
	// Move one record so the scan's moved-record pass is exercised.
	rid, _ := h.Insert(bytes.Repeat([]byte("m"), 100))
	// Fill its page, then grow.
	for i := 0; i < 10; i++ {
		if _, err := h.Insert(bytes.Repeat([]byte("f"), 700)); err != nil {
			t.Fatal(err)
		}
	}
	moved := bytes.Repeat([]byte("M"), 7000)
	if err := h.Update(rid, moved); err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	err := h.Scan(func(r RID, data []byte) (bool, error) {
		got[string(data)]++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for payload := range want {
		if got[payload] != 1 {
			t.Errorf("payload %x seen %d times", payload, got[payload])
		}
	}
	if got[string(moved)] != 1 {
		t.Errorf("moved record seen %d times in scan", got[string(moved)])
	}
}

func TestHeapScanEarlyStop(t *testing.T) {
	h, _, _ := newTestHeap(t, 16)
	for i := 0; i < 10; i++ {
		if _, err := h.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := h.Scan(func(r RID, data []byte) (bool, error) {
		n++
		return n < 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("scan visited %d records after early stop", n)
	}
}

func TestHeapRebuildFreeSpace(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 16)
	if err := InitMeta(bp); err != nil {
		t.Fatal(err)
	}
	h := NewHeap(bp, nil)
	var rids []RID
	for i := 0; i < 30; i++ {
		rid, err := h.Insert(bytes.Repeat([]byte("x"), 400))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Fresh heap over the same device: rebuild, then keep inserting.
	h2 := NewHeap(bp, nil)
	if err := h2.Rebuild(dev); err != nil {
		t.Fatal(err)
	}
	rid, err := h2.Insert([]byte("after rebuild"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h2.Fetch(rid)
	if err != nil || string(got) != "after rebuild" {
		t.Fatalf("fetch after rebuild: %q, %v", got, err)
	}
	// Old records still reachable.
	for _, r := range rids[:5] {
		if _, err := h2.Fetch(r); err != nil {
			t.Fatalf("old record lost after rebuild: %v", err)
		}
	}
}

func TestHeapUndoPrimitives(t *testing.T) {
	h, _, _ := newTestHeap(t, 16)
	// UndoInsert removes.
	rid, _ := h.Insert([]byte("inserted"))
	if err := h.UndoInsert(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fetch(rid); err == nil {
		t.Error("record survived UndoInsert")
	}
	// UndoUpdate restores.
	rid2, _ := h.Insert([]byte("v1"))
	if err := h.Update(rid2, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := h.UndoUpdate(rid2, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Fetch(rid2); string(got) != "v1" {
		t.Errorf("UndoUpdate left %q", got)
	}
	// UndoDelete reinstates at the same RID.
	rid3, _ := h.Insert([]byte("doomed"))
	if err := h.Delete(rid3); err != nil {
		t.Fatal(err)
	}
	if err := h.UndoDelete(rid3, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Fetch(rid3); string(got) != "doomed" {
		t.Errorf("UndoDelete left %q", got)
	}
}

type recordingLogger struct {
	lsn     uint64
	inserts []RID
	updates []RID
	deletes []RID
}

func (l *recordingLogger) LogHeapInsert(rid RID, data []byte) uint64 {
	l.lsn++
	l.inserts = append(l.inserts, rid)
	return l.lsn
}
func (l *recordingLogger) LogHeapUpdate(rid RID, data []byte) uint64 {
	l.lsn++
	l.updates = append(l.updates, rid)
	return l.lsn
}
func (l *recordingLogger) LogHeapDelete(rid RID) uint64 {
	l.lsn++
	l.deletes = append(l.deletes, rid)
	return l.lsn
}

func TestHeapLogsMutations(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 16)
	if err := InitMeta(bp); err != nil {
		t.Fatal(err)
	}
	log := &recordingLogger{}
	h := NewHeap(bp, log)
	rid, _ := h.Insert([]byte("a"))
	_ = h.Update(rid, []byte("b"))
	_ = h.Delete(rid)
	if len(log.inserts) != 1 || len(log.updates) != 1 || len(log.deletes) != 1 {
		t.Fatalf("log = %+v", log)
	}
	// Page LSN stamped with the last mutation.
	p, err := bp.Fetch(rid.Page)
	if err != nil {
		t.Fatal(err)
	}
	if p.LSN() != 3 {
		t.Errorf("page LSN = %d, want 3", p.LSN())
	}
	bp.Unpin(p)
}

func TestHeapRedoIdempotent(t *testing.T) {
	h, bp, _ := newTestHeap(t, 16)
	rid := RID{Page: 1, Slot: 0}
	if err := h.RedoInsert(rid, []byte("redone"), 5); err != nil {
		t.Fatal(err)
	}
	got, err := h.Fetch(rid)
	if err != nil || string(got) != "redone" {
		t.Fatalf("after redo: %q, %v", got, err)
	}
	// Replaying the same insert is a no-op: the slot already belongs to
	// the record, and its payload is left for later records to reconcile.
	if err := h.RedoInsert(rid, []byte("ignored"), 5); err != nil {
		t.Fatal(err)
	}
	got, _ = h.Fetch(rid)
	if string(got) != "redone" {
		t.Errorf("redo insert clobbered existing record: %q", got)
	}
	// Update redo always converges to the logged payload — replay runs in
	// strict log order, so the last record wins regardless of page LSNs.
	if err := h.RedoUpdate(rid, []byte("newer"), 9); err != nil {
		t.Fatal(err)
	}
	got, _ = h.Fetch(rid)
	if string(got) != "newer" {
		t.Errorf("redo update not applied: %q", got)
	}
	if err := h.RedoUpdate(rid, []byte("newer"), 9); err != nil {
		t.Fatal(err)
	}
	got, _ = h.Fetch(rid)
	if string(got) != "newer" {
		t.Errorf("repeated redo update diverged: %q", got)
	}
	// Delete redo, twice: the second call must see "already gone".
	if err := h.RedoDelete(rid, 12); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fetch(rid); err == nil {
		t.Error("record survived redo delete")
	}
	if err := h.RedoDelete(rid, 12); err != nil {
		t.Fatalf("repeated redo delete: %v", err)
	}
	_ = bp
}

func TestHeapManyRecordsAcrossPages(t *testing.T) {
	h, _, dev := newTestHeap(t, 8)
	type entry struct {
		rid  RID
		data []byte
	}
	var entries []entry
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		data := make([]byte, 50+rng.Intn(400))
		for j := range data {
			data[j] = byte(rng.Intn(256))
		}
		rid, err := h.Insert(data)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, entry{rid, data})
	}
	if dev.NumPages() < 10 {
		t.Errorf("expected many pages, got %d", dev.NumPages())
	}
	for _, e := range entries {
		got, err := h.Fetch(e.rid)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, e.data) {
			t.Fatal("record corrupted across pages")
		}
	}
}

func TestHeapRecordSizeBoundaries(t *testing.T) {
	// Records exactly at the page-capacity boundary and just past it: the
	// first stays inline, the second spills to an overflow chain. Both
	// must round-trip.
	h, _, _ := newTestHeap(t, 32)
	for _, n := range []int{MaxHeapRecord - 1, MaxHeapRecord, MaxHeapRecord + 1, 2 * MaxHeapRecord} {
		data := bytes.Repeat([]byte{0xA5}, n)
		rid, err := h.Insert(data)
		if err != nil {
			t.Fatalf("insert %d bytes: %v", n, err)
		}
		got, err := h.Fetch(rid)
		if err != nil {
			t.Fatalf("fetch %d bytes: %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%d-byte record corrupted", n)
		}
	}
}

func TestHeapZeroLengthRecord(t *testing.T) {
	h, _, _ := newTestHeap(t, 16)
	rid, err := h.Insert(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Fetch(rid)
	if err != nil || len(got) != 0 {
		t.Fatalf("zero-length record: %v, %v", got, err)
	}
	if err := h.Update(rid, []byte("grown")); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Fetch(rid); string(got) != "grown" {
		t.Errorf("grown from zero = %q", got)
	}
}
