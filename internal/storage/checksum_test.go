package storage

import (
	"math/rand"
	"strings"
	"testing"
)

func TestChecksumRoundTrip(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 4)
	p, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p.InitHeap()
	if _, err := p.InsertRecord([]byte("checksummed")); err != nil {
		t.Fatal(err)
	}
	p.MarkDirty(false)
	id := p.ID()
	bp.Unpin(p)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Evict by churning the pool, then refetch from the device: the
	// checksum must verify.
	for i := 0; i < 8; i++ {
		q, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		bp.Unpin(q)
	}
	p2, err := bp.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.ReadRecord(0)
	if err != nil || string(got) != "checksummed" {
		t.Fatalf("record = %q, %v", got, err)
	}
	bp.Unpin(p2)
}

func TestChecksumDetectsCorruption(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 4)
	p, _ := bp.Allocate()
	p.InitHeap()
	if _, err := p.InsertRecord([]byte("precious data")); err != nil {
		t.Fatal(err)
	}
	p.MarkDirty(false)
	id := p.ID()
	bp.Unpin(p)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Corrupt random single bytes directly on the device; a fresh pool
	// must refuse the page every time.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		buf := make([]byte, PageSize)
		if err := dev.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		off := rng.Intn(PageSize)
		orig := buf[off]
		buf[off] ^= byte(1 + rng.Intn(255))
		if buf[off] == orig {
			continue
		}
		if err := dev.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		fresh := NewBufferPool(dev, 4)
		_, err := fresh.Fetch(id)
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("trial %d: corruption at %d not detected: %v", trial, off, err)
		}
		// Restore for the next trial.
		buf[off] = orig
		if err := dev.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestChecksumAcceptsZeroPages(t *testing.T) {
	// A crash can leave freshly allocated all-zero pages on the device;
	// they must read back without a checksum complaint.
	dev := NewMemDevice()
	if err := dev.WritePage(0, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	bp := NewBufferPool(dev, 4)
	p, err := bp.Fetch(0)
	if err != nil {
		t.Fatalf("zero page rejected: %v", err)
	}
	bp.Unpin(p)
}
