// Package storage implements the record-oriented storage substrate beneath
// the temporal object layer: a page-granular block device abstraction
// (file-backed or in-memory), 8 KiB slotted pages, a buffer pool with LRU
// replacement and pin counts, and a heap record manager with forwarding
// stubs and overflow chains for records larger than a page.
//
// This substrate plays the role the PRIMA kernel played for the original
// system: the non-temporal record storage the temporal complex-object model
// is realized on top of.
package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// PageSize is the unit of I/O and buffering.
const PageSize = 8192

// PageID numbers pages within a device, starting at 0 (the meta page).
type PageID uint32

// InvalidPage is the sentinel for "no page".
const InvalidPage PageID = 0xFFFFFFFF

// Device is a page-granular block store.
type Device interface {
	// ReadPage fills buf (len PageSize) with the contents of page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (len PageSize) as the contents of page id.
	// Writing one past the current end grows the device.
	WritePage(id PageID, buf []byte) error
	// NumPages returns the current number of pages.
	NumPages() PageID
	// Sync forces written pages to stable storage.
	Sync() error
	// Close releases the device. The device must not be used afterwards.
	Close() error
}

// FileDevice is a Device backed by a single operating-system file.
type FileDevice struct {
	mu    sync.Mutex
	f     *os.File
	pages PageID
}

// OpenFileDevice opens (creating if needed) the file at path as a device.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open device: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat device: %w", err)
	}
	size := info.Size()
	if rem := size % PageSize; rem != 0 {
		if size < PageSize {
			// Not even a complete meta page: this is not a database (or one
			// whose very first page write tore); nothing to salvage.
			f.Close()
			return nil, fmt.Errorf("storage: device %s holds %d bytes, less than one page — not a database", path, size)
		}
		// A crash mid-grow left a torn partial page at the tail. The grow
		// was never acknowledged (its write did not complete), so the
		// fragment holds no committed data the full pages and log cannot
		// reproduce: truncate it and proceed instead of refusing to open.
		size -= rem
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: truncating torn tail page of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: sync after tail truncation of %s: %w", path, err)
		}
	}
	return &FileDevice{f: f, pages: PageID(size / PageSize)}, nil
}

// ReadPage implements Device.
func (d *FileDevice) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: read buffer has %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id >= d.pages {
		return fmt.Errorf("storage: read of page %d beyond device end %d", id, d.pages)
	}
	_, err := d.f.ReadAt(buf, int64(id)*PageSize)
	if err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements Device.
func (d *FileDevice) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: write buffer has %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id > d.pages {
		return fmt.Errorf("storage: write of page %d would leave a hole (device has %d pages)", id, d.pages)
	}
	if _, err := d.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	if id == d.pages {
		d.pages++
	}
	return nil
}

// NumPages implements Device.
func (d *FileDevice) NumPages() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

// Sync implements Device.
func (d *FileDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}

// Close implements Device.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

// MemDevice is a Device kept entirely in memory, used by tests, benchmarks
// and ephemeral databases.
type MemDevice struct {
	mu    sync.Mutex
	pages [][]byte
	// SyncCount counts Sync calls, letting tests assert durability points.
	SyncCount int
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// ReadPage implements Device.
func (d *MemDevice) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: read buffer has %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: read of page %d beyond device end %d", id, len(d.pages))
	}
	copy(buf, d.pages[id])
	return nil
}

// WritePage implements Device.
func (d *MemDevice) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: write buffer has %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case int(id) < len(d.pages):
		copy(d.pages[id], buf)
	case int(id) == len(d.pages):
		p := make([]byte, PageSize)
		copy(p, buf)
		d.pages = append(d.pages, p)
	default:
		return fmt.Errorf("storage: write of page %d would leave a hole (device has %d pages)", id, len(d.pages))
	}
	return nil
}

// NumPages implements Device.
func (d *MemDevice) NumPages() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return PageID(len(d.pages))
}

// Sync implements Device.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.SyncCount++
	return nil
}

// Close implements Device.
func (d *MemDevice) Close() error { return nil }
