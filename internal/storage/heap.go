package storage

import (
	"encoding/binary"
	"fmt"

	"tcodm/internal/obs"
)

// RID identifies a record in the heap: a page number and a slot within it.
// A record's RID is stable for its lifetime: if the record outgrows its
// page it moves, leaving a forwarding stub at the home RID.
type RID struct {
	Page PageID
	Slot uint16
}

// IsValid reports whether the RID denotes a record. Page 0 is the meta
// page and never holds heap records, so the zero RID is the "no record"
// sentinel.
func (r RID) IsValid() bool { return r.Page != 0 && r.Page != InvalidPage }

// NilRID is the zero "no record" value. (Page 0 is the meta page and never
// holds heap records, so {0,0} is safe as a sentinel.)
var NilRID = RID{}

// Pack encodes the RID as a uint64 for storage in records and keys.
func (r RID) Pack() uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// UnpackRID decodes a RID packed by Pack.
func UnpackRID(u uint64) RID {
	return RID{Page: PageID(u >> 16), Slot: uint16(u & 0xFFFF)}
}

// String renders the RID as "page:slot".
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Record header flags (first byte of every stored heap record).
const (
	flagPlain    byte = 0x00
	flagForward  byte = 0x01 // payload: 8-byte target RID
	flagOverflow byte = 0x02 // payload: 4-byte total length, 4-byte first page
	flagMoved    byte = 0x04 // payload prefixed with 8-byte home RID
)

// UndoRecorder captures before-images of heap mutations so an aborting
// transaction can roll its effects back in memory (the log is redo-only).
// A nil recorder disables capture.
type UndoRecorder interface {
	RecordInsert(rid RID)
	RecordUpdate(rid RID, prior []byte)
	RecordDelete(rid RID, prior []byte)
}

// RedoLogger receives the physical redo stream of heap mutations. Each Log
// call returns the LSN assigned to the mutation; the heap stamps it on the
// affected page so recovery can skip already-applied changes. A nil logger
// disables logging (used for unlogged databases and for undo operations).
type RedoLogger interface {
	LogHeapInsert(rid RID, data []byte) uint64
	LogHeapUpdate(rid RID, data []byte) uint64
	LogHeapDelete(rid RID) uint64
}

// Heap is the record manager: variable-length records addressed by stable
// RIDs, with forwarding for grown records and overflow chains for records
// larger than a page. A database has exactly one heap; the page type byte
// identifies its pages.
type Heap struct {
	pool *BufferPool
	log  RedoLogger

	// txnActive marks mutations as belonging to an uncommitted
	// transaction: pages they dirty become unevictable (no-steal) until
	// the transaction layer calls EndTxn on the pool.
	txnActive bool
	undo      UndoRecorder

	// freeSpace maps heap pages to their current free byte counts; it is
	// rebuilt on open and maintained on every mutation.
	freeSpace map[PageID]int

	// touched accumulates every page the current logged mutation physically
	// modifies, so its LSN can be stamped on all of them. A record move
	// dirties the home page (stub) and the target page (copy); stamping
	// only the home would let the pool flush the target before the log
	// record covering it is durable, breaking the WAL rule.
	touched []PageID

	met heapMetrics
}

// heapMetrics holds the heap's instrumentation handles (nil = no-op).
// Page-level I/O cost is already covered by the pool; the heap layer adds
// record-level access shape: fetches, forwarding hops, and overflow-chain
// walks with their length distribution.
type heapMetrics struct {
	fetches       *obs.Counter
	forwardHops   *obs.Counter
	overflowWalks *obs.Counter
	overflowLen   *obs.Histogram // pages per overflow-chain walk
}

// SetMetrics binds the heap's instrumentation to reg under "heap.*" names.
// A nil registry disables instrumentation (the default).
func (h *Heap) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		h.met = heapMetrics{}
		return
	}
	h.met = heapMetrics{
		fetches:       reg.Counter("heap.fetches"),
		forwardHops:   reg.Counter("heap.forward_hops"),
		overflowWalks: reg.Counter("heap.overflow_walks"),
		overflowLen:   reg.Histogram("heap.overflow_chain"),
	}
}

// NewHeap creates a heap over the pool. Call Recover or Rebuild before use
// on an existing database.
func NewHeap(pool *BufferPool, log RedoLogger) *Heap {
	return &Heap{pool: pool, log: log, freeSpace: map[PageID]int{}}
}

// SetLogger replaces the redo logger (nil disables logging).
func (h *Heap) SetLogger(log RedoLogger) { h.log = log }

// SetTxnActive toggles transaction mode: while active, dirtied pages are
// pinned against eviction until the transaction ends.
func (h *Heap) SetTxnActive(active bool) { h.txnActive = active }

// SetUndoRecorder installs (or removes, with nil) the before-image sink.
func (h *Heap) SetUndoRecorder(u UndoRecorder) { h.undo = u }

// Rebuild scans the device and reconstructs the free-space map.
func (h *Heap) Rebuild(dev Device) error {
	h.freeSpace = map[PageID]int{}
	n := dev.NumPages()
	for id := PageID(1); id < n; id++ {
		p, err := h.pool.Fetch(id)
		if err != nil {
			return err
		}
		if p.Type() == PageHeap {
			h.freeSpace[id] = p.FreeSpace()
		}
		h.pool.Unpin(p)
	}
	return nil
}

// threshold below which a page is no longer offered for fresh inserts.
const minUsableFree = 64

// Insert stores data, returning its home RID.
func (h *Heap) Insert(data []byte) (RID, error) {
	h.touched = h.touched[:0]
	rid, err := h.insertPhysical(h.encodePlainOrOverflow(data, NilRID))
	if err != nil {
		return NilRID, err
	}
	if h.log != nil {
		lsn := h.log.LogHeapInsert(rid, data)
		h.stampTouched(rid.Page, lsn)
	}
	if h.undo != nil {
		h.undo.RecordInsert(rid)
	}
	return rid, nil
}

// encodePlainOrOverflow builds the physical record for payload data. If the
// record must spill to overflow pages, the chain is written immediately
// (forced to the device) and the head record references it. home != NilRID
// marks the record as moved from home.
func (h *Heap) encodePlainOrOverflow(data []byte, home RID) []byte {
	headerLen := 1
	if home.IsValid() {
		headerLen += 8
	}
	if headerLen+len(data) <= MaxHeapRecord {
		rec := make([]byte, 0, headerLen+len(data))
		flag := flagPlain
		if home.IsValid() {
			flag |= flagMoved
		}
		rec = append(rec, flag)
		if home.IsValid() {
			rec = binary.LittleEndian.AppendUint64(rec, home.Pack())
		}
		return append(rec, data...)
	}
	first, err := h.writeOverflowChain(data)
	if err != nil {
		// Surface the error through the insert path by returning a record
		// that cannot be stored; callers treat chain failures as fatal.
		panic(fmt.Sprintf("storage: overflow chain write failed: %v", err))
	}
	flag := flagOverflow
	if home.IsValid() {
		flag |= flagMoved
	}
	rec := []byte{flag}
	if home.IsValid() {
		rec = binary.LittleEndian.AppendUint64(rec, home.Pack())
	}
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(data)))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(first))
	return rec
}

const overflowHeaderLen = 18 // pageLSN(8) + type(1) + pad(3) + next(4) + used(2)
const overflowPayload = PageSize - overflowHeaderLen

// writeOverflowChain stores data across dedicated overflow pages, forcing
// them to the device immediately. Chains are immutable: updates write a new
// chain and free the old one, so a flushed head record never references an
// unflushed chain.
func (h *Heap) writeOverflowChain(data []byte) (PageID, error) {
	var first, prev PageID = InvalidPage, InvalidPage
	var prevPage *Page
	for off := 0; off < len(data); {
		p, err := h.pool.Allocate()
		if err != nil {
			return InvalidPage, err
		}
		p.SetType(PageOverflow)
		n := len(data) - off
		if n > overflowPayload {
			n = overflowPayload
		}
		binary.LittleEndian.PutUint32(p.data[12:], uint32(InvalidPage))
		binary.LittleEndian.PutUint16(p.data[16:], uint16(n))
		copy(p.data[overflowHeaderLen:], data[off:off+n])
		off += n
		if first == InvalidPage {
			first = p.ID()
		}
		if prevPage != nil {
			binary.LittleEndian.PutUint32(prevPage.data[12:], uint32(p.ID()))
			prevPage.MarkDirty(false)
			if err := h.forceFlush(prevPage); err != nil {
				return InvalidPage, err
			}
			h.pool.Unpin(prevPage)
		}
		prev = p.ID()
		prevPage = p
		_ = prev
	}
	if prevPage != nil {
		prevPage.MarkDirty(false)
		if err := h.forceFlush(prevPage); err != nil {
			return InvalidPage, err
		}
		h.pool.Unpin(prevPage)
	}
	return first, nil
}

// forceFlush writes a single page straight through to the device.
func (h *Heap) forceFlush(p *Page) error {
	h.pool.mu.Lock()
	defer h.pool.mu.Unlock()
	return h.pool.flushFrameLocked(p)
}

// readOverflowChain reassembles an overflow record, charging the pages it
// touches to acc (nil = uncharged).
func (h *Heap) readOverflowChain(first PageID, total uint32, acc *obs.Resources) ([]byte, error) {
	h.met.overflowWalks.Inc()
	pages := uint64(0)
	out := make([]byte, 0, total)
	id := first
	for id != InvalidPage {
		pages++
		p, err := h.pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		if p.Type() != PageOverflow {
			h.pool.Unpin(p)
			return nil, fmt.Errorf("storage: page %d in overflow chain has type %d", id, p.Type())
		}
		next := PageID(binary.LittleEndian.Uint32(p.data[12:]))
		used := binary.LittleEndian.Uint16(p.data[16:])
		out = append(out, p.data[overflowHeaderLen:overflowHeaderLen+int(used)]...)
		h.pool.Unpin(p)
		id = next
	}
	if uint32(len(out)) != total {
		return nil, fmt.Errorf("storage: overflow chain yielded %d bytes, header says %d", len(out), total)
	}
	h.met.overflowLen.Record(pages)
	acc.Add(obs.Resources{Pages: pages})
	return out, nil
}

// freeOverflowChain returns the chain's pages to the free list.
func (h *Heap) freeOverflowChain(first PageID) error {
	id := first
	for id != InvalidPage {
		p, err := h.pool.Fetch(id)
		if err != nil {
			return err
		}
		next := PageID(binary.LittleEndian.Uint32(p.data[12:]))
		h.pool.Unpin(p)
		if err := h.pool.Deallocate(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// insertPhysical places an already-encoded record on some page with room.
func (h *Heap) insertPhysical(rec []byte) (RID, error) {
	for id, free := range h.freeSpace {
		if free >= len(rec)+minUsableFree || free >= len(rec)+slotEntryLen {
			p, err := h.pool.Fetch(id)
			if err != nil {
				return NilRID, err
			}
			slot, err := p.InsertRecord(rec)
			if err == nil {
				p.MarkDirty(h.txnActive)
				h.freeSpace[id] = p.FreeSpace()
				h.touch(id)
				h.pool.Unpin(p)
				return RID{Page: id, Slot: slot}, nil
			}
			// Stale free-space entry; refresh and keep looking.
			h.freeSpace[id] = p.FreeSpace()
			h.pool.Unpin(p)
		}
	}
	p, err := h.pool.Allocate()
	if err != nil {
		return NilRID, err
	}
	p.InitHeap()
	slot, err := p.InsertRecord(rec)
	if err != nil {
		h.pool.Unpin(p)
		return NilRID, err
	}
	p.MarkDirty(h.txnActive)
	h.freeSpace[p.ID()] = p.FreeSpace()
	h.touch(p.ID())
	rid := RID{Page: p.ID(), Slot: slot}
	h.pool.Unpin(p)
	return rid, nil
}

// Fetch returns the record payload stored at rid (following forwarding and
// reassembling overflow chains). The returned slice is always a copy.
func (h *Heap) Fetch(rid RID) ([]byte, error) {
	return h.FetchAcc(rid, nil)
}

// FetchAcc is Fetch with exact page accounting: every page the record
// fetch touches (home, forwarding hops, overflow-chain pages) is charged
// to acc. The count is logical — pages the buffer pool had cached still
// count — so it is a deterministic function of the record layout, which
// is what makes serial and parallel query accounting comparable.
func (h *Heap) FetchAcc(rid RID, acc *obs.Resources) ([]byte, error) {
	h.met.fetches.Inc()
	data, _, err := h.fetchResolved(rid, acc)
	return data, err
}

// fetchResolved returns the payload plus the physical location it ended up
// reading from (after following at most one forwarding hop). Pages touched
// are charged to acc (nil = uncharged).
func (h *Heap) fetchResolved(rid RID, acc *obs.Resources) ([]byte, RID, error) {
	p, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, NilRID, err
	}
	acc.Add(obs.Resources{Pages: 1})
	raw, err := p.ReadRecord(rid.Slot)
	if err != nil {
		h.pool.Unpin(p)
		return nil, NilRID, err
	}
	if len(raw) == 0 {
		h.pool.Unpin(p)
		return nil, NilRID, fmt.Errorf("storage: empty physical record at %v", rid)
	}
	flag := raw[0]
	if flag&flagForward != 0 {
		target := UnpackRID(binary.LittleEndian.Uint64(raw[1:]))
		h.pool.Unpin(p)
		h.met.forwardHops.Inc()
		return h.fetchResolved(target, acc)
	}
	body := raw[1:]
	if flag&flagMoved != 0 {
		body = body[8:] // skip home RID
	}
	if flag&flagOverflow != 0 {
		total := binary.LittleEndian.Uint32(body)
		first := PageID(binary.LittleEndian.Uint32(body[4:]))
		h.pool.Unpin(p)
		data, err := h.readOverflowChain(first, total, acc)
		return data, rid, err
	}
	out := make([]byte, len(body))
	copy(out, body)
	h.pool.Unpin(p)
	return out, rid, nil
}

// Update replaces the payload of the record whose home is rid.
func (h *Heap) Update(rid RID, data []byte) error {
	var prior []byte
	if h.undo != nil {
		var err error
		prior, err = h.Fetch(rid)
		if err != nil {
			return err
		}
	}
	h.touched = h.touched[:0]
	if err := h.updatePhysical(rid, data); err != nil {
		return err
	}
	if h.undo != nil {
		h.undo.RecordUpdate(rid, prior)
	}
	if h.log != nil {
		lsn := h.log.LogHeapUpdate(rid, data)
		h.stampTouched(rid.Page, lsn)
	}
	return nil
}

func (h *Heap) updatePhysical(home RID, data []byte) error {
	p, err := h.pool.Fetch(home.Page)
	if err != nil {
		return err
	}
	raw, err := p.ReadRecord(home.Slot)
	if err != nil {
		h.pool.Unpin(p)
		return err
	}
	flag := raw[0]
	if flag&flagForward != 0 {
		// The live record is elsewhere; operate there.
		target := UnpackRID(binary.LittleEndian.Uint64(raw[1:]))
		h.pool.Unpin(p)
		return h.updateMoved(home, target, data)
	}
	// Free a superseded overflow chain before overwriting the head.
	if flag&flagOverflow != 0 {
		body := raw[1:]
		if flag&flagMoved != 0 {
			body = body[8:]
		}
		first := PageID(binary.LittleEndian.Uint32(body[4:]))
		h.pool.Unpin(p)
		if err := h.freeOverflowChain(first); err != nil {
			return err
		}
		p, err = h.pool.Fetch(home.Page)
		if err != nil {
			return err
		}
	}
	rec := h.encodePlainOrOverflow(data, NilRID)
	err = p.UpdateRecord(home.Slot, rec)
	if err == nil {
		p.MarkDirty(h.txnActive)
		h.freeSpace[home.Page] = p.FreeSpace()
		h.touch(home.Page)
		h.pool.Unpin(p)
		return nil
	}
	if err != errPageFull {
		h.pool.Unpin(p)
		return err
	}
	h.pool.Unpin(p)
	// Move: place the record elsewhere, leave a forwarding stub at home.
	movedRec := h.encodePlainOrOverflow(data, home)
	newRID, err := h.insertPhysical(movedRec)
	if err != nil {
		return err
	}
	stub := make([]byte, 9)
	stub[0] = flagForward
	binary.LittleEndian.PutUint64(stub[1:], newRID.Pack())
	p, err = h.pool.Fetch(home.Page)
	if err != nil {
		return err
	}
	if err := p.UpdateRecord(home.Slot, stub); err != nil {
		h.pool.Unpin(p)
		return fmt.Errorf("storage: installing forward stub at %v: %w", home, err)
	}
	p.MarkDirty(h.txnActive)
	h.freeSpace[home.Page] = p.FreeSpace()
	h.touch(home.Page)
	h.pool.Unpin(p)
	return nil
}

// updateMoved updates a record living at target whose home stub is at home.
func (h *Heap) updateMoved(home, target RID, data []byte) error {
	p, err := h.pool.Fetch(target.Page)
	if err != nil {
		return err
	}
	raw, err := p.ReadRecord(target.Slot)
	if err != nil {
		h.pool.Unpin(p)
		return err
	}
	if raw[0]&flagOverflow != 0 {
		body := raw[1:]
		if raw[0]&flagMoved != 0 {
			body = body[8:]
		}
		first := PageID(binary.LittleEndian.Uint32(body[4:]))
		h.pool.Unpin(p)
		if err := h.freeOverflowChain(first); err != nil {
			return err
		}
		p, err = h.pool.Fetch(target.Page)
		if err != nil {
			return err
		}
	}
	rec := h.encodePlainOrOverflow(data, home)
	err = p.UpdateRecord(target.Slot, rec)
	if err == nil {
		p.MarkDirty(h.txnActive)
		h.freeSpace[target.Page] = p.FreeSpace()
		h.touch(target.Page)
		h.pool.Unpin(p)
		return nil
	}
	if err != errPageFull {
		h.pool.Unpin(p)
		return err
	}
	// Move again: delete the old moved copy, insert a fresh one, and
	// repoint the home stub.
	if derr := p.DeleteRecord(target.Slot); derr != nil {
		h.pool.Unpin(p)
		return derr
	}
	p.MarkDirty(h.txnActive)
	h.freeSpace[target.Page] = p.FreeSpace()
	h.touch(target.Page)
	h.pool.Unpin(p)
	newRID, err := h.insertPhysical(rec)
	if err != nil {
		return err
	}
	stub := make([]byte, 9)
	stub[0] = flagForward
	binary.LittleEndian.PutUint64(stub[1:], newRID.Pack())
	hp, err := h.pool.Fetch(home.Page)
	if err != nil {
		return err
	}
	if err := hp.UpdateRecord(home.Slot, stub); err != nil {
		h.pool.Unpin(hp)
		return err
	}
	hp.MarkDirty(h.txnActive)
	h.freeSpace[home.Page] = hp.FreeSpace()
	h.touch(home.Page)
	h.pool.Unpin(hp)
	return nil
}

// Delete removes the record whose home is rid, including any moved copy
// and overflow chain.
func (h *Heap) Delete(rid RID) error {
	var prior []byte
	if h.undo != nil {
		var err error
		prior, err = h.Fetch(rid)
		if err != nil {
			return err
		}
	}
	h.touched = h.touched[:0]
	if err := h.deletePhysical(rid); err != nil {
		return err
	}
	if h.undo != nil {
		h.undo.RecordDelete(rid, prior)
	}
	if h.log != nil {
		lsn := h.log.LogHeapDelete(rid)
		h.stampTouched(rid.Page, lsn)
	}
	return nil
}

func (h *Heap) deletePhysical(rid RID) error {
	p, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	raw, err := p.ReadRecord(rid.Slot)
	if err != nil {
		h.pool.Unpin(p)
		return err
	}
	flag := raw[0]
	var target RID
	var chain PageID = InvalidPage
	if flag&flagForward != 0 {
		target = UnpackRID(binary.LittleEndian.Uint64(raw[1:]))
	} else if flag&flagOverflow != 0 {
		body := raw[1:]
		if flag&flagMoved != 0 {
			body = body[8:]
		}
		chain = PageID(binary.LittleEndian.Uint32(body[4:]))
	}
	if err := p.DeleteRecord(rid.Slot); err != nil {
		h.pool.Unpin(p)
		return err
	}
	p.MarkDirty(h.txnActive)
	h.freeSpace[rid.Page] = p.FreeSpace()
	h.touch(rid.Page)
	h.pool.Unpin(p)
	if target.IsValid() {
		return h.deletePhysical(target)
	}
	if chain != InvalidPage {
		return h.freeOverflowChain(chain)
	}
	return nil
}

// stampLSN stamps a page with a mutation LSN (WAL rule bookkeeping).
func (h *Heap) stampLSN(id PageID, lsn uint64) {
	p, err := h.pool.Fetch(id)
	if err != nil {
		return
	}
	p.SetLSN(lsn)
	p.MarkDirty(h.txnActive)
	h.pool.Unpin(p)
}

// stampTouched stamps lsn on the home page and on every other page the
// just-logged mutation physically modified (recorded in h.touched). A page
// may only be flushed once the log covering its changes is durable; the
// pool enforces that via the page LSN, so each modified page must carry
// the mutation's LSN — not just the home page.
func (h *Heap) stampTouched(home PageID, lsn uint64) {
	h.stampLSN(home, lsn)
	for i, id := range h.touched {
		if id == home {
			continue
		}
		dup := false
		for _, prev := range h.touched[:i] {
			if prev == id {
				dup = true
				break
			}
		}
		if !dup {
			h.stampLSN(id, lsn)
		}
	}
}

// touch records a page as physically modified by the current mutation.
func (h *Heap) touch(id PageID) { h.touched = append(h.touched, id) }

// --- Recovery entry points (unlogged, self-repairing) ---------------------
//
// A logical heap mutation can touch several pages: the home page plus a
// move target, or overflow pages. A crash may flush any subset of them, so
// no single page LSN can witness whether the op's effects are on disk —
// the home page can carry a forwarding stub whose target copy never
// landed. Replay therefore does not skip records based on LSN guards.
// Each redo entry point inspects the logical state reachable from the home
// RID and re-establishes the logged post-state, repairing dangling stubs
// and divergent float placements as it goes. Replay runs strictly in log
// order, so overwriting a page that already holds a later state is safe:
// the later log records restore it, and after a full replay every record
// holds exactly its last logged state.
//
// Two rules keep repair from turning stale bytes into corruption:
//
//   - Overflow chains referenced by possibly-stale heads are never freed:
//     a stale head can alias pages that were reused after the checkpoint.
//     Orphaned chains are leaked — lost space, never lost data.
//   - A float copy is deleted or relocated only when its embedded home RID
//     proves ownership; anything else at the expected location is left
//     alone.

// ownerOf resolves which home RID the physical record raw (stored at
// position at) belongs to: a moved copy names its home explicitly; any
// other record is owned by the slot it occupies. ok is false when the
// record is too short to decode.
func ownerOf(raw []byte, at RID) (owner RID, ok bool) {
	if len(raw) == 0 {
		return NilRID, false
	}
	if raw[0]&flagMoved != 0 {
		if len(raw) < 9 {
			return NilRID, false
		}
		return UnpackRID(binary.LittleEndian.Uint64(raw[1:])), true
	}
	return at, true
}

// RedoInsert re-establishes a logged insert: afterwards rid's home slot
// holds a record owned by rid — this op's payload, or a later state that
// was already on disk and that later log records will reconcile.
func (h *Heap) RedoInsert(rid RID, data []byte, lsn uint64) error {
	p, err := h.fetchOrFormat(rid.Page)
	if err != nil {
		return err
	}
	if raw, rerr := p.ReadRecord(rid.Slot); rerr == nil {
		owner, ok := ownerOf(raw, rid)
		if ok && owner == rid {
			// The slot already belongs to this record: the insert (or a
			// later op on the same record) reached the device pre-crash.
			if p.LSN() < lsn {
				p.SetLSN(lsn)
			}
			p.MarkDirty(false)
			h.pool.Unpin(p)
			return nil
		}
		// Replay floated another record's copy into the slot this insert
		// needs. Relocate that copy (repointing its home stub), then
		// reclaim the slot.
		alien := append([]byte(nil), raw...)
		h.pool.Unpin(p)
		if ok {
			if err := h.relocateMovedCopy(owner, rid, alien); err != nil {
				return err
			}
		}
		p, err = h.pool.Fetch(rid.Page)
		if err != nil {
			return err
		}
		if err := p.DeleteRecord(rid.Slot); err != nil {
			h.pool.Unpin(p)
			return err
		}
	}
	rec := h.encodePlainOrOverflow(data, NilRID)
	if err := p.InsertRecordAt(rid.Slot, rec); err != nil {
		// The crashed layout left no room at the exact slot; float the
		// payload and keep only a 9-byte stub at home.
		h.pool.Unpin(p)
		return h.redoFloat(rid, data, lsn, true)
	}
	if p.LSN() < lsn {
		p.SetLSN(lsn)
	}
	p.MarkDirty(false)
	h.freeSpace[rid.Page] = p.FreeSpace()
	h.pool.Unpin(p)
	return nil
}

// RedoUpdate re-establishes a logged update: afterwards rid resolves to
// exactly data.
func (h *Heap) RedoUpdate(rid RID, data []byte, lsn uint64) error {
	p, err := h.fetchOrFormat(rid.Page)
	if err != nil {
		return err
	}
	raw, rerr := p.ReadRecord(rid.Slot)
	if rerr != nil {
		// Home slot absent: the insert's page version never reached the
		// device (e.g. a quarantined torn page). Recreate the record.
		h.pool.Unpin(p)
		return h.RedoInsert(rid, data, lsn)
	}
	if owner, ok := ownerOf(raw, rid); ok && owner != rid {
		// The slot holds another record's float copy, so the disk already
		// reflects a state past this record's deletion and slot reuse.
		// This op's effect is unobservable after full replay; leave the
		// later state alone.
		h.pool.Unpin(p)
		return nil
	}
	if raw[0]&flagForward != 0 && len(raw) >= 9 {
		target := UnpackRID(binary.LittleEndian.Uint64(raw[1:]))
		h.pool.Unpin(p)
		return h.redoUpdateMoved(rid, target, data, lsn)
	}
	// Plain record or overflow head at home. A superseded chain is leaked,
	// not freed: its head may be stale and alias reused pages.
	rec := h.encodePlainOrOverflow(data, NilRID)
	uerr := p.UpdateRecord(rid.Slot, rec)
	if uerr == errPageFull {
		h.pool.Unpin(p)
		return h.redoFloat(rid, data, lsn, false)
	}
	if uerr != nil {
		h.pool.Unpin(p)
		return uerr
	}
	if p.LSN() < lsn {
		p.SetLSN(lsn)
	}
	p.MarkDirty(false)
	h.freeSpace[rid.Page] = p.FreeSpace()
	h.pool.Unpin(p)
	return nil
}

// redoUpdateMoved rewrites the float copy of home in place when the stub
// target verifiably holds it; otherwise the stub dangles (the copy never
// reached the device, or its page was reused) and a fresh copy is floated.
func (h *Heap) redoUpdateMoved(home, target RID, data []byte, lsn uint64) error {
	if target.IsValid() && target.Page < h.pool.dev.NumPages() {
		tp, err := h.pool.Fetch(target.Page)
		if err != nil {
			return err
		}
		if tp.Type() == PageHeap {
			raw, rerr := tp.ReadRecord(target.Slot)
			if rerr == nil && len(raw) >= 9 && raw[0]&flagMoved != 0 &&
				UnpackRID(binary.LittleEndian.Uint64(raw[1:])) == home {
				rec := h.encodePlainOrOverflow(data, home)
				uerr := tp.UpdateRecord(target.Slot, rec)
				if uerr == nil {
					if tp.LSN() < lsn {
						tp.SetLSN(lsn)
					}
					tp.MarkDirty(false)
					h.freeSpace[target.Page] = tp.FreeSpace()
					h.pool.Unpin(tp)
					h.stampRedoLSN(home.Page, lsn)
					return nil
				}
				if uerr != errPageFull {
					h.pool.Unpin(tp)
					return uerr
				}
				// The copy no longer fits where it sits: drop it here and
				// re-float below.
				if derr := tp.DeleteRecord(target.Slot); derr != nil {
					h.pool.Unpin(tp)
					return derr
				}
				tp.MarkDirty(false)
				h.freeSpace[target.Page] = tp.FreeSpace()
			}
		}
		h.pool.Unpin(tp)
	}
	return h.redoFloat(home, data, lsn, false)
}

// RedoDelete re-establishes a logged delete: afterwards rid's home slot
// holds nothing owned by rid.
func (h *Heap) RedoDelete(rid RID, lsn uint64) error {
	p, err := h.fetchOrFormat(rid.Page)
	if err != nil {
		return err
	}
	raw, rerr := p.ReadRecord(rid.Slot)
	if rerr != nil {
		// Already gone.
		if p.LSN() < lsn {
			p.SetLSN(lsn)
		}
		p.MarkDirty(false)
		h.pool.Unpin(p)
		return nil
	}
	if owner, ok := ownerOf(raw, rid); ok && owner != rid {
		// The slot was reused by another record's float copy after this
		// delete took effect on disk; leave the later state alone.
		h.pool.Unpin(p)
		return nil
	}
	var target RID
	if raw[0]&flagForward != 0 && len(raw) >= 9 {
		target = UnpackRID(binary.LittleEndian.Uint64(raw[1:]))
	}
	if err := p.DeleteRecord(rid.Slot); err != nil {
		h.pool.Unpin(p)
		return err
	}
	if p.LSN() < lsn {
		p.SetLSN(lsn)
	}
	p.MarkDirty(false)
	h.freeSpace[rid.Page] = p.FreeSpace()
	h.pool.Unpin(p)
	if target.IsValid() && target.Page < h.pool.dev.NumPages() {
		tp, err := h.pool.Fetch(target.Page)
		if err != nil {
			return err
		}
		if tp.Type() == PageHeap {
			traw, terr := tp.ReadRecord(target.Slot)
			if terr == nil && len(traw) >= 9 && traw[0]&flagMoved != 0 &&
				UnpackRID(binary.LittleEndian.Uint64(traw[1:])) == rid {
				if derr := tp.DeleteRecord(target.Slot); derr != nil {
					h.pool.Unpin(tp)
					return derr
				}
				if tp.LSN() < lsn {
					tp.SetLSN(lsn)
				}
				tp.MarkDirty(false)
				h.freeSpace[target.Page] = tp.FreeSpace()
			}
		}
		h.pool.Unpin(tp)
	}
	// Any overflow chain the record owned is leaked, not freed.
	return nil
}

// redoFloat places data as a float copy of home on any page with room and
// writes (newSlot) or overwrites the home slot with a forwarding stub.
func (h *Heap) redoFloat(home RID, data []byte, lsn uint64, newSlot bool) error {
	moved, err := h.insertPhysical(h.encodePlainOrOverflow(data, home))
	if err != nil {
		return err
	}
	stub := make([]byte, 9)
	stub[0] = flagForward
	binary.LittleEndian.PutUint64(stub[1:], moved.Pack())
	p, err := h.pool.Fetch(home.Page)
	if err != nil {
		return err
	}
	if newSlot {
		err = p.InsertRecordAt(home.Slot, stub)
	} else {
		err = p.UpdateRecord(home.Slot, stub)
	}
	if err != nil {
		h.pool.Unpin(p)
		return fmt.Errorf("storage: redo stub at %v: %w", home, err)
	}
	if p.LSN() < lsn {
		p.SetLSN(lsn)
	}
	p.MarkDirty(false)
	h.freeSpace[home.Page] = p.FreeSpace()
	h.pool.Unpin(p)
	h.stampRedoLSN(moved.Page, lsn)
	return nil
}

// relocateMovedCopy moves another record's float copy (payload rec,
// currently occupying slot from) out of a slot that a logged insert needs,
// repointing the owner's home stub at the new location. A copy whose home
// no longer points at it is an orphan and is abandoned.
func (h *Heap) relocateMovedCopy(owner, from RID, rec []byte) error {
	if !owner.IsValid() || owner.Page >= h.pool.dev.NumPages() {
		return nil
	}
	hp, err := h.pool.Fetch(owner.Page)
	if err != nil {
		return err
	}
	raw, rerr := hp.ReadRecord(owner.Slot)
	points := rerr == nil && len(raw) >= 9 && raw[0]&flagForward != 0 &&
		UnpackRID(binary.LittleEndian.Uint64(raw[1:])) == from
	h.pool.Unpin(hp)
	if !points {
		return nil
	}
	moved, err := h.insertPhysical(rec)
	if err != nil {
		return err
	}
	stub := make([]byte, 9)
	stub[0] = flagForward
	binary.LittleEndian.PutUint64(stub[1:], moved.Pack())
	hp, err = h.pool.Fetch(owner.Page)
	if err != nil {
		return err
	}
	if err := hp.UpdateRecord(owner.Slot, stub); err != nil {
		h.pool.Unpin(hp)
		return err
	}
	hp.MarkDirty(false)
	h.freeSpace[owner.Page] = hp.FreeSpace()
	h.pool.Unpin(hp)
	return nil
}

func (h *Heap) stampRedoLSN(id PageID, lsn uint64) {
	p, err := h.pool.Fetch(id)
	if err != nil {
		return
	}
	if p.LSN() < lsn {
		p.SetLSN(lsn)
	}
	p.MarkDirty(false)
	h.pool.Unpin(p)
}

// fetchOrFormat fetches a page, formatting it as a heap page if it is
// fresh (needed when redo targets a page allocated after the checkpoint).
func (h *Heap) fetchOrFormat(id PageID) (*Page, error) {
	for h.pool.dev.NumPages() <= id {
		p, err := h.pool.Allocate()
		if err != nil {
			return nil, err
		}
		p.InitHeap()
		p.MarkDirty(false)
		h.freeSpace[p.ID()] = p.FreeSpace()
		h.pool.Unpin(p)
	}
	p, err := h.pool.Fetch(id)
	if err != nil {
		return nil, err
	}
	if p.Type() != PageHeap {
		p.InitHeap()
		p.MarkDirty(false)
		h.freeSpace[id] = p.FreeSpace()
	}
	return p, nil
}

// --- Unlogged primitives for transaction undo ----------------------------

// UndoInsert removes a record inserted by an aborting transaction.
func (h *Heap) UndoInsert(rid RID) error { return h.deletePhysical(rid) }

// UndoUpdate restores the previous payload of a record.
func (h *Heap) UndoUpdate(rid RID, prior []byte) error { return h.updatePhysical(rid, prior) }

// UndoDelete restores a record deleted by an aborting transaction.
func (h *Heap) UndoDelete(rid RID, prior []byte) error {
	rec := h.encodePlainOrOverflow(prior, NilRID)
	p, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(p)
	if err := p.InsertRecordAt(rid.Slot, rec); err != nil {
		return err
	}
	p.MarkDirty(h.txnActive)
	h.freeSpace[rid.Page] = p.FreeSpace()
	return nil
}

// Scan calls fn for every live record (by home RID, skipping forwarding
// stubs and moved copies' physical locations — each record is visited once
// under its home RID). Scanning stops early if fn returns false or an
// error.
func (h *Heap) Scan(fn func(rid RID, data []byte) (bool, error)) error {
	n := h.pool.dev.NumPages()
	for id := PageID(1); id < n; id++ {
		p, err := h.pool.Fetch(id)
		if err != nil {
			return err
		}
		if p.Type() != PageHeap {
			h.pool.Unpin(p)
			continue
		}
		slots := p.SlotCount()
		type item struct {
			rid  RID
			data []byte
		}
		var items []item
		for s := uint16(0); s < slots; s++ {
			if !p.SlotUsed(s) {
				continue
			}
			raw, err := p.ReadRecord(s)
			if err != nil {
				h.pool.Unpin(p)
				return err
			}
			flag := raw[0]
			if flag&flagForward != 0 || flag&flagMoved != 0 {
				continue // visited via home RID
			}
			rid := RID{Page: id, Slot: s}
			var data []byte
			if flag&flagOverflow != 0 {
				total := binary.LittleEndian.Uint32(raw[1:])
				first := PageID(binary.LittleEndian.Uint32(raw[5:]))
				data, err = h.readOverflowChain(first, total, nil)
				if err != nil {
					h.pool.Unpin(p)
					return err
				}
			} else {
				data = make([]byte, len(raw)-1)
				copy(data, raw[1:])
			}
			items = append(items, item{rid: rid, data: data})
		}
		h.pool.Unpin(p)
		for _, it := range items {
			cont, err := fn(it.rid, it.data)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
	}
	// Second pass: records that moved keep their home (stub) RID but their
	// payload lives elsewhere. Visit them via their stubs.
	for id := PageID(1); id < n; id++ {
		p, err := h.pool.Fetch(id)
		if err != nil {
			return err
		}
		if p.Type() != PageHeap {
			h.pool.Unpin(p)
			continue
		}
		var stubs []RID
		for s := uint16(0); s < p.SlotCount(); s++ {
			if !p.SlotUsed(s) {
				continue
			}
			raw, err := p.ReadRecord(s)
			if err != nil {
				h.pool.Unpin(p)
				return err
			}
			if raw[0]&flagForward != 0 {
				stubs = append(stubs, RID{Page: id, Slot: s})
			}
		}
		h.pool.Unpin(p)
		for _, rid := range stubs {
			data, _, err := h.fetchResolved(rid, nil)
			if err != nil {
				return err
			}
			cont, err := fn(rid, data)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
	}
	return nil
}
