package storage

import (
	"encoding/binary"
	"fmt"
)

// The meta page (page 0) holds database-wide state. Layout after the common
// page header:
//
//	offset 20: magic      uint32  ("TCDM")
//	offset 24: version    uint16
//	offset 26: clean      uint8   (1 = clean shutdown / checkpoint)
//	offset 27: pad        uint8
//	offset 28: payloadLen uint32  (engine payload length)
//	offset 32: payload    [...]   (engine-owned bytes)
//
// The engine payload carries the catalog record RID, ID and clock high
// water marks, index roots, and the persisted free list.
const (
	metaMagic   uint32 = 0x5443_444D // "TCDM"
	metaVersion uint16 = 1

	metaMagicOff   = 20
	metaVersionOff = 24
	metaCleanOff   = 26
	metaLenOff     = 28
	metaPayloadOff = 32
	// MetaPayloadMax is the maximum engine payload size.
	MetaPayloadMax = PageSize - metaPayloadOff
)

// InitMeta formats a fresh meta page on the device (page 0).
func InitMeta(pool *BufferPool) error {
	if pool.dev.NumPages() != 0 {
		return fmt.Errorf("storage: InitMeta on non-empty device (%d pages)", pool.dev.NumPages())
	}
	p, err := pool.Allocate()
	if err != nil {
		return err
	}
	defer pool.Unpin(p)
	if p.ID() != 0 {
		return fmt.Errorf("storage: meta page allocated as page %d", p.ID())
	}
	p.SetType(PageMeta)
	binary.LittleEndian.PutUint32(p.data[metaMagicOff:], metaMagic)
	binary.LittleEndian.PutUint16(p.data[metaVersionOff:], metaVersion)
	p.data[metaCleanOff] = 1
	binary.LittleEndian.PutUint32(p.data[metaLenOff:], 0)
	p.MarkDirty(false)
	return nil
}

// ReadMeta validates the meta page and returns the engine payload and the
// clean-shutdown flag.
func ReadMeta(pool *BufferPool) (payload []byte, clean bool, err error) {
	p, err := pool.Fetch(0)
	if err != nil {
		return nil, false, err
	}
	defer pool.Unpin(p)
	if p.Type() != PageMeta {
		return nil, false, fmt.Errorf("storage: page 0 has type %d, not meta", p.Type())
	}
	if got := binary.LittleEndian.Uint32(p.data[metaMagicOff:]); got != metaMagic {
		return nil, false, fmt.Errorf("storage: bad meta magic %#x", got)
	}
	if got := binary.LittleEndian.Uint16(p.data[metaVersionOff:]); got != metaVersion {
		return nil, false, fmt.Errorf("storage: unsupported database version %d", got)
	}
	n := binary.LittleEndian.Uint32(p.data[metaLenOff:])
	if n > MetaPayloadMax {
		return nil, false, fmt.Errorf("storage: corrupt meta payload length %d", n)
	}
	payload = make([]byte, n)
	copy(payload, p.data[metaPayloadOff:metaPayloadOff+int(n)])
	return payload, p.data[metaCleanOff] == 1, nil
}

// WriteMeta stores the engine payload and clean flag on the meta page.
func WriteMeta(pool *BufferPool, payload []byte, clean bool) error {
	if len(payload) > MetaPayloadMax {
		return fmt.Errorf("storage: meta payload of %d bytes exceeds %d", len(payload), MetaPayloadMax)
	}
	p, err := pool.Fetch(0)
	if err != nil {
		return err
	}
	defer pool.Unpin(p)
	if clean {
		p.data[metaCleanOff] = 1
	} else {
		p.data[metaCleanOff] = 0
	}
	binary.LittleEndian.PutUint32(p.data[metaLenOff:], uint32(len(payload)))
	copy(p.data[metaPayloadOff:], payload)
	p.MarkDirty(false)
	return nil
}
