package storage

import (
	"bytes"
	"container/list"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"time"

	"tcodm/internal/obs"
)

// FlushHook is invoked before a dirty page with the given LSN is written to
// the device; the write-ahead-log uses it to enforce the WAL rule (log
// records up to the page's LSN must be durable before the page is).
type FlushHook func(pageLSN uint64) error

// PoolStats reports buffer pool activity counters. It is a point-in-time
// view over the pool's obs metrics (see poolMetrics), kept for callers that
// predate the observability layer.
type PoolStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
}

// HitRatio returns the fraction of fetches served from the pool.
func (s PoolStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// BufferPool caches pages of a Device with LRU replacement, pin counting,
// and a no-steal policy for pages dirtied by the active transaction.
type BufferPool struct {
	mu       sync.Mutex
	dev      Device
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used; holds *frame
	free     []*Page    // recycled page buffers
	onFlush  FlushHook
	met      poolMetrics

	// freeList tracks deallocated device pages available for reuse.
	freeList []PageID
	// deferFrees quarantines deallocations made by the active transaction
	// in pendingFree instead of freeList: their on-device content may still
	// be referenced by committed records (e.g. the old overflow chain of an
	// updated record), so handing them back to Allocate before the
	// transaction's outcome is known would let a force-flushed reuse
	// clobber committed data that a crash-abort still needs.
	deferFrees  bool
	pendingFree []PageID
}

type frame struct {
	page *Page
	elem *list.Element
}

// poolMetrics holds the pool's instrumentation handles. By default they are
// standalone obs counters (counting, but exported nowhere); SetMetrics
// rebinds them to a registry, or to nil handles for true no-op mode. The
// hot path (cache hit) touches only one counter; latency histograms sit on
// the slow paths (device read, flush, evict) where a time.Now() pair is
// noise relative to the I/O.
type poolMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	flushes   *obs.Counter
	readNS    *obs.Histogram // device read latency on a miss
	flushNS   *obs.Histogram // page write-out latency (incl. WAL-rule sync)
	evictNS   *obs.Histogram // victim selection + flush on eviction
}

func standalonePoolMetrics() poolMetrics {
	return poolMetrics{
		hits:      obs.NewCounter(),
		misses:    obs.NewCounter(),
		evictions: obs.NewCounter(),
		flushes:   obs.NewCounter(),
		readNS:    obs.NewHistogram(),
		flushNS:   obs.NewHistogram(),
		evictNS:   obs.NewHistogram(),
	}
}

// SetMetrics binds the pool's instrumentation to reg under "pool.*" names.
// A nil registry disables instrumentation entirely (nil no-op handles).
func (bp *BufferPool) SetMetrics(reg *obs.Registry) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if reg == nil {
		bp.met = poolMetrics{}
		return
	}
	bp.met = poolMetrics{
		hits:      reg.Counter("pool.hits"),
		misses:    reg.Counter("pool.misses"),
		evictions: reg.Counter("pool.evictions"),
		flushes:   reg.Counter("pool.flushes"),
		readNS:    reg.Histogram("pool.read_ns"),
		flushNS:   reg.Histogram("pool.flush_ns"),
		evictNS:   reg.Histogram("pool.evict_ns"),
	}
}

// NewBufferPool creates a pool of the given capacity (in pages) over dev.
func NewBufferPool(dev Device, capacity int) *BufferPool {
	if capacity < 4 {
		capacity = 4
	}
	return &BufferPool{
		dev:      dev,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		lru:      list.New(),
		met:      standalonePoolMetrics(),
	}
}

// SetFlushHook installs the WAL-rule hook. Must be called before use.
func (bp *BufferPool) SetFlushHook(h FlushHook) { bp.onFlush = h }

// Stats returns a snapshot of the activity counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return PoolStats{
		Hits:      bp.met.hits.Value(),
		Misses:    bp.met.misses.Value(),
		Evictions: bp.met.evictions.Value(),
		Flushes:   bp.met.flushes.Value(),
	}
}

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Fetch pins and returns the page. Callers must Unpin it when done.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		bp.met.hits.Inc()
		fr.page.pin++
		bp.lru.MoveToFront(fr.elem)
		return fr.page, nil
	}
	bp.met.misses.Inc()
	p, err := bp.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	readStart := time.Time{}
	if bp.met.readNS != nil {
		readStart = time.Now()
	}
	if err := bp.dev.ReadPage(id, p.data[:]); err != nil {
		bp.releaseFrameLocked(id)
		return nil, err
	}
	if !readStart.IsZero() {
		bp.met.readNS.Observe(time.Since(readStart))
	}
	if err := verifyChecksum(id, p.data[:]); err != nil {
		bp.releaseFrameLocked(id)
		return nil, err
	}
	p.pin = 1
	return p, nil
}

// Allocate pins and returns a brand-new page appended to the device (or
// recycled from the free list). The page is zeroed and marked dirty so it
// reaches the device even if untouched.
func (bp *BufferPool) Allocate() (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	var id PageID
	if n := len(bp.freeList); n > 0 {
		id = bp.freeList[n-1]
		bp.freeList = bp.freeList[:n-1]
	} else {
		id = bp.dev.NumPages()
		// Materialize the page on the device immediately so the device
		// never has holes, even if this page is evicted before first flush.
		var zero [PageSize]byte
		if err := bp.dev.WritePage(id, zero[:]); err != nil {
			return nil, err
		}
	}
	p, err := bp.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	for i := range p.data {
		p.data[i] = 0
	}
	p.pin = 1
	p.dirty = true
	return p, nil
}

// Deallocate returns a page to the free list for reuse. The page must be
// unpinned. Its buffered contents are dropped.
func (bp *BufferPool) Deallocate(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		if fr.page.pin > 0 {
			return fmt.Errorf("storage: deallocating pinned page %d", id)
		}
		bp.lru.Remove(fr.elem)
		bp.recyclePage(fr.page)
		delete(bp.frames, id)
	}
	if bp.deferFrees {
		bp.pendingFree = append(bp.pendingFree, id)
	} else {
		bp.freeList = append(bp.freeList, id)
	}
	return nil
}

// Unpin releases one pin on the page.
func (bp *BufferPool) Unpin(p *Page) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if p.pin <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", p.id))
	}
	p.pin--
}

// FlushPage writes one page (if buffered and dirty) to the device and
// syncs. Used to persist the meta page's dirty mark eagerly.
func (bp *BufferPool) FlushPage(id PageID) error {
	bp.mu.Lock()
	fr, ok := bp.frames[id]
	if ok {
		if err := bp.flushFrameLocked(fr.page); err != nil {
			bp.mu.Unlock()
			return err
		}
	}
	bp.mu.Unlock()
	return bp.dev.Sync()
}

// FlushAll writes every dirty page to the device and syncs it. Transaction-
// dirty pages are flushed too — callers must only checkpoint at transaction
// boundaries. Pages are written in ascending ID order so a given workload
// produces one reproducible I/O sequence (fault injection counts on this).
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	ids := make([]PageID, 0, len(bp.frames))
	for id := range bp.frames {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// The meta page goes last: its magic is what marks the database as born,
	// so on the very first flush every other page must precede it — a crash
	// mid-flush then leaves a recognizably half-born file (zero page 0)
	// rather than a meta page pointing at pages that never landed.
	if len(ids) > 0 && ids[0] == 0 {
		ids = append(ids[1:], 0)
	}
	for _, id := range ids {
		fr := bp.frames[id]
		if err := bp.flushFrameLocked(fr.page); err != nil {
			return err
		}
		fr.page.txnDirty = false
	}
	return bp.dev.Sync()
}

// BeginTxn enters transaction mode for deallocations: pages freed while it
// is in effect are quarantined until EndTxn decides their fate.
func (bp *BufferPool) BeginTxn() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.deferFrees = true
}

// EndTxn clears the no-steal marks after the active transaction commits or
// aborts, making its pages evictable again. On commit the transaction's
// quarantined deallocations join the free list; on abort they are leaked
// instead — the restored before-images may still reference their on-device
// content, so they must never be reused.
func (bp *BufferPool) EndTxn(committed bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, fr := range bp.frames {
		fr.page.txnDirty = false
	}
	if committed {
		bp.freeList = append(bp.freeList, bp.pendingFree...)
	}
	bp.pendingFree = nil
	bp.deferFrees = false
}

// DirtyPages returns the number of dirty pages currently buffered.
func (bp *BufferPool) DirtyPages() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, fr := range bp.frames {
		if fr.page.dirty {
			n++
		}
	}
	return n
}

// allocFrameLocked obtains a frame for page id, evicting if necessary.
func (bp *BufferPool) allocFrameLocked(id PageID) (*Page, error) {
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictLocked(); err != nil {
			return nil, err
		}
	}
	var p *Page
	if n := len(bp.free); n > 0 {
		p = bp.free[n-1]
		bp.free = bp.free[:n-1]
	} else {
		p = &Page{}
	}
	p.id = id
	p.pin = 0
	p.dirty = false
	p.txnDirty = false
	fr := &frame{page: p}
	fr.elem = bp.lru.PushFront(fr)
	bp.frames[id] = fr
	return p, nil
}

func (bp *BufferPool) releaseFrameLocked(id PageID) {
	if fr, ok := bp.frames[id]; ok {
		bp.lru.Remove(fr.elem)
		bp.recyclePage(fr.page)
		delete(bp.frames, id)
	}
}

func (bp *BufferPool) recyclePage(p *Page) {
	if len(bp.free) < bp.capacity {
		bp.free = append(bp.free, p)
	}
}

// evictLocked removes the least recently used unpinned, non-txn-dirty page.
func (bp *BufferPool) evictLocked() error {
	start := time.Time{}
	if bp.met.evictNS != nil {
		start = time.Now()
	}
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		fr := e.Value.(*frame)
		if fr.page.pin > 0 || fr.page.txnDirty {
			continue
		}
		if err := bp.flushFrameLocked(fr.page); err != nil {
			return err
		}
		bp.lru.Remove(e)
		delete(bp.frames, fr.page.id)
		bp.recyclePage(fr.page)
		bp.met.evictions.Inc()
		if !start.IsZero() {
			bp.met.evictNS.Observe(time.Since(start))
		}
		return nil
	}
	return fmt.Errorf("storage: buffer pool exhausted: all %d pages pinned or transaction-dirty", bp.capacity)
}

func (bp *BufferPool) flushFrameLocked(p *Page) error {
	if !p.dirty {
		return nil
	}
	start := time.Time{}
	if bp.met.flushNS != nil {
		start = time.Now()
	}
	if bp.onFlush != nil {
		if err := bp.onFlush(p.LSN()); err != nil {
			return err
		}
	}
	stampChecksum(p.data[:])
	if err := bp.dev.WritePage(p.id, p.data[:]); err != nil {
		return err
	}
	p.dirty = false
	bp.met.flushes.Inc()
	if !start.IsZero() {
		bp.met.flushNS.Observe(time.Since(start))
	}
	return nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// pageChecksum computes the 24-bit CRC-32C of the page with the checksum
// bytes zeroed.
func pageChecksum(data []byte) uint32 {
	var save [3]byte
	copy(save[:], data[checksumOff:checksumOff+3])
	data[checksumOff], data[checksumOff+1], data[checksumOff+2] = 0, 0, 0
	sum := crc32.Checksum(data, crcTable) & 0xFFFFFF
	copy(data[checksumOff:], save[:])
	return sum
}

func stampChecksum(data []byte) {
	sum := pageChecksum(data)
	data[checksumOff] = byte(sum)
	data[checksumOff+1] = byte(sum >> 8)
	data[checksumOff+2] = byte(sum >> 16)
}

// verifyChecksum reports corruption in a page read from the device. Pages
// that are entirely zero are accepted: they are freshly allocated slots a
// crash abandoned before their first flush.
func verifyChecksum(id PageID, data []byte) error {
	stored := uint32(data[checksumOff]) | uint32(data[checksumOff+1])<<8 | uint32(data[checksumOff+2])<<16
	if pageChecksum(data) == stored {
		return nil
	}
	if isZeroPage(data) {
		return nil
	}
	return fmt.Errorf("storage: checksum mismatch on page %d (corruption or torn write)", id)
}

var zeroChunk [256]byte

func isZeroPage(data []byte) bool {
	for off := 0; off < len(data); off += len(zeroChunk) {
		end := off + len(zeroChunk)
		if end > len(data) {
			end = len(data)
		}
		if !bytes.Equal(data[off:end], zeroChunk[:end-off]) {
			return false
		}
	}
	return true
}

// VerifyPageChecksum reports whether a raw page image read off the device
// is intact: checksum-valid or entirely zero (a freshly allocated slot a
// crash abandoned before its first flush). Recovery uses it to sweep the
// device for torn writes without routing the damage through the pool.
func VerifyPageChecksum(id PageID, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("storage: verify buffer has %d bytes, want %d", len(data), PageSize)
	}
	return verifyChecksum(id, data)
}

// ZapPage replaces a page with a zeroed free page in the pool, without
// reading it from the device (it may be torn beyond checksum validity).
// Recovery quarantines checksum-invalid pages born after the crash horizon
// this way: their committed content, if any, is reconstructed from the log.
func (bp *BufferPool) ZapPage(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if id >= bp.dev.NumPages() {
		return fmt.Errorf("storage: zap of page %d beyond device end %d", id, bp.dev.NumPages())
	}
	p := (*Page)(nil)
	if fr, ok := bp.frames[id]; ok {
		p = fr.page
	} else {
		var err error
		p, err = bp.allocFrameLocked(id)
		if err != nil {
			return err
		}
	}
	for i := range p.data {
		p.data[i] = 0
	}
	p.SetType(PageFree)
	p.dirty = true
	return nil
}

// FreePages returns a copy of the device free list (for persistence).
func (bp *BufferPool) FreePages() []PageID {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return append([]PageID(nil), bp.freeList...)
}

// SetFreePages installs the free list (on open, from the meta page).
func (bp *BufferPool) SetFreePages(ids []PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.freeList = append([]PageID(nil), ids...)
}
