// Cold-archive block store: the immutable, compressed, append-only segment
// file history tiering migrates transaction-closed versions into. Blocks are
// length-prefixed with a per-block CRC-32C (the same checksum discipline as
// the wire protocol's frame trailers), written strictly append-only, and read
// sequentially — deep-history scans chase prevOff pointers *backwards*
// through a file whose blocks were laid down forward, so each block read is
// one contiguous I/O with no record fragmentation.
//
// Crash safety is the engine's job, not the archive's: every Append returns
// the exact frame bytes so the caller can WAL-log them (OpArchiveWrite), and
// WriteFrameAt lets recovery (or a replication follower) reproduce a frame
// at its original offset idempotently. The archive's *logical* size — the
// committed frontier — is persisted in the engine meta page; physical bytes
// past it are uncommitted orphans that the next Append overwrites.
package storage

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"tcodm/internal/obs"
)

// ArchiveFile is the byte-level handle an Archive runs on. *os.File
// implements it; the fault package's log-file wrapper satisfies it too
// (identical method set to wal.File), which is how torture scenarios inject
// torn archive writes and power cuts mid-migration.
type ArchiveFile interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
	Close() error
}

// ErrArchiveCorrupt reports a block that failed structural validation or its
// checksum. Readers must surface it — never a decoded-but-wrong answer.
var ErrArchiveCorrupt = errors.New("storage: archive block corrupt")

const (
	// archiveMagic occupies the first bytes of every archive file, so that
	// offset 0 can double as the nil block pointer.
	archiveMagic = "TCDMARC1"
	// ArchiveHeaderSize is the file offset of the first block.
	ArchiveHeaderSize = uint64(len(archiveMagic))

	// archiveMaxBody caps a block body; a hostile length prefix cannot force
	// an allocation beyond it.
	archiveMaxBody = 16 << 20

	// Body flag byte: how the payload that follows is stored.
	arcFlagRaw   byte = 0 // payload verbatim
	arcFlagFlate byte = 1 // payload DEFLATE-compressed
)

var arcCRC = crc32.MakeTable(crc32.Castagnoli)

// Archive is the cold store over a single append-only file.
type Archive struct {
	mu   sync.Mutex
	f    ArchiveFile
	size int64 // logical size: the committed-or-staged append frontier

	met archiveMetrics
}

type archiveMetrics struct {
	blocks   *obs.Counter // blocks appended
	bytes    *obs.Counter // frame bytes appended (compressed, framed)
	rawBytes *obs.Counter // payload bytes before compression
	reads    *obs.Counter // blocks read back
}

// SetMetrics binds the archive's instrumentation to reg under "archive.*"
// names (nil disables it).
func (a *Archive) SetMetrics(reg *obs.Registry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if reg == nil {
		a.met = archiveMetrics{}
		return
	}
	a.met = archiveMetrics{
		blocks:   reg.Counter("archive.blocks"),
		bytes:    reg.Counter("archive.bytes"),
		rawBytes: reg.Counter("archive.raw_bytes"),
		reads:    reg.Counter("archive.read_blocks"),
	}
}

// OpenArchive opens (creating if absent) the archive file at path.
func OpenArchive(path string) (*Archive, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open archive: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat archive: %w", err)
	}
	a, err := OpenArchiveFile(f, info.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	return a, nil
}

// OpenArchiveFile wraps an already-open archive handle of the given physical
// size — the injection seam for fault tests (mirrors wal.OpenFile). A fresh
// (empty) file gets the magic header written; an existing one has it
// verified. The logical size starts at the physical size; the engine resets
// it from the persisted meta before use (see SetSize).
func OpenArchiveFile(f ArchiveFile, size int64) (*Archive, error) {
	a := &Archive{f: f, size: size}
	if size < int64(ArchiveHeaderSize) {
		// Empty, or shorter than the header: the only way a well-formed
		// archive gets this small is a power cut tearing the very first
		// (header) write — the file holds a strict prefix of the magic and
		// nothing else could have been appended after it. Reinitialize; any
		// committed blocks live above the header and would make the file
		// longer.
		if _, err := f.WriteAt([]byte(archiveMagic), 0); err != nil {
			return nil, fmt.Errorf("storage: archive header: %w", err)
		}
		a.size = int64(ArchiveHeaderSize)
		return a, nil
	}
	hdr := make([]byte, ArchiveHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("storage: archive header: %w", err)
	}
	if string(hdr) != archiveMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrArchiveCorrupt)
	}
	return a, nil
}

// NewMemArchive returns an archive over an in-memory file (ephemeral
// engines with no path still tier uniformly; nothing survives the process).
func NewMemArchive() *Archive {
	a, err := OpenArchiveFile(&memArchiveFile{}, 0)
	if err != nil {
		panic(err) // memory writes cannot fail
	}
	return a
}

// OpenArchiveCopy opens an in-memory archive seeded with a snapshot of an
// existing archive file's bytes — the read-only open path: recovery replay
// may re-apply frames, and those writes must never reach the shared file.
// Pass nil when the file does not exist yet.
func OpenArchiveCopy(data []byte) (*Archive, error) {
	f := &memArchiveFile{data: append([]byte(nil), data...)}
	return OpenArchiveFile(f, int64(len(data)))
}

// Size returns the logical size — the offset the next Append writes at.
func (a *Archive) Size() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return uint64(a.size)
}

// SetSize moves the logical append frontier. The engine calls it with the
// persisted committed size at open (discarding uncommitted orphan bytes)
// and to roll staged appends back when the surrounding transaction aborts.
func (a *Archive) SetSize(n uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int64(n) < int64(ArchiveHeaderSize) {
		n = ArchiveHeaderSize
	}
	a.size = int64(n)
}

// EncodeArchiveBlock frames a payload: [bodyLen u32][crc32c(body) u32][body],
// body = [flag][stored payload]. The payload is DEFLATE-compressed when that
// actually wins, stored raw otherwise, so the flag makes decode unambiguous.
func EncodeArchiveBlock(payload []byte) ([]byte, error) {
	body := make([]byte, 1, 1+len(payload))
	body[0] = arcFlagRaw
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err == nil {
		if _, werr := zw.Write(payload); werr == nil && zw.Close() == nil && buf.Len() < len(payload) {
			body = append(body[:1], buf.Bytes()...)
			body[0] = arcFlagFlate
		}
	}
	if body[0] == arcFlagRaw {
		body = append(body, payload...)
	}
	if len(body) > archiveMaxBody {
		return nil, fmt.Errorf("storage: archive block body %d bytes exceeds %d", len(body), archiveMaxBody)
	}
	frame := make([]byte, 0, 8+len(body))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(body)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(body, arcCRC))
	return append(frame, body...), nil
}

// DecodeArchiveBlock validates and decodes the frame at the start of src,
// returning the payload and total frame length. Pure function over bytes —
// the fuzz target for the codec. Every failure mode wraps
// ErrArchiveCorrupt; a corrupt block can never decode to a wrong answer.
func DecodeArchiveBlock(src []byte) (payload []byte, frameLen int, err error) {
	if len(src) < 9 {
		return nil, 0, fmt.Errorf("%w: short frame (%d bytes)", ErrArchiveCorrupt, len(src))
	}
	n := int(binary.LittleEndian.Uint32(src))
	if n < 1 || n > archiveMaxBody {
		return nil, 0, fmt.Errorf("%w: implausible body length %d", ErrArchiveCorrupt, n)
	}
	if 8+n > len(src) {
		return nil, 0, fmt.Errorf("%w: body length %d exceeds available %d", ErrArchiveCorrupt, n, len(src)-8)
	}
	sum := binary.LittleEndian.Uint32(src[4:])
	body := src[8 : 8+n]
	if crc32.Checksum(body, arcCRC) != sum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrArchiveCorrupt)
	}
	switch body[0] {
	case arcFlagRaw:
		return append([]byte(nil), body[1:]...), 8 + n, nil
	case arcFlagFlate:
		zr := flate.NewReader(bytes.NewReader(body[1:]))
		out, err := io.ReadAll(io.LimitReader(zr, archiveMaxBody+1))
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, 0, fmt.Errorf("%w: inflate: %v", ErrArchiveCorrupt, err)
		}
		if len(out) > archiveMaxBody {
			return nil, 0, fmt.Errorf("%w: inflated payload exceeds %d bytes", ErrArchiveCorrupt, archiveMaxBody)
		}
		return out, 8 + n, nil
	default:
		return nil, 0, fmt.Errorf("%w: unknown body flag %#x", ErrArchiveCorrupt, body[0])
	}
}

// Append frames payload and writes it at the logical frontier, returning the
// block's offset and the exact frame bytes (for WAL logging). The write is
// physical immediately — an orphan frame from an aborted transaction is
// unreachable garbage the next Append overwrites — while the logical size
// advance is what the caller rolls back on abort via SetSize.
func (a *Archive) Append(payload []byte) (off uint64, frame []byte, err error) {
	frame, err = EncodeArchiveBlock(payload)
	if err != nil {
		return 0, nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	off = uint64(a.size)
	if _, err := a.f.WriteAt(frame, a.size); err != nil {
		return 0, nil, fmt.Errorf("storage: archive append: %w", err)
	}
	a.size += int64(len(frame))
	a.met.blocks.Inc()
	a.met.bytes.Add(uint64(len(frame)))
	a.met.rawBytes.Add(uint64(len(payload)))
	return off, frame, nil
}

// WriteFrameAt reproduces a frame at its original offset — the WAL replay
// and replication apply path. Re-applying an already-present frame is a
// byte-identical overwrite, which is what makes double recovery idempotent.
func (a *Archive) WriteFrameAt(off uint64, frame []byte) error {
	if off < ArchiveHeaderSize {
		return fmt.Errorf("%w: frame offset %d inside header", ErrArchiveCorrupt, off)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, err := a.f.WriteAt(frame, int64(off)); err != nil {
		return fmt.Errorf("storage: archive replay write: %w", err)
	}
	if end := int64(off) + int64(len(frame)); end > a.size {
		a.size = end
	}
	return nil
}

// ReadBlock reads and decodes the block at off, charging one archive-block
// read to acc. The charge is logical (every read counts, cached or not), so
// serial and parallel executions account identical totals.
func (a *Archive) ReadBlock(off uint64, acc *obs.Resources) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if off < ArchiveHeaderSize || int64(off)+9 > a.size {
		return nil, fmt.Errorf("%w: block offset %d out of range (size %d)", ErrArchiveCorrupt, off, a.size)
	}
	var hdr [8]byte
	if _, err := a.f.ReadAt(hdr[:], int64(off)); err != nil {
		return nil, fmt.Errorf("storage: archive read: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < 1 || n > archiveMaxBody || int64(off)+8+int64(n) > a.size {
		return nil, fmt.Errorf("%w: implausible body length %d at offset %d", ErrArchiveCorrupt, n, off)
	}
	frame := make([]byte, 8+n)
	if _, err := a.f.ReadAt(frame, int64(off)); err != nil {
		return nil, fmt.Errorf("storage: archive read: %w", err)
	}
	payload, _, err := DecodeArchiveBlock(frame)
	if err != nil {
		return nil, err
	}
	a.met.reads.Inc()
	acc.Add(obs.Resources{Arc: 1})
	return payload, nil
}

// Sync flushes the archive file (checkpoint discipline: archive bytes must
// be durable before the WAL records that reproduce them are truncated away).
func (a *Archive) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.f.Sync()
}

// Close releases the file.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.f.Close()
}

// WriteContent streams the logical content [0, Size) to w — snapshot
// shipping and the store digest. Physical orphan bytes past the frontier are
// not part of the store and are not streamed.
func (a *Archive) WriteContent(w io.Writer) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	buf := make([]byte, 64<<10)
	var done int64
	for done < a.size {
		n := a.size - done
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		if _, err := a.f.ReadAt(buf[:n], done); err != nil {
			return done, fmt.Errorf("storage: archive content read: %w", err)
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return done, err
		}
		done += n
	}
	return done, nil
}

// memArchiveFile is a growable in-memory ArchiveFile for path-less engines.
type memArchiveFile struct {
	mu   sync.Mutex
	data []byte
}

func (m *memArchiveFile) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memArchiveFile) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if end := off + int64(len(p)); end > int64(len(m.data)) {
		grown := make([]byte, end)
		copy(grown, m.data)
		m.data = grown
	}
	copy(m.data[off:], p)
	return len(p), nil
}

func (m *memArchiveFile) Sync() error { return nil }

func (m *memArchiveFile) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < int64(len(m.data)) {
		m.data = m.data[:size]
	}
	return nil
}

func (m *memArchiveFile) Close() error { return nil }
