package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func newHeapPage() *Page {
	p := &Page{id: 1}
	p.InitHeap()
	return p
}

func TestPageInsertRead(t *testing.T) {
	p := newHeapPage()
	records := [][]byte{
		[]byte("first"),
		[]byte(""),
		bytes.Repeat([]byte("x"), 1000),
	}
	var slots []uint16
	for _, r := range records {
		s, err := p.InsertRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.ReadRecord(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, records[i]) {
			t.Errorf("slot %d: got %q, want %q", s, got, records[i])
		}
	}
}

func TestPageDeleteAndSlotReuse(t *testing.T) {
	p := newHeapPage()
	s0, _ := p.InsertRecord([]byte("a"))
	s1, _ := p.InsertRecord([]byte("b"))
	if err := p.DeleteRecord(s0); err != nil {
		t.Fatal(err)
	}
	if p.SlotUsed(s0) {
		t.Error("deleted slot still used")
	}
	if _, err := p.ReadRecord(s0); err == nil {
		t.Error("reading deleted record should fail")
	}
	if err := p.DeleteRecord(s0); err == nil {
		t.Error("double delete should fail")
	}
	// Reinsert reuses the freed slot.
	s2, _ := p.InsertRecord([]byte("c"))
	if s2 != s0 {
		t.Errorf("expected slot reuse: got %d, want %d", s2, s0)
	}
	if got, _ := p.ReadRecord(s1); !bytes.Equal(got, []byte("b")) {
		t.Error("unrelated record disturbed")
	}
}

func TestPageUpdateInPlaceAndGrow(t *testing.T) {
	p := newHeapPage()
	s, _ := p.InsertRecord(bytes.Repeat([]byte("a"), 100))
	// Shrink in place.
	if err := p.UpdateRecord(s, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.ReadRecord(s); string(got) != "tiny" {
		t.Errorf("after shrink: %q", got)
	}
	// Grow within page.
	big := bytes.Repeat([]byte("b"), 500)
	if err := p.UpdateRecord(s, big); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.ReadRecord(s); !bytes.Equal(got, big) {
		t.Error("after grow: mismatch")
	}
}

func TestPageFullBehaviour(t *testing.T) {
	p := newHeapPage()
	// Fill the page with 1 KiB records.
	rec := bytes.Repeat([]byte("z"), 1024)
	var n int
	for {
		if p.FreeSpace() < len(rec) {
			break
		}
		if _, err := p.InsertRecord(rec); err != nil {
			t.Fatalf("insert with reported free space failed: %v", err)
		}
		n++
	}
	if n < 7 {
		t.Errorf("only %d KiB-records fit on an 8 KiB page", n)
	}
	// A grow-update on a full page must report errPageFull.
	err := p.UpdateRecord(0, bytes.Repeat([]byte("w"), 2048))
	if err != errPageFull {
		t.Errorf("expected errPageFull, got %v", err)
	}
	// The original record must be intact after the failed grow.
	if got, _ := p.ReadRecord(0); !bytes.Equal(got, rec) {
		t.Error("record corrupted by failed grow")
	}
}

func TestPageCompaction(t *testing.T) {
	p := newHeapPage()
	// Insert alternating records, delete half, then insert something that
	// only fits after compaction.
	var slots []uint16
	rec := bytes.Repeat([]byte("r"), 700)
	for p.FreeSpace() >= len(rec) {
		s, err := p.InsertRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		if i%2 == 0 {
			if err := p.DeleteRecord(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Free space is fragmented; a large record forces compaction.
	big := bytes.Repeat([]byte("B"), 2000)
	s, err := p.InsertRecord(big)
	if err != nil {
		t.Fatalf("insert after fragmentation failed: %v", err)
	}
	if got, _ := p.ReadRecord(s); !bytes.Equal(got, big) {
		t.Error("big record corrupted")
	}
	// Survivors intact.
	for i, sl := range slots {
		if i%2 == 1 {
			if got, _ := p.ReadRecord(sl); !bytes.Equal(got, rec) {
				t.Errorf("survivor %d corrupted", sl)
			}
		}
	}
}

func TestPageInsertRecordAt(t *testing.T) {
	p := newHeapPage()
	if err := p.InsertRecordAt(3, []byte("late")); err != nil {
		t.Fatal(err)
	}
	if p.SlotCount() != 4 {
		t.Errorf("slot count = %d, want 4", p.SlotCount())
	}
	if got, _ := p.ReadRecord(3); string(got) != "late" {
		t.Errorf("record = %q", got)
	}
	for s := uint16(0); s < 3; s++ {
		if p.SlotUsed(s) {
			t.Errorf("intermediate slot %d should be empty", s)
		}
	}
	if err := p.InsertRecordAt(3, []byte("dup")); err == nil {
		t.Error("insert into occupied slot should fail")
	}
	if err := p.InsertRecordAt(1, []byte("mid")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.ReadRecord(1); string(got) != "mid" {
		t.Errorf("record = %q", got)
	}
}

func TestPageRandomizedWorkload(t *testing.T) {
	p := newHeapPage()
	rng := rand.New(rand.NewSource(11))
	shadow := map[uint16][]byte{}
	for i := 0; i < 3000; i++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(shadow) == 0: // insert
			rec := make([]byte, rng.Intn(300))
			for j := range rec {
				rec[j] = byte(rng.Intn(256))
			}
			if p.FreeSpace() < len(rec) {
				continue
			}
			s, err := p.InsertRecord(rec)
			if err != nil {
				t.Fatalf("iter %d: insert: %v", i, err)
			}
			shadow[s] = rec
		case op == 1: // delete a random live slot
			for s := range shadow {
				if err := p.DeleteRecord(s); err != nil {
					t.Fatalf("iter %d: delete: %v", i, err)
				}
				delete(shadow, s)
				break
			}
		default: // update a random live slot
			for s := range shadow {
				rec := make([]byte, rng.Intn(300))
				for j := range rec {
					rec[j] = byte(rng.Intn(256))
				}
				err := p.UpdateRecord(s, rec)
				if err == errPageFull {
					break // acceptable: page too full to grow
				}
				if err != nil {
					t.Fatalf("iter %d: update: %v", i, err)
				}
				shadow[s] = rec
				break
			}
		}
	}
	for s, want := range shadow {
		got, err := p.ReadRecord(s)
		if err != nil {
			t.Fatalf("final read slot %d: %v", s, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("slot %d content diverged", s)
		}
	}
}

func TestPageTypeAndLSN(t *testing.T) {
	p := newHeapPage()
	if p.Type() != PageHeap {
		t.Error("InitHeap did not set type")
	}
	p.SetLSN(42)
	if p.LSN() != 42 {
		t.Error("LSN round-trip broken")
	}
}

func TestPageErrors(t *testing.T) {
	p := newHeapPage()
	if _, err := p.ReadRecord(0); err == nil {
		t.Error("read of nonexistent slot should fail")
	}
	if err := p.UpdateRecord(9, nil); err == nil {
		t.Error("update of nonexistent slot should fail")
	}
	if err := p.DeleteRecord(9); err == nil {
		t.Error("delete of nonexistent slot should fail")
	}
	if _, err := p.InsertRecord(make([]byte, MaxHeapRecord+1)); err == nil {
		t.Error("oversized record should fail at page level")
	}
}

func ExampleRID_String() {
	fmt.Println(RID{Page: 7, Slot: 3})
	// Output: 7:3
}
