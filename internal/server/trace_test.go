package server

import (
	"bufio"
	"net"
	"strings"
	"testing"

	"tcodm/internal/obs"
	"tcodm/internal/wire"
	"tcodm/pkg/client"
)

// treeOf indexes one trace's events by name and wires up parentage checks.
func treeOf(t *testing.T, evs []obs.Event) map[string]obs.Event {
	t.Helper()
	m := make(map[string]obs.Event, len(evs))
	for _, ev := range evs {
		m[ev.Name] = ev
	}
	return m
}

// TestClientTraceRoundTrip: a client-stamped trace id travels the wire,
// names the server-side span tree, and comes back on ResultDone together
// with the exact resource totals the executor charged.
func TestClientTraceRoundTrip(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, nil)

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.Query(`SELECT (name, salary) FROM Emp WHERE salary > 3000`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == 0 {
		t.Fatal("client query returned trace id 0; the client must stamp every call")
	}
	if res.Res.IsZero() {
		t.Fatalf("resource totals all zero for a scan over 60 employees: %s", res.Res)
	}
	if res.Res.Atoms == 0 || res.Res.Pages == 0 {
		t.Fatalf("expected nonzero atoms and pages, got %s", res.Res)
	}

	// The server tracer must hold the complete tree for that id: a root
	// "query" span with "queue" and "exec" children, and at least one
	// storage-accounting child under exec.
	evs := eng.Tracer().Trace(res.Trace)
	if len(evs) == 0 {
		t.Fatalf("server tracer has no events for trace %d", res.Trace)
	}
	tree := treeOf(t, evs)
	root, ok := tree["query"]
	if !ok {
		t.Fatalf("no root span %q in trace: %s", "query", obs.FormatTrace(evs))
	}
	if root.Parent != 0 {
		t.Errorf("root span has parent %d, want 0", root.Parent)
	}
	queue, ok := tree["queue"]
	if !ok || queue.Parent != root.Span {
		t.Errorf("queue span missing or misparented: %+v", queue)
	}
	exec, ok := tree["exec"]
	if !ok || exec.Parent != root.Span {
		t.Errorf("exec span missing or misparented: %+v", exec)
	}
	storage, ok := tree["storage"]
	if !ok || storage.Parent != exec.Span {
		t.Errorf("storage span missing or misparented: %+v", storage)
	}
	if storage.Res != res.Res {
		t.Errorf("storage span resources %s != wire-reported %s", storage.Res, res.Res)
	}
	if root.Res != res.Res {
		t.Errorf("root span resources %s != wire-reported %s", root.Res, res.Res)
	}
	// The executor's operator spans ride under exec too.
	if scan, ok := tree["op:scan"]; !ok || scan.Parent != exec.Span {
		t.Errorf("op:scan span missing or misparented: %+v", scan)
	}
}

// TestSessionTraceRoundTrip: session statements are traced like one-shot
// client calls.
func TestSessionTraceRoundTrip(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, nil)

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sess, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	res, err := sess.Query(`SELECT (name) FROM Emp WHERE salary > 1000 LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == 0 {
		t.Fatal("session query returned trace id 0")
	}
	formatted := obs.FormatTrace(eng.Tracer().Trace(res.Trace))
	for _, want := range []string{"query", "queue", "exec"} {
		if !strings.Contains(formatted, want) {
			t.Errorf("trace missing %q span:\n%s", want, formatted)
		}
	}
}

// TestServerAssignsTraceWhenClientOmitsIt: a bare legacy Query payload
// (no trailing trace id) still gets a server-assigned trace so operators
// can inspect queries from old clients. Speaks raw wire to guarantee the
// payload carries no trace field.
func TestServerAssignsTraceWhenClientOmitsIt(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, nil)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	r := bufio.NewReader(nc)
	if err := wire.WriteFrame(nc, wire.FrameHello, wire.EncodeHello("legacy/test")); err != nil {
		t.Fatal(err)
	}
	if f, err := wire.ReadFrame(r); err != nil || f.Type != wire.FrameWelcome {
		t.Fatalf("handshake: %v (frame 0x%02x)", err, f.Type)
	}

	if err := wire.WriteFrame(nc, wire.FrameQuery, wire.EncodeQuery(`SELECT (name) FROM Emp LIMIT 1`)); err != nil {
		t.Fatal(err)
	}
	var done wire.ResultDone
	for {
		f, err := wire.ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type == wire.FrameError {
			t.Fatalf("server error: %s", f.Payload)
		}
		if f.Type == wire.FrameResultDone {
			done, err = wire.DecodeResultDone(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if done.Trace == 0 {
		t.Fatal("server did not assign a trace id to a legacy untraced query")
	}
	if len(eng.Tracer().Trace(done.Trace)) == 0 {
		t.Fatalf("server-assigned trace %d has no span tree", done.Trace)
	}
}
