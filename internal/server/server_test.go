package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/value"
	"tcodm/internal/wire"
	"tcodm/internal/workload"
	"tcodm/pkg/client"
)

// startServer serves eng on an ephemeral port and returns the address.
// The server is drained at test cleanup.
func startServer(t *testing.T, eng *core.Engine, mutate func(*Config)) string {
	t.Helper()
	cfg := Config{Engine: eng, Banner: "tcoserve/test"}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

func personnelEngine(t *testing.T) *core.Engine {
	t.Helper()
	eng, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	sch, err := workload.PersonnelSchema()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(n)
		if err := eng.DefineAtomType(*at); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range sch.MoleculeTypeNames() {
		mt, _ := sch.MoleculeType(n)
		if err := eng.DefineMoleculeType(*mt); err != nil {
			t.Fatal(err)
		}
	}
	app := workload.NewEngineApplier(eng, 256)
	ops := workload.Personnel(workload.PersonnelParams{
		Depts: 4, Emps: 60, UpdatesPerEmp: 4, MovesPerEmp: 1, TimeStep: 10, Seed: 42,
	})
	if _, err := workload.Apply(ops, app); err != nil {
		t.Fatal(err)
	}
	if err := app.Flush(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestRoundTripMatchesInProcess is the golden test: the same TMQL over
// the wire and in-process must produce identical columns and rows.
func TestRoundTripMatchesInProcess(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, func(c *Config) { c.BatchRows = 7 }) // force multi-batch streaming

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	queries := []string{
		`SELECT (name, salary) FROM Emp WHERE salary > 3000`,
		`SELECT (name) FROM Emp WHERE salary > 1000 ORDER BY name LIMIT 10`,
		`SELECT HISTORY(Emp.salary) FROM Emp DURING [0, 1000)`,
		`SELECT (Dept.name, COUNT(Emp)) FROM DeptStaff`,
	}
	for _, q := range queries {
		remote, err := cl.Query(q)
		if err != nil {
			t.Fatalf("%s: remote: %v", q, err)
		}
		local, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%s: local: %v", q, err)
		}
		if len(remote.Columns) != len(local.Columns) {
			t.Fatalf("%s: columns %v vs %v", q, remote.Columns, local.Columns)
		}
		for i := range local.Columns {
			if remote.Columns[i] != local.Columns[i] {
				t.Fatalf("%s: column %d: %q vs %q", q, i, remote.Columns[i], local.Columns[i])
			}
		}
		if len(remote.Rows) != len(local.Rows) {
			t.Fatalf("%s: %d remote rows vs %d local", q, len(remote.Rows), len(local.Rows))
		}
		for i := range local.Rows {
			for j := range local.Rows[i] {
				if remote.Rows[i][j] != local.Rows[i][j] {
					t.Fatalf("%s: row %d col %d: %v vs %v", q, i, j, remote.Rows[i][j], local.Rows[i][j])
				}
			}
		}
	}
}

func TestExecParamsOverWire(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, nil)
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	bound, err := cl.Exec(`SELECT (name, salary) FROM Emp WHERE salary > $1`, value.Int(3000))
	if err != nil {
		t.Fatal(err)
	}
	lit, err := cl.Query(`SELECT (name, salary) FROM Emp WHERE salary > 3000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(bound.Rows) != len(lit.Rows) || len(bound.Rows) == 0 {
		t.Fatalf("bound %d rows, literal %d rows", len(bound.Rows), len(lit.Rows))
	}

	// A bad binding is a query error; the connection must survive it.
	if _, err := cl.Exec(`SELECT (name) FROM Emp WHERE salary > $2`, value.Int(1)); err == nil {
		t.Fatal("expected bind error")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection unusable after bind error: %v", err)
	}
}

func TestQueryErrorKeepsSession(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, nil)
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	_, err = cl.Query(`SELECT (nosuch) FROM Emp`)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeQuery {
		t.Fatalf("expected CodeQuery server error, got %v", err)
	}
	res, err := cl.Query(`SELECT (name) FROM Emp WHERE salary > 4000`)
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("session dead after query error: %v", err)
	}
}

func TestPerQueryTimeout(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, nil)
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sess, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Option("timeout", "1ns"); err != nil {
		t.Fatal(err)
	}
	_, err = sess.Query(`SELECT (name) FROM Emp`)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeTimeout {
		t.Fatalf("expected CodeTimeout, got %v", err)
	}
	// The session survives a timeout.
	if _, err := sess.Option("timeout", "0"); err != nil {
		t.Fatal(err)
	}
	if res, err := sess.Query(`SELECT (name) FROM Emp WHERE salary > 4000`); err != nil || len(res.Rows) == 0 {
		t.Fatalf("session dead after timeout: %v", err)
	}
}

func TestSessionPinnedReadView(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, nil)
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sess, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const q = `SELECT (name) FROM Emp WHERE salary > 0`
	if _, err := sess.Begin(); err != nil {
		t.Fatal(err)
	}
	before, err := sess.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	// A concurrent writer commits a new employee. (IDs before Begin: a
	// write transaction holds the engine lock until Commit.)
	deptIDs, err := eng.IDs("Dept")
	if err != nil {
		t.Fatal(err)
	}
	txn, err := eng.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Insert("Emp", map[string]value.V{
		"name": value.String_("newhire"), "salary": value.Int(99999), "dept": value.Ref(deptIDs[0]),
	}, 0); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	pinned, err := sess.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pinned.Rows) != len(before.Rows) {
		t.Fatalf("pinned view drifted: %d rows before commit, %d after", len(before.Rows), len(pinned.Rows))
	}

	if err := sess.End(); err != nil {
		t.Fatal(err)
	}
	after, err := sess.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != len(before.Rows)+1 {
		t.Fatalf("unpinned view missing commit: %d rows, want %d", len(after.Rows), len(before.Rows)+1)
	}
}

// TestConcurrentSessions runs many parallel readers against one writer —
// the single-writer/multi-reader contract over the network, under -race.
func TestConcurrentSessions(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, func(c *Config) { c.MaxConns = 128 })

	const sessions = 64
	const queriesPerSession = 5

	stopWriter := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		defer close(writerDone)
		deptIDs, err := eng.IDs("Dept")
		if err != nil {
			writerDone <- err
			return
		}
		for i := 0; ; i++ {
			select {
			case <-stopWriter:
				return
			default:
			}
			txn, err := eng.Begin()
			if err != nil {
				writerDone <- err
				return
			}
			_, err = txn.Insert("Emp", map[string]value.V{
				"name": value.String_(fmt.Sprintf("w%d", i)), "salary": value.Int(1), "dept": value.Ref(deptIDs[0]),
			}, 0)
			if err == nil {
				err = txn.Commit()
			}
			if err != nil {
				writerDone <- err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := client.New(client.Config{Addr: addr, PoolSize: 1})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for j := 0; j < queriesPerSession; j++ {
				res, err := cl.Query(`SELECT (name, salary) FROM Emp WHERE salary > 2000`)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) == 0 {
					errs <- errors.New("empty result")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stopWriter)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	close(errs)
	for err := range errs {
		t.Errorf("session: %v", err)
	}
}

// TestGracefulDrain verifies in-flight queries complete during Shutdown
// while new dials are refused afterwards.
func TestGracefulDrain(t *testing.T) {
	eng := personnelEngine(t)

	cfg := Config{Engine: eng}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	const inflight = 4
	results := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			cl, err := client.New(client.Config{Addr: addr})
			if err != nil {
				results <- err
				return
			}
			defer cl.Close()
			res, err := cl.Query(`SELECT HISTORY(Emp.salary) FROM Emp DURING [0, 1000)`)
			if err == nil && len(res.Rows) == 0 {
				err = errors.New("empty history")
			}
			results <- err
		}()
	}
	// Wait until every query is actually in flight before draining. The
	// server.queries counter increments inside the frame handler, after the
	// drain-visible busy flag is set, so counter == inflight guarantees no
	// session can be hard-closed with an unread Query frame (a fixed sleep
	// here flaked under -race, where handshakes can take longer).
	queriesC := eng.Metrics().Counter("server.queries")
	for deadline := time.Now().Add(5 * time.Second); queriesC.Value() < inflight; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d queries reached the server", queriesC.Value(), inflight)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve after drain: %v", err)
	}

	// Every query that made it in-flight must have completed cleanly.
	for i := 0; i < inflight; i++ {
		if err := <-results; err != nil {
			t.Errorf("in-flight query: %v", err)
		}
	}

	// New dials must be refused now that the listener is closed.
	cl, err := client.New(client.Config{Addr: addr, DialRetries: -1, DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if pingErr := cl.Ping(); pingErr == nil {
		t.Fatal("dial succeeded after drain")
	}
}

func TestMaxConnsRefusesWithBusy(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, func(c *Config) { c.MaxConns = 1 })

	cl, err := client.New(client.Config{Addr: addr, DialRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sess, err := cl.Session() // occupies the only slot
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	_, err = cl.Session()
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeBusy {
		t.Fatalf("expected CodeBusy, got %v", err)
	}
}

func TestProtocolErrorClosesConn(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, nil)

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// First frame must be Hello; send a Query instead.
	if err := wire.WriteFrame(raw, wire.FrameQuery, wire.EncodeQuery("SELECT (name) FROM Emp")); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameError {
		t.Fatalf("expected Error frame, got 0x%02x", f.Type)
	}
	code, _, _, err := wire.DecodeError(f.Payload)
	if err != nil || code != wire.CodeProtocol {
		t.Fatalf("expected CodeProtocol, got %d (%v)", code, err)
	}
	// The server must then close the connection.
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.ReadFrame(raw); err == nil {
		t.Fatal("connection still open after protocol error")
	}
}

func TestServerMetricsPublished(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, nil)
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(`SELECT (name) FROM Emp WHERE salary > 4000`); err != nil {
		t.Fatal(err)
	}
	counters := eng.Metrics().Counters()
	if counters["server.conns_accepted"] == 0 {
		t.Error("server.conns_accepted not incremented")
	}
	if counters["server.queries"] == 0 {
		t.Error("server.queries not incremented")
	}
	if eng.Metrics().Histogram("server.query_ns").Count() == 0 {
		t.Error("server.query_ns histogram empty")
	}
}
