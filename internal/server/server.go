// Package server exposes a tcodm engine over TCP using the wire protocol.
//
// Each accepted connection becomes a session with its own state: default
// valid/transaction-time slice, a per-query timeout, a per-session slow
// threshold, and an optional pinned read view ("begin"/"end" options) that
// fixes transaction time at the moment the pin was taken, giving
// repeatable reads across statements. TMQL is read-only, so the network
// surface carries no DML — writes stay in-process where the engine's
// single-writer lock cannot be held hostage to a stalled client.
//
// The server drains gracefully on Shutdown: the listener closes first
// (new dials are refused), sessions finish the frame they are executing,
// idle sessions are disconnected, and Shutdown returns when every session
// has exited or its context expires (then connections are hard-closed).
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/obs"
	"tcodm/internal/repl"
	"tcodm/internal/wire"
)

// Config parameterizes a Server. Engine is required; everything else has
// a usable default.
type Config struct {
	Engine *core.Engine
	Addr   string // listen address, e.g. ":7483"; used by ListenAndServe
	Banner string // served in the Welcome frame

	MaxConns     int           // concurrent session cap (default 64)
	ReadTimeout  time.Duration // max idle time between client frames (default 5m)
	WriteTimeout time.Duration // per-frame write deadline (default 30s)
	QueryTimeout time.Duration // hard per-query cap; 0 = unlimited
	BatchRows    int           // rows per ResultRows frame (default 256)

	// Admission control. A session that receives a query must first pass
	// the gate: at most MaxActive queries execute concurrently, at most
	// MaxQueueDepth more wait (each at most MaxQueueWait). Everything
	// beyond is shed with CodeBusy and a RetryAfterHint so well-behaved
	// clients back off instead of hammering an overloaded server.
	MaxActive      int           // concurrent query executions (default 16)
	MaxQueueDepth  int           // admission queue slots beyond MaxActive (default 64)
	MaxQueueWait   time.Duration // max wait for a gate slot before shedding (default 1s)
	RetryAfterHint time.Duration // hint attached to shed/refuse errors (default 100ms)

	// Response budgets bound what one query may send back; 0 = unlimited.
	// A blown budget is a query error (CodeQuery): retrying cannot help.
	MaxResultRows  int // rows per result
	MaxResultBytes int // encoded result-row payload bytes per result

	// Repl, when set, serves replication subscriptions (FrameSubscribe):
	// the leader side of WAL shipping. Nil refuses subscriptions. Can be
	// installed after New via SetRepl — a follower that promotes becomes a
	// source without restarting its server.
	Repl *repl.Source
	// Staleness, when set, marks this server as a replica and reports how
	// far behind the leader it currently is — the "max_staleness" session
	// option gates queries on it with CodeStale. Nil on leaders. Can be
	// replaced after New via SetStaleness (a promoted leader reports zero
	// lag so replica-dialed clients keep their max_staleness option).
	Staleness func() time.Duration

	// Admin, when set, handles FrameAdmin commands ("promote", "epoch", …)
	// and returns a human-readable result. Nil refuses admin frames. The
	// hook runs on the session goroutine; keep it bounded.
	Admin func(cmd string) (string, error)

	Logf func(format string, args ...any) // optional diagnostics sink
}

func (c Config) withDefaults() Config {
	if c.Banner == "" {
		c.Banner = "tcoserve/1"
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 5 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.BatchRows <= 0 {
		c.BatchRows = 256
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 16
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 64
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = time.Second
	}
	if c.RetryAfterHint <= 0 {
		c.RetryAfterHint = 100 * time.Millisecond
	}
	return c
}

// Server serves wire-protocol sessions against one engine.
type Server struct {
	cfg Config
	// eng is the serving engine. It starts as cfg.Engine and is replaced
	// by SwapEngine when a follower re-bootstraps from a snapshot; every
	// query captures it once so a single statement never straddles a swap.
	eng      atomic.Pointer[core.Engine]
	baseCtx  context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*session
	nextID   uint64
	draining bool

	// gate is the concurrent-query semaphore; waiters counts admission
	// queue occupancy (the gauge mirrors it for observability, the atomic
	// is what the shed decision reads).
	gate    chan struct{}
	waiters atomic.Int64

	// dynMu guards the reconfigurable role state: a follower that promotes
	// swaps in a replication source and a zero-lag staleness probe without
	// restarting the server. Reads are per-frame, never per-row.
	dynMu     sync.Mutex
	repl      *repl.Source
	staleness func() time.Duration

	// Metrics live in the engine's registry so they surface through the
	// same /debug/vars and snapshot paths as engine-side telemetry.
	conns       *obs.Gauge
	accepted    *obs.Counter
	refused     *obs.Counter
	frames      *obs.Counter
	queries     *obs.Counter
	qErrors     *obs.Counter
	queryNS     *obs.Histogram
	shed        *obs.Counter
	shedFull    *obs.Counter
	shedWait    *obs.Counter
	queueDepth  *obs.Gauge
	queueWaitNS *obs.Histogram
	budgetRows  *obs.Counter
	budgetBytes *obs.Counter
	deadlineErr *obs.Counter
}

// New creates a server for cfg.Engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	reg := cfg.Engine.Metrics()
	s := &Server{
		cfg:         cfg,
		baseCtx:     ctx,
		cancel:      cancel,
		sessions:    map[uint64]*session{},
		gate:        make(chan struct{}, cfg.MaxActive),
		conns:       reg.Gauge("server.conns"),
		accepted:    reg.Counter("server.conns_accepted"),
		refused:     reg.Counter("server.conns_refused"),
		frames:      reg.Counter("server.frames_in"),
		queries:     reg.Counter("server.queries"),
		qErrors:     reg.Counter("server.query_errors"),
		queryNS:     reg.Histogram("server.query_ns"),
		shed:        reg.Counter("server.shed"),
		shedFull:    reg.Counter("server.queue_shed_full"),
		shedWait:    reg.Counter("server.queue_shed_wait"),
		queueDepth:  reg.Gauge("server.queue_depth"),
		queueWaitNS: reg.Histogram("server.queue_wait_ns"),
		budgetRows:  reg.Counter("server.budget_rows"),
		budgetBytes: reg.Counter("server.budget_bytes"),
		deadlineErr: reg.Counter("server.deadline_err"),
	}
	s.eng.Store(cfg.Engine)
	s.repl = cfg.Repl
	s.staleness = cfg.Staleness
	return s, nil
}

// engine returns the currently serving engine.
func (s *Server) engine() *core.Engine { return s.eng.Load() }

// replSource returns the current replication source (nil = not a leader).
func (s *Server) replSource() *repl.Source {
	s.dynMu.Lock()
	defer s.dynMu.Unlock()
	return s.repl
}

// SetRepl installs (or clears) the replication source. A follower that
// promotes calls this so existing and new connections can subscribe.
func (s *Server) SetRepl(src *repl.Source) {
	s.dynMu.Lock()
	defer s.dynMu.Unlock()
	s.repl = src
}

// stalenessFn returns the current staleness probe (nil = not a replica).
func (s *Server) stalenessFn() func() time.Duration {
	s.dynMu.Lock()
	defer s.dynMu.Unlock()
	return s.staleness
}

// SetStaleness replaces the staleness probe. A promoted leader installs
// a zero-lag probe — "a leader is a replica with zero lag" — so sessions
// that set max_staleness while this node was a follower keep working.
func (s *Server) SetStaleness(fn func() time.Duration) {
	s.dynMu.Lock()
	defer s.dynMu.Unlock()
	s.staleness = fn
}

// SwapEngine atomically replaces the serving engine and returns the old
// one. Used when a follower re-bootstraps from a leader snapshot: the old
// engine is already closed, and queries that captured it mid-swap fail
// with a plain error — never a wrong answer. Server metrics stay bound to
// the original engine's registry.
func (s *Server) SwapEngine(next *core.Engine) *core.Engine {
	return s.eng.Swap(next)
}

// Shed errors returned by admit; both travel to the client as CodeBusy
// with the retry-after hint attached.
var (
	errShedQueueFull = errors.New("admission queue full")
	errShedQueueWait = errors.New("admission queue wait exceeded")
)

// admit acquires a slot on the concurrent-query gate, queueing up to the
// configured depth and wait. On success it returns a release func; on
// shed it returns errShedQueueFull or errShedQueueWait; a context error
// means the query's own deadline fired while queued.
func (s *Server) admit(ctx context.Context) (func(), error) {
	select {
	case s.gate <- struct{}{}:
		return func() { <-s.gate }, nil
	default:
	}
	if int(s.waiters.Add(1)) > s.cfg.MaxQueueDepth {
		s.waiters.Add(-1)
		s.shed.Inc()
		s.shedFull.Inc()
		return nil, errShedQueueFull
	}
	s.queueDepth.Add(1)
	defer func() {
		s.waiters.Add(-1)
		s.queueDepth.Add(-1)
	}()
	start := time.Now()
	timer := time.NewTimer(s.cfg.MaxQueueWait)
	defer timer.Stop()
	select {
	case s.gate <- struct{}{}:
		s.queueWaitNS.Observe(time.Since(start))
		return func() { <-s.gate }, nil
	case <-timer.C:
		s.shed.Inc()
		s.shedWait.Inc()
		return nil, errShedQueueWait
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on cfg.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listener address, or "" before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts sessions on ln until Shutdown closes it. It returns nil
// after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		s.accepted.Inc()

		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			s.refuse(conn, wire.CodeDraining, "server draining")
			continue
		}
		if len(s.sessions) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.refused.Inc()
			s.refuse(conn, wire.CodeBusy, fmt.Sprintf("connection limit %d reached", s.cfg.MaxConns))
			continue
		}
		s.nextID++
		sess := newSession(s, s.nextID, conn)
		s.sessions[sess.id] = sess
		s.mu.Unlock()

		s.conns.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.conns.Add(-1)
			defer s.forget(sess.id)
			sess.serve(s.baseCtx)
		}()
	}
}

// refuse reports an error frame on a connection we will not serve. The
// retry-after hint tells backing-off clients when the refusal might lift.
func (s *Server) refuse(conn net.Conn, code uint16, msg string) {
	if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
		s.deadlineErr.Inc()
	}
	hint := uint32(s.cfg.RetryAfterHint / time.Millisecond)
	wire.WriteFrame(conn, wire.FrameError, wire.EncodeErrorRetry(code, msg, "", hint))
	conn.Close()
}

func (s *Server) forget(id uint64) {
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
}

// Shutdown drains the server: the listener closes immediately (new dials
// are refused by the OS), idle sessions are disconnected, and busy
// sessions finish the frame they are executing. When ctx expires before
// the drain completes, remaining queries are cancelled and connections
// hard-closed. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	ln := s.ln
	for _, sess := range s.sessions {
		sess.drain()
	}
	s.mu.Unlock()
	if ln != nil && !already {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel() // cancel in-flight queries
		s.mu.Lock()
		for _, sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
