package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/wire"
)

// startServerFull is startServer but also returns the Server for tests
// that poke at the admission gate directly.
func startServerFull(t *testing.T, eng *core.Engine, mutate func(*Config)) (string, *Server) {
	t.Helper()
	cfg := Config{Engine: eng, Banner: "tcoserve/test"}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String(), srv
}

func TestAdmitQueueFullSheds(t *testing.T) {
	srv, err := New(Config{Engine: personnelEngine(t), MaxActive: 1, MaxQueueDepth: 1, MaxQueueWait: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the gate, then fill the single queue slot with a waiter.
	srv.gate <- struct{}{}
	waiterIn := make(chan struct{})
	waiterOut := make(chan error, 1)
	go func() {
		close(waiterIn)
		release, err := srv.admit(context.Background())
		if err == nil {
			release()
		}
		waiterOut <- err
	}()
	<-waiterIn
	for srv.waiters.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	// The next admit finds gate and queue both full: shed immediately.
	if _, err := srv.admit(context.Background()); !errors.Is(err, errShedQueueFull) {
		t.Fatalf("expected errShedQueueFull, got %v", err)
	}
	if got := srv.shed.Value(); got != 1 {
		t.Fatalf("server.shed = %d, want 1", got)
	}
	if got := srv.shedFull.Value(); got != 1 {
		t.Fatalf("server.queue_shed_full = %d, want 1", got)
	}

	// Releasing the gate admits the queued waiter.
	<-srv.gate
	if err := <-waiterOut; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	if srv.queueWaitNS.Count() == 0 {
		t.Error("server.queue_wait_ns never observed the queued admission")
	}
}

func TestAdmitQueueWaitSheds(t *testing.T) {
	srv, err := New(Config{Engine: personnelEngine(t), MaxActive: 1, MaxQueueDepth: 4, MaxQueueWait: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv.gate <- struct{}{} // never released
	start := time.Now()
	if _, err := srv.admit(context.Background()); !errors.Is(err, errShedQueueWait) {
		t.Fatalf("expected errShedQueueWait, got %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("shed after %v, before MaxQueueWait", d)
	}
	if got := srv.shedWait.Value(); got != 1 {
		t.Fatalf("server.queue_shed_wait = %d, want 1", got)
	}
	if got := srv.waiters.Load(); got != 0 {
		t.Fatalf("waiters = %d after shed, want 0", got)
	}
}

func TestAdmitContextCancelWhileQueued(t *testing.T) {
	srv, err := New(Config{Engine: personnelEngine(t), MaxActive: 1, MaxQueueDepth: 4, MaxQueueWait: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	srv.gate <- struct{}{}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := srv.admit(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

// rawSession dials addr and completes the Hello/Welcome handshake,
// returning the raw conn for frame-level assertions.
func rawSession(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := wire.WriteFrame(c, wire.FrameHello, wire.EncodeHello("test")); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(c)
	if err != nil || f.Type != wire.FrameWelcome {
		t.Fatalf("handshake: %+v, %v", f, err)
	}
	return c
}

// readResult consumes one result stream, returning the row count or the
// server error.
func readResult(t *testing.T, c net.Conn) (rows int, serr error) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		f, err := wire.ReadFrame(c)
		if err != nil {
			t.Fatal(err)
		}
		switch f.Type {
		case wire.FrameResultHeader:
		case wire.FrameResultRows:
			batch, err := wire.DecodeResultRows(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			rows += len(batch)
		case wire.FrameResultDone:
			return rows, nil
		case wire.FrameError:
			code, msg, detail, retry, err := wire.DecodeErrorRetry(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			return rows, &testServerError{code: code, msg: msg, detail: detail, retryAfterMs: retry}
		default:
			t.Fatalf("unexpected frame 0x%02x", f.Type)
		}
	}
}

type testServerError struct {
	code         uint16
	msg, detail  string
	retryAfterMs uint32
}

func (e *testServerError) Error() string { return fmt.Sprintf("%d: %s (%s)", e.code, e.msg, e.detail) }

// TestOverloadShedsWithRetryAfterThenRecovers drives a query into a
// saturated gate at the wire level: the shed must carry CodeBusy plus the
// retry-after hint, leave the session usable, and the same query must
// succeed once the gate frees up.
func TestOverloadShedsWithRetryAfterThenRecovers(t *testing.T) {
	eng := personnelEngine(t)
	addr, srv := startServerFull(t, eng, func(c *Config) {
		c.MaxActive = 1
		c.MaxQueueDepth = 1
		c.MaxQueueWait = 10 * time.Millisecond
		c.RetryAfterHint = 250 * time.Millisecond
	})

	// Saturate: gate occupied, queue slot occupied by a parked waiter.
	srv.gate <- struct{}{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if release, err := srv.admit(ctx); err == nil {
			release()
		}
	}()
	for srv.waiters.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	c := rawSession(t, addr)
	if err := wire.WriteFrame(c, wire.FrameQuery, wire.EncodeQuery(`SELECT (name) FROM Emp WHERE salary > 4000`)); err != nil {
		t.Fatal(err)
	}
	_, serr := readResult(t, c)
	var te *testServerError
	if !errors.As(serr, &te) || te.code != wire.CodeBusy {
		t.Fatalf("expected CodeBusy shed, got %v", serr)
	}
	if te.retryAfterMs != 250 {
		t.Fatalf("RetryAfterMs = %d, want 250", te.retryAfterMs)
	}

	// Free the gate; the same session retries and succeeds.
	<-srv.gate
	wg.Wait()
	if err := wire.WriteFrame(c, wire.FrameQuery, wire.EncodeQuery(`SELECT (name) FROM Emp WHERE salary > 4000`)); err != nil {
		t.Fatal(err)
	}
	rows, serr := readResult(t, c)
	if serr != nil || rows == 0 {
		t.Fatalf("session dead after shed: rows=%d, %v", rows, serr)
	}
	if srv.shed.Value() == 0 {
		t.Error("server.shed not incremented")
	}
}

func TestMaxConnsRefusalCarriesRetryAfter(t *testing.T) {
	eng := personnelEngine(t)
	addr, _ := startServerFull(t, eng, func(c *Config) {
		c.MaxConns = 1
		c.RetryAfterHint = 125 * time.Millisecond
	})

	_ = rawSession(t, addr) // occupies the only slot

	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := wire.ReadFrame(c2)
	if err != nil || f.Type != wire.FrameError {
		t.Fatalf("expected refusal error frame, got %+v, %v", f, err)
	}
	code, _, _, retry, err := wire.DecodeErrorRetry(f.Payload)
	if err != nil || code != wire.CodeBusy {
		t.Fatalf("refusal: code=%d, %v", code, err)
	}
	if retry != 125 {
		t.Fatalf("refusal RetryAfterMs = %d, want 125", retry)
	}
}

func TestRowBudgetRejectsOversizedResult(t *testing.T) {
	eng := personnelEngine(t)
	addr, srv := startServerFull(t, eng, func(c *Config) { c.MaxResultRows = 3 })

	c := rawSession(t, addr)
	if err := wire.WriteFrame(c, wire.FrameQuery, wire.EncodeQuery(`SELECT (name) FROM Emp`)); err != nil {
		t.Fatal(err)
	}
	rows, serr := readResult(t, c)
	var te *testServerError
	if !errors.As(serr, &te) || te.code != wire.CodeQuery {
		t.Fatalf("expected CodeQuery budget error, got %v", serr)
	}
	if rows != 0 {
		t.Fatalf("row budget streamed %d rows before erroring", rows)
	}
	if srv.budgetRows.Value() != 1 {
		t.Fatalf("server.budget_rows = %d, want 1", srv.budgetRows.Value())
	}

	// A query under budget still works on the same session.
	if err := wire.WriteFrame(c, wire.FrameQuery, wire.EncodeQuery(`SELECT (name) FROM Emp WHERE salary > 2000 LIMIT 2`)); err != nil {
		t.Fatal(err)
	}
	if rows, serr := readResult(t, c); serr != nil || rows == 0 {
		t.Fatalf("session dead after row-budget error: rows=%d, %v", rows, serr)
	}
}

func TestByteBudgetStopsMidStream(t *testing.T) {
	eng := personnelEngine(t)
	addr, srv := startServerFull(t, eng, func(c *Config) {
		c.BatchRows = 2
		c.MaxResultBytes = 64 // a few small batches, then the cut
	})

	c := rawSession(t, addr)
	if err := wire.WriteFrame(c, wire.FrameQuery, wire.EncodeQuery(`SELECT (name) FROM Emp`)); err != nil {
		t.Fatal(err)
	}
	_, serr := readResult(t, c)
	var te *testServerError
	if !errors.As(serr, &te) || te.code != wire.CodeQuery {
		t.Fatalf("expected mid-stream CodeQuery budget error, got %v", serr)
	}
	if srv.budgetBytes.Value() != 1 {
		t.Fatalf("server.budget_bytes = %d, want 1", srv.budgetBytes.Value())
	}
	// The session survives the mid-stream stop.
	if err := wire.WriteFrame(c, wire.FramePing, nil); err != nil {
		t.Fatal(err)
	}
	if f, err := wire.ReadFrame(c); err != nil || f.Type != wire.FramePong {
		t.Fatalf("session dead after byte-budget stop: %+v, %v", f, err)
	}
}

// deadlineFailConn wraps a net.Conn whose SetDeadline calls all fail —
// the shape of a conn whose fd died under the session.
type deadlineFailConn struct {
	net.Conn
}

var errDeadline = errors.New("setsockopt: bad file descriptor")

func (c deadlineFailConn) SetReadDeadline(time.Time) error  { return errDeadline }
func (c deadlineFailConn) SetWriteDeadline(time.Time) error { return errDeadline }

func TestDeadlineErrorsCountedAndLoggedOnce(t *testing.T) {
	var logged []string
	srv, err := New(Config{
		Engine: personnelEngine(t),
		Logf:   func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ss := newSession(srv, 1, deadlineFailConn{Conn: a})

	go wire.WriteFrame(b, wire.FramePing, nil)
	if _, err := ss.readFrame(); err != nil {
		t.Fatal(err)
	}
	go wire.WriteFrame(b, wire.FramePing, nil)
	if _, err := ss.readFrame(); err != nil {
		t.Fatal(err)
	}
	if got := srv.deadlineErr.Value(); got != 2 {
		t.Fatalf("server.deadline_err = %d, want 2 (one per SetDeadline failure)", got)
	}
	if len(logged) != 1 {
		t.Fatalf("deadline failure logged %d times, want once per session: %v", len(logged), logged)
	}
}
