package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/query"
	"tcodm/internal/temporal"
	"tcodm/internal/value"
	"tcodm/internal/wire"
)

// session is one client connection. All session state is owned by the
// serve goroutine; only busy/drainAfter are shared with the drain path.
type session struct {
	s    *Server
	id   uint64
	conn net.Conn
	br   *bufio.Reader

	// Time-slice defaults applied when a query names no AT/ASOF point.
	vt *temporal.Instant
	tt *temporal.Instant
	// pinned is the "begin" read view: transaction time frozen at the
	// pin, overriding tt until "end". Queries repeat exactly.
	pinned *temporal.Instant

	timeout  time.Duration // per-query cap (intersected with cfg.QueryTimeout)
	slow     time.Duration // per-session slow-log threshold
	batch    int           // rows per ResultRows frame
	maxStale time.Duration // replica staleness bound; queries beyond it get CodeStale

	muState    chan struct{} // 1-token mutex; select-free hand-rolled to keep drain lock tiny
	busy       bool
	drainAfter bool
	// subscriber marks a connection handed to the replication source: it
	// never returns to the frame loop, so drain must close it outright
	// instead of waiting for the "current frame" to finish.
	subscriber bool

	deadlineErrLogged bool // first SetDeadline failure logged; the rest just count
}

func newSession(s *Server, id uint64, conn net.Conn) *session {
	ss := &session{s: s, id: id, conn: conn, br: bufio.NewReader(conn), batch: s.cfg.BatchRows, muState: make(chan struct{}, 1)}
	ss.muState <- struct{}{}
	return ss
}

func (ss *session) lock()   { <-ss.muState }
func (ss *session) unlock() { ss.muState <- struct{}{} }

// drain stops the session: an idle session is disconnected immediately, a
// busy one finishes the frame it is executing and then exits.
func (ss *session) drain() {
	ss.lock()
	ss.drainAfter = true
	disconnect := !ss.busy || ss.subscriber
	ss.unlock()
	if disconnect {
		ss.conn.Close()
	}
}

func (ss *session) beginFrame() {
	ss.lock()
	ss.busy = true
	ss.unlock()
}

// endFrame reports whether the session should stop reading further frames.
func (ss *session) endFrame() bool {
	ss.lock()
	ss.busy = false
	stop := ss.drainAfter
	ss.unlock()
	return stop
}

// serve runs the session loop until the client closes, a protocol error
// occurs, or the server drains.
func (ss *session) serve(ctx context.Context) {
	defer ss.conn.Close()

	// Handshake: Hello in, Welcome out.
	f, err := ss.readFrame()
	if err != nil {
		return
	}
	if f.Type != wire.FrameHello {
		ss.writeError(wire.CodeProtocol, "expected Hello frame", fmt.Sprintf("got frame type 0x%02x", f.Type))
		return
	}
	if _, err := wire.DecodeHello(f.Payload); err != nil {
		ss.writeError(wire.CodeProtocol, "malformed Hello", err.Error())
		return
	}
	eng := ss.s.engine()
	if err := ss.writeFrame(wire.FrameWelcome, wire.EncodeWelcomeInfo(wire.WelcomeInfo{
		Banner:  ss.s.cfg.Banner,
		Session: ss.id,
		Epoch:   eng.Epoch(),
		// Writable tells failover probes whether this node accepts
		// leader-targeted traffic; a follower or read-only engine does not.
		Writable: !eng.IsReadOnly(),
	})); err != nil {
		return
	}

	for {
		f, err := ss.readFrame()
		if err != nil {
			// Version mismatches deserve a reply; everything else is a
			// dead or misbehaving transport.
			if f.Version != 0 && f.Version != wire.Version {
				ss.writeError(wire.CodeVersion, "unsupported protocol version", err.Error())
			}
			return
		}
		ss.s.frames.Inc()
		ss.beginFrame()
		stop := ss.handle(ctx, f)
		if ss.endFrame() || stop {
			return
		}
	}
}

// handle processes one frame, returning true when the session must end.
func (ss *session) handle(ctx context.Context, f wire.Frame) bool {
	switch f.Type {
	case wire.FrameQuery:
		text, trace, err := wire.DecodeQueryTrace(f.Payload)
		if err != nil {
			ss.writeError(wire.CodeProtocol, "malformed Query", err.Error())
			return true
		}
		return ss.runQuery(ctx, text, trace)
	case wire.FrameExec:
		text, params, trace, err := wire.DecodeExecTrace(f.Payload)
		if err != nil {
			ss.writeError(wire.CodeProtocol, "malformed Exec", err.Error())
			return true
		}
		bound, err := query.Bind(text, params)
		if err != nil {
			// A bad binding is a query error, not a protocol violation:
			// the session stays usable.
			ss.writeError(wire.CodeQuery, err.Error(), "")
			return false
		}
		return ss.runQuery(ctx, bound, trace)
	case wire.FrameOption:
		key, val, err := wire.DecodeOption(f.Payload)
		if err != nil {
			ss.writeError(wire.CodeProtocol, "malformed Option", err.Error())
			return true
		}
		ack, err := ss.setOption(key, val)
		if err != nil {
			ss.writeError(wire.CodeQuery, err.Error(), "")
			return false
		}
		return ss.writeFrame(wire.FrameAck, wire.EncodeAck(ack)) != nil
	case wire.FramePing:
		return ss.writeFrame(wire.FramePong, f.Payload) != nil
	case wire.FrameSubscribe:
		req, err := wire.DecodeSubscribeReq(f.Payload)
		if err != nil {
			ss.writeError(wire.CodeProtocol, "malformed Subscribe", err.Error())
			return true
		}
		src := ss.s.replSource()
		if src == nil {
			ss.writeError(wire.CodeQuery, "replication not enabled on this server", "")
			return true
		}
		// The connection becomes a one-way log stream owned by the
		// replication source; it never returns to the session loop.
		ss.lock()
		ss.subscriber = true
		ss.unlock()
		src.Serve(ctx, ss.conn, req)
		return true
	case wire.FrameAdmin:
		cmd, err := wire.DecodeAdmin(f.Payload)
		if err != nil {
			ss.writeError(wire.CodeProtocol, "malformed Admin", err.Error())
			return true
		}
		if ss.s.cfg.Admin == nil {
			ss.writeError(wire.CodeQuery, "admin commands not enabled on this server", "")
			return false
		}
		result, err := ss.s.cfg.Admin(cmd)
		if err != nil {
			ss.writeError(wire.CodeQuery, err.Error(), "")
			return false
		}
		return ss.writeFrame(wire.FrameAck, wire.EncodeAck(result)) != nil
	case wire.FrameClose:
		return true
	default:
		ss.writeError(wire.CodeProtocol, "unexpected frame", fmt.Sprintf("type 0x%02x", f.Type))
		return true
	}
}

// setOption applies one session option and returns the effective value.
func (ss *session) setOption(key, val string) (string, error) {
	switch key {
	case "vt":
		return setInstant(&ss.vt, val)
	case "tt", "asof":
		return setInstant(&ss.tt, val)
	case "timeout":
		if val == "" || val == "0" {
			ss.timeout = 0
			return "0s", nil
		}
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return "", fmt.Errorf("option timeout: want a duration like 250ms, got %q", val)
		}
		ss.timeout = d
		return d.String(), nil
	case "slow":
		if val == "" || val == "0" {
			ss.slow = 0
			return "0s", nil
		}
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return "", fmt.Errorf("option slow: want a duration like 10ms, got %q", val)
		}
		ss.slow = d
		return d.String(), nil
	case "batch":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 || n > 1<<16 {
			return "", fmt.Errorf("option batch: want 1..65536, got %q", val)
		}
		ss.batch = n
		return strconv.Itoa(n), nil
	case "max_staleness":
		// Replica-only freshness bound: a query on a session with this set
		// is refused with CodeStale when the replica has not heard a
		// caught-up heartbeat within the bound — the client falls back to
		// the leader instead of reading arbitrarily old state.
		if ss.s.stalenessFn() == nil {
			return "", fmt.Errorf("option max_staleness: this server is not a replica")
		}
		if val == "" || val == "0" {
			ss.maxStale = 0
			return "0s", nil
		}
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return "", fmt.Errorf("option max_staleness: want a duration like 500ms, got %q", val)
		}
		ss.maxStale = d
		return d.String(), nil
	case "begin":
		// Pin the read view at the engine's current transaction time.
		// Until "end", every statement sees this exact snapshot.
		now := ss.s.engine().Now()
		ss.pinned = &now
		return strconv.FormatInt(int64(now), 10), nil
	case "end":
		ss.pinned = nil
		return "ok", nil
	default:
		return "", fmt.Errorf("unknown session option %q", key)
	}
}

// setInstant parses val into *dst; empty clears the default.
func setInstant(dst **temporal.Instant, val string) (string, error) {
	if val == "" || val == "default" {
		*dst = nil
		return "default", nil
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return "", fmt.Errorf("want an instant (integer) or \"default\", got %q", val)
	}
	t := temporal.Instant(n)
	*dst = &t
	return strconv.FormatInt(n, 10), nil
}

// queryTimeout intersects the session timeout with the server-wide cap.
func (ss *session) queryTimeout() time.Duration {
	d := ss.timeout
	if cap := ss.s.cfg.QueryTimeout; cap > 0 && (d == 0 || d > cap) {
		d = cap
	}
	return d
}

// runQuery executes text and streams the result, returning true when the
// session must end (transport failure). trace is the client-stamped trace
// id (0 = unstamped; the server allocates one when tracing is enabled).
func (ss *session) runQuery(ctx context.Context, text string, trace uint64) bool {
	ss.s.queries.Inc()
	// One engine pointer for the whole statement: a replica re-bootstrap
	// swapping the engine mid-query turns into a plain error on the old
	// (closed) engine, never a half-old half-new answer.
	eng := ss.s.engine()
	if stale := ss.s.stalenessFn(); ss.maxStale > 0 && stale != nil {
		// Strictly-greater: a replica lagging exactly the bound is served.
		if lag := stale(); lag > ss.maxStale {
			ss.s.qErrors.Inc()
			ss.writeError(wire.CodeStale,
				fmt.Sprintf("replica is %s behind, session max_staleness is %s", lag.Truncate(time.Millisecond), ss.maxStale),
				"retry on the leader or relax max_staleness")
			return false
		}
	}
	opts := ss.queryOptions()
	if d := ss.queryTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	// Root span for the whole server-side life of the query; the queue
	// child covers admission so queue wait and shed decisions are visible
	// in the trace. A nil tracer (metrics disabled) no-ops throughout.
	tracer := eng.Tracer()
	if trace == 0 {
		trace = tracer.NextTraceID()
	}
	root := tracer.Start(trace, "query")
	queue := root.Child("queue")
	release, err := ss.s.admit(ctx)
	if err != nil {
		if errors.Is(err, errShedQueueFull) || errors.Is(err, errShedQueueWait) {
			queue.End("shed: " + err.Error())
			root.End("shed")
			// A shed leaves the session usable: the client should back off
			// for the hinted interval and retry on the same connection.
			ss.writeErrorRetry(wire.CodeBusy, "server overloaded", err.Error(), ss.s.cfg.RetryAfterHint)
			return false
		}
		queue.End("deadline expired")
		root.End("error")
		ss.writeError(wire.CodeTimeout, "query deadline expired while queued for admission", err.Error())
		return false
	}
	queue.End("admitted")
	defer release()

	opts.Trace = trace
	opts.Parent = root.ID()
	start := time.Now()
	res, err := eng.QueryWith(ctx, text, opts)
	ss.s.queryNS.Observe(time.Since(start))
	if err != nil {
		root.End("error: " + err.Error())
		ss.s.qErrors.Inc()
		code := wire.CodeQuery
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			code = wire.CodeTimeout
		}
		ss.writeError(code, err.Error(), "")
		return false
	}
	root.Account(res.Res)
	root.End(fmt.Sprintf("rows=%d", len(res.Rows)+len(res.Molecules)))

	cols, rows := res.Columns, res.Rows
	if len(res.Molecules) > 0 && len(rows) == 0 {
		cols, rows = moleculeSummary(res)
	}
	if max := ss.s.cfg.MaxResultRows; max > 0 && len(rows) > max {
		ss.s.budgetRows.Inc()
		ss.writeError(wire.CodeQuery,
			fmt.Sprintf("result exceeds row budget: %d rows > %d", len(rows), max),
			"narrow the query or raise the server's MaxResultRows")
		return false
	}
	if err := ss.writeFrame(wire.FrameResultHeader, wire.EncodeResultHeader(cols)); err != nil {
		return true
	}
	sentBytes := 0
	for off := 0; off < len(rows); off += ss.batch {
		end := off + ss.batch
		if end > len(rows) {
			end = len(rows)
		}
		payload := wire.EncodeResultRows(rows[off:end])
		sentBytes += len(payload)
		if max := ss.s.cfg.MaxResultBytes; max > 0 && sentBytes > max {
			// Mid-stream budget stop: the client sees partial rows then a
			// typed error instead of a ResultDone, and discards the rows.
			ss.s.budgetBytes.Inc()
			ss.writeError(wire.CodeQuery,
				fmt.Sprintf("result exceeds byte budget: %d bytes > %d", sentBytes, max),
				"narrow the query or raise the server's MaxResultBytes")
			return false
		}
		if err := ss.writeFrame(wire.FrameResultRows, payload); err != nil {
			return true
		}
	}
	done := wire.ResultDone{
		Plan:      res.Plan,
		Rows:      uint64(len(rows)),
		Molecules: uint64(len(res.Molecules)),
		Elapsed:   time.Since(start),
		Trace:     res.Trace,
		Res:       res.Res,
		// The LSN this answer reflects: the replication watermark on a
		// follower, the appended LSN on a leader, 0 (omitted) in-memory.
		Watermark: eng.Watermark(),
		// The epoch the serving node believes in — clients watch this to
		// notice failovers and re-probe for the current leader.
		Epoch: eng.Epoch(),
	}
	return ss.writeFrame(wire.FrameResultDone, wire.EncodeResultDone(done)) != nil
}

// queryOptions assembles the engine-level options from session state.
func (ss *session) queryOptions() core.QueryOptions {
	opts := core.QueryOptions{VT: ss.vt, TT: ss.tt, SlowThreshold: ss.slow}
	if ss.pinned != nil {
		opts.TT = ss.pinned
	}
	return opts
}

// moleculeSummary flattens SELECT ALL results into one row per molecule:
// the full object graph does not cross the wire, its shape does.
func moleculeSummary(res *query.Result) ([]string, [][]value.V) {
	cols := []string{"molecule", "root", "atoms"}
	rows := make([][]value.V, 0, len(res.Molecules))
	for _, m := range res.Molecules {
		rows = append(rows, []value.V{
			value.String_(m.Type.Name),
			value.Ref(m.Root),
			value.Int(int64(m.Size())),
		})
	}
	return cols, rows
}

// checkDeadline surfaces a SetDeadline failure instead of silently
// proceeding without one: the counter always moves, the log fires once
// per session (a dead conn fails every call; one line is enough).
func (ss *session) checkDeadline(err error) {
	if err == nil {
		return
	}
	ss.s.deadlineErr.Inc()
	if !ss.deadlineErrLogged {
		ss.deadlineErrLogged = true
		ss.s.logf("session %d: SetDeadline failed, timeouts not enforced: %v", ss.id, err)
	}
}

// readFrame reads one frame under the idle deadline.
func (ss *session) readFrame() (wire.Frame, error) {
	ss.checkDeadline(ss.conn.SetReadDeadline(time.Now().Add(ss.s.cfg.ReadTimeout)))
	return wire.ReadFrame(ss.br)
}

// writeFrame writes one frame under the write deadline.
func (ss *session) writeFrame(typ byte, payload []byte) error {
	ss.checkDeadline(ss.conn.SetWriteDeadline(time.Now().Add(ss.s.cfg.WriteTimeout)))
	return wire.WriteFrame(ss.conn, typ, payload)
}

func (ss *session) writeError(code uint16, msg, detail string) {
	ss.writeFrame(wire.FrameError, wire.EncodeError(code, msg, detail))
}

// writeErrorRetry writes an error frame carrying a retry-after hint.
func (ss *session) writeErrorRetry(code uint16, msg, detail string, retryAfter time.Duration) {
	ss.writeFrame(wire.FrameError, wire.EncodeErrorRetry(code, msg, detail, uint32(retryAfter/time.Millisecond)))
}
