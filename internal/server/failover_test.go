package server

import (
	"bufio"
	"context"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tcodm/internal/core"
	"tcodm/internal/wire"
	"tcodm/internal/workload"
	"tcodm/pkg/client"
)

// TestStalenessBoundary pins the max_staleness contract at its edge: a
// replica lagging EXACTLY the bound is served; one nanosecond past it is
// refused with CodeStale — in both directions, on the same session.
func TestStalenessBoundary(t *testing.T) {
	eng := personnelEngine(t)
	var lagNS atomic.Int64
	addr := startServer(t, eng, func(c *Config) {
		c.Staleness = func() time.Duration { return time.Duration(lagNS.Load()) }
	})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sess, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Option("max_staleness", "100ms"); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT (name) FROM Emp WHERE salary > 4000`

	// Exactly at the bound: served.
	lagNS.Store(int64(100 * time.Millisecond))
	if _, err := sess.Query(q); err != nil {
		t.Fatalf("lag == bound refused: %v", err)
	}
	// One nanosecond past: typed CodeStale.
	lagNS.Store(int64(100*time.Millisecond) + 1)
	_, err = sess.Query(q)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeStale {
		t.Fatalf("lag just past bound: got %v, want CodeStale", err)
	}
	// The session survives the refusal and serves once the replica
	// catches back up — including the zero-lag case of a promoted leader.
	lagNS.Store(0)
	if _, err := sess.Query(q); err != nil {
		t.Fatalf("session dead after CodeStale: %v", err)
	}
}

// TestMaxStalenessRefusedOnLeader: the option is replica-only; a leader
// (no staleness source) rejects it without killing the session. Installing
// a staleness source afterwards — what promotion does — makes the same
// option succeed, with the zero-lag leader always serving.
func TestMaxStalenessRefusedOnLeader(t *testing.T) {
	eng := personnelEngine(t)
	cfg := Config{Engine: eng, Banner: "tcoserve/test"}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { ln.Close() })

	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sess, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	_, err = sess.Option("max_staleness", "50ms")
	var se *client.ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "not a replica") {
		t.Fatalf("max_staleness on a leader: got %v, want 'not a replica'", err)
	}
	// The session survived the refused option.
	if _, err := sess.Query(`SELECT (name) FROM Emp WHERE salary > 4000`); err != nil {
		t.Fatalf("session dead after refused option: %v", err)
	}

	// Dynamic role change: a promoted follower installs a zero-lag
	// staleness source on its running server; the option now works.
	srv.SetStaleness(func() time.Duration { return 0 })
	if _, err := sess.Option("max_staleness", "50ms"); err != nil {
		t.Fatalf("max_staleness after SetStaleness: %v", err)
	}
	if _, err := sess.Query(`SELECT (name) FROM Emp WHERE salary > 4000`); err != nil {
		t.Fatalf("zero-lag leader refused a bounded-staleness read: %v", err)
	}
}

// adminHandshake dials addr raw and completes the Hello/Welcome exchange,
// returning the conn, a buffered reader, and the decoded welcome.
func adminHandshake(t *testing.T, addr string) (net.Conn, *bufio.Reader, wire.WelcomeInfo) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })
	if err := wire.WriteFrame(raw, wire.FrameHello, wire.EncodeHello("test-admin/1")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(raw)
	f, err := wire.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameWelcome {
		t.Fatalf("handshake frame = 0x%02x, want Welcome", f.Type)
	}
	info, err := wire.DecodeWelcomeInfo(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return raw, br, info
}

func TestWelcomeAdvertisesEpochAndWritable(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, nil)
	_, _, info := adminHandshake(t, addr)
	if info.Epoch != 0 {
		t.Errorf("welcome epoch = %d, want 0", info.Epoch)
	}
	if !info.Writable {
		t.Error("read-write leader advertised Writable=false")
	}
}

func TestAdminFrameDisabledByDefault(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, nil)
	raw, br, _ := adminHandshake(t, addr)
	if err := wire.WriteFrame(raw, wire.FrameAdmin, wire.EncodeAdmin("epoch")); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameError {
		t.Fatalf("admin on hook-less server: frame 0x%02x, want Error", f.Type)
	}
	code, msg, _, err := wire.DecodeError(f.Payload)
	if err != nil || code != wire.CodeQuery || !strings.Contains(msg, "not enabled") {
		t.Fatalf("admin refusal = %d %q (%v)", code, msg, err)
	}
	// A refused admin command is not a protocol violation: the session
	// still answers queries.
	if err := wire.WriteFrame(raw, wire.FrameQuery, wire.EncodeQuery(`SELECT (name) FROM Emp WHERE salary > 4000`)); err != nil {
		t.Fatal(err)
	}
	for {
		f, err = wire.ReadFrame(br)
		if err != nil {
			t.Fatalf("session dead after refused admin: %v", err)
		}
		if f.Type == wire.FrameError {
			t.Fatalf("query failed after refused admin: %v", f.Payload)
		}
		if f.Type == wire.FrameResultDone {
			break
		}
	}
}

func TestAdminFrameRunsHook(t *testing.T) {
	eng := personnelEngine(t)
	addr := startServer(t, eng, func(c *Config) {
		c.Admin = func(cmd string) (string, error) {
			if cmd == "epoch" {
				return "epoch 0", nil
			}
			return "", errors.New("unknown admin command")
		}
	})
	raw, br, _ := adminHandshake(t, addr)

	// Known command: Ack with the hook's result.
	if err := wire.WriteFrame(raw, wire.FrameAdmin, wire.EncodeAdmin("epoch")); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameAck {
		t.Fatalf("admin result frame = 0x%02x, want Ack", f.Type)
	}
	if got, err := wire.DecodeAck(f.Payload); err != nil || got != "epoch 0" {
		t.Fatalf("admin ack = %q, %v", got, err)
	}

	// Hook error: CodeQuery, session survives for the next command.
	if err := wire.WriteFrame(raw, wire.FrameAdmin, wire.EncodeAdmin("nonsense")); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameError {
		t.Fatalf("bad admin command: frame 0x%02x, want Error", f.Type)
	}
	if err := wire.WriteFrame(raw, wire.FrameAdmin, wire.EncodeAdmin("epoch")); err != nil {
		t.Fatal(err)
	}
	if f, err = wire.ReadFrame(br); err != nil || f.Type != wire.FrameAck {
		t.Fatalf("session dead after admin error: %v (frame 0x%02x)", err, f.Type)
	}
}

// promotedEngine opens a follower engine, promotes it to epoch 1, and
// loads the same personnel dataset the leader carries — a stand-in for a
// replica that converged before the leader died.
func promotedEngine(t *testing.T) *core.Engine {
	t.Helper()
	eng, err := core.Open(core.Options{Path: filepath.Join(t.TempDir(), "promoted"), Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Promote(0); err != nil {
		t.Fatal(err)
	}
	sch, err := workload.PersonnelSchema()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range sch.AtomTypeNames() {
		at, _ := sch.AtomType(n)
		if err := eng.DefineAtomType(*at); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range sch.MoleculeTypeNames() {
		mt, _ := sch.MoleculeType(n)
		if err := eng.DefineMoleculeType(*mt); err != nil {
			t.Fatal(err)
		}
	}
	app := workload.NewEngineApplier(eng, 256)
	ops := workload.Personnel(workload.PersonnelParams{
		Depts: 4, Emps: 60, UpdatesPerEmp: 4, MovesPerEmp: 1, TimeStep: 10, Seed: 42,
	})
	if _, err := workload.Apply(ops, app); err != nil {
		t.Fatal(err)
	}
	if err := app.Flush(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestClientFailoverToPromotedReplica is the client side of the failover
// arc: the leader dies, the next leader-targeted call probes the replica
// set, finds the promoted (epoch 1, writable) node, and re-routes — and
// the epoch change is visible on the client and on every Result.
func TestClientFailoverToPromotedReplica(t *testing.T) {
	leaderEng := personnelEngine(t)
	srvL, err := New(Config{Engine: leaderEng, Banner: "leader/test"})
	if err != nil {
		t.Fatal(err)
	}
	lnL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	servedL := make(chan error, 1)
	go func() { servedL <- srvL.Serve(lnL) }()
	leaderAddr := lnL.Addr().String()

	promoted := promotedEngine(t)
	replicaAddr := startServer(t, promoted, func(c *Config) {
		c.Banner = "promoted/test"
		c.Staleness = func() time.Duration { return 0 }
	})

	cl, err := client.New(client.Config{
		Addr:         leaderAddr,
		Replicas:     []string{replicaAddr},
		DialRetries:  -1,
		RetryBackoff: time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Healthy leader first: leader-targeted sessions land on cfg.Addr.
	// (Epoch may already read 1 — the replica's handshake advertises it —
	// but leadership has not moved.)
	sess0, err := cl.Session()
	if err != nil {
		t.Fatal(err)
	}
	sess0.Close()
	if cl.Leader() != leaderAddr {
		t.Fatalf("pre-failover leader = %s, want %s", cl.Leader(), leaderAddr)
	}

	// The leader dies.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvL.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-servedL; err != nil {
		t.Fatal(err)
	}

	// The next leader-targeted call must fail over, not fail.
	sess1, err := cl.Session()
	if err != nil {
		t.Fatalf("session after leader death: %v", err)
	}
	sess1.Close()
	if cl.Leader() != replicaAddr {
		t.Fatalf("leader after failover = %s, want %s", cl.Leader(), replicaAddr)
	}
	if cl.Epoch() != 1 {
		t.Fatalf("observed epoch after failover = %d, want 1", cl.Epoch())
	}

	// Results now carry the new epoch.
	res, err := cl.Exec(`SELECT (name) FROM Emp WHERE salary > 4000`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 {
		t.Fatalf("Result.Epoch = %d, want 1", res.Epoch)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows from the promoted node")
	}

	// Sessions dial the new leader too.
	sess, err := cl.Session()
	if err != nil {
		t.Fatalf("session after failover: %v", err)
	}
	defer sess.Close()
	if _, err := sess.Query(`SELECT (name) FROM Emp WHERE salary > 4000`); err != nil {
		t.Fatalf("session query on new leader: %v", err)
	}
}
