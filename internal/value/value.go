// Package value implements the typed scalar value system of the data model:
// the attribute domains of atoms (integers, floats, strings, booleans,
// instants, and surrogate identifiers), comparison, and two binary
// encodings — a compact record encoding and an order-preserving key
// encoding used in composite index keys.
package value

import (
	"encoding/binary"
	"fmt"
	"math"

	"tcodm/internal/temporal"
)

// Kind identifies the domain of a value.
type Kind uint8

const (
	// KindNull is the absent value. Null sorts before every other value.
	KindNull Kind = iota
	// KindBool is the boolean domain.
	KindBool
	// KindInt is the 64-bit signed integer domain.
	KindInt
	// KindFloat is the 64-bit IEEE floating-point domain.
	KindFloat
	// KindString is the UTF-8 string domain.
	KindString
	// KindInstant is the chronon (time point) domain.
	KindInstant
	// KindID is the surrogate-identifier domain (atom identity and
	// reference attribute targets).
	KindID
)

var kindNames = [...]string{
	KindNull:    "null",
	KindBool:    "bool",
	KindInt:     "int",
	KindFloat:   "float",
	KindString:  "string",
	KindInstant: "instant",
	KindID:      "id",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind maps a lowercase kind name to its Kind, reporting ok=false for
// unknown names. "null" is not a declarable attribute domain and is
// rejected.
func ParseKind(name string) (Kind, bool) {
	switch name {
	case "bool":
		return KindBool, true
	case "int":
		return KindInt, true
	case "float":
		return KindFloat, true
	case "string":
		return KindString, true
	case "instant":
		return KindInstant, true
	case "id":
		return KindID, true
	default:
		return KindNull, false
	}
}

// ID is a surrogate: the system-assigned, immutable identity of an atom.
// IDs are never reused. The zero ID is invalid ("no atom").
type ID uint64

// IsValid reports whether the ID denotes an atom.
func (id ID) IsValid() bool { return id != 0 }

// String renders the ID as "@n".
func (id ID) String() string { return fmt.Sprintf("@%d", uint64(id)) }

// V is a typed scalar value. The zero value is Null. V is a small
// copyable struct: numeric payloads live in num, strings in str.
type V struct {
	kind Kind
	num  uint64
	str  string
}

// Null is the absent value.
var Null = V{}

// Bool returns a boolean value.
func Bool(b bool) V {
	var n uint64
	if b {
		n = 1
	}
	return V{kind: KindBool, num: n}
}

// Int returns an integer value.
func Int(i int64) V { return V{kind: KindInt, num: uint64(i)} }

// Float returns a floating-point value.
func Float(f float64) V { return V{kind: KindFloat, num: math.Float64bits(f)} }

// String_ returns a string value. (Named with a trailing underscore because
// String is the Stringer method.)
func String_(s string) V { return V{kind: KindString, str: s} }

// Instant returns a time-point value.
func Instant(t temporal.Instant) V { return V{kind: KindInstant, num: uint64(t)} }

// Ref returns a surrogate-identifier value.
func Ref(id ID) V { return V{kind: KindID, num: uint64(id)} }

// Kind returns the domain of the value.
func (v V) Kind() Kind { return v.kind }

// IsNull reports whether the value is absent.
func (v V) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; it panics on kind mismatch.
func (v V) AsBool() bool { v.mustBe(KindBool); return v.num != 0 }

// AsInt returns the integer payload; it panics on kind mismatch.
func (v V) AsInt() int64 { v.mustBe(KindInt); return int64(v.num) }

// AsFloat returns the float payload; it panics on kind mismatch.
func (v V) AsFloat() float64 { v.mustBe(KindFloat); return math.Float64frombits(v.num) }

// AsString returns the string payload; it panics on kind mismatch.
func (v V) AsString() string { v.mustBe(KindString); return v.str }

// AsInstant returns the instant payload; it panics on kind mismatch.
func (v V) AsInstant() temporal.Instant { v.mustBe(KindInstant); return temporal.Instant(v.num) }

// AsID returns the surrogate payload; it panics on kind mismatch.
func (v V) AsID() ID { v.mustBe(KindID); return ID(v.num) }

func (v V) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("value: %s accessed as %s", v.kind, k))
	}
}

// Numeric reports whether the value is of a numeric kind (int or float).
func (v V) Numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// FloatValue returns the numeric value as a float64 (ints are widened).
// It panics unless Numeric().
func (v V) FloatValue() float64 {
	switch v.kind {
	case KindInt:
		return float64(int64(v.num))
	case KindFloat:
		return math.Float64frombits(v.num)
	default:
		panic(fmt.Sprintf("value: %s is not numeric", v.kind))
	}
}

// Equal reports deep equality of two values (kind and payload).
// Int and Float values never compare equal to each other even when
// numerically equal; use Compare for ordered comparison.
func (v V) Equal(o V) bool { return v == o }

// Compare orders two values: -1, 0, or +1. Values of different kinds order
// by kind number (null first), except that int and float compare
// numerically. NaN floats sort before all other floats.
func (v V) Compare(o V) int {
	if v.Numeric() && o.Numeric() && v.kind != o.kind {
		return compareFloats(v.FloatValue(), o.FloatValue())
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool, KindID:
		return compareUints(v.num, o.num)
	case KindInt, KindInstant:
		return compareInts(int64(v.num), int64(o.num))
	case KindFloat:
		return compareFloats(math.Float64frombits(v.num), math.Float64frombits(o.num))
	case KindString:
		switch {
		case v.str < o.str:
			return -1
		case v.str > o.str:
			return 1
		default:
			return 0
		}
	default:
		panic(fmt.Sprintf("value: compare of unknown kind %d", v.kind))
	}
}

func compareUints(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareInts(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareFloats(a, b float64) int {
	aNaN, bNaN := math.IsNaN(a), math.IsNaN(b)
	switch {
	case aNaN && bNaN:
		return 0
	case aNaN:
		return -1
	case bNaN:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// String renders the value for display.
func (v V) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return fmt.Sprintf("%d", int64(v.num))
	case KindFloat:
		return fmt.Sprintf("%g", math.Float64frombits(v.num))
	case KindString:
		return fmt.Sprintf("%q", v.str)
	case KindInstant:
		return temporal.Instant(v.num).String()
	case KindID:
		return ID(v.num).String()
	default:
		return fmt.Sprintf("value(kind=%d)", v.kind)
	}
}

// AppendRecord appends the compact record encoding of v to dst:
// a 1-byte kind tag followed by the payload (8-byte little-endian number or
// a uvarint-length-prefixed string).
func AppendRecord(dst []byte, v V) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
		return dst
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.str)))
		return append(dst, v.str...)
	default:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v.num)
		return append(dst, buf[:]...)
	}
}

// DecodeRecord decodes a value produced by AppendRecord, returning the
// value and the number of bytes consumed.
func DecodeRecord(src []byte) (V, int, error) {
	if len(src) == 0 {
		return Null, 0, fmt.Errorf("value: empty record encoding")
	}
	k := Kind(src[0])
	switch k {
	case KindNull:
		return Null, 1, nil
	case KindString:
		n, sz := binary.Uvarint(src[1:])
		if sz <= 0 {
			return Null, 0, fmt.Errorf("value: corrupt string length")
		}
		start := 1 + sz
		end := start + int(n)
		if end > len(src) || end < start {
			return Null, 0, fmt.Errorf("value: string payload truncated (need %d bytes, have %d)", end, len(src))
		}
		return String_(string(src[start:end])), end, nil
	case KindBool, KindInt, KindFloat, KindInstant, KindID:
		if len(src) < 9 {
			return Null, 0, fmt.Errorf("value: numeric payload truncated")
		}
		return V{kind: k, num: binary.LittleEndian.Uint64(src[1:9])}, 9, nil
	default:
		return Null, 0, fmt.Errorf("value: unknown kind tag %d", src[0])
	}
}

// AppendKey appends the order-preserving key encoding of v to dst. The
// encoding guarantees bytes.Compare(AppendKey(a), AppendKey(b)) has the same
// sign as a.Compare(b) for values of the same kind, and kinds are segregated
// by a leading tag so mixed-kind keys order by kind. Int/float cross-kind
// numeric ordering is NOT preserved by key encoding; indexes are built over
// single-kind attribute domains where this cannot arise.
func AppendKey(dst []byte, v V) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
		return dst
	case KindBool, KindID:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], v.num)
		return append(dst, buf[:]...)
	case KindInt, KindInstant:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], v.num^(1<<63))
		return append(dst, buf[:]...)
	case KindFloat:
		bits := v.num
		if bits&(1<<63) != 0 {
			bits = ^bits // negative floats: flip everything
		} else {
			bits ^= 1 << 63 // positive floats: flip sign bit
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		return append(dst, buf[:]...)
	case KindString:
		// Escape 0x00 as 0x00 0xFF and terminate with 0x00 0x00 so that
		// prefixes order correctly ("a" < "aa") and embedded NULs survive.
		for i := 0; i < len(v.str); i++ {
			c := v.str[i]
			dst = append(dst, c)
			if c == 0x00 {
				dst = append(dst, 0xFF)
			}
		}
		return append(dst, 0x00, 0x00)
	default:
		panic(fmt.Sprintf("value: AppendKey of unknown kind %d", v.kind))
	}
}
