package value

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tcodm/internal/temporal"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("bool round-trip broken")
	}
	if Int(-42).AsInt() != -42 {
		t.Error("int round-trip broken")
	}
	if Float(3.5).AsFloat() != 3.5 {
		t.Error("float round-trip broken")
	}
	if String_("héllo").AsString() != "héllo" {
		t.Error("string round-trip broken")
	}
	if Instant(7).AsInstant() != temporal.Instant(7) {
		t.Error("instant round-trip broken")
	}
	if Ref(9).AsID() != ID(9) {
		t.Error("id round-trip broken")
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull broken")
	}
}

func TestAccessorPanicsOnKindMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AsInt on a string did not panic")
		}
	}()
	String_("x").AsInt()
}

func TestIDValidity(t *testing.T) {
	if ID(0).IsValid() {
		t.Error("zero ID should be invalid")
	}
	if !ID(1).IsValid() {
		t.Error("ID 1 should be valid")
	}
	if ID(5).String() != "@5" {
		t.Errorf("ID string = %q", ID(5).String())
	}
}

func TestCompareWithinKind(t *testing.T) {
	cases := []struct {
		a, b V
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(5), Int(5), 0},
		{Int(-10), Int(3), -1},
		{Float(1.5), Float(2.5), -1},
		{String_("abc"), String_("abd"), -1},
		{String_("a"), String_("aa"), -1},
		{Bool(false), Bool(true), -1},
		{Instant(3), Instant(9), -1},
		{Ref(2), Ref(10), -1},
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestCompareCrossKind(t *testing.T) {
	// Null sorts first.
	if Null.Compare(Int(math.MinInt64)) >= 0 {
		t.Error("null should sort before every int")
	}
	// Int and float compare numerically.
	if Int(2).Compare(Float(2.5)) != -1 {
		t.Error("Int(2) should be < Float(2.5)")
	}
	if Float(2.0).Compare(Int(2)) != 0 {
		t.Error("Float(2.0) should equal Int(2) numerically")
	}
	// Other cross-kind comparisons order by kind tag.
	if Bool(true).Compare(String_("")) >= 0 {
		t.Error("bool should sort before string by kind")
	}
}

func TestCompareNaN(t *testing.T) {
	nan := Float(math.NaN())
	if nan.Compare(Float(-math.MaxFloat64)) != -1 {
		t.Error("NaN should sort before all floats")
	}
	if nan.Compare(nan) != 0 {
		t.Error("NaN should equal itself in ordering")
	}
}

func TestEqualDistinguishesKinds(t *testing.T) {
	if Int(2).Equal(Float(2.0)) {
		t.Error("Equal must distinguish int from float")
	}
	if !Int(2).Equal(Int(2)) {
		t.Error("identical ints must be Equal")
	}
}

func TestRecordEncodingRoundTrip(t *testing.T) {
	vals := []V{
		Null, Bool(true), Bool(false), Int(0), Int(-1), Int(math.MaxInt64),
		Float(0), Float(-2.75), Float(math.Inf(1)), String_(""),
		String_("hello world"), String_("with\x00nul"), Instant(12345),
		Instant(temporal.Forever), Ref(1), Ref(math.MaxUint64),
	}
	var buf []byte
	for _, v := range vals {
		buf = AppendRecord(buf, v)
	}
	off := 0
	for i, want := range vals {
		got, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("decode #%d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("decode #%d = %v, want %v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	if _, _, err := DecodeRecord(nil); err == nil {
		t.Error("empty buffer should fail")
	}
	if _, _, err := DecodeRecord([]byte{byte(KindInt), 1, 2}); err == nil {
		t.Error("truncated numeric payload should fail")
	}
	if _, _, err := DecodeRecord([]byte{200}); err == nil {
		t.Error("unknown kind tag should fail")
	}
	// String with length beyond the buffer.
	buf := AppendRecord(nil, String_("hello"))
	if _, _, err := DecodeRecord(buf[:4]); err == nil {
		t.Error("truncated string payload should fail")
	}
}

// randValue generates a random non-NaN value for ordering properties.
func randValue(rng *rand.Rand) V {
	switch rng.Intn(6) {
	case 0:
		return Bool(rng.Intn(2) == 1)
	case 1:
		return Int(rng.Int63() - rng.Int63())
	case 2:
		return Float(rng.NormFloat64() * 1e6)
	case 3:
		n := rng.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(4)) // includes 0x00 to stress escaping
		}
		return String_(string(b))
	case 4:
		return Instant(temporal.Instant(rng.Int63() - rng.Int63()))
	default:
		return Ref(ID(rng.Uint64()))
	}
}

// TestPropKeyEncodingOrderPreserving: for same-kind values, byte order of
// key encodings matches Compare.
func TestPropKeyEncodingOrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		a := randValue(rng)
		b := randValue(rng)
		if a.Kind() != b.Kind() {
			continue
		}
		ka := AppendKey(nil, a)
		kb := AppendKey(nil, b)
		cmpKeys := bytes.Compare(ka, kb)
		cmpVals := a.Compare(b)
		if (cmpKeys < 0) != (cmpVals < 0) || (cmpKeys > 0) != (cmpVals > 0) {
			t.Fatalf("key order mismatch: %v vs %v (keys %d, vals %d)", a, b, cmpKeys, cmpVals)
		}
	}
}

// TestPropRecordRoundTrip uses testing/quick over the string domain, the
// only variable-length encoding.
func TestPropRecordRoundTrip(t *testing.T) {
	f := func(s string) bool {
		v := String_(s)
		got, n, err := DecodeRecord(AppendRecord(nil, v))
		return err == nil && n > 0 && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropIntKeyOrdering exercises the int key encoding exhaustively via
// quick over random int64 pairs.
func TestPropIntKeyOrdering(t *testing.T) {
	f := func(a, b int64) bool {
		ka := AppendKey(nil, Int(a))
		kb := AppendKey(nil, Int(b))
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropStringKeyPrefixFree: distinct strings produce distinct keys and
// no key is a strict prefix of another (termination correctness).
func TestPropStringKeyPrefixFree(t *testing.T) {
	f := func(a, b string) bool {
		ka := AppendKey(nil, String_(a))
		kb := AppendKey(nil, String_(b))
		if a == b {
			return bytes.Equal(ka, kb)
		}
		if bytes.Equal(ka, kb) {
			return false
		}
		shorter, longer := ka, kb
		if len(kb) < len(ka) {
			shorter, longer = kb, ka
		}
		// A strict prefix relationship would break composite keys.
		return !bytes.HasPrefix(longer, shorter)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseKind(t *testing.T) {
	for _, name := range []string{"bool", "int", "float", "string", "instant", "id"} {
		k, ok := ParseKind(name)
		if !ok {
			t.Errorf("ParseKind(%q) failed", name)
		}
		if k.String() != name {
			t.Errorf("ParseKind(%q).String() = %q", name, k.String())
		}
	}
	if _, ok := ParseKind("null"); ok {
		t.Error("null must not be declarable")
	}
	if _, ok := ParseKind("widget"); ok {
		t.Error("unknown kind accepted")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]V{
		"null": Null,
		"true": Bool(true),
		"-7":   Int(-7),
		"2.5":  Float(2.5),
		`"hi"`: String_("hi"),
		"@3":   Ref(3),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
}

func TestFloatValueWidening(t *testing.T) {
	if Int(3).FloatValue() != 3.0 {
		t.Error("int widening broken")
	}
	if Float(2.5).FloatValue() != 2.5 {
		t.Error("float identity broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FloatValue on string did not panic")
		}
	}()
	String_("x").FloatValue()
}

// Interface check: quick.Generator unused here but reflect import needed.
var _ = reflect.TypeOf(V{})
